#include "sim/goodness_of_fit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::sim {
namespace {

TEST(RegularizedGammaQTest, KnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(RegularizedGammaQ(1.0, 0.5), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(RegularizedGammaQ(1.0, 3.0), std::exp(-3.0), 1e-12);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaQ(0.5, 1.0), std::erfc(1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaQ(0.5, 4.0), std::erfc(2.0), 1e-10);
  // Boundaries.
  EXPECT_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(RegularizedGammaQTest, MonotoneDecreasingInX) {
  double prev = 1.0;
  for (double x = 0.1; x < 20.0; x += 0.7) {
    double q = RegularizedGammaQ(2.5, x);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(ChiSquareSurvivalTest, MatchesTextbookQuantiles) {
  // P(chi2_1 >= 3.841) = 0.05; P(chi2_5 >= 11.070) = 0.05;
  // P(chi2_10 >= 23.209) = 0.01.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquareSurvival(11.070, 5), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquareSurvival(23.209, 10), 0.01, 2e-4);
  EXPECT_EQ(ChiSquareSurvival(0.0, 3), 1.0);
}

TEST(ChiSquareGofTest, PerfectFitHasHighPValue) {
  num::Vector probs{0.25, 0.25, 0.25, 0.25};
  std::vector<double> observed = {250, 250, 250, 250};
  StatusOr<ChiSquareResult> result = ChiSquareGoodnessOfFit(observed, probs);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->statistic, 0.0, 1e-12);
  EXPECT_NEAR(result->p_value, 1.0, 1e-12);
  EXPECT_FALSE(result->RejectsFit());
  EXPECT_EQ(result->dof, 3u);
}

TEST(ChiSquareGofTest, GrossMisfitRejected) {
  num::Vector probs{0.5, 0.5};
  std::vector<double> observed = {900, 100};
  StatusOr<ChiSquareResult> result = ChiSquareGoodnessOfFit(observed, probs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->RejectsFit());
  EXPECT_LT(result->p_value, 1e-10);
}

TEST(ChiSquareGofTest, SamplesFromTheModelPassAtNominalRate) {
  // Draw multinomial samples from the hypothesized distribution; the test
  // must reject at roughly the significance level, not more.
  num::Vector probs{0.1, 0.2, 0.4, 0.2, 0.1};
  Pcg32 rng(42);
  int rejections = 0;
  const int kExperiments = 400;
  for (int e = 0; e < kExperiments; ++e) {
    std::vector<double> observed(5, 0.0);
    for (int i = 0; i < 500; ++i) {
      double u = rng.NextDouble();
      double acc = 0.0;
      for (size_t k = 0; k < 5; ++k) {
        acc += probs[k];
        if (u < acc) {
          observed[k] += 1.0;
          break;
        }
      }
    }
    StatusOr<ChiSquareResult> result =
        ChiSquareGoodnessOfFit(observed, probs);
    ASSERT_TRUE(result.ok());
    if (result->RejectsFit(0.05)) ++rejections;
  }
  double rate = static_cast<double>(rejections) / kExperiments;
  EXPECT_LT(rate, 0.10);
  EXPECT_GT(rate, 0.005);
}

TEST(ChiSquareGofTest, PoolsSparseBins) {
  // Tail bins with tiny expectation must be merged, not divided by ~0.
  num::Vector probs{0.90, 0.05, 0.03, 0.015, 0.005};
  std::vector<double> observed = {180, 10, 6, 3, 1};  // total 200
  StatusOr<ChiSquareResult> result = ChiSquareGoodnessOfFit(observed, probs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Expected counts 180/10/6/3/1: the last two bins (3 + 1 < 5) pool into
  // their neighbour.
  EXPECT_EQ(result->merged_bins, 3u);
  EXPECT_FALSE(result->RejectsFit());
}

TEST(ChiSquareGofTest, SingleBinAfterPoolingRejected) {
  // 100 observations with a 0.96 head leave < 5 expected in the tail; the
  // whole tail folds into the head and the test must refuse to run.
  num::Vector probs{0.96, 0.02, 0.01, 0.005, 0.005};
  std::vector<double> observed = {96, 2, 1, 1, 0};
  EXPECT_FALSE(ChiSquareGoodnessOfFit(observed, probs).ok());
}

TEST(ChiSquareGofTest, DegenerateInputsRejected) {
  EXPECT_FALSE(ChiSquareGoodnessOfFit({}, num::Vector{1.0}).ok());
  EXPECT_FALSE(
      ChiSquareGoodnessOfFit({0, 0}, num::Vector{0.5, 0.5}).ok());
  EXPECT_FALSE(
      ChiSquareGoodnessOfFit({-1, 2}, num::Vector{0.5, 0.5}).ok());
  // Probabilities summing far from 1.
  EXPECT_FALSE(
      ChiSquareGoodnessOfFit({10, 10}, num::Vector{0.2, 0.2}).ok());
  // Single bin after pooling.
  EXPECT_FALSE(
      ChiSquareGoodnessOfFit({3, 3}, num::Vector{0.5, 0.5}).ok());
}

TEST(ChiSquareGofTest, ToStringMentionsFields) {
  num::Vector probs{0.5, 0.5};
  std::string s =
      ChiSquareGoodnessOfFit({100, 120}, probs)->ToString();
  EXPECT_NE(s.find("chi2="), std::string::npos);
  EXPECT_NE(s.find("dof="), std::string::npos);
  EXPECT_NE(s.find("p="), std::string::npos);
}

}  // namespace
}  // namespace popan::sim
