#include "sim/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

using geo::Box2;
using geo::Point2;

TEST(PointDistributionTest, KindNames) {
  EXPECT_EQ(PointDistributionKindToString(PointDistributionKind::kUniform),
            "uniform");
  EXPECT_EQ(PointDistributionKindToString(PointDistributionKind::kGaussian),
            "gaussian");
  EXPECT_EQ(PointDistributionKindToString(PointDistributionKind::kClustered),
            "clustered");
  EXPECT_EQ(PointDistributionKindToString(PointDistributionKind::kDiagonal),
            "diagonal");
}

TEST(PointDistributionTest, AllKindsStayInBox) {
  Box2 box(Point2(-1.0, 2.0), Point2(3.0, 4.0));
  PointDistributionParams params;
  Pcg32 rng(10);
  for (PointDistributionKind kind :
       {PointDistributionKind::kUniform, PointDistributionKind::kGaussian,
        PointDistributionKind::kClustered,
        PointDistributionKind::kDiagonal}) {
    for (int i = 0; i < 2000; ++i) {
      Point2 p = DrawPoint(kind, params, box, rng, 5);
      EXPECT_TRUE(box.Contains(p))
          << PointDistributionKindToString(kind) << " " << p.ToString();
    }
  }
}

TEST(PointDistributionTest, UniformMomentsMatch) {
  Box2 box = Box2::UnitCube();
  PointDistributionParams params;
  Pcg32 rng(20);
  double sx = 0.0, sy = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Point2 p = DrawPoint(PointDistributionKind::kUniform, params, box, rng);
    sx += p.x();
    sy += p.y();
  }
  EXPECT_NEAR(sx / n, 0.5, 0.01);
  EXPECT_NEAR(sy / n, 0.5, 0.01);
}

TEST(PointDistributionTest, GaussianConcentratesInCenter) {
  Box2 box = Box2::UnitCube();
  PointDistributionParams params;  // sigma = 0.25
  Pcg32 rng(30);
  int center_hits = 0;
  const int n = 20000;
  Box2 center(Point2(0.25, 0.25), Point2(0.75, 0.75));
  for (int i = 0; i < n; ++i) {
    Point2 p = DrawPoint(PointDistributionKind::kGaussian, params, box, rng);
    if (center.Contains(p)) ++center_hits;
  }
  // Uniform would give 25%; the central half-extent box is the +-1 sigma
  // region, which holds ~0.68^2 ~ 0.47 of the clipped mass.
  EXPECT_GT(static_cast<double>(center_hits) / n, 0.40);
}

TEST(PointDistributionTest, ClusteredSharesCentersAcrossDraws) {
  Box2 box = Box2::UnitCube();
  PointDistributionParams params;
  params.num_clusters = 3;
  params.cluster_sigma_fraction = 0.001;  // essentially points at centers
  Pcg32 rng_a(40);
  Pcg32 rng_b(41);
  // With a shared cluster_seed, both streams draw from the same 3 centers.
  std::vector<Point2> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(DrawPoint(PointDistributionKind::kClustered, params, box,
                          rng_a, /*cluster_seed=*/77));
    b.push_back(DrawPoint(PointDistributionKind::kClustered, params, box,
                          rng_b, /*cluster_seed=*/77));
  }
  // Every point of b lies within 0.02 of some point of a (same centers).
  for (const Point2& p : b) {
    double best = 1e9;
    for (const Point2& q : a) best = std::min(best, p.Distance(q));
    EXPECT_LT(best, 0.02);
  }
}

TEST(PointDistributionTest, DiagonalHugsTheDiagonal) {
  Box2 box = Box2::UnitCube();
  PointDistributionParams params;
  Pcg32 rng(50);
  for (int i = 0; i < 2000; ++i) {
    Point2 p = DrawPoint(PointDistributionKind::kDiagonal, params, box, rng);
    EXPECT_LT(std::abs(p.x() - p.y()), 0.25);
  }
}

TEST(PointDistributionTest, DrawPointsBatches) {
  Box2 box = Box2::UnitCube();
  PointDistributionParams params;
  Pcg32 rng(60);
  std::vector<Point2> points =
      DrawPoints(PointDistributionKind::kUniform, params, box, 123, rng);
  EXPECT_EQ(points.size(), 123u);
}

TEST(PointDistributionTest, WorksInOtherDimensions) {
  geo::Box1 line = geo::Box1::UnitCube();
  geo::Box3 cube = geo::Box3::UnitCube();
  PointDistributionParams params;
  Pcg32 rng(70);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(line.Contains(
        DrawPoint(PointDistributionKind::kUniform, params, line, rng)));
    EXPECT_TRUE(cube.Contains(
        DrawPoint(PointDistributionKind::kGaussian, params, cube, rng)));
  }
}

TEST(SegmentDistributionTest, SegmentsIntersectTheBox) {
  Box2 box = Box2::UnitCube();
  SegmentDistributionParams params;
  Pcg32 rng(80);
  for (SegmentDistributionKind kind :
       {SegmentDistributionKind::kUniformEndpoints,
        SegmentDistributionKind::kChord,
        SegmentDistributionKind::kRoadLike}) {
    for (int i = 0; i < 500; ++i) {
      geo::Segment s = DrawSegment(kind, params, box, rng);
      EXPECT_TRUE(s.IntersectsBox(box));
    }
  }
}

TEST(SegmentDistributionTest, RoadLikeLengthsBounded) {
  Box2 box = Box2::UnitCube();
  SegmentDistributionParams params;
  params.road_length_fraction = 0.1;
  Pcg32 rng(90);
  for (int i = 0; i < 500; ++i) {
    geo::Segment s =
        DrawSegment(SegmentDistributionKind::kRoadLike, params, box, rng);
    EXPECT_LE(s.Length(), 0.1 + 1e-12);
  }
}

TEST(SegmentDistributionTest, ChordEndpointsOnBoundary) {
  Box2 box = Box2::UnitCube();
  SegmentDistributionParams params;
  Pcg32 rng(100);
  for (int i = 0; i < 200; ++i) {
    geo::Segment s =
        DrawSegment(SegmentDistributionKind::kChord, params, box, rng);
    auto on_boundary = [&box](const Point2& p) {
      return p.x() == box.lo().x() || p.x() == box.hi().x() ||
             p.y() == box.lo().y() || p.y() == box.hi().y();
    };
    EXPECT_TRUE(on_boundary(s.a()));
    EXPECT_TRUE(on_boundary(s.b()));
  }
}

TEST(PointDistributionTest, DeterministicInSeed) {
  Box2 box = Box2::UnitCube();
  PointDistributionParams params;
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(
        DrawPoint(PointDistributionKind::kGaussian, params, box, a),
        DrawPoint(PointDistributionKind::kGaussian, params, box, b));
  }
}

}  // namespace
}  // namespace popan::sim
