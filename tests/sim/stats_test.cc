#include "sim/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::sim {
namespace {

TEST(StatsTest, EmptySample) {
  SampleSummary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SingleObservation) {
  SampleSummary s = Summarize({4.2});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.mean, 4.2);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95_low, 4.2);
  EXPECT_EQ(s.ci95_high, 4.2);
  EXPECT_TRUE(s.CiContains(4.2));
  EXPECT_FALSE(s.CiContains(4.3));
}

TEST(StatsTest, KnownSample) {
  // {1, 2, 3, 4, 5}: mean 3, sample stddev sqrt(2.5).
  SampleSummary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.standard_error, std::sqrt(2.5 / 5.0), 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  // t(4) = 2.776: CI half-width 2.776 * 0.7071 ~ 1.963.
  EXPECT_NEAR(s.ci95_high - s.mean, 2.776 * std::sqrt(0.5), 1e-3);
  EXPECT_TRUE(s.CiContains(3.0));
  EXPECT_FALSE(s.CiContains(5.5));
}

TEST(StatsTest, TCriticalTableValues) {
  EXPECT_NEAR(TCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(TCritical95(9), 2.262, 1e-3);
  EXPECT_NEAR(TCritical95(30), 2.042, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.96, 1e-3);
  EXPECT_EQ(TCritical95(0), 0.0);
}

TEST(StatsTest, TCriticalDecreasesWithDof) {
  for (size_t dof = 2; dof <= 30; ++dof) {
    EXPECT_LT(TCritical95(dof), TCritical95(dof - 1)) << dof;
  }
}

TEST(StatsTest, CiCoversTrueMeanAtNominalRate) {
  // Draw many samples from N(10, 2^2) and check the 95% CI covers 10
  // roughly 95% of the time.
  Pcg32 rng(99);
  const int kExperiments = 2000;
  int covered = 0;
  for (int e = 0; e < kExperiments; ++e) {
    std::vector<double> sample;
    for (int i = 0; i < 10; ++i) sample.push_back(rng.NextGaussian(10, 2));
    if (Summarize(sample).CiContains(10.0)) ++covered;
  }
  double rate = static_cast<double>(covered) / kExperiments;
  EXPECT_GT(rate, 0.92);
  EXPECT_LT(rate, 0.975);
}

TEST(StatsTest, ToStringFormats) {
  SampleSummary s = Summarize({1.0, 2.0, 3.0});
  std::string out = s.ToString(2);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace popan::sim
