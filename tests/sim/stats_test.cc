#include "sim/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::sim {
namespace {

TEST(StatsTest, EmptySample) {
  SampleSummary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SingleObservation) {
  SampleSummary s = Summarize({4.2});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.mean, 4.2);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95_low, 4.2);
  EXPECT_EQ(s.ci95_high, 4.2);
  EXPECT_TRUE(s.CiContains(4.2));
  EXPECT_FALSE(s.CiContains(4.3));
}

TEST(StatsTest, KnownSample) {
  // {1, 2, 3, 4, 5}: mean 3, sample stddev sqrt(2.5).
  SampleSummary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.standard_error, std::sqrt(2.5 / 5.0), 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  // t(4) = 2.776: CI half-width 2.776 * 0.7071 ~ 1.963.
  EXPECT_NEAR(s.ci95_high - s.mean, 2.776 * std::sqrt(0.5), 1e-3);
  EXPECT_TRUE(s.CiContains(3.0));
  EXPECT_FALSE(s.CiContains(5.5));
}

TEST(StatsTest, TCriticalTableValues) {
  EXPECT_NEAR(TCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(TCritical95(9), 2.262, 1e-3);
  EXPECT_NEAR(TCritical95(30), 2.042, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.96, 1e-3);
  EXPECT_EQ(TCritical95(0), 0.0);
}

TEST(StatsTest, TCriticalDecreasesWithDof) {
  for (size_t dof = 2; dof <= 30; ++dof) {
    EXPECT_LT(TCritical95(dof), TCritical95(dof - 1)) << dof;
  }
}

TEST(StatsTest, CiCoversTrueMeanAtNominalRate) {
  // Draw many samples from N(10, 2^2) and check the 95% CI covers 10
  // roughly 95% of the time.
  Pcg32 rng(99);
  const int kExperiments = 2000;
  int covered = 0;
  for (int e = 0; e < kExperiments; ++e) {
    std::vector<double> sample;
    for (int i = 0; i < 10; ++i) sample.push_back(rng.NextGaussian(10, 2));
    if (Summarize(sample).CiContains(10.0)) ++covered;
  }
  double rate = static_cast<double>(covered) / kExperiments;
  EXPECT_GT(rate, 0.92);
  EXPECT_LT(rate, 0.975);
}

TEST(StatsTest, ToStringFormats) {
  SampleSummary s = Summarize({1.0, 2.0, 3.0});
  std::string out = s.ToString(2);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("n=3"), std::string::npos);
}

TEST(RunningMomentsTest, MatchesSummarizeOnKnownSample) {
  std::vector<double> sample = {1, 2, 3, 4, 5};
  RunningMoments m;
  for (double v : sample) m.Add(v);
  SampleSummary reference = Summarize(sample);
  EXPECT_EQ(m.count(), 5u);
  EXPECT_NEAR(m.mean(), reference.mean, 1e-12);
  EXPECT_NEAR(m.SampleStddev(), reference.stddev, 1e-12);
  EXPECT_EQ(m.min(), 1.0);
  EXPECT_EQ(m.max(), 5.0);
  SampleSummary s = m.ToSummary();
  EXPECT_NEAR(s.ci95_low, reference.ci95_low, 1e-9);
  EXPECT_NEAR(s.ci95_high, reference.ci95_high, 1e-9);
  EXPECT_NEAR(s.standard_error, reference.standard_error, 1e-12);
}

TEST(RunningMomentsTest, EmptyAndSingle) {
  RunningMoments empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.SampleVariance(), 0.0);
  EXPECT_EQ(empty.ToSummary().n, 0u);

  RunningMoments one;
  one.Add(4.2);
  EXPECT_EQ(one.mean(), 4.2);
  EXPECT_EQ(one.SampleStddev(), 0.0);
  EXPECT_EQ(one.ToSummary().ci95_low, 4.2);
}

TEST(RunningMomentsTest, ChanMergeMatchesSinglePass) {
  // Every split point of the sample must merge back to the whole-sample
  // moments — the invariant the parallel reduction depends on.
  Pcg32 rng(17);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.NextGaussian(50, 9));
  RunningMoments whole;
  for (double v : sample) whole.Add(v);
  for (size_t split : {size_t{0}, size_t{1}, size_t{17}, size_t{100},
                       size_t{199}, size_t{200}}) {
    RunningMoments left, right;
    for (size_t i = 0; i < split; ++i) left.Add(sample[i]);
    for (size_t i = split; i < sample.size(); ++i) right.Add(sample[i]);
    left.Merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.SampleVariance(), whole.SampleVariance(), 1e-8);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
  }
}

TEST(RunningMomentsTest, MergeWithEmptyIsIdentity) {
  RunningMoments m;
  m.Add(1.0);
  m.Add(3.0);
  RunningMoments empty;
  RunningMoments copy = m;
  copy.Merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_EQ(copy.mean(), m.mean());
  empty.Merge(m);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), m.mean());
  EXPECT_EQ(empty.min(), 1.0);
  EXPECT_EQ(empty.max(), 3.0);
}

TEST(HistogramTest, AddAndQuery) {
  Histogram h;
  EXPECT_EQ(h.Total(), 0u);
  EXPECT_EQ(h.MeanBin(), 0.0);
  h.Add(0);
  h.Add(2, 3);
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_EQ(h.CountAt(0), 1u);
  EXPECT_EQ(h.CountAt(1), 0u);
  EXPECT_EQ(h.CountAt(2), 3u);
  EXPECT_EQ(h.CountAt(99), 0u);
  EXPECT_EQ(h.MaxBin(), 2u);
  EXPECT_DOUBLE_EQ(h.MeanBin(), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(h.ProportionAt(2), 0.75);
}

TEST(HistogramTest, MergeIsExactRegardlessOfPartition) {
  // Integer bin counts: a merged histogram is bit-identical to the
  // histogram of the pooled sample, however the sample was split.
  Pcg32 rng(5);
  std::vector<size_t> bins;
  for (int i = 0; i < 500; ++i) bins.push_back(rng.NextBounded(12));
  Histogram whole;
  for (size_t b : bins) whole.Add(b);
  Histogram left, right;
  for (size_t i = 0; i < bins.size(); ++i) {
    (i % 3 == 0 ? left : right).Add(bins[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.Total(), whole.Total());
  EXPECT_EQ(left.MaxBin(), whole.MaxBin());
  for (size_t b = 0; b <= whole.MaxBin(); ++b) {
    EXPECT_EQ(left.CountAt(b), whole.CountAt(b)) << b;
  }
}

TEST(HistogramTest, MergeGrowsBinRange) {
  Histogram small, large;
  small.Add(1);
  large.Add(10, 2);
  small.Merge(large);
  EXPECT_EQ(small.MaxBin(), 10u);
  EXPECT_EQ(small.CountAt(10), 2u);
  EXPECT_EQ(small.Total(), 3u);
}

}  // namespace
}  // namespace popan::sim
