#include "sim/table.h"

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

TEST(TextTableTest, FmtDouble) {
  EXPECT_EQ(TextTable::Fmt(0.5, 3), "0.500");
  EXPECT_EQ(TextTable::Fmt(1.03, 2), "1.03");
  EXPECT_EQ(TextTable::Fmt(-2.5, 1), "-2.5");
}

TEST(TextTableTest, FmtSize) {
  EXPECT_EQ(TextTable::Fmt(size_t{1024}), "1024");
  EXPECT_EQ(TextTable::Fmt(size_t{0}), "0");
}

TEST(TextTableTest, RenderContainsTitleHeaderAndRows) {
  TextTable table("Table 2: Average Node Occupancy");
  table.SetHeader({"m", "experimental", "theoretical", "% diff"});
  table.AddRow({"1", "0.46", "0.50", "7.2"});
  table.AddRow({"2", "0.92", "1.03", "10.8"});
  std::string out = table.Render();
  EXPECT_NE(out.find("Table 2"), std::string::npos);
  EXPECT_NE(out.find("experimental"), std::string::npos);
  EXPECT_NE(out.find("10.8"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable table("t");
  table.SetHeader({"a", "long_header"});
  table.AddRow({"123456", "x"});
  std::string out = table.Render();
  // Find the header and data lines; the second column must start at the
  // same offset in both.
  size_t header_pos = out.find("long_header");
  size_t data_x = out.find("          x");  // x right-aligned to width 11
  EXPECT_NE(header_pos, std::string::npos);
  EXPECT_NE(data_x, std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table("t");
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  // Must not crash; renders the missing cells empty.
  std::string out = table.Render();
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TextTableTest, EmptyTableRenders) {
  TextTable table("empty");
  table.SetHeader({});
  std::string out = table.Render();
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(TextTableTest, RuleSpansWidth) {
  TextTable table("wide title exceeding columns");
  table.SetHeader({"x"});
  table.AddRow({"1"});
  std::string out = table.Render();
  // First line is the rule; it must cover the title length.
  size_t first_newline = out.find('\n');
  EXPECT_GE(first_newline, std::string("wide title exceeding columns").size());
}

}  // namespace
}  // namespace popan::sim
