#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.num_points = 200;
  spec.trials = 3;
  spec.capacity = 2;
  spec.max_depth = 16;
  spec.base_seed = 99;
  return spec;
}

TEST(ExperimentTest, ProducesRequestedEnsemble) {
  ExperimentSpec spec = SmallSpec();
  ExperimentResult result = RunPrQuadtreeExperiment(spec);
  EXPECT_EQ(result.trials, 3u);
  EXPECT_EQ(result.per_trial_occupancy.size(), 3u);
  EXPECT_EQ(result.pooled_census.ItemCount(), 3u * 200u);
}

TEST(ExperimentTest, DeterministicInSeed) {
  ExperimentResult a = RunPrQuadtreeExperiment(SmallSpec());
  ExperimentResult b = RunPrQuadtreeExperiment(SmallSpec());
  EXPECT_EQ(a.mean_occupancy, b.mean_occupancy);
  EXPECT_EQ(a.mean_leaves, b.mean_leaves);
  EXPECT_EQ(a.proportions, b.proportions);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentSpec other = SmallSpec();
  other.base_seed = 100;
  ExperimentResult a = RunPrQuadtreeExperiment(SmallSpec());
  ExperimentResult b = RunPrQuadtreeExperiment(other);
  EXPECT_NE(a.mean_leaves, b.mean_leaves);
}

TEST(ExperimentTest, ProportionsSumToOne) {
  ExperimentResult result = RunPrQuadtreeExperiment(SmallSpec());
  EXPECT_NEAR(result.proportions.Sum(), 1.0, 1e-12);
  EXPECT_GE(result.proportions.size(), 3u);  // capacity + 1
}

TEST(ExperimentTest, MeanMatchesPerTrialValues) {
  ExperimentResult result = RunPrQuadtreeExperiment(SmallSpec());
  double sum = 0.0;
  for (double occ : result.per_trial_occupancy) sum += occ;
  EXPECT_NEAR(result.mean_occupancy, sum / 3.0, 1e-12);
}

TEST(ExperimentTest, TrialScatterIsModest) {
  // The paper: "Corresponding data points from different trees were
  // typically within about 10% of each other."
  ExperimentSpec spec = SmallSpec();
  spec.trials = 10;
  spec.num_points = 1000;
  spec.capacity = 1;
  ExperimentResult result = RunPrQuadtreeExperiment(spec);
  EXPECT_LT(result.stddev_occupancy / result.mean_occupancy, 0.10);
}

TEST(ExperimentTest, GaussianDistributionRuns) {
  ExperimentSpec spec = SmallSpec();
  spec.distribution = PointDistributionKind::kGaussian;
  ExperimentResult result = RunPrQuadtreeExperiment(spec);
  EXPECT_EQ(result.pooled_census.ItemCount(), 3u * 200u);
  EXPECT_GT(result.mean_occupancy, 0.0);
}

TEST(ExperimentTest, BintreeAndOctreeVariants) {
  ExperimentSpec spec = SmallSpec();
  ExperimentResult bintree = RunPrTreeExperiment<1>(spec);
  ExperimentResult octree = RunPrTreeExperiment<3>(spec);
  EXPECT_EQ(bintree.pooled_census.ItemCount(), 600u);
  EXPECT_EQ(octree.pooled_census.ItemCount(), 600u);
  // Bintrees pack tighter than octrees at the same capacity.
  EXPECT_GT(bintree.mean_occupancy, octree.mean_occupancy);
}

TEST(ExperimentTest, OccupancySweepFollowsSchedule) {
  ExperimentSpec spec = SmallSpec();
  spec.trials = 2;
  std::vector<size_t> schedule = {64, 128, 256};
  core::OccupancySeries series = RunOccupancySweep(spec, schedule);
  ASSERT_EQ(series.sample_sizes, schedule);
  ASSERT_EQ(series.average_occupancy.size(), 3u);
  ASSERT_EQ(series.nodes.size(), 3u);
  for (double occ : series.average_occupancy) {
    EXPECT_GT(occ, 0.0);
    EXPECT_LE(occ, 2.0);  // capacity
  }
  // More points, more nodes.
  EXPECT_LT(series.nodes[0], series.nodes[2]);
}

TEST(ExperimentTest, MaxDepthTruncationProducesOverfullLeaves) {
  ExperimentSpec spec = SmallSpec();
  spec.capacity = 1;
  spec.max_depth = 3;  // only 64 possible leaves for 200 points
  ExperimentResult result = RunPrQuadtreeExperiment(spec);
  EXPECT_GT(result.pooled_census.MaxOccupancy(), 1u);
}

}  // namespace
}  // namespace popan::sim
