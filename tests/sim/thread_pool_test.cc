#include "sim/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(std::memory_order_relaxed), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForWithCoarseGrain) {
  ThreadPool pool(3);
  const size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(
      kN,
      [&](size_t i) { visits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/64);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(std::memory_order_relaxed), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  size_t sum = 0;
  // No workers: everything runs on the calling thread, so plain (unsynchronized)
  // state is safe.
  pool.ParallelFor(100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 100);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, ActuallyRunsOnMultipleThreads) {
  // Rendezvous: two chunks each block until the other arrives, which can
  // only complete if they run on different threads. Works on any machine
  // (a blocking wait yields the CPU, so even one core schedules both); the
  // timeout turns a lost second thread into a failure, not a hang.
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool both_seen = false;
  pool.ParallelFor(2, [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    if (cv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return arrived == 2; })) {
      both_seen = true;
    }
  });
  EXPECT_TRUE(both_seen);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, UsableAcrossSequentialLoops) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(50, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(std::memory_order_relaxed), 1225u);
  }
}

TEST(ThreadPoolTest, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 3);
}

}  // namespace
}  // namespace popan::sim
