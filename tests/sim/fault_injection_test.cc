#include "sim/fault_injection.h"

#include <string>

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

TEST(FaultInjectionTest, PlansAreDeterministic) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FaultPlan a = DeriveFaultPlan(seed, 1000);
    FaultPlan b = DeriveFaultPlan(seed, 1000);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.bit, b.bit);
    EXPECT_EQ(a.garbage_seed, b.garbage_seed);
  }
}

TEST(FaultInjectionTest, PlansVaryAcrossSeeds) {
  bool saw[3] = {false, false, false};
  for (uint64_t seed = 0; seed < 64; ++seed) {
    FaultPlan plan = DeriveFaultPlan(seed, 1000);
    saw[static_cast<int>(plan.kind)] = true;
    EXPECT_LT(plan.offset, 1000u);
    EXPECT_LT(plan.bit, 8);
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
  EXPECT_TRUE(saw[2]);
}

TEST(FaultInjectionTest, TruncateCutsAtTheOffset) {
  std::string bytes = "abcdefghij";
  FaultPlan plan;
  plan.kind = FaultKind::kTruncate;
  plan.offset = 4;
  EXPECT_EQ(ApplyFault(bytes, plan), "abcd");
  plan.offset = 100;  // beyond the end: nothing to cut
  EXPECT_EQ(ApplyFault(bytes, plan), bytes);
}

TEST(FaultInjectionTest, BitFlipTouchesExactlyOneBit) {
  std::string bytes = "abcdefghij";
  FaultPlan plan;
  plan.kind = FaultKind::kBitFlip;
  plan.offset = 3;
  plan.bit = 5;
  std::string flipped = ApplyFault(bytes, plan);
  ASSERT_EQ(flipped.size(), bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(static_cast<unsigned char>(flipped[i]),
                static_cast<unsigned char>(bytes[i]) ^ (1u << 5));
    } else {
      EXPECT_EQ(flipped[i], bytes[i]);
    }
  }
  // Applying the same flip twice restores the original.
  EXPECT_EQ(ApplyFault(flipped, plan), bytes);
  plan.offset = 100;  // beyond the end: no-op
  EXPECT_EQ(ApplyFault(bytes, plan), bytes);
}

TEST(FaultInjectionTest, TornWriteTruncatesThenAppendsGarbage) {
  std::string bytes = "abcdefghij";
  FaultPlan plan;
  plan.kind = FaultKind::kTornWrite;
  plan.offset = 6;
  plan.garbage_seed = 42;
  std::string torn = ApplyFault(bytes, plan);
  EXPECT_EQ(torn.substr(0, 6), "abcdef");
  EXPECT_GE(torn.size(), 7u);   // at least one garbage byte
  EXPECT_LE(torn.size(), 22u);  // at most sixteen
  // Same plan, same garbage.
  EXPECT_EQ(ApplyFault(bytes, plan), torn);
  // Different garbage seed, different garbage (with overwhelming
  // probability — this pair differs).
  plan.garbage_seed = 43;
  EXPECT_NE(ApplyFault(bytes, plan), torn);
}

TEST(FaultInjectionTest, EmptyStreamIsSafe) {
  for (FaultKind kind : {FaultKind::kTruncate, FaultKind::kBitFlip,
                         FaultKind::kTornWrite}) {
    FaultPlan plan = DeriveFaultPlan(7, 0);
    plan.kind = kind;
    std::string result = ApplyFault(std::string(), plan);
    if (kind == FaultKind::kTornWrite) {
      EXPECT_GE(result.size(), 1u);
    } else {
      EXPECT_TRUE(result.empty());
    }
  }
}

TEST(FaultInjectionTest, FaultingStreamCapturesAndCorrupts) {
  FaultingStream stream;
  *stream.stream() << "hello " << 123 << "\n";
  EXPECT_EQ(stream.contents(), "hello 123\n");
  EXPECT_EQ(stream.bytes_written(), 10u);
  FaultPlan plan;
  plan.kind = FaultKind::kTruncate;
  plan.offset = 5;
  EXPECT_EQ(stream.CrashImage(plan), "hello");
}

TEST(FaultInjectionTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kTruncate), "truncate");
  EXPECT_STREQ(FaultKindName(FaultKind::kBitFlip), "bit-flip");
  EXPECT_STREQ(FaultKindName(FaultKind::kTornWrite), "torn-write");
}

}  // namespace
}  // namespace popan::sim
