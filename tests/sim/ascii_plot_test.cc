#include "sim/ascii_plot.h"

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

TEST(AsciiPlotTest, EmptyDataSaysSo) {
  std::string out = AsciiPlot("t", {}, {});
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiPlotTest, ContainsTitleAndMarkers) {
  std::string out =
      AsciiPlot("occupancy vs N", {64, 256, 1024}, {3.8, 3.3, 3.9});
  EXPECT_NE(out.find("occupancy vs N"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, AxisLabelsShowRange) {
  std::string out = AsciiPlot("t", {64, 4096}, {1.0, 2.0});
  EXPECT_NE(out.find("64"), std::string::npos);
  EXPECT_NE(out.find("4096"), std::string::npos);
  EXPECT_NE(out.find("2.0"), std::string::npos);  // y max label
  EXPECT_NE(out.find("log scale"), std::string::npos);
}

TEST(AsciiPlotTest, LinearAxisOption) {
  AsciiPlotOptions options;
  options.log_x = false;
  std::string out = AsciiPlot("t", {0.0, 1.0}, {1.0, 2.0}, options);
  EXPECT_EQ(out.find("log scale"), std::string::npos);
}

TEST(AsciiPlotTest, RespectsDimensions) {
  AsciiPlotOptions options;
  options.width = 20;
  options.height = 5;
  std::string out = AsciiPlot("t", {1, 10}, {0.0, 1.0}, options);
  // 1 title line + 5 plot rows + axis + labels = 8 lines.
  size_t lines = 0;
  for (char ch : out) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 8u);
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotCrash) {
  std::string out = AsciiPlot("flat", {1, 2, 4}, {3.0, 3.0, 3.0});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, SinglePoint) {
  std::string out = AsciiPlot("one", {10}, {5.0});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, ConnectDrawsInterpolation) {
  AsciiPlotOptions options;
  options.connect = true;
  std::string with = AsciiPlot("t", {1, 100}, {0.0, 10.0}, options);
  options.connect = false;
  std::string without = AsciiPlot("t", {1, 100}, {0.0, 10.0}, options);
  size_t dots_with = 0, dots_without = 0;
  for (char ch : with) dots_with += ch == '.';
  for (char ch : without) dots_without += ch == '.';
  EXPECT_GT(dots_with, dots_without);
}

TEST(AsciiPlotTest, MismatchedSizesDie) {
  EXPECT_DEATH(AsciiPlot("t", {1.0, 2.0}, {1.0}), "CHECK failed");
}

}  // namespace
}  // namespace popan::sim
