// Determinism contract of the parallel experiment engine: for a fixed
// seed, every statistic — and the rendered table built from it — is
// byte-identical whether the ensemble ran on 1, 2, or 8 threads.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/table.h"

namespace popan::sim {
namespace {

ExperimentSpec ParallelSpec() {
  ExperimentSpec spec;
  spec.num_points = 300;
  // More trials than one reduce chunk (16), so the chunked accumulator
  // merge path is exercised, not just single-chunk Welford.
  spec.trials = 20;
  spec.capacity = 2;
  spec.max_depth = 16;
  spec.base_seed = 424242;
  return spec;
}

/// Formats a result the way the bench drivers do, so "byte-identical
/// table output" is tested end to end, not just field equality.
std::string RenderTable(const ExperimentResult& result) {
  TextTable table("determinism probe");
  table.SetHeader({"stat", "value"});
  table.AddRow({"mean occupancy", TextTable::Fmt(result.mean_occupancy, 17)});
  table.AddRow({"stddev", TextTable::Fmt(result.stddev_occupancy, 17)});
  table.AddRow({"mean leaves", TextTable::Fmt(result.mean_leaves, 17)});
  table.AddRow({"summary", result.occupancy_summary.ToString(12)});
  for (size_t i = 0; i < result.proportions.size(); ++i) {
    table.AddRow({"p" + std::to_string(i),
                  TextTable::Fmt(result.proportions[i], 17)});
  }
  for (size_t i = 0; i < result.per_trial_occupancy.size(); ++i) {
    table.AddRow({"trial " + std::to_string(i),
                  TextTable::Fmt(result.per_trial_occupancy[i], 17)});
  }
  return table.Render();
}

void ExpectBitIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.mean_occupancy, b.mean_occupancy);
  EXPECT_EQ(a.stddev_occupancy, b.stddev_occupancy);
  EXPECT_EQ(a.mean_leaves, b.mean_leaves);
  EXPECT_EQ(a.per_trial_occupancy, b.per_trial_occupancy);
  EXPECT_EQ(a.proportions, b.proportions);
  EXPECT_EQ(a.occupancy_summary.mean, b.occupancy_summary.mean);
  EXPECT_EQ(a.occupancy_summary.stddev, b.occupancy_summary.stddev);
  EXPECT_EQ(a.occupancy_summary.ci95_low, b.occupancy_summary.ci95_low);
  EXPECT_EQ(a.occupancy_summary.ci95_high, b.occupancy_summary.ci95_high);
  EXPECT_EQ(a.pooled_census.LeafCount(), b.pooled_census.LeafCount());
  EXPECT_EQ(a.pooled_census.ItemCount(), b.pooled_census.ItemCount());
  ASSERT_EQ(a.pooled_census.MaxOccupancy(), b.pooled_census.MaxOccupancy());
  ASSERT_EQ(a.pooled_census.MaxDepth(), b.pooled_census.MaxDepth());
  for (size_t occ = 0; occ <= a.pooled_census.MaxOccupancy(); ++occ) {
    for (size_t depth = 0; depth <= a.pooled_census.MaxDepth(); ++depth) {
      EXPECT_EQ(a.pooled_census.CountAt(occ, depth),
                b.pooled_census.CountAt(occ, depth))
          << "occ=" << occ << " depth=" << depth;
    }
  }
  EXPECT_EQ(RenderTable(a), RenderTable(b));
}

TEST(ExperimentParallelTest, BitIdenticalAcross1And2And8Threads) {
  ExperimentSpec spec = ParallelSpec();
  ExperimentRunner serial(1);
  ExperimentRunner two(2);
  ExperimentRunner eight(8);
  ExperimentResult r1 = RunPrQuadtreeExperiment(spec, serial);
  ExperimentResult r2 = RunPrQuadtreeExperiment(spec, two);
  ExperimentResult r8 = RunPrQuadtreeExperiment(spec, eight);
  ExpectBitIdentical(r1, r2);
  ExpectBitIdentical(r1, r8);
}

TEST(ExperimentParallelTest, RepeatedRunsOnSameRunnerAreIdentical) {
  ExperimentSpec spec = ParallelSpec();
  ExperimentRunner runner(8);
  ExperimentResult a = RunPrQuadtreeExperiment(spec, runner);
  ExperimentResult b = RunPrQuadtreeExperiment(spec, runner);
  ExpectBitIdentical(a, b);
}

TEST(ExperimentParallelTest, SweepBitIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = ParallelSpec();
  spec.trials = 5;
  std::vector<size_t> schedule = {64, 128, 256, 512};
  ExperimentRunner serial(1);
  ExperimentRunner eight(8);
  core::OccupancySeries a = RunOccupancySweep(spec, schedule, serial);
  core::OccupancySeries b = RunOccupancySweep(spec, schedule, eight);
  ASSERT_EQ(a.sample_sizes, b.sample_sizes);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.average_occupancy, b.average_occupancy);
}

TEST(ExperimentParallelTest, TrialStreamsAreCounterBased) {
  // Trial t's contribution must equal a standalone run of trial t alone:
  // streams depend only on (base_seed, trial index), never on scheduling.
  ExperimentSpec spec = ParallelSpec();
  ExperimentRunner runner(8);
  ExperimentResult ensemble = RunPrQuadtreeExperiment(spec, runner);
  internal_experiment::TrialOutcome solo =
      internal_experiment::RunSingleTrial<2>(spec, 7);
  EXPECT_EQ(ensemble.per_trial_occupancy[7], solo.occupancy);
}

TEST(ExperimentParallelTest, BintreeAndOctreeParallelToo) {
  ExperimentSpec spec = ParallelSpec();
  ExperimentRunner serial(1);
  ExperimentRunner four(4);
  ExperimentResult b1 = RunPrTreeExperiment<1>(spec, serial);
  ExperimentResult b4 = RunPrTreeExperiment<1>(spec, four);
  ExpectBitIdentical(b1, b4);
  ExperimentResult o1 = RunPrTreeExperiment<3>(spec, serial);
  ExperimentResult o4 = RunPrTreeExperiment<3>(spec, four);
  ExpectBitIdentical(o1, o4);
}

TEST(ExperimentParallelTest, RunnerReportsThreadCount) {
  ExperimentRunner runner(3);
  EXPECT_EQ(runner.num_threads(), 3u);
  EXPECT_GE(ExperimentRunner(0).num_threads(), 1u);
}

TEST(ExperimentParallelTest, DefaultThreadCountHonorsEnvOverride) {
  ASSERT_EQ(setenv("POPAN_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  ASSERT_EQ(setenv("POPAN_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);  // unparsable: hardware fallback
  ASSERT_EQ(setenv("POPAN_THREADS", "0", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);  // zero is invalid: fallback
  ASSERT_EQ(setenv("POPAN_THREADS", "-3", 1), 0);
  EXPECT_LE(DefaultThreadCount(), 4096u);  // strtoul must not wrap the sign
  ASSERT_EQ(setenv("POPAN_THREADS", "99999999999999999999", 1), 0);
  EXPECT_LE(DefaultThreadCount(), 4096u);  // ERANGE saturation: fallback
  ASSERT_EQ(unsetenv("POPAN_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace popan::sim
