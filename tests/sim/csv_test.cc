#include "sim/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace popan::sim {
namespace {

TEST(CsvWriterTest, PlainRows) {
  CsvWriter csv;
  csv.WriteRow({"a", "b", "c"});
  csv.WriteRow({"1", "2", "3"});
  EXPECT_EQ(csv.ToString(), "a,b,c\n1,2,3\n");
}

TEST(CsvWriterTest, EmptyWriter) {
  CsvWriter csv;
  EXPECT_EQ(csv.ToString(), "");
}

TEST(CsvWriterTest, QuotesCommas) {
  CsvWriter csv;
  csv.WriteRow({"a,b", "c"});
  EXPECT_EQ(csv.ToString(), "\"a,b\",c\n");
}

TEST(CsvWriterTest, EscapesQuotes) {
  CsvWriter csv;
  csv.WriteRow({"say \"hi\""});
  EXPECT_EQ(csv.ToString(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, QuotesNewlines) {
  CsvWriter csv;
  csv.WriteRow({"two\nlines"});
  EXPECT_EQ(csv.ToString(), "\"two\nlines\"\n");
}

TEST(CsvWriterTest, NumericRowFullPrecision) {
  CsvWriter csv;
  csv.WriteNumericRow({0.1, 2.0});
  std::string out = csv.ToString();
  EXPECT_NE(out.find("0.1000000000000000"), std::string::npos);
  EXPECT_NE(out.find(",2\n"), std::string::npos);
}

TEST(CsvWriterTest, WriteToFileRoundTrips) {
  CsvWriter csv;
  csv.WriteRow({"n", "occupancy"});
  csv.WriteRow({"64", "3.79"});
  std::string path = testing::TempDir() + "/popan_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "n,occupancy");
  EXPECT_EQ(line2, "64,3.79");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter csv;
  csv.WriteRow({"x"});
  Status s = csv.WriteToFile("/nonexistent_dir_zzz/file.csv");
  EXPECT_FALSE(s.ok());
}

TEST(CsvWriterTest, EmptyCells) {
  CsvWriter csv;
  csv.WriteRow({"", "x", ""});
  EXPECT_EQ(csv.ToString(), ",x,\n");
}

}  // namespace
}  // namespace popan::sim
