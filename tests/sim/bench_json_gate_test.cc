// The flat-JSON reader and the integer-field reference gate the perf CI
// leg runs: parse what BenchJson emits (and only that shape), compare
// integer fields exactly, and honor POPAN_BENCH_REFERENCE_DIR.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/bench_json.h"

namespace popan::sim {
namespace {

TEST(BenchRecordTest, ParsesBenchJsonOutputRoundTrip) {
  BenchJson json("roundtrip");
  json.Add("count", static_cast<uint64_t>(42))
      .Add("seconds", 0.125)
      .Add("label", std::string("tree walk"))
      .Add("checksum", static_cast<uint64_t>(15063389225694513970ULL));
  StatusOr<BenchRecord> record = BenchRecord::Parse(json.ToJson());
  ASSERT_TRUE(record.ok()) << record.status().message();
  EXPECT_TRUE(record.value().Has("bench"));
  EXPECT_TRUE(record.value().Has("count"));
  EXPECT_FALSE(record.value().Has("missing"));
  StatusOr<int64_t> count = record.value().Integer("count");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(42, count.value());
  // Full-width unsigned counters survive the round trip bit-exactly.
  StatusOr<int64_t> checksum = record.value().Integer("checksum");
  ASSERT_TRUE(checksum.ok());
  EXPECT_EQ(static_cast<int64_t>(15063389225694513970ULL), checksum.value());
  StatusOr<std::string> seconds = record.value().Raw("seconds");
  ASSERT_TRUE(seconds.ok());
  EXPECT_EQ(0.125, std::stod(seconds.value()));
  StatusOr<std::string> label = record.value().Raw("label");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ("\"tree walk\"", label.value());
}

TEST(BenchRecordTest, RejectsMalformedInput) {
  EXPECT_FALSE(BenchRecord::Parse("").ok());
  EXPECT_FALSE(BenchRecord::Parse("{\"a\": 1").ok());
  EXPECT_FALSE(BenchRecord::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(BenchRecord::Parse("{\"a\": }").ok());
  EXPECT_FALSE(BenchRecord::Parse("{a: 1}").ok());
  EXPECT_TRUE(BenchRecord::Parse("{}").ok());
  EXPECT_TRUE(BenchRecord::Parse("{\n  \"a\": 1,\n  \"b\": -2\n}\n").ok());
}

TEST(BenchRecordTest, IntegerRejectsNonIntegerFields) {
  StatusOr<BenchRecord> record =
      BenchRecord::Parse("{\"f\": 0.5, \"s\": \"x\", \"i\": 7}");
  ASSERT_TRUE(record.ok());
  EXPECT_FALSE(record.value().Integer("f").ok());
  EXPECT_FALSE(record.value().Integer("s").ok());
  EXPECT_FALSE(record.value().Integer("missing").ok());
  StatusOr<int64_t> i = record.value().Integer("i");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(7, i.value());
}

TEST(DiffIntegerFieldsTest, EqualAndDriftedFields) {
  StatusOr<BenchRecord> parsed_a =
      BenchRecord::Parse("{\"n\": 10, \"m\": 20, \"t\": 0.5}");
  StatusOr<BenchRecord> parsed_b =
      BenchRecord::Parse("{\"n\": 10, \"m\": 21, \"t\": 0.9}");
  ASSERT_TRUE(parsed_a.ok());
  ASSERT_TRUE(parsed_b.ok());
  const BenchRecord& a = parsed_a.value();
  const BenchRecord& b = parsed_b.value();
  EXPECT_TRUE(DiffIntegerFields(a, a, {"n", "m"}).ok());
  // Float fields are exempt from the gate by construction: only the
  // named integer fields are compared.
  EXPECT_TRUE(DiffIntegerFields(a, b, {"n"}).ok());
  Status drift = DiffIntegerFields(a, b, {"n", "m"});
  EXPECT_FALSE(drift.ok());
  EXPECT_NE(std::string::npos, drift.message().find("m"));
  // Asking to gate a float field is an error, not a silent pass.
  EXPECT_FALSE(DiffIntegerFields(a, b, {"t"}).ok());
}

class GateAgainstReferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bench_gate";
    std::remove((dir_ + "/BENCH_gate_demo.json").c_str());
  }

  void TearDown() override { unsetenv("POPAN_BENCH_REFERENCE_DIR"); }

  void WriteReference(const std::string& body) {
    std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(0, std::system(mkdir.c_str()));
    std::ofstream out(dir_ + "/BENCH_gate_demo.json");
    out << body;
  }

  std::string dir_;
};

TEST_F(GateAgainstReferenceTest, NoEnvironmentMeansNoGate) {
  unsetenv("POPAN_BENCH_REFERENCE_DIR");
  BenchJson json("gate_demo");
  json.Add("n", static_cast<uint64_t>(1));
  EXPECT_TRUE(GateAgainstReference(json, {"n"}).ok());
}

TEST_F(GateAgainstReferenceTest, MatchingReferencePasses) {
  BenchJson json("gate_demo");
  json.Add("n", static_cast<uint64_t>(123)).Add("seconds", 0.5);
  WriteReference("{\"bench\": \"gate_demo\", \"n\": 123, \"seconds\": 9.0}");
  setenv("POPAN_BENCH_REFERENCE_DIR", dir_.c_str(), 1);
  EXPECT_TRUE(GateAgainstReference(json, {"n"}).ok());
}

TEST_F(GateAgainstReferenceTest, DriftedReferenceFails) {
  BenchJson json("gate_demo");
  json.Add("n", static_cast<uint64_t>(124));
  WriteReference("{\"bench\": \"gate_demo\", \"n\": 123}");
  setenv("POPAN_BENCH_REFERENCE_DIR", dir_.c_str(), 1);
  Status gate = GateAgainstReference(json, {"n"});
  EXPECT_FALSE(gate.ok());
  EXPECT_NE(std::string::npos, gate.message().find("124"));
}

TEST_F(GateAgainstReferenceTest, MissingReferenceFileFails) {
  BenchJson json("gate_demo");
  json.Add("n", static_cast<uint64_t>(1));
  setenv("POPAN_BENCH_REFERENCE_DIR", "/nonexistent-bench-refs", 1);
  EXPECT_FALSE(GateAgainstReference(json, {"n"}).ok());
}

}  // namespace
}  // namespace popan::sim
