#include "spatial/census.h"

#include <gtest/gtest.h>

namespace popan::spatial {
namespace {

TEST(CensusTest, EmptyCensus) {
  Census c;
  EXPECT_EQ(c.LeafCount(), 0u);
  EXPECT_EQ(c.ItemCount(), 0u);
  EXPECT_EQ(c.AverageOccupancy(), 0.0);
  EXPECT_EQ(c.MaxOccupancy(), 0u);
  EXPECT_EQ(c.CountAt(3), 0u);
  EXPECT_TRUE(c.DepthsPresent().empty());
}

TEST(CensusTest, SingleLeaf) {
  Census c;
  c.AddLeaf(2, 5);
  EXPECT_EQ(c.LeafCount(), 1u);
  EXPECT_EQ(c.ItemCount(), 2u);
  EXPECT_EQ(c.CountAt(2), 1u);
  EXPECT_EQ(c.CountAt(2, 5), 1u);
  EXPECT_EQ(c.CountAt(2, 4), 0u);
  EXPECT_EQ(c.MaxOccupancy(), 2u);
  EXPECT_EQ(c.MaxDepth(), 5u);
}

TEST(CensusTest, AccumulatesCounts) {
  Census c;
  c.AddLeaf(0, 1);
  c.AddLeaf(0, 1);
  c.AddLeaf(1, 2);
  c.AddLeaf(3, 2);
  EXPECT_EQ(c.LeafCount(), 4u);
  EXPECT_EQ(c.ItemCount(), 4u);
  EXPECT_EQ(c.CountAt(0), 2u);
  EXPECT_EQ(c.AverageOccupancy(), 1.0);
}

TEST(CensusTest, PerDepthStatistics) {
  Census c;
  c.AddLeaf(1, 3);
  c.AddLeaf(0, 3);
  c.AddLeaf(2, 4);
  EXPECT_EQ(c.LeavesAtDepth(3), 2u);
  EXPECT_EQ(c.ItemsAtDepth(3), 1u);
  EXPECT_EQ(c.AverageOccupancyAtDepth(3), 0.5);
  EXPECT_EQ(c.AverageOccupancyAtDepth(4), 2.0);
  EXPECT_EQ(c.AverageOccupancyAtDepth(7), 0.0);
  EXPECT_EQ(c.DepthsPresent(), (std::vector<size_t>{3, 4}));
}

TEST(CensusTest, ProportionsSumToOne) {
  Census c;
  c.AddLeaf(0, 0);
  c.AddLeaf(1, 1);
  c.AddLeaf(1, 1);
  c.AddLeaf(2, 2);
  num::Vector p = c.Proportions();
  EXPECT_DOUBLE_EQ(p.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.25);
}

TEST(CensusTest, ProportionsMinSizePads) {
  Census c;
  c.AddLeaf(0, 0);
  num::Vector p = c.Proportions(4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[3], 0.0);
}

TEST(CensusTest, ProportionsOfEmptyCensusAreZeros) {
  Census c;
  num::Vector p = c.Proportions(3);
  EXPECT_EQ(p, num::Vector(3));
}

TEST(CensusTest, Merge) {
  Census a;
  a.AddLeaf(0, 1);
  a.AddLeaf(2, 2);
  Census b;
  b.AddLeaf(2, 3);
  b.AddLeaf(5, 1);
  a.Merge(b);
  EXPECT_EQ(a.LeafCount(), 4u);
  EXPECT_EQ(a.ItemCount(), 9u);
  EXPECT_EQ(a.CountAt(2), 2u);
  EXPECT_EQ(a.CountAt(5), 1u);
  EXPECT_EQ(a.CountAt(2, 3), 1u);
  EXPECT_EQ(a.MaxDepth(), 3u);
  EXPECT_EQ(a.MaxOccupancy(), 5u);
}

TEST(CensusTest, MergeIntoEmpty) {
  Census a;
  Census b;
  b.AddLeaf(1, 1);
  a.Merge(b);
  EXPECT_EQ(a.LeafCount(), 1u);
}

TEST(CensusTest, StorageUtilization) {
  Census c;
  c.AddLeaf(2, 0);
  c.AddLeaf(4, 0);
  EXPECT_DOUBLE_EQ(c.StorageUtilization(4), 0.75);
}

TEST(CensusTest, ToStringMentionsCounts) {
  Census c;
  c.AddLeaf(1, 0);
  std::string s = c.ToString();
  EXPECT_NE(s.find("leaves=1"), std::string::npos);
  EXPECT_NE(s.find("items=1"), std::string::npos);
}

// A minimal structure exposing VisitLeaves (member templates are not
// allowed in function-local classes, so this lives at namespace scope).
struct FakeTree {
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    int box = 0;  // box payload is unused by Census
    fn(box, 1, 0);
    fn(box, 2, 3);
    fn(box, 2, 1);
  }
};

TEST(CensusTest, TakeCensusFromVisitLeavesShape) {
  Census c = TakeCensus(FakeTree{});
  EXPECT_EQ(c.LeafCount(), 3u);
  EXPECT_EQ(c.ItemCount(), 4u);
  EXPECT_EQ(c.LeavesAtDepth(2), 2u);
}

}  // namespace
}  // namespace popan::spatial
