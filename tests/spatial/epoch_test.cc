#include "spatial/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace popan::spatial {
namespace {

/// Counts deletions through the raw Retire interface so tests can observe
/// exactly when the manager frees things.
std::atomic<int> g_freed{0};

int* NewTracked() { return new int(0); }

void TrackedDeleter(void* p) {
  delete static_cast<int*>(p);
  g_freed.fetch_add(1, std::memory_order_relaxed);
}

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override { g_freed.store(0, std::memory_order_relaxed); }
};

TEST_F(EpochTest, RetireAtCurrentEpochIsNotFreedUntilAdvance) {
  EpochManager epochs;
  epochs.Retire(NewTracked(), TrackedDeleter);
  // The tag equals the current epoch, and the free condition is strict:
  // nothing may be freed in the epoch it was retired in.
  EXPECT_EQ(epochs.Reclaim(), 0u);
  EXPECT_EQ(epochs.limbo_size(), 1u);
  epochs.AdvanceEpoch();
  EXPECT_EQ(epochs.Reclaim(), 1u);
  EXPECT_EQ(g_freed.load(std::memory_order_relaxed), 1);
  EXPECT_EQ(epochs.limbo_size(), 0u);
}

TEST_F(EpochTest, PinnedReaderBlocksReclamation) {
  EpochManager epochs;
  EpochManager::Pin pin = epochs.PinReader();
  epochs.Retire(NewTracked(), TrackedDeleter);
  epochs.AdvanceEpoch();
  // The pin settled at or before the retire epoch, so the object must
  // survive as long as the pin is held.
  EXPECT_EQ(epochs.Reclaim(), 0u);
  EXPECT_EQ(g_freed.load(std::memory_order_relaxed), 0);
  pin.Release();
  EXPECT_EQ(epochs.Reclaim(), 1u);
  EXPECT_EQ(g_freed.load(std::memory_order_relaxed), 1);
}

TEST_F(EpochTest, LateReaderDoesNotBlockEarlierRetirements) {
  EpochManager epochs;
  epochs.Retire(NewTracked(), TrackedDeleter);
  epochs.AdvanceEpoch();
  // This pin settles at the advanced epoch; the earlier retirement is
  // tagged strictly below it and may be freed under the pin.
  EpochManager::Pin pin = epochs.PinReader();
  EXPECT_EQ(epochs.Reclaim(), 1u);
  EXPECT_EQ(g_freed.load(std::memory_order_relaxed), 1);
}

TEST_F(EpochTest, MinPinnedEpochTracksOldestPin) {
  EpochManager epochs;
  EXPECT_EQ(epochs.MinPinnedEpoch(42), 42u);
  EpochManager::Pin first = epochs.PinReader();
  uint64_t e1 = first.epoch();
  epochs.AdvanceEpoch();
  epochs.AdvanceEpoch();
  EpochManager::Pin second = epochs.PinReader();
  EXPECT_GT(second.epoch(), e1);
  EXPECT_EQ(epochs.MinPinnedEpoch(~uint64_t{0}), e1);
  first.Release();
  EXPECT_EQ(epochs.MinPinnedEpoch(~uint64_t{0}), second.epoch());
}

TEST_F(EpochTest, MovedPinReleasesExactlyOnce) {
  EpochManager epochs;
  EpochManager::Pin outer;
  EXPECT_FALSE(outer.active());
  {
    EpochManager::Pin inner = epochs.PinReader();
    EXPECT_TRUE(inner.active());
    outer = std::move(inner);
    EXPECT_FALSE(inner.active());
  }
  EXPECT_TRUE(outer.active());
  epochs.Retire(NewTracked(), TrackedDeleter);
  epochs.AdvanceEpoch();
  EXPECT_EQ(epochs.Reclaim(), 0u);
  outer.Release();
  EXPECT_EQ(epochs.Reclaim(), 1u);
}

TEST_F(EpochTest, CountersAccount) {
  EpochManager epochs;
  EXPECT_EQ(epochs.current_epoch(), 1u);
  for (int i = 0; i < 5; ++i) {
    epochs.Retire(NewTracked(), TrackedDeleter);
    epochs.AdvanceEpoch();
  }
  EXPECT_EQ(epochs.epochs_advanced(), 5u);
  EXPECT_EQ(epochs.objects_retired(), 5u);
  EXPECT_EQ(epochs.Reclaim(), 5u);
  EXPECT_EQ(epochs.objects_reclaimed(), 5u);
}

TEST_F(EpochTest, DestructorDrainsLimbo) {
  {
    EpochManager epochs;
    epochs.Retire(NewTracked(), TrackedDeleter);
    epochs.Retire(NewTracked(), TrackedDeleter);
  }
  EXPECT_EQ(g_freed.load(std::memory_order_relaxed), 2);
}

// The TSan smoke for the manager itself: readers pin/unpin in a tight
// loop while the writer retires, advances, and reclaims. Nothing may be
// freed while any pin from an epoch at or below its tag is live — a
// use-after-free here is exactly what TSan + ASan storms are gating.
TEST_F(EpochTest, ConcurrentPinUnpinWhileWriterReclaims) {
  EpochManager epochs;
  std::atomic<bool> stop{false};
  constexpr int kReaders = 8;
  // The point of this test is unpooled readers hammering pin/unpin
  // against a live writer; ThreadPool's join barrier would serialize it.
  // popan-lint: allow(raw-thread-spawn)
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&epochs, &stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Pin pin = epochs.PinReader();
        // A real reader would traverse here; the pin lifetime is the test.
      }
    });
  }
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    epochs.Retire(NewTracked(), TrackedDeleter);
    epochs.AdvanceEpoch();
    epochs.Reclaim();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  epochs.AdvanceEpoch();
  epochs.Reclaim();
  EXPECT_EQ(epochs.objects_retired(), static_cast<uint64_t>(kOps));
  EXPECT_EQ(epochs.objects_reclaimed(), static_cast<uint64_t>(kOps));
  EXPECT_EQ(g_freed.load(std::memory_order_relaxed), kOps);
}

}  // namespace
}  // namespace popan::spatial
