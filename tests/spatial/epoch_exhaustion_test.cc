// Regression test for reader-slot exhaustion. The 65th concurrent pin
// used to hit a POPAN_CHECK and abort the process — acceptable for a
// bench harness with a bounded reader count, fatal for a server where
// the pin count tracks open connections. TryPinReader / TrySnapshot now
// surface ResourceExhausted so the caller sheds load instead.

#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/epoch.h"
#include "spatial/pr_tree.h"
#include "spatial/snapshot_view.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

TEST(EpochExhaustionTest, SixtyFifthPinIsAnErrorNotACrash) {
  EpochManager manager;
  std::vector<EpochManager::Pin> pins;
  pins.reserve(EpochManager::kMaxReaders);
  for (size_t i = 0; i < EpochManager::kMaxReaders; ++i) {
    StatusOr<EpochManager::Pin> pin = manager.TryPinReader();
    ASSERT_TRUE(pin.ok()) << "pin " << i << ": "
                          << pin.status().ToString();
    pins.push_back(ValueOrDie(std::move(pin)));
  }
  // Every slot is live; the next pin must fail gracefully.
  StatusOr<EpochManager::Pin> overflow = manager.TryPinReader();
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);

  // Releasing ONE slot is enough to pin again.
  pins.pop_back();
  StatusOr<EpochManager::Pin> retry = manager.TryPinReader();
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  // And the recovered slot behaves like any other.
  EXPECT_TRUE(ValueOrDie(std::move(retry)).active());
}

TEST(EpochExhaustionTest, ExhaustionDoesNotPoisonTheManager) {
  EpochManager manager;
  // Fill, overflow, drain completely, then verify all slots come back.
  {
    std::vector<EpochManager::Pin> pins;
    for (size_t i = 0; i < EpochManager::kMaxReaders; ++i) {
      pins.push_back(ValueOrDie(manager.TryPinReader()));
    }
    EXPECT_EQ(manager.TryPinReader().status().code(),
              StatusCode::kResourceExhausted);
  }  // all pins released here
  std::vector<EpochManager::Pin> pins;
  for (size_t i = 0; i < EpochManager::kMaxReaders; ++i) {
    StatusOr<EpochManager::Pin> pin = manager.TryPinReader();
    ASSERT_TRUE(pin.ok()) << "slot " << i << " not recovered: "
                          << pin.status().ToString();
    pins.push_back(ValueOrDie(std::move(pin)));
  }
}

TEST(EpochExhaustionTest, NonDefaultSlotCountKeepsTheContract) {
  // The slot count is a constructor parameter now (the shard router
  // sizes per-shard managers to its client budget); the exhaustion
  // contract must hold at any size, not just 64.
  constexpr size_t kSmall = 3;
  EpochManager manager(kSmall);
  EXPECT_EQ(manager.max_readers(), kSmall);
  std::vector<EpochManager::Pin> pins;
  for (size_t i = 0; i < kSmall; ++i) {
    StatusOr<EpochManager::Pin> pin = manager.TryPinReader();
    ASSERT_TRUE(pin.ok()) << "pin " << i << ": "
                          << pin.status().ToString();
    pins.push_back(ValueOrDie(std::move(pin)));
  }
  StatusOr<EpochManager::Pin> overflow = manager.TryPinReader();
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  pins.pop_back();
  EXPECT_TRUE(manager.TryPinReader().ok());
}

TEST(EpochExhaustionTest, TreeSizedBelowDefaultExhaustsEarly) {
  constexpr size_t kReaders = 2;
  CowPrQuadtree tree(Box2::UnitCube(), PrTreeOptions(),
                     /*initial_sequence=*/0, kReaders);
  ASSERT_TRUE(tree.Insert(Point2(0.25, 0.75)).ok());
  std::vector<SnapshotView2> snapshots;
  for (size_t i = 0; i < kReaders; ++i) {
    snapshots.push_back(ValueOrDie(tree.TrySnapshot()));
  }
  EXPECT_EQ(tree.TrySnapshot().status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(snapshots.front().RangeQuery(Box2::UnitCube()).size(), 1u);
  snapshots.pop_back();
  EXPECT_TRUE(tree.TrySnapshot().ok());
}

TEST(EpochExhaustionTest, TrySnapshotSurfacesExhaustion) {
  CowPrQuadtree tree(Box2::UnitCube(), PrTreeOptions());
  ASSERT_TRUE(tree.Insert(Point2(0.25, 0.75)).ok());
  std::vector<SnapshotView2> snapshots;
  for (size_t i = 0; i < EpochManager::kMaxReaders; ++i) {
    StatusOr<SnapshotView2> snapshot = tree.TrySnapshot();
    ASSERT_TRUE(snapshot.ok()) << "snapshot " << i << ": "
                               << snapshot.status().ToString();
    snapshots.push_back(ValueOrDie(std::move(snapshot)));
  }
  EXPECT_EQ(tree.TrySnapshot().status().code(),
            StatusCode::kResourceExhausted);

  // The held snapshots still read correctly while the table is full.
  EXPECT_EQ(snapshots.front().RangeQuery(Box2::UnitCube()).size(), 1u);

  // Dropping one snapshot frees its slot.
  snapshots.pop_back();
  StatusOr<SnapshotView2> retry = tree.TrySnapshot();
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

}  // namespace
}  // namespace popan::spatial
