#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/pr_tree.h"
#include "spatial/serialization.h"
#include "util/random.h"
#include "util/text_io.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

// Strips the checksum trailer, applies `edit` to the body, and re-signs it
// so the tampered snapshot passes the checksum phase and exercises the
// semantic verification behind it.
std::string TamperAndResign(const std::string& snapshot,
                            const std::string& from,
                            const std::string& to) {
  size_t trailer = snapshot.rfind("checksum ");
  EXPECT_NE(trailer, std::string::npos);
  std::string body = snapshot.substr(0, trailer);
  size_t pos = body.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  body.replace(pos, from.size(), to);
  return body + "checksum " + std::to_string(Fnv1a(body)) + "\n";
}

PrTree<2> RandomTree(size_t n, size_t capacity, uint64_t seed) {
  PrTreeOptions options;
  options.capacity = capacity;
  options.max_depth = 25;
  PrTree<2> tree(Box2::UnitCube(), options);
  Pcg32 rng(seed);
  while (tree.size() < n) {
    (void)tree.Insert(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  return tree;
}

TEST(SnapshotTest, RoundTripsAcrossCapacities) {
  for (size_t capacity : {1u, 4u, 16u}) {
    PrTree<2> tree = RandomTree(400, capacity, 11 + capacity);
    StatusOr<std::string> text = SnapshotToString(tree, 400);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(text.value());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->sequence, 400u);
    EXPECT_EQ(loaded->tree.size(), tree.size());
    EXPECT_EQ(loaded->tree.LeafCount(), tree.LeafCount());
    EXPECT_EQ(loaded->tree.LiveCensus(), tree.LiveCensus());
    EXPECT_TRUE(loaded->tree.CheckInvariants().ok());
  }
}

TEST(SnapshotTest, EmptyTreeRoundTripsWithItsAnchor) {
  PrTreeOptions options;
  options.capacity = 3;
  options.max_depth = 12;
  PrTree<2> tree(Box2::UnitCube(4.0), options);
  StatusOr<std::string> text = SnapshotToString(tree, 77);
  ASSERT_TRUE(text.ok());
  StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(text.value());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, 77u);
  EXPECT_EQ(loaded->tree.size(), 0u);
  EXPECT_EQ(loaded->tree.bounds(), tree.bounds());
  EXPECT_EQ(loaded->tree.capacity(), 3u);
  EXPECT_EQ(loaded->tree.max_depth(), 12u);
}

TEST(SnapshotTest, PointsSurviveExactly) {
  PrTree<2> tree = RandomTree(200, 2, 5);
  std::vector<Point2> original = tree.AllPoints();
  StatusOr<std::string> text = SnapshotToString(tree, 1);
  ASSERT_TRUE(text.ok());
  StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(text.value());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const Point2& p : original) {
    EXPECT_TRUE(loaded->tree.Contains(p)) << p.ToString();
  }
}

TEST(SnapshotTest, CrlfTranslationDoesNotBreakTheChecksum) {
  PrTree<2> tree = RandomTree(50, 2, 9);
  StatusOr<std::string> text = SnapshotToString(tree, 50);
  ASSERT_TRUE(text.ok());
  std::string crlf;
  for (char c : text.value()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(crlf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->tree.size(), tree.size());
}

TEST(SnapshotTest, BitFlipIsDetectedByTheChecksum) {
  PrTree<2> tree = RandomTree(100, 2, 21);
  StatusOr<std::string> text = SnapshotToString(tree, 100);
  ASSERT_TRUE(text.ok());
  std::string corrupt = text.value();
  // Flip a bit in the middle of the leaf data.
  corrupt[corrupt.size() / 2] ^= 0x04;
  StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"),
            std::string::npos);
}

TEST(SnapshotTest, TruncationIsDetected) {
  PrTree<2> tree = RandomTree(100, 2, 22);
  StatusOr<std::string> text = SnapshotToString(tree, 100);
  ASSERT_TRUE(text.ok());
  for (size_t keep :
       {size_t{0}, size_t{10}, text.value().size() / 2,
        text.value().size() - 20}) {
    StatusOr<PrTreeSnapshot> loaded =
        ReadPrTreeSnapshot(text.value().substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
  }
}

TEST(SnapshotTest, ResignedForgedOptionsFailCanonicalVerification) {
  // A snapshot whose checksum has been recomputed after tampering must
  // still fail: the leaf list no longer matches the unique PR
  // decomposition for the declared options.
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 20;
  PrTree<2> tree(Box2::UnitCube(), options);
  ASSERT_TRUE(tree.Insert(Point2(0.25, 0.25)).ok());
  ASSERT_TRUE(tree.Insert(Point2(0.75, 0.75)).ok());
  ASSERT_GT(tree.LeafCount(), 1u);
  StatusOr<std::string> text = SnapshotToString(tree, 2);
  ASSERT_TRUE(text.ok());
  std::string forged = TamperAndResign(text.value(), "options 1 20",
                                       "options 4 20");
  StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(forged);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("inconsistent"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(SnapshotTest, ResignedMisattributedPointIsRejected) {
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 20;
  PrTree<2> tree(Box2::UnitCube(), options);
  ASSERT_TRUE(tree.Insert(Point2(0.25, 0.25)).ok());
  ASSERT_TRUE(tree.Insert(Point2(0.75, 0.75)).ok());
  StatusOr<std::string> text = SnapshotToString(tree, 2);
  ASSERT_TRUE(text.ok());
  // Move a point into another leaf's block without moving the leaf.
  std::string forged =
      TamperAndResign(text.value(), "0.25 0.25", "0.85 0.85");
  StatusOr<PrTreeSnapshot> loaded = ReadPrTreeSnapshot(forged);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("wrong leaf block"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(SnapshotTest, TreesTooDeepForLocationalCodesAreRejectedAtWrite) {
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 50;
  PrTree<2> tree(Box2::UnitCube(), options);
  // Two points whose separation needs ~40 splits: beyond the 31-level
  // locational codes the snapshot leaf records use.
  ASSERT_TRUE(tree.Insert(Point2(0.5, 0.5)).ok());
  ASSERT_TRUE(
      tree.Insert(Point2(0.5 + 0x1p-40, 0.5 + 0x1p-40)).ok());
  std::ostringstream out;
  Status status = WriteSnapshot(tree, 2, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("too deep"), std::string::npos)
      << status.ToString();
}

TEST(SnapshotTest, SerializeNoLongerLeaksPrecision) {
  // Regression: Serialize() used to leave setprecision(17) on the stream.
  PrTree<2> tree = RandomTree(20, 2, 30);
  std::ostringstream out;
  ASSERT_TRUE(WriteSnapshot(tree, 20, &out).ok());
  size_t before = out.str().size();
  out << 1.0 / 3.0;
  std::ostringstream expect;
  expect << 1.0 / 3.0;
  EXPECT_EQ(out.str().substr(before), expect.str());
}

}  // namespace
}  // namespace popan::spatial
