#include "spatial/grid_file.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

GridFile MakeGrid(size_t capacity = 4) {
  GridFileOptions options;
  options.bucket_capacity = capacity;
  return GridFile(Box2::UnitCube(), options);
}

TEST(GridFileTest, EmptyFile) {
  GridFile g = MakeGrid();
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.BucketCount(), 1u);
  EXPECT_EQ(g.CellsX(), 1u);
  EXPECT_EQ(g.CellsY(), 1u);
  EXPECT_TRUE(g.CheckInvariants().ok());
}

TEST(GridFileTest, InsertWithinCapacityKeepsOneBucket) {
  GridFile g = MakeGrid(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.Insert(Point2(0.1 + 0.2 * i, 0.5)).ok());
  }
  EXPECT_EQ(g.BucketCount(), 1u);
  EXPECT_EQ(g.size(), 4u);
}

TEST(GridFileTest, OverflowSplits) {
  GridFile g = MakeGrid(2);
  ASSERT_TRUE(g.Insert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(g.Insert(Point2(0.9, 0.9)).ok());
  ASSERT_TRUE(g.Insert(Point2(0.5, 0.5)).ok());
  EXPECT_GE(g.BucketCount(), 2u);
  EXPECT_TRUE(g.CheckInvariants().ok()) << g.CheckInvariants().ToString();
}

TEST(GridFileTest, OutOfDomainRejected) {
  GridFile g = MakeGrid();
  EXPECT_EQ(g.Insert(Point2(1.5, 0.5)).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.Insert(Point2(1.0, 1.0)).code(), StatusCode::kOutOfRange);
}

TEST(GridFileTest, DuplicateRejected) {
  GridFile g = MakeGrid();
  ASSERT_TRUE(g.Insert(Point2(0.5, 0.5)).ok());
  EXPECT_EQ(g.Insert(Point2(0.5, 0.5)).code(), StatusCode::kAlreadyExists);
}

TEST(GridFileTest, ContainsAfterManyInserts) {
  GridFile g = MakeGrid(3);
  std::vector<Point2> points;
  Pcg32 rng(17);
  for (int i = 0; i < 500; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (g.Insert(p).ok()) points.push_back(p);
  }
  ASSERT_TRUE(g.CheckInvariants().ok()) << g.CheckInvariants().ToString();
  for (const Point2& p : points) {
    EXPECT_TRUE(g.Contains(p));
  }
  EXPECT_FALSE(g.Contains(Point2(0.123456789, 0.987654321)));
  EXPECT_EQ(g.size(), points.size());
}

TEST(GridFileTest, TwoDiskAccessPrincipleBucketsBounded) {
  // The grid file guarantee: every bucket holds at most capacity points
  // (with the degenerate-coordinates exception that random data avoids).
  GridFile g = MakeGrid(4);
  Pcg32 rng(23);
  for (int i = 0; i < 1000; ++i) {
    g.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok();
  }
  g.VisitBuckets([](size_t occupancy) { EXPECT_LE(occupancy, 4u); });
}

TEST(GridFileTest, EraseBasic) {
  GridFile g = MakeGrid();
  g.Insert(Point2(0.5, 0.5)).ok();
  EXPECT_TRUE(g.Erase(Point2(0.5, 0.5)).ok());
  EXPECT_FALSE(g.Contains(Point2(0.5, 0.5)));
  EXPECT_EQ(g.Erase(Point2(0.5, 0.5)).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.Erase(Point2(5.0, 5.0)).code(), StatusCode::kNotFound);
}

TEST(GridFileTest, RangeQueryMatchesBruteForce) {
  GridFile g = MakeGrid(3);
  std::vector<Point2> points;
  Pcg32 rng(29);
  for (int i = 0; i < 400; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (g.Insert(p).ok()) points.push_back(p);
  }
  for (int trial = 0; trial < 20; ++trial) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    Box2 query(Point2(std::min(x0, x1), std::min(y0, y1)),
               Point2(std::max(x0, x1), std::max(y0, y1)));
    std::vector<Point2> expected;
    for (const Point2& p : points) {
      if (query.Contains(p)) expected.push_back(p);
    }
    std::vector<Point2> got = g.RangeQuery(query);
    auto by_key = [](const Point2& a, const Point2& b) {
      return std::make_pair(a.x(), a.y()) < std::make_pair(b.x(), b.y());
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected);
  }
}

TEST(GridFileTest, ScalesRefineUnderClusteredLoad) {
  // Clustered points force repeated refinement of the same region.
  GridFile g = MakeGrid(2);
  Pcg32 rng(41);
  for (int i = 0; i < 200; ++i) {
    Point2 p(0.4 + 0.01 * rng.NextDouble(), 0.4 + 0.01 * rng.NextDouble());
    g.Insert(p).ok();
  }
  ASSERT_TRUE(g.CheckInvariants().ok()) << g.CheckInvariants().ToString();
  EXPECT_GT(g.CellsX() * g.CellsY(), 16u);
  EXPECT_GT(g.BucketCount(), 16u);
}

TEST(GridFileTest, AverageOccupancyBounded) {
  GridFile g = MakeGrid(4);
  Pcg32 rng(53);
  for (int i = 0; i < 800; ++i) {
    g.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok();
  }
  double avg = g.AverageOccupancy();
  EXPECT_GT(avg, 0.5);
  EXPECT_LE(avg, 4.0);
}

TEST(GridFileTest, DirectoryCellsShareBuckets) {
  // After a scale refinement, untouched buckets span multiple cells: the
  // directory must exceed the bucket count at some point.
  GridFile g = MakeGrid(1);
  Pcg32 rng(61);
  for (int i = 0; i < 60; ++i) {
    g.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok();
  }
  ASSERT_TRUE(g.CheckInvariants().ok());
  EXPECT_GE(g.CellsX() * g.CellsY(), g.BucketCount());
}

TEST(GridFileTest, InvariantsUnderChurn) {
  GridFile g = MakeGrid(2);
  Pcg32 rng(71);
  std::vector<Point2> live;
  for (int op = 0; op < 1500; ++op) {
    if (live.empty() || rng.NextBounded(3) != 0) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (g.Insert(p).ok()) live.push_back(p);
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(g.Erase(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
    if (op % 200 == 0) {
      ASSERT_TRUE(g.CheckInvariants().ok())
          << g.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(g.size(), live.size());
}

}  // namespace
}  // namespace popan::spatial
