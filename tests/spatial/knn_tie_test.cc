// Regression test for k-NN tie ordering. Equal-distance neighbors used
// to come back in backend-dependent (traversal) order, so the same query
// returned different point sets on different structures whenever k cut
// through a tie group. The fix routes every backend through the shared
// KnnHeap with the canonical (distance², x, y) key; this test pins that
// order with ties that are EXACT in binary floating point.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/excell.h"
#include "spatial/grid_file.h"
#include "spatial/linear_quadtree.h"
#include "spatial/point_quadtree.h"
#include "spatial/pr_tree.h"
#include "spatial/query_cost.h"
#include "spatial/snapshot_view.h"
#include "testing/statusor_testing.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

/// Distances of 0.125 and 0.125*sqrt(2) from the center: every
/// coordinate and every squared distance is an exact dyadic rational, so
/// "equidistant" means bitwise-equal doubles, not almost-equal.
std::vector<Point2> TiePoints() {
  return {
      Point2(0.5, 0.5),      // d² = 0
      Point2(0.625, 0.5),    // axis ring, d² = 0.015625
      Point2(0.5, 0.625),    //
      Point2(0.375, 0.5),    //
      Point2(0.5, 0.375),    //
      Point2(0.625, 0.625),  // diagonal ring, d² = 0.03125
      Point2(0.375, 0.625),  //
      Point2(0.625, 0.375),  //
      Point2(0.375, 0.375),  //
  };
}

double Dist2(const Point2& a, const Point2& b) {
  double dx = a.x() - b.x();
  double dy = a.y() - b.y();
  return dx * dx + dy * dy;
}

/// The canonical answer: ascending (d², x, y), first k.
std::vector<Point2> CanonicalNearest(const Point2& target, size_t k) {
  std::vector<Point2> all = TiePoints();
  std::sort(all.begin(), all.end(),
            [&](const Point2& a, const Point2& b) {
              double da = Dist2(a, target);
              double db = Dist2(b, target);
              if (da != db) return da < db;
              if (a.x() != b.x()) return a.x() < b.x();
              return a.y() < b.y();
            });
  all.resize(std::min(k, all.size()));
  return all;
}

void ExpectSamePoints(const std::vector<Point2>& got,
                      const std::vector<Point2>& want,
                      const char* backend) {
  ASSERT_EQ(got.size(), want.size()) << backend;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].x(), want[i].x()) << backend << " rank " << i;
    EXPECT_EQ(got[i].y(), want[i].y()) << backend << " rank " << i;
  }
}

class KnnTieTest : public ::testing::Test {
 protected:
  KnnTieTest()
      : pr_tree_(Box2::UnitCube()),
        cow_tree_(Box2::UnitCube(), PrTreeOptions()),
        grid_(Box2::UnitCube()),
        excell_(Box2::UnitCube()) {
    // Scrambled insertion order: if any backend fell back to traversal
    // or insertion order for ties, the canonical expectation would fail.
    std::vector<Point2> data = TiePoints();
    std::reverse(data.begin() + 1, data.end());
    std::swap(data[1], data[4]);
    for (const Point2& p : data) {
      EXPECT_TRUE(pr_tree_.Insert(p).ok());
      EXPECT_TRUE(cow_tree_.Insert(p).ok());
      EXPECT_TRUE(point_tree_.Insert(p).ok());
      EXPECT_TRUE(grid_.Insert(p).ok());
      EXPECT_TRUE(excell_.Insert(p).ok());
    }
    linear_tree_ = std::make_unique<LinearPrQuadtree>(
        ValueOrDie(LinearPrQuadtree::BulkLoad(Box2::UnitCube(), data)));
  }

  void RunAll(const Point2& target, size_t k) {
    std::vector<Point2> want = CanonicalNearest(target, k);
    QueryCost cost;
    ExpectSamePoints(pr_tree_.NearestK(target, k, &cost), want, "pr_tree");
    ExpectSamePoints(point_tree_.NearestK(target, k, &cost), want,
                     "point_quadtree");
    ExpectSamePoints(linear_tree_->NearestK(target, k, &cost), want,
                     "linear_pr");
    ExpectSamePoints(grid_.NearestK(target, k, &cost), want, "grid_file");
    ExpectSamePoints(excell_.NearestK(target, k, &cost), want, "excell");
    SnapshotView2 snapshot = ValueOrDie(cow_tree_.TrySnapshot());
    ExpectSamePoints(snapshot.NearestK(target, k, &cost), want,
                     "cow_snapshot");
  }

  PrQuadtree pr_tree_;
  CowPrQuadtree cow_tree_;
  PointQuadtree point_tree_;
  std::unique_ptr<LinearPrQuadtree> linear_tree_;
  GridFile grid_;
  Excell excell_;
};

TEST_F(KnnTieTest, KCutsThroughTheAxisRing) {
  // k = 3 keeps the center plus TWO of the four equidistant axis points:
  // exactly the case where the tiebreak decides membership, not just
  // order. Canonically those are the two smallest (x, y) pairs.
  RunAll(Point2(0.5, 0.5), 3);
}

TEST_F(KnnTieTest, FullRingsComeBackInCoordinateOrder) {
  RunAll(Point2(0.5, 0.5), 5);  // center + whole axis ring
  RunAll(Point2(0.5, 0.5), 9);  // everything, both rings
}

TEST_F(KnnTieTest, KCutsThroughTheDiagonalRing) {
  RunAll(Point2(0.5, 0.5), 7);  // center + axis ring + 2 of 4 diagonals
}

TEST_F(KnnTieTest, OffCenterTargetStillCanonical) {
  // From an off-center target the colinear pair (0.375, 0.5) and
  // (0.625, 0.5) is equidistant; x breaks the tie.
  RunAll(Point2(0.5, 0.0), 4);
  RunAll(Point2(0.0, 0.5), 4);
}

}  // namespace
}  // namespace popan::spatial
