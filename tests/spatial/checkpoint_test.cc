#include "spatial/checkpoint.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/serialization.h"
#include "spatial/wal.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

PrTreeOptions SmallOptions() {
  PrTreeOptions options;
  options.capacity = 4;
  options.max_depth = 25;
  return options;
}

// A live tree plus the WAL that produced it, for building scenarios.
struct Scenario {
  PrTree<2> tree;
  std::vector<Point2> live;
  uint64_t last_sequence = 0;
};

Scenario BuildScenario(size_t n, uint64_t seed) {
  Scenario s{PrTree<2>(Box2::UnitCube(), SmallOptions()), {}, 0};
  Pcg32 rng(seed);
  while (s.tree.size() < n) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (s.tree.Insert(p).ok()) {
      s.live.push_back(p);
      ++s.last_sequence;
    }
  }
  return s;
}

TEST(CheckpointTest, CheckpointThenLogThenRecover) {
  Scenario s = BuildScenario(300, 17);
  std::ostringstream snapshot, wal;
  StatusOr<WalWriter> writer =
      Checkpoint(s.tree, s.last_sequence, &snapshot, &wal);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ(writer->next_sequence(), s.last_sequence + 1);

  // Churn on top of the checkpoint.
  Pcg32 rng(99);
  for (int op = 0; op < 200; ++op) {
    if (s.live.empty() || rng.NextBounded(2) == 0) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (s.tree.Insert(p).ok()) {
        ASSERT_TRUE(writer->LogInsert(p).ok());
        s.live.push_back(p);
      }
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(s.live.size()));
      ASSERT_TRUE(s.tree.Erase(s.live[idx]).ok());
      ASSERT_TRUE(writer->LogErase(s.live[idx]).ok());
      s.live[idx] = s.live.back();
      s.live.pop_back();
    }
  }

  StatusOr<RecoverResult> recovered =
      Recover(snapshot.str(), wal.str());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->truncated_tail)
      << recovered->truncation_reason;
  EXPECT_EQ(recovered->snapshot_sequence, 300u);
  EXPECT_EQ(recovered->records_applied, 200u);
  EXPECT_EQ(recovered->last_sequence, 500u);
  EXPECT_EQ(recovered->next_sequence, 501u);
  EXPECT_EQ(recovered->tree.size(), s.tree.size());
  EXPECT_EQ(recovered->tree.LiveCensus(), s.tree.LiveCensus());
  for (const Point2& p : s.live) {
    EXPECT_TRUE(recovered->tree.Contains(p));
  }
}

TEST(CheckpointTest, EmptyWalTailRecoversTheSnapshotExactly) {
  Scenario s = BuildScenario(150, 4);
  std::ostringstream snapshot, wal;
  ASSERT_TRUE(Checkpoint(s.tree, s.last_sequence, &snapshot, &wal).ok());
  StatusOr<RecoverResult> recovered = Recover(snapshot.str(), wal.str());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->records_applied, 0u);
  EXPECT_EQ(recovered->last_sequence, s.last_sequence);
  EXPECT_EQ(recovered->tree.LiveCensus(), s.tree.LiveCensus());
}

TEST(CheckpointTest, MismatchedSnapshotAndWalIsAPairingError) {
  Scenario s = BuildScenario(50, 5);
  std::ostringstream snapshot, wal;
  ASSERT_TRUE(Checkpoint(s.tree, s.last_sequence, &snapshot, &wal).ok());
  // A WAL anchored elsewhere: right geometry, wrong sequence.
  std::ostringstream other;
  WalWriter other_writer(&other, Box2::UnitCube(), SmallOptions(),
                         s.last_sequence + 10);
  StatusOr<RecoverResult> recovered =
      Recover(snapshot.str(), other.str());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);

  // And a WAL with the right anchor but different geometry.
  PrTreeOptions narrow = SmallOptions();
  narrow.capacity = 1;
  std::ostringstream mismatched;
  WalWriter mismatched_writer(&mismatched, Box2::UnitCube(), narrow,
                              s.last_sequence);
  recovered = Recover(snapshot.str(), mismatched.str());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, CorruptSnapshotIsFatal) {
  Scenario s = BuildScenario(80, 6);
  std::ostringstream snapshot, wal;
  ASSERT_TRUE(Checkpoint(s.tree, s.last_sequence, &snapshot, &wal).ok());
  std::string corrupt = snapshot.str();
  corrupt[corrupt.size() / 3] ^= 0x10;
  StatusOr<RecoverResult> recovered = Recover(corrupt, wal.str());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, TornWalHeaderFallsBackToSnapshotOnly) {
  // Losing the WAL loses the tail, not the checkpointed state: Recover
  // degrades to the snapshot and reports the tail as truncated.
  Scenario s = BuildScenario(120, 7);
  std::ostringstream snapshot, wal;
  StatusOr<WalWriter> writer =
      Checkpoint(s.tree, s.last_sequence, &snapshot, &wal);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->LogInsert(Point2(0.123, 0.456)).ok());
  std::string torn_wal = wal.str().substr(0, 10);  // mid-header crash
  StatusOr<RecoverResult> recovered = Recover(snapshot.str(), torn_wal);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->truncated_tail);
  EXPECT_NE(recovered->truncation_reason.find("WAL header"),
            std::string::npos)
      << recovered->truncation_reason;
  EXPECT_EQ(recovered->records_applied, 0u);
  EXPECT_EQ(recovered->tree.LiveCensus(), s.tree.LiveCensus());
}

TEST(CheckpointTest, TornWalTailRecoversThePrefix) {
  Scenario s = BuildScenario(60, 8);
  std::ostringstream snapshot, wal;
  StatusOr<WalWriter> writer =
      Checkpoint(s.tree, s.last_sequence, &snapshot, &wal);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->LogInsert(Point2(0.111, 0.222)).ok());
  Census after_first = [&] {
    PrTree<2> copy = s.tree;
    EXPECT_TRUE(copy.Insert(Point2(0.111, 0.222)).ok());
    return copy.LiveCensus();
  }();
  ASSERT_TRUE(writer->LogInsert(Point2(0.333, 0.444)).ok());
  std::string torn = wal.str().substr(0, wal.str().size() - 7);
  StatusOr<RecoverResult> recovered = Recover(snapshot.str(), torn);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->truncated_tail);
  EXPECT_EQ(recovered->records_applied, 1u);
  EXPECT_EQ(recovered->tree.LiveCensus(), after_first);
}

TEST(CheckpointTest, WalWrittenAfterRecoveryReplaysOverTheSameSnapshot) {
  // The acceptance scenario: recover, resume logging at next_sequence on
  // the truncated-to-valid prefix, and the result must replay cleanly on
  // top of the same snapshot.
  Scenario s = BuildScenario(100, 9);
  std::ostringstream snapshot, wal;
  StatusOr<WalWriter> writer =
      Checkpoint(s.tree, s.last_sequence, &snapshot, &wal);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->LogInsert(Point2(0.101, 0.202)).ok());
  ASSERT_TRUE(writer->LogInsert(Point2(0.303, 0.404)).ok());
  std::string torn = wal.str().substr(0, wal.str().size() - 3);

  StatusOr<RecoverResult> first = Recover(snapshot.str(), torn);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->truncated_tail);

  std::string resumed_wal = torn.substr(0, first->wal_valid_bytes);
  std::ostringstream tail;
  WalWriter resumed(&tail, first->tree.bounds(),
                    WalWriter::ResumeAt{first->next_sequence});
  ASSERT_TRUE(resumed.LogInsert(Point2(0.505, 0.606)).ok());
  ASSERT_TRUE(resumed.LogErase(Point2(0.101, 0.202)).ok());
  resumed_wal += tail.str();

  StatusOr<RecoverResult> second = Recover(snapshot.str(), resumed_wal);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second->truncated_tail) << second->truncation_reason;
  EXPECT_EQ(second->records_applied, 3u);
  EXPECT_TRUE(second->tree.Contains(Point2(0.505, 0.606)));
  EXPECT_FALSE(second->tree.Contains(Point2(0.101, 0.202)));
  EXPECT_TRUE(second->tree.CheckInvariants().ok());
}

TEST(CheckpointTest, CompactionDropsTheOldLog) {
  // After a checkpoint the old WAL is never needed again: recovery from
  // (new snapshot, new WAL) matches the live tree even though the old log
  // is gone.
  std::ostringstream wal0;
  WalWriter writer0(&wal0, Box2::UnitCube(), SmallOptions());
  PrTree<2> tree(Box2::UnitCube(), SmallOptions());
  Pcg32 rng(12);
  for (int i = 0; i < 100; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (tree.Insert(p).ok()) {
      ASSERT_TRUE(writer0.LogInsert(p).ok());
    }
  }
  uint64_t anchor = writer0.next_sequence() - 1;
  std::ostringstream snapshot, wal1;
  StatusOr<WalWriter> writer1 = Checkpoint(tree, anchor, &snapshot, &wal1);
  ASSERT_TRUE(writer1.ok());
  Point2 extra(0.987, 0.654);
  ASSERT_TRUE(tree.Insert(extra).ok());
  ASSERT_TRUE(writer1->LogInsert(extra).ok());
  StatusOr<RecoverResult> recovered =
      Recover(snapshot.str(), wal1.str());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->tree.LiveCensus(), tree.LiveCensus());
  EXPECT_EQ(recovered->last_sequence, anchor + 1);
}

}  // namespace
}  // namespace popan::spatial
