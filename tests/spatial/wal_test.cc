#include "spatial/wal.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

#include "testing/statusor_testing.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

PrTreeOptions SmallOptions() {
  PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 20;
  return options;
}

TEST(WalTest, HeaderOnlyRecoversEmptyTree) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->tree.size(), 0u);
  EXPECT_EQ(recovery->records_applied, 0u);
  EXPECT_FALSE(recovery->truncated_tail);
  EXPECT_EQ(recovery->tree.capacity(), 2u);
  EXPECT_EQ(recovery->next_sequence, 1u);
  EXPECT_EQ(recovery->valid_bytes, log.str().size());
}

TEST(WalTest, ReplayReconstructsTheTree) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  PrTree<2> reference(Box2::UnitCube(), SmallOptions());
  Pcg32 rng(3);
  std::vector<Point2> live;
  for (int op = 0; op < 500; ++op) {
    if (live.empty() || rng.NextBounded(3) != 0) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (reference.Insert(p).ok()) {
        ASSERT_TRUE(writer.LogInsert(p).ok());
        live.push_back(p);
      }
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(reference.Erase(live[idx]).ok());
      ASSERT_TRUE(writer.LogErase(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
  }
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->tree.size(), reference.size());
  EXPECT_EQ(recovery->tree.LeafCount(), reference.LeafCount());
  for (const Point2& p : live) {
    EXPECT_TRUE(recovery->tree.Contains(p));
  }
  EXPECT_TRUE(recovery->tree.CheckInvariants().ok());
  EXPECT_EQ(recovery->valid_bytes, log.str().size());
  EXPECT_EQ(recovery->next_sequence, recovery->last_sequence + 1);
}

TEST(WalTest, SequenceNumbersAreConsecutive) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  EXPECT_EQ(ValueOrDie(writer.LogInsert(Point2(0.1, 0.1))), 1u);
  EXPECT_EQ(ValueOrDie(writer.LogInsert(Point2(0.2, 0.2))), 2u);
  EXPECT_EQ(ValueOrDie(writer.LogErase(Point2(0.1, 0.1))), 3u);
  EXPECT_EQ(writer.next_sequence(), 4u);
}

TEST(WalTest, AppendRejectsNonFiniteCoordinates) {
  // The reader's ParseDouble rejects non-finite values, so logging one
  // would silently truncate the rest of the log at recovery. The writer
  // must refuse at append time, without consuming a sequence number or
  // writing anything.
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  const std::string header = log.str();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(writer.LogInsert(Point2(nan, 0.5)).ok());
  EXPECT_FALSE(writer.LogInsert(Point2(0.5, inf)).ok());
  EXPECT_FALSE(writer.LogErase(Point2(-inf, nan)).ok());
  EXPECT_EQ(writer.next_sequence(), 1u);
  EXPECT_EQ(log.str(), header);
  // A valid record after the rejections still gets sequence 1 and the
  // whole log replays cleanly.
  EXPECT_EQ(ValueOrDie(writer.LogInsert(Point2(0.5, 0.5))), 1u);
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->records_applied, 1u);
}

TEST(WalTest, AppendRejectsOutOfBoundsPoints) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  const std::string header = log.str();
  EXPECT_EQ(writer.LogInsert(Point2(1.5, 0.5)).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(writer.LogErase(Point2(-0.1, 0.5)).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(log.str(), header);
}

TEST(WalTest, ResumeConstructorContinuesARecoveredLog) {
  // The resume/collision bug: a fresh writer starts at sequence 1, so
  // appending to a recovered log makes replay discard everything after
  // the old tail as a sequence gap. The fix: recover, truncate to
  // valid_bytes, resume at next_sequence.
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.9, 0.9)).ok());

  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->next_sequence, 3u);

  std::string resumed = log.str().substr(0, recovery->valid_bytes);
  std::ostringstream tail;
  WalWriter appender(&tail, Box2::UnitCube(),
                     WalWriter::ResumeAt{recovery->next_sequence});
  EXPECT_EQ(ValueOrDie(appender.LogErase(Point2(0.1, 0.1))), 3u);
  EXPECT_EQ(ValueOrDie(appender.LogInsert(Point2(0.4, 0.6))), 4u);
  resumed += tail.str();

  StatusOr<WalRecovery> replayed = ReplayWal(resumed);
  ASSERT_TRUE(replayed.ok());
  EXPECT_FALSE(replayed->truncated_tail) << replayed->truncation_reason;
  EXPECT_EQ(replayed->records_applied, 4u);
  EXPECT_EQ(replayed->tree.size(), 2u);
  EXPECT_FALSE(replayed->tree.Contains(Point2(0.1, 0.1)));
  EXPECT_TRUE(replayed->tree.Contains(Point2(0.4, 0.6)));
}

TEST(WalTest, FreshWriterCollidesWithoutResume) {
  // Document the failure mode the resume constructor exists for.
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  std::ostringstream tail;
  WalWriter collider(&tail, Box2::UnitCube(),
                     WalWriter::ResumeAt{1});  // wrong: 1 already used
  ASSERT_TRUE(collider.LogInsert(Point2(0.9, 0.9)).ok());
  StatusOr<WalRecovery> recovery = ReplayWal(log.str() + tail.str());
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->truncation_reason, "sequence gap");
  EXPECT_EQ(recovery->records_applied, 1u);
}

TEST(WalTest, AnchoredLogRequiresItsSnapshot) {
  PrTreeOptions options = SmallOptions();
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), options, /*anchor=*/7);
  EXPECT_EQ(writer.next_sequence(), 8u);
  EXPECT_FALSE(ReplayWal(log.str()).ok());
}

TEST(WalTest, ReplayOntoBaseContinuesFromTheAnchor) {
  PrTreeOptions options = SmallOptions();
  PrTree<2> base(Box2::UnitCube(), options);
  ASSERT_TRUE(base.Insert(Point2(0.25, 0.25)).ok());
  ASSERT_TRUE(base.Insert(Point2(0.75, 0.75)).ok());

  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), options, /*anchor=*/2);
  EXPECT_EQ(ValueOrDie(writer.LogErase(Point2(0.25, 0.25))), 3u);
  EXPECT_EQ(ValueOrDie(writer.LogInsert(Point2(0.5, 0.5))), 4u);

  StatusOr<WalRecovery> recovery = ReplayWal(log.str(), base, 2);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->records_applied, 2u);
  EXPECT_EQ(recovery->last_sequence, 4u);
  EXPECT_EQ(recovery->next_sequence, 5u);
  EXPECT_EQ(recovery->tree.size(), 2u);
  EXPECT_TRUE(recovery->tree.Contains(Point2(0.5, 0.5)));
  EXPECT_FALSE(recovery->tree.Contains(Point2(0.25, 0.25)));

  // Mismatched anchor or geometry is a pairing error, not a torn tail.
  EXPECT_EQ(ReplayWal(log.str(), base, 5).status().code(),
            StatusCode::kFailedPrecondition);
  PrTree<2> other(Box2::UnitCube(2.0), options);
  EXPECT_EQ(ReplayWal(log.str(), other, 2).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(WalTest, PreAnchorHeadersStillReplay) {
  // Headers written before the anchor token existed have 8 tokens and are
  // implicitly anchored at 0.
  std::string text = "popan-wal v1 2 20 0 0 1 1\n";
  uint64_t checksum = WalChecksum(1, 'I', 0.5, 0.5);
  text += "1 I 0.5 0.5 " + std::to_string(checksum) + "\n";
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->records_applied, 1u);
}

TEST(WalTest, TornTailIsDiscardedNotFatal) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.9, 0.9)).ok());
  std::string text = log.str();
  size_t full = text.size();
  // Simulate a crash mid-write: drop the last 10 characters.
  text.resize(text.size() - 10);
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->records_applied, 1u);
  EXPECT_TRUE(recovery->tree.Contains(Point2(0.1, 0.1)));
  EXPECT_FALSE(recovery->tree.Contains(Point2(0.9, 0.9)));
  // The intact prefix ends exactly where the second record began.
  EXPECT_LT(recovery->valid_bytes, full - 10);
  StatusOr<WalRecovery> prefix =
      ReplayWal(text.substr(0, recovery->valid_bytes));
  ASSERT_TRUE(prefix.ok());
  EXPECT_FALSE(prefix->truncated_tail);
  EXPECT_EQ(prefix->records_applied, 1u);
}

TEST(WalTest, UnterminatedFinalRecordIsTorn) {
  // A record missing its newline is not durable even if every token is
  // present — the terminator is the commit marker.
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  std::string text = log.str();
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->truncation_reason, "torn record (no terminator)");
  EXPECT_EQ(recovery->records_applied, 0u);
}

TEST(WalTest, CrlfLineEndingsReplayIdentically) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.9, 0.9)).ok());
  std::string crlf;
  for (char c : log.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  StatusOr<WalRecovery> recovery = ReplayWal(crlf);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->records_applied, 2u);
  EXPECT_EQ(recovery->valid_bytes, crlf.size());
}

TEST(WalTest, BlankLinesMidLogAreHarmless) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  std::string text = log.str() + "\n\n";
  std::ostringstream tail;
  WalWriter appender(&tail, Box2::UnitCube(), WalWriter::ResumeAt{2});
  ASSERT_TRUE(appender.LogInsert(Point2(0.9, 0.9)).ok());
  text += tail.str();
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->records_applied, 2u);
  EXPECT_EQ(recovery->valid_bytes, text.size());
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.9, 0.9)).ok());
  std::string text = log.str();
  // Flip a digit of the second record's x coordinate; its checksum no
  // longer matches.
  size_t pos = text.rfind("0.9");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = '8';
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->truncation_reason, "checksum mismatch");
  EXPECT_EQ(recovery->records_applied, 1u);
}

TEST(WalTest, SequenceGapStopsReplay) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  // Hand-craft a record with sequence 5 (valid checksum, wrong sequence).
  uint64_t checksum = WalChecksum(5, 'I', 0.5, 0.5);
  std::string text = log.str() + "5 I 0.5 0.5 " +
                     std::to_string(checksum) + "\n";
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->truncation_reason, "sequence gap");
}

TEST(WalTest, EraseOfMissingPointStopsReplayWithReason) {
  // An erase of a point that is not stored signals log/state divergence;
  // the truncation reason carries the underlying status.
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogErase(Point2(0.5, 0.5)).ok());
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->records_applied, 0u);
  EXPECT_NE(recovery->truncation_reason.find("record does not apply"),
            std::string::npos)
      << recovery->truncation_reason;
  EXPECT_NE(recovery->truncation_reason.find("NotFound"),
            std::string::npos)
      << recovery->truncation_reason;
}

TEST(WalTest, BadHeaderIsFatal) {
  EXPECT_FALSE(ReplayWal(std::string("nonsense\n")).ok());
  EXPECT_FALSE(ReplayWal(std::string("")).ok());
  EXPECT_FALSE(
      ReplayWal(std::string("popan-wal v1 0 20 0 0 1 1\n")).ok());
  EXPECT_FALSE(
      ReplayWal(std::string("popan-wal v1 2 20 1 0 0 1\n")).ok());
  // A header missing its newline is a torn header write, not a log.
  EXPECT_FALSE(ReplayWal(std::string("popan-wal v1 2 20 0 0 1 1 0")).ok());
  // Ten tokens is no known header shape.
  EXPECT_FALSE(
      ReplayWal(std::string("popan-wal v1 2 20 0 0 1 1 0 0\n")).ok());
}

TEST(WalTest, ChecksumIsContentSensitive) {
  uint64_t base = WalChecksum(1, 'I', 0.25, 0.75);
  EXPECT_NE(base, WalChecksum(2, 'I', 0.25, 0.75));
  EXPECT_NE(base, WalChecksum(1, 'E', 0.25, 0.75));
  EXPECT_NE(base, WalChecksum(1, 'I', 0.250001, 0.75));
  EXPECT_NE(base, WalChecksum(1, 'I', 0.25, 0.750001));
  EXPECT_EQ(base, WalChecksum(1, 'I', 0.25, 0.75));
}

TEST(WalTest, FullPrecisionSurvivesTheRoundTrip) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  Point2 p(0.12345678901234567, 0.98765432109876543);
  ASSERT_TRUE(writer.LogInsert(p).ok());
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_TRUE(recovery->tree.Contains(p));
}

TEST(WalTest, ExtremeCoordinatesRoundTrip) {
  // Denormals, signed zero and 17-digit worst cases must survive the
  // decimal round trip bit-for-bit (the checksum hashes the binary
  // doubles, so any rounding would read back as corruption).
  PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 40;
  Box2 bounds(Point2(-1.0, -1.0), Point2(1.0, 1.0));
  const std::vector<Point2> extremes = {
      Point2(4.9406564584124654e-324, 0.5),    // smallest denormal
      Point2(-4.9406564584124654e-324, -0.5),  // and its negation
      Point2(2.2250738585072014e-308, 2.2250738585072009e-308),
      Point2(0.0, -0.0),                       // signed zero pair
      Point2(0.1000000000000000055511151231257827, 0.3),
      Point2(0.99999999999999989, -0.99999999999999989),
  };
  std::ostringstream log;
  WalWriter writer(&log, bounds, options);
  for (const Point2& p : extremes) {
    ASSERT_TRUE(writer.LogInsert(p).ok()) << p.ToString();
  }
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->records_applied, extremes.size());
  for (const Point2& p : extremes) {
    EXPECT_TRUE(recovery->tree.Contains(p)) << p.ToString();
  }
}

TEST(WalTest, WriterDoesNotLeakStreamFormatting) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  // The default 6-digit rendering must still be in force after the
  // writer's precision-17 records.
  size_t before = log.str().size();
  log << 1.0 / 3.0;
  std::ostringstream expect;
  expect << 1.0 / 3.0;
  EXPECT_EQ(log.str().substr(before), expect.str());
}

}  // namespace
}  // namespace popan::spatial
