#include "spatial/wal.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

PrTreeOptions SmallOptions() {
  PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 20;
  return options;
}

TEST(WalTest, HeaderOnlyRecoversEmptyTree) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->tree.size(), 0u);
  EXPECT_EQ(recovery->records_applied, 0u);
  EXPECT_FALSE(recovery->truncated_tail);
  EXPECT_EQ(recovery->tree.capacity(), 2u);
}

TEST(WalTest, ReplayReconstructsTheTree) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  PrTree<2> reference(Box2::UnitCube(), SmallOptions());
  Pcg32 rng(3);
  std::vector<Point2> live;
  for (int op = 0; op < 500; ++op) {
    if (live.empty() || rng.NextBounded(3) != 0) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (reference.Insert(p).ok()) {
        writer.LogInsert(p);
        live.push_back(p);
      }
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(reference.Erase(live[idx]).ok());
      writer.LogErase(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_EQ(recovery->tree.size(), reference.size());
  EXPECT_EQ(recovery->tree.LeafCount(), reference.LeafCount());
  for (const Point2& p : live) {
    EXPECT_TRUE(recovery->tree.Contains(p));
  }
  EXPECT_TRUE(recovery->tree.CheckInvariants().ok());
}

TEST(WalTest, SequenceNumbersAreConsecutive) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  EXPECT_EQ(writer.LogInsert(Point2(0.1, 0.1)), 1u);
  EXPECT_EQ(writer.LogInsert(Point2(0.2, 0.2)), 2u);
  EXPECT_EQ(writer.LogErase(Point2(0.1, 0.1)), 3u);
  EXPECT_EQ(writer.next_sequence(), 4u);
}

TEST(WalTest, TornTailIsDiscardedNotFatal) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  writer.LogInsert(Point2(0.1, 0.1));
  writer.LogInsert(Point2(0.9, 0.9));
  std::string text = log.str();
  // Simulate a crash mid-write: drop the last 10 characters.
  text.resize(text.size() - 10);
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->records_applied, 1u);
  EXPECT_TRUE(recovery->tree.Contains(Point2(0.1, 0.1)));
  EXPECT_FALSE(recovery->tree.Contains(Point2(0.9, 0.9)));
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  writer.LogInsert(Point2(0.1, 0.1));
  writer.LogInsert(Point2(0.9, 0.9));
  std::string text = log.str();
  // Flip a digit of the second record's x coordinate; its checksum no
  // longer matches.
  size_t pos = text.rfind("0.9");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = '8';
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->truncation_reason, "checksum mismatch");
  EXPECT_EQ(recovery->records_applied, 1u);
}

TEST(WalTest, SequenceGapStopsReplay) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  writer.LogInsert(Point2(0.1, 0.1));
  // Hand-craft a record with sequence 5 (valid checksum, wrong sequence).
  uint64_t checksum = WalChecksum(5, 'I', 0.5, 0.5);
  std::string text = log.str() + "5 I 0.5 0.5 " +
                     std::to_string(checksum) + "\n";
  StatusOr<WalRecovery> recovery = ReplayWal(text);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->truncation_reason, "sequence gap");
}

TEST(WalTest, InapplicableRecordStopsReplay) {
  // An erase of a point that is not stored signals log/state divergence.
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  writer.LogErase(Point2(0.5, 0.5));
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->truncated_tail);
  EXPECT_EQ(recovery->records_applied, 0u);
}

TEST(WalTest, BadHeaderIsFatal) {
  EXPECT_FALSE(ReplayWal(std::string("nonsense\n")).ok());
  EXPECT_FALSE(ReplayWal(std::string("")).ok());
  EXPECT_FALSE(
      ReplayWal(std::string("popan-wal v1 0 20 0 0 1 1\n")).ok());
  EXPECT_FALSE(
      ReplayWal(std::string("popan-wal v1 2 20 1 0 0 1\n")).ok());
}

TEST(WalTest, ChecksumIsContentSensitive) {
  uint64_t base = WalChecksum(1, 'I', 0.25, 0.75);
  EXPECT_NE(base, WalChecksum(2, 'I', 0.25, 0.75));
  EXPECT_NE(base, WalChecksum(1, 'E', 0.25, 0.75));
  EXPECT_NE(base, WalChecksum(1, 'I', 0.250001, 0.75));
  EXPECT_NE(base, WalChecksum(1, 'I', 0.25, 0.750001));
  EXPECT_EQ(base, WalChecksum(1, 'I', 0.25, 0.75));
}

TEST(WalTest, FullPrecisionSurvivesTheRoundTrip) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  Point2 p(0.12345678901234567, 0.98765432109876543);
  writer.LogInsert(p);
  StatusOr<WalRecovery> recovery = ReplayWal(log.str());
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->truncated_tail) << recovery->truncation_reason;
  EXPECT_TRUE(recovery->tree.Contains(p));
}

}  // namespace
}  // namespace popan::spatial
