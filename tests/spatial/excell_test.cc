#include "spatial/excell.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

Excell MakeExcell(size_t capacity = 4) {
  ExcellOptions options;
  options.bucket_capacity = capacity;
  return Excell(Box2::UnitCube(), options);
}

TEST(ExcellTest, EmptyStructure) {
  Excell e = MakeExcell();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.BucketCount(), 1u);
  EXPECT_EQ(e.GlobalDepth(), 0u);
  EXPECT_TRUE(e.CheckInvariants().ok());
}

TEST(ExcellTest, InsertAndContains) {
  Excell e = MakeExcell();
  EXPECT_TRUE(e.Insert(Point2(0.1, 0.2)).ok());
  EXPECT_TRUE(e.Insert(Point2(0.8, 0.9)).ok());
  EXPECT_TRUE(e.Contains(Point2(0.1, 0.2)));
  EXPECT_FALSE(e.Contains(Point2(0.2, 0.1)));
  EXPECT_EQ(e.size(), 2u);
}

TEST(ExcellTest, OutOfDomainRejected) {
  Excell e = MakeExcell();
  EXPECT_EQ(e.Insert(Point2(2.0, 0.5)).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(e.Contains(Point2(2.0, 0.5)));
}

TEST(ExcellTest, DuplicateRejected) {
  Excell e = MakeExcell();
  ASSERT_TRUE(e.Insert(Point2(0.5, 0.5)).ok());
  EXPECT_EQ(e.Insert(Point2(0.5, 0.5)).code(), StatusCode::kAlreadyExists);
}

TEST(ExcellTest, FirstSplitHalvesTheSpaceInY) {
  ExcellOptions options;
  options.bucket_capacity = 1;
  Excell e(Box2::UnitCube(), options);
  ASSERT_TRUE(e.Insert(Point2(0.5, 0.1)).ok());  // lower half
  ASSERT_TRUE(e.Insert(Point2(0.5, 0.9)).ok());  // upper half
  EXPECT_EQ(e.GlobalDepth(), 1u);
  EXPECT_EQ(e.BucketCount(), 2u);
  EXPECT_TRUE(e.CheckInvariants().ok()) << e.CheckInvariants().ToString();
}

TEST(ExcellTest, DirectoryDepthAlternatesAxes) {
  ExcellOptions options;
  options.bucket_capacity = 1;
  Excell e(Box2::UnitCube(), options);
  // Two points in the same y-half but different x-halves need depth 2.
  ASSERT_TRUE(e.Insert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(e.Insert(Point2(0.9, 0.1)).ok());
  EXPECT_EQ(e.GlobalDepth(), 2u);
  EXPECT_TRUE(e.CheckInvariants().ok());
}

TEST(ExcellTest, BlockOfPrefixGeometry) {
  Excell e = MakeExcell();
  // Depth 1, prefix 0: lower y half.
  Box2 lower = e.BlockOfPrefix(0, 1);
  EXPECT_EQ(lower.lo(), Point2(0.0, 0.0));
  EXPECT_EQ(lower.hi(), Point2(1.0, 0.5));
  // Depth 2, prefix 0b01: lower y, upper x.
  Box2 lower_right = e.BlockOfPrefix(1, 2);
  EXPECT_EQ(lower_right.lo(), Point2(0.5, 0.0));
  EXPECT_EQ(lower_right.hi(), Point2(1.0, 0.5));
}

TEST(ExcellTest, ManyPointsStayConsistent) {
  Excell e = MakeExcell(4);
  Pcg32 rng(7);
  std::vector<Point2> points;
  for (int i = 0; i < 2000; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (e.Insert(p).ok()) points.push_back(p);
  }
  ASSERT_TRUE(e.CheckInvariants().ok()) << e.CheckInvariants().ToString();
  for (const Point2& p : points) EXPECT_TRUE(e.Contains(p));
  EXPECT_GT(e.BucketCount(), 100u);
  EXPECT_LE(e.AverageOccupancy(), 4.0);
}

TEST(ExcellTest, EraseMergesBack) {
  ExcellOptions options;
  options.bucket_capacity = 2;
  Excell e(Box2::UnitCube(), options);
  Pcg32 rng(9);
  std::vector<Point2> points;
  for (int i = 0; i < 64; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (e.Insert(p).ok()) points.push_back(p);
  }
  ASSERT_GT(e.BucketCount(), 1u);
  for (const Point2& p : points) {
    ASSERT_TRUE(e.Erase(p).ok());
    ASSERT_TRUE(e.CheckInvariants().ok()) << e.CheckInvariants().ToString();
  }
  EXPECT_EQ(e.size(), 0u);
  EXPECT_EQ(e.BucketCount(), 1u);
  EXPECT_EQ(e.GlobalDepth(), 0u);
}

TEST(ExcellTest, EraseMissingIsNotFound) {
  Excell e = MakeExcell();
  EXPECT_EQ(e.Erase(Point2(0.5, 0.5)).code(), StatusCode::kNotFound);
  EXPECT_EQ(e.Erase(Point2(5.0, 5.0)).code(), StatusCode::kNotFound);
}

TEST(ExcellTest, RangeQueryMatchesBruteForce) {
  Excell e = MakeExcell(3);
  std::vector<Point2> points;
  Pcg32 rng(13);
  for (int i = 0; i < 500; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (e.Insert(p).ok()) points.push_back(p);
  }
  for (int trial = 0; trial < 20; ++trial) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    Box2 query(Point2(std::min(x0, x1), std::min(y0, y1)),
               Point2(std::max(x0, x1), std::max(y0, y1)));
    std::vector<Point2> expected;
    for (const Point2& p : points) {
      if (query.Contains(p)) expected.push_back(p);
    }
    std::vector<Point2> got = e.RangeQuery(query);
    auto by_key = [](const Point2& a, const Point2& b) {
      return std::make_pair(a.x(), a.y()) < std::make_pair(b.x(), b.y());
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected);
  }
}

TEST(ExcellTest, ColocatedPointsExhaustDirectory) {
  ExcellOptions options;
  options.bucket_capacity = 1;
  options.max_global_depth = 6;
  Excell e(Box2::UnitCube(), options);
  // Points closer than the depth-6 cell size cannot be separated.
  ASSERT_TRUE(e.Insert(Point2(0.500000, 0.500000)).ok());
  Status s = e.Insert(Point2(0.500001, 0.500001));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(e.CheckInvariants().ok());
}

TEST(ExcellTest, VisitBucketsAccounting) {
  Excell e = MakeExcell(4);
  Pcg32 rng(15);
  for (int i = 0; i < 300; ++i) {
    e.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok();
  }
  size_t buckets = 0, points = 0;
  e.VisitBuckets([&](size_t local_depth, size_t occupancy) {
    ++buckets;
    points += occupancy;
    EXPECT_LE(local_depth, e.GlobalDepth());
  });
  EXPECT_EQ(buckets, e.BucketCount());
  EXPECT_EQ(points, e.size());
}

}  // namespace
}  // namespace popan::spatial
