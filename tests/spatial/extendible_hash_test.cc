#include "spatial/extendible_hash.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

ExtendibleHash MakeHash(size_t capacity = 4) {
  ExtendibleHashOptions options;
  options.bucket_capacity = capacity;
  return ExtendibleHash(options);
}

TEST(ExtendibleHashTest, EmptyTable) {
  ExtendibleHash h = MakeHash();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.BucketCount(), 1u);
  EXPECT_EQ(h.GlobalDepth(), 0u);
  EXPECT_EQ(h.DirectorySize(), 1u);
  EXPECT_TRUE(h.CheckInvariants().ok());
}

TEST(ExtendibleHashTest, InsertAndContains) {
  ExtendibleHash h = MakeHash();
  EXPECT_TRUE(h.Insert(1).ok());
  EXPECT_TRUE(h.Insert(2).ok());
  EXPECT_TRUE(h.Contains(1));
  EXPECT_TRUE(h.Contains(2));
  EXPECT_FALSE(h.Contains(3));
  EXPECT_EQ(h.size(), 2u);
}

TEST(ExtendibleHashTest, DuplicateRejected) {
  ExtendibleHash h = MakeHash();
  ASSERT_TRUE(h.Insert(7).ok());
  EXPECT_EQ(h.Insert(7).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(h.size(), 1u);
}

TEST(ExtendibleHashTest, OverflowSplitsBucket) {
  ExtendibleHash h = MakeHash(2);
  int key = 0;
  while (h.BucketCount() == 1) {
    ASSERT_TRUE(h.Insert(key++).ok());
    ASSERT_LT(key, 100);
  }
  EXPECT_GE(h.GlobalDepth(), 1u);
  EXPECT_TRUE(h.CheckInvariants().ok());
}

TEST(ExtendibleHashTest, ThousandsOfKeysStayConsistent) {
  ExtendibleHash h = MakeHash(4);
  const uint64_t n = 5000;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(h.Insert(k).ok()) << "key " << k;
  }
  EXPECT_EQ(h.size(), n);
  ASSERT_TRUE(h.CheckInvariants().ok()) << h.CheckInvariants().ToString();
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_TRUE(h.Contains(k));
  }
  EXPECT_FALSE(h.Contains(n + 1));
  // Occupancy must be positive and at most capacity.
  EXPECT_GT(h.AverageOccupancy(), 0.0);
  EXPECT_LE(h.AverageOccupancy(), 4.0);
}

TEST(ExtendibleHashTest, EraseBasic) {
  ExtendibleHash h = MakeHash();
  h.Insert(1).ok();
  h.Insert(2).ok();
  EXPECT_TRUE(h.Erase(1).ok());
  EXPECT_FALSE(h.Contains(1));
  EXPECT_TRUE(h.Contains(2));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.Erase(1).code(), StatusCode::kNotFound);
}

TEST(ExtendibleHashTest, EraseMergesAndShrinks) {
  ExtendibleHash h = MakeHash(2);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(h.Insert(k).ok());
    keys.push_back(k);
  }
  size_t grown_buckets = h.BucketCount();
  ASSERT_GT(grown_buckets, 1u);
  for (uint64_t k : keys) {
    ASSERT_TRUE(h.Erase(k).ok());
    ASSERT_TRUE(h.CheckInvariants().ok()) << h.CheckInvariants().ToString();
  }
  EXPECT_EQ(h.size(), 0u);
  // Everything merged back to a single bucket and depth 0.
  EXPECT_EQ(h.BucketCount(), 1u);
  EXPECT_EQ(h.GlobalDepth(), 0u);
}

TEST(ExtendibleHashTest, RandomInsertEraseChurn) {
  ExtendibleHash h = MakeHash(3);
  Pcg32 rng(2718);
  std::set<uint64_t> reference;
  for (int op = 0; op < 4000; ++op) {
    uint64_t key = rng.NextBounded(500);
    if (rng.NextBounded(2) == 0) {
      Status s = h.Insert(key);
      bool was_new = reference.insert(key).second;
      EXPECT_EQ(s.ok(), was_new);
    } else {
      Status s = h.Erase(key);
      bool existed = reference.erase(key) > 0;
      EXPECT_EQ(s.ok(), existed);
    }
    if (op % 256 == 0) {
      ASSERT_TRUE(h.CheckInvariants().ok())
          << h.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(h.size(), reference.size());
  for (uint64_t key : reference) {
    EXPECT_TRUE(h.Contains(key));
  }
}

TEST(ExtendibleHashTest, IdentityHashPlacesByTopBits) {
  ExtendibleHashOptions options;
  options.bucket_capacity = 1;
  options.identity_hash = true;
  ExtendibleHash h(options);
  // Two keys differing in the top bit must split into depth-1 buckets.
  ASSERT_TRUE(h.Insert(0x0000000000000000ULL).ok());
  ASSERT_TRUE(h.Insert(0x8000000000000000ULL).ok());
  EXPECT_EQ(h.GlobalDepth(), 1u);
  EXPECT_EQ(h.BucketCount(), 2u);
  EXPECT_TRUE(h.CheckInvariants().ok());
}

TEST(ExtendibleHashTest, DeepSharedPrefixForcesRepeatedDoubling) {
  ExtendibleHashOptions options;
  options.bucket_capacity = 1;
  options.identity_hash = true;
  ExtendibleHash h(options);
  // Keys sharing the top 3 bits: directory must reach depth 4.
  ASSERT_TRUE(h.Insert(0xF000000000000000ULL).ok());
  ASSERT_TRUE(h.Insert(0xF800000000000000ULL).ok());
  EXPECT_EQ(h.GlobalDepth(), 5u);
  EXPECT_TRUE(h.CheckInvariants().ok());
}

TEST(ExtendibleHashTest, MaxGlobalDepthReportsExhaustion) {
  ExtendibleHashOptions options;
  options.bucket_capacity = 1;
  options.identity_hash = true;
  options.max_global_depth = 3;
  ExtendibleHash h(options);
  // Keys identical in the top 3 bits cannot be separated at depth <= 3.
  ASSERT_TRUE(h.Insert(0x0000000000000001ULL).ok());
  Status s = h.Insert(0x0000000000000002ULL);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(h.CheckInvariants().ok());
}

TEST(ExtendibleHashTest, VisitBucketsCoversAllKeys) {
  ExtendibleHash h = MakeHash(4);
  for (uint64_t k = 0; k < 300; ++k) h.Insert(k).ok();
  size_t buckets = 0, keys = 0;
  h.VisitBuckets([&](size_t local_depth, size_t occupancy) {
    ++buckets;
    keys += occupancy;
    EXPECT_LE(local_depth, h.GlobalDepth());
  });
  EXPECT_EQ(buckets, h.BucketCount());
  EXPECT_EQ(keys, h.size());
}

}  // namespace
}  // namespace popan::spatial
