#include "spatial/point_quadtree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

TEST(PointQuadtreeTest, EmptyTree) {
  PointQuadtree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_FALSE(tree.Contains(Point2(0.0, 0.0)));
  EXPECT_EQ(tree.Nearest(Point2(0.0, 0.0)).status().code(),
            StatusCode::kNotFound);
}

TEST(PointQuadtreeTest, InsertAndContains) {
  PointQuadtree tree;
  EXPECT_TRUE(tree.Insert(Point2(0.5, 0.5)).ok());
  EXPECT_TRUE(tree.Insert(Point2(0.1, 0.9)).ok());
  EXPECT_TRUE(tree.Contains(Point2(0.5, 0.5)));
  EXPECT_TRUE(tree.Contains(Point2(0.1, 0.9)));
  EXPECT_FALSE(tree.Contains(Point2(0.9, 0.1)));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(PointQuadtreeTest, DuplicateRejected) {
  PointQuadtree tree;
  ASSERT_TRUE(tree.Insert(Point2(0.5, 0.5)).ok());
  EXPECT_EQ(tree.Insert(Point2(0.5, 0.5)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(PointQuadtreeTest, ShapeDependsOnInsertionOrder) {
  // The §II contrast with the PR quadtree: the same set, different orders,
  // different trees.
  std::vector<Point2> points = {Point2(0.5, 0.5), Point2(0.2, 0.2),
                                Point2(0.8, 0.8), Point2(0.1, 0.1)};
  PointQuadtree in_order;
  for (const Point2& p : points) in_order.Insert(p).ok();
  PointQuadtree reversed;
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    reversed.Insert(*it).ok();
  }
  // Chain 0.5 -> 0.2 -> 0.1 gives height 2 one way; reversed roots at 0.1.
  EXPECT_NE(in_order.Height(), reversed.Height());
}

TEST(PointQuadtreeTest, DegenerateOrderDegradesToList) {
  PointQuadtree tree;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    double t = 0.9 - 0.01 * i;  // strictly decreasing diagonal
    ASSERT_TRUE(tree.Insert(Point2(t, t)).ok());
  }
  EXPECT_EQ(tree.Height(), static_cast<size_t>(n - 1));
}

TEST(PointQuadtreeTest, RandomOrderIsShallow) {
  PointQuadtree tree;
  Pcg32 rng(7);
  const int n = 1000;
  int inserted = 0;
  while (inserted < n) {
    if (tree.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok()) {
      ++inserted;
    }
  }
  // Random point quadtrees have expected height O(log4 n) with modest
  // constants; 1000 points should stay far below 30.
  EXPECT_LT(tree.Height(), 30u);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
}

TEST(PointQuadtreeTest, RangeQueryMatchesBruteForce) {
  PointQuadtree tree;
  std::vector<Point2> points;
  Pcg32 rng(99);
  for (int i = 0; i < 300; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (tree.Insert(p).ok()) points.push_back(p);
  }
  for (int trial = 0; trial < 25; ++trial) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    Box2 query(Point2(std::min(x0, x1), std::min(y0, y1)),
               Point2(std::max(x0, x1), std::max(y0, y1)));
    std::vector<Point2> expected;
    for (const Point2& p : points) {
      if (query.Contains(p)) expected.push_back(p);
    }
    std::vector<Point2> got = tree.RangeQuery(query);
    auto by_key = [](const Point2& a, const Point2& b) {
      return std::make_pair(a.x(), a.y()) < std::make_pair(b.x(), b.y());
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected);
  }
}

TEST(PointQuadtreeTest, NearestMatchesBruteForce) {
  PointQuadtree tree;
  std::vector<Point2> points;
  Pcg32 rng(123);
  for (int i = 0; i < 200; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (tree.Insert(p).ok()) points.push_back(p);
  }
  for (int trial = 0; trial < 25; ++trial) {
    Point2 target(rng.NextDouble(), rng.NextDouble());
    StatusOr<Point2> got = tree.Nearest(target);
    ASSERT_TRUE(got.ok());
    double best = 1e100;
    for (const Point2& p : points) {
      best = std::min(best, p.DistanceSquared(target));
    }
    EXPECT_DOUBLE_EQ(got->DistanceSquared(target), best);
  }
}

TEST(PointQuadtreeTest, VisitNodesSeesEveryPointOnce) {
  PointQuadtree tree;
  Pcg32 rng(5);
  const int n = 100;
  int inserted = 0;
  while (inserted < n) {
    if (tree.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok()) {
      ++inserted;
    }
  }
  size_t visited = 0;
  tree.VisitNodes([&](const Point2&, size_t) { ++visited; });
  EXPECT_EQ(visited, static_cast<size_t>(n));
}

TEST(PointQuadtreeTest, TotalPathLengthOfChain) {
  PointQuadtree tree;
  tree.Insert(Point2(0.5, 0.5)).ok();
  tree.Insert(Point2(0.4, 0.4)).ok();
  tree.Insert(Point2(0.3, 0.3)).ok();
  EXPECT_EQ(tree.TotalPathLength(), 3u);  // depths 0 + 1 + 2
}

TEST(PointQuadtreeTest, ClearResets) {
  PointQuadtree tree;
  tree.Insert(Point2(0.5, 0.5)).ok();
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Insert(Point2(0.5, 0.5)).ok());
}

}  // namespace
}  // namespace popan::spatial
