#include "spatial/linear_quadtree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/census.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

std::vector<Point2> RandomPoints(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Point2> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(rng.NextDouble(), rng.NextDouble());
  }
  return out;
}

TEST(LinearQuadtreeTest, EmptyBulkLoad) {
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->empty());
  EXPECT_EQ(tree->LeafCount(), 1u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LinearQuadtreeTest, SinglePoint) {
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), {Point2(0.3, 0.7)});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->LeafCount(), 1u);
  EXPECT_TRUE(tree->Contains(Point2(0.3, 0.7)));
  EXPECT_FALSE(tree->Contains(Point2(0.7, 0.3)));
}

TEST(LinearQuadtreeTest, OutOfBoundsRejected) {
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), {Point2(1.5, 0.5)});
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kOutOfRange);
}

TEST(LinearQuadtreeTest, DuplicatesRejected) {
  StatusOr<LinearPrQuadtree> tree = LinearPrQuadtree::BulkLoad(
      Box2::UnitCube(), {Point2(0.5, 0.5), Point2(0.5, 0.5)});
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kAlreadyExists);
}

TEST(LinearQuadtreeTest, BulkLoadMatchesIncrementalTree) {
  // The PR decomposition is canonical: the linear bulk load and the
  // pointer tree agree leaf for leaf.
  for (size_t capacity : {1u, 2u, 4u, 8u}) {
    std::vector<Point2> points = RandomPoints(500, 11 + capacity);
    PrTreeOptions options;
    options.capacity = capacity;
    PrTree<2> pointer_tree(Box2::UnitCube(), options);
    for (const Point2& p : points) {
      ASSERT_TRUE(pointer_tree.Insert(p).ok());
    }
    StatusOr<LinearPrQuadtree> linear =
        LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points, options);
    ASSERT_TRUE(linear.ok());
    LinearPrQuadtree from_tree = LinearPrQuadtree::FromTree(pointer_tree);

    ASSERT_EQ(linear->LeafCount(), from_tree.LeafCount())
        << "capacity " << capacity;
    for (size_t i = 0; i < linear->LeafCount(); ++i) {
      EXPECT_EQ(linear->leaves()[i].code, from_tree.leaves()[i].code)
          << "leaf " << i;
      EXPECT_EQ(linear->leaves()[i].points.size(),
                from_tree.leaves()[i].points.size());
    }
    EXPECT_TRUE(linear->CheckInvariants().ok())
        << linear->CheckInvariants().ToString();
    EXPECT_TRUE(from_tree.CheckInvariants().ok())
        << from_tree.CheckInvariants().ToString();
  }
}

TEST(LinearQuadtreeTest, ContainsMatchesSource) {
  std::vector<Point2> points = RandomPoints(400, 21);
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points);
  ASSERT_TRUE(tree.ok());
  for (const Point2& p : points) {
    EXPECT_TRUE(tree->Contains(p));
  }
  for (const Point2& p : RandomPoints(100, 22)) {
    bool inserted = std::find(points.begin(), points.end(), p) !=
                    points.end();
    EXPECT_EQ(tree->Contains(p), inserted);
  }
}

TEST(LinearQuadtreeTest, RangeQueryMatchesBruteForce) {
  std::vector<Point2> points = RandomPoints(400, 31);
  PrTreeOptions options;
  options.capacity = 3;
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points, options);
  ASSERT_TRUE(tree.ok());
  Pcg32 rng(32);
  for (int trial = 0; trial < 25; ++trial) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    Box2 query(Point2(std::min(x0, x1), std::min(y0, y1)),
               Point2(std::max(x0, x1), std::max(y0, y1)));
    std::vector<Point2> expected;
    for (const Point2& p : points) {
      if (query.Contains(p)) expected.push_back(p);
    }
    std::vector<Point2> got = tree->RangeQuery(query);
    auto by_key = [](const Point2& a, const Point2& b) {
      return std::make_pair(a.x(), a.y()) < std::make_pair(b.x(), b.y());
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected);
  }
}

TEST(LinearQuadtreeTest, CensusMatchesPointerTree) {
  std::vector<Point2> points = RandomPoints(600, 41);
  PrTreeOptions options;
  options.capacity = 2;
  PrTree<2> pointer_tree(Box2::UnitCube(), options);
  for (const Point2& p : points) pointer_tree.Insert(p).ok();
  StatusOr<LinearPrQuadtree> linear =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points, options);
  ASSERT_TRUE(linear.ok());
  Census a = TakeCensus(pointer_tree);
  Census b = TakeCensus(*linear);
  EXPECT_EQ(a.Proportions(), b.Proportions());
  EXPECT_EQ(a.LeafCount(), b.LeafCount());
  EXPECT_EQ(a.ItemCount(), b.ItemCount());
  for (size_t d = 0; d <= a.MaxDepth(); ++d) {
    EXPECT_EQ(a.LeavesAtDepth(d), b.LeavesAtDepth(d)) << "depth " << d;
  }
}

TEST(LinearQuadtreeTest, MaxDepthTruncation) {
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 2;
  std::vector<Point2> points = {Point2(0.01, 0.01), Point2(0.02, 0.02),
                                Point2(0.03, 0.03)};
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  size_t deepest = 0;
  tree->VisitLeaves([&](const Box2&, size_t depth, size_t) {
    deepest = std::max(deepest, depth);
  });
  EXPECT_EQ(deepest, 2u);
}

TEST(LinearQuadtreeTest, LeavesSortedByCode) {
  std::vector<Point2> points = RandomPoints(300, 51);
  StatusOr<LinearPrQuadtree> tree =
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 1; i < tree->leaves().size(); ++i) {
    EXPECT_TRUE(tree->leaves()[i - 1].code < tree->leaves()[i].code);
  }
}

}  // namespace
}  // namespace popan::spatial
