#include "spatial/soa_buffer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "util/random.h"
#include "util/simd.h"

namespace popan::spatial {
namespace {

using Buffer = SoaBuffer<2, 4>;

geo::Point2 P(double x, double y) { return geo::Point2{x, y}; }

TEST(SoaBufferTest, StartsEmptyAndInline) {
  Buffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.spilled());
  EXPECT_EQ(Buffer::inline_capacity(), 4u);
}

TEST(SoaBufferTest, PushBackAndGetRoundTrip) {
  Buffer b;
  b.push_back(P(1.0, 2.0));
  b.push_back(P(3.0, 4.0));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Get(0), P(1.0, 2.0));
  EXPECT_EQ(b.Get(1), P(3.0, 4.0));
  EXPECT_EQ(b.At(0, 1), 3.0);
  EXPECT_EQ(b.At(1, 1), 4.0);
}

TEST(SoaBufferTest, LanesAreContiguousPerAxis) {
  Buffer b;
  for (int i = 0; i < 3; ++i) b.push_back(P(i, 10 + i));
  const double* xs = b.lane(0);
  const double* ys = b.lane(1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(xs[i], i);
    EXPECT_EQ(ys[i], 10 + i);
  }
}

TEST(SoaBufferTest, SpillsPastInlineCapacityAndUnspills) {
  Buffer b;
  for (int i = 0; i < 5; ++i) b.push_back(P(i, -i));
  EXPECT_TRUE(b.spilled());
  EXPECT_EQ(b.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(b.Get(i), P(i, -i));
  b.SwapRemoveAt(4);
  EXPECT_FALSE(b.spilled());
  EXPECT_EQ(b.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b.Get(i), P(i, -i));
}

TEST(SoaBufferTest, SwapRemoveMovesLastIntoHole) {
  Buffer b;
  b.push_back(P(0.0, 0.0));
  b.push_back(P(1.0, 1.0));
  b.push_back(P(2.0, 2.0));
  b.SwapRemoveAt(0);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Get(0), P(2.0, 2.0));
  EXPECT_EQ(b.Get(1), P(1.0, 1.0));
}

TEST(SoaBufferTest, MatchesUsesIeeeEquality) {
  Buffer b;
  b.push_back(P(0.0, 1.0));
  EXPECT_TRUE(b.Matches(0, P(-0.0, 1.0)));  // -0.0 == 0.0
  EXPECT_FALSE(b.Matches(0, P(0.0, 1.5)));
}

TEST(SoaBufferTest, ClearResetsSize) {
  Buffer b;
  for (int i = 0; i < 6; ++i) b.push_back(P(i, i));
  b.clear();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.spilled());
  b.push_back(P(9.0, 9.0));
  EXPECT_EQ(b.Get(0), P(9.0, 9.0));
}

TEST(SoaBufferTest, ForEachInBoxMatchesScalarContainsOnBothPaths) {
  Pcg32 rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    SoaBuffer<2, 8> b;
    const size_t n = static_cast<size_t>(rng.NextDouble() * 150.0);
    std::vector<geo::Point2> pts;
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(P(rng.NextDouble(), rng.NextDouble()));
      b.push_back(pts.back());
    }
    const geo::Box2 box(P(rng.NextDouble(0.0, 0.5), rng.NextDouble(0.0, 0.5)),
                        P(rng.NextDouble(0.5, 1.0), rng.NextDouble(0.5, 1.0)));
    std::vector<size_t> expected;
    for (size_t i = 0; i < n; ++i) {
      if (box.Contains(pts[i])) expected.push_back(i);
    }
    for (int scalar = 0; scalar < 2; ++scalar) {
      simd::SetForceScalar(scalar == 1);
      std::vector<size_t> got;
      ForEachInBox(b, box, [&got](size_t i) { got.push_back(i); });
      EXPECT_EQ(got, expected) << "trial " << trial << " scalar " << scalar;
    }
    simd::SetForceScalar(false);
  }
}

TEST(SoaBufferTest, ForEachEqualOnAxisMatchesScalarOnBothPaths) {
  Pcg32 rng(6);
  SoaBuffer<2, 8> b;
  std::vector<geo::Point2> pts;
  for (size_t i = 0; i < 100; ++i) {
    // Coarse lattice so equal values actually occur.
    pts.push_back(P(std::floor(rng.NextDouble() * 8.0) / 8.0,
                    std::floor(rng.NextDouble() * 8.0) / 8.0));
    b.push_back(pts.back());
  }
  for (size_t axis = 0; axis < 2; ++axis) {
    const double value = 3.0 / 8.0;
    std::vector<size_t> expected;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (pts[i][axis] == value) expected.push_back(i);
    }
    for (int scalar = 0; scalar < 2; ++scalar) {
      simd::SetForceScalar(scalar == 1);
      std::vector<size_t> got;
      ForEachEqualOnAxis(b, axis, value,
                         [&got](size_t i) { got.push_back(i); });
      EXPECT_EQ(got, expected) << "axis " << axis << " scalar " << scalar;
    }
    simd::SetForceScalar(false);
  }
}

}  // namespace
}  // namespace popan::spatial
