#include "spatial/morton.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/simd.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

TEST(MortonTest, RootCode) {
  MortonCode root = RootCode();
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.bits, 0u);
  EXPECT_EQ(MortonCodeToString(root), "");
}

TEST(MortonTest, ChildParentRoundTrip) {
  MortonCode code = RootCode();
  for (size_t q : {1u, 3u, 0u, 2u}) {
    MortonCode child = ChildCode(code, q);
    EXPECT_EQ(child.depth, code.depth + 1);
    EXPECT_EQ(ParentCode(child), code);
    code = child;
  }
  EXPECT_EQ(MortonCodeToString(code), "1.3.0.2");
}

TEST(MortonTest, ParentOfRootDies) {
  EXPECT_DEATH(ParentCode(RootCode()), "root");
}

TEST(MortonTest, CodeOfPointMatchesBlockDescent) {
  Box2 root = Box2::UnitCube();
  Pcg32 rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    uint8_t depth = static_cast<uint8_t>(rng.NextBounded(12));
    MortonCode code = CodeOfPoint(root, p, depth);
    EXPECT_EQ(code.depth, depth);
    EXPECT_TRUE(BlockOfCode(root, code).Contains(p));
  }
}

TEST(MortonTest, BlockOfCodeQuadrants) {
  Box2 root = Box2::UnitCube();
  EXPECT_EQ(BlockOfCode(root, ChildCode(RootCode(), 0)),
            root.Quadrant(0));
  EXPECT_EQ(BlockOfCode(root, ChildCode(RootCode(), 3)),
            root.Quadrant(3));
  MortonCode deep = ChildCode(ChildCode(RootCode(), 2), 1);
  EXPECT_EQ(BlockOfCode(root, deep), root.Quadrant(2).Quadrant(1));
}

TEST(MortonTest, AncestorRelation) {
  MortonCode a = ChildCode(RootCode(), 2);
  MortonCode b = ChildCode(a, 1);
  MortonCode c = ChildCode(RootCode(), 3);
  EXPECT_TRUE(IsAncestorOrSelf(RootCode(), b));
  EXPECT_TRUE(IsAncestorOrSelf(a, b));
  EXPECT_TRUE(IsAncestorOrSelf(b, b));
  EXPECT_FALSE(IsAncestorOrSelf(b, a));
  EXPECT_FALSE(IsAncestorOrSelf(c, b));
  EXPECT_FALSE(IsAncestorOrSelf(b, c));
}

TEST(MortonTest, DescendantRangeNestsLikeBlocks) {
  Pcg32 rng(5);
  Box2 root = Box2::UnitCube();
  for (int trial = 0; trial < 200; ++trial) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    MortonCode shallow = CodeOfPoint(root, p, 3);
    MortonCode deep = CodeOfPoint(root, p, 9);
    uint64_t slo, shi, dlo, dhi;
    DescendantRange(shallow, &slo, &shi);
    DescendantRange(deep, &dlo, &dhi);
    EXPECT_LE(slo, dlo);
    EXPECT_GE(shi, dhi);
    EXPECT_LT(dlo, dhi);
  }
}

TEST(MortonTest, SiblingRangesTile) {
  MortonCode parent = ChildCode(RootCode(), 1);
  uint64_t plo, phi;
  DescendantRange(parent, &plo, &phi);
  uint64_t cursor = plo;
  for (size_t q = 0; q < 4; ++q) {
    uint64_t lo, hi;
    DescendantRange(ChildCode(parent, q), &lo, &hi);
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, phi);
}

TEST(MortonTest, OrderingIsDepthFirst) {
  MortonCode a = ChildCode(RootCode(), 1);
  MortonCode a0 = ChildCode(a, 0);
  MortonCode b = ChildCode(RootCode(), 2);
  EXPECT_TRUE(RootCode() < a);
  EXPECT_TRUE(a < a0);     // ancestor before descendant (same bits)
  EXPECT_TRUE(a0 < b);     // whole subtree of a before b
  EXPECT_TRUE(a < b);
}

TEST(MortonTest, ZOrderWithinOneDepth) {
  // At a fixed depth, codes sort by quadrant path lexicographically.
  Box2 root = Box2::UnitCube();
  MortonCode sw = CodeOfPoint(root, Point2(0.1, 0.1), 4);
  MortonCode se = CodeOfPoint(root, Point2(0.9, 0.1), 4);
  MortonCode nw = CodeOfPoint(root, Point2(0.1, 0.9), 4);
  MortonCode ne = CodeOfPoint(root, Point2(0.9, 0.9), 4);
  EXPECT_TRUE(sw < se);
  EXPECT_TRUE(se < nw);
  EXPECT_TRUE(nw < ne);
}

TEST(MortonTest, MaxDepthCodesDistinct) {
  Box2 root = Box2::UnitCube();
  MortonCode a = CodeOfPoint(root, Point2(0.5, 0.5), MortonCode::kMaxDepth);
  MortonCode b = CodeOfPoint(root, Point2(0.5 + 1e-9, 0.5),
                             MortonCode::kMaxDepth);
  EXPECT_NE(a, b);
}

// ---- Batched codec -----------------------------------------------------

TEST(MortonBatchTest, MatchesScalarAtEveryDepth) {
  // Round-trip through CodeOfPointBatch at every representable depth on
  // both the dyadic fast path (unit cube) and the generic bisection path.
  const Box2 roots[] = {Box2::UnitCube(),
                        Box2(Point2(-1.25, 0.3), Point2(2.75, 1.9))};
  Pcg32 rng(41);
  for (const Box2& root : roots) {
    std::vector<Point2> pts;
    for (int i = 0; i < 37; ++i) {
      pts.push_back(Point2(rng.NextDouble(root.lo().x(), root.hi().x()),
                           rng.NextDouble(root.lo().y(), root.hi().y())));
    }
    for (uint8_t depth = 0; depth <= MortonCode::kMaxDepth; ++depth) {
      std::vector<MortonCode> batch(pts.size());
      CodeOfPointBatch(root, pts, depth, batch.data());
      for (size_t i = 0; i < pts.size(); ++i) {
        const MortonCode expected = CodeOfPoint(root, pts[i], depth);
        ASSERT_EQ(batch[i].bits, expected.bits)
            << "depth " << int{depth} << " point " << i;
        ASSERT_EQ(batch[i].depth, expected.depth);
      }
    }
  }
}

TEST(MortonBatchTest, DomainBoundaryAndMaxCoordinatePoints) {
  // Points on block seams and vanishingly close to the open upper edge —
  // the cases where quantization and midpoint descent could disagree.
  const Box2 root = Box2::UnitCube();
  const double below_one = std::nextafter(1.0, 0.0);
  const std::vector<Point2> pts = {
      Point2(0.0, 0.0),          Point2(below_one, below_one),
      Point2(0.5, 0.5),          Point2(std::nextafter(0.5, 0.0), 0.5),
      Point2(0.25, 0.75),        Point2(below_one, 0.0),
      Point2(0.0, below_one),    Point2(5e-324, 5e-324),  // subnormal
      Point2(0.5, below_one),    Point2(below_one, 0.5),
  };
  for (uint8_t depth : {uint8_t{1}, uint8_t{7}, MortonCode::kMaxDepth}) {
    std::vector<uint64_t> bits(pts.size());
    CodeBitsBatch(root, pts, depth, bits.data());
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(bits[i], CodeOfPoint(root, pts[i], depth).bits)
          << "depth " << int{depth} << " point " << i;
    }
  }
  // The maximum-coordinate corner maps to the last block at every depth.
  std::vector<uint64_t> corner(1);
  CodeBitsBatch(root, {{Point2(below_one, below_one)}}, MortonCode::kMaxDepth,
                corner.data());
  EXPECT_EQ(corner[0], (uint64_t{1} << (2 * MortonCode::kMaxDepth)) - 1);
}

TEST(MortonBatchTest, BatchedEqualsScalarOn64SeededSets) {
  // The satellite regression: 64 seeded point sets, batch vs scalar,
  // under both dispatch modes.
  const Box2 roots[] = {Box2::UnitCube(),
                        Box2(Point2(0.0, 0.0), Point2(4.0, 0.5)),  // dyadic
                        Box2(Point2(-3.0, -7.0), Point2(11.0, 13.0))};
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Pcg32 rng(seed);
    const Box2& root = roots[seed % 3];
    const uint8_t depth =
        static_cast<uint8_t>(1 + seed % MortonCode::kMaxDepth);
    std::vector<Point2> pts;
    const size_t n = 1 + static_cast<size_t>(rng.NextDouble() * 100.0);
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(Point2(rng.NextDouble(root.lo().x(), root.hi().x()),
                           rng.NextDouble(root.lo().y(), root.hi().y())));
    }
    std::vector<uint64_t> simd_bits(n);
    std::vector<uint64_t> scalar_bits(n);
    simd::SetForceScalar(false);
    CodeBitsBatch(root, pts, depth, simd_bits.data());
    simd::SetForceScalar(true);
    CodeBitsBatch(root, pts, depth, scalar_bits.data());
    simd::SetForceScalar(false);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t expected = CodeOfPoint(root, pts[i], depth).bits;
      ASSERT_EQ(simd_bits[i], expected) << "seed " << seed << " point " << i;
      ASSERT_EQ(scalar_bits[i], expected) << "seed " << seed << " point " << i;
    }
  }
}

TEST(MortonBatchTest, InterleaveBatchRoundTrip) {
  Pcg32 rng(43);
  uint32_t xs[8];
  uint32_t ys[8];
  uint64_t codes[8];
  uint32_t rx[8];
  uint32_t ry[8];
  for (int trial = 0; trial < 100; ++trial) {
    for (size_t i = 0; i < 8; ++i) {
      xs[i] = static_cast<uint32_t>(rng.NextDouble() * 4294967296.0);
      ys[i] = static_cast<uint32_t>(rng.NextDouble() * 4294967296.0);
    }
    InterleaveBatch8(xs, ys, codes);
    DeinterleaveBatch8(codes, rx, ry);
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_EQ(rx[i], xs[i]);
      ASSERT_EQ(ry[i], ys[i]);
    }
  }
}

}  // namespace
}  // namespace popan::spatial
