#include "spatial/morton.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

TEST(MortonTest, RootCode) {
  MortonCode root = RootCode();
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.bits, 0u);
  EXPECT_EQ(MortonCodeToString(root), "");
}

TEST(MortonTest, ChildParentRoundTrip) {
  MortonCode code = RootCode();
  for (size_t q : {1u, 3u, 0u, 2u}) {
    MortonCode child = ChildCode(code, q);
    EXPECT_EQ(child.depth, code.depth + 1);
    EXPECT_EQ(ParentCode(child), code);
    code = child;
  }
  EXPECT_EQ(MortonCodeToString(code), "1.3.0.2");
}

TEST(MortonTest, ParentOfRootDies) {
  EXPECT_DEATH(ParentCode(RootCode()), "root");
}

TEST(MortonTest, CodeOfPointMatchesBlockDescent) {
  Box2 root = Box2::UnitCube();
  Pcg32 rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    uint8_t depth = static_cast<uint8_t>(rng.NextBounded(12));
    MortonCode code = CodeOfPoint(root, p, depth);
    EXPECT_EQ(code.depth, depth);
    EXPECT_TRUE(BlockOfCode(root, code).Contains(p));
  }
}

TEST(MortonTest, BlockOfCodeQuadrants) {
  Box2 root = Box2::UnitCube();
  EXPECT_EQ(BlockOfCode(root, ChildCode(RootCode(), 0)),
            root.Quadrant(0));
  EXPECT_EQ(BlockOfCode(root, ChildCode(RootCode(), 3)),
            root.Quadrant(3));
  MortonCode deep = ChildCode(ChildCode(RootCode(), 2), 1);
  EXPECT_EQ(BlockOfCode(root, deep), root.Quadrant(2).Quadrant(1));
}

TEST(MortonTest, AncestorRelation) {
  MortonCode a = ChildCode(RootCode(), 2);
  MortonCode b = ChildCode(a, 1);
  MortonCode c = ChildCode(RootCode(), 3);
  EXPECT_TRUE(IsAncestorOrSelf(RootCode(), b));
  EXPECT_TRUE(IsAncestorOrSelf(a, b));
  EXPECT_TRUE(IsAncestorOrSelf(b, b));
  EXPECT_FALSE(IsAncestorOrSelf(b, a));
  EXPECT_FALSE(IsAncestorOrSelf(c, b));
  EXPECT_FALSE(IsAncestorOrSelf(b, c));
}

TEST(MortonTest, DescendantRangeNestsLikeBlocks) {
  Pcg32 rng(5);
  Box2 root = Box2::UnitCube();
  for (int trial = 0; trial < 200; ++trial) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    MortonCode shallow = CodeOfPoint(root, p, 3);
    MortonCode deep = CodeOfPoint(root, p, 9);
    uint64_t slo, shi, dlo, dhi;
    DescendantRange(shallow, &slo, &shi);
    DescendantRange(deep, &dlo, &dhi);
    EXPECT_LE(slo, dlo);
    EXPECT_GE(shi, dhi);
    EXPECT_LT(dlo, dhi);
  }
}

TEST(MortonTest, SiblingRangesTile) {
  MortonCode parent = ChildCode(RootCode(), 1);
  uint64_t plo, phi;
  DescendantRange(parent, &plo, &phi);
  uint64_t cursor = plo;
  for (size_t q = 0; q < 4; ++q) {
    uint64_t lo, hi;
    DescendantRange(ChildCode(parent, q), &lo, &hi);
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, phi);
}

TEST(MortonTest, OrderingIsDepthFirst) {
  MortonCode a = ChildCode(RootCode(), 1);
  MortonCode a0 = ChildCode(a, 0);
  MortonCode b = ChildCode(RootCode(), 2);
  EXPECT_TRUE(RootCode() < a);
  EXPECT_TRUE(a < a0);     // ancestor before descendant (same bits)
  EXPECT_TRUE(a0 < b);     // whole subtree of a before b
  EXPECT_TRUE(a < b);
}

TEST(MortonTest, ZOrderWithinOneDepth) {
  // At a fixed depth, codes sort by quadrant path lexicographically.
  Box2 root = Box2::UnitCube();
  MortonCode sw = CodeOfPoint(root, Point2(0.1, 0.1), 4);
  MortonCode se = CodeOfPoint(root, Point2(0.9, 0.1), 4);
  MortonCode nw = CodeOfPoint(root, Point2(0.1, 0.9), 4);
  MortonCode ne = CodeOfPoint(root, Point2(0.9, 0.9), 4);
  EXPECT_TRUE(sw < se);
  EXPECT_TRUE(se < nw);
  EXPECT_TRUE(nw < ne);
}

TEST(MortonTest, MaxDepthCodesDistinct) {
  Box2 root = Box2::UnitCube();
  MortonCode a = CodeOfPoint(root, Point2(0.5, 0.5), MortonCode::kMaxDepth);
  MortonCode b = CodeOfPoint(root, Point2(0.5 + 1e-9, 0.5),
                             MortonCode::kMaxDepth);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace popan::spatial
