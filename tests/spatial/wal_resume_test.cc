// Regression test for resuming a write-ahead log after a torn tail.
//
// The failure this pins down: a crash mid-append leaves the log's last
// line incomplete (no trailing newline). A writer that reopens the file
// in plain append mode glues its first record onto that partial line,
// producing a hybrid line whose checksum cannot match — so the NEXT
// recovery silently discards that record and, because of the resulting
// sequence gap, everything after it. Durable writes evaporate without
// any error at write time.
//
// The fix is ResumeWalFile: truncate to the intact prefix recovery
// measured (WalRecovery::valid_bytes) before appending, so resumed
// records land on a record boundary. This test exercises both paths
// against a real file.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/wal.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

PrTreeOptions SmallOptions() {
  PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 20;
  return options;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// Writes a 5-record log to `path`, then tears the last record: the file
/// ends mid-line, exactly like a crash between write() and the newline
/// reaching disk.
void WriteTornLog(const std::string& path) {
  std::ostringstream log;
  WalWriter writer(&log, Box2::UnitCube(), SmallOptions());
  ASSERT_TRUE(writer.LogInsert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.2, 0.2)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.3, 0.3)).ok());
  ASSERT_TRUE(writer.LogErase(Point2(0.2, 0.2)).ok());
  ASSERT_TRUE(writer.LogInsert(Point2(0.4, 0.4)).ok());
  std::string text = log.str();
  WriteAll(path, text.substr(0, text.size() - 7));
}

TEST(WalResumeTest, TornTailIsDetectedAndMeasured) {
  std::string path = testing::TempDir() + "/popan_wal_torn.log";
  WriteTornLog(path);
  WalRecovery recovery = ValueOrDie(ReplayWal(ReadAll(path)));
  EXPECT_TRUE(recovery.truncated_tail);
  EXPECT_EQ(recovery.records_applied, 4u);   // record 5 was torn
  EXPECT_EQ(recovery.last_sequence, 4u);
  EXPECT_EQ(recovery.next_sequence, 5u);
  EXPECT_EQ(recovery.tree.size(), 2u);       // 3 inserts - 1 erase
  EXPECT_LT(recovery.valid_bytes, ReadAll(path).size());
}

TEST(WalResumeTest, NaiveAppendAfterTearLosesTheResumedRecords) {
  // The failing-before shape, kept as documentation of WHY ResumeWalFile
  // truncates: append without truncation and watch the resumed records
  // vanish at the next recovery.
  std::string path = testing::TempDir() + "/popan_wal_naive.log";
  WriteTornLog(path);
  WalRecovery recovery = ValueOrDie(ReplayWal(ReadAll(path)));
  {
    std::ofstream naive(path, std::ios::binary | std::ios::app);
    WalWriter writer(&naive, Box2::UnitCube(),
                     WalWriter::ResumeAt{recovery.next_sequence});
    ASSERT_TRUE(writer.LogInsert(Point2(0.5, 0.5)).ok());
    ASSERT_TRUE(writer.LogInsert(Point2(0.6, 0.6)).ok());
  }
  WalRecovery after = ValueOrDie(ReplayWal(ReadAll(path)));
  // Record 5 fused with the torn line; record 6 then looks like a
  // sequence gap. Both "durable" writes are gone.
  EXPECT_TRUE(after.truncated_tail);
  EXPECT_EQ(after.records_applied, 4u);
  EXPECT_EQ(after.tree.size(), 2u);
}

TEST(WalResumeTest, ResumeWalFileTruncatesThenAppendsCleanly) {
  std::string path = testing::TempDir() + "/popan_wal_resume.log";
  WriteTornLog(path);
  WalRecovery recovery = ValueOrDie(ReplayWal(ReadAll(path)));
  {
    std::ofstream resumed =
        ValueOrDie(ResumeWalFile(path, recovery.valid_bytes));
    WalWriter writer(&resumed, Box2::UnitCube(),
                     WalWriter::ResumeAt{recovery.next_sequence});
    EXPECT_EQ(ValueOrDie(writer.LogInsert(Point2(0.5, 0.5))), 5u);
    EXPECT_EQ(ValueOrDie(writer.LogInsert(Point2(0.6, 0.6))), 6u);
  }
  WalRecovery after = ValueOrDie(ReplayWal(ReadAll(path)));
  EXPECT_FALSE(after.truncated_tail);
  EXPECT_EQ(after.records_applied, 6u);
  EXPECT_EQ(after.last_sequence, 6u);
  EXPECT_EQ(after.tree.size(), 4u);
  // A second crash/resume cycle over the SAME file also works: resume is
  // idempotent over intact logs (valid_bytes == file size, truncation is
  // a no-op).
  {
    std::ofstream resumed =
        ValueOrDie(ResumeWalFile(path, after.valid_bytes));
    WalWriter writer(&resumed, Box2::UnitCube(),
                     WalWriter::ResumeAt{after.next_sequence});
    EXPECT_EQ(ValueOrDie(writer.LogErase(Point2(0.5, 0.5))), 7u);
  }
  WalRecovery final_state = ValueOrDie(ReplayWal(ReadAll(path)));
  EXPECT_EQ(final_state.records_applied, 7u);
  EXPECT_EQ(final_state.tree.size(), 3u);
}

TEST(WalResumeTest, ResumeWalFileRejectsBadArguments) {
  EXPECT_EQ(ResumeWalFile(testing::TempDir() + "/popan_wal_missing.log", 0)
                .status()
                .code(),
            StatusCode::kNotFound);
  std::string path = testing::TempDir() + "/popan_wal_short.log";
  WriteAll(path, "popan-wal v1\n");
  // valid_bytes beyond EOF: the recovery result belongs to another file.
  EXPECT_EQ(ResumeWalFile(path, 1u << 20).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace popan::spatial
