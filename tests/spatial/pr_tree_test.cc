#include "spatial/pr_tree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/census.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

PrQuadtree MakeTree(size_t capacity = 1, size_t max_depth = 32) {
  PrTreeOptions options;
  options.capacity = capacity;
  options.max_depth = max_depth;
  return PrQuadtree(Box2::UnitCube(), options);
}

TEST(PrTreeTest, EmptyTree) {
  PrQuadtree tree = MakeTree();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, SingleInsert) {
  PrQuadtree tree = MakeTree();
  EXPECT_TRUE(tree.Insert(Point2(0.3, 0.4)).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.LeafCount(), 1u);  // no split needed
  EXPECT_TRUE(tree.Contains(Point2(0.3, 0.4)));
  EXPECT_FALSE(tree.Contains(Point2(0.3, 0.5)));
}

TEST(PrTreeTest, OutOfBoundsRejected) {
  PrQuadtree tree = MakeTree();
  Status s = tree.Insert(Point2(1.5, 0.5));
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Contains(Point2(1.5, 0.5)));
}

TEST(PrTreeTest, HiCornerIsOutside) {
  PrQuadtree tree = MakeTree();
  EXPECT_EQ(tree.Insert(Point2(1.0, 1.0)).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(tree.Insert(Point2(0.0, 0.0)).ok());
}

TEST(PrTreeTest, DuplicateRejected) {
  PrQuadtree tree = MakeTree();
  ASSERT_TRUE(tree.Insert(Point2(0.3, 0.4)).ok());
  Status s = tree.Insert(Point2(0.3, 0.4));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(PrTreeTest, SecondPointSplitsCapacityOneNode) {
  PrQuadtree tree = MakeTree(1);
  ASSERT_TRUE(tree.Insert(Point2(0.1, 0.1)).ok());
  ASSERT_TRUE(tree.Insert(Point2(0.9, 0.9)).ok());
  // Points in opposite quadrants: one split suffices -> 4 leaves.
  EXPECT_EQ(tree.LeafCount(), 4u);
  EXPECT_EQ(tree.NodeCount(), 5u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, CloseTogetherPointsCascadeSplits) {
  PrQuadtree tree = MakeTree(1);
  // Both points in the lowest quadrant repeatedly: depth must reach the
  // first level at which they separate.
  ASSERT_TRUE(tree.Insert(Point2(0.01, 0.01)).ok());
  ASSERT_TRUE(tree.Insert(Point2(0.02, 0.02)).ok());
  EXPECT_GT(tree.LeafCount(), 4u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Contains(Point2(0.01, 0.01)));
  EXPECT_TRUE(tree.Contains(Point2(0.02, 0.02)));
}

TEST(PrTreeTest, Figure1Decomposition) {
  // The paper's Figure 1: four points where blocks are recursively
  // quartered until no block holds more than one point.
  PrQuadtree tree = MakeTree(1);
  ASSERT_TRUE(tree.Insert(Point2(0.2, 0.8)).ok());   // NW block
  ASSERT_TRUE(tree.Insert(Point2(0.7, 0.9)).ok());   // NE block
  ASSERT_TRUE(tree.Insert(Point2(0.3, 0.3)).ok());   // SW block
  ASSERT_TRUE(tree.Insert(Point2(0.8, 0.2)).ok());   // SE block
  EXPECT_EQ(tree.LeafCount(), 4u);                   // one split total
  for (const Point2& p : tree.AllPoints()) {
    EXPECT_TRUE(tree.Contains(p));
  }
}

TEST(PrTreeTest, CapacityGovernsSplitting) {
  PrQuadtree tree = MakeTree(4);
  tree.Insert(Point2(0.1, 0.1)).ok();
  tree.Insert(Point2(0.2, 0.2)).ok();
  tree.Insert(Point2(0.3, 0.3)).ok();
  ASSERT_TRUE(tree.Insert(Point2(0.4, 0.4)).ok());
  EXPECT_EQ(tree.LeafCount(), 1u);  // four points fit one node of cap 4
  ASSERT_TRUE(tree.Insert(Point2(0.9, 0.9)).ok());
  EXPECT_GT(tree.LeafCount(), 1u);  // fifth point forces the split
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, MaxDepthTruncationAllowsOverflow) {
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 2;
  PrQuadtree tree(Box2::UnitCube(), options);
  // All points in one depth-2 block [0, 0.25)^2: cannot split past depth 2.
  ASSERT_TRUE(tree.Insert(Point2(0.01, 0.01)).ok());
  ASSERT_TRUE(tree.Insert(Point2(0.02, 0.02)).ok());
  ASSERT_TRUE(tree.Insert(Point2(0.03, 0.03)).ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  size_t max_depth_seen = 0;
  tree.VisitLeaves([&](const Box2&, size_t depth, size_t) {
    max_depth_seen = std::max(max_depth_seen, depth);
  });
  EXPECT_EQ(max_depth_seen, 2u);
}

TEST(PrTreeTest, EraseSimple) {
  PrQuadtree tree = MakeTree();
  tree.Insert(Point2(0.5, 0.5)).ok();
  EXPECT_TRUE(tree.Erase(Point2(0.5, 0.5)).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Contains(Point2(0.5, 0.5)));
}

TEST(PrTreeTest, EraseMissingIsNotFound) {
  PrQuadtree tree = MakeTree();
  EXPECT_EQ(tree.Erase(Point2(0.5, 0.5)).code(), StatusCode::kNotFound);
  tree.Insert(Point2(0.5, 0.5)).ok();
  EXPECT_EQ(tree.Erase(Point2(0.4, 0.5)).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Erase(Point2(2.0, 2.0)).code(), StatusCode::kNotFound);
}

TEST(PrTreeTest, EraseCollapsesTree) {
  PrQuadtree tree = MakeTree(1);
  tree.Insert(Point2(0.1, 0.1)).ok();
  tree.Insert(Point2(0.9, 0.9)).ok();
  ASSERT_EQ(tree.LeafCount(), 4u);
  ASSERT_TRUE(tree.Erase(Point2(0.9, 0.9)).ok());
  // One point left: the tree must collapse back to a single leaf.
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_TRUE(tree.Contains(Point2(0.1, 0.1)));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, EraseCollapsesDeepChains) {
  PrQuadtree tree = MakeTree(1);
  tree.Insert(Point2(0.001, 0.001)).ok();
  tree.Insert(Point2(0.002, 0.002)).ok();
  ASSERT_GT(tree.LeafCount(), 4u);
  ASSERT_TRUE(tree.Erase(Point2(0.002, 0.002)).ok());
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, RangeQueryFindsInsidePointsOnly) {
  PrQuadtree tree = MakeTree(2);
  tree.Insert(Point2(0.1, 0.1)).ok();
  tree.Insert(Point2(0.5, 0.5)).ok();
  tree.Insert(Point2(0.9, 0.9)).ok();
  std::vector<Point2> hits =
      tree.RangeQuery(Box2(Point2(0.4, 0.4), Point2(0.8, 0.8)));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], Point2(0.5, 0.5));
}

TEST(PrTreeTest, RangeQueryHalfOpenBoundary) {
  PrQuadtree tree = MakeTree(4);
  tree.Insert(Point2(0.5, 0.5)).ok();
  // Query with hi exactly at the point excludes it; lo at the point
  // includes it.
  EXPECT_TRUE(
      tree.RangeQuery(Box2(Point2(0.0, 0.0), Point2(0.5, 0.5))).empty());
  EXPECT_EQ(
      tree.RangeQuery(Box2(Point2(0.5, 0.5), Point2(1.0, 1.0))).size(), 1u);
}

TEST(PrTreeTest, NearestOnEmptyTreeIsNotFound) {
  PrQuadtree tree = MakeTree();
  EXPECT_EQ(tree.Nearest(Point2(0.5, 0.5)).status().code(),
            StatusCode::kNotFound);
}

TEST(PrTreeTest, NearestSinglePoint) {
  PrQuadtree tree = MakeTree();
  tree.Insert(Point2(0.25, 0.75)).ok();
  StatusOr<Point2> nearest = tree.Nearest(Point2(0.9, 0.1));
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest.value(), Point2(0.25, 0.75));
}

TEST(PrTreeTest, NearestKMatchesBruteForce) {
  PrQuadtree tree = MakeTree(3);
  std::vector<Point2> points;
  Pcg32 rng(321);
  for (int i = 0; i < 300; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (tree.Insert(p).ok()) points.push_back(p);
  }
  for (size_t k : {1u, 2u, 5u, 20u}) {
    Point2 target(rng.NextDouble(), rng.NextDouble());
    std::vector<Point2> got = tree.NearestK(target, k);
    ASSERT_EQ(got.size(), k);
    std::vector<Point2> expected = points;
    std::sort(expected.begin(), expected.end(),
              [&target](const Point2& a, const Point2& b) {
                return a.DistanceSquared(target) < b.DistanceSquared(target);
              });
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(got[i].DistanceSquared(target),
                       expected[i].DistanceSquared(target))
          << "k=" << k << " rank " << i;
    }
  }
}

TEST(PrTreeTest, NearestKWithFewerPointsReturnsAll) {
  PrQuadtree tree = MakeTree(2);
  tree.Insert(Point2(0.1, 0.1)).ok();
  tree.Insert(Point2(0.9, 0.9)).ok();
  std::vector<Point2> got = tree.NearestK(Point2(0.0, 0.0), 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], Point2(0.1, 0.1));
  EXPECT_EQ(got[1], Point2(0.9, 0.9));
}

TEST(PrTreeTest, NearestKOnEmptyTreeIsEmpty) {
  PrQuadtree tree = MakeTree();
  EXPECT_TRUE(tree.NearestK(Point2(0.5, 0.5), 3).empty());
}

TEST(PrTreeTest, NearestKOrderedAscending) {
  PrQuadtree tree = MakeTree(4);
  Pcg32 rng(7);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok();
  }
  Point2 target(0.5, 0.5);
  std::vector<Point2> got = tree.NearestK(target, 10);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].DistanceSquared(target),
              got[i].DistanceSquared(target));
  }
}

TEST(PrTreeTest, VisitLeavesCountsMatchSize) {
  PrQuadtree tree = MakeTree(2);
  Pcg32 rng(55);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Point2(rng.NextDouble(), rng.NextDouble())).ok();
  }
  size_t leaves = 0, items = 0;
  tree.VisitLeaves([&](const Box2&, size_t, size_t occupancy) {
    ++leaves;
    items += occupancy;
  });
  EXPECT_EQ(leaves, tree.LeafCount());
  EXPECT_EQ(items, tree.size());
}

TEST(PrTreeTest, AllPointsReturnsEverything) {
  PrQuadtree tree = MakeTree(3);
  std::vector<Point2> inserted;
  Pcg32 rng(77);
  for (int i = 0; i < 50; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (tree.Insert(p).ok()) inserted.push_back(p);
  }
  std::vector<Point2> all = tree.AllPoints();
  EXPECT_EQ(all.size(), inserted.size());
  for (const Point2& p : inserted) {
    EXPECT_NE(std::find(all.begin(), all.end(), p), all.end());
  }
}

TEST(PrTreeTest, ClearResets) {
  PrQuadtree tree = MakeTree(1);
  tree.Insert(Point2(0.1, 0.1)).ok();
  tree.Insert(Point2(0.9, 0.9)).ok();
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Insert(Point2(0.1, 0.1)).ok());
}

TEST(PrTreeTest, BintreeWorks) {
  PrTreeOptions options;
  options.capacity = 1;
  PrBintree tree(geo::Box1::UnitCube(), options);
  EXPECT_TRUE(tree.Insert(geo::Point1(0.1)).ok());
  EXPECT_TRUE(tree.Insert(geo::Point1(0.9)).ok());
  EXPECT_EQ(tree.LeafCount(), 2u);  // fanout 2
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, OctreeWorks) {
  PrTreeOptions options;
  options.capacity = 1;
  PrOctree tree(geo::Box3::UnitCube(), options);
  EXPECT_TRUE(tree.Insert(geo::Point3(0.1, 0.1, 0.1)).ok());
  EXPECT_TRUE(tree.Insert(geo::Point3(0.9, 0.9, 0.9)).ok());
  EXPECT_EQ(tree.LeafCount(), 8u);  // fanout 8
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeTest, CensusIntegration) {
  PrQuadtree tree = MakeTree(1);
  tree.Insert(Point2(0.1, 0.1)).ok();
  tree.Insert(Point2(0.9, 0.9)).ok();
  Census census = TakeCensus(tree);
  EXPECT_EQ(census.LeafCount(), 4u);
  EXPECT_EQ(census.CountAt(0), 2u);
  EXPECT_EQ(census.CountAt(1), 2u);
  EXPECT_EQ(census.ItemCount(), 2u);
}

TEST(PrTreeTest, CopyIsIndependent) {
  PrQuadtree tree = MakeTree(1);
  tree.Insert(Point2(0.1, 0.1)).ok();
  PrQuadtree copy = tree;
  copy.Insert(Point2(0.9, 0.9)).ok();
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

TEST(PrTreeTest, DeepSplitCascadeNearDepthLimit) {
  // Adversarially colliding points: (0,0) and (2^-990, 2^-990) share the
  // same quadrant (quadrant 0) down to depth ~990, so inserting the second
  // point triggers a ~990-level split cascade. The recursive formulation
  // this regression test guards against would burn a stack frame per level
  // (box + locals per frame) and could overflow on deep collisions; the
  // iterative cascade runs in constant stack space.
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 1000;
  PrQuadtree tree(geo::Box2::UnitCube(), options);
  const double tiny = std::ldexp(1.0, -990);  // still a normal double
  Point2 origin(0.0, 0.0);
  Point2 close(tiny, tiny);
  ASSERT_TRUE(tree.Insert(origin).ok());
  ASSERT_TRUE(tree.Insert(close).ok());
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Contains(origin));
  EXPECT_TRUE(tree.Contains(close));

  // The two points separate at depth ~990; the leaf census (taken via the
  // iterative traversals) must agree with the live histogram.
  Census walked = TakeCensus(tree);
  EXPECT_EQ(tree.LiveCensus(), walked);
  EXPECT_GE(walked.MaxDepth(), 980u);
  EXPECT_EQ(walked.ItemCount(), 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());

  // Erasing one point collapses the whole chain back to a single root
  // leaf (minimality) — iteratively, along the recorded descent path.
  ASSERT_TRUE(tree.Erase(close).ok());
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.LiveCensus(), TakeCensus(tree));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(tree.Erase(origin).ok());
  EXPECT_TRUE(tree.empty());
}

TEST(PrTreeTest, TruncatedLeafSpillsPastInlineCapacity) {
  // At max_depth the leaf absorbs unbounded overflow — more points than
  // the inline buffer holds, forcing the heap-spill path and exercising
  // erase back down through the un-spill threshold.
  PrTreeOptions options;
  options.capacity = 1;
  options.max_depth = 2;
  PrQuadtree tree(geo::Box2::UnitCube(), options);
  std::vector<Point2> points;
  Pcg32 rng(42);
  // All in one depth-2 quadrant: [0, 0.25) x [0, 0.25).
  for (size_t i = 0; i < 24; ++i) {
    Point2 p(rng.NextDouble() * 0.25, rng.NextDouble() * 0.25);
    if (tree.Insert(p).ok()) points.push_back(p);
  }
  ASSERT_GT(points.size(), PrQuadtree::kInlineLeafCapacity);
  Census census = TakeCensus(tree);
  EXPECT_EQ(census.MaxOccupancy(), points.size());
  EXPECT_EQ(tree.LiveCensus(), census);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (const Point2& p : points) {
    EXPECT_TRUE(tree.Contains(p));
  }
  while (!points.empty()) {
    ASSERT_TRUE(tree.Erase(points.back()).ok());
    points.pop_back();
    ASSERT_TRUE(tree.CheckInvariants().ok());
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.LeafCount(), 1u);
}

TEST(PrTreeTest, ReserveForPointsPresizesTheArena) {
  PrQuadtree tree(geo::Box2::UnitCube());
  tree.ReserveForPoints(10000);
  Pcg32 rng(9);
  for (size_t i = 0; i < 1000; ++i) {
    (void)tree.Insert(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// ---- InsertBatch -------------------------------------------------------

TEST(PrTreeBatchTest, MatchesSequentialBuild) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Pcg32 rng(seed);
    PrQuadtree seq = MakeTree(1 + seed % 8);
    PrQuadtree bat = MakeTree(1 + seed % 8);
    std::vector<Point2> pts;
    for (size_t i = 0; i < 2000; ++i) {
      pts.push_back(Point2(rng.NextDouble(), rng.NextDouble()));
    }
    size_t inserted = 0;
    for (const Point2& p : pts) {
      if (seq.Insert(p).ok()) ++inserted;
    }
    BatchInsertStats stats = bat.InsertBatch(pts);
    EXPECT_EQ(stats.inserted, inserted);
    EXPECT_EQ(stats.duplicates, 0u);
    EXPECT_EQ(stats.out_of_bounds, 0u);
    EXPECT_EQ(bat.size(), seq.size());
    EXPECT_EQ(bat.LeafCount(), seq.LeafCount());
    EXPECT_TRUE(bat.CheckInvariants().ok()) << "seed " << seed;
    // Canonical decomposition: identical census.
    EXPECT_EQ(bat.LiveCensus(), seq.LiveCensus()) << "seed " << seed;
  }
}

TEST(PrTreeBatchTest, CountsDuplicatesAndOutOfBounds) {
  PrQuadtree tree = MakeTree(4);
  ASSERT_TRUE(tree.Insert(Point2(0.5, 0.5)).ok());
  const std::vector<Point2> batch = {
      Point2(0.1, 0.1), Point2(0.5, 0.5),   // duplicate of stored point
      Point2(0.1, 0.1),                     // duplicate within the batch
      Point2(1.5, 0.5), Point2(-0.1, 0.2),  // out of bounds
  };
  BatchInsertStats stats = tree.InsertBatch(batch);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(stats.out_of_bounds, 2u);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeBatchTest, IncrementalBatchOntoExistingTree) {
  Pcg32 rng(77);
  PrQuadtree seq = MakeTree(4);
  PrQuadtree mix = MakeTree(4);
  std::vector<Point2> pts;
  for (size_t i = 0; i < 3000; ++i) {
    pts.push_back(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  for (const Point2& p : pts) (void)seq.Insert(p);
  for (size_t i = 0; i < 1500; ++i) (void)mix.Insert(pts[i]);
  std::vector<Point2> rest(pts.begin() + 1500, pts.end());
  (void)mix.InsertBatch(rest);
  EXPECT_EQ(mix.size(), seq.size());
  EXPECT_EQ(mix.LiveCensus(), seq.LiveCensus());
  EXPECT_TRUE(mix.CheckInvariants().ok());
}

TEST(PrTreeBatchTest, EmptyAndAllRejectedBatches) {
  PrQuadtree tree = MakeTree(2);
  EXPECT_EQ(tree.InsertBatch({}).inserted, 0u);
  const std::vector<Point2> oob = {Point2(2.0, 2.0), Point2(-1.0, 0.0)};
  BatchInsertStats stats = tree.InsertBatch(oob);
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_EQ(stats.out_of_bounds, 2u);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PrTreeBatchTest, NoMidBatchArenaGrowthAt1e5) {
  // The satellite acceptance test: the run-length reserve estimate must
  // absorb a 100k bulk load without a single mid-batch slab reallocation.
  Pcg32 rng(123);
  PrTreeOptions options;
  options.capacity = 8;
  PrQuadtree tree(Box2::UnitCube(), options);
  std::vector<Point2> pts;
  pts.reserve(100000);
  for (size_t i = 0; i < 100000; ++i) {
    pts.push_back(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  const size_t growths_before = tree.ArenaGrowthCount();
  BatchInsertStats stats = tree.InsertBatch(pts);
  EXPECT_EQ(tree.ArenaGrowthCount(), growths_before)
      << "arena grew mid-batch";
  EXPECT_EQ(stats.inserted + stats.duplicates, pts.size());
  EXPECT_EQ(tree.size(), stats.inserted);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

}  // namespace
}  // namespace popan::spatial
