#include "spatial/snapshot_view.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rw_storm.h"
#include "spatial/census.h"
#include "spatial/checkpoint.h"
#include "spatial/pr_tree.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;
using sim::MakeStormTrace;
using sim::ReplayTrace;
using sim::StormOp;
using sim::StormQueryBox;

constexpr size_t kSeeds = 64;
constexpr size_t kOps = 300;
constexpr size_t kSnapshotStride = 37;
constexpr size_t kQueriesPerSnapshot = 3;

PrTreeOptions StormOptions() {
  PrTreeOptions options;
  options.capacity = 4;
  options.max_depth = 32;
  return options;
}

void SortCanonical(std::vector<Point2>* points) {
  std::sort(points->begin(), points->end(),
            [](const Point2& a, const Point2& b) {
              if (a.x() != b.x()) return a.x() < b.x();
              return a.y() < b.y();
            });
}

std::vector<Point2> SortedRange(const SnapshotView2& snapshot,
                                const Box2& box) {
  std::vector<Point2> points = snapshot.RangeQuery(box);
  SortCanonical(&points);
  return points;
}

std::vector<Point2> SortedRange(const PrTree<2>& tree, const Box2& box) {
  std::vector<Point2> points = tree.RangeQuery(box);
  SortCanonical(&points);
  return points;
}

/// Asserts the snapshot is bitwise identical to a stop-the-world tree
/// built by replaying the first snapshot.sequence() trace operations:
/// size, live census, and canonical range results at the storm boxes.
void ExpectMatchesPrefix(const SnapshotView2& snapshot,
                         const std::vector<StormOp>& trace, uint64_t seed) {
  PrTree<2> ref(Box2::UnitCube(), StormOptions());
  ASSERT_TRUE(ReplayTrace({trace.data(), trace.size()},
                          static_cast<size_t>(snapshot.sequence()), &ref)
                  .ok());
  EXPECT_EQ(snapshot.size(), ref.size());
  EXPECT_EQ(snapshot.LeafCount(), ref.LeafCount());
  EXPECT_TRUE(snapshot.LiveCensus() == ref.LiveCensus())
      << "census mismatch at sequence " << snapshot.sequence() << " seed "
      << seed;
  for (uint64_t j = 0; j < kQueriesPerSnapshot; ++j) {
    Box2 box = StormQueryBox(seed, snapshot.sequence(), j);
    EXPECT_EQ(SortedRange(snapshot, box), SortedRange(ref, box))
        << "range mismatch at sequence " << snapshot.sequence() << " seed "
        << seed << " query " << j;
  }
}

// The satellite property test: for 64 seeds, interleave the writer trace
// with snapshots and check every pinned snapshot against the serially
// replayed prefix. Single-threaded on purpose — the oracle itself must
// hold before the storm adds scheduling nondeterminism on top.
TEST(SnapshotConsistencyTest, EverySnapshotEqualsItsReplayedPrefix) {
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::vector<StormOp> trace = MakeStormTrace(kOps, 0.65, seed);
    CowPrQuadtree tree(Box2::UnitCube(), StormOptions());
    std::vector<SnapshotView2> pinned;
    for (size_t i = 0; i < trace.size(); ++i) {
      Status s = trace[i].insert ? tree.Insert(trace[i].point)
                                 : tree.Erase(trace[i].point);
      ASSERT_TRUE(s.ok()) << s.ToString() << " seed " << seed << " op " << i;
      if ((i + 1) % kSnapshotStride == 0) {
        pinned.push_back(tree.Snapshot());
      }
    }
    ASSERT_EQ(tree.sequence(), kOps);
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "seed " << seed;
    // Every snapshot was pinned while the writer kept going; each must
    // still show exactly its own prefix.
    for (const SnapshotView2& snapshot : pinned) {
      ExpectMatchesPrefix(snapshot, trace, seed);
    }
    {
      SnapshotView2 final_snapshot = tree.Snapshot();
      EXPECT_EQ(final_snapshot.sequence(), kOps);
      ExpectMatchesPrefix(final_snapshot, trace, seed);
    }
    // With all pins released, one more advance must fully drain limbo.
    pinned.clear();
    tree.epochs().AdvanceEpoch();
    tree.epochs().Reclaim();
    EXPECT_EQ(tree.epochs().limbo_size(), 0u) << "seed " << seed;
    EXPECT_EQ(tree.epochs().objects_retired(),
              tree.epochs().objects_reclaimed())
        << "seed " << seed;
  }
}

// A pinned snapshot must keep its exact contents no matter how much the
// writer mutates afterwards — the epoch pin is what stops reclamation of
// the frozen version's nodes.
TEST(SnapshotConsistencyTest, PinnedSnapshotSurvivesHeavyChurn) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    std::vector<StormOp> trace = MakeStormTrace(kOps, 0.65, seed);
    CowPrQuadtree tree(Box2::UnitCube(), StormOptions());
    size_t half = trace.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE((trace[i].insert ? tree.Insert(trace[i].point)
                                   : tree.Erase(trace[i].point))
                      .ok());
    }
    SnapshotView2 snapshot = tree.Snapshot();
    Census census_before = snapshot.LiveCensus();
    Box2 probe = StormQueryBox(seed, snapshot.sequence(), 0);
    std::vector<Point2> results_before = SortedRange(snapshot, probe);
    for (size_t i = half; i < trace.size(); ++i) {
      ASSERT_TRUE((trace[i].insert ? tree.Insert(trace[i].point)
                                   : tree.Erase(trace[i].point))
                      .ok());
    }
    // The writer is far ahead; the pinned view must be unchanged and
    // still equal to its replayed prefix.
    EXPECT_EQ(snapshot.sequence(), half);
    EXPECT_TRUE(snapshot.LiveCensus() == census_before);
    EXPECT_EQ(SortedRange(snapshot, probe), results_before);
    ExpectMatchesPrefix(snapshot, trace, seed);
  }
}

// The WAL-anchor reuse: checkpointing a pinned snapshot (writer still
// running) produces a snapshot/WAL pair that recovers to exactly the
// pinned prefix, anchored at the snapshot's sequence number.
TEST(SnapshotConsistencyTest, CheckpointFromPinnedSnapshotRecovers) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    std::vector<StormOp> trace = MakeStormTrace(kOps, 0.7, seed);
    CowPrQuadtree tree(Box2::UnitCube(), StormOptions());
    size_t cut = (2 * trace.size()) / 3;
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE((trace[i].insert ? tree.Insert(trace[i].point)
                                   : tree.Erase(trace[i].point))
                      .ok());
    }
    SnapshotView2 snapshot = tree.Snapshot();
    std::ostringstream snapshot_out, wal_out;
    StatusOr<WalWriter> writer =
        Checkpoint(snapshot, &snapshot_out, &wal_out);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ(writer->next_sequence(), snapshot.sequence() + 1);
    // Writer keeps churning after the checkpoint was cut.
    for (size_t i = cut; i < trace.size(); ++i) {
      ASSERT_TRUE((trace[i].insert ? tree.Insert(trace[i].point)
                                   : tree.Erase(trace[i].point))
                      .ok());
    }
    StatusOr<RecoverResult> recovered =
        Recover(snapshot_out.str(), wal_out.str());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->snapshot_sequence, snapshot.sequence());
    EXPECT_EQ(recovered->tree.size(), snapshot.size());
    EXPECT_TRUE(recovered->tree.LiveCensus() == snapshot.LiveCensus());
  }
}

}  // namespace
}  // namespace popan::spatial
