#include "spatial/pmr_quadtree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "spatial/census.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;
using geo::Segment;

PmrQuadtree MakeTree(size_t threshold = 4, size_t max_depth = 16) {
  PmrQuadtreeOptions options;
  options.splitting_threshold = threshold;
  options.max_depth = max_depth;
  return PmrQuadtree(Box2::UnitCube(), options);
}

TEST(PmrQuadtreeTest, EmptyTree) {
  PmrQuadtree tree = MakeTree();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PmrQuadtreeTest, InsertAssignsSequentialIds) {
  PmrQuadtree tree = MakeTree();
  ASSERT_TRUE(tree.Insert(Segment(Point2(0.1, 0.1), Point2(0.2, 0.2))).ok());
  ASSERT_TRUE(tree.Insert(Segment(Point2(0.5, 0.5), Point2(0.6, 0.6))).ok());
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.GetSegment(0).a(), Point2(0.1, 0.1));
  EXPECT_EQ(tree.GetSegment(1).b(), Point2(0.6, 0.6));
}

TEST(PmrQuadtreeTest, SegmentOutsideBoundsRejected) {
  PmrQuadtree tree = MakeTree();
  Status s = tree.Insert(Segment(Point2(2.0, 2.0), Point2(3.0, 3.0)));
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(PmrQuadtreeTest, ThresholdTriggersExactlyOneSplit) {
  PmrQuadtree tree = MakeTree(2);
  // Three tiny disjoint segments inside one quadrant: the third insert
  // pushes the root leaf over threshold 2 -> exactly one split.
  tree.Insert(Segment(Point2(0.10, 0.10), Point2(0.11, 0.10))).ok();
  tree.Insert(Segment(Point2(0.12, 0.12), Point2(0.13, 0.12))).ok();
  EXPECT_EQ(tree.LeafCount(), 1u);
  tree.Insert(Segment(Point2(0.14, 0.14), Point2(0.15, 0.14))).ok();
  EXPECT_EQ(tree.LeafCount(), 4u);  // split once, NOT recursively
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PmrQuadtreeTest, OverThresholdChildSplitsOnNextInsertion) {
  PmrQuadtree tree = MakeTree(2);
  tree.Insert(Segment(Point2(0.10, 0.10), Point2(0.11, 0.10))).ok();
  tree.Insert(Segment(Point2(0.12, 0.12), Point2(0.13, 0.12))).ok();
  tree.Insert(Segment(Point2(0.14, 0.14), Point2(0.15, 0.14))).ok();
  ASSERT_EQ(tree.LeafCount(), 4u);
  // All three live in the SW child, which is over threshold but waits.
  // The next insertion touching it splits it (once).
  tree.Insert(Segment(Point2(0.16, 0.16), Point2(0.17, 0.16))).ok();
  EXPECT_EQ(tree.LeafCount(), 7u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PmrQuadtreeTest, CrossingSegmentStoredInAllLeavesItTouches) {
  PmrQuadtree tree = MakeTree(1);
  // Force a split with two small segments.
  tree.Insert(Segment(Point2(0.1, 0.1), Point2(0.15, 0.1))).ok();
  tree.Insert(Segment(Point2(0.8, 0.8), Point2(0.85, 0.8))).ok();
  ASSERT_GT(tree.LeafCount(), 1u);
  // A horizontal chord through y=0.5... use y=0.3 to cross both lower
  // quadrants.
  tree.Insert(Segment(Point2(0.0, 0.3), Point2(1.0, 0.3))).ok();
  EXPECT_TRUE(tree.CheckInvariants().ok());  // includes coverage check
}

TEST(PmrQuadtreeTest, RangeQueryFindsCrossingSegments) {
  PmrQuadtree tree = MakeTree(2);
  tree.Insert(Segment(Point2(0.1, 0.1), Point2(0.9, 0.9))).ok();   // id 0
  tree.Insert(Segment(Point2(0.1, 0.9), Point2(0.3, 0.7))).ok();   // id 1
  tree.Insert(Segment(Point2(0.85, 0.1), Point2(0.95, 0.2))).ok(); // id 2
  std::vector<PmrQuadtree::SegmentId> hits =
      tree.RangeQuery(Box2(Point2(0.0, 0.6), Point2(0.4, 1.0)));
  std::set<PmrQuadtree::SegmentId> got(hits.begin(), hits.end());
  EXPECT_TRUE(got.count(1));
  EXPECT_FALSE(got.count(2));
}

TEST(PmrQuadtreeTest, RangeQueryDeduplicatesFragments) {
  PmrQuadtree tree = MakeTree(1);
  // Split the root, then insert a long diagonal crossing many leaves.
  tree.Insert(Segment(Point2(0.1, 0.1), Point2(0.12, 0.1))).ok();
  tree.Insert(Segment(Point2(0.9, 0.9), Point2(0.92, 0.9))).ok();
  tree.Insert(Segment(Point2(0.0, 0.0), Point2(0.99, 0.99))).ok();
  std::vector<PmrQuadtree::SegmentId> hits =
      tree.RangeQuery(Box2::UnitCube());
  // Every id exactly once.
  std::set<PmrQuadtree::SegmentId> got(hits.begin(), hits.end());
  EXPECT_EQ(hits.size(), got.size());
  EXPECT_EQ(got.size(), 3u);
}

TEST(PmrQuadtreeTest, MaxDepthStopsSplitting) {
  PmrQuadtreeOptions options;
  options.splitting_threshold = 1;
  options.max_depth = 2;
  PmrQuadtree tree(Box2::UnitCube(), options);
  for (int i = 0; i < 8; ++i) {
    double y = 0.01 + 0.002 * i;
    ASSERT_TRUE(
        tree.Insert(Segment(Point2(0.01, y), Point2(0.02, y))).ok());
  }
  size_t deepest = 0;
  tree.VisitLeaves([&](const Box2&, size_t depth, size_t) {
    deepest = std::max(deepest, depth);
  });
  EXPECT_LE(deepest, 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(PmrQuadtreeTest, CensusCountsFragments) {
  PmrQuadtree tree = MakeTree(8);
  // One segment crossing the whole box in a single leaf: occupancy 1.
  tree.Insert(Segment(Point2(0.0, 0.5), Point2(0.99, 0.5))).ok();
  Census census = TakeCensus(tree);
  EXPECT_EQ(census.LeafCount(), 1u);
  EXPECT_EQ(census.ItemCount(), 1u);
}

TEST(PmrQuadtreeTest, RandomWorkloadKeepsInvariants) {
  PmrQuadtree tree = MakeTree(4);
  Pcg32 rng(31);
  for (int i = 0; i < 150; ++i) {
    Point2 a(rng.NextDouble(), rng.NextDouble());
    Point2 b(a.x() + rng.NextDouble(-0.2, 0.2),
             a.y() + rng.NextDouble(-0.2, 0.2));
    Segment s(a, b);
    if (s.IntersectsBox(Box2::UnitCube())) {
      ASSERT_TRUE(tree.Insert(s).ok());
    }
  }
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_GT(tree.LeafCount(), 4u);
}

TEST(PmrQuadtreeTest, FragmentCountGrowsWithCrossings) {
  // A long segment contributes one fragment per leaf it crosses; verify
  // census items exceed segment count once leaves multiply.
  PmrQuadtree tree = MakeTree(1);
  tree.Insert(Segment(Point2(0.1, 0.2), Point2(0.2, 0.2))).ok();
  tree.Insert(Segment(Point2(0.7, 0.8), Point2(0.8, 0.8))).ok();
  tree.Insert(Segment(Point2(0.0, 0.4), Point2(0.99, 0.6))).ok();
  Census census = TakeCensus(tree);
  EXPECT_GT(census.ItemCount(), tree.size());
}

}  // namespace
}  // namespace popan::spatial
