#include "spatial/node_arena.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace popan::spatial {
namespace {

struct TestNode {
  int value = 0;
  std::vector<int> payload;
  TestNode() = default;
  explicit TestNode(int v) : value(v) {}
};

TEST(NodeArenaTest, AllocateReturnsSequentialIndices) {
  NodeArena<TestNode> arena;
  EXPECT_EQ(arena.Allocate(1), 0u);
  EXPECT_EQ(arena.Allocate(2), 1u);
  EXPECT_EQ(arena.Allocate(3), 2u);
  EXPECT_EQ(arena.LiveCount(), 3u);
}

TEST(NodeArenaTest, GetReturnsConstructedNode) {
  NodeArena<TestNode> arena;
  NodeIndex idx = arena.Allocate(42);
  EXPECT_EQ(arena.Get(idx).value, 42);
  EXPECT_EQ(arena[idx].value, 42);
}

TEST(NodeArenaTest, MutationThroughGet) {
  NodeArena<TestNode> arena;
  NodeIndex idx = arena.Allocate();
  arena.Get(idx).value = 9;
  EXPECT_EQ(arena.Get(idx).value, 9);
}

TEST(NodeArenaTest, FreeRecyclesSlots) {
  NodeArena<TestNode> arena;
  NodeIndex a = arena.Allocate(1);
  arena.Allocate(2);
  arena.Free(a);
  EXPECT_EQ(arena.LiveCount(), 1u);
  NodeIndex c = arena.Allocate(3);
  EXPECT_EQ(c, a);  // the freed slot is reused
  EXPECT_EQ(arena.SlotCount(), 2u);
  EXPECT_EQ(arena.Get(c).value, 3);
}

TEST(NodeArenaTest, FreeResetsContents) {
  NodeArena<TestNode> arena;
  NodeIndex a = arena.Allocate(5);
  arena.Get(a).payload = {1, 2, 3};
  arena.Free(a);
  NodeIndex b = arena.Allocate();
  ASSERT_EQ(b, a);
  EXPECT_TRUE(arena.Get(b).payload.empty());
  EXPECT_EQ(arena.Get(b).value, 0);
}

TEST(NodeArenaTest, IndicesStableAcrossGrowth) {
  NodeArena<TestNode> arena;
  NodeIndex first = arena.Allocate(7);
  for (int i = 0; i < 10000; ++i) arena.Allocate(i);
  EXPECT_EQ(arena.Get(first).value, 7);
}

TEST(NodeArenaTest, ClearDropsEverything) {
  NodeArena<TestNode> arena;
  arena.Allocate(1);
  arena.Allocate(2);
  arena.Clear();
  EXPECT_EQ(arena.LiveCount(), 0u);
  EXPECT_EQ(arena.SlotCount(), 0u);
  EXPECT_EQ(arena.Allocate(3), 0u);
}

TEST(NodeArenaTest, CopySemantics) {
  NodeArena<TestNode> arena;
  NodeIndex idx = arena.Allocate(11);
  NodeArena<TestNode> copy = arena;
  copy.Get(idx).value = 99;
  EXPECT_EQ(arena.Get(idx).value, 11);
  EXPECT_EQ(copy.Get(idx).value, 99);
}

TEST(NodeArenaTest, ReservePresizesWithoutAllocating) {
  NodeArena<TestNode> arena;
  arena.Reserve(1000);
  EXPECT_GE(arena.Capacity(), 1000u);
  EXPECT_EQ(arena.LiveCount(), 0u);
  EXPECT_EQ(arena.SlotCount(), 0u);
  // Allocations up to the reservation keep the slab in place, so an index
  // taken before them still resolves (stability is by index either way;
  // this checks Reserve actually pre-sized the slab).
  NodeIndex first = arena.Allocate(7);
  size_t cap = arena.Capacity();
  for (int i = 0; i < 999; ++i) arena.Allocate(i);
  EXPECT_EQ(arena.Capacity(), cap);
  EXPECT_EQ(arena.Get(first).value, 7);
  EXPECT_EQ(arena.LiveCount(), 1000u);
}

TEST(NodeArenaTest, ManyFreesAndReuses) {
  NodeArena<TestNode> arena;
  std::vector<NodeIndex> indices;
  for (int i = 0; i < 100; ++i) indices.push_back(arena.Allocate(i));
  for (int i = 0; i < 100; i += 2) arena.Free(indices[i]);
  EXPECT_EQ(arena.LiveCount(), 50u);
  for (int i = 0; i < 50; ++i) arena.Allocate(1000 + i);
  EXPECT_EQ(arena.LiveCount(), 100u);
  EXPECT_EQ(arena.SlotCount(), 100u);  // all from the free list
}

}  // namespace
}  // namespace popan::spatial
