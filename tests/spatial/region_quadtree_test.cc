#include "spatial/region_quadtree.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

#include "testing/statusor_testing.h"

namespace popan::spatial {
namespace {

std::vector<uint8_t> RandomRaster(size_t side, double density,
                                  uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint8_t> pixels(side * side);
  for (auto& px : pixels) px = rng.NextDouble() < density ? 1 : 0;
  return pixels;
}

TEST(RegionQuadtreeTest, EmptyAndFull) {
  RegionQuadtree empty = ValueOrDie(RegionQuadtree::Empty(8));
  RegionQuadtree full = ValueOrDie(RegionQuadtree::Full(8));
  EXPECT_EQ(empty.Area(), 0u);
  EXPECT_EQ(full.Area(), 64u);
  EXPECT_EQ(empty.LeafCount(), 1u);
  EXPECT_EQ(full.LeafCount(), 1u);
  EXPECT_FALSE(empty.At(3, 3));
  EXPECT_TRUE(full.At(3, 3));
}

TEST(RegionQuadtreeTest, InvalidSides) {
  EXPECT_FALSE(RegionQuadtree::Empty(0).ok());
  EXPECT_FALSE(RegionQuadtree::Empty(3).ok());
  EXPECT_FALSE(RegionQuadtree::Empty(100000).ok());
  EXPECT_TRUE(RegionQuadtree::Empty(1).ok());
}

TEST(RegionQuadtreeTest, RasterRoundTrip) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::vector<uint8_t> pixels = RandomRaster(16, 0.4, seed);
    RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 16));
    EXPECT_EQ(tree.ToRaster(), pixels);
    EXPECT_TRUE(tree.CheckInvariants().ok());
  }
}

TEST(RegionQuadtreeTest, RasterSizeMismatchRejected) {
  EXPECT_FALSE(RegionQuadtree::FromRaster({1, 0, 1}, 2).ok());
}

TEST(RegionQuadtreeTest, AtMatchesRaster) {
  std::vector<uint8_t> pixels = RandomRaster(32, 0.5, 9);
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 32));
  for (size_t y = 0; y < 32; ++y) {
    for (size_t x = 0; x < 32; ++x) {
      EXPECT_EQ(tree.At(x, y), pixels[y * 32 + x] != 0)
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(RegionQuadtreeTest, AreaMatchesPixelCount) {
  std::vector<uint8_t> pixels = RandomRaster(64, 0.3, 17);
  uint64_t expected = 0;
  for (uint8_t px : pixels) expected += px;
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 64));
  EXPECT_EQ(tree.Area(), expected);
}

TEST(RegionQuadtreeTest, ConstructionNormalizes) {
  // A raster that is uniform must collapse to a single leaf.
  std::vector<uint8_t> black(16 * 16, 1);
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(black, 16));
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
}

TEST(RegionQuadtreeTest, CheckerboardIsMaximal) {
  std::vector<uint8_t> pixels(8 * 8);
  for (size_t y = 0; y < 8; ++y) {
    for (size_t x = 0; x < 8; ++x) pixels[y * 8 + x] = (x + y) & 1;
  }
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 8));
  EXPECT_EQ(tree.LeafCount(), 64u);  // nothing merges
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RegionQuadtreeTest, SetPixelAndCollapse) {
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::Empty(8));
  tree.Set(5, 2, true);
  EXPECT_TRUE(tree.At(5, 2));
  EXPECT_EQ(tree.Area(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  tree.Set(5, 2, false);
  EXPECT_EQ(tree.Area(), 0u);
  // Un-setting must collapse back to the single empty leaf.
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
}

TEST(RegionQuadtreeTest, SetRectPaintsExactly) {
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::Empty(16));
  tree.SetRect(3, 5, 11, 9, true);
  EXPECT_EQ(tree.Area(), (11u - 3u) * (9u - 5u));
  for (size_t y = 0; y < 16; ++y) {
    for (size_t x = 0; x < 16; ++x) {
      EXPECT_EQ(tree.At(x, y), x >= 3 && x < 11 && y >= 5 && y < 9);
    }
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RegionQuadtreeTest, SetRectAlignedBlockStaysSmall) {
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::Empty(16));
  tree.SetRect(8, 8, 16, 16, true);  // exactly the NE quadrant
  EXPECT_EQ(tree.LeafCount(), 4u);
  EXPECT_EQ(tree.Area(), 64u);
}

TEST(RegionQuadtreeTest, EmptyRectIsNoOp) {
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::Empty(8));
  tree.SetRect(3, 3, 3, 7, true);
  EXPECT_EQ(tree.Area(), 0u);
}

TEST(RegionQuadtreeTest, UnionMatchesPixelwiseOr) {
  std::vector<uint8_t> pa = RandomRaster(32, 0.3, 21);
  std::vector<uint8_t> pb = RandomRaster(32, 0.3, 22);
  RegionQuadtree a = ValueOrDie(RegionQuadtree::FromRaster(pa, 32));
  RegionQuadtree b = ValueOrDie(RegionQuadtree::FromRaster(pb, 32));
  RegionQuadtree u = RegionQuadtree::Union(a, b);
  std::vector<uint8_t> expected(32 * 32);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = (pa[i] | pb[i]) != 0;
  }
  EXPECT_EQ(u.ToRaster(), expected);
  EXPECT_TRUE(u.CheckInvariants().ok());
}

TEST(RegionQuadtreeTest, IntersectMatchesPixelwiseAnd) {
  std::vector<uint8_t> pa = RandomRaster(32, 0.6, 23);
  std::vector<uint8_t> pb = RandomRaster(32, 0.6, 24);
  RegionQuadtree a = ValueOrDie(RegionQuadtree::FromRaster(pa, 32));
  RegionQuadtree b = ValueOrDie(RegionQuadtree::FromRaster(pb, 32));
  RegionQuadtree i = RegionQuadtree::Intersect(a, b);
  std::vector<uint8_t> expected(32 * 32);
  for (size_t k = 0; k < expected.size(); ++k) {
    expected[k] = (pa[k] & pb[k]) != 0;
  }
  EXPECT_EQ(i.ToRaster(), expected);
  EXPECT_TRUE(i.CheckInvariants().ok());
}

TEST(RegionQuadtreeTest, ComplementInvolution) {
  std::vector<uint8_t> pixels = RandomRaster(16, 0.5, 25);
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 16));
  RegionQuadtree twice = tree.Complement().Complement();
  EXPECT_EQ(twice, tree);
  EXPECT_EQ(tree.Complement().Area(), 16u * 16u - tree.Area());
}

TEST(RegionQuadtreeTest, DeMorgan) {
  RegionQuadtree a =
      ValueOrDie(RegionQuadtree::FromRaster(RandomRaster(16, 0.4, 26), 16));
  RegionQuadtree b =
      ValueOrDie(RegionQuadtree::FromRaster(RandomRaster(16, 0.4, 27), 16));
  RegionQuadtree lhs = RegionQuadtree::Union(a, b).Complement();
  RegionQuadtree rhs =
      RegionQuadtree::Intersect(a.Complement(), b.Complement());
  EXPECT_EQ(lhs, rhs);
}

TEST(RegionQuadtreeTest, UnionIdentities) {
  RegionQuadtree a =
      ValueOrDie(RegionQuadtree::FromRaster(RandomRaster(16, 0.4, 28), 16));
  RegionQuadtree empty = ValueOrDie(RegionQuadtree::Empty(16));
  RegionQuadtree full = ValueOrDie(RegionQuadtree::Full(16));
  EXPECT_EQ(RegionQuadtree::Union(a, empty), a);
  EXPECT_EQ(RegionQuadtree::Union(a, full), full);
  EXPECT_EQ(RegionQuadtree::Intersect(a, full), a);
  EXPECT_EQ(RegionQuadtree::Intersect(a, empty), empty);
  EXPECT_EQ(RegionQuadtree::Union(a, a), a);
  EXPECT_EQ(RegionQuadtree::Intersect(a, a), a);
}

TEST(RegionQuadtreeTest, VisitLeavesTilesImage) {
  std::vector<uint8_t> pixels = RandomRaster(16, 0.35, 29);
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 16));
  uint64_t covered = 0;
  tree.VisitLeaves([&](size_t, size_t, size_t block, bool) {
    covered += static_cast<uint64_t>(block) * block;
  });
  EXPECT_EQ(covered, 16u * 16u);
}

TEST(RegionQuadtreeTest, RandomEditsAgainstBitmapOracle) {
  const size_t side = 16;
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::Empty(side));
  std::vector<uint8_t> oracle(side * side, 0);
  Pcg32 rng(31);
  for (int op = 0; op < 400; ++op) {
    size_t x0 = rng.NextBounded(side), x1 = rng.NextBounded(side);
    size_t y0 = rng.NextBounded(side), y1 = rng.NextBounded(side);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    bool black = rng.NextBounded(2) == 0;
    tree.SetRect(x0, y0, x1 + 1, y1 + 1, black);
    for (size_t y = y0; y <= y1; ++y) {
      for (size_t x = x0; x <= x1; ++x) oracle[y * side + x] = black;
    }
    if (op % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString();
      ASSERT_EQ(tree.ToRaster(), oracle) << "op " << op;
    }
  }
  EXPECT_EQ(tree.ToRaster(), oracle);
}

}  // namespace
}  // namespace popan::spatial
