#include "spatial/mx_quadtree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::spatial {
namespace {

TEST(MxQuadtreeTest, EmptyTree) {
  MxQuadtree tree(4);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.side(), 16u);
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_FALSE(tree.Contains(3, 3));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(MxQuadtreeTest, ResolutionLimits) {
  EXPECT_DEATH(MxQuadtree(0), "resolution_bits");
  EXPECT_DEATH(MxQuadtree(17), "resolution_bits");
  EXPECT_EQ(MxQuadtree(1).side(), 2u);
  EXPECT_EQ(MxQuadtree(16).side(), 65536u);
}

TEST(MxQuadtreeTest, InsertAndContains) {
  MxQuadtree tree(3);
  EXPECT_TRUE(tree.Insert(5, 2).ok());
  EXPECT_TRUE(tree.Contains(5, 2));
  EXPECT_FALSE(tree.Contains(2, 5));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(MxQuadtreeTest, OutOfRangeRejected) {
  MxQuadtree tree(3);
  EXPECT_EQ(tree.Insert(8, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tree.Insert(0, 100).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(tree.Contains(8, 0));
}

TEST(MxQuadtreeTest, DuplicateCellRejected) {
  MxQuadtree tree(3);
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_EQ(tree.Insert(1, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(MxQuadtreeTest, AllPointsAtFullDepthNodeCounting) {
  // One point in a 2^k tree materializes exactly k+... nodes: root + one
  // node per level + the cell = k + 1 nodes (root at block 2^k down to
  // the cell at block 1).
  MxQuadtree tree(5);
  ASSERT_TRUE(tree.Insert(17, 9).ok());
  EXPECT_EQ(tree.NodeCount(), 6u);  // 5 internals + 1 cell
}

TEST(MxQuadtreeTest, EraseAndPrune) {
  MxQuadtree tree(4);
  ASSERT_TRUE(tree.Insert(3, 3).ok());
  ASSERT_TRUE(tree.Insert(12, 12).ok());
  size_t with_two = tree.NodeCount();
  ASSERT_TRUE(tree.Erase(3, 3).ok());
  EXPECT_FALSE(tree.Contains(3, 3));
  EXPECT_TRUE(tree.Contains(12, 12));
  EXPECT_LT(tree.NodeCount(), with_two);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(tree.Erase(12, 12).ok());
  EXPECT_EQ(tree.NodeCount(), 0u);  // fully pruned
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(MxQuadtreeTest, EraseMissingIsNotFound) {
  MxQuadtree tree(4);
  EXPECT_EQ(tree.Erase(1, 1).code(), StatusCode::kNotFound);
  tree.Insert(1, 1).ok();
  EXPECT_EQ(tree.Erase(1, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Erase(100, 1).code(), StatusCode::kNotFound);
}

TEST(MxQuadtreeTest, RangeQueryMatchesBruteForce) {
  MxQuadtree tree(6);  // 64 x 64
  std::set<std::pair<uint32_t, uint32_t>> reference;
  Pcg32 rng(11);
  for (int i = 0; i < 600; ++i) {
    uint32_t x = rng.NextBounded(64);
    uint32_t y = rng.NextBounded(64);
    Status s = tree.Insert(x, y);
    bool was_new = reference.emplace(x, y).second;
    EXPECT_EQ(s.ok(), was_new);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int trial = 0; trial < 25; ++trial) {
    uint32_t x0 = rng.NextBounded(64), x1 = rng.NextBounded(65);
    uint32_t y0 = rng.NextBounded(64), y1 = rng.NextBounded(65);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    std::vector<std::pair<uint32_t, uint32_t>> expected;
    for (const auto& cell : reference) {
      if (cell.first >= x0 && cell.first < x1 && cell.second >= y0 &&
          cell.second < y1) {
        expected.push_back(cell);
      }
    }
    std::vector<std::pair<uint32_t, uint32_t>> got =
        tree.RangeQuery(x0, y0, x1, y1);
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(MxQuadtreeTest, VisitPointsSeesEverything) {
  MxQuadtree tree(5);
  std::set<std::pair<uint32_t, uint32_t>> reference;
  Pcg32 rng(13);
  for (int i = 0; i < 200; ++i) {
    uint32_t x = rng.NextBounded(32), y = rng.NextBounded(32);
    if (tree.Insert(x, y).ok()) reference.emplace(x, y);
  }
  std::set<std::pair<uint32_t, uint32_t>> visited;
  tree.VisitPoints([&visited](uint32_t x, uint32_t y) {
    visited.emplace(x, y);
  });
  EXPECT_EQ(visited, reference);
}

TEST(MxQuadtreeTest, ChurnStaysConsistent) {
  MxQuadtree tree(5);
  std::set<std::pair<uint32_t, uint32_t>> reference;
  Pcg32 rng(17);
  for (int op = 0; op < 3000; ++op) {
    uint32_t x = rng.NextBounded(32), y = rng.NextBounded(32);
    if (rng.NextBounded(2) == 0) {
      bool was_new = reference.emplace(x, y).second;
      EXPECT_EQ(tree.Insert(x, y).ok(), was_new);
    } else {
      bool existed = reference.erase({x, y}) > 0;
      EXPECT_EQ(tree.Erase(x, y).ok(), existed);
    }
    if (op % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
}

TEST(MxQuadtreeTest, DenseCornerSharesPath) {
  // Adjacent cells share all ancestors: 4 sibling cells need only the
  // spine plus 4 cell nodes.
  MxQuadtree tree(4);
  tree.Insert(0, 0).ok();
  size_t one = tree.NodeCount();
  tree.Insert(1, 0).ok();
  tree.Insert(0, 1).ok();
  tree.Insert(1, 1).ok();
  EXPECT_EQ(tree.NodeCount(), one + 3);  // shared spine, 3 more cells
}

// ---- InsertBatch -------------------------------------------------------

TEST(MxQuadtreeBatchTest, MatchesSequentialBuild) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Pcg32 rng(seed);
    const size_t bits = 3 + seed % 9;
    const uint32_t side = uint32_t{1} << bits;
    MxQuadtree seq(bits);
    MxQuadtree bat(bits);
    std::vector<std::pair<uint32_t, uint32_t>> cells;
    for (size_t i = 0; i < 2000; ++i) {
      cells.emplace_back(static_cast<uint32_t>(rng.NextDouble() * side),
                         static_cast<uint32_t>(rng.NextDouble() * side));
    }
    size_t inserted = 0;
    size_t duplicates = 0;
    for (const auto& [x, y] : cells) {
      Status s = seq.Insert(x, y);
      if (s.ok()) {
        ++inserted;
      } else {
        ++duplicates;
      }
    }
    BatchInsertStats stats = bat.InsertBatch(cells);
    EXPECT_EQ(stats.inserted, inserted) << "seed " << seed;
    EXPECT_EQ(stats.duplicates, duplicates) << "seed " << seed;
    EXPECT_EQ(stats.out_of_bounds, 0u);
    EXPECT_EQ(bat.size(), seq.size());
    EXPECT_EQ(bat.NodeCount(), seq.NodeCount()) << "seed " << seed;
    EXPECT_TRUE(bat.CheckInvariants().ok());
    // Identical cell sets, Z order.
    std::vector<std::pair<uint32_t, uint32_t>> from_seq;
    std::vector<std::pair<uint32_t, uint32_t>> from_bat;
    seq.VisitPoints([&](uint32_t x, uint32_t y) { from_seq.emplace_back(x, y); });
    bat.VisitPoints([&](uint32_t x, uint32_t y) { from_bat.emplace_back(x, y); });
    EXPECT_EQ(from_seq, from_bat) << "seed " << seed;
  }
}

TEST(MxQuadtreeBatchTest, CountsOutOfBoundsCells) {
  MxQuadtree tree(4);
  const std::vector<std::pair<uint32_t, uint32_t>> cells = {
      {3, 3}, {16, 0}, {0, 200}, {3, 3}};
  BatchInsertStats stats = tree.InsertBatch(cells);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.out_of_bounds, 2u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(MxQuadtreeBatchTest, IncrementalBatchSeesExistingCells) {
  MxQuadtree tree(5);
  ASSERT_TRUE(tree.Insert(7, 9).ok());
  const std::vector<std::pair<uint32_t, uint32_t>> cells = {{7, 9}, {8, 9}};
  BatchInsertStats stats = tree.InsertBatch(cells);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_TRUE(tree.Contains(8, 9));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(MxQuadtreeBatchTest, NoMidBatchArenaGrowth) {
  Pcg32 rng(55);
  MxQuadtree tree(10);
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  for (size_t i = 0; i < 50000; ++i) {
    cells.emplace_back(static_cast<uint32_t>(rng.NextDouble() * 1024),
                       static_cast<uint32_t>(rng.NextDouble() * 1024));
  }
  const size_t growths_before = tree.ArenaGrowthCount();
  (void)tree.InsertBatch(cells);
  EXPECT_EQ(tree.ArenaGrowthCount(), growths_before);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

}  // namespace
}  // namespace popan::spatial
