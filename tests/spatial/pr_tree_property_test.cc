#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/census.h"
#include "spatial/pr_tree.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

/// Property sweep over (capacity, number of points, seed): after any
/// sequence of random inserts the tree satisfies its invariants, answers
/// queries identically to brute force, and censuses conserve items.
class PrTreePropertyTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
 protected:
  size_t capacity() const { return std::get<0>(GetParam()); }
  size_t num_points() const { return std::get<1>(GetParam()); }
  uint64_t seed() const { return std::get<2>(GetParam()); }

  PrQuadtree BuildRandomTree(std::vector<Point2>* points) {
    PrTreeOptions options;
    options.capacity = capacity();
    PrQuadtree tree(Box2::UnitCube(), options);
    Pcg32 rng(seed());
    while (tree.size() < num_points()) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (tree.Insert(p).ok()) points->push_back(p);
    }
    return tree;
  }
};

TEST_P(PrTreePropertyTest, InvariantsHoldAfterRandomInserts) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), num_points());
}

TEST_P(PrTreePropertyTest, ContainsExactlyTheInsertedPoints) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  for (const Point2& p : points) {
    EXPECT_TRUE(tree.Contains(p));
  }
  Pcg32 other(seed() ^ 0xabcdef);
  for (int i = 0; i < 50; ++i) {
    Point2 p(other.NextDouble(), other.NextDouble());
    bool inserted =
        std::find(points.begin(), points.end(), p) != points.end();
    EXPECT_EQ(tree.Contains(p), inserted);
  }
}

TEST_P(PrTreePropertyTest, CensusConservesItemsAndLeaves) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  Census census = TakeCensus(tree);
  EXPECT_EQ(census.ItemCount(), tree.size());
  EXPECT_EQ(census.LeafCount(), tree.LeafCount());
  EXPECT_EQ(census.MaxOccupancy() <= capacity(), true)
      << "no truncation configured, so no leaf may exceed capacity";
}

TEST_P(PrTreePropertyTest, LeafCountIsOneMod2DMinus1) {
  // Every split replaces 1 leaf by 4: leaf count == 1 (mod 3) always.
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  EXPECT_EQ(tree.LeafCount() % 3, 1u);
}

TEST_P(PrTreePropertyTest, RangeQueryMatchesBruteForce) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  Pcg32 rng(seed() + 1);
  for (int trial = 0; trial < 20; ++trial) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    Box2 query(Point2(std::min(x0, x1), std::min(y0, y1)),
               Point2(std::max(x0, x1), std::max(y0, y1)));
    std::vector<Point2> expected;
    for (const Point2& p : points) {
      if (query.Contains(p)) expected.push_back(p);
    }
    std::vector<Point2> got = tree.RangeQuery(query);
    auto key = [](const Point2& p) { return std::make_pair(p.x(), p.y()); };
    auto by_key = [&key](const Point2& a, const Point2& b) {
      return key(a) < key(b);
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected);
  }
}

TEST_P(PrTreePropertyTest, NearestMatchesBruteForce) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  Pcg32 rng(seed() + 2);
  for (int trial = 0; trial < 20; ++trial) {
    Point2 target(rng.NextDouble(), rng.NextDouble());
    StatusOr<Point2> got = tree.Nearest(target);
    ASSERT_TRUE(got.ok());
    double best = 1e100;
    for (const Point2& p : points) {
      best = std::min(best, p.DistanceSquared(target));
    }
    EXPECT_DOUBLE_EQ(got->DistanceSquared(target), best);
  }
}

TEST_P(PrTreePropertyTest, InsertionOrderIndependence) {
  // The PR decomposition is canonical for a point set: any insertion order
  // yields the same leaves.
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  std::vector<Point2> shuffled = points;
  Pcg32 rng(seed() + 3);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(
                                   static_cast<uint32_t>(i))]);
  }
  PrTreeOptions options;
  options.capacity = capacity();
  PrQuadtree other(Box2::UnitCube(), options);
  for (const Point2& p : shuffled) {
    ASSERT_TRUE(other.Insert(p).ok());
  }
  EXPECT_EQ(other.LeafCount(), tree.LeafCount());
  EXPECT_EQ(other.NodeCount(), tree.NodeCount());
  Census a = TakeCensus(tree);
  Census b = TakeCensus(other);
  EXPECT_EQ(a.Proportions(), b.Proportions());
}

TEST_P(PrTreePropertyTest, EraseEverythingCollapsesToRoot) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  Pcg32 rng(seed() + 4);
  // Erase in a random order, checking invariants periodically.
  std::vector<Point2> order = points;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(static_cast<uint32_t>(i))]);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(tree.Erase(order[i]).ok());
    if (i % 16 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
}

TEST_P(PrTreePropertyTest, EraseHalfKeepsRemainderQueryable) {
  std::vector<Point2> points;
  PrQuadtree tree = BuildRandomTree(&points);
  for (size_t i = 0; i < points.size(); i += 2) {
    ASSERT_TRUE(tree.Erase(points[i]).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(tree.Contains(points[i]), i % 2 == 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityPointsSeedSweep, PrTreePropertyTest,
    testing::Combine(testing::Values<size_t>(1, 2, 3, 5, 8),
                     testing::Values<size_t>(10, 100, 400),
                     testing::Values<uint64_t>(1, 42)),
    [](const testing::TestParamInfo<PrTreePropertyTest::ParamType>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace popan::spatial
