#include "spatial/serialization.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

#include "testing/statusor_testing.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;

LinearPrQuadtree RandomLinearTree(size_t n, size_t capacity, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Point2> points;
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(rng.NextDouble(), rng.NextDouble());
  }
  PrTreeOptions options;
  options.capacity = capacity;
  return ValueOrDie(
      LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points, options));
}

TEST(LinearSerializationTest, RoundTripEmpty) {
  LinearPrQuadtree tree =
      ValueOrDie(LinearPrQuadtree::BulkLoad(Box2::UnitCube(), {}));
  StatusOr<LinearPrQuadtree> loaded =
      DeserializeLinearPrQuadtree(SerializeToString(tree));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->LeafCount(), 1u);
  EXPECT_TRUE(loaded->empty());
}

TEST(LinearSerializationTest, RoundTripPreservesEverything) {
  for (uint64_t seed : {1u, 2u}) {
    LinearPrQuadtree tree = RandomLinearTree(300, 3, seed);
    StatusOr<LinearPrQuadtree> loaded =
        DeserializeLinearPrQuadtree(SerializeToString(tree));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->size(), tree.size());
    ASSERT_EQ(loaded->LeafCount(), tree.LeafCount());
    for (size_t i = 0; i < tree.LeafCount(); ++i) {
      EXPECT_EQ(loaded->leaves()[i].code, tree.leaves()[i].code);
      EXPECT_EQ(loaded->leaves()[i].points, tree.leaves()[i].points);
    }
    EXPECT_TRUE(loaded->CheckInvariants().ok());
  }
}

TEST(LinearSerializationTest, RoundTripNonUnitBounds) {
  Pcg32 rng(5);
  std::vector<Point2> points;
  for (int i = 0; i < 100; ++i) {
    points.emplace_back(rng.NextDouble(-10.0, 30.0),
                        rng.NextDouble(5.0, 6.0));
  }
  Box2 bounds(Point2(-10.0, 5.0), Point2(30.0, 6.0));
  LinearPrQuadtree tree =
      ValueOrDie(LinearPrQuadtree::BulkLoad(bounds, points));
  StatusOr<LinearPrQuadtree> loaded =
      DeserializeLinearPrQuadtree(SerializeToString(tree));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->bounds(), bounds);
  for (const Point2& p : points) EXPECT_TRUE(loaded->Contains(p));
}

TEST(LinearSerializationTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeLinearPrQuadtree("not-a-quadtree v9\n").ok());
  EXPECT_FALSE(DeserializeLinearPrQuadtree("").ok());
}

TEST(LinearSerializationTest, RejectsTruncatedFile) {
  LinearPrQuadtree tree = RandomLinearTree(50, 2, 3);
  std::string text = SerializeToString(tree);
  std::string truncated = text.substr(0, text.size() / 2);
  // Cut at a line boundary to test missing-leaf detection too.
  size_t nl = truncated.rfind('\n');
  EXPECT_FALSE(
      DeserializeLinearPrQuadtree(truncated.substr(0, nl + 1)).ok());
}

TEST(LinearSerializationTest, RejectsTamperedCode) {
  LinearPrQuadtree tree = RandomLinearTree(50, 2, 4);
  std::string text = SerializeToString(tree);
  // Flip the first leaf's code bits field.
  size_t pos = text.find("\nleaf ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos + 6, 1, "9");
  EXPECT_FALSE(DeserializeLinearPrQuadtree(text).ok());
}

TEST(LinearSerializationTest, RejectsDegenerateBounds) {
  std::string text =
      "popan-linear-quadtree v1\nbounds 0 0 0 1\noptions 1 31\nleaves 1\n"
      "leaf 0 0 0\n";
  EXPECT_FALSE(DeserializeLinearPrQuadtree(text).ok());
}

TEST(RegionSerializationTest, RoundTrip) {
  Pcg32 rng(7);
  std::vector<uint8_t> pixels(32 * 32);
  for (auto& px : pixels) px = rng.NextDouble() < 0.4 ? 1 : 0;
  RegionQuadtree tree = ValueOrDie(RegionQuadtree::FromRaster(pixels, 32));
  StatusOr<RegionQuadtree> loaded =
      DeserializeRegionQuadtree(SerializeToString(tree));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, tree);
  EXPECT_EQ(loaded->ToRaster(), pixels);
}

TEST(RegionSerializationTest, RoundTripUniformImages) {
  RegionQuadtree full = ValueOrDie(RegionQuadtree::Full(16));
  StatusOr<RegionQuadtree> loaded =
      DeserializeRegionQuadtree(SerializeToString(full));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, full);
  EXPECT_EQ(loaded->Area(), 256u);
}

TEST(RegionSerializationTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeRegionQuadtree("garbage\n").ok());
}

TEST(RegionSerializationTest, RejectsNonTilingLeaves) {
  // Two root-sized leaves cannot tile one image.
  std::string text =
      "popan-region-quadtree v1\nside 8\nleaves 2\nleaf 0 0 1\nleaf 0 0 "
      "0\n";
  EXPECT_FALSE(DeserializeRegionQuadtree(text).ok());
}

TEST(RegionSerializationTest, RejectsOverdeepLeaf) {
  std::string text =
      "popan-region-quadtree v1\nside 4\nleaves 1\nleaf 0 9 1\n";
  EXPECT_FALSE(DeserializeRegionQuadtree(text).ok());
}

TEST(RegionSerializationTest, RejectsBadSide) {
  std::string text = "popan-region-quadtree v1\nside 7\nleaves 0\n";
  EXPECT_FALSE(DeserializeRegionQuadtree(text).ok());
}

}  // namespace
}  // namespace popan::spatial
