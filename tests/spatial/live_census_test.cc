// Property tests for the incremental (live) censuses: after any
// interleaving of inserts and erases, LiveCensus() must be bit-identical
// to the census obtained by walking the structure — across dimensions,
// capacities, truncation, full teardown (post-collapse), and for the
// extendible hash through splits, buddy merges, and directory shrink.

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "gtest/gtest.h"
#include "spatial/census.h"
#include "spatial/extendible_hash.h"
#include "spatial/inline_buffer.h"
#include "spatial/pr_tree.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

template <size_t D>
geo::Point<D> RandomPoint(Pcg32& rng) {
  geo::Point<D> p;
  for (size_t i = 0; i < D; ++i) p[i] = rng.NextDouble();
  return p;
}

/// Runs a random insert/erase interleaving on a PrTree<D> and checks the
/// live census against the walked census throughout and after teardown.
template <size_t D>
void RunTreeStorm(size_t capacity, size_t max_depth, uint64_t seed) {
  PrTreeOptions options;
  options.capacity = capacity;
  options.max_depth = max_depth;
  PrTree<D> tree(geo::Box<D>::UnitCube(), options);
  Pcg32 rng(seed);
  std::vector<geo::Point<D>> live;

  for (size_t op = 0; op < 400; ++op) {
    // 60% inserts, 40% erases of a tracked live point.
    if (live.empty() || rng.NextBounded(10) < 6) {
      geo::Point<D> p = RandomPoint<D>(rng);
      if (tree.Insert(p).ok()) live.push_back(p);
    } else {
      size_t victim = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(tree.Erase(live[victim]).ok());
      live[victim] = live.back();
      live.pop_back();
    }
    if (op % 16 == 0) {
      ASSERT_EQ(tree.LiveCensus(), TakeCensus(tree))
          << "D=" << D << " m=" << capacity << " op=" << op;
    }
  }
  EXPECT_EQ(tree.LiveCensus(), TakeCensus(tree));
  EXPECT_TRUE(tree.CheckInvariants().ok());

  // Tear everything down: collapses all the way back to a lone empty
  // root leaf, which the live histogram must reflect exactly.
  while (!live.empty()) {
    ASSERT_TRUE(tree.Erase(live.back()).ok());
    live.pop_back();
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.LeafCount(), 1u);
  Census empty_census = tree.LiveCensus();
  EXPECT_EQ(empty_census, TakeCensus(tree));
  EXPECT_EQ(empty_census.LeafCount(), 1u);
  EXPECT_EQ(empty_census.CountAt(0, 0), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(LiveCensusTest, MatchesWalkedCensusAcrossDimensionsAndCapacities) {
  uint64_t seed = 1987;
  for (size_t m = 1; m <= 8; ++m) {
    RunTreeStorm<1>(m, 64, DeriveSeed(seed, m));
    RunTreeStorm<2>(m, 64, DeriveSeed(seed, 100 + m));
    RunTreeStorm<3>(m, 64, DeriveSeed(seed, 200 + m));
  }
}

TEST(LiveCensusTest, MatchesUnderTruncation) {
  // max_depth 3 forces leaves at the depth limit to absorb overflow —
  // occupancies above m, the regime where inline buffers spill.
  for (size_t m = 1; m <= 4; ++m) {
    RunTreeStorm<2>(m, 3, DeriveSeed(2024, m));
  }
}

TEST(LiveCensusTest, EmptyTreeCensus) {
  PrQuadtree tree(geo::Box2::UnitCube());
  Census census = tree.LiveCensus();
  EXPECT_EQ(census.LeafCount(), 1u);
  EXPECT_EQ(census.ItemCount(), 0u);
  EXPECT_EQ(census, TakeCensus(tree));
}

TEST(LiveCensusTest, ClearResetsTheHistogram) {
  PrQuadtree tree(geo::Box2::UnitCube());
  Pcg32 rng(7);
  for (size_t i = 0; i < 200; ++i) {
    (void)tree.Insert(RandomPoint<2>(rng));
  }
  tree.Clear();
  EXPECT_EQ(tree.LiveCensus(), TakeCensus(tree));
  EXPECT_EQ(tree.LiveCensus().LeafCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(LiveCensusTest, ExtendibleHashStorm) {
  ExtendibleHashOptions options;
  options.bucket_capacity = 2;  // small buckets force frequent splits
  ExtendibleHash table(options);
  Pcg32 rng(1987);
  std::vector<uint64_t> live;
  for (size_t op = 0; op < 600; ++op) {
    if (live.empty() || rng.NextBounded(10) < 6) {
      uint64_t key = rng.Next64();
      if (table.Insert(key).ok()) live.push_back(key);
    } else {
      size_t victim = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(table.Erase(live[victim]).ok());
      live[victim] = live.back();
      live.pop_back();
    }
    if (op % 16 == 0) {
      ASSERT_EQ(table.LiveCensus(), TakeBucketCensus(table)) << "op " << op;
    }
  }
  EXPECT_EQ(table.LiveCensus(), TakeBucketCensus(table));
  EXPECT_TRUE(table.CheckInvariants().ok());

  // Full teardown: merges cascade and the directory shrinks back to one
  // bucket at local depth 0.
  while (!live.empty()) {
    ASSERT_TRUE(table.Erase(live.back()).ok());
    live.pop_back();
  }
  EXPECT_EQ(table.GlobalDepth(), 0u);
  Census census = table.LiveCensus();
  EXPECT_EQ(census, TakeBucketCensus(table));
  EXPECT_EQ(census.LeafCount(), 1u);
  EXPECT_EQ(census.CountAt(0, 0), 1u);
  EXPECT_TRUE(table.CheckInvariants().ok());
}

TEST(LiveCensusTest, CensusEqualityIgnoresTrailingZeros) {
  Census a;
  a.AddLeaves(2, 1, 3);
  Census b;
  b.AddLeaf(2, 1);
  b.AddLeaf(2, 1);
  b.AddLeaf(2, 1);
  EXPECT_EQ(a, b);
  b.AddLeaf(0, 0);
  EXPECT_NE(a, b);
}

TEST(LiveCensusTest, AddLeavesMatchesRepeatedAddLeaf) {
  Census bulk;
  bulk.AddLeaves(3, 2, 5);
  bulk.AddLeaves(0, 4, 2);
  Census singles;
  for (int i = 0; i < 5; ++i) singles.AddLeaf(3, 2);
  for (int i = 0; i < 2; ++i) singles.AddLeaf(0, 4);
  EXPECT_EQ(bulk, singles);
  EXPECT_EQ(bulk.LeafCount(), 7u);
  EXPECT_EQ(bulk.ItemCount(), 15u);
  EXPECT_EQ(bulk.CountAt(3, 2), 5u);
  EXPECT_EQ(bulk.CountAt(0, 4), 2u);
}

TEST(LiveCensusTest, InlineBufferSpillAndUnspill) {
  InlineBuffer<int, 4> buf;
  EXPECT_EQ(buf.inline_capacity(), 4u);
  for (int i = 0; i < 4; ++i) buf.push_back(i);
  EXPECT_FALSE(buf.spilled());
  buf.push_back(4);  // crosses the threshold
  EXPECT_TRUE(buf.spilled());
  EXPECT_EQ(buf.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(buf[static_cast<size_t>(i)], i);
  buf.SwapRemoveAt(0);  // back to 4 elements: un-spills
  EXPECT_FALSE(buf.spilled());
  EXPECT_EQ(buf.size(), 4u);
  // Contents are {4, 1, 2, 3} after the swap-remove.
  EXPECT_EQ(buf[0], 4);
  EXPECT_EQ(buf[1], 1);
  EXPECT_EQ(buf[3], 3);
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST(LiveCensusTest, InlineBufferDeepSpill) {
  InlineBuffer<int, 2> buf;
  for (int i = 0; i < 100; ++i) buf.push_back(i);
  EXPECT_TRUE(buf.spilled());
  EXPECT_EQ(buf.size(), 100u);
  int sum = 0;
  for (int v : buf) sum += v;
  EXPECT_EQ(sum, 4950);
  while (buf.size() > 0) buf.SwapRemoveAt(buf.size() - 1);
  EXPECT_FALSE(buf.spilled());
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace popan::spatial
