// Tests for tools/popan_lint: every rule in the catalog has a positive
// fixture (exact rule IDs and line numbers asserted) and a suppressed
// twin that must lint clean. Fixtures live in tests/tools/fixtures/ --
// a directory CollectFiles skips, so the deliberately-violating corpus
// never fails the tree scan. Path-gated rules are exercised by linting
// fixture text under synthetic logical paths via LintText.

#include "lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace popan::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(POPAN_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// (rule, line) pairs, in report order, for compact whole-file asserts.
std::vector<std::pair<std::string, int>> RulesAndLines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

using Expected = std::vector<std::pair<std::string, int>>;

// --- determinism-random ------------------------------------------------

TEST(PopanLintTest, DeterminismRandomFlagsRandAndRandomDevice) {
  std::vector<Finding> findings =
      LintText("src/core/demo.cc", ReadFixture("determinism_random.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"determinism-random", 9}, {"determinism-random", 14}}));
}

TEST(PopanLintTest, DeterminismRandomAllowedInRandomHeader) {
  // The same content is legal inside the one blessed implementation file.
  EXPECT_TRUE(
      LintText("src/util/random.h", ReadFixture("determinism_random.cc"))
          .empty());
  EXPECT_TRUE(
      LintText("src/util/random.cc", ReadFixture("determinism_random.cc"))
          .empty());
}

TEST(PopanLintTest, DeterminismRandomSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/core/demo.cc",
                       ReadFixture("determinism_random_suppressed.cc"))
                  .empty());
}

// --- determinism-time --------------------------------------------------

TEST(PopanLintTest, DeterminismTimeFlagsAllClocksOutsideBench) {
  std::vector<Finding> findings =
      LintText("src/sim/demo.cc", ReadFixture("determinism_time.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"determinism-time", 9},
                      {"determinism-time", 13},
                      {"determinism-time", 18}}));
}

TEST(PopanLintTest, DeterminismTimeAllowsSteadyClockInBench) {
  // Under bench/ the steady_clock read (line 18) is a timing section;
  // time() and system_clock stay banned.
  std::vector<Finding> findings =
      LintText("bench/demo.cc", ReadFixture("determinism_time.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"determinism-time", 9}, {"determinism-time", 13}}));
}

TEST(PopanLintTest, DeterminismTimeSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/sim/demo.cc",
                       ReadFixture("determinism_time_suppressed.cc"))
                  .empty());
}

// --- unordered-iteration -----------------------------------------------

TEST(PopanLintTest, UnorderedIterationFlagsRangeForAndBegin) {
  for (const char* path :
       {"src/sim/demo.cc", "src/spatial/demo.cc", "src/query/demo.cc"}) {
    std::vector<Finding> findings =
        LintText(path, ReadFixture("unordered_iteration.cc"));
    EXPECT_EQ(RulesAndLines(findings),
              (Expected{{"unordered-iteration", 9},
                        {"unordered-iteration", 16}}))
        << path;
  }
}

TEST(PopanLintTest, UnorderedIterationScopedToSimSpatialAndQuery) {
  // Hash-order iteration elsewhere (analysis helpers, tests) is fine.
  EXPECT_TRUE(
      LintText("src/core/demo.cc", ReadFixture("unordered_iteration.cc"))
          .empty());
}

TEST(PopanLintTest, UnorderedIterationSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/sim/demo.cc",
                       ReadFixture("unordered_iteration_suppressed.cc"))
                  .empty());
}

TEST(PopanLintTest, QueryUnorderedIterationFixtureFlags) {
  std::vector<Finding> findings = LintText(
      "src/query/demo.cc", ReadFixture("query_unordered_iteration.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"unordered-iteration", 11},
                      {"unordered-iteration", 18}}));
}

TEST(PopanLintTest, QueryUnorderedIterationSuppressionsSilence) {
  EXPECT_TRUE(
      LintText("src/query/demo.cc",
               ReadFixture("query_unordered_iteration_suppressed.cc"))
          .empty());
}

// --- nodiscard-status --------------------------------------------------

TEST(PopanLintTest, NodiscardStatusFlagsBareDeclarationsOnly) {
  std::vector<Finding> findings =
      LintText("src/spatial/demo.h", ReadFixture("nodiscard_status.cc"));
  // The annotated declarations (inline and line-above) must not appear.
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"nodiscard-status", 8}, {"nodiscard-status", 10}}));
}

TEST(PopanLintTest, QueryNodiscardStatusFixtureFlags) {
  std::vector<Finding> findings =
      LintText("src/query/demo.h", ReadFixture("query_nodiscard_status.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"nodiscard-status", 8}, {"nodiscard-status", 10}}));
}

TEST(PopanLintTest, QueryNodiscardStatusSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/query/demo.h",
                       ReadFixture("query_nodiscard_status_suppressed.cc"))
                  .empty());
}

TEST(PopanLintTest, NodiscardStatusSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/spatial/demo.h",
                       ReadFixture("nodiscard_status_suppressed.cc"))
                  .empty());
}

// --- status-unchecked-value --------------------------------------------

TEST(PopanLintTest, UncheckedValueFlagsUncheckedChainedAndIgnoreError) {
  std::vector<Finding> findings =
      LintText("src/spatial/demo.cc", ReadFixture("status_unchecked_value.cc"));
  // UseChecked's guarded .value() (line 23) must not appear.
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"status-unchecked-value", 13},
                      {"status-unchecked-value", 17},
                      {"status-unchecked-value", 27}}));
}

TEST(PopanLintTest, UncheckedValueSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/spatial/demo.cc",
                       ReadFixture("status_unchecked_value_suppressed.cc"))
                  .empty());
}

// --- stream-format-guard -----------------------------------------------

TEST(PopanLintTest, StreamFormatGuardFlagsBareManipulators) {
  std::vector<Finding> findings =
      LintText("src/sim/demo.cc", ReadFixture("stream_format_guard.cc"));
  // WriteGuarded's manipulators (line 17) are under a live guard.
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"stream-format-guard", 11},
                      {"stream-format-guard", 12}}));
}

TEST(PopanLintTest, StreamFormatGuardSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/sim/demo.cc",
                       ReadFixture("stream_format_guard_suppressed.cc"))
                  .empty());
}

// --- raw-mutex-lock ----------------------------------------------------

TEST(PopanLintTest, RawMutexLockFlagsDirectLockCallsOnly) {
  std::vector<Finding> findings =
      LintText("src/sim/demo.cc", ReadFixture("raw_mutex_lock.cc"));
  // The lock_guard/scoped_lock declarations and the deferred unique_lock's
  // own .lock()/.unlock() (lines 27-28) must not appear; try_lock never
  // matches the rule's word boundaries.
  EXPECT_EQ(RulesAndLines(findings), (Expected{{"raw-mutex-lock", 11},
                                               {"raw-mutex-lock", 12},
                                               {"raw-mutex-lock", 16},
                                               {"raw-mutex-lock", 17},
                                               {"raw-mutex-lock", 32}}));
}

TEST(PopanLintTest, RawMutexLockAppliesOnAnyPath) {
  // Unlike the path-gated rules, mutex discipline holds tree-wide.
  std::vector<Finding> findings =
      LintText("tests/demo.cc", ReadFixture("raw_mutex_lock.cc"));
  EXPECT_EQ(findings.size(), 5u);
}

TEST(PopanLintTest, RawMutexLockSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/sim/demo.cc",
                       ReadFixture("raw_mutex_lock_suppressed.cc"))
                  .empty());
}

// --- raw-simd-intrinsic ------------------------------------------------

TEST(PopanLintTest, RawSimdIntrinsicFlagsX86AndNeonSpellings) {
  std::vector<Finding> findings =
      LintText("src/spatial/demo.cc", ReadFixture("raw_simd_intrinsic.cc"));
  // One finding per offending line; the lookalike identifiers (prefix not
  // at an identifier start, bare prefix with no suffix) stay clean.
  EXPECT_EQ(RulesAndLines(findings), (Expected{{"raw-simd-intrinsic", 8},
                                               {"raw-simd-intrinsic", 9},
                                               {"raw-simd-intrinsic", 13},
                                               {"raw-simd-intrinsic", 14},
                                               {"raw-simd-intrinsic", 15},
                                               {"raw-simd-intrinsic", 19},
                                               {"raw-simd-intrinsic", 20}}));
}

TEST(PopanLintTest, RawSimdIntrinsicAllowedOnlyInSimdHeader) {
  // The dispatch wrapper is the one blessed home; everywhere else —
  // including tests and bench code — the rule applies.
  EXPECT_TRUE(
      LintText("src/util/simd.h", ReadFixture("raw_simd_intrinsic.cc"))
          .empty());
  EXPECT_EQ(
      LintText("bench/demo.cc", ReadFixture("raw_simd_intrinsic.cc")).size(),
      7u);
}

TEST(PopanLintTest, RawSimdIntrinsicSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/spatial/demo.cc",
                       ReadFixture("raw_simd_intrinsic_suppressed.cc"))
                  .empty());
}

// --- unannotated-guarded-member ----------------------------------------

TEST(PopanLintTest, UnannotatedGuardedMemberFlagsMembersOfMutexClasses) {
  std::vector<Finding> findings = LintText(
      "src/sim/demo.cc", ReadFixture("unannotated_guarded_member.cc"));
  // Sync primitives, atomics, thread handles, statics, and annotated
  // members stay clean; the mutex-free struct is skipped entirely.
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"unannotated-guarded-member", 12},
                      {"unannotated-guarded-member", 13},
                      {"unannotated-guarded-member", 30}}));
}

TEST(PopanLintTest, UnannotatedGuardedMemberScopedToConcurrentSubtrees) {
  // Only src/sim, src/server, and src/spatial carry the annotation
  // discipline; analysis helpers and tests are exempt.
  for (const char* path :
       {"src/sim/demo.cc", "src/server/demo.cc", "src/spatial/demo.cc"}) {
    EXPECT_EQ(
        LintText(path, ReadFixture("unannotated_guarded_member.cc")).size(),
        3u)
        << path;
  }
  for (const char* path : {"src/core/demo.cc", "tests/demo.cc", "bench/demo.cc"}) {
    EXPECT_TRUE(
        LintText(path, ReadFixture("unannotated_guarded_member.cc")).empty())
        << path;
  }
}

TEST(PopanLintTest, UnannotatedGuardedMemberSuppressionsSilence) {
  EXPECT_TRUE(
      LintText("src/sim/demo.cc",
               ReadFixture("unannotated_guarded_member_suppressed.cc"))
          .empty());
}

// --- atomic-implicit-ordering ------------------------------------------

TEST(PopanLintTest, AtomicImplicitOrderingFlagsBareAccessors) {
  std::vector<Finding> findings = LintText(
      "src/spatial/demo.cc", ReadFixture("atomic_implicit_ordering.cc"));
  // The explicitly-ordered calls — including the one whose memory_order
  // sits on a continuation line — and std::exchange stay clean.
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"atomic-implicit-ordering", 10},
                      {"atomic-implicit-ordering", 11},
                      {"atomic-implicit-ordering", 12},
                      {"atomic-implicit-ordering", 14}}));
}

TEST(PopanLintTest, AtomicImplicitOrderingAppliesOnAnyPath) {
  // Ordering discipline holds tree-wide, tests and bench included.
  EXPECT_EQ(
      LintText("tests/demo.cc", ReadFixture("atomic_implicit_ordering.cc"))
          .size(),
      4u);
}

TEST(PopanLintTest, AtomicImplicitOrderingSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/spatial/demo.cc",
                       ReadFixture("atomic_implicit_ordering_suppressed.cc"))
                  .empty());
}

// --- raw-thread-spawn --------------------------------------------------

TEST(PopanLintTest, RawThreadSpawnFlagsConstructionContainerAndDetach) {
  std::vector<Finding> findings =
      LintText("src/spatial/demo.cc", ReadFixture("raw_thread_spawn.cc"));
  // hardware_concurrency() (static member) and the reference parameter
  // stay clean.
  EXPECT_EQ(RulesAndLines(findings), (Expected{{"raw-thread-spawn", 7},
                                               {"raw-thread-spawn", 8},
                                               {"raw-thread-spawn", 9}}));
}

TEST(PopanLintTest, RawThreadSpawnAllowedInPoolAndHarnessFiles) {
  // The pool, the storm harness, and the traffic-sim read pool are the
  // sanctioned homes for raw threads.
  for (const char* path :
       {"src/sim/thread_pool.cc", "src/sim/thread_pool.h",
        "src/sim/rw_storm.cc", "src/server/traffic_sim.cc"}) {
    EXPECT_TRUE(LintText(path, ReadFixture("raw_thread_spawn.cc")).empty())
        << path;
  }
}

TEST(PopanLintTest, RawThreadSpawnSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/spatial/demo.cc",
                       ReadFixture("raw_thread_spawn_suppressed.cc"))
                  .empty());
}

// --- shard-key-arithmetic ----------------------------------------------

TEST(PopanLintTest, ShardKeyArithmeticFlagsShiftsAndMasks) {
  std::vector<Finding> findings = LintText(
      "src/shard/router.cc", ReadFixture("shard_key_arithmetic.cc"));
  // The lookalikes stay clean: "monkey"/"keyboard" substrings, chained
  // stream insertion, and hash mixing on non-key identifiers.
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"shard-key-arithmetic", 7},
                      {"shard-key-arithmetic", 8},
                      {"shard-key-arithmetic", 9},
                      {"shard-key-arithmetic", 10},
                      {"shard-key-arithmetic", 11},
                      {"shard-key-arithmetic", 12}}));
}

TEST(PopanLintTest, ShardKeyArithmeticAllowedInCodecAndKeyRangeFiles) {
  // The Morton codec, the hash-directory codecs, and the key-range
  // algebra are the sanctioned homes for key bit surgery.
  for (const char* path :
       {"src/spatial/morton.cc", "src/spatial/morton.h",
        "src/spatial/hash_codec.cc", "src/spatial/excell.cc",
        "src/shard/key_range.h", "src/shard/key_range.cc"}) {
    EXPECT_TRUE(
        LintText(path, ReadFixture("shard_key_arithmetic.cc")).empty())
        << path;
  }
}

TEST(PopanLintTest, ShardKeyArithmeticSuppressionsSilence) {
  EXPECT_TRUE(LintText("src/shard/router.cc",
                       ReadFixture("shard_key_arithmetic_suppressed.cc"))
                  .empty());
}

// --- suppression edge cases --------------------------------------------

TEST(PopanLintTest, SuppressionAllowListCoversMultipleRules) {
  // Line 11 violates raw-mutex-lock AND atomic-implicit-ordering; one
  // allow(a, b) comment silences both.
  std::vector<Finding> findings = LintText(
      "src/core/demo.cc", ReadFixture("suppression_edge_cases.cc"));
  for (const auto& [rule, line] : RulesAndLines(findings)) {
    EXPECT_NE(line, 11) << rule;
  }
}

TEST(PopanLintTest, SuppressionUnknownRuleNameIsInert) {
  // allow(no-such-rule, raw-mutex-lock) still silences the known rule
  // (line 16), while allow(no-such-rule) alone silences nothing (line 17).
  std::vector<Finding> findings = LintText(
      "src/core/demo.cc", ReadFixture("suppression_edge_cases.cc"));
  std::vector<std::pair<std::string, int>> got = RulesAndLines(findings);
  EXPECT_NE(std::find(got.begin(), got.end(),
                      std::make_pair(std::string("atomic-implicit-ordering"),
                                     17)),
            got.end());
  for (const auto& [rule, line] : got) EXPECT_NE(line, 16) << rule;
}

TEST(PopanLintTest, SuppressionOnLineAboveCoversOnlyNextLine) {
  // The standalone allow on line 21 covers the lock on line 22 but not
  // the unlock on line 23.
  std::vector<Finding> findings = LintText(
      "src/core/demo.cc", ReadFixture("suppression_edge_cases.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (Expected{{"atomic-implicit-ordering", 17},
                      {"raw-mutex-lock", 23}}));
}

// --- output format and exit codes --------------------------------------

TEST(PopanLintTest, FindingToStringIsPathLineRuleMessage) {
  Finding f{"determinism-random", "src/core/demo.cc", 42, "boom"};
  EXPECT_EQ(f.ToString(), "src/core/demo.cc:42: [determinism-random] boom");
}

TEST(PopanLintTest, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(
      LintText("src/sim/demo.cc", ReadFixture("clean.cc")).empty());
}

TEST(PopanLintTest, RunLintExitsZeroOnCleanFile) {
  std::ostringstream out;
  EXPECT_EQ(RunLint({FixturePath("clean.cc")}, out), 0);
  EXPECT_NE(out.str().find("popan-lint: clean (1 files)"), std::string::npos)
      << out.str();
}

TEST(PopanLintTest, RunLintExitsOneOnFindingsAndPrintsThem) {
  std::ostringstream out;
  EXPECT_EQ(RunLint({FixturePath("stream_format_guard.cc")}, out), 1);
  // Findings render as path:line: [rule] message, one per line.
  EXPECT_NE(out.str().find(FixturePath("stream_format_guard.cc") +
                           ":11: [stream-format-guard]"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("popan-lint: 2 finding(s) in 1 file(s)"),
            std::string::npos)
      << out.str();
}

TEST(PopanLintTest, RunLintExitsTwoOnMissingFile) {
  std::ostringstream out;
  EXPECT_EQ(RunLint({FixturePath("no_such_fixture.cc")}, out), 2);
  EXPECT_NE(out.str().find("[io-error]"), std::string::npos) << out.str();
}

TEST(PopanLintTest, RunLintExitsTwoWhenRootHasNoLintableFiles) {
  // The fixture directory itself contains no src/bench/tests/tools
  // subtrees, so a walk rooted there finds nothing.
  std::ostringstream out;
  EXPECT_EQ(RunLint({"--root", std::string(POPAN_LINT_FIXTURE_DIR)}, out), 2);
}

TEST(PopanLintTest, RunLintHelpExitsZero) {
  std::ostringstream out;
  EXPECT_EQ(RunLint({"--help"}, out), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(PopanLintTest, CollectFilesSkipsFixtureDirectories) {
  // Walking the real repo root must not pick up this test's corpus of
  // intentional violations.
  std::vector<std::string> files = CollectFiles(POPAN_LINT_REPO_ROOT);
  ASSERT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_EQ(f.find("fixtures"), std::string::npos) << f;
  }
}

TEST(PopanLintTest, WholeTreeIsCleanAtHead) {
  // The acceptance bar for the whole PR: the tree lints clean. Running it
  // in-process here keeps CI honest even if the workflow forgets the
  // dedicated lint job.
  std::ostringstream out;
  EXPECT_EQ(RunLint({"--root", std::string(POPAN_LINT_REPO_ROOT)}, out), 0)
      << out.str();
}

}  // namespace
}  // namespace popan::lint
