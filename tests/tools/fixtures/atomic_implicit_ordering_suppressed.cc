// Suppressed twin of atomic_implicit_ordering.cc: trailing and
// line-above allow forms both silence the rule.
#include <atomic>

std::atomic<int> counter{0};

int Silenced() {
  int v = counter.load();  // popan-lint: allow(atomic-implicit-ordering)
  // Ordering irrelevant: single-threaded setup phase.
  // popan-lint: allow(atomic-implicit-ordering)
  counter.store(1);
  counter.fetch_add(2);  // popan-lint: allow(atomic-implicit-ordering)
  return v;
}
