// Fixture: a class that declares a mutex must GUARDED_BY-annotate its
// sibling data members (unannotated-guarded-member). Linted under a
// src/sim/ logical path by popan_lint_test.
#include <mutex>

class BadPool {
 public:
  void Work();

 private:
  std::mutex mu_;
  int count_ = 0;                    // line 12: unannotated member
  std::vector<int> items_;           // line 13: unannotated member
  std::condition_variable work_cv_;  // clean: sync primitive
  std::atomic<int> hits_{0};         // clean: atomic (ordering rule owns it)
  // Thread handles are exempt here; popan-lint: allow(raw-thread-spawn)
  std::vector<std::thread> workers_;
  static int shared_;                // clean: static
  int tagged_ GUARDED_BY(mu_);       // clean: annotated
};

struct NoMutex {
  int free_member_ = 0;  // clean: no mutex in this class
};

class AnnotatedPool {
 private:
  popan::Mutex mu_;            // the wrapper counts as a mutex too
  int value_ GUARDED_BY(mu_);  // clean: annotated
  bool flag_ = false;          // line 30: unannotated member
};
