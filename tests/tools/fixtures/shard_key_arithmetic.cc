// Fixture: raw bit surgery on Morton-key identifiers outside the
// codec / key-range layer (shard-key-arithmetic).
#include <cstdint>
#include <ostream>

uint64_t Demo(uint64_t shard_key, uint64_t key, std::ostream& out) {
  uint64_t child = shard_key << 2;  // line 7: shift on a key
  uint64_t parent = key >> 2;       // line 8: shift on a key
  uint64_t quadrant = key & 0x3;    // line 9: mask against a literal
  uint64_t low = 0x7u & key;        // line 10: literal on the left
  key <<= 2;                        // line 11: compound shift
  key |= 0x1;                       // line 12: compound mask
  // Clean: "monkey"/"keyboard" only contain "key" as a substring.
  uint64_t monkey = 2;
  uint64_t keyboard = monkey << 1;
  // Clean: chained stream insertion is piping, not arithmetic.
  out << key << " " << keyboard << "\n";
  // Clean: generic hash mixing — no key-ish identifier is shifted.
  uint64_t hash = 0;
  hash = (hash << 5) ^ key;
  return child + parent + quadrant + low + monkey + hash;
}
