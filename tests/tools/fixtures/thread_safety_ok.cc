// Positive twin of thread_safety_violation.cc: the same shape with the
// lock held, plus a ThreadRole capability exercised through AssumeRole
// and a REQUIRES method. Must compile clean under clang -Wthread-safety
// -Werror (the thread_safety_discipline_compiles ctest), proving the
// annotation macros expand correctly when the analysis is live.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Counter {
 public:
  void Increment() {
    popan::MutexLock lock(mu_);
    ++value_;
  }

  int Read() {
    popan::MutexLock lock(mu_);
    return value_;
  }

 private:
  popan::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

class Affine {
 public:
  void Touch() {
    popan::AssumeRole owner(role_);
    TouchLocked();
  }

 private:
  void TouchLocked() REQUIRES(role_) { ++state_; }

  popan::ThreadRole role_;
  int state_ GUARDED_BY(role_) = 0;
};

int main() {
  Counter c;
  c.Increment();
  Affine a;
  a.Touch();
  return c.Read();
}
