// Fixture: status_unchecked_value.cc positives silenced by suppressions.
#include "util/status.h"
#include "util/statusor.h"

namespace demo {

[[nodiscard]] popan::StatusOr<int> Compute();
[[nodiscard]] popan::Status Persist();

int UseUnchecked() {
  popan::StatusOr<int> result = Compute();
  // popan-lint: allow(status-unchecked-value)
  return result.value();
}

int UseChained() {
  return Compute().value();  // popan-lint: allow(status-unchecked-value)
}

void DropError() {
  // popan-lint: allow(status-unchecked-value)
  Persist().IgnoreError();
}

}  // namespace demo
