// Fixture: query_unordered_iteration.cc with both iterations suppressed.
#include <cstdint>
#include <unordered_map>

namespace demo {

uint64_t FoldCosts(const std::unordered_map<uint32_t, uint64_t>& costs) {
  uint64_t total = 0;
  // Order-insensitive reduction: addition commutes.
  // popan-lint: allow(unordered-iteration)
  for (const auto& kv : costs) {
    total += kv.second;
  }
  return total;
}

uint32_t AnyQueryId(const std::unordered_map<uint32_t, uint64_t>& costs) {
  return costs.begin()->first;  // popan-lint: allow(unordered-iteration)
}

}  // namespace demo
