// Fixture: std::thread construction / .detach() outside the pool and
// harness allowlist (raw-thread-spawn).
#include <thread>
#include <vector>

void Spawn() {
  std::thread worker([] {});      // line 7: construction
  std::vector<std::thread> pool;  // line 8: container of raw threads
  worker.detach();                // line 9: detach severs the join
}

unsigned Cores() {
  // Clean: a static member access, not a spawn.
  return std::thread::hardware_concurrency();
}

void Join(std::thread& t) {  // clean: reference parameter
  t.join();
}
