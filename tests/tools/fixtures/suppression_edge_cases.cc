// Fixture: suppression edge cases — several rules in one allow list, an
// unknown rule name in the list, and the line-above form's reach.
#include <atomic>
#include <mutex>

std::mutex g_mu;
std::atomic<int> g_count{0};

void MultiRuleAllow() {
  // Two different findings on one line, silenced by one comment:
  g_mu.lock(); (void)g_count.load();  // popan-lint: allow(raw-mutex-lock, atomic-implicit-ordering)
}

void UnknownRuleName() {
  // An unknown name in the list is inert; the known one still silences:
  g_mu.unlock();  // popan-lint: allow(no-such-rule, raw-mutex-lock)
  g_count.store(1);  // line 17: allow(no-such-rule) silences nothing real
}

void LineAboveForm() {
  // popan-lint: allow(raw-mutex-lock)
  g_mu.lock();
  g_mu.unlock();  // line 23: the line-above allow covers only line 22
}
