// Fixture: determinism-random positives. Never compiled; linted under a
// synthetic logical path by popan_lint_test.cc.
#include <cstdlib>
#include <random>

namespace demo {

int Roll() {
  std::random_device rd;  // line 9: hardware entropy
  return static_cast<int>(rd() % 6);
}

int LegacyRoll() {
  return rand() % 6;  // line 14: C library RNG
}

}  // namespace demo
