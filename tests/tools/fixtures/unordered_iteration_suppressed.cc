// Fixture: unordered_iteration.cc with both iterations suppressed.
#include <unordered_map>

namespace demo {

int SumValues(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // Order-insensitive reduction: a sum commutes.
  // popan-lint: allow(unordered-iteration)
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}

int FirstKey(const std::unordered_map<int, int>& counts) {
  return counts.begin()->first;  // popan-lint: allow(unordered-iteration)
}

}  // namespace demo
