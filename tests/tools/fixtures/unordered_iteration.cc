// Fixture: unordered-iteration positives. Only fires when linted under a
// src/sim/ or src/spatial/ logical path.
#include <unordered_map>

namespace demo {

int SumValues(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& kv : counts) {  // line 9: range-for in hash order
    total += kv.second;
  }
  return total;
}

int FirstKey(const std::unordered_map<int, int>& counts) {
  return counts.begin()->first;  // line 16: explicit iterator
}

}  // namespace demo
