// Fixture: nodiscard-status positives shaped like query-layer APIs, plus
// annotated negatives.
#include "util/status.h"
#include "util/statusor.h"

namespace demo {

popan::Status ValidateSpec();  // line 8: missing [[nodiscard]]

popan::StatusOr<int> ExecuteBatch();  // line 10: missing [[nodiscard]]

[[nodiscard]] popan::Status CancelBatch();  // annotated inline: clean

[[nodiscard]]
popan::StatusOr<int> CountResults();  // annotated on line above: clean

}  // namespace demo
