// Fixture: raw-simd-intrinsic positives (x86 and NEON spellings used
// directly in tree code) next to identifiers that merely resemble
// intrinsic names, which must stay clean.

namespace demo {

void RawSse(const double* v, double* out) {
  __m128d a = _mm_loadu_pd(v);  // line 8: SSE load outside simd.h
  _mm_storeu_pd(out, a);        // line 9: SSE store
}

void RawAvx(const double* v) {
  __m256d b = _mm256_loadu_pd(v);     // line 13: AVX load
  (void)_mm256_movemask_pd(b);        // line 14: AVX movemask
  (void)_mm512_set1_pd(0.0);          // line 15: AVX-512
}

void RawNeon(const double* v) {
  float64x2_t c = vld1q_f64(v);  // line 19: NEON load
  (void)vceqq_f64(c, c);         // line 20: NEON compare
}

void LookalikesAreClean() {
  int popan_mm_bridge = 0;  // prefix not at identifier start
  (void)popan_mm_bridge;
  int _mm_ = 1;  // bare prefix with no suffix is not an intrinsic
  (void)_mm_;
}

}  // namespace demo
