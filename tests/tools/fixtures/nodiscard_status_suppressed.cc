// Fixture: nodiscard_status.cc positives silenced by suppressions.
#include "util/status.h"
#include "util/statusor.h"

namespace demo {

popan::Status Flush();  // popan-lint: allow(nodiscard-status)

// popan-lint: allow(nodiscard-status)
popan::StatusOr<int> CountRows();

}  // namespace demo
