// Deliberate capability violation: increments a GUARDED_BY member
// without holding its mutex. The thread_safety_violation_fails_build
// ctest compiles this with clang -fsyntax-only -Wthread-safety -Werror
// and asserts the compile FAILS (WILL_FAIL). If this file ever compiles
// clean under that configuration, the analysis has stopped working.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG (intentional): touches value_ without holding mu_
  }

  int Read() {
    popan::MutexLock lock(mu_);
    return value_;
  }

 private:
  popan::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Increment();
  return c.Read();
}
