// Fixture: determinism_time.cc with every violation suppressed.
#include <chrono>
#include <ctime>

namespace demo {

long Stamp() {
  return time(nullptr);  // popan-lint: allow(determinism-time)
}

double WallNow() {
  // popan-lint: allow(determinism-time)
  auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double MonotonicNow() {
  // popan-lint: allow(determinism-time)
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace demo
