// Fixture: query_nodiscard_status.cc positives silenced by suppressions.
#include "util/status.h"
#include "util/statusor.h"

namespace demo {

popan::Status ValidateSpec();  // popan-lint: allow(nodiscard-status)

// popan-lint: allow(nodiscard-status)
popan::StatusOr<int> ExecuteBatch();

}  // namespace demo
