// Suppressed twin of raw_thread_spawn.cc: each spawn carries a reasoned
// popan-lint allow.
#include <thread>
#include <vector>

void Spawn() {
  // Blocks in poll(); must not occupy a pool worker.
  // popan-lint: allow(raw-thread-spawn)
  std::thread worker([] {});
  std::vector<std::thread> pool;  // popan-lint: allow(raw-thread-spawn)
  worker.detach();                // popan-lint: allow(raw-thread-spawn)
}
