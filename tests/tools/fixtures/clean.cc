// Fixture: idiomatic code that every rule must accept untouched — the
// zero-findings baseline for exit-code tests.
#include <iomanip>
#include <sstream>
#include <string>

#include "util/statusor.h"
#include "util/text_io.h"

namespace demo {

[[nodiscard]] popan::StatusOr<double> Parse(const std::string& text);

double ParseOrZero(const std::string& text) {
  popan::StatusOr<double> parsed = Parse(text);
  if (!parsed.ok()) return 0.0;
  return parsed.value();
}

void Render(std::ostringstream* os, double v) {
  popan::StreamFormatGuard guard(os);
  *os << std::setprecision(17) << v;
}

}  // namespace demo
