// Suppressed twin of unannotated_guarded_member.cc: every finding
// carries a popan-lint allow, so the file lints clean.
#include <mutex>

class BadPool {
 private:
  std::mutex mu_;
  // Immutable after construction; no lock needed.
  // popan-lint: allow(unannotated-guarded-member)
  int count_ = 0;
  std::vector<int> items_;  // popan-lint: allow(unannotated-guarded-member)
};

class AnnotatedPool {
 private:
  popan::Mutex mu_;
  bool flag_ = false;  // popan-lint: allow(unannotated-guarded-member)
};
