// Fixture: stream-format-guard positives (manipulators with no live
// guard) next to a properly guarded negative.
#include <iomanip>
#include <sstream>

#include "util/text_io.h"

namespace demo {

void WriteBare(std::ostringstream& os, double v) {
  os << std::setprecision(17) << v;  // line 11: sticky precision
  os << std::hex << 255;             // line 12: sticky base
}

void WriteGuarded(std::ostringstream& os, double v) {
  popan::StreamFormatGuard guard(&os);
  os << std::setprecision(17) << std::fixed << v;  // clean: guard live
}

}  // namespace demo
