// Suppressed twin of shard_key_arithmetic.cc: each bit-surgery line
// carries a reasoned popan-lint allow.
#include <cstdint>

uint64_t Demo(uint64_t shard_key, uint64_t key) {
  // One-off diagnostic decode; production code goes through KeyRange.
  // popan-lint: allow(shard-key-arithmetic)
  uint64_t child = shard_key << 2;
  uint64_t quadrant = key & 0x3;  // popan-lint: allow(shard-key-arithmetic)
  key <<= 2;                      // popan-lint: allow(shard-key-arithmetic)
  return child + quadrant + key;
}
