// Fixture: determinism-time positives. steady_clock is conditionally
// allowed (bench/ paths); time() and system_clock never are.
#include <chrono>
#include <ctime>

namespace demo {

long Stamp() {
  return time(nullptr);  // line 9: wall-clock everywhere
}

double WallNow() {
  auto t = std::chrono::system_clock::now();  // line 13: banned everywhere
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double MonotonicNow() {
  auto t = std::chrono::steady_clock::now();  // line 18: bench-only
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace demo
