// Fixture: nodiscard-status positive plus annotated negatives (same line
// and line-above attribute placements).
#include "util/status.h"
#include "util/statusor.h"

namespace demo {

popan::Status Flush();  // line 8: missing [[nodiscard]]

popan::StatusOr<int> CountRows();  // line 10: missing [[nodiscard]]

[[nodiscard]] popan::Status Sync();  // annotated inline: clean

[[nodiscard]]
popan::StatusOr<int> CountColumns();  // annotated on line above: clean

}  // namespace demo
