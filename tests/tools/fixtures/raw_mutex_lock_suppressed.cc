// Fixture: raw_mutex_lock.cc with every violation suppressed — both the
// trailing-comment and line-above suppression forms must silence the rule.
#include <mutex>

namespace demo {

std::mutex g_mu;

void RawLock() {
  g_mu.lock();    // popan-lint: allow(raw-mutex-lock)
  g_mu.unlock();  // popan-lint: allow(raw-mutex-lock)
}

void RawThroughPointer(std::mutex* mu) {
  // Handing the locked mutex across an ABI boundary; RAII cannot span it.
  // popan-lint: allow(raw-mutex-lock)
  mu->lock();
  // popan-lint: allow(raw-mutex-lock)
  mu->unlock();
}

void TryLockThenRawUnlock() {
  if (g_mu.try_lock()) g_mu.unlock();  // popan-lint: allow(raw-mutex-lock)
}

}  // namespace demo
