// Fixture: raw_simd_intrinsic.cc's violations with every one suppressed —
// both the trailing-comment and line-above suppression forms must silence
// the rule.

namespace demo {

void RawSse(const double* v, double* out) {
  __m128d a = _mm_loadu_pd(v);  // popan-lint: allow(raw-simd-intrinsic)
  _mm_storeu_pd(out, a);        // popan-lint: allow(raw-simd-intrinsic)
}

void RawAvx(const double* v) {
  // Profiling scratch that never ships; keep out of the kernel catalog.
  // popan-lint: allow(raw-simd-intrinsic)
  __m256d b = _mm256_loadu_pd(v);
  (void)_mm256_movemask_pd(b);  // popan-lint: allow(raw-simd-intrinsic)
}

void RawNeon(const double* v) {
  float64x2_t c = vld1q_f64(v);  // popan-lint: allow(raw-simd-intrinsic)
  (void)vceqq_f64(c, c);         // popan-lint: allow(raw-simd-intrinsic)
}

}  // namespace demo
