// Fixture: the same violations as determinism_random.cc, each silenced
// by a suppression comment (trailing and standalone forms).
#include <cstdlib>
#include <random>

namespace demo {

int Roll() {
  std::random_device rd;  // popan-lint: allow(determinism-random)
  return static_cast<int>(rd() % 6);
}

int LegacyRoll() {
  // popan-lint: allow(determinism-random)
  return rand() % 6;
}

}  // namespace demo
