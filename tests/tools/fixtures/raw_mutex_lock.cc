// Fixture: raw-mutex-lock positives (direct lock()/unlock() calls on a
// mutex, by value and through a pointer) next to the RAII forms and the
// deferred unique_lock, all of which must stay clean.
#include <mutex>

namespace demo {

std::mutex g_mu;

void RawLock() {
  g_mu.lock();    // line 11: raw lock, leaks on any exception below
  g_mu.unlock();  // line 12: raw unlock, skipped by an early return
}

void RawThroughPointer(std::mutex* mu) {
  mu->lock();    // line 16
  mu->unlock();  // line 17
}

void RaiiIsClean() {
  std::lock_guard<std::mutex> guard(g_mu);
  std::scoped_lock both(g_mu);  // CTAD form, also tracked
}

void DeferredUniqueLockIsClean() {
  std::unique_lock<std::mutex> lk(g_mu, std::defer_lock);
  lk.lock();    // clean: lk is a unique_lock, releases on unwind
  lk.unlock();  // clean: explicit early release through the wrapper
}

void TryLockThenRawUnlock() {
  if (g_mu.try_lock()) g_mu.unlock();  // line 32: only the unlock flags
}

}  // namespace demo
