// Fixture: stream_format_guard.cc positives silenced by suppressions.
#include <iomanip>
#include <sstream>

namespace demo {

void WriteBare(std::ostringstream& os, double v) {
  // popan-lint: allow(stream-format-guard)
  os << std::setprecision(17) << v;
  os << std::hex << 255;  // popan-lint: allow(stream-format-guard)
}

}  // namespace demo
