// Fixture: unordered-iteration positives for the query layer — batch
// result reductions must not run in hash order. Fires only when linted
// under a src/query/ logical path (or the other scanned layers).
#include <cstdint>
#include <unordered_map>

namespace demo {

uint64_t FoldCosts(const std::unordered_map<uint32_t, uint64_t>& costs) {
  uint64_t checksum = 0;
  for (const auto& kv : costs) {  // line 11: checksum in hash order
    checksum = checksum * 31 + kv.second;
  }
  return checksum;
}

uint32_t AnyQueryId(const std::unordered_map<uint32_t, uint64_t>& costs) {
  return costs.begin()->first;  // line 18: explicit iterator
}

}  // namespace demo
