// Fixture: every std::atomic access must spell its memory_order
// (atomic-implicit-ordering). The rule is tree-wide.
#include <atomic>
#include <utility>

std::atomic<int> counter{0};
std::atomic<bool> flag{false};

int Bad() {
  int v = counter.load();  // line 10: implicit seq_cst
  counter.store(1);        // line 11
  counter.fetch_add(2);    // line 12
  bool expected = false;
  flag.compare_exchange_strong(expected, true);  // line 14
  return v;
}

int Good() {
  int v = counter.load(std::memory_order_acquire);
  counter.fetch_add(1, std::memory_order_relaxed);
  bool expected = false;
  flag.compare_exchange_weak(expected, true,
                             std::memory_order_acq_rel);  // multi-line: clean
  v = std::exchange(v, 3);  // free function, not an atomic op
  return v;
}
