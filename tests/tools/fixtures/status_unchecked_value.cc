// Fixture: status-unchecked-value positives (unchecked .value(), chained
// .value(), .IgnoreError()) next to a properly checked negative.
#include "util/status.h"
#include "util/statusor.h"

namespace demo {

[[nodiscard]] popan::StatusOr<int> Compute();
[[nodiscard]] popan::Status Persist();

int UseUnchecked() {
  popan::StatusOr<int> result = Compute();
  return result.value();  // line 13: no ok() check in this function
}

int UseChained() {
  return Compute().value();  // line 17: no variable to check at all
}

int UseChecked() {
  popan::StatusOr<int> result = Compute();
  if (!result.ok()) return -1;
  return result.value();  // clean: guarded by ok() above
}

void DropError() {
  Persist().IgnoreError();  // line 27: unconditional discard
}

}  // namespace demo
