#include "shard/key_range.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/morton.h"
#include "util/random.h"

namespace popan::shard {
namespace {

using geo::Box2;
using geo::Point2;
using spatial::MortonCode;

TEST(KeyRangeTest, DefaultIsFullDomain) {
  KeyRange range;
  EXPECT_TRUE(range.IsFullDomain());
  EXPECT_EQ(range.Width(), kShardKeyEnd);
  EXPECT_TRUE(range.Contains(0));
  EXPECT_TRUE(range.Contains(kShardKeyEnd - 1));
  EXPECT_FALSE(range.Contains(kShardKeyEnd));
}

TEST(KeyRangeTest, ShardKeyMatchesMortonCodeAtMaxDepth) {
  Box2 domain = Box2::UnitCube();
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    MortonCode code = spatial::CodeOfPoint(domain, p, MortonCode::kMaxDepth);
    EXPECT_EQ(ShardKeyOfPoint(domain, p), code.bits);
  }
}

TEST(KeyRangeTest, ShardKeyIsPrefixConsistentWithShallowerCodes) {
  // The key of a point always falls inside the descendant interval of the
  // point's code at ANY depth — the property that lets the split-key
  // search reason about leaf blocks instead of individual points.
  Box2 domain(Point2(-3.0, 1.0), Point2(5.0, 9.0));
  Pcg32 rng(11);
  for (int i = 0; i < 300; ++i) {
    Point2 p(rng.NextDouble(-3.0, 5.0), rng.NextDouble(1.0, 9.0));
    uint64_t key = ShardKeyOfPoint(domain, p);
    for (uint8_t depth = 0; depth <= MortonCode::kMaxDepth; ++depth) {
      MortonCode code = spatial::CodeOfPoint(domain, p, depth);
      uint64_t lo = 0;
      uint64_t hi = 0;
      spatial::DescendantRange(code, &lo, &hi);
      EXPECT_LE(lo, key);
      EXPECT_LT(key, hi);
    }
  }
}

/// The descendant key interval of one block.
KeyRange IntervalOf(const MortonCode& code) {
  KeyRange r;
  spatial::DescendantRange(code, &r.lo, &r.hi);
  return r;
}

TEST(CoverBlocksTest, FullDomainIsOneRootBlock) {
  std::vector<MortonCode> blocks = CoverBlocks(KeyRange{});
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].depth, 0);
  EXPECT_EQ(blocks[0].bits, 0u);
}

TEST(CoverBlocksTest, TilesArbitraryRangesExactly) {
  Pcg32 rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    uint64_t a = rng.Next64() % kShardKeyEnd;
    uint64_t b = rng.Next64() % kShardKeyEnd;
    if (a == b) continue;
    KeyRange range{std::min(a, b), std::max(a, b)};
    std::vector<MortonCode> blocks = CoverBlocks(range);
    // Ascending, gap-free, exact tiling.
    uint64_t expect = range.lo;
    for (const MortonCode& block : blocks) {
      KeyRange iv = IntervalOf(block);
      EXPECT_EQ(iv.lo, expect);
      expect = iv.hi;
    }
    EXPECT_EQ(expect, range.hi);
    // The staircase bound: like a base-4 digit expansion, each side of
    // the range needs at most three sibling blocks per depth level.
    EXPECT_LE(blocks.size(), 6u * (MortonCode::kMaxDepth + 1));
  }
}

TEST(CoverBlocksTest, BlocksAreMaximal) {
  // Every block in the canonical cover is as shallow as its alignment and
  // the range boundaries allow: its parent block's interval must escape
  // the range (otherwise the parent should have been used).
  Pcg32 rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t a = rng.Next64() % kShardKeyEnd;
    uint64_t b = rng.Next64() % kShardKeyEnd;
    if (a == b) continue;
    KeyRange range{std::min(a, b), std::max(a, b)};
    for (const MortonCode& block : CoverBlocks(range)) {
      if (block.depth == 0) continue;
      KeyRange parent = IntervalOf(spatial::ParentCode(block));
      EXPECT_TRUE(parent.lo < range.lo || parent.hi > range.hi)
          << "non-maximal block in cover of " << range.ToString();
    }
  }
}

TEST(CoverBoxesTest, FootprintMatchesPointMembership) {
  // A point lies in some cover box iff its shard key lies in the range.
  // (Box containment is half-open on each axis, exactly like the key
  // interval, so the equivalence is exact.)
  Box2 domain = Box2::UnitCube();
  Pcg32 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t a = rng.Next64() % kShardKeyEnd;
    uint64_t b = rng.Next64() % kShardKeyEnd;
    if (a == b) continue;
    KeyRange range{std::min(a, b), std::max(a, b)};
    std::vector<geo::Box2> boxes = CoverBoxes(domain, range);
    for (int i = 0; i < 200; ++i) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      bool in_boxes = false;
      for (const geo::Box2& box : boxes) {
        if (box.Contains(p)) {
          in_boxes = true;
          break;
        }
      }
      EXPECT_EQ(in_boxes, range.Contains(ShardKeyOfPoint(domain, p)));
    }
  }
}

TEST(FootprintTest, TouchTestsNeverPruneAMatchingPoint) {
  // The fan-out filters may only skip a shard when it provably holds no
  // match: for every point whose key is in the range, any query box
  // containing the point must touch the range, any axis line through it
  // must touch, and the k-NN lower bound must not exceed the true
  // distance.
  Box2 domain(Point2(0.0, -2.0), Point2(4.0, 2.0));
  Pcg32 rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t a = rng.Next64() % kShardKeyEnd;
    uint64_t b = rng.Next64() % kShardKeyEnd;
    if (a == b) continue;
    KeyRange range{std::min(a, b), std::max(a, b)};
    for (int i = 0; i < 100; ++i) {
      Point2 p(rng.NextDouble(0.0, 4.0), rng.NextDouble(-2.0, 2.0));
      if (!range.Contains(ShardKeyOfPoint(domain, p))) continue;
      Point2 qlo(p.x() - rng.NextDouble(0.0, 0.5),
                 p.y() - rng.NextDouble(0.0, 0.5));
      Point2 qhi(p.x() + rng.NextDouble(0.001, 0.5),
                 p.y() + rng.NextDouble(0.001, 0.5));
      EXPECT_TRUE(RangeTouchesBox(domain, range, Box2(qlo, qhi)));
      EXPECT_TRUE(RangeTouchesAxisValue(domain, range, 0, p.x()));
      EXPECT_TRUE(RangeTouchesAxisValue(domain, range, 1, p.y()));
      Point2 q(rng.NextDouble(-1.0, 5.0), rng.NextDouble(-3.0, 3.0));
      EXPECT_LE(RangeDistanceSquaredTo(domain, range, q),
                q.DistanceSquared(p));
    }
  }
}

TEST(FootprintTest, DisjointBoxIsPruned) {
  Box2 domain = Box2::UnitCube();
  // The first quadrant's key interval covers [0, 4^kMaxDepth / 4).
  KeyRange first_quadrant{0, kShardKeyEnd / 4};
  // Query box entirely in the opposite quadrant.
  EXPECT_FALSE(RangeTouchesBox(domain, first_quadrant,
                               Box2(Point2(0.6, 0.6), Point2(0.9, 0.9))));
  EXPECT_FALSE(RangeTouchesAxisValue(domain, first_quadrant, 0, 0.75));
  EXPECT_GT(
      RangeDistanceSquaredTo(domain, first_quadrant, Point2(0.9, 0.9)),
      0.0);
}

}  // namespace
}  // namespace popan::shard
