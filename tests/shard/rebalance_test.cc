#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "shard/router.h"
#include "util/random.h"

namespace popan::shard {
namespace {

using geo::Box2;
using geo::Point2;

RouterOptions BalancedOptions() {
  RouterOptions options;
  options.rebalance.enabled = true;
  options.rebalance.ref_qx = 0.05;
  options.rebalance.ref_qy = 0.05;
  options.rebalance.split_cost = 6.0;
  options.rebalance.merge_cost = 3.0;
  options.rebalance.min_split_points = 32;
  options.rebalance.max_shards = 16;
  options.rebalance.check_interval = 32;
  return options;
}

TEST(RebalanceTest, SkewedLoadTriggersCensusPredictedSplits) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, BalancedOptions());
  // Zipf-ish skew: almost everything lands in one hot corner cluster.
  Pcg32 rng(101);
  for (int i = 0; i < 4000; ++i) {
    Point2 p = rng.NextDouble() < 0.9
                   ? Point2(rng.NextDouble(0.0, 0.1),
                            rng.NextDouble(0.0, 0.1))
                   : Point2(rng.NextDouble(), rng.NextDouble());
    Status s = router.Insert(p);
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists)
        << s.ToString();
  }
  EXPECT_GT(router.rebalance_checks(), 0u);
  EXPECT_GT(router.splits(), 0u);
  ASSERT_GT(router.shard_count(), 1u);
  EXPECT_LE(router.shard_count(), 16u);

  // The balancer's whole point: after splitting, no shard's predicted
  // cost should dwarf the mean. Allow generous slack for leaf
  // granularity — the gate is "bounded imbalance", not perfection.
  std::vector<ShardInfo> shards = router.Shards();
  double max_cost = 0.0;
  double total_cost = 0.0;
  for (const ShardInfo& s : shards) {
    max_cost = std::max(max_cost, s.predicted_cost);
    total_cost += s.predicted_cost;
  }
  double mean_cost = total_cost / static_cast<double>(shards.size());
  EXPECT_LT(max_cost, 8.0 * mean_cost);
  // And no shard is left over the split threshold with room to split.
  for (const ShardInfo& s : shards) {
    if (s.size >= 2 * BalancedOptions().rebalance.min_split_points) {
      EXPECT_LT(s.predicted_cost,
                2.0 * BalancedOptions().rebalance.split_cost)
          << s.range.ToString() << " size=" << s.size;
    }
  }
}

TEST(RebalanceTest, DrainedShardsMergeBackTogether) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, BalancedOptions());
  Pcg32 rng(103);
  std::vector<Point2> points;
  for (int i = 0; i < 3000; ++i) {
    points.emplace_back(rng.NextDouble(), rng.NextDouble());
    Status s = router.Insert(points.back());
    if (!s.ok()) points.pop_back();
  }
  size_t peak = router.shard_count();
  ASSERT_GT(peak, 1u);

  // Drain almost everything; the merge threshold pulls the cold shards
  // back together.
  for (size_t i = 16; i < points.size(); ++i) {
    ASSERT_TRUE(router.Erase(points[i]).ok());
  }
  EXPECT_LT(router.shard_count(), peak);
  EXPECT_GT(router.merges(), 0u);
}

TEST(RebalanceTest, UnsplittableHotspotDoesNotSpin) {
  // A hot shard whose points all share one Morton block refuses to split
  // (FailedPrecondition). The balancer must remember the refusal and not
  // retry every check while the population is unchanged.
  Box2 domain = Box2::UnitCube();
  RouterOptions options = BalancedOptions();
  options.rebalance.min_split_points = 16;
  options.rebalance.split_cost = 0.5;  // every check wants this split
  options.rebalance.merge_cost = 0.1;
  options.rebalance.check_interval = 8;
  ShardRouter router(domain, options);
  double eps = 0x1.0p-45;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        router.Insert(Point2(0.25 + i * eps, 0.25 + i * eps)).ok());
  }
  // Interleave enough no-op churn (inside the SAME Morton block, so
  // the shard stays unsplittable) to run many balance checks.
  for (int round = 0; round < 50; ++round) {
    Point2 p(0.25 + (100 + round) * eps, 0.25);
    ASSERT_TRUE(router.Insert(p).ok());
    ASSERT_TRUE(router.Erase(p).ok());
  }
  EXPECT_GT(router.rebalance_checks(), 10u);
  EXPECT_EQ(router.splits(), 0u);
  EXPECT_EQ(router.shard_count(), 1u);
}

TEST(RebalanceTest, MaxShardsCapsTheMap) {
  Box2 domain = Box2::UnitCube();
  RouterOptions options = BalancedOptions();
  options.rebalance.max_shards = 3;
  options.rebalance.split_cost = 2.0;   // eager
  options.rebalance.merge_cost = 0.5;   // nearly never merge
  ShardRouter router(domain, options);
  Pcg32 rng(107);
  for (int i = 0; i < 5000; ++i) {
    Status s =
        router.Insert(Point2(rng.NextDouble(), rng.NextDouble()));
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists);
  }
  EXPECT_LE(router.shard_count(), 3u);
}

TEST(RebalanceTest, DisabledBalancerNeverRebalances) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  Pcg32 rng(109);
  for (int i = 0; i < 2000; ++i) {
    Status s =
        router.Insert(Point2(rng.NextDouble(0.0, 0.05),
                             rng.NextDouble(0.0, 0.05)));
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists);
  }
  EXPECT_EQ(router.shard_count(), 1u);
  EXPECT_EQ(router.rebalance_checks(), 0u);
  EXPECT_EQ(router.splits(), 0u);
}

}  // namespace
}  // namespace popan::shard
