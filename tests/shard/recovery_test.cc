#include <gtest/gtest.h>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "query/query.h"
#include "shard/manifest.h"
#include "shard/router.h"
#include "spatial/census.h"
#include "util/random.h"

namespace popan::shard {
namespace {

using geo::Box2;
using geo::Point2;

std::string FreshStoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/popan_shard_" + name;
  // Tests reuse names across runs; start from an empty directory.
  std::string cleanup = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
  return dir;
}

std::vector<Point2> RandomPoints(uint64_t seed, size_t n) {
  Pcg32 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(rng.NextDouble(), rng.NextDouble());
  }
  return points;
}

std::unique_ptr<ShardRouter> OpenOrDie(const std::string& dir,
                                       const RouterOptions& options) {
  StatusOr<std::unique_ptr<ShardRouter>> router =
      ShardRouter::Open(dir, Box2::UnitCube(), options);
  EXPECT_TRUE(router.ok()) << router.status().ToString();
  return std::move(router).value();
}

/// All points in canonical order, via a full-domain range query.
std::vector<Point2> Contents(const ShardRouter& router) {
  return Execute(router.Snapshot(),
                 query::QuerySpec::Range(Box2::UnitCube()))
      .points;
}

/// Shard map fingerprint: ranges, sizes, sequences, and per-shard census.
struct MapFingerprint {
  std::vector<KeyRange> ranges;
  std::vector<size_t> sizes;
  std::vector<uint64_t> sequences;
  std::vector<spatial::Census> censuses;
};

MapFingerprint FingerprintOf(const ShardRouter& router) {
  MapFingerprint fp;
  for (const ShardInfo& s : router.Shards()) {
    fp.ranges.push_back(s.range);
    fp.sizes.push_back(s.size);
    fp.sequences.push_back(s.sequence);
  }
  MultiSnapshot snapshot = router.Snapshot();
  for (const MultiSnapshot::Entry& e : snapshot.entries()) {
    fp.censuses.push_back(e.view.LiveCensus());
  }
  return fp;
}

void ExpectSameMap(const MapFingerprint& a, const MapFingerprint& b) {
  ASSERT_EQ(a.ranges.size(), b.ranges.size());
  for (size_t i = 0; i < a.ranges.size(); ++i) {
    EXPECT_EQ(a.ranges[i], b.ranges[i]);
    EXPECT_EQ(a.sizes[i], b.sizes[i]);
    EXPECT_EQ(a.sequences[i], b.sequences[i]);
    EXPECT_TRUE(a.censuses[i] == b.censuses[i])
        << "census mismatch in shard " << a.ranges[i].ToString();
  }
}

TEST(ShardRecoveryTest, FreshDirectoryBootsEmptyAndCommitsManifest) {
  std::string dir = FreshStoreDir("fresh");
  RouterOptions options;
  {
    std::unique_ptr<ShardRouter> router = OpenOrDie(dir, options);
    EXPECT_TRUE(router->durable());
    EXPECT_EQ(router->shard_count(), 1u);
    EXPECT_EQ(router->size(), 0u);
    // The first manifest is already durable: a crash right here must
    // still reopen.
  }
  std::unique_ptr<ShardRouter> reopened = OpenOrDie(dir, options);
  EXPECT_EQ(reopened->shard_count(), 1u);
  EXPECT_EQ(reopened->size(), 0u);
}

TEST(ShardRecoveryTest, ReopenReplaysWalsAcrossTheShardMap) {
  std::string dir = FreshStoreDir("replay");
  RouterOptions options;
  std::vector<Point2> points = RandomPoints(211, 400);
  MapFingerprint before;
  std::vector<Point2> contents;
  {
    std::unique_ptr<ShardRouter> router = OpenOrDie(dir, options);
    for (const Point2& p : points) ASSERT_TRUE(router->Insert(p).ok());
    ASSERT_TRUE(router->SplitShard(0).ok());
    ASSERT_TRUE(router->SplitShard(1).ok());
    // Post-split churn exercises replay of records appended AFTER a
    // WAL handoff.
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(router->Erase(points[i]).ok());
    }
    for (const Point2& p : RandomPoints(223, 50)) {
      ASSERT_TRUE(router->Insert(p).ok());
    }
    router->FlushWals();
    before = FingerprintOf(*router);
    contents = Contents(*router);
  }
  std::unique_ptr<ShardRouter> reopened = OpenOrDie(dir, options);
  EXPECT_EQ(reopened->shard_count(), 3u);
  EXPECT_EQ(reopened->size(), 350u);
  ExpectSameMap(before, FingerprintOf(*reopened));
  EXPECT_EQ(Contents(*reopened), contents);

  // The recovered store keeps accepting writes.
  ASSERT_TRUE(reopened->Insert(Point2(0.111, 0.222)).ok());
}

TEST(ShardRecoveryTest, CheckpointCompactsAndStillRecovers) {
  std::string dir = FreshStoreDir("checkpoint");
  RouterOptions options;
  MapFingerprint before;
  {
    std::unique_ptr<ShardRouter> router = OpenOrDie(dir, options);
    for (const Point2& p : RandomPoints(227, 300)) {
      ASSERT_TRUE(router->Insert(p).ok());
    }
    ASSERT_TRUE(router->SplitShard(0).ok());
    ASSERT_TRUE(router->CheckpointShard(0).ok());
    // Writes after the checkpoint land in the fresh anchored WAL.
    for (const Point2& p : RandomPoints(229, 60)) {
      ASSERT_TRUE(router->Insert(p).ok());
    }
    router->FlushWals();
    before = FingerprintOf(*router);
  }
  std::unique_ptr<ShardRouter> reopened = OpenOrDie(dir, options);
  ExpectSameMap(before, FingerprintOf(*reopened));
}

TEST(ShardRecoveryTest, MismatchedGeometryIsFailedPrecondition) {
  std::string dir = FreshStoreDir("geometry");
  { OpenOrDie(dir, RouterOptions{}); }
  StatusOr<std::unique_ptr<ShardRouter>> wrong = ShardRouter::Open(
      dir, Box2(Point2(0.0, 0.0), Point2(2.0, 2.0)), RouterOptions{});
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardRecoveryTest, TornWalTailIsTruncatedOnReopen) {
  std::string dir = FreshStoreDir("torn");
  RouterOptions options;
  std::string wal_file;
  {
    std::unique_ptr<ShardRouter> router = OpenOrDie(dir, options);
    for (const Point2& p : RandomPoints(233, 50)) {
      ASSERT_TRUE(router->Insert(p).ok());
    }
    router->FlushWals();
    StatusOr<Manifest> manifest = ReadManifest(dir);
    ASSERT_TRUE(manifest.ok());
    wal_file = manifest.value().shards[0].wal_file;
  }
  {
    // A torn final record: garbage bytes after the intact prefix.
    std::ofstream out(dir + "/" + wal_file,
                      std::ios::binary | std::ios::app);
    out << "I 0.5";  // truncated mid-record
  }
  std::unique_ptr<ShardRouter> reopened = OpenOrDie(dir, options);
  EXPECT_EQ(reopened->size(), 50u);
  // The truncated tail was discarded and the file resumed: new writes
  // append cleanly and survive another reopen.
  ASSERT_TRUE(reopened->Insert(Point2(0.42, 0.24)).ok());
  reopened->FlushWals();
  reopened.reset();
  std::unique_ptr<ShardRouter> again = OpenOrDie(dir, options);
  EXPECT_EQ(again->size(), 51u);
}

/// The mid-rebalance crash matrix: for every injected stage, a reopened
/// store must land on a CONSISTENT shard map — the pre-rebalance map for
/// crashes before the manifest commit, the post-rebalance map after it —
/// with censuses exactly equal to an uncrashed control performing the
/// same operations.
class SplitCrashTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SplitCrashTest, KillAndRecoverDuringSplit) {
  const std::string stage = GetParam();
  std::string dir = FreshStoreDir(std::string("split_") +
                                  std::string(stage).substr(6));
  std::vector<Point2> points = RandomPoints(239, 300);

  // Control: the same store without the crash, before and after split.
  MapFingerprint pre_split;
  MapFingerprint post_split;
  {
    std::string control_dir = FreshStoreDir(
        std::string("split_control_") + std::string(stage).substr(6));
    std::unique_ptr<ShardRouter> control =
        OpenOrDie(control_dir, RouterOptions{});
    for (const Point2& p : points) ASSERT_TRUE(control->Insert(p).ok());
    control->FlushWals();
    pre_split = FingerprintOf(*control);
    ASSERT_TRUE(control->SplitShard(0).ok());
    post_split = FingerprintOf(*control);
  }

  RouterOptions crashing;
  crashing.crash_hook = [&stage](std::string_view at) {
    return at == stage;
  };
  {
    std::unique_ptr<ShardRouter> router = OpenOrDie(dir, crashing);
    for (const Point2& p : points) ASSERT_TRUE(router->Insert(p).ok());
    router->FlushWals();
    Status split = router->SplitShard(0);
    ASSERT_FALSE(split.ok());
    EXPECT_EQ(split.code(), StatusCode::kFailedPrecondition);
    // Poisoned: every further write refuses.
    EXPECT_FALSE(router->Insert(Point2(0.9, 0.9)).ok());
  }

  std::unique_ptr<ShardRouter> recovered = OpenOrDie(dir, RouterOptions{});
  if (stage == "split:after-manifest") {
    // Crash after the commit point: the split is durable, and the WAL
    // handoff replays to the exact post-split shard map and censuses.
    ExpectSameMap(post_split, FingerprintOf(*recovered));
  } else {
    // Crash before the commit point: the old map survives untouched
    // (half-written handoff files are orphans).
    ExpectSameMap(pre_split, FingerprintOf(*recovered));
  }
  // Either way, not a single point was lost or duplicated.
  EXPECT_EQ(recovered->size(), points.size());
}

INSTANTIATE_TEST_SUITE_P(AllStages, SplitCrashTest,
                         ::testing::Values("split:before-wal",
                                           "split:before-manifest",
                                           "split:after-manifest"));

TEST(ShardRecoveryTest, KillAndRecoverDuringMerge) {
  std::vector<Point2> points = RandomPoints(241, 260);
  for (const char* stage :
       {"merge:before-wal", "merge:before-manifest",
        "merge:after-manifest"}) {
    std::string dir = FreshStoreDir("merge_crash");
    MapFingerprint pre_merge;
    MapFingerprint post_merge;
    {
      std::string control_dir = FreshStoreDir("merge_control");
      std::unique_ptr<ShardRouter> control =
          OpenOrDie(control_dir, RouterOptions{});
      for (const Point2& p : points) ASSERT_TRUE(control->Insert(p).ok());
      ASSERT_TRUE(control->SplitShard(0).ok());
      control->FlushWals();
      pre_merge = FingerprintOf(*control);
      ASSERT_TRUE(control->MergeShards(0).ok());
      post_merge = FingerprintOf(*control);
    }

    RouterOptions crashing;
    std::string_view want = stage;
    crashing.crash_hook = [want](std::string_view at) {
      return at == want;
    };
    {
      std::unique_ptr<ShardRouter> router = OpenOrDie(dir, crashing);
      for (const Point2& p : points) ASSERT_TRUE(router->Insert(p).ok());
      ASSERT_TRUE(router->SplitShard(0).ok());
      router->FlushWals();
      ASSERT_FALSE(router->MergeShards(0).ok());
    }

    std::unique_ptr<ShardRouter> recovered =
        OpenOrDie(dir, RouterOptions{});
    if (want == "merge:after-manifest") {
      ExpectSameMap(post_merge, FingerprintOf(*recovered));
    } else {
      ExpectSameMap(pre_merge, FingerprintOf(*recovered));
    }
    EXPECT_EQ(recovered->size(), points.size()) << stage;
  }
}

}  // namespace
}  // namespace popan::shard
