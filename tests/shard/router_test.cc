#include "shard/router.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "query/query.h"
#include "shard/key_range.h"
#include "spatial/snapshot_view.h"
#include "testing/statusor_testing.h"
#include "util/random.h"

namespace popan::shard {
namespace {

using geo::Box2;
using geo::Point2;

std::vector<Point2> RandomPoints(uint64_t seed, size_t n,
                                 const Box2& domain) {
  Pcg32 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(
        rng.NextDouble(domain.lo().x(), domain.hi().x()),
        rng.NextDouble(domain.lo().y(), domain.hi().y()));
  }
  return points;
}

/// Executes `spec` against both the router and a single reference tree
/// holding the same points and expects bitwise-identical result points.
void ExpectParity(const ShardRouter& router,
                  const spatial::CowPrQuadtree& reference,
                  const query::QuerySpec& spec) {
  MultiSnapshot multi = router.Snapshot();
  spatial::SnapshotView2 single = reference.Snapshot();
  query::QueryResult sharded = Execute(multi, spec);
  query::QueryResult flat = query::Execute(single, spec);
  ASSERT_EQ(sharded.points.size(), flat.points.size()) << spec.ToString();
  for (size_t i = 0; i < flat.points.size(); ++i) {
    EXPECT_EQ(sharded.points[i].x(), flat.points[i].x()) << spec.ToString();
    EXPECT_EQ(sharded.points[i].y(), flat.points[i].y()) << spec.ToString();
  }
}

TEST(ShardRouterTest, StartsAsOneFullRangeShard) {
  ShardRouter router(Box2::UnitCube(), RouterOptions{});
  EXPECT_EQ(router.shard_count(), 1u);
  EXPECT_FALSE(router.durable());
  std::vector<ShardInfo> shards = router.Shards();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_TRUE(shards[0].range.IsFullDomain());
  EXPECT_EQ(shards[0].size, 0u);
}

TEST(ShardRouterTest, TypedWriteErrors) {
  ShardRouter router(Box2::UnitCube(), RouterOptions{});
  EXPECT_EQ(router.Insert(Point2(std::nan(""), 0.5)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.Insert(Point2(1.5, 0.5)).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(router.Insert(Point2(0.25, 0.25)).ok());
  EXPECT_EQ(router.Insert(Point2(0.25, 0.25)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(router.Erase(Point2(0.75, 0.75)).code(), StatusCode::kNotFound);
  // Failed writes burn no sequence numbers.
  EXPECT_EQ(router.sequence(), 1u);
  EXPECT_EQ(router.size(), 1u);
}

TEST(ShardRouterTest, SplitPreservesQueryParity) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  spatial::CowPrQuadtree reference(domain);
  for (const Point2& p : RandomPoints(41, 500, domain)) {
    ASSERT_TRUE(router.Insert(p).ok());
    ASSERT_TRUE(reference.Insert(p).ok());
  }
  ASSERT_TRUE(router.SplitShard(0).ok());
  EXPECT_EQ(router.shard_count(), 2u);
  ASSERT_TRUE(router.SplitShard(1).ok());
  ASSERT_TRUE(router.SplitShard(0).ok());
  EXPECT_EQ(router.shard_count(), 4u);

  // The shard map still tiles the key space.
  std::vector<ShardInfo> shards = router.Shards();
  uint64_t expect_lo = 0;
  size_t total = 0;
  for (const ShardInfo& s : shards) {
    EXPECT_EQ(s.range.lo, expect_lo);
    expect_lo = s.range.hi;
    total += s.size;
  }
  EXPECT_EQ(expect_lo, kShardKeyEnd);
  EXPECT_EQ(total, 500u);

  Pcg32 rng(43);
  for (int i = 0; i < 40; ++i) {
    Point2 lo(rng.NextDouble(0.0, 0.8), rng.NextDouble(0.0, 0.8));
    Point2 hi(lo.x() + rng.NextDouble(0.01, 0.2),
              lo.y() + rng.NextDouble(0.01, 0.2));
    ExpectParity(router, reference, query::QuerySpec::Range(Box2(lo, hi)));
    ExpectParity(router, reference,
                 query::QuerySpec::PartialMatch(i % 2, rng.NextDouble()));
    ExpectParity(router, reference,
                 query::QuerySpec::NearestK(
                     Point2(rng.NextDouble(), rng.NextDouble()),
                     1 + i % 16));
  }
}

TEST(ShardRouterTest, SplitBalancesPopulation) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  for (const Point2& p : RandomPoints(47, 1000, domain)) {
    ASSERT_TRUE(router.Insert(p).ok());
  }
  ASSERT_TRUE(router.SplitShard(0).ok());
  std::vector<ShardInfo> shards = router.Shards();
  ASSERT_EQ(shards.size(), 2u);
  // The census-median cut lands near half on uniform data (leaf
  // granularity bounds the error well under 25% here).
  EXPECT_GT(shards[0].size, 250u);
  EXPECT_GT(shards[1].size, 250u);
}

TEST(ShardRouterTest, WritesRouteToTheOwningShard) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  std::vector<Point2> points = RandomPoints(53, 400, domain);
  for (const Point2& p : points) ASSERT_TRUE(router.Insert(p).ok());
  ASSERT_TRUE(router.SplitShard(0).ok());
  ASSERT_TRUE(router.SplitShard(0).ok());

  // Erase half through the sharded path, insert some fresh ones.
  for (size_t i = 0; i < points.size(); i += 2) {
    ASSERT_TRUE(router.Erase(points[i]).ok());
  }
  for (const Point2& p : RandomPoints(59, 100, domain)) {
    ASSERT_TRUE(router.Insert(p).ok());
  }

  // Every shard's points belong to its key range.
  MultiSnapshot snapshot = router.Snapshot();
  size_t total = 0;
  for (const MultiSnapshot::Entry& e : snapshot.entries()) {
    for (const Point2& p : e.view.AllPoints()) {
      EXPECT_TRUE(e.range.Contains(ShardKeyOfPoint(domain, p)));
      ++total;
    }
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(snapshot.size(), 300u);
}

TEST(ShardRouterTest, UnsplittableClusterRefusesWithTypedStatus) {
  // Every point in one kMaxDepth Morton block: no interior leaf boundary
  // exists, so the split must refuse with FailedPrecondition — not spin,
  // not crash.
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  double base = 0.5;
  double eps = 0x1.0p-40;  // well inside one 2^-31 block
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(router.Insert(Point2(base + i * eps, base)).ok());
  }
  Status split = router.SplitShard(0);
  EXPECT_EQ(split.code(), StatusCode::kFailedPrecondition) << split.ToString();
  EXPECT_EQ(router.shard_count(), 1u);

  // Fewer than two points is equally unsplittable.
  ShardRouter tiny(domain, RouterOptions{});
  ASSERT_TRUE(tiny.Insert(Point2(0.5, 0.5)).ok());
  EXPECT_EQ(tiny.SplitShard(0).code(), StatusCode::kFailedPrecondition);
}

TEST(ShardRouterTest, MergeToSingleShardRoundTrips) {
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  spatial::CowPrQuadtree reference(domain);
  for (const Point2& p : RandomPoints(61, 300, domain)) {
    ASSERT_TRUE(router.Insert(p).ok());
    ASSERT_TRUE(reference.Insert(p).ok());
  }
  ASSERT_TRUE(router.SplitShard(0).ok());
  ASSERT_TRUE(router.SplitShard(1).ok());
  ASSERT_TRUE(router.SplitShard(0).ok());
  ASSERT_EQ(router.shard_count(), 4u);

  // Merge all the way back down to one shard.
  ASSERT_TRUE(router.MergeShards(2).ok());
  ASSERT_TRUE(router.MergeShards(0).ok());
  ASSERT_TRUE(router.MergeShards(0).ok());
  ASSERT_EQ(router.shard_count(), 1u);
  std::vector<ShardInfo> shards = router.Shards();
  EXPECT_TRUE(shards[0].range.IsFullDomain());
  EXPECT_EQ(shards[0].size, 300u);
  EXPECT_EQ(router.merges(), 3u);

  ExpectParity(router, reference,
               query::QuerySpec::Range(Box2::UnitCube()));
  // Merging the only shard is a typed error, not a crash.
  EXPECT_EQ(router.MergeShards(0).code(), StatusCode::kInvalidArgument);
}

TEST(ShardRouterTest, PinnedReaderSurvivesSplitAndMerge) {
  // A reader pinned before a rebalance keeps its pre-rebalance view:
  // shared shard ownership keeps replaced trees alive until the pin
  // drops.
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  std::vector<Point2> points = RandomPoints(67, 200, domain);
  for (const Point2& p : points) ASSERT_TRUE(router.Insert(p).ok());

  MultiSnapshot pinned = router.Snapshot();
  ASSERT_TRUE(router.SplitShard(0).ok());
  ASSERT_TRUE(router.Insert(Point2(0.123456, 0.654321)).ok());
  ASSERT_TRUE(router.MergeShards(0).ok());

  // The pinned view still answers with the pre-split point set.
  query::QueryResult before =
      Execute(pinned, query::QuerySpec::Range(Box2::UnitCube()));
  EXPECT_EQ(before.points.size(), 200u);
  // A fresh view sees the post-rebalance world.
  query::QueryResult after = Execute(
      router.Snapshot(), query::QuerySpec::Range(Box2::UnitCube()));
  EXPECT_EQ(after.points.size(), 201u);
}

TEST(ShardRouterTest, SnapshotExhaustionIsTypedAndRecovers) {
  RouterOptions options;
  options.epoch_readers = 2;
  ShardRouter router(Box2::UnitCube(), options);
  ASSERT_TRUE(router.Insert(Point2(0.5, 0.5)).ok());
  std::optional<MultiSnapshot> a(router.Snapshot());
  std::optional<MultiSnapshot> b(router.Snapshot());
  StatusOr<MultiSnapshot> c = router.TrySnapshot();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  a.reset();
  EXPECT_TRUE(router.TrySnapshot().ok());
}

TEST(ShardRouterTest, NearestKParityAcrossShardBoundaries) {
  // Targets right on shard boundaries exercise the cross-shard candidate
  // merge; ties resolve by the canonical (distance², x, y) key.
  Box2 domain = Box2::UnitCube();
  ShardRouter router(domain, RouterOptions{});
  spatial::CowPrQuadtree reference(domain);
  for (const Point2& p : RandomPoints(71, 600, domain)) {
    ASSERT_TRUE(router.Insert(p).ok());
    ASSERT_TRUE(reference.Insert(p).ok());
  }
  for (int s = 0; s < 5; ++s) ASSERT_TRUE(router.SplitShard(0).ok());
  Pcg32 rng(73);
  for (int i = 0; i < 30; ++i) {
    Point2 target(rng.NextDouble(), rng.NextDouble());
    ExpectParity(router, reference,
                 query::QuerySpec::NearestK(target, 1 + i));
  }
  // k larger than the population returns everything, in the same order.
  ExpectParity(router, reference,
               query::QuerySpec::NearestK(Point2(0.5, 0.5), 1000));
}

}  // namespace
}  // namespace popan::shard
