#include "geometry/point.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace popan::geo {
namespace {

TEST(PointTest, DefaultIsOrigin) {
  Point2 p;
  EXPECT_EQ(p.x(), 0.0);
  EXPECT_EQ(p.y(), 0.0);
}

TEST(PointTest, CoordinateConstructor) {
  Point2 p(1.5, -2.0);
  EXPECT_EQ(p.x(), 1.5);
  EXPECT_EQ(p.y(), -2.0);
  EXPECT_EQ(p[0], 1.5);
  EXPECT_EQ(p[1], -2.0);
}

TEST(PointTest, ArrayConstructor) {
  Point3 p(std::array<double, 3>{1.0, 2.0, 3.0});
  EXPECT_EQ(p.z(), 3.0);
}

TEST(PointTest, OneDimensional) {
  Point1 p(4.0);
  EXPECT_EQ(p.x(), 4.0);
  EXPECT_EQ(Point1::kDimension, 1u);
}

TEST(PointTest, MutableIndexing) {
  Point2 p;
  p[0] = 7.0;
  EXPECT_EQ(p.x(), 7.0);
}

TEST(PointTest, Distance) {
  Point2 a(0.0, 0.0);
  Point2 b(3.0, 4.0);
  EXPECT_EQ(a.DistanceSquared(b), 25.0);
  EXPECT_EQ(a.Distance(b), 5.0);
  EXPECT_EQ(a.Distance(a), 0.0);
}

TEST(PointTest, DistanceSymmetric) {
  Point3 a(1.0, 2.0, 3.0);
  Point3 b(-1.0, 0.5, 9.0);
  EXPECT_EQ(a.Distance(b), b.Distance(a));
}

TEST(PointTest, Equality) {
  EXPECT_EQ(Point2(1.0, 2.0), Point2(1.0, 2.0));
  EXPECT_NE(Point2(1.0, 2.0), Point2(1.0, 2.1));
}

TEST(PointTest, ToString) {
  EXPECT_EQ(Point2(1.0, 2.5).ToString(), "(1, 2.5)");
}

TEST(PointTest, StreamOutput) {
  std::ostringstream os;
  os << Point1(3.0);
  EXPECT_EQ(os.str(), "(3)");
}

TEST(PointTest, HigherDimensions) {
  Point<5> p(1.0, 2.0, 3.0, 4.0, 5.0);
  EXPECT_EQ(p[4], 5.0);
  EXPECT_EQ(p.DistanceSquared(Point<5>()), 55.0);
}

}  // namespace
}  // namespace popan::geo
