#include "geometry/box.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::geo {
namespace {

TEST(BoxTest, UnitCube) {
  Box2 b = Box2::UnitCube();
  EXPECT_EQ(b.lo(), Point2(0.0, 0.0));
  EXPECT_EQ(b.hi(), Point2(1.0, 1.0));
  EXPECT_EQ(b.Volume(), 1.0);
  EXPECT_EQ(b.Extent(0), 1.0);
}

TEST(BoxTest, ScaledCube) {
  Box3 b = Box3::UnitCube(2.0);
  EXPECT_EQ(b.Volume(), 8.0);
}

TEST(BoxTest, Center) {
  Box2 b(Point2(0.0, 2.0), Point2(4.0, 6.0));
  EXPECT_EQ(b.Center(), Point2(2.0, 4.0));
}

TEST(BoxTest, HalfOpenContainment) {
  Box2 b = Box2::UnitCube();
  EXPECT_TRUE(b.Contains(Point2(0.0, 0.0)));    // lo corner in
  EXPECT_FALSE(b.Contains(Point2(1.0, 1.0)));   // hi corner out
  EXPECT_FALSE(b.Contains(Point2(0.5, 1.0)));   // hi edge out
  EXPECT_TRUE(b.Contains(Point2(0.999999, 0.0)));
  EXPECT_FALSE(b.Contains(Point2(-0.001, 0.5)));
}

TEST(BoxTest, ContainsBox) {
  Box2 outer = Box2::UnitCube();
  Box2 inner(Point2(0.25, 0.25), Point2(0.75, 0.75));
  EXPECT_TRUE(outer.ContainsBox(inner));
  EXPECT_FALSE(inner.ContainsBox(outer));
  EXPECT_TRUE(outer.ContainsBox(outer));  // hi may touch hi
}

TEST(BoxTest, Intersects) {
  Box2 a(Point2(0.0, 0.0), Point2(2.0, 2.0));
  Box2 b(Point2(1.0, 1.0), Point2(3.0, 3.0));
  Box2 c(Point2(2.0, 0.0), Point2(3.0, 1.0));  // touches a's edge only
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));  // half-open: shared edge is no overlap
  EXPECT_FALSE(c.Intersects(a));
}

TEST(BoxTest, QuadrantsTileTheBox) {
  Box2 b = Box2::UnitCube();
  double total = 0.0;
  for (size_t q = 0; q < Box2::kNumQuadrants; ++q) {
    total += b.Quadrant(q).Volume();
    EXPECT_TRUE(b.ContainsBox(b.Quadrant(q)));
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(BoxTest, QuadrantIndexingConvention) {
  Box2 b = Box2::UnitCube();
  // Bit 0 = upper x half, bit 1 = upper y half.
  EXPECT_EQ(b.Quadrant(0).lo(), Point2(0.0, 0.0));
  EXPECT_EQ(b.Quadrant(1).lo(), Point2(0.5, 0.0));
  EXPECT_EQ(b.Quadrant(2).lo(), Point2(0.0, 0.5));
  EXPECT_EQ(b.Quadrant(3).lo(), Point2(0.5, 0.5));
}

TEST(BoxTest, QuadrantOfRoundTrips) {
  Box2 b = Box2::UnitCube();
  Pcg32 rng(8);
  for (int i = 0; i < 1000; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    size_t q = b.QuadrantOf(p);
    EXPECT_TRUE(b.Quadrant(q).Contains(p)) << p.ToString() << " q=" << q;
  }
}

TEST(BoxTest, QuadrantOfCenterGoesUp) {
  // The center belongs to the upper quadrant on every axis (half-open
  // children: lower child is [lo, mid)).
  Box2 b = Box2::UnitCube();
  EXPECT_EQ(b.QuadrantOf(b.Center()), 3u);
}

TEST(BoxTest, EveryPointInExactlyOneQuadrant) {
  Box2 b = Box2::UnitCube();
  Pcg32 rng(9);
  for (int i = 0; i < 500; ++i) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    int containing = 0;
    for (size_t q = 0; q < 4; ++q) {
      if (b.Quadrant(q).Contains(p)) ++containing;
    }
    EXPECT_EQ(containing, 1);
  }
}

TEST(BoxTest, OctantsInThreeDimensions) {
  Box3 b = Box3::UnitCube();
  EXPECT_EQ(Box3::kNumQuadrants, 8u);
  double total = 0.0;
  for (size_t q = 0; q < 8; ++q) total += b.Quadrant(q).Volume();
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(BoxTest, BintreeHalvesInOneDimension) {
  Box1 b = Box1::UnitCube();
  EXPECT_EQ(Box1::kNumQuadrants, 2u);
  EXPECT_EQ(b.Quadrant(0).hi().x(), 0.5);
  EXPECT_EQ(b.Quadrant(1).lo().x(), 0.5);
}

TEST(BoxTest, DistanceSquaredTo) {
  Box2 b = Box2::UnitCube();
  EXPECT_EQ(b.DistanceSquaredTo(Point2(0.5, 0.5)), 0.0);    // inside
  EXPECT_EQ(b.DistanceSquaredTo(Point2(2.0, 0.5)), 1.0);    // right
  EXPECT_EQ(b.DistanceSquaredTo(Point2(2.0, 2.0)), 2.0);    // corner
  EXPECT_EQ(b.DistanceSquaredTo(Point2(-3.0, 0.5)), 9.0);   // left
  EXPECT_EQ(b.DistanceSquaredTo(Point2(0.0, 0.0)), 0.0);    // on boundary
}

TEST(BoxTest, ToStringAndEquality) {
  Box2 a = Box2::UnitCube();
  Box2 b = Box2::UnitCube();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Box2(Point2(0.0, 0.0), Point2(2.0, 1.0)));
  EXPECT_EQ(a.ToString(), "[(0, 0), (1, 1))");
}

}  // namespace
}  // namespace popan::geo
