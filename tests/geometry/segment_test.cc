#include "geometry/segment.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::geo {
namespace {

TEST(Orient2DTest, SignConvention) {
  Point2 a(0.0, 0.0), b(1.0, 0.0);
  EXPECT_GT(Orient2D(a, b, Point2(0.5, 1.0)), 0.0);   // left of ab: ccw
  EXPECT_LT(Orient2D(a, b, Point2(0.5, -1.0)), 0.0);  // right: cw
  EXPECT_EQ(Orient2D(a, b, Point2(2.0, 0.0)), 0.0);   // collinear
}

TEST(SegmentTest, Length) {
  Segment s(Point2(0.0, 0.0), Point2(3.0, 4.0));
  EXPECT_EQ(s.Length(), 5.0);
}

TEST(SegmentTest, ProperCrossing) {
  Segment s(Point2(0.0, 0.0), Point2(1.0, 1.0));
  Segment t(Point2(0.0, 1.0), Point2(1.0, 0.0));
  EXPECT_TRUE(s.IntersectsSegment(t));
  EXPECT_TRUE(t.IntersectsSegment(s));
}

TEST(SegmentTest, DisjointSegments) {
  Segment s(Point2(0.0, 0.0), Point2(1.0, 0.0));
  Segment t(Point2(0.0, 1.0), Point2(1.0, 1.0));
  EXPECT_FALSE(s.IntersectsSegment(t));
}

TEST(SegmentTest, EndpointTouching) {
  Segment s(Point2(0.0, 0.0), Point2(1.0, 0.0));
  Segment t(Point2(1.0, 0.0), Point2(2.0, 5.0));
  EXPECT_TRUE(s.IntersectsSegment(t));
}

TEST(SegmentTest, TJunction) {
  Segment s(Point2(0.0, 0.0), Point2(2.0, 0.0));
  Segment t(Point2(1.0, 0.0), Point2(1.0, 3.0));
  EXPECT_TRUE(s.IntersectsSegment(t));
}

TEST(SegmentTest, CollinearOverlap) {
  Segment s(Point2(0.0, 0.0), Point2(2.0, 0.0));
  Segment t(Point2(1.0, 0.0), Point2(3.0, 0.0));
  EXPECT_TRUE(s.IntersectsSegment(t));
}

TEST(SegmentTest, CollinearDisjoint) {
  Segment s(Point2(0.0, 0.0), Point2(1.0, 0.0));
  Segment t(Point2(2.0, 0.0), Point2(3.0, 0.0));
  EXPECT_FALSE(s.IntersectsSegment(t));
}

TEST(SegmentTest, ParallelNonCollinear) {
  Segment s(Point2(0.0, 0.0), Point2(1.0, 1.0));
  Segment t(Point2(0.0, 0.5), Point2(1.0, 1.5));
  EXPECT_FALSE(s.IntersectsSegment(t));
}

TEST(SegmentTest, BoxIntersectionEndpointInside) {
  Box2 box = Box2::UnitCube();
  Segment s(Point2(0.5, 0.5), Point2(5.0, 5.0));
  EXPECT_TRUE(s.IntersectsBox(box));
}

TEST(SegmentTest, BoxIntersectionCrossingThrough) {
  Box2 box = Box2::UnitCube();
  Segment s(Point2(-1.0, 0.5), Point2(2.0, 0.5));
  EXPECT_TRUE(s.IntersectsBox(box));
}

TEST(SegmentTest, BoxIntersectionMiss) {
  Box2 box = Box2::UnitCube();
  EXPECT_FALSE(
      Segment(Point2(-1.0, -1.0), Point2(-0.2, 3.0)).IntersectsBox(box));
  EXPECT_FALSE(
      Segment(Point2(2.0, 0.0), Point2(3.0, 1.0)).IntersectsBox(box));
}

TEST(SegmentTest, BoxIntersectionGrazingCorner) {
  Box2 box = Box2::UnitCube();
  // Diagonal line touching the corner (1, 1) exactly (closed box).
  Segment s(Point2(0.5, 1.5), Point2(1.5, 0.5));
  EXPECT_TRUE(s.IntersectsBox(box));
}

TEST(SegmentTest, BoxIntersectionAlongEdge) {
  Box2 box = Box2::UnitCube();
  Segment s(Point2(-0.5, 0.0), Point2(1.5, 0.0));
  EXPECT_TRUE(s.IntersectsBox(box));
}

TEST(SegmentTest, CrossingMatchesQuadrantDecomposition) {
  // A segment crossing a box must intersect at least one quadrant, and
  // the union of quadrant hits must equal a hit on the box (closed-box
  // semantics make quadrant counts 1..4).
  Box2 box = Box2::UnitCube();
  Pcg32 rng(123);
  for (int i = 0; i < 500; ++i) {
    Segment s(Point2(rng.NextDouble(-1.0, 2.0), rng.NextDouble(-1.0, 2.0)),
              Point2(rng.NextDouble(-1.0, 2.0), rng.NextDouble(-1.0, 2.0)));
    int quadrant_hits = 0;
    for (size_t q = 0; q < 4; ++q) {
      if (s.IntersectsBox(box.Quadrant(q))) ++quadrant_hits;
    }
    if (s.IntersectsBox(box)) {
      EXPECT_GE(quadrant_hits, 1) << s.ToString();
    } else {
      EXPECT_EQ(quadrant_hits, 0) << s.ToString();
    }
  }
}

TEST(SegmentTest, ToStringAndEquality) {
  Segment s(Point2(0.0, 0.0), Point2(1.0, 2.0));
  EXPECT_EQ(s.ToString(), "(0, 0)-(1, 2)");
  EXPECT_EQ(s, Segment(Point2(0.0, 0.0), Point2(1.0, 2.0)));
  EXPECT_NE(s, Segment(Point2(1.0, 2.0), Point2(0.0, 0.0)));
}

TEST(SegmentTest, DistanceSquaredToPointProjectsOntoInterior) {
  Segment s(Point2(0.0, 0.0), Point2(2.0, 0.0));
  // Directly above the middle: perpendicular distance.
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(1.0, 3.0)), 9.0);
  // On the segment itself: zero.
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(0.5, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(0.0, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(2.0, 0.0)), 0.0);
}

TEST(SegmentTest, DistanceSquaredToPointClampsToEndpoints) {
  Segment s(Point2(0.0, 0.0), Point2(2.0, 0.0));
  // Beyond either endpoint the projection clamps there.
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(-3.0, 4.0)), 25.0);
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(5.0, -4.0)), 25.0);
  // A diagonal segment: point closest to the upper endpoint.
  Segment d(Point2(0.0, 0.0), Point2(1.0, 1.0));
  EXPECT_DOUBLE_EQ(d.DistanceSquaredToPoint(Point2(2.0, 2.0)), 2.0);
}

TEST(SegmentTest, DistanceSquaredToPointDegenerateSegment) {
  // Zero-length segment: plain point-to-point distance, no 0/0 blowup.
  Segment s(Point2(1.0, 1.0), Point2(1.0, 1.0));
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(4.0, 5.0)), 25.0);
  EXPECT_DOUBLE_EQ(s.DistanceSquaredToPoint(Point2(1.0, 1.0)), 0.0);
}

}  // namespace
}  // namespace popan::geo
