// SubscriptionIndex: marker propagation, O(depth) matching, unsubscribe
// pruning, and the structural invariants that keep notification routing
// honest.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/subscriptions.h"
#include "testing/statusor_testing.h"
#include "util/random.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;
using popan::ValueOrDie;

Box2 UnitDomain() { return Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)); }

std::vector<uint64_t> MatchIds(const SubscriptionIndex& index,
                               const Point2& p) {
  std::vector<uint64_t> out;
  index.Match(p, &out);
  return out;
}

TEST(SubscriptionIndexTest, IdsAreMonotoneFromOne) {
  SubscriptionIndex index(UnitDomain());
  uint64_t a = ValueOrDie(
      index.Subscribe(Box2(Point2(0.0, 0.0), Point2(0.5, 0.5))));
  uint64_t b = ValueOrDie(
      index.Subscribe(Box2(Point2(0.5, 0.5), Point2(1.0, 1.0))));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_TRUE(index.Unsubscribe(a).ok());
  // Freed ids are never reused.
  uint64_t c = ValueOrDie(
      index.Subscribe(Box2(Point2(0.0, 0.0), Point2(0.1, 0.1))));
  EXPECT_EQ(c, 3u);
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(SubscriptionIndexTest, MatchRespectsBoxesAndOrdering) {
  SubscriptionIndex index(UnitDomain());
  // Overlapping boxes; point in the intersection must match all of them,
  // in ascending id order regardless of insertion geometry.
  uint64_t big = ValueOrDie(
      index.Subscribe(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0))));
  uint64_t left = ValueOrDie(
      index.Subscribe(Box2(Point2(0.0, 0.0), Point2(0.5, 1.0))));
  uint64_t spot = ValueOrDie(
      index.Subscribe(Box2(Point2(0.2, 0.2), Point2(0.3, 0.3))));
  EXPECT_EQ(MatchIds(index, Point2(0.25, 0.25)),
            (std::vector<uint64_t>{big, left, spot}));
  EXPECT_EQ(MatchIds(index, Point2(0.4, 0.4)),
            (std::vector<uint64_t>{big, left}));
  EXPECT_EQ(MatchIds(index, Point2(0.75, 0.75)),
            (std::vector<uint64_t>{big}));
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(SubscriptionIndexTest, HalfOpenEdgesMatchLikeBoxContains) {
  SubscriptionIndex index(UnitDomain());
  Box2 box(Point2(0.25, 0.25), Point2(0.5, 0.5));
  uint64_t id = ValueOrDie(index.Subscribe(box));
  // Low edges are inside, high edges are outside: [lo, hi).
  EXPECT_EQ(MatchIds(index, Point2(0.25, 0.25)),
            (std::vector<uint64_t>{id}));
  EXPECT_TRUE(MatchIds(index, Point2(0.5, 0.5)).empty());
  EXPECT_TRUE(MatchIds(index, Point2(0.25, 0.5)).empty());
  EXPECT_TRUE(MatchIds(index, Point2(0.49999, 0.49999)).size() == 1);
}

TEST(SubscriptionIndexTest, PointOutsideDomainMatchesNothing) {
  SubscriptionIndex index(UnitDomain());
  ASSERT_TRUE(
      index.Subscribe(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0))).ok());
  EXPECT_TRUE(MatchIds(index, Point2(1.5, 0.5)).empty());
  EXPECT_TRUE(MatchIds(index, Point2(-0.1, 0.5)).empty());
}

TEST(SubscriptionIndexTest, BoxOutsideDomainIsRejected) {
  SubscriptionIndex index(UnitDomain());
  EXPECT_EQ(
      index.Subscribe(Box2(Point2(2.0, 2.0), Point2(3.0, 3.0))).status()
          .code(),
      StatusCode::kInvalidArgument);
  // Straddling boxes are clipped, not rejected.
  uint64_t id = ValueOrDie(
      index.Subscribe(Box2(Point2(0.9, 0.9), Point2(2.0, 2.0))));
  EXPECT_EQ(MatchIds(index, Point2(0.95, 0.95)),
            (std::vector<uint64_t>{id}));
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(SubscriptionIndexTest, UnsubscribeRemovesAndPrunes) {
  SubscriptionIndex index(UnitDomain());
  // A tiny box forces refinement down to the depth floor; unsubscribing
  // must prune the whole materialized spine back out.
  uint64_t id = ValueOrDie(
      index.Subscribe(Box2(Point2(0.111, 0.111), Point2(0.112, 0.112))));
  SubscriptionIndex::Stats with = index.ComputeStats();
  EXPECT_GT(with.nodes, 1u);
  ASSERT_TRUE(index.Unsubscribe(id).ok());
  EXPECT_TRUE(MatchIds(index, Point2(0.1115, 0.1115)).empty());
  SubscriptionIndex::Stats without = index.ComputeStats();
  EXPECT_EQ(without.nodes, 1u);  // only the root survives
  EXPECT_EQ(without.full_entries + without.partial_entries, 0u);
  EXPECT_EQ(index.live_count(), 0u);
  EXPECT_EQ(index.Unsubscribe(id).code(), StatusCode::kNotFound);
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(SubscriptionIndexTest, DomainCoveringBoxStaysAtRoot) {
  SubscriptionIndex index(UnitDomain());
  ASSERT_TRUE(
      index.Subscribe(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0))).ok());
  SubscriptionIndex::Stats stats = index.ComputeStats();
  // Full coverage is recorded once at the root; no refinement.
  EXPECT_EQ(stats.nodes, 1u);
  EXPECT_EQ(stats.full_entries, 1u);
  EXPECT_EQ(stats.partial_entries, 0u);
}

TEST(SubscriptionIndexTest, RandomizedAgainstBruteForce) {
  Pcg32 rng = RngStreamFamily(20260807).MakeStream(0);
  SubscriptionIndex index(UnitDomain(), /*max_depth=*/6);
  std::vector<std::pair<uint64_t, Box2>> live;
  for (int round = 0; round < 200; ++round) {
    double action = rng.NextDouble();
    if (action < 0.6 || live.empty()) {
      double lox = rng.NextDouble() * 0.9;
      double loy = rng.NextDouble() * 0.9;
      double w = rng.NextDouble() * (1.0 - lox);
      double h = rng.NextDouble() * (1.0 - loy);
      Box2 box(Point2(lox, loy), Point2(lox + w, loy + h));
      StatusOr<uint64_t> id = index.Subscribe(box);
      if (id.ok()) live.emplace_back(ValueOrDie(std::move(id)), box);
    } else {
      size_t victim = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(index.Unsubscribe(live[victim].first).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    Point2 probe(rng.NextDouble(), rng.NextDouble());
    std::vector<uint64_t> expected;
    for (const auto& [id, box] : live) {
      if (box.Contains(probe)) expected.push_back(id);
    }
    // `live` grows by appending fresh (larger) ids, so it is already in
    // ascending id order — exactly what Match promises.
    EXPECT_EQ(MatchIds(index, probe), expected) << "round " << round;
  }
  ASSERT_TRUE(index.CheckInvariants().ok());
}

}  // namespace
}  // namespace popan::server
