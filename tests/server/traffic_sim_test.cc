// Traffic simulator determinism: the whole point of the counter-based
// RNG streams and snapshot reads is that a run's transcripts are a pure
// function of the config — the reader thread count must not leak into a
// single checksum bit.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "server/traffic_sim.h"

namespace popan::server {
namespace {

TrafficConfig BaseConfig(uint64_t seed) {
  TrafficConfig config;
  config.clients = 4;
  config.steps = 48;
  config.seed = seed;
  return config;
}

void ExpectSameResult(const TrafficResult& a, const TrafficResult& b) {
  EXPECT_EQ(a.combined_checksum, b.combined_checksum);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.total_notifications, b.total_notifications);
  EXPECT_EQ(a.final_size, b.final_size);
  EXPECT_EQ(a.final_sequence, b.final_sequence);
  ASSERT_EQ(a.transcripts.size(), b.transcripts.size());
  for (size_t c = 0; c < a.transcripts.size(); ++c) {
    EXPECT_EQ(a.transcripts[c].request_checksum,
              b.transcripts[c].request_checksum) << "client " << c;
    EXPECT_EQ(a.transcripts[c].response_checksum,
              b.transcripts[c].response_checksum) << "client " << c;
    EXPECT_EQ(a.transcripts[c].notification_checksum,
              b.transcripts[c].notification_checksum) << "client " << c;
    EXPECT_EQ(a.transcripts[c].responses_error,
              b.transcripts[c].responses_error) << "client " << c;
    EXPECT_EQ(a.transcripts[c].notifications,
              b.transcripts[c].notifications) << "client " << c;
  }
}

TEST(TrafficSimTest, RunTouchesEveryRequestKind) {
  TrafficConfig config = BaseConfig(7);
  config.steps = 128;
  TrafficResult result = RunTraffic(config);
  EXPECT_EQ(result.total_requests, config.clients * config.steps);
  EXPECT_GT(result.total_notifications, 0u);
  EXPECT_GT(result.final_size, 0u);
  EXPECT_GT(result.final_sequence, result.final_size);  // erases happened
  uint64_t ok = 0;
  for (const ClientTranscript& t : result.transcripts) {
    EXPECT_EQ(t.requests, config.steps);
    ok += t.responses_ok;
  }
  EXPECT_GT(ok, 0u);
}

TEST(TrafficSimTest, SameSeedSameResult) {
  TrafficResult a = RunTraffic(BaseConfig(42));
  TrafficResult b = RunTraffic(BaseConfig(42));
  ExpectSameResult(a, b);
}

TEST(TrafficSimTest, BitIdenticalAcrossReaderThreadCounts) {
  // The determinism contract the CI server job enforces at scale: 0
  // (inline), 2, and 4 reader threads must produce identical transcripts
  // — including notification checksums, which pin delivery order.
  for (uint64_t seed : {0ULL, 1ULL, 97ULL}) {
    TrafficConfig inline_config = BaseConfig(seed);
    inline_config.reader_threads = 0;
    TrafficResult reference = RunTraffic(inline_config);
    for (size_t threads : {2u, 4u}) {
      TrafficConfig threaded = inline_config;
      threaded.reader_threads = threads;
      TrafficResult result = RunTraffic(threaded);
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " threads " << threads);
      ExpectSameResult(reference, result);
    }
  }
}

TEST(TrafficSimTest, SeedSweepMatrix) {
  // The CI server job's determinism matrix: POPAN_TRAFFIC_SEEDS seeds
  // (default 4 locally, 64 in CI) x {1, 4, 16} clients, inline vs
  // threaded reads, every transcript bit-identical.
  size_t seeds = 4;
  if (const char* env = std::getenv("POPAN_TRAFFIC_SEEDS")) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) seeds = parsed;
  }
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    for (size_t clients : {1u, 4u, 16u}) {
      TrafficConfig config;
      config.clients = clients;
      config.steps = 32;
      config.seed = seed;
      config.reader_threads = 0;
      TrafficResult reference = RunTraffic(config);
      config.reader_threads = 4;
      TrafficResult threaded = RunTraffic(config);
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " clients " << clients);
      ExpectSameResult(reference, threaded);
    }
  }
}

TEST(TrafficSimTest, DifferentSeedsDiverge) {
  TrafficResult a = RunTraffic(BaseConfig(1));
  TrafficResult b = RunTraffic(BaseConfig(2));
  EXPECT_NE(a.combined_checksum, b.combined_checksum);
}

TEST(TrafficSimTest, ClientCountChangesTraffic) {
  TrafficConfig one = BaseConfig(5);
  one.clients = 1;
  TrafficConfig many = BaseConfig(5);
  many.clients = 8;
  TrafficResult a = RunTraffic(one);
  TrafficResult b = RunTraffic(many);
  EXPECT_EQ(a.total_requests, one.steps);
  EXPECT_EQ(b.total_requests, many.clients * many.steps);
  EXPECT_NE(a.combined_checksum, b.combined_checksum);
}

}  // namespace
}  // namespace popan::server
