// ServerCore over ShardStoreBackend: the sharded store behind the
// unchanged wire protocol. Every answer's POINTS must be bitwise equal
// to the single-tree backend's (the canonical-merge contract); write
// status codes, sequence stamps, and batch accounting must match too.
// Cost counters are exempt — they sum per-shard traversals.

#include "server/shard_store.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/protocol.h"
#include "server/server_core.h"
#include "shard/router.h"
#include "spatial/pr_tree.h"
#include "testing/statusor_testing.h"
#include "util/random.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;
using popan::ValueOrDie;

Box2 UnitDomain() { return Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)); }

spatial::PrTreeOptions SmallTree() {
  spatial::PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 12;
  return options;
}

/// A single-tree core and a sharded core driven in lockstep, plus a raw
/// handle to the router so tests can force splits/merges mid-stream.
struct BackendPair {
  std::unique_ptr<ServerCore> single;
  std::unique_ptr<ServerCore> sharded;
  shard::ShardRouter* router = nullptr;
  uint64_t single_client = 0;
  uint64_t sharded_client = 0;
};

BackendPair MakePair() {
  BackendPair pair;
  pair.single = std::make_unique<ServerCore>(UnitDomain(), SmallTree());
  shard::RouterOptions router_options;
  router_options.tree = SmallTree();
  auto router =
      std::make_unique<shard::ShardRouter>(UnitDomain(), router_options);
  pair.router = router.get();
  pair.sharded = std::make_unique<ServerCore>(
      std::make_unique<ShardStoreBackend>(std::move(router)));
  pair.single_client = pair.single->OpenClient();
  pair.sharded_client = pair.sharded->OpenClient();
  return pair;
}

Response Ask(ServerCore* core, const Request& request) {
  PreparedRead prepared = ValueOrDie(core->PrepareRead(request));
  return ServerCore::CompleteRead(prepared);
}

void ExpectSameAnswer(BackendPair* pair, const Request& request) {
  Response a = Ask(pair->single.get(), request);
  Response b = Ask(pair->sharded.get(), request);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.sequence, b.sequence);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i], b.points[i]) << "divergence at point " << i;
  }
}

TEST(ShardBackendTest, QueriesMatchSingleTreeAcrossSplitsAndMerges) {
  BackendPair pair = MakePair();
  Pcg32 rng(211);
  std::vector<Point2> points;
  for (int i = 0; i < 400; ++i) {
    points.emplace_back(rng.NextDouble(), rng.NextDouble());
  }
  auto write = [&](const Request& r) {
    pair.single->HandleRequest(pair.single_client, r);
    pair.sharded->HandleRequest(pair.sharded_client, r);
  };
  Request insert;
  insert.type = MsgType::kInsert;
  for (size_t i = 0; i < points.size(); ++i) {
    insert.point = points[i];
    write(insert);
    if (i == 100) {
      ASSERT_TRUE(pair.router->SplitShard(0).ok());
    }
    if (i == 200) {
      ASSERT_TRUE(pair.router->SplitShard(1).ok());
    }
    if (i == 300) {
      ASSERT_TRUE(pair.router->MergeShards(0).ok());
    }
  }
  ASSERT_GT(pair.router->shard_count(), 1u);
  EXPECT_EQ(pair.single->sequence(), pair.sharded->sequence());
  EXPECT_EQ(pair.single->size(), pair.sharded->size());

  for (int trial = 0; trial < 25; ++trial) {
    Point2 lo(rng.NextDouble(0.0, 0.8), rng.NextDouble(0.0, 0.8));
    Request range;
    range.type = MsgType::kRange;
    range.box = Box2(lo, Point2(lo.x() + rng.NextDouble(0.05, 0.4),
                                lo.y() + rng.NextDouble(0.05, 0.4)));
    ExpectSameAnswer(&pair, range);

    Request partial;
    partial.type = MsgType::kPartialMatch;
    partial.axis = trial % 2;
    partial.value = points[static_cast<size_t>(trial) * 7].x();
    ExpectSameAnswer(&pair, partial);

    Request knn;
    knn.type = MsgType::kNearestK;
    knn.point = Point2(rng.NextDouble(), rng.NextDouble());
    knn.k = 1 + trial;
    ExpectSameAnswer(&pair, knn);
  }

  // Census: the merged census aggregates per-shard trees, so structure
  // counters differ, but size and sequence are backend-invariant.
  Request census;
  census.type = MsgType::kCensus;
  Response a = Ask(pair.single.get(), census);
  Response b = Ask(pair.sharded.get(), census);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.sequence, b.sequence);

  // predicted_nodes rides along on sharded range answers too.
  Request range;
  range.type = MsgType::kRange;
  range.box = Box2(Point2(0.2, 0.2), Point2(0.4, 0.4));
  EXPECT_GT(Ask(pair.sharded.get(), range).predicted_nodes, 0.0);
}

TEST(ShardBackendTest, WriteErrorsAndBatchAccountingMatch) {
  BackendPair pair = MakePair();
  auto both = [&](const Request& r) {
    pair.single->HandleRequest(pair.single_client, r);
    pair.sharded->HandleRequest(pair.sharded_client, r);
    std::string a = pair.single->TakeOutput(pair.single_client);
    std::string b = pair.sharded->TakeOutput(pair.sharded_client);
    size_t offset = 0;
    std::string_view payload;
    Status error;
    EXPECT_TRUE(NextFrame(a, &offset, &payload, &error));
    Response ra = ValueOrDie(DecodeResponsePayload(payload));
    offset = 0;
    EXPECT_TRUE(NextFrame(b, &offset, &payload, &error));
    Response rb = ValueOrDie(DecodeResponsePayload(payload));
    EXPECT_EQ(ra.status, rb.status);
    EXPECT_EQ(ra.sequence, rb.sequence);
    EXPECT_EQ(ra.inserted, rb.inserted);
    EXPECT_EQ(ra.duplicates, rb.duplicates);
    EXPECT_EQ(ra.rejected, rb.rejected);
    return std::pair<Response, Response>(ra, rb);
  };

  Request insert;
  insert.type = MsgType::kInsert;
  insert.point = Point2(0.5, 0.5);
  both(insert);
  // Duplicate -> AlreadyExists on both; no sequence burned.
  auto [dup_a, dup_b] = both(insert);
  EXPECT_EQ(dup_a.status, static_cast<uint8_t>(StatusCode::kAlreadyExists));
  // NaN -> InvalidArgument before either backend is touched.
  insert.point =
      Point2(std::numeric_limits<double>::quiet_NaN(), 0.5);
  auto [nan_a, nan_b] = both(insert);
  EXPECT_EQ(nan_a.status,
            static_cast<uint8_t>(StatusCode::kInvalidArgument));
  // Out-of-domain -> OutOfRange from both backends.
  insert.point = Point2(2.0, 2.0);
  both(insert);
  // Erase of a missing point -> NotFound.
  Request erase;
  erase.type = MsgType::kErase;
  erase.point = Point2(0.9, 0.9);
  auto [miss_a, miss_b] = both(erase);
  EXPECT_EQ(miss_a.status, static_cast<uint8_t>(StatusCode::kNotFound));
  // Batch: mixed duplicates and rejects account identically.
  Request batch;
  batch.type = MsgType::kInsertBatch;
  batch.batch = {Point2(0.1, 0.1), Point2(0.5, 0.5), Point2(3.0, 3.0),
                 Point2(0.2, 0.2)};
  auto [batch_a, batch_b] = both(batch);
  EXPECT_EQ(batch_a.inserted, 2u);
  EXPECT_EQ(batch_a.duplicates, 1u);
  EXPECT_EQ(batch_a.rejected, 1u);
  EXPECT_EQ(pair.single->sequence(), pair.sharded->sequence());
}

TEST(ShardBackendTest, PreparedReadPinsAcrossARebalance) {
  BackendPair pair = MakePair();
  Pcg32 rng(223);
  Request insert;
  insert.type = MsgType::kInsert;
  for (int i = 0; i < 100; ++i) {
    insert.point = Point2(rng.NextDouble(), rng.NextDouble());
    pair.sharded->HandleRequest(pair.sharded_client, insert);
  }
  Request all;
  all.type = MsgType::kRange;
  all.box = UnitDomain();
  PreparedRead pinned = ValueOrDie(pair.sharded->PrepareRead(all));
  // Split the map and keep writing; the pinned view must not move.
  ASSERT_TRUE(pair.router->SplitShard(0).ok());
  insert.point = Point2(0.5, 0.123456);
  pair.sharded->HandleRequest(pair.sharded_client, insert);
  Response before = ServerCore::CompleteRead(pinned);
  EXPECT_EQ(before.points.size(), 100u);
  EXPECT_EQ(before.sequence, 100u);
  Response after = Ask(pair.sharded.get(), all);
  EXPECT_EQ(after.points.size(), 101u);
}

}  // namespace
}  // namespace popan::server
