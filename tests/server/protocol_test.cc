// Wire-format round trips and adversarial payloads for the query-server
// protocol. Every request/response/notification shape must survive
// encode -> frame split -> decode bit-for-bit, and every malformed byte
// string must come back as a typed error, never a crash or a bogus
// message.

#include <cmath>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/protocol.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;

/// Splits one complete frame and checks nothing is left over.
std::string_view OnlyPayload(const std::string& frame) {
  size_t offset = 0;
  std::string_view payload;
  Status error;
  EXPECT_TRUE(NextFrame(frame, &offset, &payload, &error));
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(offset, frame.size());
  return payload;
}

TEST(ProtocolTest, InsertRoundTrip) {
  Request request;
  request.type = MsgType::kInsert;
  request.point = Point2(0.125, 0.875);
  std::string frame = EncodeRequestFrame(request);
  Request decoded = ValueOrDie(DecodeRequestPayload(OnlyPayload(frame)));
  EXPECT_EQ(decoded.type, MsgType::kInsert);
  EXPECT_EQ(decoded.point.x(), 0.125);
  EXPECT_EQ(decoded.point.y(), 0.875);
}

TEST(ProtocolTest, EveryRequestTypeRoundTrips) {
  std::vector<Request> requests;
  Request r;
  r.type = MsgType::kErase;
  r.point = Point2(0.5, 0.25);
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kInsertBatch;
  r.batch = {Point2(0.1, 0.2), Point2(0.3, 0.4), Point2(0.5, 0.6)};
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kRange;
  r.box = Box2(Point2(0.1, 0.2), Point2(0.7, 0.9));
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kPartialMatch;
  r.axis = 1;
  r.value = 0.625;
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kNearestK;
  r.point = Point2(0.9, 0.1);
  r.k = 7;
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kCensus;
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kSubscribe;
  r.box = Box2(Point2(0.0, 0.0), Point2(0.5, 0.5));
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kUnsubscribe;
  r.sub_id = 0xdeadbeefcafeULL;
  requests.push_back(r);
  r = Request();
  r.type = MsgType::kPing;
  requests.push_back(r);

  for (const Request& request : requests) {
    std::string frame = EncodeRequestFrame(request);
    Request decoded = ValueOrDie(DecodeRequestPayload(OnlyPayload(frame)));
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.point.x(), request.point.x());
    EXPECT_EQ(decoded.point.y(), request.point.y());
    EXPECT_EQ(decoded.batch.size(), request.batch.size());
    EXPECT_EQ(decoded.box, request.box);
    EXPECT_EQ(decoded.axis, request.axis);
    EXPECT_EQ(decoded.value, request.value);
    EXPECT_EQ(decoded.k, request.k);
    EXPECT_EQ(decoded.sub_id, request.sub_id);
  }
}

TEST(ProtocolTest, ResponseShapesRoundTrip) {
  Response response;
  response.type = ResponseTypeFor(MsgType::kRange);
  response.sequence = 42;
  response.cost.nodes_visited = 10;
  response.cost.leaves_touched = 4;
  response.cost.points_scanned = 17;
  response.cost.pruned_subtrees = 3;
  response.predicted_nodes = 9.25;
  response.points = {Point2(0.25, 0.75), Point2(0.5, 0.5)};
  Response decoded = ValueOrDie(
      DecodeResponsePayload(OnlyPayload(EncodeResponseFrame(response))));
  EXPECT_EQ(decoded.type, response.type);
  EXPECT_EQ(decoded.status, 0);
  EXPECT_EQ(decoded.cost, response.cost);
  EXPECT_EQ(decoded.predicted_nodes, 9.25);
  ASSERT_EQ(decoded.points.size(), 2u);
  EXPECT_EQ(decoded.points[1].x(), 0.5);

  Response census;
  census.type = ResponseTypeFor(MsgType::kCensus);
  census.sequence = 9;
  census.size = 100;
  census.leaf_count = 31;
  census.max_depth = 5;
  census.average_occupancy = 3.25;
  decoded = ValueOrDie(
      DecodeResponsePayload(OnlyPayload(EncodeResponseFrame(census))));
  EXPECT_EQ(decoded.sequence, 9u);
  EXPECT_EQ(decoded.size, 100u);
  EXPECT_EQ(decoded.leaf_count, 31u);
  EXPECT_EQ(decoded.max_depth, 5u);
  EXPECT_EQ(decoded.average_occupancy, 3.25);

  Response error;
  error.type = ResponseTypeFor(MsgType::kInsert);
  error.status = static_cast<uint8_t>(StatusCode::kOutOfRange);
  error.message = "outside the domain";
  decoded = ValueOrDie(
      DecodeResponsePayload(OnlyPayload(EncodeResponseFrame(error))));
  EXPECT_EQ(decoded.status, static_cast<uint8_t>(StatusCode::kOutOfRange));
  EXPECT_EQ(decoded.message, "outside the domain");
}

TEST(ProtocolTest, NotificationRoundTrip) {
  Notification notification;
  notification.sub_id = 77;
  notification.op = 'E';
  notification.point = Point2(0.375, 0.625);
  notification.sequence = 1234;
  Notification decoded = ValueOrDie(DecodeNotificationPayload(
      OnlyPayload(EncodeNotificationFrame(notification))));
  EXPECT_EQ(decoded.sub_id, 77u);
  EXPECT_EQ(decoded.op, 'E');
  EXPECT_EQ(decoded.point.x(), 0.375);
  EXPECT_EQ(decoded.sequence, 1234u);
}

TEST(ProtocolTest, PartialFramesWaitForMoreBytes) {
  Request request;
  request.type = MsgType::kInsert;
  request.point = Point2(0.5, 0.5);
  std::string frame = EncodeRequestFrame(request);
  // Every proper prefix must report "need more", never an error.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string_view partial(frame.data(), cut);
    size_t offset = 0;
    std::string_view payload;
    Status error;
    EXPECT_FALSE(NextFrame(partial, &offset, &payload, &error));
    EXPECT_TRUE(error.ok()) << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(ProtocolTest, PipelinedFramesSplitInOrder) {
  Request a;
  a.type = MsgType::kPing;
  Request b;
  b.type = MsgType::kCensus;
  Request c;
  c.type = MsgType::kNearestK;
  c.point = Point2(0.1, 0.9);
  c.k = 3;
  std::string stream = EncodeRequestFrame(a) + EncodeRequestFrame(b) +
                       EncodeRequestFrame(c);
  size_t offset = 0;
  std::string_view payload;
  Status error;
  ASSERT_TRUE(NextFrame(stream, &offset, &payload, &error));
  EXPECT_EQ(ValueOrDie(DecodeRequestPayload(payload)).type, MsgType::kPing);
  ASSERT_TRUE(NextFrame(stream, &offset, &payload, &error));
  EXPECT_EQ(ValueOrDie(DecodeRequestPayload(payload)).type,
            MsgType::kCensus);
  ASSERT_TRUE(NextFrame(stream, &offset, &payload, &error));
  EXPECT_EQ(ValueOrDie(DecodeRequestPayload(payload)).k, 3u);
  EXPECT_FALSE(NextFrame(stream, &offset, &payload, &error));
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(offset, stream.size());
}

TEST(ProtocolTest, OversizedLengthPoisonsTheStream) {
  std::string frame;
  AppendU32(&frame, kMaxPayloadBytes + 1);
  frame += std::string(16, 'x');
  size_t offset = 0;
  std::string_view payload;
  Status error;
  EXPECT_FALSE(NextFrame(frame, &offset, &payload, &error));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, MalformedPayloadsAreTypedErrors) {
  // Unknown type byte.
  EXPECT_EQ(DecodeRequestPayload("\x7f").status().code(),
            StatusCode::kInvalidArgument);
  // Empty payload.
  EXPECT_EQ(DecodeRequestPayload("").status().code(),
            StatusCode::kInvalidArgument);
  // Truncated insert body.
  std::string insert;
  AppendU8(&insert, static_cast<uint8_t>(MsgType::kInsert));
  AppendF64(&insert, 0.5);
  EXPECT_EQ(DecodeRequestPayload(insert).status().code(),
            StatusCode::kInvalidArgument);
  // Trailing garbage after a valid body.
  Request ping;
  ping.type = MsgType::kPing;
  std::string frame = EncodeRequestFrame(ping);
  std::string payload(OnlyPayload(frame));
  payload += 'x';
  EXPECT_EQ(DecodeRequestPayload(payload).status().code(),
            StatusCode::kInvalidArgument);
  // Non-finite coordinates.
  std::string nan_insert;
  AppendU8(&nan_insert, static_cast<uint8_t>(MsgType::kInsert));
  AppendF64(&nan_insert, std::numeric_limits<double>::quiet_NaN());
  AppendF64(&nan_insert, 0.5);
  EXPECT_EQ(DecodeRequestPayload(nan_insert).status().code(),
            StatusCode::kInvalidArgument);
  // Inverted box (would DCHECK inside geo::Box2 if it got through).
  std::string bad_box;
  AppendU8(&bad_box, static_cast<uint8_t>(MsgType::kRange));
  AppendF64(&bad_box, 0.9);
  AppendF64(&bad_box, 0.9);
  AppendF64(&bad_box, 0.1);
  AppendF64(&bad_box, 0.1);
  EXPECT_EQ(DecodeRequestPayload(bad_box).status().code(),
            StatusCode::kInvalidArgument);
  // Batch whose count disagrees with the bytes present.
  std::string lying_batch;
  AppendU8(&lying_batch, static_cast<uint8_t>(MsgType::kInsertBatch));
  AppendU32(&lying_batch, 1000);
  AppendF64(&lying_batch, 0.5);
  AppendF64(&lying_batch, 0.5);
  EXPECT_EQ(DecodeRequestPayload(lying_batch).status().code(),
            StatusCode::kInvalidArgument);
  // k outside [1, kMaxKnnK].
  std::string huge_k;
  AppendU8(&huge_k, static_cast<uint8_t>(MsgType::kNearestK));
  AppendF64(&huge_k, 0.5);
  AppendF64(&huge_k, 0.5);
  AppendU32(&huge_k, kMaxKnnK + 1);
  EXPECT_EQ(DecodeRequestPayload(huge_k).status().code(),
            StatusCode::kInvalidArgument);
  // A notification type byte is not a request.
  std::string notif;
  AppendU8(&notif, static_cast<uint8_t>(MsgType::kNotification));
  EXPECT_EQ(DecodeRequestPayload(notif).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace popan::server
