// ServerCore: frame pipelining, write/notify routing, WAL lockstep,
// snapshot-isolated reads, and recovery seeding.

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/protocol.h"
#include "server/server_core.h"
#include "spatial/pr_tree.h"
#include "spatial/wal.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;
using popan::ValueOrDie;

Box2 UnitDomain() { return Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)); }

spatial::PrTreeOptions SmallTree() {
  spatial::PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 12;
  return options;
}

/// A decoded outbox entry: exactly one of response / notification.
struct OutFrame {
  bool is_notification = false;
  Response response;
  Notification notification;
};

std::vector<OutFrame> DrainFrames(ServerCore* core, uint64_t client_id) {
  std::string bytes = core->TakeOutput(client_id);
  std::vector<OutFrame> frames;
  size_t offset = 0;
  std::string_view payload;
  Status error;
  while (NextFrame(bytes, &offset, &payload, &error)) {
    OutFrame frame;
    if (!payload.empty() &&
        static_cast<uint8_t>(payload[0]) ==
            static_cast<uint8_t>(MsgType::kNotification)) {
      frame.is_notification = true;
      frame.notification = ValueOrDie(DecodeNotificationPayload(payload));
    } else {
      frame.response = ValueOrDie(DecodeResponsePayload(payload));
    }
    frames.push_back(std::move(frame));
  }
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(offset, bytes.size());
  return frames;
}

std::string Frame(const Request& request) {
  return EncodeRequestFrame(request);
}

Request Insert(double x, double y) {
  Request r;
  r.type = MsgType::kInsert;
  r.point = Point2(x, y);
  return r;
}

Request Range(const Box2& box) {
  Request r;
  r.type = MsgType::kRange;
  r.box = box;
  return r;
}

TEST(ServerCoreTest, PipelinedBurstAnsweredInOrder) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  Request census;
  census.type = MsgType::kCensus;
  // One burst: three inserts, a duplicate, a range, a census.
  std::string burst = Frame(Insert(0.1, 0.1)) + Frame(Insert(0.2, 0.2)) +
                      Frame(Insert(0.8, 0.8)) + Frame(Insert(0.1, 0.1)) +
                      Frame(Range(Box2(Point2(0.0, 0.0),
                                       Point2(0.5, 0.5)))) +
                      Frame(census);
  ASSERT_TRUE(core.ConsumeBytes(client, burst).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[0].response.sequence, 1u);
  EXPECT_EQ(frames[1].response.sequence, 2u);
  EXPECT_EQ(frames[2].response.sequence, 3u);
  EXPECT_EQ(frames[3].response.status,
            static_cast<uint8_t>(StatusCode::kAlreadyExists));
  EXPECT_EQ(frames[4].response.points.size(), 2u);
  EXPECT_EQ(frames[5].response.size, 3u);
  EXPECT_EQ(frames[5].response.sequence, 3u);
  // The burst is fully drained; nothing left.
  EXPECT_TRUE(core.TakeOutput(client).empty());
  EXPECT_TRUE(core.ClientsWithOutput().empty());
}

TEST(ServerCoreTest, SplitFrameAcrossConsumeCalls) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  std::string frame = Frame(Insert(0.3, 0.7));
  // Deliver byte by byte: no response until the frame completes.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    ASSERT_TRUE(
        core.ConsumeBytes(client, std::string_view(&frame[i], 1)).ok());
    EXPECT_TRUE(core.TakeOutput(client).empty());
  }
  ASSERT_TRUE(
      core.ConsumeBytes(client, std::string_view(&frame.back(), 1)).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].response.sequence, 1u);
}

TEST(ServerCoreTest, MalformedPayloadKeepsStreamAlive) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  // A syntactically framed but semantically broken payload (truncated
  // insert body), followed by a valid ping in the same burst.
  std::string bad_payload;
  AppendU8(&bad_payload, static_cast<uint8_t>(MsgType::kInsert));
  AppendF64(&bad_payload, 0.5);
  std::string bad_frame;
  AppendU32(&bad_frame, static_cast<uint32_t>(bad_payload.size()));
  bad_frame += bad_payload;
  Request ping;
  ping.type = MsgType::kPing;
  ASSERT_TRUE(core.ConsumeBytes(client, bad_frame + Frame(ping)).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].response.status,
            static_cast<uint8_t>(StatusCode::kInvalidArgument));
  EXPECT_EQ(frames[0].response.type, ResponseTypeFor(MsgType::kInsert));
  EXPECT_EQ(frames[1].response.status, 0);
  EXPECT_EQ(frames[1].response.type, ResponseTypeFor(MsgType::kPing));
}

TEST(ServerCoreTest, OversizedFramePoisonsTheConnection) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  std::string poison;
  AppendU32(&poison, kMaxPayloadBytes + 1);
  EXPECT_EQ(core.ConsumeBytes(client, poison).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServerCoreTest, NotificationsRouteToSubscribersOnly) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t watcher = core.OpenClient();
  uint64_t writer = core.OpenClient();
  Request subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.box = Box2(Point2(0.0, 0.0), Point2(0.5, 0.5));
  ASSERT_TRUE(core.ConsumeBytes(watcher, Frame(subscribe)).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, watcher);
  ASSERT_EQ(frames.size(), 1u);
  uint64_t sub_id = frames[0].response.sub_id;
  EXPECT_GT(sub_id, 0u);

  // Writer inserts one point inside the watched box and one outside,
  // then erases the inside one.
  Request erase = Insert(0.25, 0.25);
  erase.type = MsgType::kErase;
  ASSERT_TRUE(core.ConsumeBytes(writer, Frame(Insert(0.25, 0.25)) +
                                            Frame(Insert(0.75, 0.75)) +
                                            Frame(erase))
                  .ok());
  std::vector<OutFrame> writer_frames = DrainFrames(&core, writer);
  ASSERT_EQ(writer_frames.size(), 3u);
  for (const OutFrame& f : writer_frames) {
    EXPECT_FALSE(f.is_notification);  // writer has no subscription
    EXPECT_EQ(f.response.status, 0);
  }
  std::vector<OutFrame> watcher_frames = DrainFrames(&core, watcher);
  ASSERT_EQ(watcher_frames.size(), 2u);
  EXPECT_TRUE(watcher_frames[0].is_notification);
  EXPECT_EQ(watcher_frames[0].notification.sub_id, sub_id);
  EXPECT_EQ(watcher_frames[0].notification.op, 'I');
  EXPECT_EQ(watcher_frames[0].notification.point.x(), 0.25);
  EXPECT_EQ(watcher_frames[0].notification.sequence, 1u);
  EXPECT_EQ(watcher_frames[1].notification.op, 'E');
  EXPECT_EQ(watcher_frames[1].notification.sequence, 3u);
  EXPECT_EQ(core.notifications_sent(), 2u);
}

TEST(ServerCoreTest, SelfNotificationAndBatchWrites) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  Request subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.box = Box2(Point2(0.0, 0.0), Point2(1.0, 1.0));
  Request batch;
  batch.type = MsgType::kInsertBatch;
  batch.batch = {Point2(0.1, 0.1), Point2(0.1, 0.1), Point2(0.9, 0.9)};
  ASSERT_TRUE(
      core.ConsumeBytes(client, Frame(subscribe) + Frame(batch)).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  // subscribe response, two insert notifications (duplicate is silent),
  // then the batch response.
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_FALSE(frames[0].is_notification);
  EXPECT_TRUE(frames[1].is_notification);
  EXPECT_TRUE(frames[2].is_notification);
  EXPECT_FALSE(frames[3].is_notification);
  EXPECT_EQ(frames[3].response.inserted, 2u);
  EXPECT_EQ(frames[3].response.duplicates, 1u);
  EXPECT_EQ(frames[3].response.rejected, 0u);
  EXPECT_EQ(frames[3].response.sequence, 2u);
}

TEST(ServerCoreTest, UnsubscribeRequiresOwnership) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t owner = core.OpenClient();
  uint64_t thief = core.OpenClient();
  Request subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.box = Box2(Point2(0.0, 0.0), Point2(0.5, 0.5));
  ASSERT_TRUE(core.ConsumeBytes(owner, Frame(subscribe)).ok());
  uint64_t sub_id = DrainFrames(&core, owner)[0].response.sub_id;

  Request unsubscribe;
  unsubscribe.type = MsgType::kUnsubscribe;
  unsubscribe.sub_id = sub_id;
  ASSERT_TRUE(core.ConsumeBytes(thief, Frame(unsubscribe)).ok());
  EXPECT_EQ(DrainFrames(&core, thief)[0].response.status,
            static_cast<uint8_t>(StatusCode::kNotFound));
  // Still live: the owner can drop it.
  EXPECT_EQ(core.subscriptions().live_count(), 1u);
  ASSERT_TRUE(core.ConsumeBytes(owner, Frame(unsubscribe)).ok());
  EXPECT_EQ(DrainFrames(&core, owner)[0].response.status, 0);
  EXPECT_EQ(core.subscriptions().live_count(), 0u);
}

TEST(ServerCoreTest, CloseClientDropsItsSubscriptions) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t watcher = core.OpenClient();
  uint64_t writer = core.OpenClient();
  Request subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.box = Box2(Point2(0.0, 0.0), Point2(1.0, 1.0));
  ASSERT_TRUE(core.ConsumeBytes(watcher, Frame(subscribe)).ok());
  (void)DrainFrames(&core, watcher);
  ASSERT_TRUE(core.CloseClient(watcher).ok());
  EXPECT_EQ(core.subscriptions().live_count(), 0u);
  ASSERT_TRUE(core.ConsumeBytes(writer, Frame(Insert(0.5, 0.5))).ok());
  EXPECT_EQ(core.notifications_sent(), 0u);
  // Double close is an error, not a crash.
  EXPECT_EQ(core.CloseClient(watcher).code(), StatusCode::kNotFound);
}

TEST(ServerCoreTest, OutOfBoundsAndNonFiniteWritesAreRejected) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  Request outside = Insert(1.5, 0.5);
  Request nan_point = Insert(0.5, 0.5);
  nan_point.point = Point2(std::numeric_limits<double>::quiet_NaN(), 0.5);
  core.HandleRequest(client, outside);
  core.HandleRequest(client, nan_point);
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_NE(frames[0].response.status, 0);
  EXPECT_NE(frames[1].response.status, 0);
  EXPECT_EQ(core.size(), 0u);
  EXPECT_EQ(core.sequence(), 0u);  // rejected writes consume no sequence
}

TEST(ServerCoreTest, PreparedReadSeesItsSnapshotNotLaterWrites) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  ASSERT_TRUE(core.ConsumeBytes(client, Frame(Insert(0.2, 0.2))).ok());
  (void)DrainFrames(&core, client);
  PreparedRead prepared = ValueOrDie(
      core.PrepareRead(Range(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)))));
  // Writes that land after the pin must be invisible to the read.
  ASSERT_TRUE(core.ConsumeBytes(client, Frame(Insert(0.4, 0.4)) +
                                            Frame(Insert(0.6, 0.6)))
                  .ok());
  (void)DrainFrames(&core, client);
  Response response = ServerCore::CompleteRead(prepared);
  EXPECT_EQ(response.status, 0);
  EXPECT_EQ(response.points.size(), 1u);
  EXPECT_EQ(response.sequence, 1u);
  // A fresh read sees everything.
  PreparedRead fresh = ValueOrDie(
      core.PrepareRead(Range(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)))));
  EXPECT_EQ(ServerCore::CompleteRead(fresh).points.size(), 3u);
}

TEST(ServerCoreTest, WalStaysInLockstepAndReplays) {
  std::ostringstream log;
  spatial::PrTreeOptions options = SmallTree();
  {
    spatial::WalWriter wal(&log, UnitDomain(), options);
    ServerCore core(UnitDomain(), options, &wal);
    uint64_t client = core.OpenClient();
    Request erase = Insert(0.25, 0.75);
    erase.type = MsgType::kErase;
    ASSERT_TRUE(core.ConsumeBytes(client, Frame(Insert(0.25, 0.75)) +
                                              Frame(Insert(0.5, 0.5)) +
                                              Frame(erase))
                    .ok());
    (void)DrainFrames(&core, client);
    EXPECT_EQ(core.sequence(), 3u);
    EXPECT_EQ(wal.next_sequence(), 4u);
    // Rejected writes must not burn WAL sequence numbers either.
    ASSERT_TRUE(core.ConsumeBytes(client, Frame(Insert(2.0, 2.0))).ok());
    EXPECT_EQ(wal.next_sequence(), 4u);
  }
  spatial::WalRecovery recovery = ValueOrDie(spatial::ReplayWal(log.str()));
  EXPECT_EQ(recovery.last_sequence, 3u);
  EXPECT_EQ(recovery.records_applied, 3u);
  EXPECT_EQ(recovery.tree.size(), 1u);
  EXPECT_FALSE(recovery.truncated_tail);
}

TEST(ServerCoreTest, SeedPointsRebuildRecoveredState) {
  // Simulate a restart: 5 ops happened (4 inserts, 1 erase), 3 points
  // survive. The recovered core must answer queries over the survivors
  // and stamp new writes with sequence 6.
  std::vector<Point2> survivors = {Point2(0.1, 0.1), Point2(0.5, 0.5),
                                   Point2(0.9, 0.9)};
  ServerCore core(UnitDomain(), SmallTree(), /*wal=*/nullptr,
                  /*initial_sequence=*/5, survivors);
  EXPECT_EQ(core.sequence(), 5u);
  EXPECT_EQ(core.size(), 3u);
  uint64_t client = core.OpenClient();
  ASSERT_TRUE(core.ConsumeBytes(client, Frame(Insert(0.3, 0.3))).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].response.sequence, 6u);
  PreparedRead all = ValueOrDie(
      core.PrepareRead(Range(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)))));
  EXPECT_EQ(ServerCore::CompleteRead(all).points.size(), 4u);
}

TEST(ServerCoreTest, CensusAndKnnOverPipelinedState) {
  ServerCore core(UnitDomain(), SmallTree());
  uint64_t client = core.OpenClient();
  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += Frame(Insert(0.1 + 0.1 * i, 0.05 + 0.1 * i));
  }
  Request knn;
  knn.type = MsgType::kNearestK;
  knn.point = Point2(0.1, 0.05);
  knn.k = 3;
  Request census;
  census.type = MsgType::kCensus;
  burst += Frame(knn) + Frame(census);
  ASSERT_TRUE(core.ConsumeBytes(client, burst).ok());
  std::vector<OutFrame> frames = DrainFrames(&core, client);
  ASSERT_EQ(frames.size(), 10u);
  const Response& knn_response = frames[8].response;
  EXPECT_EQ(knn_response.status, 0);
  ASSERT_EQ(knn_response.points.size(), 3u);
  EXPECT_EQ(knn_response.points[0].x(), 0.1);  // the query point itself
  const Response& census_response = frames[9].response;
  EXPECT_EQ(census_response.size, 8u);
  EXPECT_GT(census_response.leaf_count, 0u);
}

}  // namespace
}  // namespace popan::server
