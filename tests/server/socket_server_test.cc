// End-to-end loopback test: real sockets, real poll loop, two clients,
// cross-connection notification delivery, clean shutdown.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/protocol.h"
#include "server/server_core.h"
#include "server/socket_server.h"
#include "spatial/pr_tree.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;
using popan::ValueOrDie;

/// Minimal blocking client for the test: connect, send frames, read
/// payloads one at a time.
class TestClient {
 public:
  bool Connect(uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf_bytes > 0) {
      // Shrink the receive window (before connect, so the handshake
      // advertises it): a non-draining peer then backs the server up into
      // its userspace pending_out queue within a few kilobytes.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  /// Close with SO_LINGER zero: the kernel sends RST instead of FIN, so
  /// the server's next send() hits a hard-dead socket.
  void HardClose() {
    struct linger hard {1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    Close();
  }

  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReceivePayload(std::string* payload) {
    for (;;) {
      size_t offset = 0;
      std::string_view view;
      Status error;
      if (NextFrame(buffer_, &offset, &view, &error)) {
        *payload = std::string(view);
        buffer_.erase(0, offset);
        return true;
      }
      if (!error.ok()) return false;
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  Response ReceiveResponse() {
    std::string payload;
    EXPECT_TRUE(ReceivePayload(&payload));
    return ValueOrDie(DecodeResponsePayload(payload));
  }

  Notification ReceiveNotification() {
    std::string payload;
    EXPECT_TRUE(ReceivePayload(&payload));
    return ValueOrDie(DecodeNotificationPayload(payload));
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(SocketServerTest, EndToEndWithNotificationsAndShutdown) {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  options.max_depth = 12;
  ServerCore core(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)), options);
  SocketServer server(&core);
  uint16_t port = ValueOrDie(server.Listen(0));
  ASSERT_GT(port, 0);
  // The transport needs a real dedicated thread: Serve() blocks in poll()
  // until RequestStop(), which a pooled task must never do.
  // popan-lint: allow(raw-thread-spawn)
  std::thread serve_thread([&server] {
    Status status = server.Serve();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });

  TestClient watcher;
  TestClient writer;
  ASSERT_TRUE(watcher.Connect(port));
  ASSERT_TRUE(writer.Connect(port));

  // Watcher subscribes to the lower-left quadrant.
  Request subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.box = Box2(Point2(0.0, 0.0), Point2(0.5, 0.5));
  ASSERT_TRUE(watcher.Send(EncodeRequestFrame(subscribe)));
  Response sub_response = watcher.ReceiveResponse();
  ASSERT_EQ(sub_response.status, 0);
  uint64_t sub_id = sub_response.sub_id;

  // Writer pipelines two inserts in a single send: one inside the
  // watched box, one outside.
  Request in_box;
  in_box.type = MsgType::kInsert;
  in_box.point = Point2(0.25, 0.25);
  Request out_of_box;
  out_of_box.type = MsgType::kInsert;
  out_of_box.point = Point2(0.75, 0.75);
  ASSERT_TRUE(writer.Send(EncodeRequestFrame(in_box) +
                          EncodeRequestFrame(out_of_box)));
  EXPECT_EQ(writer.ReceiveResponse().sequence, 1u);
  EXPECT_EQ(writer.ReceiveResponse().sequence, 2u);

  // The notification crosses connections without the watcher sending
  // anything.
  Notification notification = watcher.ReceiveNotification();
  EXPECT_EQ(notification.sub_id, sub_id);
  EXPECT_EQ(notification.op, 'I');
  EXPECT_EQ(notification.point.x(), 0.25);
  EXPECT_EQ(notification.sequence, 1u);

  // The watcher's own queries work over the new state.
  Request range;
  range.type = MsgType::kRange;
  range.box = Box2(Point2(0.0, 0.0), Point2(1.0, 1.0));
  ASSERT_TRUE(watcher.Send(EncodeRequestFrame(range)));
  EXPECT_EQ(watcher.ReceiveResponse().points.size(), 2u);

  // A client that disconnects takes its subscription with it.
  watcher.Close();
  ASSERT_TRUE(writer.Send(EncodeRequestFrame(in_box)));  // duplicate
  EXPECT_EQ(writer.ReceiveResponse().status,
            static_cast<uint8_t>(StatusCode::kAlreadyExists));

  server.RequestStop();
  serve_thread.join();
  EXPECT_EQ(core.notifications_sent(), 1u);
}

TEST(SocketServerTest, PoisonedStreamClosesOnlyThatConnection) {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  ServerCore core(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)), options);
  SocketServer server(&core);
  uint16_t port = ValueOrDie(server.Listen(0));
  // Dedicated transport thread (blocks in poll; see above).
  // popan-lint: allow(raw-thread-spawn)
  std::thread serve_thread([&server] { (void)server.Serve(); });

  TestClient good;
  TestClient evil;
  ASSERT_TRUE(good.Connect(port));
  ASSERT_TRUE(evil.Connect(port));

  // The evil client sends an oversized length prefix; the server must
  // hang up on it.
  std::string poison;
  AppendU32(&poison, kMaxPayloadBytes + 1);
  ASSERT_TRUE(evil.Send(poison));
  std::string dead;
  EXPECT_FALSE(evil.ReceivePayload(&dead));  // EOF from the server

  // The good client is unaffected.
  Request ping;
  ping.type = MsgType::kPing;
  ASSERT_TRUE(good.Send(EncodeRequestFrame(ping)));
  EXPECT_EQ(good.ReceiveResponse().type, ResponseTypeFor(MsgType::kPing));

  server.RequestStop();
  serve_thread.join();
}

/// Pipelines `count` inserts on distinct points and drains the
/// responses, leaving `count` points in the tree for fat range replies.
void InsertGrid(TestClient* writer, int count) {
  std::string batch;
  for (int i = 0; i < count; ++i) {
    Request insert;
    insert.type = MsgType::kInsert;
    insert.point = Point2(0.001 + (i % 30) * 0.033,
                          0.001 + (i / 30) * 0.033);
    batch += EncodeRequestFrame(insert);
  }
  ASSERT_TRUE(writer->Send(batch));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(writer->ReceiveResponse().status, 0) << i;
  }
}

TEST(SocketServerTest, DeadPeerWithQueuedOutputIsDroppedNotFatal) {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  ServerCore core(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)), options);
  SocketServer server(&core);
  uint16_t port = ValueOrDie(server.Listen(0));
  // Dedicated transport thread (blocks in poll; see above).
  // popan-lint: allow(raw-thread-spawn)
  std::thread serve_thread([&server] {
    Status status = server.Serve();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });

  TestClient good;
  TestClient writer;
  ASSERT_TRUE(good.Connect(port));
  ASSERT_TRUE(writer.Connect(port));
  InsertGrid(&writer, 300);

  // A hog with a tiny receive window pipelines 200 whole-box range
  // queries (~1 MB of replies) and never reads: the kernel absorbs a few
  // dozen KB, the rest parks in the server's pending_out for this
  // connection.
  TestClient hog;
  ASSERT_TRUE(hog.Connect(port, /*rcvbuf_bytes=*/4096));
  Request range;
  range.type = MsgType::kRange;
  range.box = Box2(Point2(0.0, 0.0), Point2(1.0, 1.0));
  std::string burst;
  for (int i = 0; i < 200; ++i) burst += EncodeRequestFrame(range);
  ASSERT_TRUE(hog.Send(burst));

  // Two round trips on another connection guarantee the server has been
  // through its poll loop and consumed the hog's burst.
  Request ping;
  ping.type = MsgType::kPing;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(good.Send(EncodeRequestFrame(ping)));
    EXPECT_EQ(good.ReceiveResponse().type, ResponseTypeFor(MsgType::kPing));
  }

  // The hog dies hard (RST) with output still queued. The server's next
  // flush send()s into the dead socket; without MSG_NOSIGNAL that raises
  // SIGPIPE and kills the whole process instead of one connection.
  hog.HardClose();

  // The server survives, drops only the hog, and keeps serving others.
  ASSERT_TRUE(good.Send(EncodeRequestFrame(ping)));
  EXPECT_EQ(good.ReceiveResponse().type, ResponseTypeFor(MsgType::kPing));
  ASSERT_TRUE(writer.Send(EncodeRequestFrame(range)));
  EXPECT_EQ(writer.ReceiveResponse().points.size(), 300u);

  server.RequestStop();
  serve_thread.join();
}

TEST(SocketServerTest, PendingOutputCapDropsNonDrainingConsumer) {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  ServerCore core(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)), options);
  // A deliberately small cap so the test backs it up in milliseconds.
  SocketServer server(&core, /*max_pending_out=*/32 * 1024);
  uint16_t port = ValueOrDie(server.Listen(0));
  // Dedicated transport thread (blocks in poll; see above).
  // popan-lint: allow(raw-thread-spawn)
  std::thread serve_thread([&server] { (void)server.Serve(); });

  TestClient good;
  TestClient writer;
  ASSERT_TRUE(good.Connect(port));
  ASSERT_TRUE(writer.Connect(port));
  InsertGrid(&writer, 300);

  // ~1 MB of replies against a 32 KB cap: far more than the cap plus
  // anything the kernel can buffer on a 4 KB receive window.
  TestClient hog;
  ASSERT_TRUE(hog.Connect(port, /*rcvbuf_bytes=*/4096));
  Request range;
  range.type = MsgType::kRange;
  range.box = Box2(Point2(0.0, 0.0), Point2(1.0, 1.0));
  std::string burst;
  for (int i = 0; i < 200; ++i) burst += EncodeRequestFrame(range);
  ASSERT_TRUE(hog.Send(burst));

  // The server must hang up on the hog rather than queue the megabyte:
  // the hog's read stream ends (EOF or reset) long before 200 replies.
  std::string payload;
  int received = 0;
  while (received < 200 && hog.ReceivePayload(&payload)) ++received;
  EXPECT_LT(received, 200);

  // Everyone else is unaffected.
  Request ping;
  ping.type = MsgType::kPing;
  ASSERT_TRUE(good.Send(EncodeRequestFrame(ping)));
  EXPECT_EQ(good.ReceiveResponse().type, ResponseTypeFor(MsgType::kPing));

  server.RequestStop();
  serve_thread.join();
}

}  // namespace
}  // namespace popan::server
