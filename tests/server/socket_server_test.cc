// End-to-end loopback test: real sockets, real poll loop, two clients,
// cross-connection notification delivery, clean shutdown.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/protocol.h"
#include "server/server_core.h"
#include "server/socket_server.h"
#include "spatial/pr_tree.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;
using popan::ValueOrDie;

/// Minimal blocking client for the test: connect, send frames, read
/// payloads one at a time.
class TestClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReceivePayload(std::string* payload) {
    for (;;) {
      size_t offset = 0;
      std::string_view view;
      Status error;
      if (NextFrame(buffer_, &offset, &view, &error)) {
        *payload = std::string(view);
        buffer_.erase(0, offset);
        return true;
      }
      if (!error.ok()) return false;
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  Response ReceiveResponse() {
    std::string payload;
    EXPECT_TRUE(ReceivePayload(&payload));
    return ValueOrDie(DecodeResponsePayload(payload));
  }

  Notification ReceiveNotification() {
    std::string payload;
    EXPECT_TRUE(ReceivePayload(&payload));
    return ValueOrDie(DecodeNotificationPayload(payload));
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(SocketServerTest, EndToEndWithNotificationsAndShutdown) {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  options.max_depth = 12;
  ServerCore core(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)), options);
  SocketServer server(&core);
  uint16_t port = ValueOrDie(server.Listen(0));
  ASSERT_GT(port, 0);
  std::thread serve_thread([&server] {
    Status status = server.Serve();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });

  TestClient watcher;
  TestClient writer;
  ASSERT_TRUE(watcher.Connect(port));
  ASSERT_TRUE(writer.Connect(port));

  // Watcher subscribes to the lower-left quadrant.
  Request subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.box = Box2(Point2(0.0, 0.0), Point2(0.5, 0.5));
  ASSERT_TRUE(watcher.Send(EncodeRequestFrame(subscribe)));
  Response sub_response = watcher.ReceiveResponse();
  ASSERT_EQ(sub_response.status, 0);
  uint64_t sub_id = sub_response.sub_id;

  // Writer pipelines two inserts in a single send: one inside the
  // watched box, one outside.
  Request in_box;
  in_box.type = MsgType::kInsert;
  in_box.point = Point2(0.25, 0.25);
  Request out_of_box;
  out_of_box.type = MsgType::kInsert;
  out_of_box.point = Point2(0.75, 0.75);
  ASSERT_TRUE(writer.Send(EncodeRequestFrame(in_box) +
                          EncodeRequestFrame(out_of_box)));
  EXPECT_EQ(writer.ReceiveResponse().sequence, 1u);
  EXPECT_EQ(writer.ReceiveResponse().sequence, 2u);

  // The notification crosses connections without the watcher sending
  // anything.
  Notification notification = watcher.ReceiveNotification();
  EXPECT_EQ(notification.sub_id, sub_id);
  EXPECT_EQ(notification.op, 'I');
  EXPECT_EQ(notification.point.x(), 0.25);
  EXPECT_EQ(notification.sequence, 1u);

  // The watcher's own queries work over the new state.
  Request range;
  range.type = MsgType::kRange;
  range.box = Box2(Point2(0.0, 0.0), Point2(1.0, 1.0));
  ASSERT_TRUE(watcher.Send(EncodeRequestFrame(range)));
  EXPECT_EQ(watcher.ReceiveResponse().points.size(), 2u);

  // A client that disconnects takes its subscription with it.
  watcher.Close();
  ASSERT_TRUE(writer.Send(EncodeRequestFrame(in_box)));  // duplicate
  EXPECT_EQ(writer.ReceiveResponse().status,
            static_cast<uint8_t>(StatusCode::kAlreadyExists));

  server.RequestStop();
  serve_thread.join();
  EXPECT_EQ(core.notifications_sent(), 1u);
}

TEST(SocketServerTest, PoisonedStreamClosesOnlyThatConnection) {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  ServerCore core(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)), options);
  SocketServer server(&core);
  uint16_t port = ValueOrDie(server.Listen(0));
  std::thread serve_thread([&server] { (void)server.Serve(); });

  TestClient good;
  TestClient evil;
  ASSERT_TRUE(good.Connect(port));
  ASSERT_TRUE(evil.Connect(port));

  // The evil client sends an oversized length prefix; the server must
  // hang up on it.
  std::string poison;
  AppendU32(&poison, kMaxPayloadBytes + 1);
  ASSERT_TRUE(evil.Send(poison));
  std::string dead;
  EXPECT_FALSE(evil.ReceivePayload(&dead));  // EOF from the server

  // The good client is unaffected.
  Request ping;
  ping.type = MsgType::kPing;
  ASSERT_TRUE(good.Send(EncodeRequestFrame(ping)));
  EXPECT_EQ(good.ReceiveResponse().type, ResponseTypeFor(MsgType::kPing));

  server.RequestStop();
  serve_thread.join();
}

}  // namespace
}  // namespace popan::server
