// BootWithWal: the durable server's startup matrix. The regression that
// motivated the extraction: booting with --wal pointed at an EMPTY file
// (the first-boot crash window — the process died after creating the
// log but before the header flushed) used to feed zero bytes to
// ReplayWal, fail with "unusable header", and brick the store forever.

#include "server/boot.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/server_core.h"
#include "spatial/pr_tree.h"
#include "testing/statusor_testing.h"
#include "util/status.h"

namespace popan::server {
namespace {

using geo::Box2;
using geo::Point2;
using popan::ValueOrDie;

Box2 UnitDomain() { return Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)); }

spatial::PrTreeOptions SmallTree() {
  spatial::PrTreeOptions options;
  options.capacity = 2;
  options.max_depth = 12;
  return options;
}

std::string WalPath(const std::string& name) {
  std::string path = testing::TempDir() + "/popan_boot_" + name + ".wal";
  std::remove(path.c_str());
  return path;
}

TEST(BootTest, MissingFileIsCreatedAsFreshBoot) {
  std::string path = WalPath("missing");
  BootResult boot = ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  EXPECT_TRUE(boot.fresh);
  EXPECT_EQ(boot.initial_sequence, 0u);
  EXPECT_TRUE(boot.seed_points.empty());
  ASSERT_TRUE(boot.wal.has_value());
  EXPECT_EQ(boot.wal->next_sequence(), 1u);
  // The header is on disk once flushed: a reboot resumes, not re-creates.
  ASSERT_TRUE(ValueOrDie(boot.wal->LogInsert(Point2(0.5, 0.5))) == 1u);
  boot.wal_stream->flush();
  BootResult again =
      ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  EXPECT_FALSE(again.fresh);
  EXPECT_EQ(again.initial_sequence, 1u);
  EXPECT_EQ(again.seed_points.size(), 1u);
}

TEST(BootTest, EmptyFileIsFreshBootNotCorruption) {
  // THE regression: an existing zero-byte log must boot, not brick.
  std::string path = WalPath("empty");
  { std::ofstream touch(path, std::ios::binary); }
  StatusOr<BootResult> booted = BootWithWal(path, UnitDomain(), SmallTree());
  ASSERT_TRUE(booted.ok()) << booted.status().ToString();
  BootResult boot = std::move(booted).value();
  EXPECT_TRUE(boot.fresh);
  EXPECT_EQ(boot.initial_sequence, 0u);
  // And the fresh log is genuinely usable end to end: serve a write
  // through ServerCore, then recover it on the next boot.
  {
    ServerCore core(UnitDomain(), SmallTree(), &*boot.wal);
    uint64_t client = core.OpenClient();
    Request insert;
    insert.type = MsgType::kInsert;
    insert.point = Point2(0.25, 0.75);
    core.HandleRequest(client, insert);
    EXPECT_EQ(core.sequence(), 1u);
    boot.wal_stream->flush();
  }
  BootResult recovered =
      ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  EXPECT_FALSE(recovered.fresh);
  EXPECT_EQ(recovered.initial_sequence, 1u);
  ASSERT_EQ(recovered.seed_points.size(), 1u);
  EXPECT_EQ(recovered.seed_points[0], Point2(0.25, 0.75));
}

TEST(BootTest, TornTailIsTruncatedAndResumed) {
  std::string path = WalPath("torn");
  BootResult boot = ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  ASSERT_TRUE(ValueOrDie(boot.wal->LogInsert(Point2(0.1, 0.1))) == 1u);
  ASSERT_TRUE(ValueOrDie(boot.wal->LogInsert(Point2(0.9, 0.9))) == 2u);
  boot.wal_stream->flush();
  {
    std::ofstream append(path, std::ios::binary | std::ios::app);
    append << "3 I 0.5";  // torn mid-record, no checksum, no newline
  }
  BootResult recovered =
      ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  EXPECT_FALSE(recovered.fresh);
  EXPECT_TRUE(recovered.truncated_tail);
  EXPECT_EQ(recovered.seed_points.size(), 2u);
  EXPECT_EQ(recovered.initial_sequence, 2u);
  // The resumed writer lands on a record boundary with the next
  // sequence; a third boot must see all three records intact.
  ASSERT_TRUE(ValueOrDie(recovered.wal->LogInsert(Point2(0.5, 0.5))) == 3u);
  recovered.wal_stream->flush();
  BootResult third = ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  EXPECT_FALSE(third.truncated_tail);
  EXPECT_EQ(third.seed_points.size(), 3u);
  EXPECT_EQ(third.initial_sequence, 3u);
}

TEST(BootTest, GeometryMismatchIsFailedPrecondition) {
  std::string path = WalPath("mismatch");
  BootResult boot = ValueOrDie(BootWithWal(path, UnitDomain(), SmallTree()));
  ASSERT_TRUE(ValueOrDie(boot.wal->LogInsert(Point2(0.5, 0.5))) == 1u);
  boot.wal_stream->flush();
  spatial::PrTreeOptions other = SmallTree();
  other.capacity = 7;
  StatusOr<BootResult> rebooted = BootWithWal(path, UnitDomain(), other);
  ASSERT_FALSE(rebooted.ok());
  EXPECT_EQ(rebooted.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace popan::server
