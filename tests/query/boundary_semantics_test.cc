// Boundary regression suite: points sitting exactly ON quadrant split
// lines, bucket boundaries, and query edges. Every point backend must
// apply the same half-open convention — a query box [lo, hi) includes its
// lo edges and excludes its hi edges, and a point on a split line belongs
// to the higher block — so a boundary point is reported exactly once,
// by every backend, never zero or twice.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "query/query.h"
#include "util/statusor.h"
#include "spatial/excell.h"
#include "spatial/extendible_hash.h"
#include "spatial/grid_file.h"
#include "spatial/linear_quadtree.h"
#include "spatial/mx_quadtree.h"
#include "spatial/point_quadtree.h"
#include "spatial/pr_tree.h"

namespace popan::query {
namespace {

using geo::Box2;
using geo::Point2;

// Data chosen to sit on every interesting boundary of the unit square's
// regular decomposition: the half/quarter split lines, the domain lo
// corner, and points adjacent to split lines on either side.
std::vector<Point2> BoundaryPoints() {
  return {
      Point2(0.0, 0.0),        // domain lo corner (always inside)
      Point2(0.5, 0.5),        // root split point
      Point2(0.5, 0.0),        // x split line
      Point2(0.0, 0.5),        // y split line
      Point2(0.25, 0.25),      // depth-2 split point
      Point2(0.75, 0.25),      //
      Point2(0.25, 0.75),      //
      Point2(0.75, 0.75),      //
      Point2(0.5, 0.25),       // mixed: x on root split, y on depth-2
      Point2(0.484375, 0.5),   // just left of the split (31/64)
      Point2(0.515625, 0.5),   // just right of the split (33/64)
      Point2(0.984375, 0.984375),  // near the (excluded) hi corner
  };
}

struct Backends {
  explicit Backends(const std::vector<Point2>& data)
      : pr_tree(Box2::UnitCube()),
        grid(Box2::UnitCube()),
        excell(Box2::UnitCube()),
        mx_tree(6),
        hash_table([] {
          spatial::ExtendibleHashOptions options;
          options.identity_hash = true;
          return options;
        }()) {
    for (const Point2& p : data) {
      EXPECT_TRUE(pr_tree.Insert(p).ok());
      EXPECT_TRUE(point_tree.Insert(p).ok());
      EXPECT_TRUE(grid.Insert(p).ok());
      EXPECT_TRUE(excell.Insert(p).ok());
      EXPECT_TRUE(
          mx_tree
              .Insert(static_cast<uint32_t>(p.x() * 64),
                      static_cast<uint32_t>(p.y() * 64))
              .ok());
      EXPECT_TRUE(hash_table.Insert(hash_backend.codec.Encode(p)).ok());
    }
    StatusOr<spatial::LinearPrQuadtree> loaded =
        spatial::LinearPrQuadtree::BulkLoad(Box2::UnitCube(), data);
    EXPECT_TRUE(loaded.ok());
    linear_tree = std::make_unique<spatial::LinearPrQuadtree>(
        std::move(loaded).value());
    mx_backend.tree = &mx_tree;
    hash_backend.table = &hash_table;
  }

  spatial::PrQuadtree pr_tree;
  spatial::PointQuadtree point_tree;
  std::unique_ptr<spatial::LinearPrQuadtree> linear_tree;
  spatial::GridFile grid;
  spatial::Excell excell;
  spatial::MxQuadtree mx_tree;
  spatial::ExtendibleHash hash_table;
  MxBackend mx_backend;
  HashBackend hash_backend;
};

// Runs `spec` on all seven backends and checks each returns exactly
// `expected` (already in canonical (x, y) order).
void ExpectAll(Backends& b, const QuerySpec& spec,
               const std::vector<Point2>& expected) {
  auto check = [&](const QueryResult& result, const char* name) {
    ASSERT_EQ(expected.size(), result.points.size())
        << name << " on " << spec.ToString();
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].x(), result.points[i].x())
          << name << " item " << i << " on " << spec.ToString();
      EXPECT_EQ(expected[i].y(), result.points[i].y())
          << name << " item " << i << " on " << spec.ToString();
    }
  };
  check(Execute(b.pr_tree, spec), "pr_tree");
  check(Execute(b.point_tree, spec), "point_quadtree");
  check(Execute(*b.linear_tree, spec), "linear_quadtree");
  check(Execute(b.grid, spec), "grid_file");
  check(Execute(b.excell, spec), "excell");
  check(Execute(b.mx_backend, spec), "mx_quadtree");
  check(Execute(b.hash_backend, spec), "extendible_hash");
}

std::vector<Point2> Sorted(std::vector<Point2> points) {
  std::sort(points.begin(), points.end(),
            [](const Point2& a, const Point2& b) {
              return a.x() != b.x() ? a.x() < b.x() : a.y() < b.y();
            });
  return points;
}

TEST(BoundarySemanticsTest, QueryLoEdgeIncludesPointsOnIt) {
  Backends b(BoundaryPoints());
  // lo edge at x = 0.5: the three points with x == 0.5 are all inside.
  ExpectAll(b, QuerySpec::Range(Box2(Point2(0.5, 0.0), Point2(0.6, 1.0))),
            Sorted({Point2(0.5, 0.5), Point2(0.5, 0.0), Point2(0.5, 0.25),
                    Point2(0.515625, 0.5)}));
}

TEST(BoundarySemanticsTest, QueryHiEdgeExcludesPointsOnIt) {
  Backends b(BoundaryPoints());
  // hi edge at x = 0.5: every x == 0.5 point is OUTSIDE [0, 0.5).
  ExpectAll(b, QuerySpec::Range(Box2(Point2(0.0, 0.0), Point2(0.5, 1.0))),
            Sorted({Point2(0.0, 0.0), Point2(0.0, 0.5), Point2(0.25, 0.25),
                    Point2(0.25, 0.75), Point2(0.484375, 0.5)}));
}

TEST(BoundarySemanticsTest, SplitPointQueryReturnsItExactlyOnce) {
  Backends b(BoundaryPoints());
  // A tiny box whose lo corner IS the root split point: must contain
  // exactly the split point — once, from every backend.
  ExpectAll(b,
            QuerySpec::Range(
                Box2(Point2(0.5, 0.5), Point2(0.5078125, 0.5078125))),
            {Point2(0.5, 0.5)});
}

TEST(BoundarySemanticsTest, DegenerateQueryBoxIsEmpty) {
  Backends b(BoundaryPoints());
  // [p, p) is empty under half-open semantics even with a stored point
  // at p.
  ExpectAll(b,
            QuerySpec::Range(Box2(Point2(0.5, 0.5), Point2(0.5, 0.5))), {});
}

TEST(BoundarySemanticsTest, PartialMatchOnSplitLineFindsAllPointsOnIt) {
  Backends b(BoundaryPoints());
  ExpectAll(b, QuerySpec::PartialMatch(0, 0.5),
            Sorted({Point2(0.5, 0.5), Point2(0.5, 0.0), Point2(0.5, 0.25)}));
  ExpectAll(b, QuerySpec::PartialMatch(1, 0.5),
            Sorted({Point2(0.5, 0.5), Point2(0.0, 0.5),
                    Point2(0.484375, 0.5), Point2(0.515625, 0.5)}));
  ExpectAll(b, QuerySpec::PartialMatch(1, 0.25),
            Sorted({Point2(0.25, 0.25), Point2(0.75, 0.25),
                    Point2(0.5, 0.25)}));
}

TEST(BoundarySemanticsTest, DomainLoCornerIsQueryable) {
  Backends b(BoundaryPoints());
  ExpectAll(b,
            QuerySpec::Range(Box2(Point2(0.0, 0.0), Point2(0.015625, 1.0))),
            Sorted({Point2(0.0, 0.0), Point2(0.0, 0.5)}));
  ExpectAll(b, QuerySpec::PartialMatch(0, 0.0),
            Sorted({Point2(0.0, 0.0), Point2(0.0, 0.5)}));
}

TEST(BoundarySemanticsTest, WholeDomainQueryReturnsEverything) {
  std::vector<Point2> data = BoundaryPoints();
  Backends b(data);
  ExpectAll(b, QuerySpec::Range(Box2::UnitCube()), Sorted(data));
}

TEST(BoundarySemanticsTest, NearestKToSplitPointIncludesStoredTwin) {
  Backends b(BoundaryPoints());
  // The target coincides with a stored split-line point: distance 0 must
  // surface it first on every backend.
  QuerySpec spec = QuerySpec::NearestK(Point2(0.5, 0.5), 1);
  for (const QueryResult& result :
       {Execute(b.pr_tree, spec), Execute(b.point_tree, spec),
        Execute(*b.linear_tree, spec), Execute(b.grid, spec),
        Execute(b.excell, spec), Execute(b.mx_backend, spec),
        Execute(b.hash_backend, spec)}) {
    ASSERT_EQ(1u, result.points.size());
    EXPECT_EQ(0.5, result.points[0].x());
    EXPECT_EQ(0.5, result.points[0].y());
  }
}

}  // namespace
}  // namespace popan::query
