// Cross-backend correctness for the query engine: every point backend
// must return the exact same canonical results as a brute-force scan for
// range, partial-match, and k-NN queries — on the same data. The data
// lives on the 1/64 lattice so the two non-double backends (the MX cell
// grid at resolution 6 and the 31-bit hash codec) represent every point
// exactly and the comparison is bitwise, not approximate.

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/segment.h"
#include "query/query.h"
#include "spatial/excell.h"
#include "spatial/extendible_hash.h"
#include "spatial/grid_file.h"
#include "spatial/linear_quadtree.h"
#include "spatial/mx_quadtree.h"
#include "spatial/pmr_quadtree.h"
#include "spatial/point_quadtree.h"
#include "spatial/pr_tree.h"
#include "util/random.h"
#include "util/statusor.h"

namespace popan::query {
namespace {

using geo::Box2;
using geo::Point2;
using geo::Segment;

constexpr size_t kLattice = 64;  // data lives on multiples of 1/64
constexpr uint64_t kSeed = 20260805;

std::vector<Point2> MakeLatticePoints(size_t count) {
  std::vector<Point2> points;
  std::set<std::pair<uint32_t, uint32_t>> used;
  Pcg32 rng(kSeed);
  while (points.size() < count) {
    uint32_t ix = rng.NextBounded(kLattice);
    uint32_t iy = rng.NextBounded(kLattice);
    if (!used.insert({ix, iy}).second) continue;
    points.emplace_back(static_cast<double>(ix) / kLattice,
                        static_cast<double>(iy) / kLattice);
  }
  return points;
}

std::vector<Point2> BruteRange(const std::vector<Point2>& data,
                               const Box2& query) {
  std::vector<Point2> out;
  for (const Point2& p : data) {
    if (query.Contains(p)) out.push_back(p);
  }
  std::sort(out.begin(), out.end(), [](const Point2& a, const Point2& b) {
    return a.x() != b.x() ? a.x() < b.x() : a.y() < b.y();
  });
  return out;
}

std::vector<Point2> BrutePartialMatch(const std::vector<Point2>& data,
                                      size_t axis, double value) {
  std::vector<Point2> out;
  for (const Point2& p : data) {
    if (p[axis] == value) out.push_back(p);
  }
  std::sort(out.begin(), out.end(), [](const Point2& a, const Point2& b) {
    return a.x() != b.x() ? a.x() < b.x() : a.y() < b.y();
  });
  return out;
}

// k smallest squared distances (the tie-free comparison for k-NN: result
// POINTS can differ across backends when distances tie, distances can't).
std::vector<double> BruteNearestDistances(const std::vector<Point2>& data,
                                          const Point2& target, size_t k) {
  std::vector<double> d2;
  d2.reserve(data.size());
  for (const Point2& p : data) {
    double dx = p.x() - target.x();
    double dy = p.y() - target.y();
    d2.push_back(dx * dx + dy * dy);
  }
  std::sort(d2.begin(), d2.end());
  if (d2.size() > k) d2.resize(k);
  return d2;
}

std::vector<double> ResultDistances(const QueryResult& result,
                                    const Point2& target) {
  std::vector<double> d2;
  for (const Point2& p : result.points) {
    double dx = p.x() - target.x();
    double dy = p.y() - target.y();
    d2.push_back(dx * dx + dy * dy);
  }
  return d2;
}

// All seven point-capable backends built over the same lattice data set.
class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest()
      : data_(MakeLatticePoints(400)),
        pr_tree_(Box2::UnitCube()),
        point_tree_(),
        grid_(Box2::UnitCube()),
        excell_(Box2::UnitCube()),
        mx_tree_(6),
        hash_table_([] {
          spatial::ExtendibleHashOptions options;
          options.identity_hash = true;
          return options;
        }()) {
    for (const Point2& p : data_) {
      EXPECT_TRUE(pr_tree_.Insert(p).ok());
      EXPECT_TRUE(point_tree_.Insert(p).ok());
      EXPECT_TRUE(grid_.Insert(p).ok());
      EXPECT_TRUE(excell_.Insert(p).ok());
      EXPECT_TRUE(mx_tree_
                      .Insert(static_cast<uint32_t>(p.x() * kLattice),
                              static_cast<uint32_t>(p.y() * kLattice))
                      .ok());
      EXPECT_TRUE(hash_table_.Insert(hash_backend_.codec.Encode(p)).ok());
    }
    StatusOr<spatial::LinearPrQuadtree> loaded =
        spatial::LinearPrQuadtree::BulkLoad(Box2::UnitCube(), data_);
    EXPECT_TRUE(loaded.ok());
    linear_tree_ = std::make_unique<spatial::LinearPrQuadtree>(
        std::move(loaded).value());
    mx_backend_.tree = &mx_tree_;
    hash_backend_.table = &hash_table_;
  }

  // Runs `spec` on every point backend and EXPECTs identical results.
  // Returns the PR-tree result for further checks.
  QueryResult RunAll(const QuerySpec& spec) {
    QueryResult reference = Execute(pr_tree_, spec);
    auto check = [&](const QueryResult& other, const char* name) {
      EXPECT_EQ(reference.points.size(), other.points.size())
          << name << " on " << spec.ToString();
      if (reference.points.size() != other.points.size()) return;
      for (size_t i = 0; i < reference.points.size(); ++i) {
        if (spec.kind == QueryKind::kNearestK) continue;  // ties: below
        EXPECT_EQ(reference.points[i].x(), other.points[i].x())
            << name << " item " << i << " on " << spec.ToString();
        EXPECT_EQ(reference.points[i].y(), other.points[i].y())
            << name << " item " << i << " on " << spec.ToString();
      }
    };
    check(Execute(point_tree_, spec), "point_quadtree");
    check(Execute(*linear_tree_, spec), "linear_quadtree");
    check(Execute(grid_, spec), "grid_file");
    check(Execute(excell_, spec), "excell");
    check(Execute(mx_backend_, spec), "mx_quadtree");
    check(Execute(hash_backend_, spec), "extendible_hash");
    return reference;
  }

  std::vector<Point2> data_;
  spatial::PrQuadtree pr_tree_;
  spatial::PointQuadtree point_tree_;
  std::unique_ptr<spatial::LinearPrQuadtree> linear_tree_;
  spatial::GridFile grid_;
  spatial::Excell excell_;
  spatial::MxQuadtree mx_tree_;
  spatial::ExtendibleHash hash_table_;
  MxBackend mx_backend_;
  HashBackend hash_backend_;
};

TEST_F(QueryEngineTest, RangeMatchesBruteForceOnAllBackends) {
  const std::vector<Box2> queries = {
      Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)),
      Box2(Point2(0.25, 0.25), Point2(0.75, 0.75)),
      Box2(Point2(0.5, 0.0), Point2(0.515625, 1.0)),  // one lattice column
      Box2(Point2(0.1, 0.7), Point2(0.10001, 0.70001)),
      Box2(Point2(0.33, 0.41), Point2(0.87, 0.52)),  // unaligned bounds
      Box2(Point2(0.9, 0.9), Point2(0.90001, 0.90001)),  // likely empty
  };
  for (const Box2& query : queries) {
    QueryResult result = RunAll(QuerySpec::Range(query));
    std::vector<Point2> expected = BruteRange(data_, query);
    ASSERT_EQ(expected.size(), result.points.size()) << query.ToString();
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].x(), result.points[i].x());
      EXPECT_EQ(expected[i].y(), result.points[i].y());
    }
    EXPECT_GE(result.cost.points_scanned, result.points.size());
  }
}

TEST_F(QueryEngineTest, PartialMatchMatchesBruteForceOnAllBackends) {
  // Values on the lattice hit stored coordinates; the offset value must
  // match nothing on any backend.
  const std::vector<std::pair<size_t, double>> queries = {
      {0, 10.0 / kLattice}, {0, 63.0 / kLattice}, {1, 10.0 / kLattice},
      {1, 0.0},             {0, 0.123456789},
  };
  for (const auto& [axis, value] : queries) {
    QueryResult result = RunAll(QuerySpec::PartialMatch(axis, value));
    std::vector<Point2> expected = BrutePartialMatch(data_, axis, value);
    ASSERT_EQ(expected.size(), result.points.size())
        << "axis " << axis << " value " << value;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].x(), result.points[i].x());
      EXPECT_EQ(expected[i].y(), result.points[i].y());
    }
  }
}

TEST_F(QueryEngineTest, NearestKMatchesBruteForceDistancesOnAllBackends) {
  const std::vector<Point2> targets = {
      Point2(0.5, 0.5), Point2(0.01, 0.99), Point2(0.33, 0.41),
      Point2(0.0, 0.0)};
  for (const Point2& target : targets) {
    for (size_t k : {size_t{1}, size_t{5}, size_t{17}}) {
      QuerySpec spec = QuerySpec::NearestK(target, k);
      std::vector<double> expected = BruteNearestDistances(data_, target, k);
      QueryResult reference = RunAll(spec);
      auto check_distances = [&](const QueryResult& result,
                                 const char* name) {
        std::vector<double> got = ResultDistances(result, target);
        ASSERT_EQ(expected.size(), got.size()) << name;
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_DOUBLE_EQ(expected[i], got[i])
              << name << " neighbor " << i << " of " << target.ToString();
        }
        // Ascending-distance order is part of the contract.
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << name;
      };
      check_distances(reference, "pr_tree");
      check_distances(Execute(point_tree_, spec), "point_quadtree");
      check_distances(Execute(*linear_tree_, spec), "linear_quadtree");
      check_distances(Execute(grid_, spec), "grid_file");
      check_distances(Execute(excell_, spec), "excell");
      check_distances(Execute(mx_backend_, spec), "mx_quadtree");
      check_distances(Execute(hash_backend_, spec), "extendible_hash");
    }
  }
}

TEST_F(QueryEngineTest, NearestKClampsToPopulation) {
  QuerySpec spec = QuerySpec::NearestK(Point2(0.5, 0.5), data_.size() + 50);
  QueryResult result = RunAll(spec);
  EXPECT_EQ(data_.size(), result.points.size());
}

TEST_F(QueryEngineTest, CursorDrainsResultWithCost) {
  QuerySpec spec =
      QuerySpec::Range(Box2(Point2(0.25, 0.25), Point2(0.75, 0.75)));
  QueryCursor cursor(pr_tree_, spec);
  std::vector<Point2> expected = BruteRange(data_, spec.range);
  EXPECT_EQ(expected.size(), cursor.Remaining());
  EXPECT_GT(cursor.cost().nodes_visited, 0u);
  size_t pulled = 0;
  while (!cursor.Done()) {
    const Point2& p = cursor.NextPoint();
    EXPECT_EQ(expected[pulled].x(), p.x());
    EXPECT_EQ(expected[pulled].y(), p.y());
    ++pulled;
  }
  EXPECT_EQ(expected.size(), pulled);
}

TEST_F(QueryEngineTest, ChecksumIsOrderAndCostSensitive) {
  QuerySpec spec =
      QuerySpec::Range(Box2(Point2(0.1, 0.1), Point2(0.9, 0.9)));
  QueryResult a = Execute(pr_tree_, spec);
  QueryResult b = a;
  EXPECT_EQ(ChecksumResult(kChecksumSeed, a),
            ChecksumResult(kChecksumSeed, b));
  b.cost.nodes_visited++;
  EXPECT_NE(ChecksumResult(kChecksumSeed, a),
            ChecksumResult(kChecksumSeed, b));
  QueryResult c = a;
  ASSERT_GE(c.points.size(), 2u);
  std::swap(c.points[0], c.points[1]);
  EXPECT_NE(ChecksumResult(kChecksumSeed, a),
            ChecksumResult(kChecksumSeed, c));
}

// ---------------------------------------------------------------------
// PMR quadtree: the segment backend, checked against brute force over
// the stored segments.

class PmrQueryTest : public ::testing::Test {
 protected:
  PmrQueryTest() : tree_(Box2::UnitCube()) {
    Pcg32 rng(kSeed + 1);
    for (size_t i = 0; i < 60; ++i) {
      Point2 a(rng.NextDouble(), rng.NextDouble());
      Point2 b(std::min(a.x() + rng.NextDouble() * 0.2, 0.999),
               std::min(a.y() + rng.NextDouble() * 0.2, 0.999));
      segments_.emplace_back(a, b);
      EXPECT_TRUE(tree_.Insert(segments_.back()).ok());
    }
  }

  spatial::PmrQuadtree tree_;
  std::vector<Segment> segments_;
};

TEST_F(PmrQueryTest, RangeMatchesBruteForce) {
  const std::vector<Box2> queries = {
      Box2(Point2(0.2, 0.2), Point2(0.6, 0.6)),
      Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)),
      Box2(Point2(0.77, 0.13), Point2(0.78, 0.14)),
  };
  for (const Box2& query : queries) {
    QueryResult result = Execute(tree_, QuerySpec::Range(query));
    std::vector<uint32_t> expected;
    for (uint32_t id = 0; id < segments_.size(); ++id) {
      if (segments_[id].IntersectsBox(query)) expected.push_back(id);
    }
    EXPECT_EQ(expected, result.ids) << query.ToString();
  }
}

TEST_F(PmrQueryTest, PartialMatchMatchesBruteForce) {
  for (double value : {0.1, 0.5, 0.9}) {
    for (size_t axis : {size_t{0}, size_t{1}}) {
      QueryResult result =
          Execute(tree_, QuerySpec::PartialMatch(axis, value));
      std::vector<uint32_t> expected;
      for (uint32_t id = 0; id < segments_.size(); ++id) {
        double c0 = axis == 0 ? segments_[id].a().x() : segments_[id].a().y();
        double c1 = axis == 0 ? segments_[id].b().x() : segments_[id].b().y();
        if (std::min(c0, c1) <= value && value <= std::max(c0, c1)) {
          expected.push_back(id);
        }
      }
      EXPECT_EQ(expected, result.ids) << "axis " << axis << " v " << value;
    }
  }
}

TEST_F(PmrQueryTest, NearestKMatchesBruteForceDistances) {
  const Point2 target(0.42, 0.58);
  for (size_t k : {size_t{1}, size_t{7}, size_t{25}}) {
    QueryResult result = Execute(tree_, QuerySpec::NearestK(target, k));
    std::vector<double> expected;
    for (const Segment& s : segments_) {
      expected.push_back(s.DistanceSquaredToPoint(target));
    }
    std::sort(expected.begin(), expected.end());
    expected.resize(std::min(k, expected.size()));
    ASSERT_EQ(expected.size(), result.ids.size()) << "k=" << k;
    for (size_t i = 0; i < result.ids.size(); ++i) {
      EXPECT_DOUBLE_EQ(
          expected[i],
          segments_[result.ids[i]].DistanceSquaredToPoint(target))
          << "k=" << k << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace popan::query
