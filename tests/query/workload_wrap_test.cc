// Regression tests for AppendWrappedRangeSpecs double-counting. A
// full-extent wrapped query with a non-dyadic origin used to emit two
// sub-boxes that overlapped by one ulp: dom_lo + (o + q - dom_hi) rounds
// past o, so the wrap segment re-covered the primary segment's first
// sliver and any point exactly at the origin was reported twice. The fix
// clamps the wrap segment at the arc's own origin and collapses
// full-circle arcs to a single full-domain box.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "query/query.h"
#include "query/workload.h"
#include "spatial/excell.h"
#include "spatial/extendible_hash.h"
#include "spatial/grid_file.h"
#include "spatial/linear_quadtree.h"
#include "spatial/mx_quadtree.h"
#include "spatial/point_quadtree.h"
#include "spatial/pr_tree.h"
#include "testing/statusor_testing.h"
#include "util/random.h"

namespace popan::query {
namespace {

using geo::Box2;
using geo::Point2;

bool Overlaps(const Box2& a, const Box2& b) {
  return a.lo().x() < b.hi().x() && b.lo().x() < a.hi().x() &&
         a.lo().y() < b.hi().y() && b.lo().y() < a.hi().y();
}

double Area(const Box2& box) {
  return box.Extent(0) * box.Extent(1);
}

TEST(WorkloadWrapTest, FullExtentNonDyadicOriginIsOneFullDomainBox) {
  // THE regression shape: q == extent, origin not representable as a sum
  // that round-trips exactly. Pre-fix this emitted two boxes overlapping
  // in [0.1, 0.1 + 1ulp) x [0.3, 0.3 + 1ulp).
  std::vector<QuerySpec> specs;
  AppendWrappedRangeSpecs(Box2::UnitCube(), 0.1, 0.3, 1.0, 1.0, &specs);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].range, Box2::UnitCube());
}

TEST(WorkloadWrapTest, SubBoxesNeverOverlapAndPreserveArea) {
  Pcg32 rng = RngStreamFamily(87).MakeStream(3);
  for (int trial = 0; trial < 500; ++trial) {
    double ox = rng.NextDouble();
    double oy = rng.NextDouble();
    // Bias sizes toward the hostile end: exactly the extent, and within
    // a few ulps of it.
    double qx, qy;
    switch (trial % 4) {
      case 0: qx = 1.0; qy = 1.0; break;
      case 1: qx = std::nextafter(1.0, 0.0); qy = 1.0; break;
      case 2: qx = rng.NextDouble(0.5, 1.0); qy = std::nextafter(1.0, 0.0);
              break;
      default: qx = rng.NextDouble(0.0, 1.0) + 1e-9;
               qy = rng.NextDouble(0.0, 1.0) + 1e-9; break;
    }
    qx = std::min(qx, 1.0);
    qy = std::min(qy, 1.0);
    std::vector<QuerySpec> specs;
    AppendWrappedRangeSpecs(Box2::UnitCube(), ox, oy, qx, qy, &specs);
    ASSERT_GE(specs.size(), 1u);
    ASSERT_LE(specs.size(), 4u);
    double total_area = 0.0;
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_TRUE(Box2::UnitCube().ContainsBox(specs[i].range));
      total_area += Area(specs[i].range);
      for (size_t j = i + 1; j < specs.size(); ++j) {
        EXPECT_FALSE(Overlaps(specs[i].range, specs[j].range))
            << "trial " << trial << ": " << specs[i].range.ToString()
            << " vs " << specs[j].range.ToString();
      }
    }
    // Disjoint + area preserved == every point counted exactly once.
    EXPECT_NEAR(total_area, qx * qy, 1e-9) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Match counts across all seven point-capable backends.

constexpr uint32_t kLattice = 64;

/// Deterministic scatter on the 1/64 lattice (exact for the MX cell map
/// and the 31-bit hash codec).
std::vector<Point2> LatticeData() {
  std::vector<Point2> points;
  Pcg32 rng = RngStreamFamily(11).MakeStream(0);
  for (int i = 0; i < 300; ++i) {
    uint32_t ix = rng.NextBounded(kLattice);
    uint32_t iy = rng.NextBounded(kLattice);
    Point2 p(static_cast<double>(ix) / kLattice,
             static_cast<double>(iy) / kLattice);
    bool duplicate = false;
    for (const Point2& q : points) {
      if (q.x() == p.x() && q.y() == p.y()) duplicate = true;
    }
    if (!duplicate) points.push_back(p);
  }
  return points;
}

/// Torus membership, exact for lattice points and dyadic origins/sizes.
bool InWrappedQuery(const Point2& p, double ox, double oy, double qx,
                    double qy) {
  double dx = p.x() - ox;
  if (dx < 0.0) dx += 1.0;
  double dy = p.y() - oy;
  if (dy < 0.0) dy += 1.0;
  return dx < qx && dy < qy;
}

class WorkloadWrapBackendTest : public ::testing::Test {
 protected:
  WorkloadWrapBackendTest()
      : data_(LatticeData()),
        pr_tree_(Box2::UnitCube()),
        grid_(Box2::UnitCube()),
        excell_(Box2::UnitCube()),
        mx_tree_(6),
        hash_table_([] {
          spatial::ExtendibleHashOptions options;
          options.identity_hash = true;
          return options;
        }()) {
    for (const Point2& p : data_) {
      EXPECT_TRUE(pr_tree_.Insert(p).ok());
      EXPECT_TRUE(point_tree_.Insert(p).ok());
      EXPECT_TRUE(grid_.Insert(p).ok());
      EXPECT_TRUE(excell_.Insert(p).ok());
      EXPECT_TRUE(mx_tree_
                      .Insert(static_cast<uint32_t>(p.x() * kLattice),
                              static_cast<uint32_t>(p.y() * kLattice))
                      .ok());
      EXPECT_TRUE(hash_table_.Insert(hash_backend_.codec.Encode(p)).ok());
    }
    linear_tree_ = std::make_unique<spatial::LinearPrQuadtree>(ValueOrDie(
        spatial::LinearPrQuadtree::BulkLoad(Box2::UnitCube(), data_)));
    mx_backend_.tree = &mx_tree_;
    hash_backend_.table = &hash_table_;
  }

  /// Sum of match counts over the wrapped query's sub-boxes, per backend;
  /// EXPECTs all seven agree and returns the count.
  size_t WrappedCount(double ox, double oy, double qx, double qy) {
    std::vector<QuerySpec> specs;
    AppendWrappedRangeSpecs(Box2::UnitCube(), ox, oy, qx, qy, &specs);
    size_t reference = 0;
    for (const QuerySpec& spec : specs) {
      reference += Execute(pr_tree_, spec).ItemCount();
    }
    size_t counts[6] = {0, 0, 0, 0, 0, 0};
    for (const QuerySpec& spec : specs) {
      counts[0] += Execute(point_tree_, spec).ItemCount();
      counts[1] += Execute(*linear_tree_, spec).ItemCount();
      counts[2] += Execute(grid_, spec).ItemCount();
      counts[3] += Execute(excell_, spec).ItemCount();
      counts[4] += Execute(mx_backend_, spec).ItemCount();
      counts[5] += Execute(hash_backend_, spec).ItemCount();
    }
    const char* names[6] = {"point", "linear", "grid", "excell", "mx",
                            "hash"};
    for (int b = 0; b < 6; ++b) {
      EXPECT_EQ(counts[b], reference) << names[b];
    }
    return reference;
  }

  std::vector<Point2> data_;
  spatial::PrQuadtree pr_tree_;
  spatial::PointQuadtree point_tree_;
  std::unique_ptr<spatial::LinearPrQuadtree> linear_tree_;
  spatial::GridFile grid_;
  spatial::Excell excell_;
  spatial::MxQuadtree mx_tree_;
  spatial::ExtendibleHash hash_table_;
  MxBackend mx_backend_;
  HashBackend hash_backend_;
};

TEST_F(WorkloadWrapBackendTest, FullExtentCountsEveryPointExactlyOnce) {
  // Full-circle arcs from assorted origins, dyadic and not: every stored
  // point must be counted exactly once on all seven backends.
  for (double ox : {0.0, 0.1, 0.25, 1.0 / 3.0, 0.734375}) {
    for (double oy : {0.0, 0.3, 0.515625}) {
      EXPECT_EQ(WrappedCount(ox, oy, 1.0, 1.0), data_.size())
          << "origin (" << ox << ", " << oy << ")";
    }
  }
}

TEST_F(WorkloadWrapBackendTest, WrappingQueriesMatchTorusMembership) {
  // Dyadic origins and sizes (exact on the lattice): the sub-box sum
  // must equal brute-force torus membership — no double counts at the
  // seam, no gaps.
  struct Case {
    double ox, oy, qx, qy;
  };
  for (const Case& c :
       {Case{0.75, 0.75, 0.5, 0.5}, Case{0.875, 0.25, 0.25, 0.9375},
        Case{0.5, 0.984375, 0.515625, 0.03125},
        Case{0.015625, 0.953125, 1.0, 0.25}}) {
    size_t expected = 0;
    for (const Point2& p : data_) {
      if (InWrappedQuery(p, c.ox, c.oy, c.qx, c.qy)) ++expected;
    }
    EXPECT_EQ(WrappedCount(c.ox, c.oy, c.qx, c.qy), expected)
        << "query (" << c.ox << ", " << c.oy << ", " << c.qx << ", "
        << c.qy << ")";
  }
}

TEST_F(WorkloadWrapBackendTest, OriginPointIsNotDoubleCounted) {
  // The sharpest count-level repro: a point sitting EXACTLY at a
  // non-dyadic origin. Pre-fix, the overlapping wrap sliver contained
  // exactly that point, so the full-extent query counted it twice on
  // every exact-coordinate backend.
  Point2 origin_point(0.1, 0.3);
  ASSERT_TRUE(pr_tree_.Insert(origin_point).ok());
  ASSERT_TRUE(point_tree_.Insert(origin_point).ok());
  ASSERT_TRUE(grid_.Insert(origin_point).ok());
  ASSERT_TRUE(excell_.Insert(origin_point).ok());
  std::vector<Point2> with_origin = data_;
  with_origin.push_back(origin_point);
  linear_tree_ = std::make_unique<spatial::LinearPrQuadtree>(ValueOrDie(
      spatial::LinearPrQuadtree::BulkLoad(Box2::UnitCube(), with_origin)));

  std::vector<QuerySpec> specs;
  AppendWrappedRangeSpecs(Box2::UnitCube(), 0.1, 0.3, 1.0, 1.0, &specs);
  size_t pr = 0, point = 0, linear = 0, grid = 0, excell = 0;
  for (const QuerySpec& spec : specs) {
    pr += Execute(pr_tree_, spec).ItemCount();
    point += Execute(point_tree_, spec).ItemCount();
    linear += Execute(*linear_tree_, spec).ItemCount();
    grid += Execute(grid_, spec).ItemCount();
    excell += Execute(excell_, spec).ItemCount();
  }
  size_t expected = with_origin.size();
  EXPECT_EQ(pr, expected);
  EXPECT_EQ(point, expected);
  EXPECT_EQ(linear, expected);
  EXPECT_EQ(grid, expected);
  EXPECT_EQ(excell, expected);
}

}  // namespace
}  // namespace popan::query
