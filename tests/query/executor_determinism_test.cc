// Determinism contract for the batched query executor: for ANY thread
// count, RunQueryBatch must produce bit-identical results — same
// per-query outputs, same QueryCost totals, same order-sensitive
// checksum. Exercised across >= 64 workload seeds on mixed batches
// (range + partial-match + k-NN) at POPAN's interesting thread counts
// 1, 2, and 8. Also the suite the TSan CI leg runs to probe the
// executor's concurrent read path over a shared backend.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "query/executor.h"
#include "query/workload.h"
#include "sim/experiment.h"
#include "spatial/pr_tree.h"
#include "util/random.h"

namespace popan::query {
namespace {

using geo::Box2;
using geo::Point2;

constexpr size_t kSeeds = 64;
constexpr size_t kQueriesPerBatch = 48;

spatial::PrQuadtree MakeTree(size_t n, uint64_t seed) {
  spatial::PrQuadtree tree(Box2::UnitCube());
  Pcg32 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    (void)tree.Insert(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  return tree;
}

TEST(ExecutorDeterminismTest, IdenticalAcrossThreadCountsForManySeeds) {
  spatial::PrQuadtree tree = MakeTree(3000, 7);
  sim::ExperimentRunner runner1(1);
  sim::ExperimentRunner runner2(2);
  sim::ExperimentRunner runner8(8);
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::vector<QuerySpec> batch = MakeMixedWorkload(
        Box2::UnitCube(), kQueriesPerBatch, /*k=*/6, 1000 + seed);
    BatchOutcome a = RunQueryBatch(tree, batch, runner1);
    BatchOutcome b = RunQueryBatch(tree, batch, runner2);
    BatchOutcome c = RunQueryBatch(tree, batch, runner8, /*grain=*/3);
    ASSERT_EQ(a.checksum, b.checksum) << "seed " << seed;
    ASSERT_EQ(a.checksum, c.checksum) << "seed " << seed;
    ASSERT_EQ(a.total_items, b.total_items) << "seed " << seed;
    ASSERT_EQ(a.total_items, c.total_items) << "seed " << seed;
    ASSERT_TRUE(a.total_cost == b.total_cost) << "seed " << seed;
    ASSERT_TRUE(a.total_cost == c.total_cost) << "seed " << seed;
    // The checksum is the fast witness; spot-check the full results too.
    ASSERT_EQ(a.results.size(), c.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
      ASSERT_EQ(a.results[i].points.size(), c.results[i].points.size())
          << "seed " << seed << " query " << i;
      for (size_t j = 0; j < a.results[i].points.size(); ++j) {
        ASSERT_EQ(a.results[i].points[j].x(), c.results[i].points[j].x());
        ASSERT_EQ(a.results[i].points[j].y(), c.results[i].points[j].y());
      }
      ASSERT_TRUE(a.results[i].cost == c.results[i].cost)
          << "seed " << seed << " query " << i;
    }
  }
}

TEST(ExecutorDeterminismTest, RepeatedRunsAreBitIdentical) {
  spatial::PrQuadtree tree = MakeTree(2000, 11);
  sim::ExperimentRunner runner(8);
  std::vector<QuerySpec> batch =
      MakeMixedWorkload(Box2::UnitCube(), 200, /*k=*/4, 42);
  BatchOutcome first = RunQueryBatch(tree, batch, runner);
  for (int run = 0; run < 5; ++run) {
    BatchOutcome again = RunQueryBatch(tree, batch, runner);
    ASSERT_EQ(first.checksum, again.checksum) << "run " << run;
    ASSERT_TRUE(first.total_cost == again.total_cost) << "run " << run;
  }
}

TEST(ExecutorDeterminismTest, TotalsMatchSerialReduction) {
  spatial::PrQuadtree tree = MakeTree(1500, 13);
  sim::ExperimentRunner runner(4);
  std::vector<QuerySpec> batch =
      MakeMixedWorkload(Box2::UnitCube(), 90, /*k=*/3, 99);
  BatchOutcome outcome = RunQueryBatch(tree, batch, runner);
  spatial::QueryCost serial_cost;
  uint64_t serial_items = 0;
  uint64_t h = kChecksumSeed;
  for (const QuerySpec& spec : batch) {
    QueryResult r = Execute(tree, spec);
    serial_cost.Add(r.cost);
    serial_items += r.ItemCount();
    h = ChecksumResult(h, r);
  }
  EXPECT_TRUE(serial_cost == outcome.total_cost);
  EXPECT_EQ(serial_items, outcome.total_items);
  EXPECT_EQ(h, outcome.checksum);
}

TEST(ExecutorDeterminismTest, EmptyBatchIsWellDefined) {
  spatial::PrQuadtree tree = MakeTree(100, 17);
  sim::ExperimentRunner runner(2);
  BatchOutcome outcome = RunQueryBatch(tree, {}, runner);
  EXPECT_TRUE(outcome.results.empty());
  EXPECT_EQ(0u, outcome.total_items);
  EXPECT_EQ(kChecksumSeed, outcome.checksum);
}

}  // namespace
}  // namespace popan::query
