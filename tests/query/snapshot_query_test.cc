#include <vector>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/query.h"
#include "sim/experiment.h"
#include "spatial/pr_tree.h"
#include "spatial/snapshot_view.h"
#include "util/random.h"

namespace popan::query {
namespace {

using geo::Box2;
using geo::Point2;

spatial::PrTreeOptions Options() {
  spatial::PrTreeOptions options;
  options.capacity = 4;
  options.max_depth = 32;
  return options;
}

std::vector<Point2> UniformPoints(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(rng.NextDouble(), rng.NextDouble());
  }
  return points;
}

/// A mixed bag of specs, including a partial-match pinned to a stored
/// coordinate so its result set is nonempty.
std::vector<QuerySpec> MixedSpecs(const std::vector<Point2>& points) {
  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec::Range(
      Box2(Point2(0.1, 0.2), Point2(0.6, 0.9))));
  specs.push_back(QuerySpec::Range(
      Box2(Point2(0.0, 0.0), Point2(1.0, 1.0))));
  specs.push_back(QuerySpec::PartialMatch(0, points.front().x()));
  specs.push_back(QuerySpec::PartialMatch(1, 0.5));
  specs.push_back(QuerySpec::NearestK(Point2(0.3, 0.7), 5));
  specs.push_back(QuerySpec::NearestK(Point2(0.9, 0.1), 1));
  return specs;
}

// Execute against an epoch snapshot must be bitwise identical — results
// AND cost counters — to Execute against a stop-the-world PrTree holding
// the same points: same algorithms, same traversal order, frozen nodes.
TEST(SnapshotQueryTest, ExecuteMatchesPrQuadtreeBitwise) {
  std::vector<Point2> points = UniformPoints(500, 11);
  spatial::PrTree<2> reference(Box2::UnitCube(), Options());
  spatial::CowPrQuadtree cow(Box2::UnitCube(), Options());
  for (const Point2& p : points) {
    ASSERT_TRUE(reference.Insert(p).ok());
    ASSERT_TRUE(cow.Insert(p).ok());
  }
  spatial::SnapshotView2 snapshot = cow.Snapshot();
  for (const QuerySpec& spec : MixedSpecs(points)) {
    QueryResult from_tree = Execute(reference, spec);
    QueryResult from_snapshot = Execute(snapshot, spec);
    EXPECT_EQ(from_snapshot.points, from_tree.points) << spec.ToString();
    EXPECT_EQ(from_snapshot.cost, from_tree.cost) << spec.ToString();
  }
}

// A snapshot pinned before further writes keeps answering for its own
// version; a snapshot pinned after sees the new state.
TEST(SnapshotQueryTest, SnapshotAnswersForItsOwnVersion) {
  std::vector<Point2> points = UniformPoints(200, 23);
  spatial::CowPrQuadtree cow(Box2::UnitCube(), Options());
  for (const Point2& p : points) ASSERT_TRUE(cow.Insert(p).ok());
  QuerySpec everything =
      QuerySpec::Range(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)));
  spatial::SnapshotView2 before = cow.Snapshot();
  QueryResult result_before = Execute(before, everything);
  ASSERT_EQ(result_before.points.size(), points.size());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(cow.Erase(points[i]).ok());
  }
  // The old pin still answers with all 200 points; a new pin sees 100.
  EXPECT_EQ(Execute(before, everything).points, result_before.points);
  EXPECT_EQ(Execute(cow.Snapshot(), everything).points.size(),
            points.size() - 100);
}

// The batch overload pins ONE version for the whole batch: its outcome is
// checksum-identical to running the same batch on an equivalent frozen
// tree, for any worker count.
TEST(SnapshotQueryTest, BatchOnCowTreeMatchesStopTheWorldBatch) {
  std::vector<Point2> points = UniformPoints(400, 31);
  spatial::PrTree<2> reference(Box2::UnitCube(), Options());
  spatial::CowPrQuadtree cow(Box2::UnitCube(), Options());
  for (const Point2& p : points) {
    ASSERT_TRUE(reference.Insert(p).ok());
    ASSERT_TRUE(cow.Insert(p).ok());
  }
  std::vector<QuerySpec> specs = MixedSpecs(points);
  sim::ExperimentRunner serial(1);
  sim::ExperimentRunner parallel(4);
  BatchOutcome want = RunQueryBatch(reference, specs, serial);
  BatchOutcome serial_outcome = RunQueryBatch(cow, specs, serial);
  BatchOutcome parallel_outcome = RunQueryBatch(cow, specs, parallel);
  EXPECT_EQ(serial_outcome.checksum, want.checksum);
  EXPECT_EQ(parallel_outcome.checksum, want.checksum);
  EXPECT_EQ(parallel_outcome.total_items, want.total_items);
  EXPECT_TRUE(parallel_outcome.total_cost == want.total_cost);
}

// QueryCursor's concurrent constructor pins for the duration of the
// eager execution; pulls after later writes still come from the pinned
// version's result set.
TEST(SnapshotQueryTest, CursorOnCowTreePinsItsVersion) {
  std::vector<Point2> points = UniformPoints(150, 47);
  spatial::CowPrQuadtree cow(Box2::UnitCube(), Options());
  for (const Point2& p : points) ASSERT_TRUE(cow.Insert(p).ok());
  QuerySpec everything =
      QuerySpec::Range(Box2(Point2(0.0, 0.0), Point2(1.0, 1.0)));
  QueryCursor cursor(cow, everything);
  ASSERT_EQ(cursor.Remaining(), points.size());
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(cow.Erase(points[i]).ok());
  }
  size_t pulled = 0;
  while (!cursor.Done()) {
    cursor.NextPoint();
    ++pulled;
  }
  EXPECT_EQ(pulled, points.size());
}

}  // namespace
}  // namespace popan::query
