#ifndef POPAN_TESTS_TESTING_STATUSOR_TESTING_H_
#define POPAN_TESTS_TESTING_STATUSOR_TESTING_H_

#include <utility>

#include "util/check.h"
#include "util/statusor.h"

namespace popan {

/// Test-only unwrap of a StatusOr: CHECK-fails with the full status when
/// the result is an error, otherwise moves the value out.
///
/// This is the sanctioned spelling for "this factory cannot fail here" in
/// tests. A bare chained `Foo().value()` is banned by the
/// status-unchecked-value lint rule even in tests, because it hides the
/// Status contract at the call site; ValueOrDie names the intent and
/// keeps the explicit ok() gate in one audited place.
///
/// Lives in namespace popan (not a nested testing namespace) so ADL on
/// the StatusOr argument finds it unqualified from any test namespace.
template <typename T>
T ValueOrDie(StatusOr<T> result) {
  POPAN_CHECK(result.ok()) << "ValueOrDie on error StatusOr: "
                           << result.status().ToString();
  return std::move(result).value();
}

}  // namespace popan

#endif  // POPAN_TESTS_TESTING_STATUSOR_TESTING_H_
