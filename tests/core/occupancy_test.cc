#include "core/occupancy.h"

#include <cmath>

#include <gtest/gtest.h>

namespace popan::core {
namespace {

TEST(OccupancyTest, AverageOccupancy) {
  EXPECT_EQ(AverageOccupancy(num::Vector{1.0, 0.0}), 0.0);
  EXPECT_EQ(AverageOccupancy(num::Vector{0.0, 1.0}), 1.0);
  EXPECT_EQ(AverageOccupancy(num::Vector{0.5, 0.5}), 0.5);
  EXPECT_NEAR(AverageOccupancy(num::Vector{0.25, 0.5, 0.25}), 1.0, 1e-15);
}

TEST(OccupancyTest, StorageUtilization) {
  EXPECT_DOUBLE_EQ(StorageUtilization(num::Vector{0.0, 0.0, 1.0}, 2), 1.0);
  EXPECT_DOUBLE_EQ(StorageUtilization(num::Vector{0.5, 0.5}, 1), 0.5);
}

TEST(OccupancyTest, StorageUtilizationZeroCapacityDies) {
  EXPECT_DEATH(StorageUtilization(num::Vector{1.0}, 0), "CHECK failed");
}

TEST(OccupancyTest, NodesPerItem) {
  EXPECT_DOUBLE_EQ(NodesPerItem(num::Vector{0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(NodesPerItem(num::Vector{0.5, 0.5}), 2.0);
  EXPECT_TRUE(std::isinf(NodesPerItem(num::Vector{1.0, 0.0})));
}

TEST(OccupancyTest, EmptyAndFullFractions) {
  num::Vector d{0.2, 0.5, 0.3};
  EXPECT_EQ(EmptyFraction(d), 0.2);
  EXPECT_EQ(FullFraction(d), 0.3);
}

TEST(OccupancyTest, PercentDifference) {
  EXPECT_NEAR(PercentDifference(1.1, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(PercentDifference(0.9, 1.0), -10.0, 1e-12);
  EXPECT_DOUBLE_EQ(PercentDifference(2.0, 2.0), 0.0);
  // The paper's Table 2, m=1: theory 0.50 vs experiment 0.46... ~ 7-9%.
  EXPECT_NEAR(PercentDifference(0.50, 0.465), 7.5, 0.1);
}

TEST(OccupancyTest, DistributionDistanceIdentical) {
  num::Vector d{0.5, 0.5};
  EXPECT_EQ(DistributionDistance(d, d), 0.0);
}

TEST(OccupancyTest, DistributionDistanceDisjoint) {
  EXPECT_DOUBLE_EQ(
      DistributionDistance(num::Vector{1.0, 0.0}, num::Vector{0.0, 1.0}),
      1.0);
}

TEST(OccupancyTest, DistributionDistancePadsShorterVector) {
  // (1) vs (0.5, 0.5): |1-0.5| + |0-0.5| = 1 -> distance 0.5.
  EXPECT_DOUBLE_EQ(
      DistributionDistance(num::Vector{1.0}, num::Vector{0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(
      DistributionDistance(num::Vector{0.5, 0.5}, num::Vector{1.0}), 0.5);
}

TEST(OccupancyTest, DistributionDistanceSymmetric) {
  num::Vector a{0.3, 0.3, 0.4};
  num::Vector b{0.1, 0.6, 0.3};
  EXPECT_DOUBLE_EQ(DistributionDistance(a, b), DistributionDistance(b, a));
}

TEST(OccupancyTest, DistributionDistanceTriangleInequality) {
  num::Vector a{0.3, 0.3, 0.4};
  num::Vector b{0.1, 0.6, 0.3};
  num::Vector c{0.5, 0.2, 0.3};
  EXPECT_LE(DistributionDistance(a, c),
            DistributionDistance(a, b) + DistributionDistance(b, c) + 1e-15);
}

}  // namespace
}  // namespace popan::core
