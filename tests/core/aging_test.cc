#include "core/aging.h"

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace popan::core {
namespace {

TEST(AgingTest, SplitCohortOccupancyForM1) {
  spatial::Census census;
  census.AddLeaf(0, 4);
  AgingReport report = AnalyzeAging(census, {1, 4});
  EXPECT_NEAR(report.split_cohort_occupancy, 0.40, 1e-12);
}

TEST(AgingTest, RowsComputedPerDepth) {
  spatial::Census census;
  census.AddLeaf(0, 3);
  census.AddLeaf(1, 3);
  census.AddLeaf(1, 5);
  AgingReport report = AnalyzeAging(census, {1, 4});
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].depth, 3u);
  EXPECT_EQ(report.rows[0].leaves, 2.0);
  EXPECT_EQ(report.rows[0].average_occupancy, 0.5);
  EXPECT_EQ(report.rows[1].depth, 5u);
  EXPECT_EQ(report.rows[1].average_occupancy, 1.0);
}

TEST(AgingTest, TrialScalingDividesCounts) {
  spatial::Census census;
  for (int t = 0; t < 10; ++t) {
    census.AddLeaf(1, 2);
    census.AddLeaf(0, 2);
  }
  AgingReport report = AnalyzeAging(census, {1, 4}, /*trials=*/10);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(report.rows[0].leaves, 2.0);
  EXPECT_DOUBLE_EQ(report.rows[0].items, 1.0);
  // Occupancy is scale invariant.
  EXPECT_DOUBLE_EQ(report.rows[0].average_occupancy, 0.5);
}

TEST(AgingTest, GradientPositiveWhenShallowFuller) {
  spatial::Census census;
  census.AddLeaf(1, 2);  // shallow, full
  census.AddLeaf(0, 6);  // deep, empty
  AgingReport report = AnalyzeAging(census, {1, 4});
  EXPECT_GT(report.aging_gradient, 0.0);
}

TEST(AgingTest, CountByOccupancyColumns) {
  spatial::Census census;
  census.AddLeaf(0, 4);
  census.AddLeaf(0, 4);
  census.AddLeaf(1, 4);
  AgingReport report = AnalyzeAging(census, {1, 4});
  ASSERT_EQ(report.rows.size(), 1u);
  ASSERT_GE(report.rows[0].count_by_occupancy.size(), 2u);
  EXPECT_DOUBLE_EQ(report.rows[0].count_by_occupancy[0], 2.0);
  EXPECT_DOUBLE_EQ(report.rows[0].count_by_occupancy[1], 1.0);
}

TEST(AgingTest, ToStringListsDepths) {
  spatial::Census census;
  census.AddLeaf(1, 4);
  census.AddLeaf(0, 5);
  AgingReport report = AnalyzeAging(census, {1, 4});
  std::string s = report.ToString();
  EXPECT_NE(s.find("depth"), std::string::npos);
  EXPECT_NE(s.find("split-cohort"), std::string::npos);
}

// The paper's Table 3 phenomenon on real simulated data: occupancy
// decreases with depth toward the split-cohort value.
TEST(AgingTest, RealTreesShowAging) {
  sim::ExperimentSpec spec;
  spec.capacity = 1;
  spec.num_points = 1000;
  spec.trials = 10;
  spec.max_depth = 9;
  sim::ExperimentResult result = sim::RunPrQuadtreeExperiment(spec);
  AgingReport report = AnalyzeAging(result.pooled_census, {1, 4}, 10);
  ASSERT_GE(report.rows.size(), 3u);

  // Find the rows with substantial population (the paper's depths 5-7).
  // The shallowest well-populated cohort must out-occupy the deepest
  // well-populated one, and deep cohorts must approach 0.40.
  std::vector<AgingDepthRow> populated;
  for (const AgingDepthRow& row : report.rows) {
    // Exclude the truncation depth: the paper's Table 3 notes the depth-9
    // occupancy is an artifact of the depth cutoff, not aging.
    if (row.leaves >= 20.0 && row.depth < spec.max_depth) {
      populated.push_back(row);
    }
  }
  ASSERT_GE(populated.size(), 2u);
  EXPECT_GT(populated.front().average_occupancy,
            populated.back().average_occupancy);
  EXPECT_GT(report.aging_gradient, 0.0);
  // Deepest populated cohort close to the age-zero value 0.40 (the paper
  // reports 0.39-0.41 at depths 7-8).
  EXPECT_NEAR(populated.back().average_occupancy, 0.40, 0.12);
}

}  // namespace
}  // namespace popan::core
