#include "core/steady_state.h"

#include <cmath>

#include <gtest/gtest.h>

namespace popan::core {
namespace {

/// Paper Table 1 "thy" rows and Table 2 theoretical occupancies, m = 1..8.
/// These are exact model outputs, so the reproduction must match them to
/// the published precision (3 decimals for the vectors, 2 for occupancy).
struct PaperRow {
  size_t m;
  std::vector<double> distribution;
  double occupancy;
};

const PaperRow kPaperTheory[] = {
    {1, {0.500, 0.500}, 0.50},
    {2, {0.278, 0.418, 0.304}, 1.03},
    {3, {0.165, 0.320, 0.305, 0.210}, 1.56},
    {4, {0.102, 0.239, 0.276, 0.225, 0.158}, 2.10},
    {5, {0.065, 0.179, 0.238, 0.220, 0.172, 0.126}, 2.63},
    {6, {0.043, 0.132, 0.200, 0.207, 0.176, 0.137, 0.105}, 3.17},
    {7, {0.028, 0.098, 0.165, 0.189, 0.173, 0.143, 0.114, 0.090}, 3.72},
    {8, {0.019, 0.073, 0.135, 0.168, 0.166, 0.145, 0.119, 0.097, 0.078},
     4.25},
};

class SteadyStateMethodTest : public testing::TestWithParam<SolverMethod> {};

TEST_P(SteadyStateMethodTest, ReproducesPaperTable1Theory) {
  for (const PaperRow& row : kPaperTheory) {
    PopulationModel model(TreeModelParams{row.m, 4});
    SteadyStateOptions options;
    options.method = GetParam();
    StatusOr<SteadyState> ss = SolveSteadyState(model, options);
    ASSERT_TRUE(ss.ok()) << "m=" << row.m << ": " << ss.status().ToString();
    ASSERT_EQ(ss->distribution.size(), row.m + 1);
    for (size_t i = 0; i <= row.m; ++i) {
      // Published values carry 3 decimals but are not consistently
      // rounded (e.g. the paper prints .220 where the model gives
      // 0.2207), so allow just over one unit in the last place.
      EXPECT_NEAR(ss->distribution[i], row.distribution[i], 1.2e-3)
          << "m=" << row.m << " component " << i;
    }
    EXPECT_NEAR(ss->average_occupancy, row.occupancy, 1.2e-2)
        << "m=" << row.m;
  }
}

TEST_P(SteadyStateMethodTest, SolutionIsAFixedPoint) {
  for (size_t m = 1; m <= 12; ++m) {
    PopulationModel model(TreeModelParams{m, 4});
    SteadyStateOptions options;
    options.method = GetParam();
    StatusOr<SteadyState> ss = SolveSteadyState(model, options);
    ASSERT_TRUE(ss.ok()) << "m=" << m;
    num::Vector mapped = model.InsertionMap(ss->distribution);
    EXPECT_LT(mapped.MaxAbsDiff(ss->distribution), 1e-9) << "m=" << m;
  }
}

TEST_P(SteadyStateMethodTest, SolutionPositiveAndNormalized) {
  for (size_t m : {1u, 4u, 8u, 16u, 32u}) {
    for (size_t c : {2u, 4u, 8u}) {
      PopulationModel model(TreeModelParams{m, c});
      SteadyStateOptions options;
      options.method = GetParam();
      StatusOr<SteadyState> ss = SolveSteadyState(model, options);
      ASSERT_TRUE(ss.ok()) << "m=" << m << " c=" << c;
      EXPECT_TRUE(ss->distribution.AllPositive());
      EXPECT_NEAR(ss->distribution.Sum(), 1.0, 1e-10);
      EXPECT_GT(ss->average_occupancy, 0.0);
      EXPECT_LT(ss->average_occupancy, static_cast<double>(m));
      EXPECT_GT(ss->normalization, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothMethods, SteadyStateMethodTest,
                         testing::Values(SolverMethod::kFixedPoint,
                                         SolverMethod::kNewton),
                         [](const testing::TestParamInfo<SolverMethod>& info) {
                           return std::string(
                               SolverMethodToString(info.param) ==
                                       "fixed-point"
                                   ? "FixedPoint"
                                   : "Newton");
                         });

TEST(SteadyStateTest, MethodsAgreeWithEachOther) {
  for (size_t m = 1; m <= 16; ++m) {
    PopulationModel model(TreeModelParams{m, 4});
    SteadyStateOptions fp;
    fp.method = SolverMethod::kFixedPoint;
    SteadyStateOptions nt;
    nt.method = SolverMethod::kNewton;
    StatusOr<SteadyState> a = SolveSteadyState(model, fp);
    StatusOr<SteadyState> b = SolveSteadyState(model, nt);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LT(a->distribution.MaxAbsDiff(b->distribution), 1e-9)
        << "m=" << m;
  }
}

TEST(SteadyStateTest, NewtonConvergesInFewIterations) {
  PopulationModel model(TreeModelParams{8, 4});
  SteadyStateOptions options;
  options.method = SolverMethod::kNewton;
  StatusOr<SteadyState> ss = SolveSteadyState(model, options);
  ASSERT_TRUE(ss.ok());
  EXPECT_LE(ss->iterations, 20);
  EXPECT_EQ(ss->method_used, SolverMethod::kNewton);
}

TEST(SteadyStateTest, AnalyticM1MatchesPaper) {
  num::Vector e4 = AnalyticSteadyStateM1(4);
  EXPECT_DOUBLE_EQ(e4[0], 0.5);
  EXPECT_DOUBLE_EQ(e4[1], 0.5);
}

TEST(SteadyStateTest, AnalyticM1MatchesSolverForAllFanouts) {
  for (size_t c : {2u, 4u, 8u, 16u, 64u}) {
    PopulationModel model(TreeModelParams{1, c});
    StatusOr<SteadyState> ss = SolveSteadyState(model);
    ASSERT_TRUE(ss.ok()) << "c=" << c;
    num::Vector analytic = AnalyticSteadyStateM1(c);
    EXPECT_LT(ss->distribution.MaxAbsDiff(analytic), 1e-10) << "c=" << c;
  }
}

TEST(SteadyStateTest, AnalyticM1ClosedForm) {
  // e_1 = 1/sqrt(c): bintree ~0.7071, octree ~0.3536.
  EXPECT_NEAR(AnalyticSteadyStateM1(2)[1], 1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(AnalyticSteadyStateM1(8)[1], 1.0 / std::sqrt(8.0), 1e-15);
}

TEST(SteadyStateTest, StorageUtilizationImprovesWithCapacity) {
  // Larger buckets are better utilized at steady state (a classical
  // bucketing result the model reproduces).
  double prev = 0.0;
  for (size_t m = 1; m <= 16; ++m) {
    PopulationModel model(TreeModelParams{m, 4});
    StatusOr<SteadyState> ss = SolveSteadyState(model);
    ASSERT_TRUE(ss.ok());
    EXPECT_GT(ss->storage_utilization, prev) << "m=" << m;
    prev = ss->storage_utilization;
  }
}

TEST(SteadyStateTest, HigherFanoutLowersUtilization) {
  // At fixed capacity, splitting into more children scatters items more
  // thinly: bintree > quadtree > octree utilization.
  PopulationModel bintree(TreeModelParams{4, 2});
  PopulationModel quadtree(TreeModelParams{4, 4});
  PopulationModel octree(TreeModelParams{4, 8});
  double u2 = SolveSteadyState(bintree)->average_occupancy;
  double u4 = SolveSteadyState(quadtree)->average_occupancy;
  double u8 = SolveSteadyState(octree)->average_occupancy;
  EXPECT_GT(u2, u4);
  EXPECT_GT(u4, u8);
}

TEST(SteadyStateTest, IterationBudgetRespected) {
  PopulationModel model(TreeModelParams{8, 4});
  SteadyStateOptions options;
  options.method = SolverMethod::kFixedPoint;
  options.max_iterations = 3;  // far too few
  StatusOr<SteadyState> ss = SolveSteadyState(model, options);
  ASSERT_FALSE(ss.ok());
  EXPECT_EQ(ss.status().code(), StatusCode::kNotConverged);
}

TEST(SteadyStateTest, ExtendibleHashingModelFanout2) {
  // The paper notes Fagin et al.'s extendible-hashing analysis applies to
  // PR quadtrees; conversely our machinery models fanout-2 bucket splits.
  PopulationModel model(TreeModelParams{4, 2});
  StatusOr<SteadyState> ss = SolveSteadyState(model);
  ASSERT_TRUE(ss.ok());
  // ln 2 ~ 0.693: the classical asymptotic utilization of B-tree-like
  // splitting is in this neighbourhood; accept a broad band.
  EXPECT_GT(ss->storage_utilization, 0.55);
  EXPECT_LT(ss->storage_utilization, 0.85);
}

}  // namespace
}  // namespace popan::core
