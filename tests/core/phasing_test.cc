#include "core/phasing.h"

#include <cmath>

#include <gtest/gtest.h>

namespace popan::core {
namespace {

TEST(LogarithmicScheduleTest, ReproducesPaperTable4Column) {
  std::vector<size_t> schedule = LogarithmicSchedule(64, 4096, 4);
  std::vector<size_t> expected = {64,  90,   128,  181,  256,  362, 512,
                                  724, 1024, 1448, 2048, 2896, 4096};
  EXPECT_EQ(schedule, expected);
}

TEST(LogarithmicScheduleTest, SingleStepQuadruples) {
  std::vector<size_t> schedule = LogarithmicSchedule(10, 700, 1);
  EXPECT_EQ(schedule, (std::vector<size_t>{10, 40, 160, 640}));
}

TEST(LogarithmicScheduleTest, StartEqualsMinimum) {
  EXPECT_EQ(LogarithmicSchedule(100, 100, 4),
            (std::vector<size_t>{100}));
}

TEST(LogarithmicScheduleTest, NoDuplicatesForFineSteps) {
  std::vector<size_t> schedule = LogarithmicSchedule(2, 64, 16);
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LT(schedule[i - 1], schedule[i]);
  }
}

OccupancySeries MakeSyntheticSeries(double damping_per_cycle) {
  // Occupancy oscillating once per quadrupling with optional damping, on
  // the paper's schedule.
  OccupancySeries series;
  series.sample_sizes = LogarithmicSchedule(64, 4096, 4);
  for (size_t i = 0; i < series.sample_sizes.size(); ++i) {
    double cycles = std::log(static_cast<double>(series.sample_sizes[i]) /
                             64.0) /
                    std::log(4.0);
    double amplitude = 0.4 * std::pow(damping_per_cycle, cycles);
    series.average_occupancy.push_back(
        3.7 + amplitude * std::cos(2.0 * M_PI * cycles));
    series.nodes.push_back(static_cast<double>(series.sample_sizes[i]) /
                           3.7);
  }
  return series;
}

TEST(AnalyzePhasingTest, DetectsExtremaOfUndampedCycle) {
  OccupancySeries series = MakeSyntheticSeries(1.0);
  PhasingAnalysis analysis = AnalyzePhasing(series);
  // Peaks at N = 64*4^k fall at indices 4 and 8 (ends excluded).
  ASSERT_EQ(analysis.maxima.size(), 2u);
  EXPECT_EQ(analysis.maxima[0], 4u);
  EXPECT_EQ(analysis.maxima[1], 8u);
  ASSERT_GE(analysis.minima.size(), 2u);
}

TEST(AnalyzePhasingTest, PeriodRatioNearFour) {
  OccupancySeries series = MakeSyntheticSeries(1.0);
  PhasingAnalysis analysis = AnalyzePhasing(series);
  EXPECT_NEAR(analysis.period_ratio, 4.0, 0.05);
}

TEST(AnalyzePhasingTest, UndampedCycleHasUnitDampingRatio) {
  OccupancySeries series = MakeSyntheticSeries(1.0);
  PhasingAnalysis analysis = AnalyzePhasing(series);
  EXPECT_NEAR(analysis.damping_ratio, 1.0, 0.05);
}

TEST(AnalyzePhasingTest, DampedCycleDetected) {
  OccupancySeries series = MakeSyntheticSeries(0.4);
  PhasingAnalysis analysis = AnalyzePhasing(series);
  EXPECT_LT(analysis.damping_ratio, 0.6);
  EXPECT_GT(analysis.first_swing, analysis.last_swing);
}

TEST(AnalyzePhasingTest, FlatSeriesHasNoExtrema) {
  OccupancySeries series;
  series.sample_sizes = {10, 20, 40, 80};
  series.average_occupancy = {2.0, 2.0, 2.0, 2.0};
  series.nodes = {5, 10, 20, 40};
  PhasingAnalysis analysis = AnalyzePhasing(series);
  EXPECT_TRUE(analysis.maxima.empty());
  EXPECT_TRUE(analysis.minima.empty());
  EXPECT_EQ(analysis.stddev, 0.0);
  EXPECT_EQ(analysis.mean, 2.0);
}

TEST(AnalyzePhasingTest, MonotoneSeriesHasNoExtrema) {
  OccupancySeries series;
  series.sample_sizes = {10, 20, 40, 80};
  series.average_occupancy = {1.0, 2.0, 3.0, 4.0};
  series.nodes = {5, 10, 20, 40};
  PhasingAnalysis analysis = AnalyzePhasing(series);
  EXPECT_TRUE(analysis.maxima.empty());
  EXPECT_TRUE(analysis.minima.empty());
}

TEST(AnalyzePhasingTest, MeanAndStddev) {
  OccupancySeries series;
  series.sample_sizes = {1, 2, 3};
  series.average_occupancy = {1.0, 2.0, 3.0};
  series.nodes = {1, 1, 1};
  PhasingAnalysis analysis = AnalyzePhasing(series);
  EXPECT_DOUBLE_EQ(analysis.mean, 2.0);
  EXPECT_DOUBLE_EQ(analysis.stddev, 1.0);
}

TEST(AnalyzePhasingTest, MismatchedSizesDie) {
  OccupancySeries series;
  series.sample_sizes = {1, 2};
  series.average_occupancy = {1.0};
  EXPECT_DEATH(AnalyzePhasing(series), "CHECK failed");
}

TEST(AnalyzePhasingTest, ToStringSummarizes) {
  OccupancySeries series = MakeSyntheticSeries(1.0);
  std::string s = AnalyzePhasing(series).ToString();
  EXPECT_NE(s.find("period_ratio"), std::string::npos);
  EXPECT_NE(s.find("damping"), std::string::npos);
}

}  // namespace
}  // namespace popan::core
