// Unit tests for the range/partial-match query cost model, plus the
// end-to-end property the bench gates on: for wrapped workloads the
// prediction is exact in expectation, so a measured mean over a few
// thousand queries lands within a few percent.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_model.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "numerics/vector.h"
#include "query/executor.h"
#include "query/workload.h"
#include "sim/experiment.h"
#include "spatial/census.h"
#include "spatial/pr_tree.h"
#include "util/random.h"

namespace popan::core {
namespace {

using geo::Box2;
using geo::Point2;

// A tree with 4 points in distinct root quadrants, capacity 1: root at
// depth 0 (internal), 4 leaves at depth 1, one item each.
spatial::PrQuadtree MakeQuartetTree() {
  spatial::PrTreeOptions options;
  options.capacity = 1;
  spatial::PrQuadtree tree(Box2::UnitCube(), options);
  EXPECT_TRUE(tree.Insert(Point2(0.25, 0.25)).ok());
  EXPECT_TRUE(tree.Insert(Point2(0.75, 0.25)).ok());
  EXPECT_TRUE(tree.Insert(Point2(0.25, 0.75)).ok());
  EXPECT_TRUE(tree.Insert(Point2(0.75, 0.75)).ok());
  return tree;
}

TEST(QueryCostModelTest, QuartetTreeClosedForm) {
  spatial::PrQuadtree tree = MakeQuartetTree();
  QueryCostModel model =
      QueryCostModel::FromCensus(spatial::TakeCensus(tree),
                                 Box2::UnitCube());
  // 1 internal root + 4 depth-1 leaves.
  EXPECT_DOUBLE_EQ(5.0, model.TotalNodes());

  // PredictRange(q, q): root term (q+1)^2, leaves 4 (q+1/2)^2, items the
  // same with one item per leaf.
  const double q = 0.25;
  QueryCostPrediction pred = model.PredictRange(q, q);
  EXPECT_DOUBLE_EQ((q + 1.0) * (q + 1.0) + 4.0 * (q + 0.5) * (q + 0.5),
                   pred.nodes);
  EXPECT_DOUBLE_EQ(4.0 * (q + 0.5) * (q + 0.5), pred.leaves);
  EXPECT_DOUBLE_EQ(4.0 * (q + 0.5) * (q + 0.5), pred.points);

  // Partial match: root always, each leaf with probability 1/2.
  QueryCostPrediction pm = model.PredictPartialMatch();
  EXPECT_DOUBLE_EQ(1.0 + 4.0 * 0.5, pm.nodes);
  EXPECT_DOUBLE_EQ(4.0 * 0.5, pm.leaves);
  EXPECT_DOUBLE_EQ(4.0 * 0.5, pm.points);
}

TEST(QueryCostModelTest, FullDomainRangeCountsEveryNodeAndItem) {
  // A wrapped query of the whole domain (q = 1) meets every depth-d
  // block (1 + 2^-d)... times -- NOT once: the wrap splits it into up to
  // 4 sub-boxes which re-enter upper blocks. The quartet tree makes the
  // numbers easy to eyeball.
  spatial::PrQuadtree tree = MakeQuartetTree();
  QueryCostModel model =
      QueryCostModel::FromCensus(spatial::TakeCensus(tree),
                                 Box2::UnitCube());
  QueryCostPrediction pred = model.PredictRange(1.0, 1.0);
  EXPECT_DOUBLE_EQ(4.0 + 4.0 * 2.25, pred.nodes);  // root 2^2, leaves 1.5^2
  EXPECT_DOUBLE_EQ(9.0, pred.points);
}

TEST(QueryCostModelTest, SteadyStateOccupancyReplacesItems) {
  spatial::PrQuadtree tree = MakeQuartetTree();
  QueryCostModel model =
      QueryCostModel::FromCensus(spatial::TakeCensus(tree),
                                 Box2::UnitCube());
  // e = (0, 0.5, 0.5): ebar = 0.5 * 1 + 0.5 * 2 = 1.5 items per leaf.
  num::Vector e(3);
  e[0] = 0.0;
  e[1] = 0.5;
  e[2] = 0.5;
  model.SetOccupancyFromSteadyState(e);
  QueryCostPrediction pm = model.PredictPartialMatch();
  EXPECT_DOUBLE_EQ(4.0 * 1.5 * 0.5, pm.points);
  // Node and leaf predictions are untouched by the occupancy swap.
  EXPECT_DOUBLE_EQ(1.0 + 4.0 * 0.5, pm.nodes);
  EXPECT_DOUBLE_EQ(4.0 * 0.5, pm.leaves);
}

TEST(QueryCostModelTest, NonUnitDomainScalesQueryFractions) {
  spatial::PrTreeOptions options;
  options.capacity = 1;
  Box2 domain(Point2(0.0, 0.0), Point2(4.0, 2.0));
  spatial::PrQuadtree tree(domain, options);
  ASSERT_TRUE(tree.Insert(Point2(1.0, 0.5)).ok());
  ASSERT_TRUE(tree.Insert(Point2(3.0, 0.5)).ok());
  ASSERT_TRUE(tree.Insert(Point2(1.0, 1.5)).ok());
  ASSERT_TRUE(tree.Insert(Point2(3.0, 1.5)).ok());
  QueryCostModel model =
      QueryCostModel::FromCensus(spatial::TakeCensus(tree), domain);
  // qx = 1 is a quarter of Ex = 4; qy = 1 is half of Ey = 2.
  QueryCostPrediction pred = model.PredictRange(1.0, 1.0);
  EXPECT_DOUBLE_EQ((0.25 + 1.0) * (0.5 + 1.0) +
                       4.0 * (0.25 + 0.5) * (0.5 + 0.5),
                   pred.nodes);
}

TEST(QueryCostModelTest, WrappedWorkloadMeasurementMatchesPrediction) {
  // The integration property: mean measured QueryCost over a wrapped
  // workload converges on the prediction. Small tree, many queries,
  // generous 5% tolerance (the bench re-checks at N = 1e5 with its own
  // committed numbers).
  spatial::PrQuadtree tree(Box2::UnitCube());
  Pcg32 rng(321);
  const size_t kPoints = 4000;
  for (size_t i = 0; i < kPoints; ++i) {
    (void)tree.Insert(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  QueryCostModel model =
      QueryCostModel::FromCensus(spatial::TakeCensus(tree),
                                 Box2::UnitCube());
  sim::ExperimentRunner runner(2);
  const size_t kQueries = 4000;
  const double q = 0.15;
  std::vector<query::QuerySpec> specs = query::MakeWrappedRangeWorkload(
      Box2::UnitCube(), kQueries, q, q, 777);
  query::BatchOutcome outcome = query::RunQueryBatch(tree, specs, runner);
  QueryCostPrediction pred = model.PredictRange(q, q);
  const double inv = 1.0 / static_cast<double>(kQueries);
  EXPECT_NEAR(pred.nodes,
              static_cast<double>(outcome.total_cost.nodes_visited) * inv,
              pred.nodes * 0.05);
  EXPECT_NEAR(pred.leaves,
              static_cast<double>(outcome.total_cost.leaves_touched) * inv,
              pred.leaves * 0.05);
  EXPECT_NEAR(pred.points,
              static_cast<double>(outcome.total_cost.points_scanned) * inv,
              pred.points * 0.05);
}

TEST(QueryCostModelTest, PartialMatchMeasurementMatchesPrediction) {
  spatial::PrQuadtree tree(Box2::UnitCube());
  Pcg32 rng(654);
  for (size_t i = 0; i < 4000; ++i) {
    (void)tree.Insert(Point2(rng.NextDouble(), rng.NextDouble()));
  }
  QueryCostModel model =
      QueryCostModel::FromCensus(spatial::TakeCensus(tree),
                                 Box2::UnitCube());
  sim::ExperimentRunner runner(2);
  const size_t kQueries = 4000;
  std::vector<query::QuerySpec> specs = query::MakePartialMatchWorkload(
      Box2::UnitCube(), /*axis=*/0, kQueries, 888);
  query::BatchOutcome outcome = query::RunQueryBatch(tree, specs, runner);
  QueryCostPrediction pred = model.PredictPartialMatch();
  const double inv = 1.0 / static_cast<double>(kQueries);
  EXPECT_NEAR(pred.nodes,
              static_cast<double>(outcome.total_cost.nodes_visited) * inv,
              pred.nodes * 0.05);
  EXPECT_NEAR(pred.points,
              static_cast<double>(outcome.total_cost.points_scanned) * inv,
              pred.points * 0.05);
}

}  // namespace
}  // namespace popan::core
