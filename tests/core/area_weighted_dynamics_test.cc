#include "core/area_weighted_dynamics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/exact_census.h"
#include "core/steady_state.h"

namespace popan::core {
namespace {

TEST(AreaWeightedDynamicsTest, StartsWithOneEmptyRoot) {
  AreaWeightedDynamics dyn({1, 4});
  EXPECT_EQ(dyn.CountAt(0, 0), 1.0);
  EXPECT_EQ(dyn.TotalLeaves(), 1.0);
  EXPECT_EQ(dyn.TotalItems(), 0.0);
  EXPECT_EQ(dyn.steps(), 0u);
}

TEST(AreaWeightedDynamicsTest, FirstInsertFillsTheRoot) {
  AreaWeightedDynamics dyn({1, 4});
  dyn.Step();
  EXPECT_NEAR(dyn.CountAt(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(dyn.TotalItems(), 1.0, 1e-12);
}

TEST(AreaWeightedDynamicsTest, SecondInsertSplitsLikeThePaper) {
  // The root is full; the second point triggers the t_1 split: expected
  // children (3, 2) spread over depths >= 1.
  AreaWeightedDynamics dyn({1, 4});
  dyn.StepMany(2);
  EXPECT_NEAR(dyn.TotalLeaves(), 5.0, 1e-9);
  EXPECT_NEAR(dyn.TotalItems(), 2.0, 1e-9);
  EXPECT_NEAR(dyn.CountAt(1, 0), 2.25, 1e-9);  // P_0 = 9/4 at depth 1
  EXPECT_NEAR(dyn.CountAt(1, 1), 1.5, 1e-9);   // P_1 = 3/2 at depth 1
}

TEST(AreaWeightedDynamicsTest, ItemConservation) {
  AreaWeightedDynamics dyn({3, 4});
  dyn.StepMany(500);
  EXPECT_NEAR(dyn.TotalItems(), 500.0, 1e-6);
}

TEST(AreaWeightedDynamicsTest, AreaTilesTheRoot) {
  // Leaves always tile the root block: sum of counts * c^-d == 1.
  AreaWeightedDynamics dyn({2, 4});
  dyn.StepMany(300);
  double area = 0.0;
  for (size_t d = 0; d <= 24; ++d) {
    for (size_t i = 0; i <= 8; ++i) {
      area += dyn.CountAt(d, i) * std::pow(4.0, -static_cast<double>(d));
    }
  }
  EXPECT_NEAR(area, 1.0, 1e-9);
}

TEST(AreaWeightedDynamicsTest, ReproducesAgingGradient) {
  // Table 3's phenomenon, from the refined model alone: shallow cohorts
  // out-occupy deep ones, deep cohorts near the split-cohort value 0.40.
  AreaWeightedDynamics dyn({1, 4});
  dyn.StepMany(1000);
  // Find populated depths (expected >= 10 leaves).
  double shallow = -1.0, deep = -1.0;
  for (size_t d = 0; d <= 24; ++d) {
    double leaves = 0.0;
    for (size_t i = 0; i <= 2; ++i) leaves += dyn.CountAt(d, i);
    if (leaves < 10.0) continue;
    if (shallow < 0.0) shallow = dyn.OccupancyAtDepth(d);
    deep = dyn.OccupancyAtDepth(d);
  }
  ASSERT_GE(shallow, 0.0);
  EXPECT_GT(shallow, deep);
  EXPECT_NEAR(deep, 0.40, 0.10);
}

TEST(AreaWeightedDynamicsTest, AverageOccupancyBelowBasicModel) {
  // The area-weighting correction lowers predicted occupancy relative to
  // the count-weighted model — the direction of the paper's Table 2 gap.
  for (size_t m : {1u, 4u, 8u}) {
    PopulationModel model(TreeModelParams{m, 4});
    double basic = SolveSteadyState(model)->average_occupancy;
    AreaWeightedDynamics dyn({m, 4});
    dyn.StepMany(2000);
    // Average over a cycle (N in [2000, 8000] spans log4 a full period).
    double sum = 0.0;
    int samples = 0;
    while (dyn.steps() < 8000) {
      dyn.StepMany(250);
      sum += dyn.AverageOccupancy();
      ++samples;
    }
    double refined = sum / samples;
    EXPECT_LT(refined, basic) << "m=" << m;
    EXPECT_GT(refined, 0.6 * basic) << "m=" << m;
  }
}

TEST(AreaWeightedDynamicsTest, TracksExactCensusOccupancy) {
  // The mean-field dynamics against the exact statistical recurrence: the
  // occupancy trajectories agree closely point by point.
  const size_t m = 4;
  ExactCensusCalculator exact({m, 4}, 2048);
  AreaWeightedDynamics dyn({m, 4});
  for (size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    dyn.StepMany(n - dyn.steps());
    EXPECT_NEAR(dyn.AverageOccupancy(), exact.ExpectedOccupancy(n),
                0.06 * exact.ExpectedOccupancy(n))
        << "n=" << n;
  }
}

TEST(AreaWeightedDynamicsTest, SeriesShowsPhasing) {
  std::vector<size_t> schedule = LogarithmicSchedule(64, 4096, 8);
  OccupancySeries series =
      AreaWeightedOccupancySeries({8, 4}, schedule);
  PhasingAnalysis analysis = AnalyzePhasing(series);
  ASSERT_GE(analysis.maxima.size(), 2u);
  EXPECT_NEAR(analysis.period_ratio, 4.0, 0.5);
}

TEST(AreaWeightedDynamicsTest, DistributionSumsToOne) {
  AreaWeightedDynamics dyn({3, 4});
  dyn.StepMany(777);
  num::Vector dist = dyn.DistributionByOccupancy();
  EXPECT_NEAR(dist.Sum(), 1.0, 1e-12);
  EXPECT_TRUE(dist.AllNonNegative());
}

TEST(AreaWeightedDynamicsTest, MaxDepthTruncationAccumulates) {
  AreaWeightedDynamics dyn({1, 4}, /*max_depth=*/2);
  dyn.StepMany(200);
  // 200 points cannot fit 21 capacity-1 blocks; the depth-2 cohort must
  // hold overflowing leaves.
  double over = 0.0;
  for (size_t i = 2; i <= 200; ++i) over += dyn.CountAt(2, i);
  EXPECT_GT(over, 0.0);
  EXPECT_NEAR(dyn.TotalItems(), 200.0, 1e-6);
}

}  // namespace
}  // namespace popan::core
