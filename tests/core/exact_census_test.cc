#include "core/exact_census.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/occupancy.h"
#include "core/steady_state.h"
#include "sim/experiment.h"

namespace popan::core {
namespace {

TEST(ExactCensusTest, BaseCasesAreSingleLeaves) {
  ExactCensusCalculator calc({3, 4}, 10);
  for (size_t n = 0; n <= 3; ++n) {
    const num::Vector& f = calc.ExpectedLeafCounts(n);
    EXPECT_EQ(f[n], 1.0);
    EXPECT_EQ(f.Sum(), 1.0);
  }
}

TEST(ExactCensusTest, TwoPointsSimplePr) {
  // m = 1, n = 2: the paper's worked split. Expected leaves follow the
  // t_1 = (3, 2) derivation exactly: f(2) = (3, 2).
  ExactCensusCalculator calc({1, 4}, 4);
  const num::Vector& f = calc.ExpectedLeafCounts(2);
  EXPECT_NEAR(f[0], 3.0, 1e-12);
  EXPECT_NEAR(f[1], 2.0, 1e-12);
}

TEST(ExactCensusTest, ItemsConservedExactly) {
  // sum_i i * f(n)[i] must equal n: every point sits in exactly one leaf.
  for (size_t m : {1u, 3u, 8u}) {
    ExactCensusCalculator calc({m, 4}, 512);
    for (size_t n = 0; n <= 512; n += 7) {
      const num::Vector& f = calc.ExpectedLeafCounts(n);
      double items = 0.0;
      for (size_t i = 0; i < f.size(); ++i) {
        items += f[i] * static_cast<double>(i);
      }
      EXPECT_NEAR(items, static_cast<double>(n),
                  1e-9 * std::max<double>(1.0, static_cast<double>(n)))
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(ExactCensusTest, LeafCountIsOneModFanoutMinusOne) {
  // Every split turns 1 leaf into c leaves, so E[L] = 1 mod (c-1) ... the
  // expectation preserves the affine invariant L = 1 + (c-1) * splits.
  ExactCensusCalculator calc({2, 4}, 256);
  for (size_t n = 0; n <= 256; n += 11) {
    double leaves = calc.ExpectedLeaves(n);
    double splits = (leaves - 1.0) / 3.0;
    EXPECT_NEAR(splits, std::round(splits * 1e6) / 1e6, 1e-6);
    EXPECT_GE(leaves, 1.0);
  }
}

TEST(ExactCensusTest, MatchesBruteForceSimulationClosely) {
  // The exact expectation against a large simulated ensemble.
  const size_t m = 2, n = 300;
  ExactCensusCalculator calc({m, 4}, n);
  sim::ExperimentSpec spec;
  spec.capacity = m;
  spec.num_points = n;
  spec.trials = 400;
  spec.max_depth = 24;
  spec.base_seed = 5;
  sim::ExperimentResult result = sim::RunPrQuadtreeExperiment(spec);
  num::Vector simulated = result.pooled_census.Proportions(m + 1);
  num::Vector exact = calc.ExpectedDistribution(n);
  // 400 trials of ~130 leaves: standard error ~ 0.002; allow 4 sigma-ish.
  EXPECT_LT(DistributionDistance(simulated, exact), 0.02)
      << "exact " << exact.ToString() << " vs sim " << simulated.ToString();
  EXPECT_NEAR(result.mean_leaves, calc.ExpectedLeaves(n),
              0.03 * calc.ExpectedLeaves(n));
}

TEST(ExactCensusTest, OccupancyOscillatesWithoutDamping) {
  // The paper's §II claim, shown analytically: the exact expected
  // occupancy for uniform data cycles in log_4 N with non-decreasing
  // amplitude, so lim d_N does not exist.
  ExactCensusCalculator calc({8, 4}, 4096);
  std::vector<size_t> schedule = LogarithmicSchedule(64, 4096, 8);
  OccupancySeries series = calc.OccupancySeriesFor(schedule);
  PhasingAnalysis analysis = AnalyzePhasing(series);
  ASSERT_GE(analysis.maxima.size(), 2u);
  EXPECT_NEAR(analysis.period_ratio, 4.0, 0.4);
  EXPECT_GT(analysis.damping_ratio, 0.8);  // no damping
  EXPECT_GT(analysis.first_swing, 0.2);
}

TEST(ExactCensusTest, OscillatesAroundPopulationModelValue) {
  // The population model's constant sits inside the exact oscillation
  // band — it is the "typical case" the oscillation straddles.
  const size_t m = 8;
  ExactCensusCalculator calc({m, 4}, 4096);
  PopulationModel model(TreeModelParams{m, 4});
  double predicted = SolveSteadyState(model)->average_occupancy;
  double lo = 1e9, hi = -1e9;
  for (size_t n = 1024; n <= 4096; n += 64) {
    double occ = calc.ExpectedOccupancy(n);
    lo = std::min(lo, occ);
    hi = std::max(hi, occ);
  }
  EXPECT_LT(lo, predicted);
  EXPECT_GT(hi, predicted * 0.92);  // band reaches near/above the constant
}

TEST(ExactCensusTest, FanoutTwoWorks) {
  // The same recurrence covers extendible-hashing-like fanout-2 splits.
  ExactCensusCalculator calc({4, 2}, 512);
  EXPECT_GT(calc.ExpectedOccupancy(512), 2.0);
  EXPECT_LT(calc.ExpectedOccupancy(512), 4.0);
}

TEST(ExactCensusTest, OutOfRangeDies) {
  ExactCensusCalculator calc({1, 4}, 16);
  EXPECT_DEATH(calc.ExpectedLeafCounts(17), "max_points");
}

TEST(ExactCensusTest, InvalidParamsDie) {
  EXPECT_DEATH(ExactCensusCalculator({0, 4}, 16), "CHECK failed");
}

}  // namespace
}  // namespace popan::core
