#include "core/population_model.h"

#include <gtest/gtest.h>

#include "numerics/newton.h"
#include "util/random.h"

namespace popan::core {
namespace {

TEST(PopulationModelTest, DimensionsFromParams) {
  PopulationModel model(TreeModelParams{3, 4});
  EXPECT_EQ(model.NumPopulations(), 4u);
  EXPECT_EQ(model.Capacity(), 3u);
}

TEST(PopulationModelTest, RowSumsCached) {
  PopulationModel model(TreeModelParams{2, 4});
  EXPECT_NEAR(model.row_sums()[0], 1.0, 1e-15);
  EXPECT_NEAR(model.row_sums()[1], 1.0, 1e-15);
  EXPECT_NEAR(model.row_sums()[2], SplitRowSum({2, 4}), 1e-12);
}

TEST(PopulationModelTest, NormalizationIsWeightedRowSums) {
  PopulationModel model(TreeModelParams{1, 4});
  // a(e) = e0 * 1 + e1 * 5 for the m=1 quadtree.
  EXPECT_NEAR(model.Normalization(num::Vector{0.5, 0.5}), 3.0, 1e-12);
  EXPECT_NEAR(model.Normalization(num::Vector{1.0, 0.0}), 1.0, 1e-12);
}

TEST(PopulationModelTest, InsertionMapPreservesSimplex) {
  PopulationModel model(TreeModelParams{4, 4});
  Pcg32 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    num::Vector e(5);
    for (size_t i = 0; i < 5; ++i) e[i] = rng.NextDouble() + 1e-3;
    e = e.Normalized();
    num::Vector g = model.InsertionMap(e);
    EXPECT_NEAR(g.Sum(), 1.0, 1e-12);
    EXPECT_TRUE(g.AllNonNegative(1e-15));
  }
}

TEST(PopulationModelTest, InsertionMapFixedPointForM1) {
  PopulationModel model(TreeModelParams{1, 4});
  num::Vector e{0.5, 0.5};
  num::Vector g = model.InsertionMap(e);
  EXPECT_NEAR(g[0], 0.5, 1e-12);
  EXPECT_NEAR(g[1], 0.5, 1e-12);
}

TEST(PopulationModelTest, ResidualVanishesAtM1FixedPoint) {
  PopulationModel model(TreeModelParams{1, 4});
  num::Vector f = model.Residual(num::Vector{0.5, 0.5});
  EXPECT_NEAR(f.NormInf(), 0.0, 1e-12);
}

TEST(PopulationModelTest, ResidualConstraintRow) {
  PopulationModel model(TreeModelParams{2, 4});
  num::Vector f = model.Residual(num::Vector{0.5, 0.5, 0.5});
  EXPECT_NEAR(f[2], 0.5, 1e-12);  // sum - 1 = 0.5
}

TEST(PopulationModelTest, AnalyticJacobianMatchesNumeric) {
  for (size_t m : {1u, 2u, 4u, 8u}) {
    PopulationModel model(TreeModelParams{m, 4});
    Pcg32 rng(m);
    num::Vector e(m + 1);
    for (size_t i = 0; i <= m; ++i) e[i] = rng.NextDouble() + 0.1;
    e = e.Normalized();
    num::Matrix analytic = model.ResidualJacobian(e);
    num::Matrix numeric = num::NumericJacobian(
        [&model](const num::Vector& x) { return model.Residual(x); }, e,
        1e-7);
    EXPECT_LT(analytic.MaxAbsDiff(numeric), 1e-5) << "m=" << m;
  }
}

TEST(PopulationModelTest, AverageOccupancy) {
  PopulationModel model(TreeModelParams{2, 4});
  EXPECT_NEAR(model.AverageOccupancy(num::Vector{0.25, 0.5, 0.25}), 1.0,
              1e-15);
  EXPECT_NEAR(model.AverageOccupancy(num::Vector{0.0, 0.0, 1.0}), 2.0,
              1e-15);
}

TEST(PopulationModelTest, UniformDistribution) {
  PopulationModel model(TreeModelParams{3, 4});
  num::Vector u = model.UniformDistribution();
  ASSERT_EQ(u.size(), 4u);
  EXPECT_NEAR(u.Sum(), 1.0, 1e-15);
  EXPECT_EQ(u[0], u[3]);
}

TEST(PopulationModelTest, CustomMatrixConstructor) {
  // The extendible-hashing shape: fanout 2, capacity 1. Transform rows:
  // t_0 = (0, 1); t_1 = split into 2 buckets of 2 items... C(2,i) 1^{2-i}
  // / (2^1 - 1) = (1, 2) for i = (0, 1).
  num::Matrix t{{0.0, 1.0}, {1.0, 2.0}};
  PopulationModel model(std::move(t));
  EXPECT_EQ(model.Capacity(), 1u);
  EXPECT_NEAR(model.row_sums()[1], 3.0, 1e-15);
}

TEST(PopulationModelTest, NonSquareMatrixDies) {
  EXPECT_DEATH(PopulationModel(num::Matrix(2, 3)), "square");
}

TEST(PopulationModelTest, DegenerateDistributionDies) {
  PopulationModel model(TreeModelParams{1, 4});
  EXPECT_DEATH(model.InsertionMap(num::Vector{0.0, 0.0}), "CHECK failed");
}

}  // namespace
}  // namespace popan::core
