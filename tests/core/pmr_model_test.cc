#include "core/pmr_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/steady_state.h"

namespace popan::core {
namespace {

TEST(QuadrantHitProbabilityTest, DeterministicInSeed) {
  double a = EstimateQuadrantHitProbability(SegmentStyle::kChord, 20000, 7);
  double b = EstimateQuadrantHitProbability(SegmentStyle::kChord, 20000, 7);
  EXPECT_EQ(a, b);
}

TEST(QuadrantHitProbabilityTest, InOpenUnitInterval) {
  for (SegmentStyle style :
       {SegmentStyle::kUniformEndpoints, SegmentStyle::kChord,
        SegmentStyle::kLongLine}) {
    double q = EstimateQuadrantHitProbability(style, 50000, 11);
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, 1.0);
  }
}

TEST(QuadrantHitProbabilityTest, LongerSegmentsHitMoreQuadrants) {
  // Short local segments touch ~1-2 quadrants (q near 0.3-0.45); full
  // crossings touch 2-3 (q near 0.6-0.75). The ordering must hold.
  double q_short =
      EstimateQuadrantHitProbability(SegmentStyle::kUniformEndpoints, 50000,
                                     3);
  double q_chord =
      EstimateQuadrantHitProbability(SegmentStyle::kChord, 50000, 3);
  double q_line =
      EstimateQuadrantHitProbability(SegmentStyle::kLongLine, 50000, 3);
  EXPECT_LT(q_short, q_chord);
  EXPECT_LE(q_chord, q_line + 0.05);
  EXPECT_GT(q_short, 0.25);  // a segment hits at least one of 4 quadrants
}

TEST(PmrSplitRowTest, ConservesChildCountApproximately) {
  // Without the overflow fold the B_i sum to 4; after folding, the row sum
  // is slightly above 4 (overflow children re-split), mirroring the PR
  // row-sum structure.
  for (size_t m : {2u, 4u, 8u}) {
    num::Vector row = PmrSplitRow(m, 0.55);
    // Closed form of the fold: (4 - B_{m+1}) / (1 - B_{m+1}).
    double overflow = 4.0 * std::pow(0.55, static_cast<double>(m + 1));
    double expected = (4.0 - overflow) / (1.0 - overflow);
    EXPECT_NEAR(row.Sum(), expected, 1e-9) << "m=" << m;
    EXPECT_GT(row.Sum(), 4.0);
  }
}

TEST(PmrSplitRowTest, AllComponentsPositive) {
  num::Vector row = PmrSplitRow(4, 0.6);
  EXPECT_TRUE(row.AllPositive());
  EXPECT_EQ(row.size(), 5u);
}

TEST(PmrSplitRowTest, HighQWithLowThresholdDiverges) {
  // q close to 1 with threshold 1: each child inherits nearly all m+1
  // fragments, the expected over-threshold children exceed 1 and the
  // steady-state model (correctly) refuses.
  EXPECT_DEATH(PmrSplitRow(1, 0.95), "diverges");
}

TEST(PmrSplitRowTest, InvalidQRejected) {
  EXPECT_DEATH(PmrSplitRow(4, 0.0), "CHECK failed");
  EXPECT_DEATH(PmrSplitRow(4, 1.0), "CHECK failed");
}

TEST(BuildPmrTransformMatrixTest, UnitRowsBelowThreshold) {
  num::Matrix t = BuildPmrTransformMatrix(3, 0.5);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j <= 3; ++j) {
      EXPECT_EQ(t.At(i, j), j == i + 1 ? 1.0 : 0.0);
    }
  }
}

TEST(BuildPmrModelTest, SteadyStateSolvable) {
  PopulationModel model = BuildPmrModel(4, SegmentStyle::kChord, 50000, 42);
  StatusOr<SteadyState> ss = SolveSteadyState(model);
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  EXPECT_TRUE(ss->distribution.AllPositive());
  EXPECT_NEAR(ss->distribution.Sum(), 1.0, 1e-10);
  EXPECT_GT(ss->average_occupancy, 0.0);
  EXPECT_LT(ss->average_occupancy, 4.0);
}

TEST(ExtendedPmrModelTest, StructureBelowThresholdIsUnitShift) {
  num::Matrix t = BuildExtendedPmrTransformMatrix(3, 0.5, 8);
  ASSERT_EQ(t.rows(), 9u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(t.At(i, j), j == i + 1 ? 1.0 : 0.0);
    }
  }
}

TEST(ExtendedPmrModelTest, SplitRowsProduceFourChildren) {
  num::Matrix t = BuildExtendedPmrTransformMatrix(3, 0.5, 10);
  for (size_t i = 3; i <= 10; ++i) {
    EXPECT_NEAR(t.RowSum(i), 4.0, 1e-10) << "row " << i;
  }
}

TEST(ExtendedPmrModelTest, SplitRowsConserveFragmentsApproximately) {
  // A split of i+1 fragments places q*4*(i+1) expected fragment copies:
  // each fragment lands in 4q children on average.
  const double q = 0.5;
  num::Matrix t = BuildExtendedPmrTransformMatrix(2, q, 12);
  for (size_t i = 2; i <= 10; ++i) {  // rows far from the clamp boundary
    double fragments = 0.0;
    for (size_t k = 0; k < t.cols(); ++k) {
      fragments += t.At(i, k) * static_cast<double>(k);
    }
    EXPECT_NEAR(fragments, 4.0 * q * static_cast<double>(i + 1), 1e-8)
        << "row " << i;
  }
}

TEST(ExtendedPmrModelTest, SteadyStateHasThinOverThresholdTail) {
  PopulationModel model(BuildExtendedPmrTransformMatrix(4, 0.5, 16));
  StatusOr<SteadyState> ss = SolveSteadyState(model);
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  // Over-threshold states exist but decay fast for moderate q.
  double over = 0.0;
  for (size_t i = 5; i < ss->distribution.size(); ++i) {
    over += ss->distribution[i];
  }
  EXPECT_GT(over, 0.0);
  EXPECT_LT(over, 0.10);
}

TEST(ExtendedPmrModelTest, PredictsHigherOccupancyThanFolded) {
  // Letting over-threshold nodes persist (instead of folding them through
  // an immediate re-split) raises the predicted occupancy — the direction
  // of the folded model's bias.
  const double q = 0.5;
  for (size_t m : {2u, 4u, 8u}) {
    PopulationModel folded(BuildPmrTransformMatrix(m, q));
    PopulationModel extended(BuildExtendedPmrTransformMatrix(m, q, m + 12));
    double occ_folded = SolveSteadyState(folded)->average_occupancy;
    double occ_extended = SolveSteadyState(extended)->average_occupancy;
    EXPECT_GT(occ_extended, occ_folded) << "m=" << m;
  }
}

TEST(ExtendedPmrModelTest, ExtraStatesConverge) {
  // Adding headroom states beyond a handful must not change the answer.
  PopulationModel a(BuildExtendedPmrTransformMatrix(4, 0.55, 4 + 8));
  PopulationModel b(BuildExtendedPmrTransformMatrix(4, 0.55, 4 + 20));
  double occ_a = SolveSteadyState(a)->average_occupancy;
  double occ_b = SolveSteadyState(b)->average_occupancy;
  EXPECT_NEAR(occ_a, occ_b, 1e-6);
}

TEST(ExtendedPmrModelTest, BuildFromStyleSolves) {
  PopulationModel model =
      BuildExtendedPmrModel(4, SegmentStyle::kUniformEndpoints, 8, 50000, 7);
  StatusOr<SteadyState> ss = SolveSteadyState(model);
  ASSERT_TRUE(ss.ok());
  EXPECT_GT(ss->average_occupancy, 2.0);
  EXPECT_LT(ss->average_occupancy, 4.0);
}

TEST(ExtendedPmrModelTest, InvalidArgsDie) {
  EXPECT_DEATH(BuildExtendedPmrTransformMatrix(4, 0.5, 3), "CHECK failed");
  EXPECT_DEATH(BuildExtendedPmrTransformMatrix(0, 0.5, 4), "CHECK failed");
  EXPECT_DEATH(BuildExtendedPmrTransformMatrix(4, 1.5, 8), "CHECK failed");
}

TEST(BuildPmrModelTest, ShortSegmentsBehaveMorePointLike) {
  // Short segments rarely straddle quadrant boundaries, so the PMR model's
  // prediction should sit closer to the PR point model than the long-line
  // variant does.
  PopulationModel short_model =
      BuildPmrModel(4, SegmentStyle::kUniformEndpoints, 50000, 1);
  PopulationModel line_model =
      BuildPmrModel(4, SegmentStyle::kLongLine, 50000, 1);
  PopulationModel point_model((TreeModelParams{4, 4}));
  double occ_short = SolveSteadyState(short_model)->average_occupancy;
  double occ_line = SolveSteadyState(line_model)->average_occupancy;
  double occ_point = SolveSteadyState(point_model)->average_occupancy;
  EXPECT_LT(std::abs(occ_short - occ_point),
            std::abs(occ_line - occ_point));
}

}  // namespace
}  // namespace popan::core
