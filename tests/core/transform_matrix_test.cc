#include "core/transform_matrix.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/steady_state.h"
#include "numerics/combinatorics.h"

#include "testing/statusor_testing.h"

namespace popan::core {
namespace {

TEST(ValidateParamsTest, AcceptsAndRejects) {
  EXPECT_TRUE(ValidateParams({1, 4}).ok());
  EXPECT_TRUE(ValidateParams({8, 2}).ok());
  EXPECT_FALSE(ValidateParams({0, 4}).ok());
  EXPECT_FALSE(ValidateParams({1, 1}).ok());
  EXPECT_FALSE(ValidateParams({513, 4}).ok());
  EXPECT_FALSE(ValidateParams({1, 2048}).ok());
}

TEST(ExpectedChildrenTest, PaperTwoPointExample) {
  // m = 1: two points scatter into four quadrants. Expected number of
  // quadrants with both points = 4/16 = 1/4; with one = 2*4*(1/4)(3/4)...
  // P_2 = 4^-1 = 0.25, P_1 = C(2,1)*3/4 = 1.5, P_0 = 9/4 = 2.25.
  EXPECT_NEAR(ExpectedChildrenWithOccupancy(2, 2, 4), 0.25, 1e-12);
  EXPECT_NEAR(ExpectedChildrenWithOccupancy(2, 1, 4), 1.5, 1e-12);
  EXPECT_NEAR(ExpectedChildrenWithOccupancy(2, 0, 4), 2.25, 1e-12);
}

TEST(ExpectedChildrenTest, SumsToFanout) {
  for (size_t c : {2u, 4u, 8u}) {
    for (size_t n : {1u, 2u, 5u, 9u, 20u}) {
      double total = 0.0;
      for (size_t i = 0; i <= n; ++i) {
        total += ExpectedChildrenWithOccupancy(n, i, c);
      }
      EXPECT_NEAR(total, static_cast<double>(c), 1e-10)
          << "n=" << n << " c=" << c;
    }
  }
}

TEST(ExpectedChildrenTest, ItemsConserved) {
  // sum_i i * P_i = n: all n items land somewhere.
  const size_t n = 9, c = 4;
  double items = 0.0;
  for (size_t i = 0; i <= n; ++i) {
    items += static_cast<double>(i) * ExpectedChildrenWithOccupancy(n, i, c);
  }
  EXPECT_NEAR(items, static_cast<double>(n), 1e-10);
}

TEST(SplitTransformRowTest, PaperM1Quadtree) {
  // The paper's §III worked example: t_1 = (3, 2).
  num::Vector row = SplitTransformRow({1, 4});
  ASSERT_EQ(row.size(), 2u);
  EXPECT_NEAR(row[0], 3.0, 1e-12);
  EXPECT_NEAR(row[1], 2.0, 1e-12);
}

TEST(SplitTransformRowTest, ClosedFormMatchesDefinition) {
  // T_mi = C(m+1, i) (c-1)^{m+1-i} / (c^m - 1) for small cases, exactly.
  for (size_t m : {1u, 2u, 3u, 4u, 5u}) {
    for (size_t c : {2u, 4u, 8u}) {
      num::Vector row = SplitTransformRow({m, c});
      double denom = std::pow(static_cast<double>(c),
                              static_cast<double>(m)) -
                     1.0;
      for (size_t i = 0; i <= m; ++i) {
        double expected =
            num::Binomial(static_cast<int>(m + 1), static_cast<int>(i)) *
            std::pow(static_cast<double>(c - 1),
                     static_cast<double>(m + 1 - i)) /
            denom;
        EXPECT_NEAR(row[i], expected, 1e-12 * expected + 1e-15)
            << "m=" << m << " c=" << c << " i=" << i;
      }
    }
  }
}

TEST(SplitTransformRowTest, RowSumIdentity) {
  // |t_m|_1 = (c^{m+1} - 1)/(c^m - 1), the paper's row-sum remark.
  for (size_t m = 1; m <= 10; ++m) {
    for (size_t c : {2u, 4u, 8u}) {
      num::Vector row = SplitTransformRow({m, c});
      EXPECT_NEAR(row.Sum(), SplitRowSum({m, c}), 1e-10)
          << "m=" << m << " c=" << c;
    }
  }
}

TEST(SplitRowSumTest, SlightlyAboveFanout) {
  for (size_t m = 1; m <= 12; ++m) {
    double s = SplitRowSum({m, 4});
    EXPECT_GT(s, 4.0);
    EXPECT_LT(s, 4.0 + 4.0 / (std::pow(4.0, m) - 1.0) + 1e-9);
  }
  // m = 1, c = 4: (16-1)/(4-1) = 5.
  EXPECT_NEAR(SplitRowSum({1, 4}), 5.0, 1e-12);
}

TEST(SplitCohortOccupancyTest, PaperValueForM1) {
  // t_1 = (3, 2): 5 nodes holding 2 points -> 0.40 (Table 3's limit).
  EXPECT_NEAR(SplitCohortOccupancy({1, 4}), 0.40, 1e-12);
}

TEST(SplitCohortOccupancyTest, ItemsPerSplitIsMPlusOne) {
  // A split redistributes exactly m+1 items: dot(t_m, 0..m) = m+1 must
  // hold after the recursion fold... the fold preserves item count:
  // dot = (m+1 - (m+1) c^{-m}) / (1 - c^{-m}) = m+1.
  for (size_t m = 1; m <= 8; ++m) {
    num::Vector row = SplitTransformRow({m, 4});
    double items = 0.0;
    for (size_t i = 0; i < row.size(); ++i) items += row[i] * i;
    EXPECT_NEAR(items, static_cast<double>(m + 1), 1e-9) << "m=" << m;
  }
}

class TransformMatrixSweep
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(TransformMatrixSweep, StructureIsCorrect) {
  auto [m, c] = GetParam();
  num::Matrix t = BuildTransformMatrix({m, c});
  ASSERT_EQ(t.rows(), m + 1);
  ASSERT_EQ(t.cols(), m + 1);
  // Rows 0..m-1: unit shift.
  for (size_t i = 0; i + 1 <= m; ++i) {
    for (size_t j = 0; j <= m; ++j) {
      EXPECT_EQ(t.At(i, j), j == i + 1 ? 1.0 : 0.0);
    }
    EXPECT_NEAR(t.RowSum(i), 1.0, 1e-15);
  }
  // Row m: positive, sums above the fanout.
  for (size_t j = 0; j <= m; ++j) {
    EXPECT_GT(t.At(m, j), 0.0);
  }
  EXPECT_GT(t.RowSum(m), static_cast<double>(c));
}

TEST_P(TransformMatrixSweep, RowSumsVectorAgrees) {
  auto [m, c] = GetParam();
  num::Matrix t = BuildTransformMatrix({m, c});
  num::Vector sums = RowSums({m, c});
  ASSERT_EQ(sums.size(), m + 1);
  for (size_t i = 0; i <= m; ++i) {
    EXPECT_NEAR(sums[i], t.RowSum(i), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityFanoutGrid, TransformMatrixSweep,
    testing::Combine(testing::Values<size_t>(1, 2, 3, 4, 6, 8, 16, 32),
                     testing::Values<size_t>(2, 4, 8, 16)),
    [](const testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SkewedSplitRowTest, UniformSkewReducesToStandardRow) {
  for (size_t m : {1u, 3u, 8u}) {
    std::vector<double> uniform(4, 0.25);
    StatusOr<num::Vector> skewed = SkewedSplitTransformRow(m, uniform);
    ASSERT_TRUE(skewed.ok()) << skewed.status().ToString();
    num::Vector standard = SplitTransformRow({m, 4});
    EXPECT_LT(skewed->MaxAbsDiff(standard), 1e-10) << "m=" << m;
  }
}

TEST(SkewedSplitRowTest, BintreeUniformCase) {
  std::vector<double> half = {0.5, 0.5};
  StatusOr<num::Vector> skewed = SkewedSplitTransformRow(2, half);
  ASSERT_TRUE(skewed.ok());
  EXPECT_LT(skewed->MaxAbsDiff(SplitTransformRow({2, 2})), 1e-10);
}

TEST(SkewedSplitRowTest, ItemConservationUnderSkew) {
  // The fold preserves item count: dot(t_m, 0..m) = m + 1 regardless of
  // the skew.
  std::vector<double> skew = {0.55, 0.25, 0.15, 0.05};
  for (size_t m : {1u, 4u, 8u}) {
    StatusOr<num::Vector> row = SkewedSplitTransformRow(m, skew);
    ASSERT_TRUE(row.ok());
    double items = 0.0;
    for (size_t i = 0; i < row->size(); ++i) {
      items += (*row)[i] * static_cast<double>(i);
    }
    EXPECT_NEAR(items, static_cast<double>(m + 1), 1e-9) << "m=" << m;
  }
}

TEST(SkewedSplitRowTest, SkewLowersSteadyOccupancy) {
  // Concentrating the data in one child wastes the siblings: the
  // steady-state occupancy under skew must fall below the uniform one.
  // (This is the model's explanation for adaptive structures degrading on
  // locally skewed data.)
  const size_t m = 4;
  std::vector<double> skew = {0.7, 0.1, 0.1, 0.1};
  num::Matrix skewed_t = ValueOrDie(BuildSkewedTransformMatrix(m, skew));
  PopulationModel skewed_model{std::move(skewed_t)};
  PopulationModel uniform_model{TreeModelParams{m, 4}};
  double occ_skewed =
      SolveSteadyState(skewed_model)->average_occupancy;
  double occ_uniform =
      SolveSteadyState(uniform_model)->average_occupancy;
  EXPECT_LT(occ_skewed, occ_uniform);
  EXPECT_GT(occ_skewed, 0.0);
}

TEST(SkewedSplitRowTest, InvalidInputsRejected) {
  EXPECT_FALSE(SkewedSplitTransformRow(0, {0.5, 0.5}).ok());
  EXPECT_FALSE(SkewedSplitTransformRow(2, {1.0}).ok());
  EXPECT_FALSE(SkewedSplitTransformRow(2, {0.5, 0.6}).ok());
  EXPECT_FALSE(SkewedSplitTransformRow(2, {0.0, 1.0}).ok());
  EXPECT_FALSE(SkewedSplitTransformRow(2, {-0.2, 1.2}).ok());
}

TEST(SkewedSplitRowTest, ExtremeSkewStillConverges) {
  // The fold mass sum_q p_q^{m+1} is < 1 for every valid skew (each term
  // is < p_q), so even near-degenerate skews yield a finite row.
  StatusOr<num::Vector> row =
      SkewedSplitTransformRow(1, {0.997, 0.001, 0.001, 0.001});
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_TRUE(row->AllPositive());
  // Such a split mostly produces three empty children and re-splits:
  // expected empty children per absorbed point is large.
  EXPECT_GT((*row)[0], 100.0);
}

TEST(TransformMatrixTest, LargeCapacityStaysFinite) {
  num::Vector row = SplitTransformRow({64, 4});
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_TRUE(std::isfinite(row[i]));
    EXPECT_GE(row[i], 0.0);
  }
  EXPECT_NEAR(row.Sum(), SplitRowSum({64, 4}), 1e-8);
}

}  // namespace
}  // namespace popan::core
