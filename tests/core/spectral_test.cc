#include "core/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/steady_state.h"
#include "numerics/newton.h"

#include "testing/statusor_testing.h"

namespace popan::core {
namespace {

TEST(SpectralTest, JacobianMatchesNumericDifferentiation) {
  for (size_t m : {1u, 3u, 8u}) {
    PopulationModel model(TreeModelParams{m, 4});
    num::Vector e = model.UniformDistribution();
    num::Matrix analytic = InsertionMapJacobian(model, e);
    num::Matrix numeric = num::NumericJacobian(
        [&model](const num::Vector& x) { return model.InsertionMap(x); },
        e, 1e-7);
    EXPECT_LT(analytic.MaxAbsDiff(numeric), 1e-5) << "m=" << m;
  }
}

TEST(SpectralTest, JacobianAnnihilatesTheFixedPoint) {
  PopulationModel model(TreeModelParams{4, 4});
  SteadyState steady = ValueOrDie(SolveSteadyState(model));
  num::Matrix jac = InsertionMapJacobian(model, steady.distribution);
  num::Vector image = jac.Apply(steady.distribution);
  EXPECT_LT(image.NormInf(), 1e-9);
}

TEST(SpectralTest, JacobianPreservesZeroSum) {
  PopulationModel model(TreeModelParams{5, 4});
  SteadyState steady = ValueOrDie(SolveSteadyState(model));
  num::Matrix jac = InsertionMapJacobian(model, steady.distribution);
  // Column sums of the (column-acting) Jacobian must vanish so that
  // perturbation images stay on the zero-sum tangent space.
  for (size_t j = 0; j < jac.cols(); ++j) {
    EXPECT_NEAR(jac.Col(j).Sum(), 0.0, 1e-10) << "column " << j;
  }
}

TEST(SpectralTest, ContractionRateInUnitInterval) {
  for (size_t m : {1u, 2u, 4u, 8u, 16u}) {
    PopulationModel model(TreeModelParams{m, 4});
    StatusOr<SpectralAnalysis> analysis = AnalyzeSpectrum(model);
    ASSERT_TRUE(analysis.ok()) << "m=" << m;
    EXPECT_GT(analysis->contraction_rate, 0.0) << "m=" << m;
    EXPECT_LT(analysis->contraction_rate, 1.0) << "m=" << m;
  }
}

TEST(SpectralTest, RateGrowsWithCapacity) {
  // Larger m mixes occupancies more slowly: the fixed-point solver slows
  // down, which is exactly what bench_solvers observes.
  double previous = 0.0;
  for (size_t m : {1u, 2u, 4u, 8u, 16u}) {
    PopulationModel model(TreeModelParams{m, 4});
    double rate = AnalyzeSpectrum(model)->contraction_rate;
    EXPECT_GT(rate, previous) << "m=" << m;
    previous = rate;
  }
}

TEST(SpectralTest, PredictsFixedPointIterationCount) {
  // iterations ~ log(tol)/log(rate): compare against the actual solver.
  for (size_t m : {2u, 4u, 8u}) {
    PopulationModel model(TreeModelParams{m, 4});
    SpectralAnalysis analysis = ValueOrDie(AnalyzeSpectrum(model));
    SteadyStateOptions options;
    options.method = SolverMethod::kFixedPoint;
    options.tolerance = 1e-13;
    SteadyState solved = ValueOrDie(SolveSteadyState(model, options));
    double predicted = analysis.PredictedIterations(1e-13);
    // Same order of magnitude and within a factor ~2.5 (transient +
    // stopping-criterion differences).
    EXPECT_GT(solved.iterations, predicted / 2.5) << "m=" << m;
    EXPECT_LT(solved.iterations, predicted * 2.5) << "m=" << m;
  }
}

TEST(SpectralTest, PredictedIterationsEdgeCases) {
  SpectralAnalysis analysis;
  analysis.contraction_rate = 0.5;
  EXPECT_NEAR(analysis.PredictedIterations(0.5), 1.0, 1e-12);
  analysis.contraction_rate = 1.0;
  EXPECT_TRUE(std::isinf(analysis.PredictedIterations(0.5)));
}

}  // namespace
}  // namespace popan::core
