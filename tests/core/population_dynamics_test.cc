#include "core/population_dynamics.h"

#include <gtest/gtest.h>

#include "core/steady_state.h"

namespace popan::core {
namespace {

TEST(PopulationDynamicsTest, RecordsInitialState) {
  PopulationModel model(TreeModelParams{1, 4});
  DynamicsTrajectory t =
      SimulateExpectedDynamics(model, num::Vector{1.0, 0.0}, 0);
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_EQ(t.steps[0], 0u);
  EXPECT_EQ(t.distributions[0], (num::Vector{1.0, 0.0}));
  EXPECT_EQ(t.node_counts[0], 1.0);
}

TEST(PopulationDynamicsTest, OneStepFromEmptyNode) {
  PopulationModel model(TreeModelParams{1, 4});
  DynamicsTrajectory t =
      SimulateExpectedDynamics(model, num::Vector{1.0, 0.0}, 1);
  // Inserting into the single empty node deterministically yields one full
  // node: counts (0, 1).
  ASSERT_EQ(t.distributions.size(), 2u);
  EXPECT_NEAR(t.distributions[1][0], 0.0, 1e-12);
  EXPECT_NEAR(t.distributions[1][1], 1.0, 1e-12);
  EXPECT_NEAR(t.node_counts[1], 1.0, 1e-12);
}

TEST(PopulationDynamicsTest, SecondStepSplits) {
  PopulationModel model(TreeModelParams{1, 4});
  DynamicsTrajectory t =
      SimulateExpectedDynamics(model, num::Vector{1.0, 0.0}, 2);
  // Inserting into the full node applies t_1 = (3, 2): counts (3, 2).
  EXPECT_NEAR(t.node_counts[2], 5.0, 1e-12);
  EXPECT_NEAR(t.distributions[2][0], 0.6, 1e-12);
  EXPECT_NEAR(t.distributions[2][1], 0.4, 1e-12);
}

TEST(PopulationDynamicsTest, ConvergesToSteadyStateFromFreshStructure) {
  for (size_t m : {1u, 3u, 8u}) {
    PopulationModel model(TreeModelParams{m, 4});
    num::Vector initial(m + 1);
    initial[0] = 1.0;
    DynamicsTrajectory t =
        SimulateExpectedDynamics(model, initial, 20000, 1000);
    StatusOr<SteadyState> ss = SolveSteadyState(model);
    ASSERT_TRUE(ss.ok());
    EXPECT_LT(FinalDistanceToSteadyState(t, ss->distribution), 0.01)
        << "m=" << m;
  }
}

TEST(PopulationDynamicsTest, ConvergesFromSkewedStart) {
  PopulationModel model(TreeModelParams{4, 4});
  // Start from a pathological mix: everything full.
  num::Vector initial(5);
  initial[4] = 10.0;
  DynamicsTrajectory t = SimulateExpectedDynamics(model, initial, 50000, 5000);
  StatusOr<SteadyState> ss = SolveSteadyState(model);
  ASSERT_TRUE(ss.ok());
  EXPECT_LT(FinalDistanceToSteadyState(t, ss->distribution), 0.01);
}

TEST(PopulationDynamicsTest, NodeCountGrowsLinearly) {
  PopulationModel model(TreeModelParams{2, 4});
  num::Vector initial(3);
  initial[0] = 1.0;
  DynamicsTrajectory t = SimulateExpectedDynamics(model, initial, 10000, 10000);
  StatusOr<SteadyState> ss = SolveSteadyState(model);
  ASSERT_TRUE(ss.ok());
  // At steady state each insertion creates a(e) - 1 nodes on average...
  // a(e) counts produced nodes replacing one consumed: growth per step is
  // the e_m-weighted extra nodes. Empirically nodes/points must approach
  // 1/avg_occupancy.
  double nodes_per_point = t.node_counts.back() / 10000.0;
  EXPECT_NEAR(nodes_per_point, 1.0 / ss->average_occupancy, 0.05);
}

TEST(PopulationDynamicsTest, RecordEveryControlsSampling) {
  PopulationModel model(TreeModelParams{1, 4});
  DynamicsTrajectory t =
      SimulateExpectedDynamics(model, num::Vector{1.0, 0.0}, 100, 10);
  // Steps 0, 10, ..., 100 -> 11 records.
  EXPECT_EQ(t.steps.size(), 11u);
  EXPECT_EQ(t.steps.back(), 100u);
}

TEST(PopulationDynamicsTest, FinalStepAlwaysRecorded) {
  PopulationModel model(TreeModelParams{1, 4});
  DynamicsTrajectory t =
      SimulateExpectedDynamics(model, num::Vector{1.0, 0.0}, 105, 10);
  EXPECT_EQ(t.steps.back(), 105u);
}

TEST(PopulationDynamicsTest, RejectsBadInitialConditions) {
  PopulationModel model(TreeModelParams{1, 4});
  EXPECT_DEATH(
      SimulateExpectedDynamics(model, num::Vector{0.0, 0.0}, 10),
      "CHECK failed");
  EXPECT_DEATH(
      SimulateExpectedDynamics(model, num::Vector{-1.0, 2.0}, 10),
      "CHECK failed");
  EXPECT_DEATH(SimulateExpectedDynamics(model, num::Vector{1.0}, 10),
               "CHECK failed");
}

}  // namespace
}  // namespace popan::core
