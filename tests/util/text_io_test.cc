#include "util/text_io.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/statusor_testing.h"

namespace popan {
namespace {

TEST(ReadTokensTest, SplitsOnWhitespace) {
  std::istringstream in("alpha  beta\tgamma\n");
  std::vector<std::string> tokens;
  ASSERT_TRUE(ReadTokens(&in, &tokens));
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "alpha");
  EXPECT_EQ(tokens[1], "beta");
  EXPECT_EQ(tokens[2], "gamma");
}

TEST(ReadTokensTest, StripsCarriageReturn) {
  std::istringstream in("a b\r\nc\r\n");
  std::vector<std::string> tokens;
  ASSERT_TRUE(ReadTokens(&in, &tokens));
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1], "b");
  ASSERT_TRUE(ReadTokens(&in, &tokens));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "c");
  EXPECT_FALSE(ReadTokens(&in, &tokens));
}

TEST(ReadTokensTest, BlankLinesYieldEmptyTokenLists) {
  std::istringstream in("\n\nx\n");
  std::vector<std::string> tokens;
  ASSERT_TRUE(ReadTokens(&in, &tokens));
  EXPECT_TRUE(tokens.empty());
  ASSERT_TRUE(ReadTokens(&in, &tokens));
  EXPECT_TRUE(tokens.empty());
  ASSERT_TRUE(ReadTokens(&in, &tokens));
  ASSERT_EQ(tokens.size(), 1u);
}

TEST(ReadTokensTest, ConsumedCountsLineAndTerminator) {
  std::istringstream in("ab cd\nef");
  std::vector<std::string> tokens;
  size_t consumed = 0;
  ASSERT_TRUE(ReadTokens(&in, &tokens, &consumed));
  EXPECT_EQ(consumed, 6u);  // "ab cd" + '\n'
  ASSERT_TRUE(ReadTokens(&in, &tokens, &consumed));
  EXPECT_EQ(consumed, 2u);  // "ef", no terminator at EOF
  EXPECT_TRUE(in.eof());
}

TEST(ParseU64Test, AcceptsCanonicalIntegers) {
  EXPECT_EQ(ValueOrDie(ParseU64("0")), 0u);
  EXPECT_EQ(ValueOrDie(ParseU64("18446744073709551615")),
            std::numeric_limits<uint64_t>::max());
}

TEST(ParseU64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("-1").ok());
  EXPECT_FALSE(ParseU64("12x").ok());
  EXPECT_FALSE(ParseU64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(ParseU64("0x10").ok());
}

TEST(ParseDoubleTest, RoundTripsExtremeValues) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      4.9406564584124654e-324,   // smallest denormal
      -4.9406564584124654e-324,
      2.2250738585072014e-308,   // smallest normal
      1.7976931348623157e308,    // largest finite
      0.1000000000000000055511151231257827,
      0.99999999999999989,
  };
  for (double v : values) {
    std::ostringstream os;
    StreamFormatGuard guard(&os);
    os << std::setprecision(17) << v;
    StatusOr<double> parsed = ParseDouble(os.str());
    ASSERT_TRUE(parsed.ok()) << os.str();
    EXPECT_EQ(std::signbit(parsed.value()), std::signbit(v)) << os.str();
    EXPECT_EQ(parsed.value(), v) << os.str();
  }
}

TEST(ParseDoubleTest, RejectsNonFiniteAndGarbage) {
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("-inf").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.0.0").ok());
  EXPECT_FALSE(ParseDouble("0.5x").ok());
  EXPECT_FALSE(ParseDouble("1e999").ok());  // overflows to infinity
}

TEST(Fnv1aTest, MatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a(std::string("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a(std::string("foobar")), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, SensitiveToEveryByte) {
  std::string a(64, '\0');
  std::string b = a;
  b[63] = '\1';
  EXPECT_NE(Fnv1a(a), Fnv1a(b));
}

TEST(StreamFormatGuardTest, RestoresFlagsAndPrecision) {
  std::ostringstream os;
  {
    StreamFormatGuard guard(&os);
    os << std::setprecision(17) << std::hex << std::uppercase
       << std::showpos;
  }
  // The sticky manipulators above must not survive the guard's scope.
  os << 1.0 / 3.0 << " " << 255;
  std::ostringstream expect;
  expect << 1.0 / 3.0 << " " << 255;
  EXPECT_EQ(os.str(), expect.str());
}

TEST(StreamFormatGuardTest, WorksOnInputStreams) {
  std::istringstream in("ff 255");
  // Deliberately dirty the stream outside any guard: the test verifies
  // the guard restores exactly this state.
  // popan-lint: allow(stream-format-guard)
  in >> std::hex;
  {
    StreamFormatGuard guard(&in);
    in >> std::dec;
  }
  int value = 0;
  in >> value;  // hex restored: "ff" parses as 255
  EXPECT_EQ(value, 255);
}

}  // namespace
}  // namespace popan
