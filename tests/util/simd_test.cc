#include "util/simd.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::simd {
namespace {

/// Restores the dispatch mode even when a test fails mid-way.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : prev_(ForceScalar()) {
    SetForceScalar(on);
  }
  ~ScopedForceScalar() { SetForceScalar(prev_); }

 private:
  bool prev_;
};

uint64_t ScalarMaskInHalfOpen(const double* v, size_t n, double lo,
                              double hi) {
  uint64_t mask = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!(v[i] < lo || v[i] >= hi)) mask |= uint64_t{1} << i;
  }
  return mask;
}

TEST(SimdTest, IsaNameIsNonEmpty) {
  EXPECT_NE(IsaName(), nullptr);
  ScopedForceScalar scoped(true);
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
}

TEST(SimdTest, MaskInHalfOpenBasic) {
  const double v[] = {0.0, 0.5, 1.0, -1.0, 0.999, 2.0};
  // [0, 1): indices 0, 1, 4 inside.
  EXPECT_EQ(MaskInHalfOpen(v, 6, 0.0, 1.0), 0b010011u);
}

TEST(SimdTest, MaskInHalfOpenNaNIsInside) {
  // Box::Contains' formulation !(v < lo || v >= hi) admits NaN (both
  // compares false); the kernel must agree on every path.
  const double v[] = {std::numeric_limits<double>::quiet_NaN(), 0.5, 5.0};
  const uint64_t expected = ScalarMaskInHalfOpen(v, 3, 0.0, 1.0);
  EXPECT_EQ(expected, 0b011u);
  EXPECT_EQ(MaskInHalfOpen(v, 3, 0.0, 1.0), expected);
  ScopedForceScalar scoped(true);
  EXPECT_EQ(MaskInHalfOpen(v, 3, 0.0, 1.0), expected);
}

TEST(SimdTest, MaskInHalfOpenMatchesScalarOnRandomLanes) {
  Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    double v[64];
    const size_t n = 1 + static_cast<size_t>(rng.NextDouble() * 64) % 64;
    for (size_t i = 0; i < n; ++i) v[i] = rng.NextDouble(-2.0, 2.0);
    const double lo = rng.NextDouble(-1.0, 0.5);
    const double hi = lo + rng.NextDouble(0.0, 1.5);
    const uint64_t expected = ScalarMaskInHalfOpen(v, n, lo, hi);
    EXPECT_EQ(MaskInHalfOpen(v, n, lo, hi), expected);
    ScopedForceScalar scoped(true);
    EXPECT_EQ(MaskInHalfOpen(v, n, lo, hi), expected);
  }
}

TEST(SimdTest, MaskEqualHandlesSignedZeroAndNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double v[] = {0.0, -0.0, 1.0, nan};
  // IEEE ==: -0.0 == 0.0, NaN != NaN.
  EXPECT_EQ(MaskEqual(v, 4, 0.0), 0b0011u);
  EXPECT_EQ(MaskEqual(v, 4, nan), 0u);
  ScopedForceScalar scoped(true);
  EXPECT_EQ(MaskEqual(v, 4, 0.0), 0b0011u);
  EXPECT_EQ(MaskEqual(v, 4, nan), 0u);
}

TEST(SimdTest, MaskPointsInBoxAosMatchesPerAxisMasks) {
  Pcg32 rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    double xy[128];
    double xs[64];
    double ys[64];
    const size_t n = 1 + static_cast<size_t>(rng.NextDouble() * 64) % 64;
    for (size_t i = 0; i < n; ++i) {
      xs[i] = rng.NextDouble();
      ys[i] = rng.NextDouble();
      xy[2 * i] = xs[i];
      xy[2 * i + 1] = ys[i];
    }
    const double lox = rng.NextDouble(0.0, 0.5);
    const double loy = rng.NextDouble(0.0, 0.5);
    const double hix = lox + rng.NextDouble(0.0, 0.5);
    const double hiy = loy + rng.NextDouble(0.0, 0.5);
    const uint64_t expected = MaskInHalfOpen(xs, n, lox, hix) &
                              MaskInHalfOpen(ys, n, loy, hiy);
    EXPECT_EQ(MaskPointsInBoxAos(xy, n, lox, loy, hix, hiy), expected);
    ScopedForceScalar scoped(true);
    EXPECT_EQ(MaskPointsInBoxAos(xy, n, lox, loy, hix, hiy), expected);
  }
}

TEST(SimdTest, MaskCellsInRectHalfOpen) {
  const uint32_t xs[] = {0, 1, 2, 3, 4};
  const uint32_t ys[] = {0, 0, 5, 5, 9};
  // Rect [1, 4) x [0, 6): cells 1 (1,0), 2 (2,5), 3 (3,5).
  EXPECT_EQ(MaskCellsInRect(xs, ys, 5, 1, 0, 4, 6), 0b01110u);
  ScopedForceScalar scoped(true);
  EXPECT_EQ(MaskCellsInRect(xs, ys, 5, 1, 0, 4, 6), 0b01110u);
}

TEST(SimdTest, QuantizeClampedMatchesScalarDefinition) {
  Pcg32 rng(13);
  const uint32_t max_q = (uint32_t{1} << 20) - 1;
  const double scale = static_cast<double>(uint32_t{1} << 20);
  for (int trial = 0; trial < 50; ++trial) {
    double v[64];
    uint32_t simd_q[64];
    uint32_t scalar_q[64];
    for (size_t i = 0; i < 64; ++i) v[i] = rng.NextDouble(-0.5, 1.5);
    v[0] = 0.0;
    v[1] = 1.0 - 1e-16;
    v[2] = -0.0;
    v[3] = 1e308;  // clamps to max_q
    QuantizeClamped(v, 64, scale, max_q, simd_q);
    {
      ScopedForceScalar scoped(true);
      QuantizeClamped(v, 64, scale, max_q, scalar_q);
    }
    for (size_t i = 0; i < 64; ++i) {
      // Reference clamps in double before truncating (defined for the
      // 1e308 lane; identical to a post-truncation clamp in range).
      const double scaled = v[i] * scale;
      const uint32_t expected =
          scaled > 0.0
              ? static_cast<uint32_t>(
                    std::min(scaled, static_cast<double>(max_q)))
              : 0;
      EXPECT_EQ(simd_q[i], expected) << "lane " << i;
      EXPECT_EQ(scalar_q[i], expected) << "lane " << i;
    }
  }
}

TEST(SimdTest, BisectStepMatchesMidpointDescent) {
  Pcg32 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    double v[8];
    double lo[8];
    double hi[8];
    double slo[8];
    double shi[8];
    for (size_t i = 0; i < 8; ++i) {
      v[i] = rng.NextDouble();
      lo[i] = slo[i] = 0.0;
      hi[i] = shi[i] = 1.0;
    }
    for (int level = 0; level < 20; ++level) {
      uint32_t expected = 0;
      for (size_t i = 0; i < 8; ++i) {
        const double mid = 0.5 * (slo[i] + shi[i]);
        if (v[i] >= mid) {
          expected |= uint32_t{1} << i;
          slo[i] = mid;
        } else {
          shi[i] = mid;
        }
      }
      EXPECT_EQ(BisectStep(v, lo, hi, 8), expected) << "level " << level;
      for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(lo[i], slo[i]);
        EXPECT_EQ(hi[i], shi[i]);
      }
    }
  }
}

TEST(SimdTest, InterleaveRoundTrip) {
  Pcg32 rng(19);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint32_t x = static_cast<uint32_t>(rng.NextDouble() * 4294967296.0);
    const uint32_t y = static_cast<uint32_t>(rng.NextDouble() * 4294967296.0);
    const uint64_t code = InterleaveBits(x, y);
    uint32_t rx = 0;
    uint32_t ry = 0;
    DeinterleaveBits(code, &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(SimdTest, InterleaveBitsBitPositions) {
  // Bit 2k of the code is bit k of x; bit 2k + 1 is bit k of y.
  EXPECT_EQ(InterleaveBits(1, 0), 0b01u);
  EXPECT_EQ(InterleaveBits(0, 1), 0b10u);
  EXPECT_EQ(InterleaveBits(0xffffffffu, 0),
            0x5555555555555555ull);
  EXPECT_EQ(InterleaveBits(0, 0xffffffffu),
            0xaaaaaaaaaaaaaaaaull);
}

TEST(SimdTest, InterleaveBits8MatchesScalarOnBothPaths) {
  Pcg32 rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t xs[8];
    uint32_t ys[8];
    uint64_t batch[8];
    uint64_t batch_scalar[8];
    for (size_t i = 0; i < 8; ++i) {
      xs[i] = static_cast<uint32_t>(rng.NextDouble() * 4294967296.0);
      ys[i] = static_cast<uint32_t>(rng.NextDouble() * 4294967296.0);
    }
    InterleaveBits8(xs, ys, batch);
    {
      ScopedForceScalar scoped(true);
      InterleaveBits8(xs, ys, batch_scalar);
    }
    for (size_t i = 0; i < 8; ++i) {
      const uint64_t expected = InterleaveBits(xs[i], ys[i]);
      EXPECT_EQ(batch[i], expected) << "lane " << i;
      EXPECT_EQ(batch_scalar[i], expected) << "lane " << i;
    }
    uint32_t dx[8];
    uint32_t dy[8];
    DeinterleaveBits8(batch, dx, dy);
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(dx[i], xs[i]);
      EXPECT_EQ(dy[i], ys[i]);
    }
  }
}

}  // namespace
}  // namespace popan::simd
