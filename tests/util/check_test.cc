#include "util/check.h"

#include <gtest/gtest.h>

namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  POPAN_CHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(POPAN_CHECK(false) << "context 42", "CHECK failed");
}

TEST(CheckTest, FailureMessageIncludesCondition) {
  EXPECT_DEATH(POPAN_CHECK(2 > 3), "2 > 3");
}

TEST(CheckTest, FailureMessageIncludesStreamedContext) {
  int x = 7;
  EXPECT_DEATH(POPAN_CHECK(x == 0) << "x=" << x, "x= 7");
}

TEST(CheckTest, CheckDoesNotDoubleEvaluateCondition) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return true;
  };
  POPAN_CHECK(count());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, DcheckPassesWhenTrue) {
  POPAN_DCHECK(true) << "nothing";
  SUCCEED();
}

#ifndef NDEBUG
TEST(CheckTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(POPAN_DCHECK(false), "CHECK failed");
}
#else
TEST(CheckTest, DcheckIsNoOpInReleaseBuilds) {
  POPAN_DCHECK(false) << "compiled out";
  SUCCEED();
}
#endif

TEST(CheckTest, CheckComposesWithIfElse) {
  // The macro must behave like a statement: hang an else off an if that
  // wraps it without grabbing the wrong branch.
  bool reached_else = false;
  if (true)
    POPAN_CHECK(true);
  else
    reached_else = true;  // NOLINT
  EXPECT_FALSE(reached_else);
}

}  // namespace
