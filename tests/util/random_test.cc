#include "util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace popan {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Pcg32Test, DeterministicForSeed) {
  Pcg32 a(7);
  Pcg32 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next32(), b.Next32());
  }
}

TEST(Pcg32Test, StreamsFromDifferentSeedsDiffer) {
  Pcg32 a(7);
  Pcg32 b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next32() == b.Next32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(99);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Pcg32Test, DoubleInRange) {
  Pcg32 rng(99);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Pcg32Test, DoubleMeanNearHalf) {
  Pcg32 rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32Test, BoundedStaysInBound) {
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Pcg32Test, BoundedCoversAllResidues) {
  Pcg32 rng(5);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32Test, BoundedApproximatelyUniform) {
  Pcg32 rng(11);
  const uint32_t k = 10;
  const int n = 100000;
  std::vector<int> counts(k, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(k)];
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_NEAR(counts[i], n / static_cast<int>(k), n / 100);
  }
}

TEST(Pcg32Test, BoundedOne) {
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(Pcg32Test, GaussianMomentsMatchStandardNormal) {
  Pcg32 rng(2024);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32Test, GaussianWithParams) {
  Pcg32 rng(77);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Pcg32Test, Next64CombinesTwoDraws) {
  Pcg32 a(1);
  Pcg32 b(1);
  uint64_t hi = b.Next32();
  uint64_t lo = b.Next32();
  EXPECT_EQ(a.Next64(), (hi << 32) | lo);
}

TEST(DeriveSeedTest, DistinctTrialsGiveDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t t = 0; t < 1000; ++t) {
    seeds.insert(DeriveSeed(1987, t));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, DeterministicInInputs) {
  EXPECT_EQ(DeriveSeed(5, 9), DeriveSeed(5, 9));
  EXPECT_NE(DeriveSeed(5, 9), DeriveSeed(6, 9));
  EXPECT_NE(DeriveSeed(5, 9), DeriveSeed(5, 10));
}

TEST(RngStreamFamilyTest, StreamSeedMatchesDeriveSeed) {
  RngStreamFamily family(1987);
  for (uint64_t t = 0; t < 50; ++t) {
    EXPECT_EQ(family.StreamSeed(t), DeriveSeed(1987, t));
  }
}

TEST(RngStreamFamilyTest, StreamsAreCounterBased) {
  // Building stream 7 first or last makes no difference: the splitter has
  // no sequential state, which is what parallel trial scheduling relies on.
  RngStreamFamily family(42);
  Pcg32 late_first = family.MakeStream(7);
  family.MakeStream(0);
  family.MakeStream(3);
  Pcg32 late_second = family.MakeStream(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(late_first.Next32(), late_second.Next32());
  }
}

TEST(RngStreamFamilyTest, DistinctIndicesGiveIndependentStreams) {
  RngStreamFamily family(7);
  std::set<uint64_t> seeds;
  for (uint64_t t = 0; t < 1000; ++t) seeds.insert(family.StreamSeed(t));
  EXPECT_EQ(seeds.size(), 1000u);

  Pcg32 a = family.MakeStream(0);
  Pcg32 b = family.MakeStream(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next32() == b.Next32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngStreamFamilyTest, SubFamilyIsItsOwnSeedSpace) {
  RngStreamFamily family(1987);
  RngStreamFamily sub = family.SubFamily(64);
  EXPECT_EQ(sub.base_seed(), family.StreamSeed(64));
  // A sub-family's streams differ from the parent's at the same indices.
  EXPECT_NE(sub.StreamSeed(0), family.StreamSeed(0));
  EXPECT_NE(sub.StreamSeed(64), family.StreamSeed(64));
}

}  // namespace
}  // namespace popan
