#include "util/statusor.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace popan {
namespace {

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOnErrorDies) {
  StatusOr<int> result = Status::NotFound("missing");
  // The unchecked access IS the subject under test: value() on an error
  // must CHECK-fail.
  // popan-lint: allow(status-unchecked-value)
  EXPECT_DEATH(result.value(), "value\\(\\) on error StatusOr");
}

TEST(StatusOrTest, ConstructingFromOkStatusDies) {
  EXPECT_DEATH(StatusOr<int>(Status::OK()), "OK status");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrTest, MutableValue) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2};
  ASSERT_TRUE(result.ok());
  result->push_back(3);
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(StatusOrTest, CopyPreservesState) {
  StatusOr<int> ok_result = 5;
  StatusOr<int> ok_copy = ok_result;
  EXPECT_TRUE(ok_copy.ok());
  EXPECT_EQ(ok_copy.value(), 5);

  StatusOr<int> err_result = Status::Internal("x");
  StatusOr<int> err_copy = err_result;
  EXPECT_FALSE(err_copy.ok());
  EXPECT_EQ(err_copy.status().message(), "x");
}

[[nodiscard]] StatusOr<int> ProduceValue(bool succeed) {
  if (succeed) return 10;
  return Status::NumericError("nope");
}

[[nodiscard]] StatusOr<int> UsesAssignOrReturn(bool succeed) {
  POPAN_ASSIGN_OR_RETURN(int v, ProduceValue(succeed));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  StatusOr<int> result = UsesAssignOrReturn(true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 20);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  StatusOr<int> result = UsesAssignOrReturn(false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericError);
}

}  // namespace
}  // namespace popan
