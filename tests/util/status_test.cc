#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace popan {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("a"), StatusCode::kNotFound},
      {Status::AlreadyExists("a"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("a"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("a"), StatusCode::kFailedPrecondition},
      {Status::ResourceExhausted("a"), StatusCode::kResourceExhausted},
      {Status::NotConverged("a"), StatusCode::kNotConverged},
      {Status::NumericError("a"), StatusCode::kNumericError},
      {Status::Internal("a"), StatusCode::kInternal},
      {Status::Unimplemented("a"), StatusCode::kUnimplemented},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "a");
  }
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotConverged("iteration budget exhausted");
  EXPECT_EQ(s.ToString(), "NotConverged: iteration budget exhausted");
}

TEST(StatusTest, ToStringOmitsEmptyMessage) {
  Status s(StatusCode::kNotFound, "");
  EXPECT_EQ(s.ToString(), "NotFound");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("bug");
  EXPECT_EQ(os.str(), "Internal: bug");
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericError), "NumericError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

[[nodiscard]] Status Fails() { return Status::NotFound("inner"); }

[[nodiscard]] Status UsesReturnIfError() {
  POPAN_RETURN_IF_ERROR(Fails());
  return Status::Internal("unreachable");
}

[[nodiscard]] Status UsesReturnIfErrorOkPath() {
  POPAN_RETURN_IF_ERROR(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError(), Status::NotFound("inner"));
}

TEST(StatusTest, ReturnIfErrorFallsThroughOnOk) {
  EXPECT_EQ(UsesReturnIfErrorOkPath(), Status::Internal("reached"));
}

}  // namespace
}  // namespace popan
