#include "util/logging.h"

#include <gtest/gtest.h>

namespace popan {
namespace {

/// Captures stderr for the duration of one statement via gtest's facility.
TEST(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetLevel) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  POPAN_LOG(kInfo) << "visible " << 42;
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("[INFO"), std::string::npos);
  SetLogLevel(saved);
}

TEST(LoggingTest, SuppressesBelowThreshold) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  POPAN_LOG(kInfo) << "hidden";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  SetLogLevel(saved);
}

TEST(LoggingTest, SuppressedMessageDoesNotEvaluateOperands) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "costly";
  };
  POPAN_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(saved);
}

TEST(LoggingTest, WarningAndErrorTags) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  POPAN_LOG(kWarning) << "w";
  POPAN_LOG(kError) << "e";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN"), std::string::npos);
  EXPECT_NE(out.find("[ERROR"), std::string::npos);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace popan
