/// The recovery storm: the durability acceptance test. For every seeded
/// crash point — truncations, bit flips and torn writes injected into the
/// snapshot or the WAL — Recover() must either produce a tree whose census
/// exactly equals the census after the surviving log prefix, or fail with a
/// clean Status. Never a crash, never a silently wrong tree.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/fault_injection.h"
#include "spatial/checkpoint.h"
#include "spatial/serialization.h"
#include "spatial/wal.h"
#include "util/random.h"

namespace popan::spatial {
namespace {

using geo::Box2;
using geo::Point2;
using sim::ApplyFault;
using sim::DeriveFaultPlan;
using sim::ExperimentRunner;
using sim::FaultKind;
using sim::FaultKindName;
using sim::FaultPlan;

constexpr size_t kBasePoints = 250;   // points in the checkpointed state
constexpr size_t kChurnOps = 250;     // mixed ops logged after it
constexpr uint64_t kSeedsPerConfig = 120;

// One checkpointed workload: the snapshot, the WAL written after it, and
// the census after every prefix of that WAL (index 0 = snapshot state).
struct StormScenario {
  std::string snapshot;
  std::string wal;
  uint64_t anchor = 0;
  std::vector<Census> census_by_applied;
};

StormScenario BuildScenario(size_t capacity, uint64_t seed) {
  PrTreeOptions options;
  options.capacity = capacity;
  options.max_depth = 25;
  PrTree<2> tree(Box2::UnitCube(), options);
  Pcg32 rng(DeriveSeed(seed, 0xB10CULL));
  std::vector<Point2> live;
  // Build the base state through the Table-3 churn pattern: inserts until
  // kBasePoints, then a checkpoint, then a mixed insert/erase tail.
  while (tree.size() < kBasePoints) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (tree.Insert(p).ok()) live.push_back(p);
  }
  StormScenario scenario;
  scenario.anchor = kBasePoints;
  std::ostringstream snapshot_out, wal_out;
  StatusOr<WalWriter> writer =
      Checkpoint(tree, scenario.anchor, &snapshot_out, &wal_out);
  POPAN_CHECK(writer.ok()) << writer.status().ToString();
  scenario.census_by_applied.push_back(tree.LiveCensus());
  size_t logged = 0;
  while (logged < kChurnOps * 2) {
    bool insert = live.empty() || rng.NextBounded(2) == 0;
    if (insert) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (!tree.Insert(p).ok()) continue;
      POPAN_CHECK(writer->LogInsert(p).ok());
      live.push_back(p);
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      POPAN_CHECK(tree.Erase(live[idx]).ok());
      POPAN_CHECK(writer->LogErase(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
    scenario.census_by_applied.push_back(tree.LiveCensus());
    ++logged;
  }
  scenario.snapshot = snapshot_out.str();
  scenario.wal = wal_out.str();
  return scenario;
}

// Runs one seeded crash against the scenario. Returns an empty string on
// success, else a description of the violated guarantee. gtest assertions
// are not thread-safe, so workers report and the main thread asserts.
std::string RunOneCrash(const StormScenario& scenario, uint64_t seed) {
  const bool fault_snapshot = seed % 4 == 3;
  const std::string& target =
      fault_snapshot ? scenario.snapshot : scenario.wal;
  FaultPlan plan = DeriveFaultPlan(seed, target.size());
  std::string image = ApplyFault(target, plan);
  const std::string label =
      std::string(fault_snapshot ? "snapshot" : "wal") + " seed " +
      std::to_string(seed) + " " + FaultKindName(plan.kind) + " @" +
      std::to_string(plan.offset);

  StatusOr<RecoverResult> recovered =
      fault_snapshot ? Recover(image, scenario.wal)
                     : Recover(scenario.snapshot, image);
  if (!recovered.ok()) {
    // A clean error is within contract for any injected fault, except that
    // a recovered-tree invariant failure would mean we built a bad tree.
    if (recovered.status().code() == StatusCode::kInternal) {
      return label + ": recovery reported a corrupt tree: " +
             recovered.status().ToString();
    }
    return "";
  }
  // Recovery succeeded: the tree must match the census at the exact prefix
  // it claims to have applied. A fault can leave a shorter-but-intact log
  // (or, for the snapshot, only cosmetic damage), never a wrong tree.
  if (recovered->last_sequence < scenario.anchor) {
    return label + ": last_sequence below the snapshot anchor";
  }
  size_t applied =
      static_cast<size_t>(recovered->last_sequence - scenario.anchor);
  if (applied >= scenario.census_by_applied.size()) {
    return label + ": recovery claims more records than were written";
  }
  if (applied != recovered->records_applied) {
    return label + ": records_applied disagrees with last_sequence";
  }
  if (!(recovered->tree.LiveCensus() ==
        scenario.census_by_applied[applied])) {
    return label + ": census mismatch after " + std::to_string(applied) +
           " records";
  }
  Status invariants = recovered->tree.CheckInvariants();
  if (!invariants.ok()) {
    return label + ": recovered tree fails invariants: " +
           invariants.ToString();
  }
  if (fault_snapshot) return "";
  if (recovered->wal_valid_bytes == 0) {
    // The fault destroyed the WAL header itself; resuming the log is not
    // possible (a fresh Checkpoint rewrites it) — nothing left to check.
    return "";
  }

  // A WAL written after recovery must replay cleanly over the same
  // snapshot: truncate to the intact prefix and resume at next_sequence.
  std::string resumed = image.substr(0, recovered->wal_valid_bytes);
  std::ostringstream tail;
  WalWriter appender(&tail, recovered->tree.bounds(),
                     WalWriter::ResumeAt{recovered->next_sequence});
  PrTree<2> continued = recovered->tree;
  Pcg32 rng(DeriveSeed(seed, 0x4E57ULL));
  for (int extra = 0; extra < 8; ++extra) {
    Point2 p(rng.NextDouble(), rng.NextDouble());
    if (!continued.Insert(p).ok()) continue;
    if (!appender.LogInsert(p).ok()) {
      return label + ": resume append failed";
    }
  }
  resumed += tail.str();
  StatusOr<RecoverResult> replayed = Recover(scenario.snapshot, resumed);
  if (!replayed.ok()) {
    return label + ": post-recovery WAL does not replay: " +
           replayed.status().ToString();
  }
  if (replayed->truncated_tail) {
    return label + ": post-recovery WAL replays torn: " +
           replayed->truncation_reason;
  }
  if (!(replayed->tree.LiveCensus() == continued.LiveCensus())) {
    return label + ": post-recovery WAL replays to a different tree";
  }
  return "";
}

TEST(RecoveryStormTest, EveryCrashPointRecoversOrFailsCleanly) {
  ExperimentRunner runner;
  for (size_t capacity : {size_t{1}, size_t{4}}) {
    StormScenario scenario = BuildScenario(capacity, 1000 + capacity);
    std::vector<std::string> failures = runner.Map<std::string>(
        kSeedsPerConfig,
        [&scenario](size_t seed) {
          return RunOneCrash(scenario, static_cast<uint64_t>(seed));
        });
    for (size_t seed = 0; seed < failures.size(); ++seed) {
      EXPECT_EQ(failures[seed], "") << "capacity " << capacity;
    }
  }
}

TEST(RecoveryStormTest, UndamagedArtifactsRecoverTheFullState) {
  // Control arm: with no fault injected, recovery lands exactly on the
  // final census.
  StormScenario scenario = BuildScenario(2, 77);
  StatusOr<RecoverResult> recovered =
      Recover(scenario.snapshot, scenario.wal);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->truncated_tail)
      << recovered->truncation_reason;
  EXPECT_EQ(recovered->tree.LiveCensus(),
            scenario.census_by_applied.back());
}

}  // namespace
}  // namespace popan::spatial
