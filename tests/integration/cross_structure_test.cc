// Differential tests: every point structure in the library answers the
// same queries over the same data identically (and identically to brute
// force). A disagreement pinpoints a bug in exactly one structure, which
// makes this suite a cheap, high-yield regression net.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/excell.h"
#include "spatial/grid_file.h"
#include "spatial/linear_quadtree.h"
#include "spatial/point_quadtree.h"
#include "spatial/pr_tree.h"
#include "util/random.h"

namespace popan {
namespace {

using geo::Box2;
using geo::Point2;

std::vector<Point2> SortedByCoords(std::vector<Point2> points) {
  std::sort(points.begin(), points.end(),
            [](const Point2& a, const Point2& b) {
              return std::make_pair(a.x(), a.y()) <
                     std::make_pair(b.x(), b.y());
            });
  return points;
}

class CrossStructureTest : public testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Pcg32 rng(GetParam());
    while (points_.size() < 500) {
      Point2 p(rng.NextDouble(), rng.NextDouble());
      if (std::find(points_.begin(), points_.end(), p) == points_.end()) {
        points_.push_back(p);
      }
    }
  }

  std::vector<Point2> points_;
};

TEST_P(CrossStructureTest, AllStructuresAgreeOnMembershipAndRange) {
  spatial::PrTreeOptions pr_options;
  pr_options.capacity = 4;
  spatial::PrQuadtree pr(Box2::UnitCube(), pr_options);
  spatial::PointQuadtree pq;
  spatial::GridFileOptions grid_options;
  grid_options.bucket_capacity = 4;
  spatial::GridFile grid(Box2::UnitCube(), grid_options);
  spatial::ExcellOptions excell_options;
  excell_options.bucket_capacity = 4;
  spatial::Excell excell(Box2::UnitCube(), excell_options);

  for (const Point2& p : points_) {
    ASSERT_TRUE(pr.Insert(p).ok());
    ASSERT_TRUE(pq.Insert(p).ok());
    ASSERT_TRUE(grid.Insert(p).ok());
    ASSERT_TRUE(excell.Insert(p).ok());
  }
  StatusOr<spatial::LinearPrQuadtree> linear =
      spatial::LinearPrQuadtree::BulkLoad(Box2::UnitCube(), points_,
                                          pr_options);
  ASSERT_TRUE(linear.ok());

  // Membership: stored and novel points.
  Pcg32 rng(GetParam() ^ 0x5555);
  std::vector<Point2> probes = points_;
  for (int i = 0; i < 200; ++i) {
    probes.emplace_back(rng.NextDouble(), rng.NextDouble());
  }
  for (const Point2& p : probes) {
    bool expected = std::find(points_.begin(), points_.end(), p) !=
                    points_.end();
    EXPECT_EQ(pr.Contains(p), expected);
    EXPECT_EQ(pq.Contains(p), expected);
    EXPECT_EQ(grid.Contains(p), expected);
    EXPECT_EQ(excell.Contains(p), expected);
    EXPECT_EQ(linear->Contains(p), expected);
  }

  // Range queries.
  for (int trial = 0; trial < 15; ++trial) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    Box2 query(Point2(std::min(x0, x1), std::min(y0, y1)),
               Point2(std::max(x0, x1), std::max(y0, y1)));
    std::vector<Point2> expected;
    for (const Point2& p : points_) {
      if (query.Contains(p)) expected.push_back(p);
    }
    expected = SortedByCoords(std::move(expected));
    EXPECT_EQ(SortedByCoords(pr.RangeQuery(query)), expected);
    EXPECT_EQ(SortedByCoords(pq.RangeQuery(query)), expected);
    EXPECT_EQ(SortedByCoords(grid.RangeQuery(query)), expected);
    EXPECT_EQ(SortedByCoords(excell.RangeQuery(query)), expected);
    EXPECT_EQ(SortedByCoords(linear->RangeQuery(query)), expected);
  }
}

TEST_P(CrossStructureTest, NearestNeighbourAgreement) {
  spatial::PrTreeOptions options;
  options.capacity = 2;
  spatial::PrQuadtree pr(Box2::UnitCube(), options);
  spatial::PointQuadtree pq;
  for (const Point2& p : points_) {
    ASSERT_TRUE(pr.Insert(p).ok());
    ASSERT_TRUE(pq.Insert(p).ok());
  }
  Pcg32 rng(GetParam() ^ 0x9999);
  for (int trial = 0; trial < 25; ++trial) {
    Point2 target(rng.NextDouble(), rng.NextDouble());
    double a = pr.Nearest(target)->DistanceSquared(target);
    double b = pq.Nearest(target)->DistanceSquared(target);
    EXPECT_DOUBLE_EQ(a, b);
    std::vector<Point2> k1 = pr.NearestK(target, 1);
    ASSERT_EQ(k1.size(), 1u);
    EXPECT_DOUBLE_EQ(k1[0].DistanceSquared(target), a);
  }
}

TEST_P(CrossStructureTest, ErasureKeepsStructuresAligned) {
  spatial::PrTreeOptions options;
  options.capacity = 3;
  spatial::PrQuadtree pr(Box2::UnitCube(), options);
  spatial::GridFileOptions grid_options;
  grid_options.bucket_capacity = 3;
  spatial::GridFile grid(Box2::UnitCube(), grid_options);
  spatial::ExcellOptions excell_options;
  excell_options.bucket_capacity = 3;
  spatial::Excell excell(Box2::UnitCube(), excell_options);
  for (const Point2& p : points_) {
    ASSERT_TRUE(pr.Insert(p).ok());
    ASSERT_TRUE(grid.Insert(p).ok());
    ASSERT_TRUE(excell.Insert(p).ok());
  }
  // Erase every third point from all three structures.
  for (size_t i = 0; i < points_.size(); i += 3) {
    ASSERT_TRUE(pr.Erase(points_[i]).ok());
    ASSERT_TRUE(grid.Erase(points_[i]).ok());
    ASSERT_TRUE(excell.Erase(points_[i]).ok());
  }
  for (size_t i = 0; i < points_.size(); ++i) {
    bool expected = i % 3 != 0;
    EXPECT_EQ(pr.Contains(points_[i]), expected);
    EXPECT_EQ(grid.Contains(points_[i]), expected);
    EXPECT_EQ(excell.Contains(points_[i]), expected);
  }
  EXPECT_TRUE(pr.CheckInvariants().ok());
  EXPECT_TRUE(grid.CheckInvariants().ok());
  EXPECT_TRUE(excell.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossStructureTest,
                         testing::Values<uint64_t>(1, 2, 3, 4),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace popan
