// End-to-end reproduction checks: the analytic model (src/core) against
// the simulated PR quadtrees (src/spatial + src/sim), asserting the
// paper's qualitative findings — agreement of the expected distribution,
// theory's uniform over-estimation (aging), and the uniform-vs-Gaussian
// phasing contrast. These are the repository's acceptance tests.

#include <cmath>

#include <gtest/gtest.h>

#include "core/aging.h"
#include "core/occupancy.h"
#include "core/phasing.h"
#include "core/pmr_model.h"
#include "core/steady_state.h"
#include "sim/distributions.h"
#include "sim/experiment.h"
#include "spatial/census.h"
#include "spatial/extendible_hash.h"
#include "spatial/pmr_quadtree.h"
#include "util/random.h"

namespace popan {
namespace {

core::SteadyState Solve(size_t m, size_t fanout = 4) {
  core::PopulationModel model(core::TreeModelParams{m, fanout});
  StatusOr<core::SteadyState> ss = core::SolveSteadyState(model);
  EXPECT_TRUE(ss.ok()) << ss.status().ToString();
  return ss.value();
}

sim::ExperimentResult RunPaperEnsemble(size_t m,
                                       size_t points = 1000,
                                       size_t trials = 10) {
  sim::ExperimentSpec spec;
  spec.capacity = m;
  spec.num_points = points;
  spec.trials = trials;
  spec.max_depth = 16;  // effectively untruncated for 1000 points
  spec.base_seed = 1987;
  return sim::RunPrQuadtreeExperiment(spec);
}

/// Table 1: for every capacity the experimental distribution must be close
/// to the model in total variation, and both must be unimodal with thin
/// tails (the paper: "a small value for low occupancies, rises to a peak,
/// and decreases again").
TEST(PaperReproductionTest, Table1DistributionsAgree) {
  for (size_t m = 1; m <= 8; ++m) {
    core::SteadyState theory = Solve(m);
    sim::ExperimentResult experiment = RunPaperEnsemble(m);
    double distance = core::DistributionDistance(theory.distribution,
                                                 experiment.proportions);
    // The paper's own Table 1 rows differ from theory by up to ~0.11 in
    // total variation (m = 8); allow modest headroom.
    EXPECT_LT(distance, 0.15) << "m=" << m;
  }
}

TEST(PaperReproductionTest, Table1SimplePrQuadtreeHeadline) {
  // §III: theory (1/2, 1/2); experiment ~53% empty / 47% full.
  core::SteadyState theory = Solve(1);
  EXPECT_NEAR(theory.distribution[0], 0.5, 1e-10);
  sim::ExperimentResult experiment = RunPaperEnsemble(1);
  EXPECT_NEAR(experiment.proportions[0], 0.53, 0.02);
  EXPECT_NEAR(experiment.proportions[1], 0.47, 0.02);
}

/// Table 2: experimental occupancy below theoretical for EVERY m (aging),
/// with a single-digit-to-low-teens percent gap.
TEST(PaperReproductionTest, Table2TheoryOverestimatesUniformly) {
  for (size_t m = 1; m <= 8; ++m) {
    core::SteadyState theory = Solve(m);
    sim::ExperimentResult experiment = RunPaperEnsemble(m);
    double diff = core::PercentDifference(theory.average_occupancy,
                                          experiment.mean_occupancy);
    EXPECT_GT(diff, 0.0) << "m=" << m << " (aging must lower experiment)";
    EXPECT_LT(diff, 20.0) << "m=" << m;
  }
}

/// Table 3: occupancy by depth decreases toward the split-cohort value.
TEST(PaperReproductionTest, Table3AgingGradient) {
  sim::ExperimentSpec spec;
  spec.capacity = 1;
  spec.num_points = 1000;
  spec.trials = 10;
  spec.max_depth = 9;  // the paper's truncation
  sim::ExperimentResult result = sim::RunPrQuadtreeExperiment(spec);
  core::AgingReport report =
      core::AnalyzeAging(result.pooled_census, {1, 4}, spec.trials);

  // Occupancy at the shallowest populated depth beats the deepest
  // non-truncated depth.
  double shallow = -1.0, deep = -1.0;
  for (const core::AgingDepthRow& row : report.rows) {
    if (row.leaves < 5.0 || row.depth >= spec.max_depth) continue;
    if (shallow < 0.0) shallow = row.average_occupancy;
    deep = row.average_occupancy;
  }
  ASSERT_GE(shallow, 0.0);
  EXPECT_GT(shallow, deep);
  EXPECT_NEAR(report.split_cohort_occupancy, 0.40, 1e-12);
  EXPECT_NEAR(deep, 0.40, 0.10);
}

/// Table 4 / Figure 2: uniform data oscillates with period ~4x in N and
/// does not damp out.
TEST(PaperReproductionTest, Table4UniformPhasing) {
  sim::ExperimentSpec spec;
  spec.capacity = 8;
  spec.trials = 10;
  spec.max_depth = 16;
  spec.distribution = sim::PointDistributionKind::kUniform;
  std::vector<size_t> schedule = core::LogarithmicSchedule(64, 4096, 4);
  core::OccupancySeries series = sim::RunOccupancySweep(spec, schedule);
  core::PhasingAnalysis analysis = core::AnalyzePhasing(series);

  ASSERT_GE(analysis.maxima.size(), 2u) << analysis.ToString();
  EXPECT_NEAR(analysis.period_ratio, 4.0, 1.2) << analysis.ToString();
  // Oscillation is substantial: the paper's swing is ~0.8 occupancy.
  EXPECT_GT(analysis.first_swing, 0.3);
  EXPECT_GT(analysis.last_swing, 0.3);
}

/// Table 5 / Figure 3: the Gaussian series is visibly flatter than the
/// uniform one at large N.
TEST(PaperReproductionTest, Table5GaussianDamping) {
  std::vector<size_t> schedule = core::LogarithmicSchedule(64, 4096, 4);
  sim::ExperimentSpec uniform_spec;
  uniform_spec.capacity = 8;
  uniform_spec.trials = 10;
  uniform_spec.max_depth = 16;
  uniform_spec.distribution = sim::PointDistributionKind::kUniform;
  sim::ExperimentSpec gaussian_spec = uniform_spec;
  gaussian_spec.distribution = sim::PointDistributionKind::kGaussian;

  core::OccupancySeries uniform =
      sim::RunOccupancySweep(uniform_spec, schedule);
  core::OccupancySeries gaussian =
      sim::RunOccupancySweep(gaussian_spec, schedule);

  // Compare the swing over the last full cycle (N in [1024, 4096]).
  auto tail_swing = [&](const core::OccupancySeries& series) {
    double lo = 1e9, hi = -1e9;
    for (size_t i = 0; i < series.sample_sizes.size(); ++i) {
      if (series.sample_sizes[i] < 1024) continue;
      lo = std::min(lo, series.average_occupancy[i]);
      hi = std::max(hi, series.average_occupancy[i]);
    }
    return hi - lo;
  };
  EXPECT_LT(tail_swing(gaussian), tail_swing(uniform))
      << "Gaussian phasing must damp out (paper Table 5)";
}

/// §V: the PMR model agrees with simulated PMR quadtree censuses.
TEST(PaperReproductionTest, PmrModelMatchesSimulation) {
  const size_t threshold = 4;
  // Simulate: road-like short segments, so fragments rarely straddle
  // many blocks and q is estimated with the matching style.
  spatial::PmrQuadtreeOptions options;
  options.splitting_threshold = threshold;
  options.max_depth = 12;
  spatial::Census pooled;
  sim::SegmentDistributionParams seg_params;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    spatial::PmrQuadtree tree(geo::Box2::UnitCube(), options);
    Pcg32 rng(DeriveSeed(7, trial));
    for (int i = 0; i < 800; ++i) {
      geo::Segment s =
          sim::DrawSegment(sim::SegmentDistributionKind::kUniformEndpoints,
                           seg_params, geo::Box2::UnitCube(), rng);
      ASSERT_TRUE(tree.Insert(s).ok());
    }
    pooled.Merge(spatial::TakeCensus(tree));
  }

  core::PopulationModel folded = core::BuildPmrModel(
      threshold, core::SegmentStyle::kUniformEndpoints, 200000, 42);
  core::PopulationModel extended = core::BuildExtendedPmrModel(
      threshold, core::SegmentStyle::kUniformEndpoints, 12, 200000, 42);
  StatusOr<core::SteadyState> folded_ss = core::SolveSteadyState(folded);
  StatusOr<core::SteadyState> extended_ss =
      core::SolveSteadyState(extended);
  ASSERT_TRUE(folded_ss.ok());
  ASSERT_TRUE(extended_ss.ok());

  double sim_occ = pooled.AverageOccupancy();
  // §V reports agreement "even better than in the case of the PR
  // quadtree". The folded (paper-style) model lands within ~25%; the
  // extended model with explicit over-threshold states within ~10%.
  EXPECT_NEAR(sim_occ / folded_ss->average_occupancy, 1.0, 0.25)
      << "folded " << folded_ss->average_occupancy << " vs sim " << sim_occ;
  EXPECT_NEAR(sim_occ / extended_ss->average_occupancy, 1.0, 0.10)
      << "extended " << extended_ss->average_occupancy << " vs sim "
      << sim_occ;
}

/// §I/§II: Fagin's extendible hashing is a fanout-2 population system; the
/// model with c = 2 predicts its bucket occupancy.
TEST(PaperReproductionTest, ExtendibleHashingMatchesFanout2Model) {
  const size_t capacity = 8;
  spatial::ExtendibleHashOptions options;
  options.bucket_capacity = capacity;
  spatial::Census pooled;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    spatial::ExtendibleHash table(options);
    Pcg32 rng(DeriveSeed(11, trial));
    for (int i = 0; i < 4000; ++i) {
      table.Insert(rng.Next64()).ok();
    }
    table.VisitBuckets([&pooled](size_t depth, size_t occupancy) {
      pooled.AddLeaf(occupancy, depth);
    });
  }
  core::PopulationModel model(core::TreeModelParams{capacity, 2});
  StatusOr<core::SteadyState> ss = core::SolveSteadyState(model);
  ASSERT_TRUE(ss.ok());
  // Hashing phases like uniform quadtrees, so a single N sits somewhere on
  // the cycle; accept a generous band around the model mean.
  EXPECT_NEAR(pooled.AverageOccupancy() / ss->average_occupancy, 1.0, 0.20);
}

/// The model is dimension-generic (§III: "the same principles apply in
/// the case of octrees"): simulation tracks theory for D = 1 and D = 3.
TEST(PaperReproductionTest, BintreeAndOctreeAgreeWithTheory) {
  sim::ExperimentSpec spec;
  spec.capacity = 4;
  spec.num_points = 1000;
  spec.trials = 10;
  spec.max_depth = 24;
  sim::ExperimentResult bintree = sim::RunPrTreeExperiment<1>(spec);
  sim::ExperimentResult octree = sim::RunPrTreeExperiment<3>(spec);
  core::SteadyState theory2 = Solve(4, 2);
  core::SteadyState theory8 = Solve(4, 8);
  EXPECT_NEAR(bintree.mean_occupancy / theory2.average_occupancy, 1.0, 0.15);
  EXPECT_NEAR(octree.mean_occupancy / theory8.average_occupancy, 1.0, 0.20);
}

}  // namespace
}  // namespace popan
