/// The reader/writer storm: the concurrency acceptance test and the CI
/// TSan target. For every seed and every reader count in the scaling
/// matrix, a single writer replays a deterministic trace against the
/// epoch-snapshot layer while reader threads pin snapshots mid-flight;
/// every pinned snapshot must be bitwise identical (census, size,
/// canonical range results) to a serial replay of its own operation
/// prefix, and every retired node must be reclaimed once the readers
/// leave. Environment knobs (all optional) size the matrix:
///   POPAN_STORM_SEEDS    seeds per reader count      (default 64)
///   POPAN_STORM_OPS      trace length                (default 256)
///   POPAN_READER_THREADS run ONLY this reader count  (default 1,2,8,16)

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/rw_storm.h"

namespace popan::sim {
namespace {

size_t EnvOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

std::vector<size_t> ReaderMatrix() {
  const char* pinned = std::getenv("POPAN_READER_THREADS");
  if (pinned != nullptr && *pinned != '\0') {
    return {EnvOr("POPAN_READER_THREADS", 4)};
  }
  return {1, 2, 8, 16};
}

RwStormConfig ConfigFor(size_t readers, uint64_t seed) {
  RwStormConfig config;
  config.num_ops = EnvOr("POPAN_STORM_OPS", 256);
  config.reader_threads = readers;
  config.snapshots_per_reader = 3;
  config.queries_per_snapshot = 2;
  config.capacity = 4;
  config.max_depth = 32;
  config.insert_fraction = 0.65;
  config.seed = seed;
  config.batch_size = 32;
  return config;
}

TEST(RwStormTest, CowTreeReaderScalingMatrix) {
  const size_t seeds = EnvOr("POPAN_STORM_SEEDS", 64);
  ExperimentRunner runner;
  for (size_t readers : ReaderMatrix()) {
    for (uint64_t seed = 0; seed < seeds; ++seed) {
      RwStormConfig config = ConfigFor(readers, seed);
      StatusOr<RwStormStats> stats = RunCowTreeStorm(config, runner);
      ASSERT_TRUE(stats.ok()) << "readers=" << readers << " seed=" << seed
                              << ": " << stats.status().ToString();
      EXPECT_EQ(stats->ops_applied, config.num_ops);
      EXPECT_EQ(stats->snapshots_verified,
                readers * config.snapshots_per_reader + 1);
      // Retire/reclaim must balance exactly once the storm drains —
      // anything else is a leak or a double free the sanitizers jump on.
      EXPECT_EQ(stats->objects_retired, stats->objects_reclaimed)
          << "readers=" << readers << " seed=" << seed;
      // One advance per published version plus the final drain.
      EXPECT_EQ(stats->epochs_advanced, config.num_ops + 1);
    }
  }
}

TEST(RwStormTest, LinearQuadtreeReaderScalingMatrix) {
  const size_t seeds = EnvOr("POPAN_STORM_SEEDS", 64);
  ExperimentRunner runner;
  for (size_t readers : ReaderMatrix()) {
    for (uint64_t seed = 0; seed < seeds; ++seed) {
      RwStormConfig config = ConfigFor(readers, seed);
      StatusOr<RwStormStats> stats = RunLinearQuadtreeStorm(config, runner);
      ASSERT_TRUE(stats.ok()) << "readers=" << readers << " seed=" << seed
                              << ": " << stats.status().ToString();
      EXPECT_EQ(stats->ops_applied, config.num_ops);
      EXPECT_EQ(stats->snapshots_verified,
                readers * config.snapshots_per_reader);
      EXPECT_EQ(stats->objects_retired, stats->objects_reclaimed)
          << "readers=" << readers << " seed=" << seed;
    }
  }
}

// The storm must also hold when the writer outruns every reader by a wide
// margin (tiny trace, many readers — most snapshots land on the final
// version) and when readers outnumber hardware threads.
TEST(RwStormTest, OversubscribedReadersSmallTrace) {
  ExperimentRunner runner;
  RwStormConfig config = ConfigFor(16, 7);
  config.num_ops = 32;
  config.snapshots_per_reader = 2;
  StatusOr<RwStormStats> stats = RunCowTreeStorm(config, runner);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->objects_retired, stats->objects_reclaimed);
}

}  // namespace
}  // namespace popan::sim
