// SIMD/scalar parity storm: 64 seeded workloads, every batch-accelerated
// backend, both dispatch modes. The vectorized kernels (util/simd.h) are
// required to be BITWISE identical to their scalar fallbacks — same
// results, same canonical ordering, same QueryCost counters, same census
// histograms — so each trial runs the identical workload under
// simd::SetForceScalar(false) and (true) and compares the FNV checksum
// chains (query::ChecksumResult folds coordinate bit patterns and all four
// cost counters). The CI force-scalar leg additionally runs the whole
// suite with POPAN_FORCE_SCALAR=1 so every other test exercises the
// fallback path too.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "query/query.h"
#include "spatial/census.h"
#include "spatial/extendible_hash.h"
#include "spatial/linear_quadtree.h"
#include "spatial/mx_quadtree.h"
#include "spatial/pr_tree.h"
#include "spatial/snapshot_view.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/statusor.h"

namespace popan {
namespace {

using geo::Box2;
using geo::Point2;
using query::ChecksumResult;
using query::Execute;
using query::QueryResult;
using query::QuerySpec;

/// Restores the dispatch mode even when a test fails mid-way.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : prev_(simd::ForceScalar()) {
    simd::SetForceScalar(on);
  }
  ~ScopedForceScalar() { simd::SetForceScalar(prev_); }

 private:
  bool prev_;
};

constexpr uint32_t kLattice = 32;

/// Seeded points on the kLattice grid (duplicates likely), so partial
/// match queries have real matches and the MX cell mapping is exact.
std::vector<Point2> MakePoints(uint64_t seed, size_t n) {
  Pcg32 rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(Point2(rng.NextBounded(kLattice) / double{kLattice},
                         rng.NextBounded(kLattice) / double{kLattice}));
  }
  return pts;
}

/// The per-seed query mix: ranges of varied selectivity, partial matches
/// on both axes at lattice values, and a few k-NN probes.
std::vector<QuerySpec> MakeSpecs(uint64_t seed) {
  Pcg32 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 4; ++i) {
    const Point2 lo(rng.NextDouble(0.0, 0.8), rng.NextDouble(0.0, 0.8));
    const Point2 hi(lo.x() + rng.NextDouble(0.05, 0.2 + 0.2 * i),
                    lo.y() + rng.NextDouble(0.05, 0.2 + 0.2 * i));
    specs.push_back(QuerySpec::Range(Box2(lo, hi)));
  }
  specs.push_back(QuerySpec::Range(Box2::UnitCube()));  // everything
  for (size_t axis = 0; axis < 2; ++axis) {
    specs.push_back(QuerySpec::PartialMatch(
        axis, rng.NextBounded(kLattice) / double{kLattice}));
  }
  for (int i = 0; i < 2; ++i) {
    specs.push_back(QuerySpec::NearestK(
        Point2(rng.NextDouble(), rng.NextDouble()), 1 + 4 * i));
  }
  return specs;
}

/// Runs every spec against `backend` and folds results into one checksum.
template <typename Backend>
uint64_t ChecksumAll(const Backend& backend,
                     const std::vector<QuerySpec>& specs) {
  uint64_t h = query::kChecksumSeed;
  for (const QuerySpec& spec : specs) {
    h = ChecksumResult(h, Execute(backend, spec));
  }
  return h;
}

class SimdParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimdParityTest, PrTreeBatchBuildAndQueries) {
  const uint64_t seed = GetParam();
  const std::vector<Point2> pts = MakePoints(seed, 700);
  const std::vector<QuerySpec> specs = MakeSpecs(seed);

  spatial::PrQuadtree simd_tree((Box2::UnitCube()));
  spatial::PrQuadtree scalar_tree((Box2::UnitCube()));
  spatial::BatchInsertStats simd_stats, scalar_stats;
  uint64_t simd_sum = 0, scalar_sum = 0;
  {
    ScopedForceScalar scoped(false);
    simd_stats = simd_tree.InsertBatch(pts);
    simd_sum = ChecksumAll(simd_tree, specs);
  }
  {
    ScopedForceScalar scoped(true);
    scalar_stats = scalar_tree.InsertBatch(pts);
    scalar_sum = ChecksumAll(scalar_tree, specs);
  }
  EXPECT_EQ(simd_stats.inserted, scalar_stats.inserted);
  EXPECT_EQ(simd_stats.duplicates, scalar_stats.duplicates);
  EXPECT_EQ(simd_tree.size(), scalar_tree.size());
  EXPECT_EQ(simd_tree.LiveCensus(), scalar_tree.LiveCensus());
  EXPECT_TRUE(simd_tree.CheckInvariants().ok());
  EXPECT_EQ(simd_sum, scalar_sum) << "seed " << seed;
  // Cross-mode: queries on the SIMD-built tree answered by the scalar
  // kernels (and vice versa) must also agree.
  {
    ScopedForceScalar scoped(true);
    EXPECT_EQ(ChecksumAll(simd_tree, specs), simd_sum);
  }
}

TEST_P(SimdParityTest, LinearQuadtreeBulkLoadAndQueries) {
  const uint64_t seed = GetParam();
  std::vector<Point2> pts = MakePoints(seed, 500);
  // BulkLoad rejects duplicates; the lattice data is full of them.
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x() != b.x() ? a.x() < b.x() : a.y() < b.y();
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::vector<QuerySpec> specs = MakeSpecs(seed);

  uint64_t sums[2];
  for (int scalar = 0; scalar < 2; ++scalar) {
    ScopedForceScalar scoped(scalar == 1);
    StatusOr<spatial::LinearPrQuadtree> loaded =
        spatial::LinearPrQuadtree::BulkLoad(Box2::UnitCube(), pts);
    ASSERT_TRUE(loaded.ok());
    sums[scalar] = ChecksumAll(loaded.value(), specs);
  }
  EXPECT_EQ(sums[0], sums[1]) << "seed " << seed;
}

TEST_P(SimdParityTest, MxQuadtreeBatchBuildAndQueries) {
  const uint64_t seed = GetParam();
  Pcg32 rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  for (int i = 0; i < 600; ++i) {
    cells.emplace_back(rng.NextBounded(kLattice), rng.NextBounded(kLattice));
  }
  const std::vector<QuerySpec> specs = MakeSpecs(seed);

  spatial::MxQuadtree simd_tree(5);  // side == kLattice
  spatial::MxQuadtree scalar_tree(5);
  uint64_t sums[2];
  {
    ScopedForceScalar scoped(false);
    (void)simd_tree.InsertBatch(cells);
    query::MxBackend backend;
    backend.tree = &simd_tree;
    sums[0] = ChecksumAll(backend, specs);
  }
  {
    ScopedForceScalar scoped(true);
    (void)scalar_tree.InsertBatch(cells);
    query::MxBackend backend;
    backend.tree = &scalar_tree;
    sums[1] = ChecksumAll(backend, specs);
  }
  EXPECT_EQ(simd_tree.size(), scalar_tree.size());
  EXPECT_EQ(simd_tree.NodeCount(), scalar_tree.NodeCount());
  EXPECT_EQ(sums[0], sums[1]) << "seed " << seed;
}

TEST_P(SimdParityTest, HashCodecAndBucketFilters) {
  const uint64_t seed = GetParam();
  const std::vector<Point2> pts = MakePoints(seed, 400);
  const std::vector<QuerySpec> specs = MakeSpecs(seed);

  query::HashBackend backend;
  // Batched encode must match scalar Encode key-for-key on both paths.
  std::vector<uint64_t> keys(pts.size());
  std::vector<uint64_t> scalar_keys(pts.size());
  {
    ScopedForceScalar scoped(false);
    backend.codec.EncodeBatch(pts, keys.data());
  }
  {
    ScopedForceScalar scoped(true);
    backend.codec.EncodeBatch(pts, scalar_keys.data());
  }
  std::vector<double> xs(pts.size()), ys(pts.size());
  backend.codec.DecodeBatchLanes(keys.data(), keys.size(), xs.data(),
                                 ys.data());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_EQ(keys[i], backend.codec.Encode(pts[i])) << "key " << i;
    ASSERT_EQ(keys[i], scalar_keys[i]) << "key " << i;
    const Point2 decoded = backend.codec.Decode(keys[i]);
    ASSERT_EQ(xs[i], decoded.x());
    ASSERT_EQ(ys[i], decoded.y());
  }

  spatial::ExtendibleHashOptions options;
  options.identity_hash = true;
  spatial::ExtendibleHash table(options);
  for (uint64_t key : keys) {
    (void)table.Insert(key);  // duplicates rejected, fine
  }
  backend.table = &table;
  uint64_t sums[2];
  for (int scalar = 0; scalar < 2; ++scalar) {
    ScopedForceScalar scoped(scalar == 1);
    sums[scalar] = ChecksumAll(backend, specs);
  }
  EXPECT_EQ(sums[0], sums[1]) << "seed " << seed;
}

TEST_P(SimdParityTest, SnapshotViewQueries) {
  const uint64_t seed = GetParam();
  const std::vector<Point2> pts = MakePoints(seed, 400);
  const std::vector<QuerySpec> specs = MakeSpecs(seed);

  spatial::CowPrQuadtree tree(Box2::UnitCube());
  for (const Point2& p : pts) {
    (void)tree.Insert(p);  // duplicates rejected, fine
  }
  const spatial::SnapshotView2 snapshot = tree.Snapshot();
  uint64_t sums[2];
  spatial::Census censuses[2];
  for (int scalar = 0; scalar < 2; ++scalar) {
    ScopedForceScalar scoped(scalar == 1);
    sums[scalar] = ChecksumAll(snapshot, specs);
    censuses[scalar] = snapshot.LiveCensus();
  }
  EXPECT_EQ(sums[0], sums[1]) << "seed " << seed;
  EXPECT_EQ(censuses[0], censuses[1]);
}

INSTANTIATE_TEST_SUITE_P(Storm, SimdParityTest,
                         ::testing::Range(uint64_t{1}, uint64_t{65}));

}  // namespace
}  // namespace popan
