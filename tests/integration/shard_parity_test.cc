/// The sharded-store acceptance storm: for every seed in the matrix, a
/// writer churns a ShardRouter (census balancer live, splits and merges
/// landing mid-storm) under concurrent MultiSnapshot readers; every
/// pinned read is verified bitwise against a single-tree replay of its
/// own prefix, and the serial transcript — point counts plus content
/// checksums at fixed checkpoints — must be identical at every thread
/// count and under both SIMD and forced-scalar execution. Environment
/// knobs (all optional) size the matrix:
///   POPAN_STORM_SEEDS    seeds per reader count      (default 64)
///   POPAN_STORM_OPS      trace length                (default 256)
///   POPAN_READER_THREADS run ONLY this reader count  (default 1,2,8)

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/shard_storm.h"
#include "sim/experiment.h"
#include "util/simd.h"

namespace popan::shard {
namespace {

size_t EnvOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

std::vector<size_t> ReaderMatrix() {
  const char* pinned = std::getenv("POPAN_READER_THREADS");
  if (pinned != nullptr && *pinned != '\0') {
    return {EnvOr("POPAN_READER_THREADS", 4)};
  }
  return {1, 2, 8};
}

ShardStormConfig ConfigFor(size_t readers, uint64_t seed) {
  ShardStormConfig config;
  config.num_ops = EnvOr("POPAN_STORM_OPS", 256);
  config.reader_threads = readers;
  config.snapshots_per_reader = 3;
  config.queries_per_snapshot = 3;
  config.checkpoints = 8;
  config.insert_fraction = 0.8;
  config.seed = seed;
  config.tree.capacity = 4;
  config.tree.max_depth = 32;
  // Thresholds calibrated so this population actually splits: small
  // shards, an eager split bound, and a merge bound close enough under
  // it that draining shards fold back.
  config.rebalance.enabled = true;
  config.rebalance.min_split_points = 16;
  config.rebalance.split_cost = 1.0;
  config.rebalance.merge_cost = 0.5;
  config.rebalance.check_interval = 16;
  config.rebalance.max_shards = 8;
  return config;
}

TEST(ShardParityStormTest, SeedMatrixIsThreadCountInvariant) {
  const size_t seeds = EnvOr("POPAN_STORM_SEEDS", 64);
  sim::ExperimentRunner runner;
  // transcript[seed] from the first reader count; every later reader
  // count must reproduce it byte for byte.
  std::map<uint64_t, std::string> transcripts;
  uint64_t total_splits = 0;
  uint64_t total_merges = 0;
  for (size_t readers : ReaderMatrix()) {
    for (uint64_t seed = 0; seed < seeds; ++seed) {
      ShardStormConfig config = ConfigFor(readers, seed);
      StatusOr<ShardStormResult> result = RunShardStorm(config, runner);
      ASSERT_TRUE(result.ok()) << "readers=" << readers << " seed=" << seed
                               << ": " << result.status().ToString();
      EXPECT_EQ(result->ops_applied, config.num_ops);
      EXPECT_EQ(result->snapshots_verified,
                readers * config.snapshots_per_reader + 1);
      total_splits += result->splits;
      total_merges += result->merges;
      auto [it, fresh] =
          transcripts.emplace(seed, result->transcript);
      if (!fresh) {
        EXPECT_EQ(it->second, result->transcript)
            << "transcript depends on reader count: readers=" << readers
            << " seed=" << seed;
      }
    }
  }
  // The matrix as a whole must exercise the balancer mid-storm.
  EXPECT_GT(total_splits, 0u);
  (void)total_merges;  // merges are asserted by the dedicated churn test
}

TEST(ShardParityStormTest, LongChurnSplitsAndMergesMidStorm) {
  // Swell-then-drain churn: the first half grows the population until
  // the balancer splits, the second half drains it until adjacent
  // shards sink below the merge bound and fold back together.
  sim::ExperimentRunner runner;
  ShardStormConfig config = ConfigFor(4, 1234);
  config.num_ops = 4096;
  config.insert_fraction = 0.9;
  config.drain_insert_fraction = 0.05;
  config.drain_after = 0.5;
  config.snapshots_per_reader = 6;
  config.checkpoints = 16;
  config.rebalance.min_split_points = 64;
  config.rebalance.split_cost = 4.0;
  config.rebalance.merge_cost = 2.5;
  config.rebalance.check_interval = 32;
  StatusOr<ShardStormResult> result = RunShardStorm(config, runner);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->splits, 0u);
  EXPECT_GT(result->merges, 0u);
  EXPECT_GT(result->final_shards, 0u);
}

TEST(ShardParityStormTest, SimdAndForcedScalarTranscriptsMatch) {
  sim::ExperimentRunner runner;
  ShardStormConfig config = ConfigFor(2, 77);
  config.num_ops = 1024;
  const bool was_forced = simd::ForceScalar();
  simd::SetForceScalar(false);
  StatusOr<ShardStormResult> vectorized = RunShardStorm(config, runner);
  simd::SetForceScalar(true);
  StatusOr<ShardStormResult> scalar = RunShardStorm(config, runner);
  simd::SetForceScalar(was_forced);
  ASSERT_TRUE(vectorized.ok()) << vectorized.status().ToString();
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  EXPECT_EQ(vectorized->transcript, scalar->transcript);
  EXPECT_EQ(vectorized->splits, scalar->splits);
  EXPECT_EQ(vectorized->merges, scalar->merges);
}

}  // namespace
}  // namespace popan::shard
