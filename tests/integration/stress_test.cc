// Randomized stress: long adversarial operation sequences against every
// dynamic structure, with invariant checks and an oracle. Sizes are kept
// moderate so the suite stays fast; the seeds sweep via TEST_P.

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/excell.h"
#include "spatial/extendible_hash.h"
#include "spatial/grid_file.h"
#include "spatial/mx_quadtree.h"
#include "spatial/pr_tree.h"
#include "spatial/region_quadtree.h"
#include "util/random.h"

#include "testing/statusor_testing.h"

namespace popan {
namespace {

using geo::Box2;
using geo::Point2;

class StressTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, PrTreeAdversarialClusters) {
  // Clustered inserts force deep splits; interleaved erases force deep
  // collapses; the tree must stay canonical throughout.
  spatial::PrTreeOptions options;
  options.capacity = 1 + GetParam() % 4;
  spatial::PrQuadtree tree(Box2::UnitCube(), options);
  Pcg32 rng(GetParam());
  std::vector<Point2> live;
  for (int op = 0; op < 3000; ++op) {
    uint32_t action = rng.NextBounded(10);
    if (action < 6 || live.empty()) {
      // Insert near an existing point half the time (tight clusters).
      Point2 p = live.empty() || rng.NextBounded(2) == 0
                     ? Point2(rng.NextDouble(), rng.NextDouble())
                     : Point2(live[rng.NextBounded(static_cast<uint32_t>(
                                  live.size()))][0] +
                                  rng.NextDouble() * 1e-5,
                              rng.NextDouble());
      if (!tree.bounds().Contains(p)) continue;
      if (tree.Insert(p).ok()) live.push_back(p);
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(tree.Erase(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
    if (op % 300 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << op << ": " << tree.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Full membership audit at the end.
  for (const Point2& p : live) {
    ASSERT_TRUE(tree.Contains(p)) << p.ToString();
  }
}

TEST_P(StressTest, ExtendibleHashSkewedKeys) {
  // Keys with long shared prefixes push the directory deep; erases must
  // walk it back down.
  spatial::ExtendibleHashOptions options;
  options.bucket_capacity = 2;
  options.identity_hash = true;
  // Cap the directory: keys below are distinguishable within their top 16
  // bits, so depth 16 suffices and anything needing more is a legal
  // ResourceExhausted refusal (not a gigabyte directory).
  options.max_global_depth = 16;
  spatial::ExtendibleHash table(options);
  Pcg32 rng(GetParam() ^ 0xE);
  std::set<uint64_t> reference;
  for (int op = 0; op < 2000; ++op) {
    // Cluster keys in the top bits to stress prefix splits; all entropy
    // lives in bits 48..63 so the directory can always separate keys.
    uint64_t key = (uint64_t{rng.NextBounded(4)} << 62) |
                   (uint64_t{rng.NextBounded(16)} << 58) |
                   (uint64_t{rng.NextBounded(1024)} << 48);
    if (rng.NextBounded(2) == 0) {
      bool was_new = reference.insert(key).second;
      Status s = table.Insert(key);
      if (s.code() == StatusCode::kResourceExhausted) {
        reference.erase(key);  // legal refusal on colocated keys
        continue;
      }
      ASSERT_EQ(s.ok(), was_new) << s.ToString();
    } else {
      bool existed = reference.erase(key) > 0;
      ASSERT_EQ(table.Erase(key).ok(), existed);
    }
    if (op % 250 == 0) {
      ASSERT_TRUE(table.CheckInvariants().ok())
          << table.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(table.size(), reference.size());
}

TEST_P(StressTest, GridFilePathologicalColumns) {
  // All points on a handful of vertical lines: splits concentrate on one
  // axis and buddy blocks stay skewed.
  spatial::GridFileOptions options;
  options.bucket_capacity = 2;
  spatial::GridFile grid(Box2::UnitCube(), options);
  Pcg32 rng(GetParam() ^ 0xF00);
  std::vector<Point2> live;
  double columns[4] = {0.125, 0.126, 0.875, 0.876};
  for (int op = 0; op < 1200; ++op) {
    if (rng.NextBounded(3) != 0 || live.empty()) {
      Point2 p(columns[rng.NextBounded(4)], rng.NextDouble());
      if (grid.Insert(p).ok()) live.push_back(p);
    } else {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(grid.Erase(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
    if (op % 200 == 0) {
      ASSERT_TRUE(grid.CheckInvariants().ok())
          << grid.CheckInvariants().ToString();
    }
  }
  for (const Point2& p : live) ASSERT_TRUE(grid.Contains(p));
}

TEST_P(StressTest, ExcellBoundaryPoints) {
  // Points exactly on dyadic boundaries exercise the half-open cell
  // arithmetic of the interleaved pseudokey.
  spatial::ExcellOptions options;
  options.bucket_capacity = 2;
  spatial::Excell table(Box2::UnitCube(), options);
  Pcg32 rng(GetParam() ^ 0xABC);
  std::vector<Point2> live;
  for (int op = 0; op < 1200; ++op) {
    double grid = static_cast<double>(1 << (1 + rng.NextBounded(6)));
    Point2 p(rng.NextBounded(static_cast<uint32_t>(grid)) / grid,
             rng.NextBounded(static_cast<uint32_t>(grid)) / grid);
    if (rng.NextBounded(3) != 0) {
      Status s = table.Insert(p);
      if (s.ok()) live.push_back(p);
    } else if (!live.empty()) {
      size_t idx = rng.NextBounded(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(table.Erase(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    }
    if (op % 200 == 0) {
      ASSERT_TRUE(table.CheckInvariants().ok())
          << table.CheckInvariants().ToString();
    }
  }
  for (const Point2& p : live) ASSERT_TRUE(table.Contains(p));
}

TEST_P(StressTest, MxAndRegionQuadtreesAsBitmaps) {
  // The MX quadtree of occupied cells and the region quadtree of the same
  // bitmap must agree cell for cell under random rectangle edits.
  const size_t side = 32;
  spatial::MxQuadtree mx(5);
  spatial::RegionQuadtree region =
      ValueOrDie(spatial::RegionQuadtree::Empty(side));
  Pcg32 rng(GetParam() ^ 0xB1737);
  for (int op = 0; op < 120; ++op) {
    uint32_t x0 = rng.NextBounded(side), y0 = rng.NextBounded(side);
    uint32_t w = 1 + rng.NextBounded(6), h = 1 + rng.NextBounded(6);
    uint32_t x1 = std::min<uint32_t>(side, x0 + w);
    uint32_t y1 = std::min<uint32_t>(side, y0 + h);
    bool black = rng.NextBounded(3) != 0;
    region.SetRect(x0, y0, x1, y1, black);
    for (uint32_t y = y0; y < y1; ++y) {
      for (uint32_t x = x0; x < x1; ++x) {
        if (black) {
          mx.Insert(x, y).ok();  // AlreadyExists is fine
        } else {
          mx.Erase(x, y).ok();  // NotFound is fine
        }
      }
    }
  }
  ASSERT_TRUE(mx.CheckInvariants().ok());
  ASSERT_TRUE(region.CheckInvariants().ok());
  uint64_t mx_count = 0;
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      ASSERT_EQ(mx.Contains(x, y), region.At(x, y))
          << "(" << x << "," << y << ")";
      if (mx.Contains(x, y)) ++mx_count;
    }
  }
  EXPECT_EQ(mx_count, region.Area());
  EXPECT_EQ(mx_count, mx.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         testing::Values<uint64_t>(11, 22, 33),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace popan
