#include "numerics/fixed_point.h"

#include <cmath>

#include <gtest/gtest.h>

#include "numerics/matrix.h"

namespace popan::num {
namespace {

TEST(FixedPointTest, ConvergesToCosineFixedPoint) {
  // x = cos(x) has the classic attracting fixed point ~0.7390851.
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return Vector{std::cos(x[0])}; }, Vector{0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], 0.7390851332151607, 1e-10);
  EXPECT_LE(result->delta, 1e-14);
}

TEST(FixedPointTest, IdentityMapConvergesImmediately) {
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return x; }, Vector{1.0, 2.0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 1);
  EXPECT_EQ(result->solution, (Vector{1.0, 2.0}));
}

TEST(FixedPointTest, LinearContractionInTwoDimensions) {
  // G(x) = A x + b with ||A|| < 1 converges to (I - A)^-1 b.
  Matrix a{{0.5, 0.1}, {0.0, 0.25}};
  Vector b{1.0, 3.0};
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [&](const Vector& x) { return a.Apply(x) + b; }, Vector{0.0, 0.0});
  ASSERT_TRUE(result.ok());
  // Solve (I - A) x = b by hand: x2 = 3/0.75 = 4; x1 = (1 + 0.4)/0.5 = 2.8.
  EXPECT_NEAR(result->solution[1], 4.0, 1e-10);
  EXPECT_NEAR(result->solution[0], 2.8, 1e-10);
}

TEST(FixedPointTest, DivergentMapHitsIterationBudget) {
  FixedPointOptions options;
  options.max_iterations = 50;
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return Vector{2.0 * x[0] + 1.0}; }, Vector{1.0},
      options);
  ASSERT_FALSE(result.ok());
  // Either fails to converge or blows up to non-finite values; both are
  // acceptable, crash is not.
  EXPECT_TRUE(result.status().code() == StatusCode::kNotConverged ||
              result.status().code() == StatusCode::kNumericError);
}

TEST(FixedPointTest, NonFiniteIterateIsNumericError) {
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return Vector{x[0] * 1e308 * 1e308}; },
      Vector{1.0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericError);
}

TEST(FixedPointTest, MisSizedIterateIsNumericError) {
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector&) { return Vector{1.0, 2.0}; }, Vector{1.0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericError);
}

TEST(FixedPointTest, DampingStillFindsFixedPoint) {
  FixedPointOptions options;
  options.damping = 0.5;
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return Vector{std::cos(x[0])}; }, Vector{0.0},
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], 0.7390851332151607, 1e-9);
}

TEST(FixedPointTest, DampingCanConvergeWhereUndampedOscillates) {
  // G(x) = -x oscillates forever undamped; damping 0.5 contracts to 0.
  FixedPointOptions options;
  options.damping = 0.5;
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return Vector{-x[0]}; }, Vector{1.0}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], 0.0, 1e-12);
}

TEST(FixedPointTest, InvalidDampingRejected) {
  FixedPointOptions options;
  options.damping = 0.0;
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return x; }, Vector{1.0}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  options.damping = 1.5;
  result = FixedPointIterate([](const Vector& x) { return x; }, Vector{1.0},
                             options);
  ASSERT_FALSE(result.ok());
}

TEST(FixedPointTest, ToleranceControlsPrecision) {
  FixedPointOptions loose;
  loose.tolerance = 1e-3;
  StatusOr<FixedPointResult> result = FixedPointIterate(
      [](const Vector& x) { return Vector{std::cos(x[0])}; }, Vector{0.0},
      loose);
  ASSERT_TRUE(result.ok());
  StatusOr<FixedPointResult> tight = FixedPointIterate(
      [](const Vector& x) { return Vector{std::cos(x[0])}; }, Vector{0.0});
  ASSERT_TRUE(tight.ok());
  EXPECT_LT(result->iterations, tight->iterations);
}

}  // namespace
}  // namespace popan::num
