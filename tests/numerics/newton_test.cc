#include "numerics/newton.h"

#include <cmath>

#include <gtest/gtest.h>

namespace popan::num {
namespace {

// F(x) = x^2 - 2 in 1-D; root sqrt(2).
Vector Sqrt2Residual(const Vector& x) { return Vector{x[0] * x[0] - 2.0}; }
Matrix Sqrt2Jacobian(const Vector& x) { return Matrix{{2.0 * x[0]}}; }

TEST(NewtonTest, Scalar) {
  StatusOr<NewtonResult> result =
      NewtonSolve(Sqrt2Residual, Sqrt2Jacobian, Vector{1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], std::sqrt(2.0), 1e-12);
  EXPECT_LE(result->residual, 1e-12);
  EXPECT_LT(result->iterations, 10);
}

TEST(NewtonTest, ScalarNumericJacobian) {
  StatusOr<NewtonResult> result =
      NewtonSolveNumericJacobian(Sqrt2Residual, Vector{1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], std::sqrt(2.0), 1e-10);
}

// 2-D system: x^2 + y^2 = 4, x = y; positive root (sqrt(2), sqrt(2)).
Vector CircleLineResidual(const Vector& v) {
  return Vector{v[0] * v[0] + v[1] * v[1] - 4.0, v[0] - v[1]};
}
Matrix CircleLineJacobian(const Vector& v) {
  return Matrix{{2.0 * v[0], 2.0 * v[1]}, {1.0, -1.0}};
}

TEST(NewtonTest, TwoDimensionalSystem) {
  StatusOr<NewtonResult> result =
      NewtonSolve(CircleLineResidual, CircleLineJacobian, Vector{1.0, 2.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(result->solution[1], std::sqrt(2.0), 1e-10);
}

TEST(NewtonTest, QuadraticConvergenceIsFast) {
  StatusOr<NewtonResult> result =
      NewtonSolve(CircleLineResidual, CircleLineJacobian, Vector{1.0, 2.0});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->iterations, 8);
}

TEST(NewtonTest, AlreadyAtRootTakesZeroIterations) {
  StatusOr<NewtonResult> result = NewtonSolve(
      Sqrt2Residual, Sqrt2Jacobian, Vector{std::sqrt(2.0)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 0);
}

TEST(NewtonTest, SingularJacobianReported) {
  // F(x) = x^2 starting at 0: J = 0.
  auto f = [](const Vector& x) { return Vector{x[0] * x[0]}; };
  auto j = [](const Vector& x) { return Matrix{{2.0 * x[0]}}; };
  StatusOr<NewtonResult> result = NewtonSolve(f, j, Vector{0.0});
  // x=0 IS the root, so this should actually succeed with residual 0.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->solution[0], 0.0);

  // Start away from the root with a Jacobian that is always singular.
  auto jbad = [](const Vector&) { return Matrix{{0.0}}; };
  StatusOr<NewtonResult> failure = NewtonSolve(f, jbad, Vector{1.0});
  ASSERT_FALSE(failure.ok());
  EXPECT_EQ(failure.status().code(), StatusCode::kNumericError);
}

TEST(NewtonTest, IterationBudgetExhaustedReportsNotConverged) {
  // F(x) = exp(x) + 1 has no root; the solver must give up cleanly with
  // either NotConverged (budget) or NumericError (the Jacobian exp(x)
  // underflows to singular as x races toward -inf) — never a crash or a
  // bogus success.
  auto f = [](const Vector& x) { return Vector{std::exp(x[0]) + 1.0}; };
  NewtonOptions options;
  options.max_iterations = 5;
  StatusOr<NewtonResult> result =
      NewtonSolveNumericJacobian(f, Vector{0.0}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kNotConverged ||
              result.status().code() == StatusCode::kNumericError)
      << result.status().ToString();
}

TEST(NewtonTest, BacktrackingHandlesOvershoot) {
  // atan has a famous Newton overshoot for |x0| > ~1.39; damping fixes it.
  auto f = [](const Vector& x) { return Vector{std::atan(x[0])}; };
  auto j = [](const Vector& x) {
    return Matrix{{1.0 / (1.0 + x[0] * x[0])}};
  };
  StatusOr<NewtonResult> result = NewtonSolve(f, j, Vector{3.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->solution[0], 0.0, 1e-10);
}

TEST(NumericJacobianTest, MatchesAnalyticOnSmoothSystem) {
  Vector x{1.3, -0.4};
  Matrix numeric = NumericJacobian(CircleLineResidual, x, 1e-7);
  Matrix analytic = CircleLineJacobian(x);
  EXPECT_LT(numeric.MaxAbsDiff(analytic), 1e-5);
}

TEST(NumericJacobianTest, ScalesStepWithMagnitude) {
  // At large coordinates a fixed absolute step would lose all precision;
  // verify the derivative of x -> x^2 at x = 1e6 is accurate.
  auto f = [](const Vector& x) { return Vector{x[0] * x[0]}; };
  Matrix jac = NumericJacobian(f, Vector{1e6}, 1e-7);
  EXPECT_NEAR(jac.At(0, 0) / 2e6, 1.0, 1e-5);
}

TEST(NewtonTest, FunctionEvalsAreCounted) {
  StatusOr<NewtonResult> result =
      NewtonSolve(Sqrt2Residual, Sqrt2Jacobian, Vector{1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->function_evals, result->iterations);
}

}  // namespace
}  // namespace popan::num
