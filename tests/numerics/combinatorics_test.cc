#include "numerics/combinatorics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/statusor_testing.h"

namespace popan::num {
namespace {

TEST(BinomialExactTest, SmallValues) {
  EXPECT_EQ(ValueOrDie(BinomialExact(0, 0)), 1);
  EXPECT_EQ(ValueOrDie(BinomialExact(5, 0)), 1);
  EXPECT_EQ(ValueOrDie(BinomialExact(5, 5)), 1);
  EXPECT_EQ(ValueOrDie(BinomialExact(5, 2)), 10);
  EXPECT_EQ(ValueOrDie(BinomialExact(10, 3)), 120);
  EXPECT_EQ(ValueOrDie(BinomialExact(52, 5)), 2598960);
}

TEST(BinomialExactTest, SymmetryProperty) {
  for (int n = 0; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(ValueOrDie(BinomialExact(n, k)), ValueOrDie(BinomialExact(n, n - k)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialExactTest, PascalIdentity) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(ValueOrDie(BinomialExact(n, k)),
                ValueOrDie(BinomialExact(n - 1, k - 1)) +
                    ValueOrDie(BinomialExact(n - 1, k)));
    }
  }
}

TEST(BinomialExactTest, LargestSafeValue) {
  // C(66, 33) fits in int64; C(67, 33) does not.
  EXPECT_TRUE(BinomialExact(66, 33).ok());
  StatusOr<int64_t> overflow = BinomialExact(67, 33);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kNumericError);
}

TEST(BinomialExactTest, InvalidArguments) {
  EXPECT_FALSE(BinomialExact(-1, 0).ok());
  EXPECT_FALSE(BinomialExact(3, -1).ok());
  EXPECT_FALSE(BinomialExact(3, 4).ok());
}

TEST(BinomialTest, MatchesExactInSmallRange) {
  for (int n = 0; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k),
                static_cast<double>(ValueOrDie(BinomialExact(n, k))));
    }
  }
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_EQ(Binomial(5, -1), 0.0);
  EXPECT_EQ(Binomial(5, 6), 0.0);
}

TEST(BinomialTest, LargeArgumentsViaLgamma) {
  // C(100, 50) ~ 1.00891e29.
  EXPECT_NEAR(Binomial(100, 50) / 1.0089134454556417e29, 1.0, 1e-10);
}

TEST(LogBinomialTest, MatchesLogOfExact) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      double expected =
          std::log(static_cast<double>(ValueOrDie(BinomialExact(n, k))));
      EXPECT_NEAR(LogBinomial(n, k), expected, 1e-10);
    }
  }
}

TEST(FactorialTest, SmallValues) {
  EXPECT_EQ(Factorial(0), 1.0);
  EXPECT_EQ(Factorial(1), 1.0);
  EXPECT_EQ(Factorial(5), 120.0);
  EXPECT_EQ(Factorial(10), 3628800.0);
}

TEST(BinomialBucketProbabilityTest, SumsToOne) {
  for (int n : {1, 2, 5, 9, 33}) {
    for (int buckets : {2, 4, 8}) {
      double total = 0.0;
      for (int i = 0; i <= n; ++i) {
        total += BinomialBucketProbability(n, i, buckets);
      }
      EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n << " c=" << buckets;
    }
  }
}

TEST(BinomialBucketProbabilityTest, MatchesPaperQuadrantCase) {
  // m+1 = 2 points into 4 buckets: P(bucket holds both) = 1/16,
  // P(exactly one) = 2 * (1/4)(3/4) = 3/8, P(none) = 9/16.
  EXPECT_NEAR(BinomialBucketProbability(2, 2, 4), 1.0 / 16.0, 1e-15);
  EXPECT_NEAR(BinomialBucketProbability(2, 1, 4), 6.0 / 16.0, 1e-15);
  EXPECT_NEAR(BinomialBucketProbability(2, 0, 4), 9.0 / 16.0, 1e-15);
}

TEST(BinomialBucketProbabilityTest, MeanIsNOverC) {
  const int n = 12, c = 4;
  double mean = 0.0;
  for (int i = 0; i <= n; ++i) {
    mean += i * BinomialBucketProbability(n, i, c);
  }
  EXPECT_NEAR(mean, static_cast<double>(n) / c, 1e-12);
}

TEST(BinomialBucketProbabilityTest, OutOfRangeIsZero) {
  EXPECT_EQ(BinomialBucketProbability(3, 4, 4), 0.0);
  EXPECT_EQ(BinomialBucketProbability(3, -1, 4), 0.0);
}

TEST(PowIntTest, SmallPowers) {
  EXPECT_EQ(PowInt(2, 0), 1);
  EXPECT_EQ(PowInt(2, 10), 1024);
  EXPECT_EQ(PowInt(4, 5), 1024);
  EXPECT_EQ(PowInt(3, 4), 81);
  EXPECT_EQ(PowInt(-2, 3), -8);
  EXPECT_EQ(PowInt(0, 3), 0);
  EXPECT_EQ(PowInt(0, 0), 1);
}

}  // namespace
}  // namespace popan::num
