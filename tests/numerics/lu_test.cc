#include "numerics/lu.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace popan::num {
namespace {

TEST(LuTest, SolvesDiagonalSystem) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  StatusOr<Vector> x = SolveLinearSystem(a, Vector{2.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-14);
  EXPECT_NEAR((*x)[1], 2.0, 1e-14);
}

TEST(LuTest, Solves2x2) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  // Solution of A x = (5, 11) is (1, 2).
  StatusOr<Vector> x = SolveLinearSystem(a, Vector{5.0, 11.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuTest, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  StatusOr<Vector> x = SolveLinearSystem(a, Vector{3.0, 7.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 7.0, 1e-14);
  EXPECT_NEAR((*x)[1], 3.0, 1e-14);
}

TEST(LuTest, SingularMatrixReportsNumericError) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  StatusOr<LuDecomposition> lu = LuDecomposition::Factor(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kNumericError);
}

TEST(LuTest, NonSquareRejected) {
  Matrix a(2, 3);
  StatusOr<LuDecomposition> lu = LuDecomposition::Factor(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kInvalidArgument);
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  StatusOr<LuDecomposition> lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -2.0, 1e-12);
}

TEST(LuTest, DeterminantTracksPermutationSign) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  StatusOr<LuDecomposition> lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, DeterminantOfIdentity) {
  StatusOr<LuDecomposition> lu =
      LuDecomposition::Factor(Matrix::Identity(5));
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 1.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Matrix a{{4.0, 7.0, 2.0}, {3.0, 5.0, 1.0}, {8.0, 1.0, 6.0}};
  StatusOr<LuDecomposition> lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  Matrix prod = a * lu->Inverse();
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(3)), 1e-12);
}

TEST(LuTest, MatrixRightHandSide) {
  Matrix a{{2.0, 0.0}, {0.0, 5.0}};
  Matrix b{{2.0, 4.0}, {5.0, 10.0}};
  StatusOr<LuDecomposition> lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  Matrix x = lu->Solve(b);
  EXPECT_LT(x.MaxAbsDiff(Matrix{{1.0, 2.0}, {1.0, 2.0}}), 1e-13);
}

TEST(LuTest, RandomSystemsRoundTrip) {
  Pcg32 rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(12);
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        a.At(r, c) = rng.NextDouble(-1.0, 1.0);
      }
      a.At(r, r) += 2.0;  // keep well conditioned
    }
    Vector x_true(n);
    for (size_t i = 0; i < n; ++i) x_true[i] = rng.NextDouble(-5.0, 5.0);
    Vector b = a.Apply(x_true);
    StatusOr<Vector> x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    EXPECT_LT(x->MaxAbsDiff(x_true), 1e-9);
  }
}

TEST(LuTest, SolveRejectsWrongSizeRhs) {
  StatusOr<LuDecomposition> lu =
      LuDecomposition::Factor(Matrix::Identity(3));
  ASSERT_TRUE(lu.ok());
  EXPECT_DEATH(lu->Solve(Vector{1.0, 2.0}), "CHECK failed");
}

}  // namespace
}  // namespace popan::num
