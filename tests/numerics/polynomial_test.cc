#include "numerics/polynomial.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/statusor_testing.h"

namespace popan::num {
namespace {

TEST(PolynomialTest, ZeroPolynomial) {
  Polynomial p;
  EXPECT_EQ(p.Degree(), -1);
  EXPECT_EQ(p.Evaluate(3.0), 0.0);
  EXPECT_EQ(p.ToString(), "0");
}

TEST(PolynomialTest, TrailingZerosTrimmed) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.Degree(), 1);
}

TEST(PolynomialTest, HornerEvaluation) {
  // p(x) = 2 - 3x + x^2; p(5) = 2 - 15 + 25 = 12.
  Polynomial p({2.0, -3.0, 1.0});
  EXPECT_EQ(p.Evaluate(5.0), 12.0);
  EXPECT_EQ(p.Evaluate(0.0), 2.0);
  EXPECT_EQ(p.Evaluate(1.0), 0.0);
  EXPECT_EQ(p.Evaluate(2.0), 0.0);
}

TEST(PolynomialTest, Derivative) {
  Polynomial p({2.0, -3.0, 1.0});
  Polynomial d = p.Derivative();
  EXPECT_EQ(d.Degree(), 1);
  EXPECT_EQ(d.Evaluate(0.0), -3.0);
  EXPECT_EQ(d.Evaluate(1.0), -1.0);
  EXPECT_EQ(Polynomial({5.0}).Derivative().Degree(), -1);
}

TEST(PolynomialTest, Arithmetic) {
  Polynomial a({1.0, 1.0});        // 1 + x
  Polynomial b({0.0, 0.0, 1.0});   // x^2
  Polynomial sum = a + b;
  EXPECT_EQ(sum.Evaluate(2.0), 7.0);
  Polynomial diff = b - a;
  EXPECT_EQ(diff.Evaluate(2.0), 1.0);
  Polynomial prod = a * a;  // 1 + 2x + x^2
  EXPECT_EQ(prod.Degree(), 2);
  EXPECT_EQ(prod.Evaluate(3.0), 16.0);
}

TEST(PolynomialTest, SubtractionCancelsDegree) {
  Polynomial a({0.0, 0.0, 1.0});
  Polynomial b({1.0, 0.0, 1.0});
  EXPECT_EQ((a - b).Degree(), 0);
}

TEST(PolynomialTest, MultiplyByZero) {
  Polynomial a({1.0, 2.0});
  Polynomial zero;
  EXPECT_EQ((a * zero).Degree(), -1);
}

TEST(PolynomialTest, RootInBracket) {
  Polynomial p({-2.0, 0.0, 1.0});  // x^2 - 2
  StatusOr<double> root = p.RootInBracket(0.0, 2.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), std::sqrt(2.0), 1e-12);
}

TEST(PolynomialTest, RootAtBracketEndpoints) {
  Polynomial p({0.0, 1.0});  // x
  EXPECT_EQ(ValueOrDie(p.RootInBracket(0.0, 1.0)), 0.0);
  EXPECT_EQ(ValueOrDie(p.RootInBracket(-1.0, 0.0)), 0.0);
}

TEST(PolynomialTest, NoSignChangeRejected) {
  Polynomial p({1.0, 0.0, 1.0});  // x^2 + 1
  StatusOr<double> root = p.RootInBracket(-5.0, 5.0);
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolynomialTest, AllRealRootsOfCubic) {
  // (x + 1) x (x - 2) = x^3 - x^2 - 2x.
  Polynomial p({0.0, -2.0, -1.0, 1.0});
  std::vector<double> roots = p.RealRootsInInterval(-10.0, 10.0);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], -1.0, 1e-9);
  EXPECT_NEAR(roots[1], 0.0, 1e-9);
  EXPECT_NEAR(roots[2], 2.0, 1e-9);
}

TEST(PolynomialTest, RootsOfPaperM1Quadratic) {
  // The m=1 steady-state balance for fanout c: c e^2 - 2c e + (c-1) = 0.
  // For c = 4: roots 1 ± 1/2; only 1/2 lies in (0, 1).
  Polynomial p({3.0, -8.0, 4.0});
  std::vector<double> roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.5, 1e-12);
}

TEST(PolynomialTest, NoRootsInInterval) {
  Polynomial p({1.0, 0.0, 1.0});
  EXPECT_TRUE(p.RealRootsInInterval(-3.0, 3.0).empty());
}

TEST(PolynomialTest, QuarticWithFourRoots) {
  // (x^2 - 1)(x^2 - 4) = x^4 - 5x^2 + 4.
  Polynomial p({4.0, 0.0, -5.0, 0.0, 1.0});
  std::vector<double> roots = p.RealRootsInInterval(-3.0, 3.0);
  ASSERT_EQ(roots.size(), 4u);
  EXPECT_NEAR(roots[0], -2.0, 1e-9);
  EXPECT_NEAR(roots[1], -1.0, 1e-9);
  EXPECT_NEAR(roots[2], 1.0, 1e-9);
  EXPECT_NEAR(roots[3], 2.0, 1e-9);
}

TEST(PolynomialTest, ToStringReadable) {
  Polynomial p({1.0, -2.0, 3.0});
  EXPECT_EQ(p.ToString(), "1 - 2 x + 3 x^2");
  EXPECT_EQ(Polynomial({0.0, 1.0}).ToString(), "x");
  EXPECT_EQ(Polynomial({0.0, -1.0}).ToString(), "-x");
}

}  // namespace
}  // namespace popan::num
