#include "numerics/vector.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace popan::num {
namespace {

TEST(VectorTest, DefaultIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(VectorTest, SizedConstructorZeroFills) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(VectorTest, FillConstructor) {
  Vector v(4, 2.5);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 2.5);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(VectorTest, ElementAssignment) {
  Vector v(2);
  v[1] = 9.0;
  EXPECT_EQ(v[1], 9.0);
}

TEST(VectorTest, AdditionSubtraction) {
  Vector a{1.0, 2.0};
  Vector b{10.0, 20.0};
  Vector sum = a + b;
  Vector diff = b - a;
  EXPECT_EQ(sum, (Vector{11.0, 22.0}));
  EXPECT_EQ(diff, (Vector{9.0, 18.0}));
}

TEST(VectorTest, MismatchedSizesDie) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_DEATH(a += b, "CHECK failed");
  EXPECT_DEATH(a.Dot(b), "CHECK failed");
}

TEST(VectorTest, ScalarOps) {
  Vector v{2.0, -4.0};
  EXPECT_EQ(v * 0.5, (Vector{1.0, -2.0}));
  EXPECT_EQ(0.5 * v, (Vector{1.0, -2.0}));
  EXPECT_EQ(v / 2.0, (Vector{1.0, -2.0}));
}

TEST(VectorTest, DivisionByZeroDies) {
  Vector v{1.0};
  EXPECT_DEATH(v /= 0.0, "CHECK failed");
}

TEST(VectorTest, DotProduct) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_EQ(a.Dot(b), 32.0);
}

TEST(VectorTest, SumAndNorms) {
  Vector v{3.0, -4.0};
  EXPECT_EQ(v.Sum(), -1.0);
  EXPECT_EQ(v.NormL1(), 7.0);
  EXPECT_EQ(v.NormL2(), 5.0);
  EXPECT_EQ(v.NormInf(), 4.0);
}

TEST(VectorTest, Positivity) {
  EXPECT_TRUE((Vector{0.1, 2.0}).AllPositive());
  EXPECT_FALSE((Vector{0.1, 0.0}).AllPositive());
  EXPECT_FALSE((Vector{0.1, -0.1}).AllPositive());
  EXPECT_TRUE((Vector{0.0, 1.0}).AllNonNegative());
  EXPECT_FALSE((Vector{-1e-3, 1.0}).AllNonNegative());
  EXPECT_TRUE((Vector{-1e-3, 1.0}).AllNonNegative(1e-2));
}

TEST(VectorTest, AllPositiveRejectsNan) {
  Vector v{1.0, std::nan("")};
  EXPECT_FALSE(v.AllPositive());
}

TEST(VectorTest, Normalized) {
  Vector v{1.0, 3.0};
  Vector n = v.Normalized();
  EXPECT_DOUBLE_EQ(n.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[1], 0.75);
}

TEST(VectorTest, NormalizeZeroSumDies) {
  Vector v{1.0, -1.0};
  EXPECT_DEATH(v.Normalized(), "zero-sum");
}

TEST(VectorTest, MaxAbsDiff) {
  Vector a{1.0, 5.0};
  Vector b{1.5, 4.0};
  EXPECT_EQ(a.MaxAbsDiff(b), 1.0);
  EXPECT_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(VectorTest, ToStringPrecision) {
  Vector v{0.5, 0.25};
  EXPECT_EQ(v.ToString(2), "(0.50, 0.25)");
}

TEST(VectorTest, StreamOutput) {
  std::ostringstream os;
  os << Vector{1.0};
  EXPECT_EQ(os.str(), "(1.000000)");
}

TEST(VectorTest, EqualityExact) {
  EXPECT_EQ((Vector{1.0, 2.0}), (Vector{1.0, 2.0}));
  EXPECT_NE((Vector{1.0, 2.0}), (Vector{1.0, 2.0000001}));
  EXPECT_NE((Vector{1.0}), (Vector{1.0, 0.0}));
}

}  // namespace
}  // namespace popan::num
