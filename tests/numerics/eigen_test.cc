#include "numerics/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

namespace popan::num {
namespace {

TEST(PowerIterationTest, DiagonalMatrix) {
  Matrix a{{3.0, 0.0}, {0.0, 1.0}};
  StatusOr<EigenPair> pair = PowerIteration(a);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->value, 3.0, 1e-10);
  EXPECT_NEAR(std::abs(pair->vector[0]), 1.0, 1e-8);
  EXPECT_NEAR(pair->vector[1], 0.0, 1e-6);
}

TEST(PowerIterationTest, SymmetricMatrix) {
  // Eigenvalues 3 and 1, dominant eigenvector (1, 1)/sqrt(2).
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  StatusOr<EigenPair> pair = PowerIteration(a);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->value, 3.0, 1e-10);
  EXPECT_NEAR(pair->vector[0], 1.0 / std::sqrt(2.0), 1e-7);
  EXPECT_NEAR(pair->vector[1], 1.0 / std::sqrt(2.0), 1e-7);
}

TEST(PowerIterationTest, NegativeDominantEigenvalue) {
  Matrix a{{-5.0, 0.0}, {0.0, 2.0}};
  StatusOr<EigenPair> pair = PowerIteration(a);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->value, -5.0, 1e-9);
}

TEST(PowerIterationTest, ResidualIsSmall) {
  Matrix a{{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  StatusOr<EigenPair> pair = PowerIteration(a);
  ASSERT_TRUE(pair.ok());
  Vector residual = a.Apply(pair->vector) - pair->vector * pair->value;
  EXPECT_LT(residual.NormInf(), 1e-8);
}

TEST(PowerIterationTest, StochasticMatrixHasEigenvalueOne) {
  // Row-stochastic: dominant eigenvalue 1 with the all-ones right vector.
  Matrix a{{0.9, 0.1}, {0.4, 0.6}};
  StatusOr<EigenPair> pair = PowerIteration(a);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->value, 1.0, 1e-10);
}

TEST(PowerIterationTest, ZeroMatrixConverges) {
  StatusOr<EigenPair> pair = PowerIteration(Matrix(3, 3));
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->value, 0.0);
}

TEST(PowerIterationTest, NonSquareRejected) {
  StatusOr<EigenPair> pair = PowerIteration(Matrix(2, 3));
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.status().code(), StatusCode::kInvalidArgument);
}

TEST(PowerIterationTest, TiedModulusDoesNotConverge) {
  // Eigenvalues +1 and -1: the iteration oscillates; the solver must
  // report failure rather than a wrong answer.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  PowerIterationOptions options;
  options.max_iterations = 500;
  StatusOr<EigenPair> pair = PowerIteration(a, options);
  // Either NotConverged, or it converged onto one of the two genuine
  // eigenvalues (the start vector could be an exact eigenvector).
  if (pair.ok()) {
    EXPECT_NEAR(std::abs(pair->value), 1.0, 1e-8);
  } else {
    EXPECT_EQ(pair.status().code(), StatusCode::kNotConverged);
  }
}

TEST(ShiftedPowerIterationTest, FindsSubdominantViaShift) {
  // Eigenvalues 3 and 1; shifting by 3 makes them 0 and -2, so the
  // shifted dominant is -2 -> original 1.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  StatusOr<EigenPair> pair = ShiftedPowerIteration(a, 3.0);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->value, 1.0, 1e-9);
}

TEST(SpectralRadiusTest, MatchesPowerIterationOnRealDominant) {
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  StatusOr<double> radius = SpectralRadius(a);
  ASSERT_TRUE(radius.ok());
  EXPECT_NEAR(radius.value(), 3.0, 1e-6);
}

TEST(SpectralRadiusTest, HandlesComplexDominantPair) {
  // Scaled rotation: eigenvalues +-0.7i, radius 0.7. Power iteration
  // cannot converge here; the radius estimator must.
  Matrix a{{0.0, -0.7}, {0.7, 0.0}};
  StatusOr<double> radius = SpectralRadius(a);
  ASSERT_TRUE(radius.ok());
  EXPECT_NEAR(radius.value(), 0.7, 1e-6);
}

TEST(SpectralRadiusTest, RotationPlusContraction) {
  // Block diag of 0.5 I and a 0.9-modulus rotation: radius 0.9.
  Matrix a{{0.5, 0.0, 0.0},
           {0.0, 0.9 * std::cos(1.0), -0.9 * std::sin(1.0)},
           {0.0, 0.9 * std::sin(1.0), 0.9 * std::cos(1.0)}};
  StatusOr<double> radius = SpectralRadius(a);
  ASSERT_TRUE(radius.ok());
  EXPECT_NEAR(radius.value(), 0.9, 1e-5);
}

TEST(SpectralRadiusTest, ZeroAndNilpotent) {
  StatusOr<double> zero = SpectralRadius(Matrix(3, 3));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0.0);
  // Nilpotent: [[0,1],[0,0]] has radius 0; iterates die after one step.
  Matrix nilpotent{{0.0, 1.0}, {0.0, 0.0}};
  StatusOr<double> nil = SpectralRadius(nilpotent);
  ASSERT_TRUE(nil.ok());
  EXPECT_EQ(nil.value(), 0.0);
}

TEST(SpectralRadiusTest, NonSquareRejected) {
  EXPECT_FALSE(SpectralRadius(Matrix(2, 3)).ok());
}

TEST(DeflateOnceTest, RemovesDominantPair) {
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  StatusOr<EigenPair> dominant = PowerIteration(a);
  ASSERT_TRUE(dominant.ok());
  // Symmetric: left == right eigenvector.
  Matrix deflated =
      DeflateOnce(a, dominant->value, dominant->vector, dominant->vector);
  StatusOr<EigenPair> second = PowerIteration(deflated);
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second->value, 1.0, 1e-8);
}

}  // namespace
}  // namespace popan::num
