#include "numerics/matrix.h"

#include <gtest/gtest.h>

namespace popan::num {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, SizedConstructorZeroFills) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), 0.0);
  }
}

TEST(MatrixTest, NestedInitializer) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerDies) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({Vector{1.0, 2.0}, Vector{3.0, 4.0}});
  EXPECT_EQ(m, (Matrix{{1.0, 2.0}, {3.0, 4.0}}));
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.Row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.Col(0), (Vector{1.0, 3.0}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{5.0, 6.0});
  EXPECT_EQ(m.Row(0), (Vector{5.0, 6.0}));
}

TEST(MatrixTest, SetRowWrongSizeDies) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.SetRow(0, Vector{1.0}), "CHECK failed");
}

TEST(MatrixTest, RowSum) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.RowSum(0), 3.0);
  EXPECT_EQ(m.RowSum(1), 7.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.At(2, 1), 6.0);
  EXPECT_EQ(t.Transposed(), m);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  Matrix b{{0.0, 2.0}, {3.0, 0.0}};
  EXPECT_EQ(a + b, (Matrix{{1.0, 2.0}, {3.0, 1.0}}));
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a * 3.0, (Matrix{{3.0, 0.0}, {0.0, 3.0}}));
  EXPECT_EQ(2.0 * b, (Matrix{{0.0, 4.0}, {6.0, 0.0}}));
}

TEST(MatrixTest, Product) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a * b, (Matrix{{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(MatrixTest, ProductWithIdentity) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::Identity(2), a);
  EXPECT_EQ(Matrix::Identity(2) * a, a);
}

TEST(MatrixTest, ProductDimensionMismatchDies) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_DEATH(a * b, "CHECK failed");
}

TEST(MatrixTest, RectangularProduct) {
  Matrix a{{1.0, 2.0, 3.0}};        // 1x3
  Matrix b{{1.0}, {2.0}, {3.0}};    // 3x1
  Matrix ab = a * b;                // 1x1 = 14
  EXPECT_EQ(ab.rows(), 1u);
  EXPECT_EQ(ab.At(0, 0), 14.0);
}

TEST(MatrixTest, Apply) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.Apply(Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
}

TEST(MatrixTest, ApplyLeft) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  // (1,1) M = columns sums = (4, 6)
  EXPECT_EQ(m.ApplyLeft(Vector{1.0, 1.0}), (Vector{4.0, 6.0}));
}

TEST(MatrixTest, ApplyLeftMatchesTransposeApply) {
  Matrix m{{1.0, 2.0, 0.5}, {3.0, 4.0, -1.0}, {0.0, 1.0, 2.0}};
  Vector v{0.2, 0.3, 0.5};
  EXPECT_EQ(m.ApplyLeft(v), m.Transposed().Apply(v));
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.5, 1.0}};
  EXPECT_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(MatrixTest, ToString) {
  Matrix m{{1.0, 2.0}};
  EXPECT_EQ(m.ToString(1), "[1.0, 2.0]");
}

}  // namespace
}  // namespace popan::num
