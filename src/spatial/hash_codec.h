#ifndef POPAN_SPATIAL_HASH_CODEC_H_
#define POPAN_SPATIAL_HASH_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "geometry/box.h"
#include "geometry/point.h"

namespace popan::spatial {

/// Coordinate codec for running spatial queries over an extendible hash
/// table: a point maps to the EXCELL-style pseudokey — each coordinate
/// normalized to [0, 1) and quantized to 31 bits, bits interleaved y
/// first, the 62-bit result left-aligned in 64 bits so the table's
/// directory (which indexes by top bits) sees a y/x-alternating regular
/// decomposition of the domain. Use identity_hash = true on the table so
/// keys are placed by these bits, not remixed. Decode is the exact inverse
/// for points on the per-axis 2^-31 lattice of the domain.
///
/// This file is one of the few sanctioned homes for raw shift/mask
/// arithmetic on interleaved keys (the shard-key-arithmetic lint rule
/// allowlists src/spatial/); everything outside goes through this codec,
/// the morton.h codecs, or shard/key_range.h.
struct HashPointCodec {
  geo::Box2 domain = geo::Box2::UnitCube();

  static constexpr size_t kBitsPerAxis = 31;

  uint64_t Encode(const geo::Point2& p) const;
  geo::Point2 Decode(uint64_t key) const;

  /// Batched Encode: out[i] = Encode(pts[i]), bit for bit, through the
  /// QuantizeClamped + InterleaveBatch8 kernels. out holds pts.size()
  /// entries.
  void EncodeBatch(std::span<const geo::Point2> pts, uint64_t* out) const;

  /// Batched Decode into coordinate lanes: (xs[i], ys[i]) = Decode(keys[i])
  /// bit for bit. The bit de-interleave is batched; the final
  /// lattice-to-domain arithmetic runs through the same scalar helper as
  /// Decode (its a + b * c shape must not be vectorized or fused). The
  /// lane output feeds the SIMD bucket filters directly.
  void DecodeBatchLanes(const uint64_t* keys, size_t n, double* xs,
                        double* ys) const;

  /// The dyadic block of the domain shared by all keys whose pseudokey
  /// starts with the depth_bits-bit prefix (the geometry of one hash
  /// bucket; matches Excell::BlockOfPrefix).
  geo::Box2 BlockOfPrefix(uint64_t prefix_bits, size_t depth_bits) const;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_HASH_CODEC_H_
