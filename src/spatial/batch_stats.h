#ifndef POPAN_SPATIAL_BATCH_STATS_H_
#define POPAN_SPATIAL_BATCH_STATS_H_

#include <cstddef>

namespace popan::spatial {

/// Outcome counters of a bulk insert (InsertBatch on the tree backends).
/// A batch reports per-point dispositions in aggregate instead of one
/// Status per point: the bulk path exists to amortize per-point work, so
/// its API cannot reintroduce it.
struct BatchInsertStats {
  /// Points actually added to the structure.
  size_t inserted = 0;
  /// Points equal to an already-stored point (or to an earlier point of
  /// the same batch) — the AlreadyExists outcome of the scalar insert.
  size_t duplicates = 0;
  /// Points outside the root block — the OutOfRange outcome.
  size_t out_of_bounds = 0;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_BATCH_STATS_H_
