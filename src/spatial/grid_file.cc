#include "spatial/grid_file.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "spatial/knn_heap.h"
#include "util/check.h"

namespace popan::spatial {

GridFile::GridFile(const BoxT& domain, const GridFileOptions& options)
    : domain_(domain), options_(options) {
  POPAN_CHECK(options_.bucket_capacity >= 1);
  directory_.push_back(0);
  buckets_.push_back(Bucket{});
}

size_t GridFile::CellX(double x) const {
  // First boundary greater than x bounds the cell on the right.
  return static_cast<size_t>(
      std::upper_bound(xs_.begin(), xs_.end(), x) - xs_.begin());
}

size_t GridFile::CellY(double y) const {
  return static_cast<size_t>(
      std::upper_bound(ys_.begin(), ys_.end(), y) - ys_.begin());
}

double GridFile::XBoundary(size_t i) const {
  if (i == 0) return domain_.lo().x();
  if (i > xs_.size()) return domain_.hi().x();
  return xs_[i - 1];
}

double GridFile::YBoundary(size_t i) const {
  if (i == 0) return domain_.lo().y();
  if (i > ys_.size()) return domain_.hi().y();
  return ys_[i - 1];
}

Status GridFile::Insert(const PointT& p) {
  if (!domain_.Contains(p)) {
    return Status::OutOfRange("point outside the grid file domain");
  }
  {
    const Bucket& b = buckets_[Dir(CellX(p.x()), CellY(p.y()))];
    if (std::find(b.points.begin(), b.points.end(), p) != b.points.end()) {
      return Status::AlreadyExists("duplicate point");
    }
  }
  for (;;) {
    uint32_t bi = Dir(CellX(p.x()), CellY(p.y()));
    Bucket& b = buckets_[bi];
    if (b.points.size() < options_.bucket_capacity) {
      b.points.push_back(p);
      ++size_;
      return Status::OK();
    }
    if (!SplitBucket(bi)) {
      // Degenerate geometry (all points share coordinates); grow the
      // bucket beyond capacity rather than loop forever.
      buckets_[bi].points.push_back(p);
      ++size_;
      return Status::OK();
    }
  }
}

bool GridFile::SplitBucket(uint32_t bi) {
  // If the bucket's cell block spans more than one cell on some axis, the
  // split reuses an existing boundary and touches only the directory.
  // Otherwise a new boundary refines a scale first.
  {
    const Bucket& b = buckets_[bi];
    bool spans_x = b.ix1 - b.ix0 > 1;
    bool spans_y = b.iy1 - b.iy0 > 1;
    if (!spans_x && !spans_y) {
      // Refine the scale through this bucket's single cell. Alternate axes
      // so the decomposition stays roughly square (the grid file's
      // "cyclic" splitting policy).
      bool do_x = split_x_next_;
      split_x_next_ = !split_x_next_;
      if (do_x) {
        double lo = XBoundary(b.ix0);
        double hi = XBoundary(b.ix0 + 1);
        if (hi - lo <= 0.0 || lo + 0.5 * (hi - lo) <= lo) {
          // x direction exhausted at double precision; try y.
          double ylo = YBoundary(b.iy0);
          double yhi = YBoundary(b.iy0 + 1);
          if (yhi - ylo <= 0.0 || ylo + 0.5 * (yhi - ylo) <= ylo) return false;
          RefineY(b.iy0);
        } else {
          RefineX(b.ix0);
        }
      } else {
        double lo = YBoundary(b.iy0);
        double hi = YBoundary(b.iy0 + 1);
        if (hi - lo <= 0.0 || lo + 0.5 * (hi - lo) <= lo) {
          double xlo = XBoundary(b.ix0);
          double xhi = XBoundary(b.ix0 + 1);
          if (xhi - xlo <= 0.0 || xlo + 0.5 * (xhi - xlo) <= xlo) return false;
          RefineX(b.ix0);
        } else {
          RefineY(b.iy0);
        }
      }
    }
  }
  // Now the block spans >= 2 cells on at least one axis. Split along the
  // wider span at its cell midpoint.
  Bucket& b = buckets_[bi];
  bool split_x = (b.ix1 - b.ix0) >= (b.iy1 - b.iy0);
  uint32_t nbi = static_cast<uint32_t>(buckets_.size());
  buckets_.push_back(Bucket{});
  Bucket& nb = buckets_.back();
  Bucket& ob = buckets_[bi];  // re-fetch: push_back may reallocate

  if (split_x) {
    size_t mid = ob.ix0 + (ob.ix1 - ob.ix0) / 2;
    nb.ix0 = mid;
    nb.ix1 = ob.ix1;
    nb.iy0 = ob.iy0;
    nb.iy1 = ob.iy1;
    ob.ix1 = mid;
    for (size_t ix = nb.ix0; ix < nb.ix1; ++ix) {
      for (size_t iy = nb.iy0; iy < nb.iy1; ++iy) Dir(ix, iy) = nbi;
    }
    double boundary = XBoundary(mid);
    std::vector<PointT> points = std::move(ob.points);
    ob.points.clear();
    for (const PointT& p : points) {
      (p.x() >= boundary ? nb : ob).points.push_back(p);
    }
  } else {
    size_t mid = ob.iy0 + (ob.iy1 - ob.iy0) / 2;
    nb.iy0 = mid;
    nb.iy1 = ob.iy1;
    nb.ix0 = ob.ix0;
    nb.ix1 = ob.ix1;
    ob.iy1 = mid;
    for (size_t ix = nb.ix0; ix < nb.ix1; ++ix) {
      for (size_t iy = nb.iy0; iy < nb.iy1; ++iy) Dir(ix, iy) = nbi;
    }
    double boundary = YBoundary(mid);
    std::vector<PointT> points = std::move(ob.points);
    ob.points.clear();
    for (const PointT& p : points) {
      (p.y() >= boundary ? nb : ob).points.push_back(p);
    }
  }
  return true;
}

void GridFile::RefineX(size_t ix) {
  double lo = XBoundary(ix);
  double hi = XBoundary(ix + 1);
  double mid = lo + 0.5 * (hi - lo);
  POPAN_DCHECK(mid > lo && mid < hi);
  xs_.insert(xs_.begin() + static_cast<ptrdiff_t>(ix), mid);

  // Rebuild the directory with the duplicated column: old cell ix becomes
  // cells ix and ix+1, both initially served by the same buckets.
  size_t old_nx = CellsX() - 1;  // CellsX already reflects the new scale
  size_t ny = CellsY();
  std::vector<uint32_t> rebuilt(CellsX() * ny);
  for (size_t iy = 0; iy < ny; ++iy) {
    for (size_t nix = 0; nix < CellsX(); ++nix) {
      size_t oix = nix <= ix ? nix : nix - 1;
      rebuilt[iy * CellsX() + nix] = directory_[iy * old_nx + oix];
    }
  }
  directory_ = std::move(rebuilt);

  // Remap every bucket's x-range: indices after ix shift right; ranges
  // containing ix widen by one cell.
  for (Bucket& b : buckets_) {
    if (b.ix0 > ix) ++b.ix0;
    if (b.ix1 > ix) ++b.ix1;
  }
}

void GridFile::RefineY(size_t iy) {
  double lo = YBoundary(iy);
  double hi = YBoundary(iy + 1);
  double mid = lo + 0.5 * (hi - lo);
  POPAN_DCHECK(mid > lo && mid < hi);
  ys_.insert(ys_.begin() + static_cast<ptrdiff_t>(iy), mid);

  size_t nx = CellsX();
  std::vector<uint32_t> rebuilt(nx * CellsY());
  for (size_t niy = 0; niy < CellsY(); ++niy) {
    size_t oiy = niy <= iy ? niy : niy - 1;
    for (size_t ix = 0; ix < nx; ++ix) {
      rebuilt[niy * nx + ix] = directory_[oiy * nx + ix];
    }
  }
  directory_ = std::move(rebuilt);

  for (Bucket& b : buckets_) {
    if (b.iy0 > iy) ++b.iy0;
    if (b.iy1 > iy) ++b.iy1;
  }
}

bool GridFile::Contains(const PointT& p) const {
  if (!domain_.Contains(p)) return false;
  const Bucket& b = buckets_[Dir(CellX(p.x()), CellY(p.y()))];
  return std::find(b.points.begin(), b.points.end(), p) != b.points.end();
}

Status GridFile::Erase(const PointT& p) {
  if (!domain_.Contains(p)) return Status::NotFound("outside domain");
  Bucket& b = buckets_[Dir(CellX(p.x()), CellY(p.y()))];
  auto it = std::find(b.points.begin(), b.points.end(), p);
  if (it == b.points.end()) return Status::NotFound("point not stored");
  *it = b.points.back();
  b.points.pop_back();
  --size_;
  return Status::OK();
}

std::vector<GridFile::PointT> GridFile::RangeQuery(const BoxT& query) const {
  std::vector<PointT> out;
  QueryCost cost;
  RangeQueryVisit(query, &cost, [&out](const PointT& p) { out.push_back(p); });
  return out;
}

std::vector<GridFile::PointT> GridFile::NearestK(const PointT& target,
                                                 size_t k,
                                                 QueryCost* cost) const {
  POPAN_CHECK(k >= 1);
  POPAN_DCHECK(cost != nullptr);
  std::vector<PointT> out;
  if (size_ == 0) return out;
  // Distance from the target to a bucket's closed region.
  auto bucket_d2 = [this, &target](const Bucket& b) {
    double dx = 0.0, dy = 0.0;
    if (target.x() < XBoundary(b.ix0)) {
      dx = XBoundary(b.ix0) - target.x();
    } else if (target.x() > XBoundary(b.ix1)) {
      dx = target.x() - XBoundary(b.ix1);
    }
    if (target.y() < YBoundary(b.iy0)) {
      dy = YBoundary(b.iy0) - target.y();
    } else if (target.y() > YBoundary(b.iy1)) {
      dy = target.y() - YBoundary(b.iy1);
    }
    return dx * dx + dy * dy;
  };
  // Rank all buckets by (region distance, index) — the grid file has no
  // hierarchy to descend, so the "traversal" is one sorted scan with the
  // standard best-first cutoff.
  std::vector<std::pair<double, uint32_t>> order;
  order.reserve(buckets_.size());
  for (uint32_t bi = 0; bi < buckets_.size(); ++bi) {
    ++cost->nodes_visited;
    order.emplace_back(bucket_d2(buckets_[bi]), bi);
  }
  std::sort(order.begin(), order.end());
  // Canonical (distance², x, y) accumulator (knn_heap.h): equal-distance
  // ties resolve by coordinate order, and a bucket at exactly the k-th
  // distance is still scanned — it may hold a tie-winning point.
  KnnHeap<PointT, PointTieLess> heap(k);
  for (size_t i = 0; i < order.size(); ++i) {
    if (heap.ShouldPrune(order[i].first)) {
      // Sorted: every remaining bucket is at least this far.
      cost->pruned_subtrees += order.size() - i;
      break;
    }
    const Bucket& b = buckets_[order[i].second];
    ++cost->leaves_touched;
    for (const PointT& p : b.points) {
      ++cost->points_scanned;
      heap.Offer(p.DistanceSquared(target), p);
    }
  }
  out = heap.TakeSorted();
  return out;
}

Status GridFile::CheckInvariants() const {
  if (directory_.size() != CellsX() * CellsY()) {
    return Status::Internal("directory size mismatch");
  }
  if (!std::is_sorted(xs_.begin(), xs_.end()) ||
      !std::is_sorted(ys_.begin(), ys_.end())) {
    return Status::Internal("unsorted linear scale");
  }
  size_t points_seen = 0;
  std::vector<uint64_t> cells_covered(buckets_.size(), 0);
  for (size_t bi = 0; bi < buckets_.size(); ++bi) {
    const Bucket& b = buckets_[bi];
    if (b.ix0 >= b.ix1 || b.iy0 >= b.iy1 || b.ix1 > CellsX() ||
        b.iy1 > CellsY()) {
      return Status::Internal("bucket block out of range");
    }
    // Every cell in the block must point back to the bucket.
    for (size_t ix = b.ix0; ix < b.ix1; ++ix) {
      for (size_t iy = b.iy0; iy < b.iy1; ++iy) {
        if (Dir(ix, iy) != bi) {
          return Status::Internal("directory cell does not match its bucket");
        }
      }
    }
    cells_covered[bi] = (b.ix1 - b.ix0) * (b.iy1 - b.iy0);
    // Points must lie inside the bucket's region.
    double bx0 = XBoundary(b.ix0);
    double bx1 = XBoundary(b.ix1);
    double by0 = YBoundary(b.iy0);
    double by1 = YBoundary(b.iy1);
    for (const PointT& p : b.points) {
      bool in_x = p.x() >= bx0 && (p.x() < bx1 || b.ix1 == CellsX());
      bool in_y = p.y() >= by0 && (p.y() < by1 || b.iy1 == CellsY());
      if (!in_x || !in_y) {
        return Status::Internal("point outside its bucket region");
      }
    }
    points_seen += b.points.size();
  }
  uint64_t total_cells = 0;
  for (uint64_t c : cells_covered) total_cells += c;
  if (total_cells != directory_.size()) {
    return Status::Internal("bucket blocks do not tile the directory");
  }
  if (points_seen != size_) {
    return Status::Internal("size mismatch");
  }
  return Status::OK();
}

}  // namespace popan::spatial
