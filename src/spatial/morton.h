#ifndef POPAN_SPATIAL_MORTON_H_
#define POPAN_SPATIAL_MORTON_H_

#include <cstdint>
#include <string>

#include "geometry/box.h"
#include "geometry/point.h"

namespace popan::spatial {

/// Morton (Z-order) locational codes for quadtree blocks — the linear
/// quadtree machinery of the Samet group's GIS systems the paper grew out
/// of [Same85c]. A block at depth d in the regular decomposition of a
/// root square is identified by the d quadrant choices on the path from
/// the root; packing those 2-bit choices most-significant-first yields a
/// code with two key properties:
///
///   * the codes of all descendants of a block form one contiguous
///     interval, so containment is an integer range test; and
///   * sorting leaves by code linearizes the tree in depth-first order,
///     so a pointerless ("linear") quadtree is just a sorted array.
struct MortonCode {
  /// Quadrant path bits, packed from the most significant end of the
  /// kMaxDepth-pair field; bits beyond `depth` pairs are zero.
  uint64_t bits = 0;
  /// Path length (root block = 0).
  uint8_t depth = 0;

  /// Deepest representable block: 31 quadrant choices fit 62 bits.
  static constexpr uint8_t kMaxDepth = 31;

  friend bool operator==(const MortonCode& a, const MortonCode& b) {
    return a.bits == b.bits && a.depth == b.depth;
  }
  friend bool operator!=(const MortonCode& a, const MortonCode& b) {
    return !(a == b);
  }
  /// Depth-first (pre-)order: ancestors sort before descendants, and
  /// disjoint blocks sort by spatial Z order.
  friend bool operator<(const MortonCode& a, const MortonCode& b) {
    return a.bits != b.bits ? a.bits < b.bits : a.depth < b.depth;
  }
};

/// The root block's code (empty path).
inline MortonCode RootCode() { return MortonCode{}; }

/// The code of `parent`'s child in quadrant `q` (Box2::Quadrant indexing).
MortonCode ChildCode(const MortonCode& parent, size_t quadrant);

/// The parent of a non-root code.
MortonCode ParentCode(const MortonCode& code);

/// The code of the depth-`depth` block of `root` containing `p`. `p` must
/// lie inside `root`; depth <= kMaxDepth.
MortonCode CodeOfPoint(const geo::Box2& root, const geo::Point2& p,
                       uint8_t depth);

/// The block a code denotes, within `root`.
geo::Box2 BlockOfCode(const geo::Box2& root, const MortonCode& code);

/// True iff `ancestor` is `code` or one of its ancestors.
bool IsAncestorOrSelf(const MortonCode& ancestor, const MortonCode& code);

/// The half-open interval [lo, hi) of kMaxDepth-level codes covered by
/// `code`'s block; used for sorted-array range searches.
void DescendantRange(const MortonCode& code, uint64_t* lo, uint64_t* hi);

/// Human-readable quadrant path like "0.3.1" ("" for the root).
std::string MortonCodeToString(const MortonCode& code);

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_MORTON_H_
