#ifndef POPAN_SPATIAL_MORTON_H_
#define POPAN_SPATIAL_MORTON_H_

#include <cstdint>
#include <span>
#include <string>

#include "geometry/box.h"
#include "geometry/point.h"

namespace popan::spatial {

/// Morton (Z-order) locational codes for quadtree blocks — the linear
/// quadtree machinery of the Samet group's GIS systems the paper grew out
/// of [Same85c]. A block at depth d in the regular decomposition of a
/// root square is identified by the d quadrant choices on the path from
/// the root; packing those 2-bit choices most-significant-first yields a
/// code with two key properties:
///
///   * the codes of all descendants of a block form one contiguous
///     interval, so containment is an integer range test; and
///   * sorting leaves by code linearizes the tree in depth-first order,
///     so a pointerless ("linear") quadtree is just a sorted array.
struct MortonCode {
  /// Quadrant path bits, packed from the most significant end of the
  /// kMaxDepth-pair field; bits beyond `depth` pairs are zero.
  uint64_t bits = 0;
  /// Path length (root block = 0).
  uint8_t depth = 0;

  /// Deepest representable block: 31 quadrant choices fit 62 bits.
  static constexpr uint8_t kMaxDepth = 31;

  friend bool operator==(const MortonCode& a, const MortonCode& b) {
    return a.bits == b.bits && a.depth == b.depth;
  }
  friend bool operator!=(const MortonCode& a, const MortonCode& b) {
    return !(a == b);
  }
  /// Depth-first (pre-)order: ancestors sort before descendants, and
  /// disjoint blocks sort by spatial Z order.
  friend bool operator<(const MortonCode& a, const MortonCode& b) {
    return a.bits != b.bits ? a.bits < b.bits : a.depth < b.depth;
  }
};

/// The root block's code (empty path).
inline MortonCode RootCode() { return MortonCode{}; }

/// The code of `parent`'s child in quadrant `q` (Box2::Quadrant indexing).
MortonCode ChildCode(const MortonCode& parent, size_t quadrant);

/// The parent of a non-root code.
MortonCode ParentCode(const MortonCode& code);

/// The code of the depth-`depth` block of `root` containing `p`. `p` must
/// lie inside `root`; depth <= kMaxDepth.
MortonCode CodeOfPoint(const geo::Box2& root, const geo::Point2& p,
                       uint8_t depth);

/// The block a code denotes, within `root`.
geo::Box2 BlockOfCode(const geo::Box2& root, const MortonCode& code);

/// True iff `ancestor` is `code` or one of its ancestors.
bool IsAncestorOrSelf(const MortonCode& ancestor, const MortonCode& code);

/// The half-open interval [lo, hi) of kMaxDepth-level codes covered by
/// `code`'s block; used for sorted-array range searches.
void DescendantRange(const MortonCode& code, uint64_t* lo, uint64_t* hi);

/// Human-readable quadrant path like "0.3.1" ("" for the root).
std::string MortonCodeToString(const MortonCode& code);

/// Batched CodeOfPoint, bits only: out[i] = CodeOfPoint(root, pts[i],
/// depth).bits, bit for bit, for every point. Roots anchored at zero with
/// power-of-two extents (the experiments' unit cube) take a quantize +
/// 8-key bit-interleave fast path; any other root uses a lane-parallel
/// bisection whose per-level arithmetic is elementwise identical to the
/// scalar QuadrantOf/Quadrant descent, so the results match the scalar
/// codec on both paths. Every point must lie inside `root`;
/// depth <= MortonCode::kMaxDepth; out must hold pts.size() entries.
void CodeBitsBatch(const geo::Box2& root, std::span<const geo::Point2> pts,
                   uint8_t depth, uint64_t* out);

/// Batched CodeOfPoint: the MortonCode form of CodeBitsBatch.
void CodeOfPointBatch(const geo::Box2& root, std::span<const geo::Point2> pts,
                      uint8_t depth, MortonCode* out);

/// Interleaves 8 quantized (x, y) pairs per call into raw Morton bit
/// patterns (bit 2k of out[i] = bit k of xs[i], bit 2k+1 = bit k of
/// ys[i]) — the batched kernel behind the linear/MX codecs and the
/// extendible-hash query codec. Integer-exact on every dispatch path.
void InterleaveBatch8(const uint32_t* xs, const uint32_t* ys, uint64_t* out);

/// Inverse of InterleaveBatch8: splits 8 codes back into coordinate pairs.
void DeinterleaveBatch8(const uint64_t* codes, uint32_t* xs, uint32_t* ys);

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_MORTON_H_
