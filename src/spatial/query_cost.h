#ifndef POPAN_SPATIAL_QUERY_COST_H_
#define POPAN_SPATIAL_QUERY_COST_H_

#include <cstdint>
#include <string>

namespace popan::spatial {

/// Work counters carried by every query primitive in the spatial layer.
/// The counters are pure functions of the structure contents and the
/// query — no clocks, no allocation sizes — so a query's cost is
/// bit-identical across runs, thread counts, and machines, which is what
/// lets the bench reference JSONs gate on them exactly.
///
/// The four counters map onto each backend as follows:
///   nodes_visited   — tree nodes / directory cells / buckets examined
///                     (the geometric test was actually performed).
///   leaves_touched  — leaves or buckets whose *contents* were scanned.
///   points_scanned  — stored items compared against the query predicate.
///                     For the PMR quadtree this counts fragment
///                     encounters, so it exposes the duplication factor.
///   pruned_subtrees — children, spans, or buckets rejected by a
///                     geometric or distance test without being entered.
struct QueryCost {
  uint64_t nodes_visited = 0;
  uint64_t leaves_touched = 0;
  uint64_t points_scanned = 0;
  uint64_t pruned_subtrees = 0;

  void Add(const QueryCost& other) {
    nodes_visited += other.nodes_visited;
    leaves_touched += other.leaves_touched;
    points_scanned += other.points_scanned;
    pruned_subtrees += other.pruned_subtrees;
  }

  friend bool operator==(const QueryCost& a, const QueryCost& b) {
    return a.nodes_visited == b.nodes_visited &&
           a.leaves_touched == b.leaves_touched &&
           a.points_scanned == b.points_scanned &&
           a.pruned_subtrees == b.pruned_subtrees;
  }
  friend bool operator!=(const QueryCost& a, const QueryCost& b) {
    return !(a == b);
  }

  std::string ToString() const {
    return "nodes=" + std::to_string(nodes_visited) +
           " leaves=" + std::to_string(leaves_touched) +
           " points=" + std::to_string(points_scanned) +
           " pruned=" + std::to_string(pruned_subtrees);
  }
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_QUERY_COST_H_
