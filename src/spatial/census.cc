#include "spatial/census.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace popan::spatial {

void Census::AddLeaf(size_t occupancy, size_t depth) {
  AddLeaves(occupancy, depth, 1);
}

void Census::AddLeaves(size_t occupancy, size_t depth, uint64_t count) {
  if (count == 0) return;
  if (occupancy >= count_by_occupancy_.size()) {
    count_by_occupancy_.resize(occupancy + 1, 0);
  }
  count_by_occupancy_[occupancy] += count;
  if (depth >= by_depth_.size()) {
    by_depth_.resize(depth + 1);
  }
  if (occupancy >= by_depth_[depth].size()) {
    by_depth_[depth].resize(occupancy + 1, 0);
  }
  by_depth_[depth][occupancy] += count;
  leaf_count_ += count;
  item_count_ += occupancy * count;
}

void Census::Merge(const Census& other) {
  if (other.count_by_occupancy_.size() > count_by_occupancy_.size()) {
    count_by_occupancy_.resize(other.count_by_occupancy_.size(), 0);
  }
  for (size_t i = 0; i < other.count_by_occupancy_.size(); ++i) {
    count_by_occupancy_[i] += other.count_by_occupancy_[i];
  }
  if (other.by_depth_.size() > by_depth_.size()) {
    by_depth_.resize(other.by_depth_.size());
  }
  for (size_t d = 0; d < other.by_depth_.size(); ++d) {
    if (other.by_depth_[d].size() > by_depth_[d].size()) {
      by_depth_[d].resize(other.by_depth_[d].size(), 0);
    }
    for (size_t i = 0; i < other.by_depth_[d].size(); ++i) {
      by_depth_[d][i] += other.by_depth_[d][i];
    }
  }
  leaf_count_ += other.leaf_count_;
  item_count_ += other.item_count_;
}

uint64_t Census::CountAt(size_t occupancy) const {
  if (occupancy >= count_by_occupancy_.size()) return 0;
  return count_by_occupancy_[occupancy];
}

uint64_t Census::CountAt(size_t occupancy, size_t depth) const {
  if (depth >= by_depth_.size()) return 0;
  if (occupancy >= by_depth_[depth].size()) return 0;
  return by_depth_[depth][occupancy];
}

size_t Census::MaxOccupancy() const {
  for (size_t i = count_by_occupancy_.size(); i-- > 0;) {
    if (count_by_occupancy_[i] != 0) return i;
  }
  return 0;
}

size_t Census::MaxDepth() const {
  for (size_t d = by_depth_.size(); d-- > 0;) {
    for (uint64_t c : by_depth_[d]) {
      if (c != 0) return d;
    }
  }
  return 0;
}

std::vector<size_t> Census::DepthsPresent() const {
  std::vector<size_t> out;
  for (size_t d = 0; d < by_depth_.size(); ++d) {
    if (LeavesAtDepth(d) > 0) out.push_back(d);
  }
  return out;
}

uint64_t Census::LeavesAtDepth(size_t depth) const {
  if (depth >= by_depth_.size()) return 0;
  uint64_t total = 0;
  for (uint64_t c : by_depth_[depth]) total += c;
  return total;
}

uint64_t Census::ItemsAtDepth(size_t depth) const {
  if (depth >= by_depth_.size()) return 0;
  uint64_t total = 0;
  for (size_t i = 0; i < by_depth_[depth].size(); ++i) {
    total += by_depth_[depth][i] * i;
  }
  return total;
}

double Census::AverageOccupancyAtDepth(size_t depth) const {
  uint64_t leaves = LeavesAtDepth(depth);
  if (leaves == 0) return 0.0;
  return static_cast<double>(ItemsAtDepth(depth)) /
         static_cast<double>(leaves);
}

num::Vector Census::Proportions(size_t min_size) const {
  size_t size = std::max(min_size, count_by_occupancy_.size());
  num::Vector out(size);
  if (leaf_count_ == 0) return out;
  for (size_t i = 0; i < count_by_occupancy_.size(); ++i) {
    out[i] = static_cast<double>(count_by_occupancy_[i]) /
             static_cast<double>(leaf_count_);
  }
  return out;
}

double Census::AverageOccupancy() const {
  if (leaf_count_ == 0) return 0.0;
  return static_cast<double>(item_count_) / static_cast<double>(leaf_count_);
}

double Census::StorageUtilization(size_t capacity) const {
  POPAN_CHECK(capacity > 0);
  return AverageOccupancy() / static_cast<double>(capacity);
}

namespace {

// a[i] == b[i] with missing tail entries treated as zero.
bool PaddedEqual(const std::vector<uint64_t>& a,
                 const std::vector<uint64_t>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t av = i < a.size() ? a[i] : 0;
    uint64_t bv = i < b.size() ? b[i] : 0;
    if (av != bv) return false;
  }
  return true;
}

}  // namespace

bool operator==(const Census& a, const Census& b) {
  if (a.leaf_count_ != b.leaf_count_ || a.item_count_ != b.item_count_) {
    return false;
  }
  if (!PaddedEqual(a.count_by_occupancy_, b.count_by_occupancy_)) {
    return false;
  }
  static const std::vector<uint64_t> kEmpty;
  size_t depths = std::max(a.by_depth_.size(), b.by_depth_.size());
  for (size_t d = 0; d < depths; ++d) {
    const std::vector<uint64_t>& ad = d < a.by_depth_.size() ? a.by_depth_[d]
                                                             : kEmpty;
    const std::vector<uint64_t>& bd = d < b.by_depth_.size() ? b.by_depth_[d]
                                                             : kEmpty;
    if (!PaddedEqual(ad, bd)) return false;
  }
  return true;
}

std::string Census::ToString() const {
  std::ostringstream os;
  os << "Census{leaves=" << leaf_count_ << ", items=" << item_count_
     << ", avg_occupancy=" << AverageOccupancy() << ", by_occupancy=[";
  for (size_t i = 0; i < count_by_occupancy_.size(); ++i) {
    if (i != 0) os << ", ";
    os << i << ":" << count_by_occupancy_[i];
  }
  os << "]}";
  return os.str();
}

}  // namespace popan::spatial
