#include "spatial/excell.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "spatial/knn_heap.h"
#include "util/check.h"

namespace popan::spatial {

namespace {
// Bits of each coordinate folded into the pseudokey (interleaved pairs).
constexpr size_t kBitsPerAxis = 31;
}  // namespace

Excell::Excell(const BoxT& domain, const ExcellOptions& options)
    : domain_(domain), options_(options) {
  POPAN_CHECK(options_.bucket_capacity >= 1);
  POPAN_CHECK(options_.max_global_depth <= 2 * kBitsPerAxis);
  directory_.push_back(0);
  buckets_.push_back(Bucket{});
}

uint64_t Excell::PseudoKey(const PointT& p) const {
  // Normalize to [0, 1) and quantize each axis to kBitsPerAxis bits.
  double fx = (p.x() - domain_.lo().x()) / domain_.Extent(0);
  double fy = (p.y() - domain_.lo().y()) / domain_.Extent(1);
  auto quantize = [](double f) {
    double scaled = f * static_cast<double>(uint64_t{1} << kBitsPerAxis);
    uint64_t q = static_cast<uint64_t>(scaled);
    return std::min(q, (uint64_t{1} << kBitsPerAxis) - 1);
  };
  uint64_t xq = quantize(fx);
  uint64_t yq = quantize(fy);
  // Interleave from the most significant end: y bit first, then x bit,
  // matching the alternating y/x halving of the directory.
  uint64_t key = 0;
  for (size_t level = 0; level < kBitsPerAxis; ++level) {
    uint64_t ybit = (yq >> (kBitsPerAxis - 1 - level)) & 1;
    uint64_t xbit = (xq >> (kBitsPerAxis - 1 - level)) & 1;
    key = (key << 2) | (ybit << 1) | xbit;
  }
  // Left-align in 64 bits so DirIndex can take top bits.
  return key << (64 - 2 * kBitsPerAxis);
}

size_t Excell::DirIndex(uint64_t pseudo) const {
  if (global_depth_ == 0) return 0;
  return static_cast<size_t>(pseudo >> (64 - global_depth_));
}

Status Excell::Insert(const PointT& p) {
  if (!domain_.Contains(p)) {
    return Status::OutOfRange("point outside the EXCELL domain");
  }
  uint64_t pseudo = PseudoKey(p);
  {
    const Bucket& b = buckets_[directory_[DirIndex(pseudo)]];
    if (std::find(b.points.begin(), b.points.end(), p) != b.points.end()) {
      return Status::AlreadyExists("duplicate point");
    }
  }
  for (;;) {
    size_t idx = DirIndex(pseudo);
    Bucket& b = buckets_[directory_[idx]];
    if (b.points.size() < options_.bucket_capacity) {
      b.points.push_back(p);
      ++size_;
      return Status::OK();
    }
    if (!SplitBucket(idx)) {
      return Status::ResourceExhausted(
          "bucket split would exceed max_global_depth");
    }
  }
}

bool Excell::SplitBucket(size_t dir_idx) {
  uint32_t bi = directory_[dir_idx];
  if (buckets_[bi].local_depth == global_depth_) {
    if (global_depth_ >= options_.max_global_depth) return false;
    DoubleDirectory();
  }
  const size_t new_local = buckets_[bi].local_depth + 1;
  uint32_t nbi = static_cast<uint32_t>(buckets_.size());
  buckets_.push_back(Bucket{new_local, {}});
  buckets_[bi].local_depth = new_local;

  const uint64_t half_bit = uint64_t{1} << (global_depth_ - new_local);
  for (size_t j = 0; j < directory_.size(); ++j) {
    if (directory_[j] == bi && (j & half_bit)) directory_[j] = nbi;
  }
  std::vector<PointT> points = std::move(buckets_[bi].points);
  buckets_[bi].points.clear();
  for (const PointT& p : points) {
    uint64_t pseudo = PseudoKey(p);
    if ((pseudo >> (64 - new_local)) & 1) {
      buckets_[nbi].points.push_back(p);
    } else {
      buckets_[bi].points.push_back(p);
    }
  }
  return true;
}

void Excell::DoubleDirectory() {
  std::vector<uint32_t> doubled(directory_.size() * 2);
  for (size_t i = 0; i < directory_.size(); ++i) {
    doubled[2 * i] = directory_[i];
    doubled[2 * i + 1] = directory_[i];
  }
  directory_ = std::move(doubled);
  ++global_depth_;
}

bool Excell::Contains(const PointT& p) const {
  if (!domain_.Contains(p)) return false;
  const Bucket& b = buckets_[directory_[DirIndex(PseudoKey(p))]];
  return std::find(b.points.begin(), b.points.end(), p) != b.points.end();
}

Status Excell::Erase(const PointT& p) {
  if (!domain_.Contains(p)) return Status::NotFound("outside domain");
  uint64_t pseudo = PseudoKey(p);
  Bucket& b = buckets_[directory_[DirIndex(pseudo)]];
  auto it = std::find(b.points.begin(), b.points.end(), p);
  if (it == b.points.end()) return Status::NotFound("point not stored");
  *it = b.points.back();
  b.points.pop_back();
  --size_;
  TryMerge(pseudo);
  TryShrinkDirectory();
  return Status::OK();
}

void Excell::TryMerge(uint64_t pseudo) {
  for (;;) {
    size_t idx = DirIndex(pseudo);
    uint32_t bi = directory_[idx];
    Bucket& b = buckets_[bi];
    if (b.local_depth == 0) return;
    size_t buddy_idx = idx ^ (size_t{1} << (global_depth_ - b.local_depth));
    uint32_t buddy_bi = directory_[buddy_idx];
    if (buddy_bi == bi) return;
    Bucket& buddy = buckets_[buddy_bi];
    if (buddy.local_depth != b.local_depth) return;
    if (b.points.size() + buddy.points.size() > options_.bucket_capacity) {
      return;
    }
    b.points.insert(b.points.end(), buddy.points.begin(),
                    buddy.points.end());
    --b.local_depth;
    for (uint32_t& slot : directory_) {
      if (slot == buddy_bi) slot = bi;
    }
    uint32_t last = static_cast<uint32_t>(buckets_.size() - 1);
    if (buddy_bi != last) {
      buckets_[buddy_bi] = std::move(buckets_[last]);
      for (uint32_t& slot : directory_) {
        if (slot == last) slot = buddy_bi;
      }
    }
    buckets_.pop_back();
  }
}

void Excell::TryShrinkDirectory() {
  while (global_depth_ > 0) {
    for (const Bucket& b : buckets_) {
      if (b.local_depth == global_depth_) return;
    }
    std::vector<uint32_t> halved(directory_.size() / 2);
    for (size_t i = 0; i < halved.size(); ++i) {
      POPAN_DCHECK(directory_[2 * i] == directory_[2 * i + 1]);
      halved[i] = directory_[2 * i];
    }
    directory_ = std::move(halved);
    --global_depth_;
  }
}

Excell::BoxT Excell::BlockOfPrefix(uint64_t prefix_bits,
                                   size_t depth_bits) const {
  // Consume bits from the most significant position of the depth_bits
  // prefix; even positions split y, odd positions split x (matching
  // PseudoKey's interleaving).
  BoxT box = domain_;
  for (size_t level = 0; level < depth_bits; ++level) {
    uint64_t bit = (prefix_bits >> (depth_bits - 1 - level)) & 1;
    PointT lo = box.lo();
    PointT hi = box.hi();
    size_t axis = (level % 2 == 0) ? 1 : 0;  // y first
    double mid = 0.5 * (lo[axis] + hi[axis]);
    if (bit) {
      lo[axis] = mid;
    } else {
      hi[axis] = mid;
    }
    box = BoxT(lo, hi);
  }
  return box;
}

std::vector<Excell::PointT> Excell::RangeQuery(const BoxT& query) const {
  std::vector<PointT> out;
  QueryCost cost;
  RangeQueryVisit(query, &cost, [&out](const PointT& p) { out.push_back(p); });
  return out;
}

std::vector<Excell::PointT> Excell::NearestK(const PointT& target, size_t k,
                                             QueryCost* cost) const {
  POPAN_CHECK(k >= 1);
  POPAN_DCHECK(cost != nullptr);
  std::vector<PointT> out;
  if (size_ == 0) return out;
  // Rank all buckets by (block distance, index) — the directory is flat,
  // so the "traversal" is one sorted scan with the best-first cutoff.
  std::vector<std::pair<double, uint32_t>> order;
  order.reserve(buckets_.size());
  VisitBucketsWithPrefix(
      [this, &target, cost, &order](size_t bi, uint64_t prefix, size_t depth) {
        ++cost->nodes_visited;
        order.emplace_back(
            BlockOfPrefix(prefix, depth).DistanceSquaredTo(target),
            static_cast<uint32_t>(bi));
      });
  std::sort(order.begin(), order.end());
  // Canonical (distance², x, y) accumulator (knn_heap.h): equal-distance
  // ties resolve by coordinate order, and a bucket at exactly the k-th
  // distance is still scanned — it may hold a tie-winning point.
  KnnHeap<PointT, PointTieLess> heap(k);
  for (size_t i = 0; i < order.size(); ++i) {
    if (heap.ShouldPrune(order[i].first)) {
      // Sorted: every remaining bucket is at least this far.
      cost->pruned_subtrees += order.size() - i;
      break;
    }
    ++cost->leaves_touched;
    for (const PointT& p : buckets_[order[i].second].points) {
      ++cost->points_scanned;
      heap.Offer(p.DistanceSquared(target), p);
    }
  }
  out = heap.TakeSorted();
  return out;
}

Status Excell::CheckInvariants() const {
  if (directory_.size() != (size_t{1} << global_depth_)) {
    return Status::Internal("directory size != 2^global_depth");
  }
  size_t points_seen = 0;
  for (size_t bi = 0; bi < buckets_.size(); ++bi) {
    const Bucket& b = buckets_[bi];
    if (b.local_depth > global_depth_) {
      return Status::Internal("local depth exceeds global depth");
    }
    size_t expected_slots = size_t{1} << (global_depth_ - b.local_depth);
    size_t actual_slots = 0;
    size_t first_slot = directory_.size();
    for (size_t j = 0; j < directory_.size(); ++j) {
      if (directory_[j] == bi) {
        ++actual_slots;
        first_slot = std::min(first_slot, j);
      }
    }
    if (actual_slots != expected_slots) {
      return Status::Internal("bucket pointer multiplicity mismatch");
    }
    if (first_slot % expected_slots != 0) {
      return Status::Internal("bucket slot range misaligned");
    }
    // Geometric placement: every point must lie in the bucket's block and
    // hash back to a slot of this bucket.
    uint64_t prefix = static_cast<uint64_t>(first_slot) >>
                      (global_depth_ - b.local_depth);
    BoxT block = BlockOfPrefix(prefix, b.local_depth);
    for (const PointT& p : b.points) {
      if (directory_[DirIndex(PseudoKey(p))] != bi) {
        return Status::Internal("point stored in the wrong bucket");
      }
      if (!block.Contains(p)) {
        return Status::Internal("point outside its bucket block");
      }
    }
    points_seen += b.points.size();
  }
  if (points_seen != size_) return Status::Internal("size mismatch");
  return Status::OK();
}

}  // namespace popan::spatial
