#include "spatial/extendible_hash.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace popan::spatial {

ExtendibleHash::ExtendibleHash(const ExtendibleHashOptions& options)
    : options_(options) {
  POPAN_CHECK(options_.bucket_capacity >= 1);
  POPAN_CHECK(options_.max_global_depth <= 60);
  directory_.push_back(0);
  buckets_.push_back(Bucket{});
  HistAdd(0, 0);
}

void ExtendibleHash::HistAdd(size_t local_depth, size_t occupancy) {
  if (local_depth >= live_hist_.size()) live_hist_.resize(local_depth + 1);
  std::vector<uint64_t>& row = live_hist_[local_depth];
  if (occupancy >= row.size()) row.resize(occupancy + 1, 0);
  ++row[occupancy];
}

void ExtendibleHash::HistRemove(size_t local_depth, size_t occupancy) {
  POPAN_DCHECK(local_depth < live_hist_.size() &&
               occupancy < live_hist_[local_depth].size() &&
               live_hist_[local_depth][occupancy] > 0)
      << "live census underflow at local depth" << local_depth;
  --live_hist_[local_depth][occupancy];
}

Census ExtendibleHash::LiveCensus() const {
  Census census;
  for (size_t d = 0; d < live_hist_.size(); ++d) {
    const std::vector<uint64_t>& row = live_hist_[d];
    for (size_t occ = 0; occ < row.size(); ++occ) {
      if (row[occ] != 0) census.AddLeaves(occ, d, row[occ]);
    }
  }
  return census;
}

uint64_t ExtendibleHash::PseudoKey(uint64_t key) const {
  if (options_.identity_hash) return key;
  // SplitMix64 finalizer: a strong 64-bit mixer, so the top bits that
  // address the directory are uniform even for sequential keys.
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

size_t ExtendibleHash::DirIndex(uint64_t pseudo) const {
  if (global_depth_ == 0) return 0;
  return static_cast<size_t>(pseudo >> (64 - global_depth_));
}

Status ExtendibleHash::Insert(uint64_t key) {
  uint64_t pseudo = PseudoKey(key);
  {
    const Bucket& b = buckets_[directory_[DirIndex(pseudo)]];
    if (std::find(b.keys.begin(), b.keys.end(), key) != b.keys.end()) {
      return Status::AlreadyExists("duplicate key");
    }
  }
  for (;;) {
    size_t idx = DirIndex(pseudo);
    Bucket& b = buckets_[directory_[idx]];
    if (b.keys.size() < options_.bucket_capacity) {
      HistRemove(b.local_depth, b.keys.size());
      b.keys.push_back(key);
      HistAdd(b.local_depth, b.keys.size());
      ++size_;
      return Status::OK();
    }
    if (!SplitBucket(idx)) {
      return Status::ResourceExhausted(
          "bucket split would exceed max_global_depth");
    }
  }
}

bool ExtendibleHash::SplitBucket(size_t dir_idx) {
  uint32_t bi = directory_[dir_idx];
  if (buckets_[bi].local_depth == global_depth_) {
    if (global_depth_ >= options_.max_global_depth) return false;
    DoubleDirectory();
  }
  const size_t new_local = buckets_[bi].local_depth + 1;
  POPAN_DCHECK(new_local <= global_depth_);
  HistRemove(new_local - 1, buckets_[bi].keys.size());

  // New bucket takes the '1' half of the split prefix; the old keeps '0'.
  uint32_t nbi = static_cast<uint32_t>(buckets_.size());
  buckets_.push_back(Bucket{new_local, {}});
  buckets_[bi].local_depth = new_local;

  // Redirect the directory slots of the '1' half. A slot j (global_depth_
  // top bits) belongs to the '1' half iff its bit at top position
  // new_local-1 is set.
  const uint64_t half_bit = uint64_t{1} << (global_depth_ - new_local);
  for (size_t j = 0; j < directory_.size(); ++j) {
    if (directory_[j] == bi && (j & half_bit)) directory_[j] = nbi;
  }

  // Redistribute keys by the discriminating pseudokey bit.
  std::vector<uint64_t> keys = std::move(buckets_[bi].keys);
  buckets_[bi].keys.clear();
  for (uint64_t key : keys) {
    uint64_t pseudo = PseudoKey(key);
    if ((pseudo >> (64 - new_local)) & 1) {
      buckets_[nbi].keys.push_back(key);
    } else {
      buckets_[bi].keys.push_back(key);
    }
  }
  HistAdd(new_local, buckets_[bi].keys.size());
  HistAdd(new_local, buckets_[nbi].keys.size());
  return true;
}

void ExtendibleHash::DoubleDirectory() {
  // Indexing is by the TOP global_depth bits, so extending the prefix by
  // one bit maps old slot i to new slots 2i and 2i+1.
  std::vector<uint32_t> doubled(directory_.size() * 2);
  for (size_t i = 0; i < directory_.size(); ++i) {
    doubled[2 * i] = directory_[i];
    doubled[2 * i + 1] = directory_[i];
  }
  directory_ = std::move(doubled);
  ++global_depth_;
}

bool ExtendibleHash::Contains(uint64_t key) const {
  const Bucket& b = buckets_[directory_[DirIndex(PseudoKey(key))]];
  return std::find(b.keys.begin(), b.keys.end(), key) != b.keys.end();
}

Status ExtendibleHash::Erase(uint64_t key) {
  uint64_t pseudo = PseudoKey(key);
  Bucket& b = buckets_[directory_[DirIndex(pseudo)]];
  auto it = std::find(b.keys.begin(), b.keys.end(), key);
  if (it == b.keys.end()) return Status::NotFound("key not stored");
  HistRemove(b.local_depth, b.keys.size());
  *it = b.keys.back();
  b.keys.pop_back();
  HistAdd(b.local_depth, b.keys.size());
  --size_;
  TryMerge(pseudo);
  TryShrinkDirectory();
  return Status::OK();
}

void ExtendibleHash::TryMerge(uint64_t pseudo) {
  for (;;) {
    size_t idx = DirIndex(pseudo);
    uint32_t bi = directory_[idx];
    Bucket& b = buckets_[bi];
    if (b.local_depth == 0) return;
    // The buddy covers the same prefix with the last bit flipped.
    size_t buddy_idx = idx ^ (size_t{1} << (global_depth_ - b.local_depth));
    uint32_t buddy_bi = directory_[buddy_idx];
    if (buddy_bi == bi) return;  // should not happen; defensive
    Bucket& buddy = buckets_[buddy_bi];
    if (buddy.local_depth != b.local_depth) return;
    if (b.keys.size() + buddy.keys.size() > options_.bucket_capacity) return;

    // Merge buddy into b and drop buddy.
    HistRemove(b.local_depth, b.keys.size());
    HistRemove(buddy.local_depth, buddy.keys.size());
    b.keys.insert(b.keys.end(), buddy.keys.begin(), buddy.keys.end());
    --b.local_depth;
    HistAdd(b.local_depth, b.keys.size());
    for (uint32_t& slot : directory_) {
      if (slot == buddy_bi) slot = bi;
    }
    // Swap-pop the dead bucket, fixing pointers to the moved one.
    uint32_t last = static_cast<uint32_t>(buckets_.size() - 1);
    if (buddy_bi != last) {
      buckets_[buddy_bi] = std::move(buckets_[last]);
      for (uint32_t& slot : directory_) {
        if (slot == last) slot = buddy_bi;
      }
    }
    buckets_.pop_back();
    // The merged bucket may now merge with *its* buddy; loop.
  }
}

void ExtendibleHash::TryShrinkDirectory() {
  while (global_depth_ > 0) {
    for (const Bucket& b : buckets_) {
      if (b.local_depth == global_depth_) return;
    }
    std::vector<uint32_t> halved(directory_.size() / 2);
    for (size_t i = 0; i < halved.size(); ++i) {
      POPAN_DCHECK(directory_[2 * i] == directory_[2 * i + 1]);
      halved[i] = directory_[2 * i];
    }
    directory_ = std::move(halved);
    --global_depth_;
  }
}

Status ExtendibleHash::CheckInvariants() const {
  if (directory_.size() != (size_t{1} << global_depth_)) {
    return Status::Internal("directory size != 2^global_depth");
  }
  size_t keys_seen = 0;
  for (size_t bi = 0; bi < buckets_.size(); ++bi) {
    const Bucket& b = buckets_[bi];
    if (b.local_depth > global_depth_) {
      return Status::Internal("local depth exceeds global depth");
    }
    // Every bucket must be pointed to by exactly 2^(global-local)
    // contiguous (aligned) slots.
    size_t expected_slots = size_t{1} << (global_depth_ - b.local_depth);
    size_t actual_slots = 0;
    size_t first_slot = directory_.size();
    for (size_t j = 0; j < directory_.size(); ++j) {
      if (directory_[j] == bi) {
        ++actual_slots;
        first_slot = std::min(first_slot, j);
      }
    }
    if (actual_slots != expected_slots) {
      return Status::Internal("bucket pointer multiplicity mismatch");
    }
    if (actual_slots > 0 && first_slot % expected_slots != 0) {
      return Status::Internal("bucket slot range misaligned");
    }
    // Keys must live in the bucket their pseudokey addresses.
    for (uint64_t key : b.keys) {
      if (directory_[DirIndex(PseudoKey(key))] != bi) {
        return Status::Internal("key stored in the wrong bucket");
      }
    }
    keys_seen += b.keys.size();
  }
  if (keys_seen != size_) {
    return Status::Internal("size mismatch");
  }
  return CheckLiveHistogram();
}

Status ExtendibleHash::CheckLiveHistogram() const {
  std::vector<std::vector<uint64_t>> walked;
  VisitBuckets([&walked](size_t local_depth, size_t occ) {
    if (local_depth >= walked.size()) walked.resize(local_depth + 1);
    if (occ >= walked[local_depth].size()) {
      walked[local_depth].resize(occ + 1, 0);
    }
    ++walked[local_depth][occ];
  });
  size_t depths = std::max(walked.size(), live_hist_.size());
  for (size_t d = 0; d < depths; ++d) {
    size_t occs =
        std::max(d < walked.size() ? walked[d].size() : 0,
                 d < live_hist_.size() ? live_hist_[d].size() : 0);
    for (size_t occ = 0; occ < occs; ++occ) {
      uint64_t want =
          d < walked.size() && occ < walked[d].size() ? walked[d][occ] : 0;
      uint64_t have = d < live_hist_.size() && occ < live_hist_[d].size()
                          ? live_hist_[d][occ]
                          : 0;
      if (want != have) {
        return Status::Internal(
            "live census drift at local depth " + std::to_string(d) +
            " occupancy " + std::to_string(occ) + ": walked " +
            std::to_string(want) + " live " + std::to_string(have));
      }
    }
  }
  return Status::OK();
}

}  // namespace popan::spatial
