#ifndef POPAN_SPATIAL_GRID_FILE_H_
#define POPAN_SPATIAL_GRID_FILE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/status.h"

namespace popan::spatial {

/// Options for the grid file.
struct GridFileOptions {
  /// Bucket capacity: a bucket splits when an insertion would exceed it.
  size_t bucket_capacity = 4;
};

/// The grid file of Nievergelt, Hinterberger & Sevcik (TODS 1984), one of
/// the bucketing methods the paper's introduction groups with quadtrees as
/// "hierarchical" (variable-resolution) structures. Space is cut by two
/// linear scales (one sorted boundary list per axis) into a grid of cells;
/// a directory maps every cell to a bucket, and one bucket may serve a
/// rectangular block of cells (so storage adapts to density while any
/// exact-match lookup costs two scale searches plus one directory access).
///
/// A full bucket splits in two: along an existing scale boundary if its
/// cell block spans more than one cell on some axis, otherwise by adding a
/// midpoint boundary to a scale (which refines a whole row or column of
/// the directory). Deletions remove points but do not merge buckets (the
/// classic paper treats merging as optional; experiments here only grow).
class GridFile {
 public:
  using PointT = geo::Point<2>;
  using BoxT = geo::Box<2>;

  explicit GridFile(const BoxT& domain, const GridFileOptions& options = {});

  /// The covered domain.
  const BoxT& domain() const { return domain_; }

  /// Number of points stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of buckets (the population size).
  size_t BucketCount() const { return buckets_.size(); }

  /// Directory shape: number of cells per axis.
  size_t CellsX() const { return xs_.size() + 1; }
  size_t CellsY() const { return ys_.size() + 1; }

  /// Inserts a point. OutOfRange outside the domain, AlreadyExists for a
  /// duplicate.
  [[nodiscard]] Status Insert(const PointT& p);

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const;

  /// Removes a point; NotFound if absent.
  [[nodiscard]] Status Erase(const PointT& p);

  /// All stored points inside `query` (half-open).
  std::vector<PointT> RangeQuery(const BoxT& query) const;

  /// Cost-counted orthogonal range search: fn(p) for every stored point in
  /// `query` (half-open). Walks exactly the directory cells the query
  /// overlaps (nodes_visited counts them) and scans each distinct bucket
  /// once (leaves_touched). The directory is exact — no block examined can
  /// miss — so pruned_subtrees stays 0 except when the query misses the
  /// domain entirely.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    if (!domain_.Intersects(query)) {
      ++cost->pruned_subtrees;
      return;
    }
    const size_t ix0 = CellX(std::max(query.lo().x(), domain_.lo().x()));
    const size_t iy0 = CellY(std::max(query.lo().y(), domain_.lo().y()));
    std::vector<uint8_t> seen(buckets_.size(), 0);
    for (size_t iy = iy0; iy < CellsY() && YBoundary(iy) < query.hi().y();
         ++iy) {
      for (size_t ix = ix0; ix < CellsX() && XBoundary(ix) < query.hi().x();
           ++ix) {
        ++cost->nodes_visited;
        const uint32_t bi = Dir(ix, iy);
        if (seen[bi]) continue;
        seen[bi] = 1;
        ++cost->leaves_touched;
        for (const PointT& p : buckets_[bi].points) {
          ++cost->points_scanned;
          if (query.Contains(p)) fn(p);
        }
      }
    }
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` (0 = x,
  /// 1 = y) to `value` and calls fn(p) for every stored point with that
  /// exact coordinate. Walks the single row/column of directory cells
  /// whose half-open axis interval contains the value.
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < 2);
    POPAN_DCHECK(cost != nullptr);
    if (value < domain_.lo()[axis] || value >= domain_.hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    const size_t fixed = axis == 0 ? CellX(value) : CellY(value);
    const size_t span = axis == 0 ? CellsY() : CellsX();
    std::vector<uint8_t> seen(buckets_.size(), 0);
    for (size_t i = 0; i < span; ++i) {
      ++cost->nodes_visited;
      const uint32_t bi = axis == 0 ? Dir(fixed, i) : Dir(i, fixed);
      if (seen[bi]) continue;
      seen[bi] = 1;
      ++cost->leaves_touched;
      for (const PointT& p : buckets_[bi].points) {
        ++cost->points_scanned;
        if (p[axis] == value) fn(p);
      }
    }
  }

  /// Cost-counted k-nearest-neighbor search: up to k stored points
  /// ascending by distance to `target`. Ranks buckets by distance to their
  /// (closed) region and scans in that order until the next bucket cannot
  /// improve the k-th best. k >= 1.
  std::vector<PointT> NearestK(const PointT& target, size_t k,
                               QueryCost* cost) const;

  /// Calls fn(occupancy) for every bucket — the census hook (grid-file
  /// buckets have no depth; census callers record depth 0).
  template <typename Fn>
  void VisitBuckets(Fn fn) const {
    for (const Bucket& b : buckets_) fn(b.points.size());
  }

  /// Average points per bucket.
  double AverageOccupancy() const {
    if (buckets_.empty()) return 0.0;
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  /// Verifies directory/bucket invariants.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Bucket {
    // The rectangular block of directory cells this bucket serves:
    // x cells [ix0, ix1) times y cells [iy0, iy1).
    size_t ix0 = 0, ix1 = 1, iy0 = 0, iy1 = 1;
    std::vector<PointT> points;
  };

  size_t CellX(double x) const;
  size_t CellY(double y) const;
  uint32_t& Dir(size_t ix, size_t iy) { return directory_[iy * CellsX() + ix]; }
  uint32_t Dir(size_t ix, size_t iy) const {
    return directory_[iy * CellsX() + ix];
  }

  /// Domain coordinate of x-scale boundary index `i` (0..xs_.size():
  /// index 0 is domain lo, xs_.size() is domain hi — cell ix spans
  /// [XBoundary(ix), XBoundary(ix+1))).
  double XBoundary(size_t i) const;
  double YBoundary(size_t i) const;

  /// Splits bucket `bi`; returns false if no split is geometrically
  /// possible (degenerate cell). Grows the scales/directory as needed.
  bool SplitBucket(uint32_t bi);

  /// Adds a boundary splitting x-cell `ix` at its midpoint; the directory
  /// gains a column and every bucket's x-range is remapped.
  void RefineX(size_t ix);
  void RefineY(size_t iy);

  BoxT domain_;
  GridFileOptions options_;
  std::vector<double> xs_;  // interior x boundaries, ascending
  std::vector<double> ys_;  // interior y boundaries, ascending
  std::vector<uint32_t> directory_;  // CellsX*CellsY bucket ids, row-major
  std::vector<Bucket> buckets_;
  size_t size_ = 0;
  bool split_x_next_ = true;  // alternate split axis for single-cell splits
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_GRID_FILE_H_
