#ifndef POPAN_SPATIAL_GRID_FILE_H_
#define POPAN_SPATIAL_GRID_FILE_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "util/status.h"

namespace popan::spatial {

/// Options for the grid file.
struct GridFileOptions {
  /// Bucket capacity: a bucket splits when an insertion would exceed it.
  size_t bucket_capacity = 4;
};

/// The grid file of Nievergelt, Hinterberger & Sevcik (TODS 1984), one of
/// the bucketing methods the paper's introduction groups with quadtrees as
/// "hierarchical" (variable-resolution) structures. Space is cut by two
/// linear scales (one sorted boundary list per axis) into a grid of cells;
/// a directory maps every cell to a bucket, and one bucket may serve a
/// rectangular block of cells (so storage adapts to density while any
/// exact-match lookup costs two scale searches plus one directory access).
///
/// A full bucket splits in two: along an existing scale boundary if its
/// cell block spans more than one cell on some axis, otherwise by adding a
/// midpoint boundary to a scale (which refines a whole row or column of
/// the directory). Deletions remove points but do not merge buckets (the
/// classic paper treats merging as optional; experiments here only grow).
class GridFile {
 public:
  using PointT = geo::Point<2>;
  using BoxT = geo::Box<2>;

  explicit GridFile(const BoxT& domain, const GridFileOptions& options = {});

  /// The covered domain.
  const BoxT& domain() const { return domain_; }

  /// Number of points stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of buckets (the population size).
  size_t BucketCount() const { return buckets_.size(); }

  /// Directory shape: number of cells per axis.
  size_t CellsX() const { return xs_.size() + 1; }
  size_t CellsY() const { return ys_.size() + 1; }

  /// Inserts a point. OutOfRange outside the domain, AlreadyExists for a
  /// duplicate.
  [[nodiscard]] Status Insert(const PointT& p);

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const;

  /// Removes a point; NotFound if absent.
  [[nodiscard]] Status Erase(const PointT& p);

  /// All stored points inside `query` (half-open).
  std::vector<PointT> RangeQuery(const BoxT& query) const;

  /// Calls fn(occupancy) for every bucket — the census hook (grid-file
  /// buckets have no depth; census callers record depth 0).
  template <typename Fn>
  void VisitBuckets(Fn fn) const {
    for (const Bucket& b : buckets_) fn(b.points.size());
  }

  /// Average points per bucket.
  double AverageOccupancy() const {
    if (buckets_.empty()) return 0.0;
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  /// Verifies directory/bucket invariants.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Bucket {
    // The rectangular block of directory cells this bucket serves:
    // x cells [ix0, ix1) times y cells [iy0, iy1).
    size_t ix0 = 0, ix1 = 1, iy0 = 0, iy1 = 1;
    std::vector<PointT> points;
  };

  size_t CellX(double x) const;
  size_t CellY(double y) const;
  uint32_t& Dir(size_t ix, size_t iy) { return directory_[iy * CellsX() + ix]; }
  uint32_t Dir(size_t ix, size_t iy) const {
    return directory_[iy * CellsX() + ix];
  }

  /// Domain coordinate of x-scale boundary index `i` (0..xs_.size():
  /// index 0 is domain lo, xs_.size() is domain hi — cell ix spans
  /// [XBoundary(ix), XBoundary(ix+1))).
  double XBoundary(size_t i) const;
  double YBoundary(size_t i) const;

  /// Splits bucket `bi`; returns false if no split is geometrically
  /// possible (degenerate cell). Grows the scales/directory as needed.
  bool SplitBucket(uint32_t bi);

  /// Adds a boundary splitting x-cell `ix` at its midpoint; the directory
  /// gains a column and every bucket's x-range is remapped.
  void RefineX(size_t ix);
  void RefineY(size_t iy);

  BoxT domain_;
  GridFileOptions options_;
  std::vector<double> xs_;  // interior x boundaries, ascending
  std::vector<double> ys_;  // interior y boundaries, ascending
  std::vector<uint32_t> directory_;  // CellsX*CellsY bucket ids, row-major
  std::vector<Bucket> buckets_;
  size_t size_ = 0;
  bool split_x_next_ = true;  // alternate split axis for single-cell splits
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_GRID_FILE_H_
