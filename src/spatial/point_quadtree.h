#ifndef POPAN_SPATIAL_POINT_QUADTREE_H_
#define POPAN_SPATIAL_POINT_QUADTREE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/node_arena.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/status.h"
#include "util/statusor.h"

namespace popan::spatial {

/// The classical point quadtree of Finkel & Bentley (1974): every node
/// stores one data point, and the four subtrees hold the points of the four
/// quadrants *of that point* — so the decomposition is irregular and
/// depends on insertion order. The paper contrasts this data-dependent
/// scheme (§II) with the regular decomposition of the PR quadtree; this
/// implementation exists so experiments can compare the two families'
/// shape statistics under identical workloads.
///
/// Query cost accounting: a point quadtree has no leaves in the PR sense —
/// every node holds exactly one point — so leaves_touched stays 0 and
/// points_scanned counts pivot comparisons (== nodes_visited). The
/// partial-match traversal (one child pair per node) is the structure the
/// classical N^((sqrt(17)-3)/2) cost law is stated for, which
/// bench_partial_match regenerates.
class PointQuadtree {
 public:
  using PointT = geo::Point<2>;
  using BoxT = geo::Box<2>;

  PointQuadtree() = default;

  /// Number of points (== number of nodes; each node holds exactly one).
  size_t size() const { return arena_.LiveCount(); }
  bool empty() const { return size() == 0; }

  /// Inserts a point. Returns AlreadyExists for an exact duplicate.
  [[nodiscard]] Status Insert(const PointT& p);

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const;

  /// All stored points with x in [query.lo.x, query.hi.x) and likewise for
  /// y (half-open, matching the PR tree's convention).
  std::vector<PointT> RangeQuery(const BoxT& query) const;

  /// Cost-counted orthogonal range search: fn(point) for every stored
  /// point inside `query` (half-open). Iterative with an explicit stack;
  /// concurrent calls on a shared const tree are safe. An existing child
  /// on a side of the pivot the query does not reach counts in
  /// pruned_subtrees.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    std::vector<NodeIndex> stack;
    stack.reserve(kWalkStackHint);
    if (root_ != kNullNode) stack.push_back(root_);
    while (!stack.empty()) {
      NodeIndex idx = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(idx);
      const PointT& p = node.point;
      ++cost->points_scanned;
      if (query.Contains(p)) fn(p);
      // A child quadrant q of pivot p can hold query points only if the
      // query extends to that side of p on each axis: the left/low side
      // (bit clear) is reachable iff lo < p, the right/high side (bit
      // set) iff hi > p, under the half-open [lo, hi) rule.
      bool lo_x = query.lo().x() < p.x();
      bool hi_x = query.hi().x() > p.x();
      bool lo_y = query.lo().y() < p.y();
      bool hi_y = query.hi().y() > p.y();
      for (size_t q = 4; q-- > 0;) {
        if (node.children[q] == kNullNode) continue;
        bool x_ok = (q & 1) ? hi_x : lo_x;
        bool y_ok = (q & 2) ? hi_y : lo_y;
        if (x_ok && y_ok) {
          stack.push_back(node.children[q]);
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` (0 = x,
  /// 1 = y) to `value` and calls fn(point) for every stored point with
  /// point[axis] == value. Each node forwards the walk into exactly one
  /// child pair (the side of the pivot that can hold the fixed value,
  /// with value == pivot going to the >= side), which is the recursion
  /// whose expected node count grows as N^((sqrt(17)-3)/2).
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < 2);
    POPAN_DCHECK(cost != nullptr);
    std::vector<NodeIndex> stack;
    stack.reserve(kWalkStackHint);
    if (root_ != kNullNode) stack.push_back(root_);
    // Children with this bit set lie on the >= side of the pivot along
    // the fixed axis.
    const size_t bit = axis == 0 ? 1 : 2;
    while (!stack.empty()) {
      NodeIndex idx = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(idx);
      ++cost->points_scanned;
      if (node.point[axis] == value) fn(node.point);
      // Points with coordinate == pivot live on the >= side, so the two
      // children to follow are the >= pair iff value >= pivot.
      const bool high_side = value >= node.point[axis];
      for (size_t q = 4; q-- > 0;) {
        if (node.children[q] == kNullNode) continue;
        if (((q & bit) != 0) == high_side) {
          stack.push_back(node.children[q]);
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// The stored point nearest to `target`; NotFound when empty.
  [[nodiscard]] StatusOr<PointT> Nearest(const PointT& target) const;

  /// Cost-counted k-nearest-neighbor search: the k stored points nearest
  /// to `target`, ascending by distance (fewer if size() < k). k >= 1.
  std::vector<PointT> NearestK(const PointT& target, size_t k,
                               QueryCost* cost) const;

  /// Maximum node depth (root = 0); 0 for an empty tree. The comparison
  /// statistic: point quadtrees built from random insertion orders have
  /// expected depth O(log n), but adversarial orders degenerate to O(n).
  size_t Height() const;

  /// Total path length (sum of node depths); / size() = average node depth.
  size_t TotalPathLength() const;

  /// Calls fn(point, depth) for every node, preorder.
  template <typename Fn>
  void VisitNodes(Fn fn) const {
    VisitRec(root_, 0, fn);
  }

  /// Removes all points.
  void Clear() {
    arena_.Clear();
    root_ = kNullNode;
  }

 private:
  struct Node {
    PointT point;
    // Quadrant codes match Box::QuadrantOf: bit 0 = x >= split, bit 1 =
    // y >= split, where the split point is `point`.
    std::array<NodeIndex, 4> children = {kNullNode, kNullNode, kNullNode,
                                         kNullNode};
  };

  static constexpr size_t kWalkStackHint = 64;

  static size_t QuadrantOf(const PointT& pivot, const PointT& p) {
    size_t q = 0;
    if (p.x() >= pivot.x()) q |= 1;
    if (p.y() >= pivot.y()) q |= 2;
    return q;
  }

  template <typename Fn>
  void VisitRec(NodeIndex idx, size_t depth, Fn& fn) const {
    if (idx == kNullNode) return;
    const Node& node = arena_.Get(idx);
    fn(node.point, depth);
    for (NodeIndex child : node.children) VisitRec(child, depth + 1, fn);
  }

  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_POINT_QUADTREE_H_
