#ifndef POPAN_SPATIAL_POINT_QUADTREE_H_
#define POPAN_SPATIAL_POINT_QUADTREE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/node_arena.h"
#include "util/status.h"
#include "util/statusor.h"

namespace popan::spatial {

/// The classical point quadtree of Finkel & Bentley (1974): every node
/// stores one data point, and the four subtrees hold the points of the four
/// quadrants *of that point* — so the decomposition is irregular and
/// depends on insertion order. The paper contrasts this data-dependent
/// scheme (§II) with the regular decomposition of the PR quadtree; this
/// implementation exists so experiments can compare the two families'
/// shape statistics under identical workloads.
class PointQuadtree {
 public:
  using PointT = geo::Point<2>;
  using BoxT = geo::Box<2>;

  PointQuadtree() = default;

  /// Number of points (== number of nodes; each node holds exactly one).
  size_t size() const { return arena_.LiveCount(); }
  bool empty() const { return size() == 0; }

  /// Inserts a point. Returns AlreadyExists for an exact duplicate.
  [[nodiscard]] Status Insert(const PointT& p);

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const;

  /// All stored points with x in [query.lo.x, query.hi.x) and likewise for
  /// y (half-open, matching the PR tree's convention).
  std::vector<PointT> RangeQuery(const BoxT& query) const;

  /// The stored point nearest to `target`; NotFound when empty.
  [[nodiscard]] StatusOr<PointT> Nearest(const PointT& target) const;

  /// Maximum node depth (root = 0); 0 for an empty tree. The comparison
  /// statistic: point quadtrees built from random insertion orders have
  /// expected depth O(log n), but adversarial orders degenerate to O(n).
  size_t Height() const;

  /// Total path length (sum of node depths); / size() = average node depth.
  size_t TotalPathLength() const;

  /// Calls fn(point, depth) for every node, preorder.
  template <typename Fn>
  void VisitNodes(Fn fn) const {
    VisitRec(root_, 0, fn);
  }

  /// Removes all points.
  void Clear() {
    arena_.Clear();
    root_ = kNullNode;
  }

 private:
  struct Node {
    PointT point;
    // Quadrant codes match Box::QuadrantOf: bit 0 = x >= split, bit 1 =
    // y >= split, where the split point is `point`.
    std::array<NodeIndex, 4> children = {kNullNode, kNullNode, kNullNode,
                                         kNullNode};
  };

  static size_t QuadrantOf(const PointT& pivot, const PointT& p) {
    size_t q = 0;
    if (p.x() >= pivot.x()) q |= 1;
    if (p.y() >= pivot.y()) q |= 2;
    return q;
  }

  void RangeRec(NodeIndex idx, const BoxT& query,
                std::vector<PointT>* out) const;
  void NearestRec(NodeIndex idx, const BoxT& cell, const PointT& target,
                  PointT* best, double* best_d2) const;

  template <typename Fn>
  void VisitRec(NodeIndex idx, size_t depth, Fn& fn) const {
    if (idx == kNullNode) return;
    const Node& node = arena_.Get(idx);
    fn(node.point, depth);
    for (NodeIndex child : node.children) VisitRec(child, depth + 1, fn);
  }

  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_POINT_QUADTREE_H_
