#ifndef POPAN_SPATIAL_CENSUS_H_
#define POPAN_SPATIAL_CENSUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "numerics/vector.h"

namespace popan::spatial {

/// A population census of a bucketing structure: how many leaves (buckets)
/// hold 0, 1, 2, … items, overall and per depth. This is the empirical
/// counterpart of the paper's expected distribution vector — the bridge
/// between the data structures in this directory and the analytic model in
/// src/core.
class Census {
 public:
  Census() = default;

  /// Records one leaf of the given occupancy at the given depth.
  void AddLeaf(size_t occupancy, size_t depth);

  /// Records `count` leaves of the given occupancy at the given depth in
  /// one step — the bulk form incremental (live) censuses are built from.
  void AddLeaves(size_t occupancy, size_t depth, uint64_t count);

  /// Merges another census into this one (used to pool trials).
  void Merge(const Census& other);

  /// Number of leaves of occupancy `i` (0 if never seen).
  uint64_t CountAt(size_t occupancy) const;

  /// Number of leaves of occupancy `i` at depth `depth`.
  uint64_t CountAt(size_t occupancy, size_t depth) const;

  /// Total leaves.
  uint64_t LeafCount() const { return leaf_count_; }

  /// Total items (sum of occupancy over leaves).
  uint64_t ItemCount() const { return item_count_; }

  /// Largest occupancy observed (0 for an empty census).
  size_t MaxOccupancy() const;

  /// Largest depth observed (0 for an empty census).
  size_t MaxDepth() const;

  /// Depths at which at least one leaf was seen, ascending.
  std::vector<size_t> DepthsPresent() const;

  /// Number of leaves at depth `depth` (any occupancy).
  uint64_t LeavesAtDepth(size_t depth) const;

  /// Number of items at depth `depth`.
  uint64_t ItemsAtDepth(size_t depth) const;

  /// Average occupancy of the leaves at depth `depth`. Returns 0 when no
  /// leaves exist there.
  double AverageOccupancyAtDepth(size_t depth) const;

  /// The empirical state vector d = (p_0, …, p_k) with k >= `min_size`-1
  /// components: p_i is the proportion of leaves with occupancy i. Returns
  /// an all-zero vector of `min_size` components for an empty census.
  num::Vector Proportions(size_t min_size = 0) const;

  /// Mean items per leaf — the paper's "average node occupancy".
  double AverageOccupancy() const;

  /// AverageOccupancy() / capacity — storage utilization in [0, 1] when no
  /// leaf exceeds `capacity`.
  double StorageUtilization(size_t capacity) const;

  /// Multi-line human-readable dump.
  std::string ToString() const;

  /// Exact equality of the recorded populations: same leaf/item totals and
  /// the same count for every (occupancy, depth) cell. Trailing all-zero
  /// rows/columns are ignored, so censuses built leaf-by-leaf and censuses
  /// built from a live histogram compare equal iff they describe the same
  /// tree. This is the check behind the LiveCensus == TakeCensus contract.
  friend bool operator==(const Census& a, const Census& b);
  friend bool operator!=(const Census& a, const Census& b) {
    return !(a == b);
  }

 private:
  // count_by_occupancy_[i] = number of leaves holding exactly i items.
  std::vector<uint64_t> count_by_occupancy_;
  // by_depth_[d][i] = number of leaves at depth d holding i items.
  std::vector<std::vector<uint64_t>> by_depth_;
  uint64_t leaf_count_ = 0;
  uint64_t item_count_ = 0;
};

/// Takes the census of any structure exposing
///   VisitLeaves(fn(box, depth, occupancy))   — trees, or
///   VisitBuckets(fn(local_depth, occupancy)) — hash structures.
/// Provided as overload sets below for the concrete types; generic helper
/// for tree-shaped structures:
template <typename Tree>
Census TakeCensus(const Tree& tree) {
  Census census;
  tree.VisitLeaves([&census](const auto& /*box*/, size_t depth,
                             size_t occupancy) {
    census.AddLeaf(occupancy, depth);
  });
  return census;
}

/// Takes the census of a bucket structure exposing
///   VisitBuckets(fn(local_depth, occupancy))
/// (extendible hashing, EXCELL). The bucket's local depth plays the role
/// of the tree depth.
template <typename Table>
Census TakeBucketCensus(const Table& table) {
  Census census;
  table.VisitBuckets([&census](size_t local_depth, size_t occupancy) {
    census.AddLeaf(occupancy, local_depth);
  });
  return census;
}

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_CENSUS_H_
