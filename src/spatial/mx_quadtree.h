#ifndef POPAN_SPATIAL_MX_QUADTREE_H_
#define POPAN_SPATIAL_MX_QUADTREE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "spatial/batch_stats.h"
#include "spatial/node_arena.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/status.h"

namespace popan::spatial {

/// The MX ("matrix") quadtree — the third member of §II's point-quadtree
/// family (Samet's survey [Same84a]): a regular decomposition to a FIXED
/// resolution, where a data point occupies a 1x1 cell of the 2^k x 2^k
/// grid and only the occupied subtrees are materialized. Where the PR
/// quadtree's depth adapts to point spacing, the MX quadtree's is bounded
/// by construction (depth k for every stored point), at the cost of
/// quantized coordinates — the raster-like tradeoff its name comes from.
///
/// The API is integer-cell based: a point is a cell (x, y) with
/// 0 <= x, y < 2^k.
class MxQuadtree {
 public:
  /// A tree over the 2^resolution_bits square grid; resolution_bits in
  /// [1, 16] (up to 65536 x 65536 cells).
  explicit MxQuadtree(size_t resolution_bits);

  /// Grid side length, 2^resolution_bits.
  size_t side() const { return size_t{1} << bits_; }

  /// Number of stored points.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Materialized nodes (internal + leaf); the MX storage cost.
  size_t NodeCount() const { return arena_.LiveCount(); }

  /// Inserts cell (x, y). OutOfRange outside the grid; AlreadyExists for
  /// an occupied cell.
  [[nodiscard]] Status Insert(uint32_t x, uint32_t y);

  /// Bulk insert: interleaves the cell coordinates into Morton codes with
  /// the batched codec, sorts, and inserts in Z order reusing the shared
  /// path prefix between consecutive codes — each insert then descends
  /// only the levels below the divergence point instead of all
  /// resolution_bits of them. The arena is pre-sized from the sorted
  /// codes' prefix structure so the slab does not grow mid-batch. The
  /// resulting tree is identical to one built by per-cell Insert calls
  /// (an MX tree is a function of the cell set alone).
  BatchInsertStats InsertBatch(
      std::span<const std::pair<uint32_t, uint32_t>> cells);

  /// Slab reallocations of the node arena to date (see
  /// NodeArena::GrowthCount); flat across a well-reserved InsertBatch.
  size_t ArenaGrowthCount() const { return arena_.GrowthCount(); }

  /// True iff cell (x, y) is occupied.
  bool Contains(uint32_t x, uint32_t y) const;

  /// Removes a point; NotFound when the cell is empty. Emptied subtrees
  /// are pruned, so the node count shrinks back.
  [[nodiscard]] Status Erase(uint32_t x, uint32_t y);

  /// All occupied cells with x in [x0, x1) and y in [y0, y1), in Z order.
  std::vector<std::pair<uint32_t, uint32_t>> RangeQuery(uint32_t x0,
                                                        uint32_t y0,
                                                        uint32_t x1,
                                                        uint32_t y1) const;

  /// Cost-counted orthogonal range search: fn(x, y) for every occupied
  /// cell with x in [x0, x1) and y in [y0, y1), in Z order. Iterative
  /// (explicit stack); safe to call concurrently on a shared const tree.
  /// An occupied cell is both a leaf touched and a point scanned; a
  /// materialized child block outside the query counts in
  /// pruned_subtrees.
  template <typename Fn>
  void RangeQueryVisit(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                       QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    if (root_ == kNullNode) return;
    const uint32_t root_block = static_cast<uint32_t>(side());
    if (x1 == 0 || y1 == 0 || x0 >= root_block || y0 >= root_block) {
      ++cost->pruned_subtrees;
      return;
    }
    // Clamped copies for the vector kernel: cells never reach root_block,
    // so clamping cannot change any containment answer, and it keeps the
    // bounds inside the range MaskCellsInRect's compares are exact for.
    const uint32_t cx1 = x1 < root_block ? x1 : root_block;
    const uint32_t cy1 = y1 < root_block ? y1 : root_block;
    struct Frame {
      NodeIndex idx;
      uint32_t bx, by, block;
    };
    std::vector<Frame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(Frame{root_, 0, 0, root_block});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      if (f.block == 1) {
        ++cost->leaves_touched;
        ++cost->points_scanned;
        fn(f.bx, f.by);
        continue;
      }
      const Node& node = arena_.Get(f.idx);
      if (f.block == 2) {
        // The four children are cells: evaluate them inline with one
        // SIMD in-rect test instead of four push/pop round trips.
        // Ascending q matches the LIFO pop order of the generic branch
        // (children are pushed q = 3..0), and the per-cell counter
        // increments are identical, so results, order, and QueryCost all
        // stay bitwise equal to the frame-at-a-time walk.
        const uint32_t qx[4] = {f.bx, f.bx + 1, f.bx, f.bx + 1};
        const uint32_t qy[4] = {f.by, f.by, f.by + 1, f.by + 1};
        const uint32_t in = simd::MaskCellsInRect(qx, qy, 4, x0, y0, cx1, cy1);
        for (size_t q = 0; q < 4; ++q) {
          if (node.children[q] == kNullNode) continue;
          if ((in >> q) & 1u) {
            ++cost->nodes_visited;
            ++cost->leaves_touched;
            ++cost->points_scanned;
            fn(qx[q], qy[q]);
          } else {
            ++cost->pruned_subtrees;
          }
        }
        continue;
      }
      uint32_t half = f.block / 2;
      for (size_t q = 4; q-- > 0;) {
        if (node.children[q] == kNullNode) continue;
        uint32_t cx = f.bx + ((q & 1) ? half : 0);
        uint32_t cy = f.by + ((q & 2) ? half : 0);
        if (cx >= x1 || cy >= y1 || cx + half <= x0 || cy + half <= y0) {
          ++cost->pruned_subtrees;
          continue;
        }
        stack.push_back(Frame{node.children[q], cx, cy, half});
      }
    }
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` (0 = x,
  /// 1 = y) to cell coordinate `value` and calls fn(x, y) for every
  /// occupied cell on that grid line — the degenerate range
  /// [value, value + 1) on the fixed axis.
  template <typename Fn>
  void PartialMatchVisit(size_t axis, uint32_t value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < 2);
    const uint32_t s = static_cast<uint32_t>(side());
    if (axis == 0) {
      RangeQueryVisit(value, 0, value + 1, s, cost, fn);
    } else {
      RangeQueryVisit(0, value, s, value + 1, cost, fn);
    }
  }

  /// Cost-counted k-nearest-neighbor search over occupied cells, with the
  /// target and distances expressed in cell (lattice) units: the cell
  /// (x, y) is the point (x, y). Returns up to k cells ascending by
  /// distance to (tx, ty), ties broken by (x, y). k >= 1.
  std::vector<std::pair<uint32_t, uint32_t>> NearestK(double tx, double ty,
                                                      size_t k,
                                                      QueryCost* cost) const;

  /// Depth of every stored point (they all live at resolution_bits — the
  /// defining MX property; exposed for tests).
  size_t PointDepth() const { return bits_; }

  /// Calls fn(x, y) for every occupied cell, Z order.
  template <typename Fn>
  void VisitPoints(Fn fn) const {
    if (root_ != kNullNode) VisitRec(root_, 0, 0, side(), fn);
  }

  /// Verifies: every materialized internal node has >= 1 child, leaves
  /// only at full depth, size accounting.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Node {
    std::array<NodeIndex, 4> children = {kNullNode, kNullNode, kNullNode,
                                         kNullNode};
  };

  static size_t QuadrantOf(uint32_t x, uint32_t y, size_t half) {
    return (x >= half ? 1u : 0u) | (y >= half ? 2u : 0u);
  }

  /// Returns true when the subtree became empty and was freed.
  bool EraseRec(NodeIndex idx, uint32_t x, uint32_t y, size_t block);

  static constexpr size_t kWalkStackHint = 64;

  template <typename Fn>
  void VisitRec(NodeIndex idx, uint32_t bx, uint32_t by, size_t block,
                Fn& fn) const {
    if (block == 1) {
      fn(bx, by);
      return;
    }
    const Node& node = arena_.Get(idx);
    size_t half = block / 2;
    for (size_t q = 0; q < 4; ++q) {
      if (node.children[q] == kNullNode) continue;
      VisitRec(node.children[q], bx + ((q & 1) ? half : 0),
               by + ((q & 2) ? half : 0), half, fn);
    }
  }

  [[nodiscard]]
  Status CheckRec(NodeIndex idx, size_t block, size_t* points_seen) const;

  size_t bits_;
  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
  size_t size_ = 0;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_MX_QUADTREE_H_
