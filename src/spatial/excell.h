#ifndef POPAN_SPATIAL_EXCELL_H_
#define POPAN_SPATIAL_EXCELL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/status.h"

namespace popan::spatial {

/// Options for the EXCELL directory.
struct ExcellOptions {
  /// Bucket capacity; a bucket splits when an insertion would exceed it.
  size_t bucket_capacity = 4;

  /// Upper bound on the directory depth (directory size 2^depth). Depth
  /// increments alternate between halving the y and x extents.
  size_t max_global_depth = 40;
};

/// EXCELL (Tamminen 1981), the "extendible cell" method the paper's
/// introduction groups with quadtrees and grid files: extendible hashing
/// whose pseudokey is the bit-interleaving of the point's coordinates, so
/// the directory is a regular grid over the data space that doubles by
/// halving cells along alternating axes, and every directory cell points
/// to a data bucket that may be shared by an aligned dyadic block of
/// cells. Exact-match search is one directory access; the regular
/// decomposition makes the structure another instance of the paper's
/// population systems (fanout-2 splits).
class Excell {
 public:
  using PointT = geo::Point2;
  using BoxT = geo::Box2;

  explicit Excell(const BoxT& domain, const ExcellOptions& options = {});

  const BoxT& domain() const { return domain_; }

  /// Number of stored points.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of buckets (the population size).
  size_t BucketCount() const { return buckets_.size(); }

  /// Directory depth (number of coordinate bits consumed).
  size_t GlobalDepth() const { return global_depth_; }

  /// Directory entries, 2^GlobalDepth().
  size_t DirectorySize() const { return directory_.size(); }

  /// Inserts a point. OutOfRange outside the domain; AlreadyExists for a
  /// duplicate; ResourceExhausted when separating the points would need a
  /// directory deeper than max_global_depth.
  [[nodiscard]] Status Insert(const PointT& p);

  /// True iff an equal point is stored (one directory probe).
  bool Contains(const PointT& p) const;

  /// Removes a point; NotFound if absent. Buddy buckets whose combined
  /// contents fit are merged and the directory shrinks when possible.
  [[nodiscard]] Status Erase(const PointT& p);

  /// All stored points inside `query` (half-open).
  std::vector<PointT> RangeQuery(const BoxT& query) const;

  /// Calls fn(bucket_index, prefix_bits, local_depth) for every bucket,
  /// in bucket-index order. The prefix identifies the bucket's aligned
  /// dyadic block (pass it to BlockOfPrefix). One directory pass recovers
  /// all prefixes — O(directory + buckets), not O(buckets x directory).
  template <typename Fn>
  void VisitBucketsWithPrefix(Fn fn) const {
    // Walk the directory backwards so each bucket ends up with its FIRST
    // (lowest) slot, whose index right-shifted by the unused depth bits is
    // the bucket's prefix.
    std::vector<size_t> first(buckets_.size(), 0);
    for (size_t j = directory_.size(); j-- > 0;) first[directory_[j]] = j;
    for (size_t bi = 0; bi < buckets_.size(); ++bi) {
      const size_t local_depth = buckets_[bi].local_depth;
      const uint64_t prefix =
          static_cast<uint64_t>(first[bi]) >> (global_depth_ - local_depth);
      fn(bi, prefix, local_depth);
    }
  }

  /// Cost-counted orthogonal range search: fn(p) for every stored point in
  /// `query` (half-open). Flat structure: every bucket's dyadic block is
  /// tested; intersecting buckets count as visited and scanned, rejected
  /// ones as pruned.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    VisitBucketsWithPrefix(
        [this, &query, cost, &fn](size_t bi, uint64_t prefix, size_t depth) {
          if (!BlockOfPrefix(prefix, depth).Intersects(query)) {
            ++cost->pruned_subtrees;
            return;
          }
          ++cost->nodes_visited;
          ++cost->leaves_touched;
          for (const PointT& p : buckets_[bi].points) {
            ++cost->points_scanned;
            if (query.Contains(p)) fn(p);
          }
        });
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` (0 = x,
  /// 1 = y) to `value` and calls fn(p) for every stored point with that
  /// exact coordinate. Only buckets whose block's half-open axis interval
  /// contains the value are scanned.
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < 2);
    POPAN_DCHECK(cost != nullptr);
    if (value < domain_.lo()[axis] || value >= domain_.hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    VisitBucketsWithPrefix(
        [this, axis, value, cost, &fn](size_t bi, uint64_t prefix,
                                       size_t depth) {
          const BoxT block = BlockOfPrefix(prefix, depth);
          if (!(block.lo()[axis] <= value && value < block.hi()[axis])) {
            ++cost->pruned_subtrees;
            return;
          }
          ++cost->nodes_visited;
          ++cost->leaves_touched;
          for (const PointT& p : buckets_[bi].points) {
            ++cost->points_scanned;
            if (p[axis] == value) fn(p);
          }
        });
  }

  /// Cost-counted k-nearest-neighbor search: up to k stored points
  /// ascending by distance to `target`. Ranks buckets by distance to their
  /// dyadic block and scans in that order until the next block cannot
  /// improve the k-th best. k >= 1.
  std::vector<PointT> NearestK(const PointT& target, size_t k,
                               QueryCost* cost) const;

  /// Census hook: fn(local_depth, occupancy) per bucket.
  template <typename Fn>
  void VisitBuckets(Fn fn) const {
    for (const Bucket& b : buckets_) fn(b.local_depth, b.points.size());
  }

  /// Average points per bucket.
  double AverageOccupancy() const {
    if (buckets_.empty()) return 0.0;
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  /// The dyadic block of the data space a bucket covers, given its first
  /// directory slot and local depth (exposed for tests/benches).
  BoxT BlockOfPrefix(uint64_t prefix_bits, size_t depth_bits) const;

  /// Verifies directory/bucket invariants (pointer multiplicity and
  /// alignment, geometric placement of every point, size accounting).
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Bucket {
    size_t local_depth = 0;
    std::vector<PointT> points;
  };

  /// The interleaved-coordinate pseudokey: bits y0 x0 y1 x1 … from the
  /// most significant end, where y0 is the top half-plane bit.
  uint64_t PseudoKey(const PointT& p) const;

  size_t DirIndex(uint64_t pseudo) const;
  bool SplitBucket(size_t dir_idx);
  void DoubleDirectory();
  void TryMerge(uint64_t pseudo);
  void TryShrinkDirectory();

  BoxT domain_;
  ExcellOptions options_;
  size_t global_depth_ = 0;
  std::vector<uint32_t> directory_;
  std::vector<Bucket> buckets_;
  size_t size_ = 0;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_EXCELL_H_
