#ifndef POPAN_SPATIAL_KNN_HEAP_H_
#define POPAN_SPATIAL_KNN_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace popan::spatial {

/// Canonical tie-break for domain points: lexicographic by coordinates —
/// the same (x, y) order SortCanonical gives range and partial-match
/// results.
struct PointTieLess {
  template <typename PointT>
  bool operator()(const PointT& a, const PointT& b) const {
    for (size_t i = 0; i < PointT::kDimension; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
  }
};

/// The canonical k-nearest accumulator shared by every backend's
/// NearestK. Candidates are totally ordered by the lexicographic key
/// (distance², tie-break), where the tie-break is the backend's canonical
/// item order — (x, y) for domain points, (ix, iy) for MX lattice cells,
/// the id for PMR segments. Equal-distance ties therefore resolve
/// identically no matter what order a backend discovers candidates in,
/// which is what makes k-NN results backend-independent (and the query
/// server's responses byte-stable across backends).
///
/// Pruning contract: a block whose squared distance to the target is d
/// may be skipped iff ShouldPrune(d) — *strictly* greater than the
/// current k-th worst distance. Equality must descend: the block can
/// still hold an equal-distance candidate that wins its tie under the
/// canonical order.
template <typename Item, typename TieLess = std::less<Item>>
class KnnHeap {
 public:
  explicit KnnHeap(size_t k, TieLess tie = TieLess())
      : k_(k), tie_(tie) {
    heap_.reserve(k);
  }

  /// The current k-th worst squared distance; +infinity until k
  /// candidates are held. Exposed for cost accounting and diagnostics —
  /// pruning must go through ShouldPrune, which is strict.
  double WorstDistance2() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().d2;
  }

  /// True iff a block at squared distance `d2` cannot contain a winning
  /// candidate.
  bool ShouldPrune(double d2) const {
    return heap_.size() == k_ && d2 > heap_.front().d2;
  }

  /// Offers a candidate; keeps it iff the heap is not yet full or it
  /// beats the current worst under the canonical (distance², tie) key.
  void Offer(double d2, const Item& item) {
    EntryLess less{tie_};
    if (heap_.size() < k_) {
      heap_.push_back(Entry{d2, item});
      std::push_heap(heap_.begin(), heap_.end(), less);
      return;
    }
    const Entry& worst = heap_.front();
    if (d2 > worst.d2 ||
        (d2 == worst.d2 && !tie_(item, worst.item))) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), less);
    heap_.back() = Entry{d2, item};
    std::push_heap(heap_.begin(), heap_.end(), less);
  }

  size_t size() const { return heap_.size(); }

  /// The accumulated items, ascending by the canonical key.
  std::vector<Item> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), EntryLess{tie_});
    std::vector<Item> out;
    out.reserve(heap_.size());
    for (const Entry& e : heap_) out.push_back(e.item);
    return out;
  }

 private:
  struct Entry {
    double d2;
    Item item;
  };
  // Max-heap order: the front is the largest canonical key — the worst
  // held candidate, which is both the eviction victim and the bound the
  // pruning radius derives from.
  struct EntryLess {
    TieLess tie;
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.d2 != b.d2) return a.d2 < b.d2;
      return tie(a.item, b.item);
    }
  };

  size_t k_;
  TieLess tie_;
  std::vector<Entry> heap_;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_KNN_HEAP_H_
