#include "spatial/point_quadtree.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "spatial/knn_heap.h"

namespace popan::spatial {

Status PointQuadtree::Insert(const PointT& p) {
  if (root_ == kNullNode) {
    root_ = arena_.Allocate();
    arena_.Get(root_).point = p;
    return Status::OK();
  }
  NodeIndex idx = root_;
  for (;;) {
    Node& node = arena_.Get(idx);
    if (node.point == p) {
      return Status::AlreadyExists("duplicate point");
    }
    size_t q = QuadrantOf(node.point, p);
    if (node.children[q] == kNullNode) {
      NodeIndex child = arena_.Allocate();
      arena_.Get(child).point = p;
      // `node` may be dangling after Allocate; re-fetch.
      arena_.Get(idx).children[q] = child;
      return Status::OK();
    }
    idx = node.children[q];
  }
}

bool PointQuadtree::Contains(const PointT& p) const {
  NodeIndex idx = root_;
  while (idx != kNullNode) {
    const Node& node = arena_.Get(idx);
    if (node.point == p) return true;
    idx = node.children[QuadrantOf(node.point, p)];
  }
  return false;
}

std::vector<PointQuadtree::PointT> PointQuadtree::RangeQuery(
    const BoxT& query) const {
  std::vector<PointT> out;
  QueryCost cost;
  RangeQueryVisit(query, &cost, [&out](const PointT& p) {
    out.push_back(p);
  });
  return out;
}

StatusOr<PointQuadtree::PointT> PointQuadtree::Nearest(
    const PointT& target) const {
  if (root_ == kNullNode) return Status::NotFound("tree is empty");
  QueryCost cost;
  std::vector<PointT> best = NearestK(target, 1, &cost);
  POPAN_CHECK(!best.empty());
  return best[0];
}

std::vector<PointQuadtree::PointT> PointQuadtree::NearestK(
    const PointT& target, size_t k, QueryCost* cost) const {
  POPAN_CHECK(k >= 1);
  POPAN_DCHECK(cost != nullptr);
  std::vector<PointT> out;
  if (root_ == kNullNode) return out;
  // Canonical (distance², x, y) accumulator (knn_heap.h); ties resolve
  // identically across backends and traversal orders.
  KnnHeap<PointT, PointTieLess> heap(k);
  // Iterative best-first descent. A node's cell is the quadrant of its
  // parent's cell cut at the parent's pivot; the root cell is the whole
  // plane. The cell distance² is computed at push time and re-checked at
  // pop time, because the radius may have shrunk in between.
  struct Frame {
    NodeIndex idx;
    BoxT cell;
    double d2;
  };
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Frame> stack;
  stack.reserve(kWalkStackHint);
  stack.push_back(Frame{root_, BoxT(PointT(-inf, -inf), PointT(inf, inf)),
                        0.0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (heap.ShouldPrune(f.d2)) {
      ++cost->pruned_subtrees;
      continue;
    }
    ++cost->nodes_visited;
    const Node& node = arena_.Get(f.idx);
    ++cost->points_scanned;
    heap.Offer(node.point.DistanceSquared(target), node.point);
    // Children cells are the quadrants of `cell` cut at the pivot.
    const PointT& p = node.point;
    std::array<std::pair<double, size_t>, 4> order;
    std::array<BoxT, 4> cells;
    for (size_t q = 0; q < 4; ++q) {
      PointT lo = f.cell.lo();
      PointT hi = f.cell.hi();
      if (q & 1) {
        lo[0] = p.x();
      } else {
        hi[0] = p.x();
      }
      if (q & 2) {
        lo[1] = p.y();
      } else {
        hi[1] = p.y();
      }
      cells[q] = BoxT(lo, hi);
      order[q] = {cells[q].DistanceSquaredTo(target), q};
    }
    std::sort(order.begin(), order.end());
    // Far-to-near onto the LIFO stack; the nearest child pops first.
    for (size_t i = 4; i-- > 0;) {
      const auto& [dist2, q] = order[i];
      if (node.children[q] == kNullNode) continue;
      if (heap.ShouldPrune(dist2)) {
        ++cost->pruned_subtrees;
        continue;
      }
      stack.push_back(Frame{node.children[q], cells[q], dist2});
    }
  }
  out = heap.TakeSorted();
  return out;
}

size_t PointQuadtree::Height() const {
  size_t best = 0;
  VisitNodes([&best](const PointT&, size_t depth) {
    best = std::max(best, depth);
  });
  return best;
}

size_t PointQuadtree::TotalPathLength() const {
  size_t total = 0;
  VisitNodes([&total](const PointT&, size_t depth) { total += depth; });
  return total;
}

}  // namespace popan::spatial
