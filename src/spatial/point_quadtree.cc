#include "spatial/point_quadtree.h"

#include <algorithm>
#include <limits>

namespace popan::spatial {

Status PointQuadtree::Insert(const PointT& p) {
  if (root_ == kNullNode) {
    root_ = arena_.Allocate();
    arena_.Get(root_).point = p;
    return Status::OK();
  }
  NodeIndex idx = root_;
  for (;;) {
    Node& node = arena_.Get(idx);
    if (node.point == p) {
      return Status::AlreadyExists("duplicate point");
    }
    size_t q = QuadrantOf(node.point, p);
    if (node.children[q] == kNullNode) {
      NodeIndex child = arena_.Allocate();
      arena_.Get(child).point = p;
      // `node` may be dangling after Allocate; re-fetch.
      arena_.Get(idx).children[q] = child;
      return Status::OK();
    }
    idx = node.children[q];
  }
}

bool PointQuadtree::Contains(const PointT& p) const {
  NodeIndex idx = root_;
  while (idx != kNullNode) {
    const Node& node = arena_.Get(idx);
    if (node.point == p) return true;
    idx = node.children[QuadrantOf(node.point, p)];
  }
  return false;
}

std::vector<PointQuadtree::PointT> PointQuadtree::RangeQuery(
    const BoxT& query) const {
  std::vector<PointT> out;
  RangeRec(root_, query, &out);
  return out;
}

void PointQuadtree::RangeRec(NodeIndex idx, const BoxT& query,
                             std::vector<PointT>* out) const {
  if (idx == kNullNode) return;
  const Node& node = arena_.Get(idx);
  const PointT& p = node.point;
  if (query.Contains(p)) out->push_back(p);
  // Prune: a child quadrant q of pivot p can contain query points only if
  // the query extends to that side of p on each axis.
  // Quadrant q holds points with x < p.x (bit 0 clear) or x >= p.x (bit 0
  // set), and likewise for y. With the half-open query [lo, hi), the left
  // side is reachable iff lo < p.x and the right side iff hi > p.x.
  bool lo_x = query.lo().x() < p.x();
  bool hi_x = query.hi().x() > p.x();
  bool lo_y = query.lo().y() < p.y();
  bool hi_y = query.hi().y() > p.y();
  for (size_t q = 0; q < 4; ++q) {
    bool x_ok = (q & 1) ? hi_x : lo_x;
    bool y_ok = (q & 2) ? hi_y : lo_y;
    if (x_ok && y_ok) RangeRec(node.children[q], query, out);
  }
}

StatusOr<PointQuadtree::PointT> PointQuadtree::Nearest(
    const PointT& target) const {
  if (root_ == kNullNode) return Status::NotFound("tree is empty");
  PointT best;
  double best_d2 = std::numeric_limits<double>::infinity();
  double inf = std::numeric_limits<double>::infinity();
  BoxT everything(PointT(-inf, -inf), PointT(inf, inf));
  NearestRec(root_, everything, target, &best, &best_d2);
  return best;
}

void PointQuadtree::NearestRec(NodeIndex idx, const BoxT& cell,
                               const PointT& target, PointT* best,
                               double* best_d2) const {
  if (idx == kNullNode) return;
  if (cell.DistanceSquaredTo(target) >= *best_d2) return;
  const Node& node = arena_.Get(idx);
  double d2 = node.point.DistanceSquared(target);
  if (d2 < *best_d2) {
    *best_d2 = d2;
    *best = node.point;
  }
  // Children cells are the four quadrants of `cell` cut at the pivot point.
  const PointT& p = node.point;
  std::array<std::pair<double, size_t>, 4> order;
  std::array<BoxT, 4> cells;
  for (size_t q = 0; q < 4; ++q) {
    PointT lo = cell.lo();
    PointT hi = cell.hi();
    if (q & 1) {
      lo[0] = p.x();
    } else {
      hi[0] = p.x();
    }
    if (q & 2) {
      lo[1] = p.y();
    } else {
      hi[1] = p.y();
    }
    cells[q] = BoxT(lo, hi);
    order[q] = {cells[q].DistanceSquaredTo(target), q};
  }
  std::sort(order.begin(), order.end());
  for (const auto& [dist2, q] : order) {
    if (dist2 >= *best_d2) break;
    NearestRec(node.children[q], cells[q], target, best, best_d2);
  }
}

size_t PointQuadtree::Height() const {
  size_t best = 0;
  VisitNodes([&best](const PointT&, size_t depth) {
    best = std::max(best, depth);
  });
  return best;
}

size_t PointQuadtree::TotalPathLength() const {
  size_t total = 0;
  VisitNodes([&total](const PointT&, size_t depth) { total += depth; });
  return total;
}

}  // namespace popan::spatial
