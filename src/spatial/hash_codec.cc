#include "spatial/hash_codec.h"

#include <algorithm>
#include <array>

#include "spatial/morton.h"
#include "util/check.h"
#include "util/simd.h"

namespace popan::spatial {

namespace {

/// Final lattice-to-domain step shared by Decode and DecodeBatchLanes.
/// Its a + b * c shape is exactly the kind the SIMD parity policy keeps
/// off the vector paths (contraction to FMA would change results), so it
/// is compiled once, never inlined, and called from both the scalar and
/// the batched decoder — bitwise-identical outputs by construction.
[[gnu::noinline]] geo::Point2 LatticeToDomain(const geo::Box2& domain,
                                              uint64_t xq, uint64_t yq) {
  // xq * 2^-31 is exact in a double, so lattice points round-trip.
  const double scale =
      1.0 / static_cast<double>(uint64_t{1} << HashPointCodec::kBitsPerAxis);
  return geo::Point2(
      domain.lo().x() + domain.Extent(0) * (static_cast<double>(xq) * scale),
      domain.lo().y() + domain.Extent(1) * (static_cast<double>(yq) * scale));
}

}  // namespace

uint64_t HashPointCodec::Encode(const geo::Point2& p) const {
  // Normalize to [0, 1) and quantize each axis to kBitsPerAxis bits —
  // identical arithmetic to Excell::PseudoKey, so the two structures
  // decompose the domain the same way.
  double fx = (p.x() - domain.lo().x()) / domain.Extent(0);
  double fy = (p.y() - domain.lo().y()) / domain.Extent(1);
  auto quantize = [](double f) {
    double scaled = f * static_cast<double>(uint64_t{1} << kBitsPerAxis);
    uint64_t q = scaled <= 0.0 ? 0 : static_cast<uint64_t>(scaled);
    return std::min(q, (uint64_t{1} << kBitsPerAxis) - 1);
  };
  uint64_t xq = quantize(fx);
  uint64_t yq = quantize(fy);
  uint64_t key = 0;
  for (size_t level = 0; level < kBitsPerAxis; ++level) {
    uint64_t ybit = (yq >> (kBitsPerAxis - 1 - level)) & 1;
    uint64_t xbit = (xq >> (kBitsPerAxis - 1 - level)) & 1;
    key = (key << 2) | (ybit << 1) | xbit;
  }
  return key << (64 - 2 * kBitsPerAxis);
}

geo::Point2 HashPointCodec::Decode(uint64_t key) const {
  uint64_t bits = key >> (64 - 2 * kBitsPerAxis);
  uint64_t xq = 0;
  uint64_t yq = 0;
  for (size_t level = 0; level < kBitsPerAxis; ++level) {
    uint64_t pair = (bits >> (2 * (kBitsPerAxis - 1 - level))) & 3u;
    yq = (yq << 1) | (pair >> 1);
    xq = (xq << 1) | (pair & 1);
  }
  return LatticeToDomain(domain, xq, yq);
}

void HashPointCodec::EncodeBatch(std::span<const geo::Point2> pts,
                                 uint64_t* out) const {
  const size_t n = pts.size();
  if (n == 0) return;
  POPAN_CHECK(out != nullptr);
  const double scale = static_cast<double>(uint64_t{1} << kBitsPerAxis);
  const uint32_t max_q = (uint32_t{1} << kBitsPerAxis) - 1;
  const int left_align = 64 - 2 * static_cast<int>(kBitsPerAxis);
  for (size_t base = 0; base < n; base += 8) {
    const size_t c = n - base < 8 ? n - base : 8;
    double fx[8];
    double fy[8];
    // Normalization (subtract, divide) stays scalar: cheap next to the
    // quantize + interleave, and trivially identical to Encode's.
    for (size_t i = 0; i < c; ++i) {
      const geo::Point2& p = pts[base + i];
      fx[i] = (p.x() - domain.lo().x()) / domain.Extent(0);
      fy[i] = (p.y() - domain.lo().y()) / domain.Extent(1);
    }
    uint32_t xq[8];
    uint32_t yq[8];
    uint64_t keys[8];
    simd::QuantizeClamped(fx, c, scale, max_q, xq);
    simd::QuantizeClamped(fy, c, scale, max_q, yq);
    if (c == 8) {
      spatial::InterleaveBatch8(xq, yq, keys);
    } else {
      for (size_t i = 0; i < c; ++i) {
        keys[i] = simd::InterleaveBits(xq[i], yq[i]);
      }
    }
    for (size_t i = 0; i < c; ++i) out[base + i] = keys[i] << left_align;
  }
}

void HashPointCodec::DecodeBatchLanes(const uint64_t* keys, size_t n,
                                      double* xs, double* ys) const {
  if (n == 0) return;
  POPAN_CHECK(keys != nullptr && xs != nullptr && ys != nullptr);
  const int right_align = 64 - 2 * static_cast<int>(kBitsPerAxis);
  for (size_t base = 0; base < n; base += 8) {
    const size_t c = n - base < 8 ? n - base : 8;
    uint64_t bits[8];
    uint32_t xq[8];
    uint32_t yq[8];
    for (size_t i = 0; i < c; ++i) bits[i] = keys[base + i] >> right_align;
    if (c == 8) {
      spatial::DeinterleaveBatch8(bits, xq, yq);
    } else {
      for (size_t i = 0; i < c; ++i) {
        simd::DeinterleaveBits(bits[i], &xq[i], &yq[i]);
      }
    }
    for (size_t i = 0; i < c; ++i) {
      const geo::Point2 p = LatticeToDomain(domain, xq[i], yq[i]);
      xs[base + i] = p.x();
      ys[base + i] = p.y();
    }
  }
}

geo::Box2 HashPointCodec::BlockOfPrefix(uint64_t prefix_bits,
                                        size_t depth_bits) const {
  // Even bit positions split y, odd split x — the mirror of Encode's
  // y-first interleave (and of Excell::BlockOfPrefix).
  geo::Box2 box = domain;
  for (size_t level = 0; level < depth_bits; ++level) {
    uint64_t bit = (prefix_bits >> (depth_bits - 1 - level)) & 1;
    geo::Point2 lo = box.lo();
    geo::Point2 hi = box.hi();
    size_t axis = (level % 2 == 0) ? 1 : 0;
    double mid = 0.5 * (lo[axis] + hi[axis]);
    if (bit) {
      lo[axis] = mid;
    } else {
      hi[axis] = mid;
    }
    box = geo::Box2(lo, hi);
  }
  return box;
}

}  // namespace popan::spatial
