#ifndef POPAN_SPATIAL_PR_TREE_H_
#define POPAN_SPATIAL_PR_TREE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/batch_stats.h"
#include "spatial/census.h"
#include "spatial/knn_heap.h"
#include "spatial/morton.h"
#include "spatial/node_arena.h"
#include "spatial/query_cost.h"
#include "spatial/soa_buffer.h"
#include "util/check.h"
#include "util/status.h"
#include "util/statusor.h"

namespace popan::spatial {

/// Configuration of a generalized PR tree.
struct PrTreeOptions {
  /// Node capacity m: a leaf splits when it would hold more than this many
  /// points. m = 1 gives the simple PR quadtree of the paper's §III
  /// example; the paper's Tables 1–2 sweep m = 1…8.
  size_t capacity = 1;

  /// Depth at which splitting stops; a leaf at this depth absorbs points
  /// beyond `capacity`. The paper's implementation truncated at depth 9
  /// (the Table 3 anomaly at depth 9 is this artifact). Defaults high
  /// enough to be effectively unlimited for random real-valued data.
  size_t max_depth = 64;
};

/// The generalized PR (point-region) tree over D dimensions: a regular
/// recursive decomposition of a fixed root block into 2^D congruent
/// children ("quadrants"), splitting any block that holds more than
/// `capacity` points. D = 1 is a bintree, D = 2 the PR quadtree the paper
/// analyzes, D = 3 a PR octree.
///
/// Points are unique: inserting a duplicate returns AlreadyExists (with
/// real-valued random data duplicates are a measure-zero event; the PR
/// splitting rule counts distinct points).
///
/// Hot-path design (the simulation inner loop is insert/erase + census):
///  - Leaves store their points structure-of-arrays (SoaBuffer): each
///    coordinate axis in its own contiguous lane, up to kInlineLeafCapacity
///    elements inline in the node, spilling to the heap only above the
///    threshold (large capacities, or truncated leaves at max_depth). The
///    lane layout lets the range/partial-match visitors filter a whole
///    leaf with the SIMD point-in-box kernels of util/simd.h — bitwise
///    identical to the scalar test on every dispatch path.
///  - Insert/Erase/Contains are iterative (explicit descent loops, the
///    split cascade as a loop, collapse walking the recorded path), so
///    deep trees cannot overflow the call stack.
///  - The tree maintains a live occupancy-by-depth histogram, updated in
///    O(1) at every insert/erase/split/collapse; LiveCensus() snapshots
///    it without walking the tree. TakeCensus (a full walk) remains the
///    independent cross-check, and CheckInvariants verifies both agree.
template <size_t D>
class PrTree {
 public:
  using PointT = geo::Point<D>;
  using BoxT = geo::Box<D>;
  static constexpr size_t kFanout = size_t{1} << D;

  /// Points stored inline per leaf before spilling to the heap; matches
  /// the paper's largest studied capacity (m = 8).
  static constexpr size_t kInlineLeafCapacity = 8;

  /// Creates an empty tree over the root block `bounds`.
  PrTree(const BoxT& bounds, const PrTreeOptions& options = {})
      : bounds_(bounds), options_(options) {
    POPAN_CHECK(options_.capacity >= 1) << "capacity must be at least 1";
    root_ = arena_.Allocate();
    HistAdd(0, 0);
  }

  PrTree(const PrTree&) = default;
  PrTree& operator=(const PrTree&) = default;
  PrTree(PrTree&&) noexcept = default;
  PrTree& operator=(PrTree&&) noexcept = default;

  /// The root block.
  const BoxT& bounds() const { return bounds_; }

  /// The configured node capacity m.
  size_t capacity() const { return options_.capacity; }

  /// The configured truncation depth.
  size_t max_depth() const { return options_.max_depth; }

  /// Number of points stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of leaf nodes (the paper's "nodes": only leaves hold data and
  /// only leaves are counted in the population censuses).
  size_t LeafCount() const { return leaf_count_; }

  /// Total nodes including internal (gray) nodes.
  size_t NodeCount() const { return arena_.LiveCount(); }

  /// Pre-sizes the arena slab (and the per-tree scratch buffers) for a
  /// tree of roughly `expected_points` points, so bulk loads do not hit
  /// slab-growth reallocation storms mid-run. The node estimate is
  /// leaves ~ N / m scaled by 3x, which covers the steady-state occupancy
  /// (~0.3–0.55 m) plus internal nodes for every fanout; it is a hint
  /// only — the arena still grows on demand.
  void ReserveForPoints(size_t expected_points) {
    size_t nodes =
        expected_points / std::max<size_t>(1, options_.capacity) * 3 +
        kFanout + 1;
    arena_.Reserve(nodes);
    split_points_.reserve(options_.capacity + 1);
    split_codes_.reserve(options_.capacity + 1);
    erase_path_.reserve(std::min<size_t>(options_.max_depth + 1, 128));
  }

  /// Inserts `p`. Returns OutOfRange if p is outside the root block and
  /// AlreadyExists if an equal point is already stored.
  [[nodiscard]] Status Insert(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::OutOfRange("point outside the tree bounds");
    }
    // Iterative descent to the leaf that owns p.
    NodeIndex idx = root_;
    BoxT box = bounds_;
    size_t depth = 0;
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
      ++depth;
    }
    {
      Node& leaf = arena_.Get(idx);
      const size_t n = leaf.points.size();
      for (size_t i = 0; i < n; ++i) {
        if (leaf.points.Matches(i, p)) {
          return Status::AlreadyExists("duplicate point");
        }
      }
      if (n < options_.capacity || depth >= options_.max_depth) {
        leaf.points.push_back(p);
        HistRemove(depth, n);
        HistAdd(depth, n + 1);
        ++size_;
        return Status::OK();
      }
      // The splitting rule fires: the block would exceed capacity. Stash
      // the m+1 points in the reusable scratch buffer; the leaf becomes an
      // internal node below.
      split_points_.clear();
      for (size_t i = 0; i < n; ++i) split_points_.push_back(leaf.points.Get(i));
      split_points_.push_back(p);
      HistRemove(depth, n);
    }
    // Split cascade, iteratively: convert the current leaf into an
    // internal node with 2^D fresh empty leaves. A child can only exceed
    // capacity if it receives ALL m+1 points (capacity is m), so at most
    // one child cascades — when every point lands in the same quadrant
    // (the paper's "perhaps several times" case with probability 4^-m) —
    // and the cascade is a simple loop, not a recursion.
    for (;;) {
      std::array<NodeIndex, kFanout> ch;
      for (size_t q = 0; q < kFanout; ++q) ch[q] = arena_.Allocate();
      {
        // Re-fetch: the allocations above may have moved the slab.
        Node& node = arena_.Get(idx);
        node.is_leaf = false;
        node.points.clear();
        node.children = ch;
      }
      leaf_count_ += kFanout - 1;
      for (size_t q = 0; q < kFanout; ++q) HistAdd(depth + 1, 0);

      std::array<size_t, kFanout> counts{};
      split_codes_.clear();
      for (const PointT& pt : split_points_) {
        size_t q = box.QuadrantOf(pt);
        split_codes_.push_back(static_cast<uint8_t>(q));
        ++counts[q];
      }
      size_t sole = kFanout;  // the quadrant holding every point, if any
      for (size_t q = 0; q < kFanout; ++q) {
        if (counts[q] == split_points_.size()) sole = q;
      }
      if (sole != kFanout && depth + 1 < options_.max_depth) {
        idx = ch[sole];
        box = box.Quadrant(sole);
        ++depth;
        HistRemove(depth, 0);  // this fresh leaf becomes internal next turn
        continue;
      }
      // The points scatter (or the children sit at max_depth and absorb
      // everything): place them and settle the census.
      for (size_t i = 0; i < split_points_.size(); ++i) {
        arena_.Get(ch[split_codes_[i]]).points.push_back(split_points_[i]);
      }
      for (size_t q = 0; q < kFanout; ++q) {
        if (counts[q] != 0) {
          HistRemove(depth + 1, 0);
          HistAdd(depth + 1, counts[q]);
        }
      }
      break;
    }
    ++size_;
    return Status::OK();
  }

  /// Bulk insert (the batch hot path). For D = 2 the batch is encoded
  /// with the batched Morton codec, sorted by (code, x, y), and placed
  /// one leaf-run at a time: phase one descends by code fields straight
  /// to each owning leaf (no per-point box arithmetic), phase two
  /// finalises any overflowing leaf by rebuilding its subtree from the
  /// merged sorted span — so traversal and split cascades are paid once
  /// per leaf, not once per point. Other dimensions fall back to the
  /// scalar insert loop.
  ///
  /// The resulting tree is the canonical PR decomposition of the final
  /// point set (identical shape and censuses to inserting one-by-one, in
  /// any order); only the order of points within a leaf may differ.
  /// Duplicates (against stored points or within the batch) and
  /// out-of-bounds points are counted, not inserted — the same
  /// dispositions the scalar insert reports as Status codes.
  BatchInsertStats InsertBatch(std::span<const PointT> batch) {
    BatchInsertStats stats;
    if constexpr (D == 2) {
      InsertBatchSorted(batch, &stats);
    } else {
      for (const PointT& p : batch) AbsorbSingle(Insert(p), &stats);
    }
    return stats;
  }

  /// Times the node arena's slab grew mid-allocation (see
  /// NodeArena::GrowthCount) — zero across a well-reserved InsertBatch.
  size_t ArenaGrowthCount() const { return arena_.GrowthCount(); }

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const {
    if (!bounds_.Contains(p)) return false;
    NodeIndex idx = root_;
    BoxT box = bounds_;
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
    }
    const Node& leaf = arena_.Get(idx);
    for (size_t i = 0, n = leaf.points.size(); i < n; ++i) {
      if (leaf.points.Matches(i, p)) return true;
    }
    return false;
  }

  /// Removes `p`. Returns NotFound if it is not stored. After a removal,
  /// any chain of internal nodes whose total occupancy fits in one leaf is
  /// collapsed, so the tree is always the minimal decomposition for its
  /// contents (insertion order independence — a defining PR property).
  [[nodiscard]] Status Erase(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::NotFound("point outside the tree bounds");
    }
    // Iterative descent recording the path for the collapse walk-back.
    erase_path_.clear();
    NodeIndex idx = root_;
    BoxT box = bounds_;
    erase_path_.push_back(idx);
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
      erase_path_.push_back(idx);
    }
    Node& leaf = arena_.Get(idx);
    const size_t n = leaf.points.size();
    size_t found = n;
    for (size_t i = 0; i < n; ++i) {
      if (leaf.points.Matches(i, p)) {
        found = i;
        break;
      }
    }
    if (found == n) return Status::NotFound("point not stored");
    leaf.points.SwapRemoveAt(found);
    const size_t depth = erase_path_.size() - 1;
    HistRemove(depth, n);
    HistAdd(depth, n - 1);
    --size_;
    // Collapse deepest-first along the recorded path. Once a level fails
    // to collapse it stays internal, so no shallower ancestor can have
    // all-leaf children either — stop there.
    for (size_t level = depth; level-- > 0;) {
      if (!TryCollapse(erase_path_[level], level)) break;
    }
    return Status::OK();
  }

  /// Returns all stored points inside `query` (half-open box semantics).
  std::vector<PointT> RangeQuery(const BoxT& query) const {
    std::vector<PointT> out;
    QueryCost cost;
    RangeQueryVisit(query, &cost, [&out](const PointT& p) {
      out.push_back(p);
    });
    return out;
  }

  /// Cost-counted orthogonal range search: calls fn(point) for every
  /// stored point inside `query` (half-open box semantics), in preorder
  /// quadrant order. Iterative (explicit stack, no recursion) and
  /// allocation-local: concurrent calls on a shared const tree are safe.
  /// A node is counted in nodes_visited iff its block intersects the
  /// query; rejected children count in pruned_subtrees.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    if (!bounds_.Intersects(query)) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        // SIMD point-in-box filter over the leaf's coordinate lanes;
        // match order and counter arithmetic are identical to the scalar
        // per-point loop on every dispatch path.
        cost->points_scanned += node.points.size();
        ForEachInBox(node.points, query,
                     [&node, &fn](size_t i) { fn(node.points.Get(i)); });
        continue;
      }
      // Push children in reverse so quadrant 0 pops first (preorder).
      for (size_t q = kFanout; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (child.Intersects(query)) {
          stack.push_back(WalkFrame{node.children[q], child, f.depth + 1});
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` to
  /// `value` and calls fn(point) for every stored point with
  /// point[axis] == value. Traverses exactly the blocks whose axis
  /// interval contains `value` under the half-open rule
  /// (lo[axis] <= value < hi[axis]); with random real-valued data the
  /// result set is almost surely empty and the traversal cost IS the
  /// measurement (the paper-adjacent N^((sqrt(17)-3)/2) law).
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < D);
    POPAN_DCHECK(cost != nullptr);
    if (value < bounds_.lo()[axis] || value >= bounds_.hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        // SIMD equality filter on the fixed axis lane (same order and
        // counters as the scalar loop; IEEE == either way).
        cost->points_scanned += node.points.size();
        ForEachEqualOnAxis(node.points, axis, value, [&node, &fn](size_t i) {
          fn(node.points.Get(i));
        });
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (child.lo()[axis] <= value && value < child.hi()[axis]) {
          stack.push_back(WalkFrame{node.children[q], child, f.depth + 1});
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// Returns the stored point nearest to `target` (Euclidean metric), or
  /// NotFound on an empty tree. Ties broken arbitrarily.
  [[nodiscard]] StatusOr<PointT> Nearest(const PointT& target) const {
    if (size_ == 0) return Status::NotFound("tree is empty");
    QueryCost cost;
    std::vector<PointT> best = NearestK(target, 1, &cost);
    POPAN_CHECK(!best.empty());
    return best[0];
  }

  /// Returns the k stored points nearest to `target`, ascending by the
  /// canonical (distance, x, y) key (fewer if the tree holds fewer than
  /// k). k must be >= 1.
  std::vector<PointT> NearestK(const PointT& target, size_t k) const {
    QueryCost cost;
    return NearestK(target, k, &cost);
  }

  /// Cost-counted k-nearest-neighbor search. Iterative depth-first
  /// descent with children pushed far-to-near, so the nearest subtree is
  /// explored first and the pruning radius (the current k-th best
  /// distance) tightens as early as possible. Subtrees cut off by the
  /// radius test — at push or at pop, as the radius shrinks between the
  /// two — count in pruned_subtrees. Equal-distance ties resolve by the
  /// canonical coordinate order (knn_heap.h), so the result is
  /// independent of traversal order and identical across backends.
  std::vector<PointT> NearestK(const PointT& target, size_t k,
                               QueryCost* cost) const {
    POPAN_CHECK(k >= 1);
    POPAN_DCHECK(cost != nullptr);
    KnnHeap<PointT, PointTieLess> heap(k);
    std::vector<DistFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(DistFrame{root_, bounds_,
                              bounds_.DistanceSquaredTo(target)});
    while (!stack.empty()) {
      DistFrame f = stack.back();
      stack.pop_back();
      if (heap.ShouldPrune(f.d2)) {
        ++cost->pruned_subtrees;
        continue;
      }
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        // Deliberately scalar: the distance accumulation a*a + acc is a
        // fusable shape the compiler may contract to FMA, so a hand-SIMD
        // version could not stay bitwise identical (see util/simd.h).
        for (size_t i = 0, n = node.points.size(); i < n; ++i) {
          ++cost->points_scanned;
          heap.Offer(node.points.Get(i).DistanceSquared(target),
                     node.points.Get(i));
        }
        continue;
      }
      std::array<std::pair<double, size_t>, kFanout> order;
      for (size_t q = 0; q < kFanout; ++q) {
        order[q] = {f.box.Quadrant(q).DistanceSquaredTo(target), q};
      }
      std::sort(order.begin(), order.end());
      // Far-to-near onto the LIFO stack; the nearest child pops first.
      for (size_t i = kFanout; i-- > 0;) {
        const auto& [d2, q] = order[i];
        if (heap.ShouldPrune(d2)) {
          ++cost->pruned_subtrees;
          continue;
        }
        stack.push_back(DistFrame{node.children[q], f.box.Quadrant(q), d2});
      }
    }
    return heap.TakeSorted();
  }

  /// Calls fn(box, depth, occupancy) for every leaf in preorder (children
  /// in quadrant order). Depth of the root is 0; a leaf's block area is
  /// bounds.Volume() / 2^(D*depth). Explicit-stack traversal: safe for
  /// trees of any depth.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        fn(f.box, static_cast<size_t>(f.depth), node.points.size());
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(WalkFrame{node.children[q], f.box.Quadrant(q),
                                  f.depth + 1});
      }
    }
  }

  /// Calls fn(box, depth, is_leaf, occupancy) for every node, preorder.
  template <typename Fn>
  void VisitAllNodes(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      fn(f.box, static_cast<size_t>(f.depth), node.is_leaf,
         node.points.size());
      if (node.is_leaf) continue;
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(WalkFrame{node.children[q], f.box.Quadrant(q),
                                  f.depth + 1});
      }
    }
  }

  /// Returns every stored point (in no particular order).
  std::vector<PointT> AllPoints() const {
    std::vector<PointT> out;
    out.reserve(size_);
    VisitLeavesPoints(
        [&out](const BoxT&, size_t, std::span<const PointT> pts) {
          out.insert(out.end(), pts.begin(), pts.end());
        });
    return out;
  }

  /// Calls fn(box, depth, std::span<const PointT>) for every leaf in
  /// preorder (children in quadrant order — Z order), exposing the points.
  /// The span is assembled from the leaf's coordinate lanes into a
  /// traversal-local scratch buffer and is valid only for the duration of
  /// the callback.
  template <typename Fn>
  void VisitLeavesPoints(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    std::vector<PointT> scratch;
    scratch.reserve(kInlineLeafCapacity);
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        scratch.clear();
        for (size_t i = 0, n = node.points.size(); i < n; ++i) {
          scratch.push_back(node.points.Get(i));
        }
        fn(f.box, static_cast<size_t>(f.depth),
           std::span<const PointT>(scratch.data(), scratch.size()));
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(WalkFrame{node.children[q], f.box.Quadrant(q),
                                  f.depth + 1});
      }
    }
  }

  /// Snapshot of the live occupancy-by-depth histogram — the same census
  /// TakeCensus(tree) walks the tree for, but assembled in O(depths x
  /// occupancies) independent of the number of points. The histogram is
  /// maintained incrementally at every insert/erase/split/collapse, so
  /// per-step censuses cost O(1) bookkeeping per operation instead of an
  /// O(N) walk per snapshot.
  Census LiveCensus() const {
    Census census;
    for (size_t d = 0; d < live_hist_.size(); ++d) {
      const std::vector<uint64_t>& row = live_hist_[d];
      for (size_t occ = 0; occ < row.size(); ++occ) {
        if (row[occ] != 0) census.AddLeaves(occ, d, row[occ]);
      }
    }
    return census;
  }

  /// Removes all points, leaving one empty root leaf.
  void Clear() {
    arena_.Clear();
    root_ = arena_.Allocate();
    size_ = 0;
    leaf_count_ = 1;
    live_hist_.clear();
    HistAdd(0, 0);
  }

  /// Verifies structural invariants; returns Internal on violation. Used by
  /// tests and available to callers as a consistency check:
  ///  - every leaf holds at most `capacity` points unless at max_depth;
  ///  - every internal node has 2^D children and holds no points;
  ///  - every point lies inside its leaf's block;
  ///  - no internal node's subtree fits within `capacity` (minimality);
  ///  - cached size / leaf counts match reality;
  ///  - the live census histogram matches a fresh walk of the tree.
  [[nodiscard]] Status CheckInvariants() const {
    size_t points_seen = 0;
    size_t leaves_seen = 0;
    Status s = CheckRec(root_, bounds_, 0, &points_seen, &leaves_seen);
    if (!s.ok()) return s;
    if (points_seen != size_) {
      return Status::Internal("size mismatch: counted " +
                              std::to_string(points_seen) + " cached " +
                              std::to_string(size_));
    }
    if (leaves_seen != leaf_count_) {
      return Status::Internal("leaf count mismatch");
    }
    return CheckLiveHistogram();
  }

 private:
  struct Node {
    // A node is a leaf iff is_leaf; then `points` holds its contents.
    // Otherwise `children` holds 2^D arena indices.
    bool is_leaf = true;
    std::array<NodeIndex, kFanout> children = InitChildren();
    SoaBuffer<D, kInlineLeafCapacity> points;

    static constexpr std::array<NodeIndex, kFanout> InitChildren() {
      std::array<NodeIndex, kFanout> c{};
      for (size_t i = 0; i < kFanout; ++i) c[i] = kNullNode;
      return c;
    }
  };

  /// Explicit-stack frame for the traversal methods.
  struct WalkFrame {
    NodeIndex idx;
    BoxT box;
    uint32_t depth;
  };
  /// Frame for the best-first k-NN descent: the block's distance² to the
  /// target is computed at push time and re-checked at pop time, because
  /// the pruning radius may have shrunk in between.
  struct DistFrame {
    NodeIndex idx;
    BoxT box;
    double d2;
  };
  static constexpr size_t kWalkStackHint = 64;

  // ---- Live census bookkeeping -------------------------------------
  // live_hist_[depth][occ] = number of leaves at `depth` holding exactly
  // `occ` points, kept exact through every mutation. Rows/columns are
  // grown on demand and may retain trailing zeros after collapses;
  // LiveCensus() skips the zeros, so the snapshot matches TakeCensus.

  void HistAdd(size_t depth, size_t occ) {
    if (depth >= live_hist_.size()) live_hist_.resize(depth + 1);
    std::vector<uint64_t>& row = live_hist_[depth];
    if (occ >= row.size()) row.resize(occ + 1, 0);
    ++row[occ];
  }

  void HistRemove(size_t depth, size_t occ) {
    POPAN_DCHECK(depth < live_hist_.size() &&
                 occ < live_hist_[depth].size() &&
                 live_hist_[depth][occ] > 0)
        << "live census underflow at depth" << depth;
    --live_hist_[depth][occ];
  }

  [[nodiscard]] Status CheckLiveHistogram() const {
    std::vector<std::vector<uint64_t>> walked;
    VisitLeaves([&walked](const BoxT&, size_t depth, size_t occ) {
      if (depth >= walked.size()) walked.resize(depth + 1);
      if (occ >= walked[depth].size()) walked[depth].resize(occ + 1, 0);
      ++walked[depth][occ];
    });
    size_t depths = std::max(walked.size(), live_hist_.size());
    for (size_t d = 0; d < depths; ++d) {
      size_t occs = std::max(d < walked.size() ? walked[d].size() : 0,
                             d < live_hist_.size() ? live_hist_[d].size()
                                                   : 0);
      for (size_t occ = 0; occ < occs; ++occ) {
        uint64_t want = d < walked.size() && occ < walked[d].size()
                            ? walked[d][occ]
                            : 0;
        uint64_t have = d < live_hist_.size() && occ < live_hist_[d].size()
                            ? live_hist_[d][occ]
                            : 0;
        if (want != have) {
          return Status::Internal(
              "live census drift at depth " + std::to_string(d) +
              " occupancy " + std::to_string(occ) + ": walked " +
              std::to_string(want) + " live " + std::to_string(have));
        }
      }
    }
    return Status::OK();
  }

  // ---- Bulk insert (see InsertBatch) -------------------------------

  /// One batch record: a point with its Morton code, sorted and merged
  /// as a unit so the hot path never re-gathers parallel arrays.
  struct BatchRec {
    uint64_t code;
    PointT pt;
  };

  static void AbsorbSingle(const Status& s, BatchInsertStats* stats) {
    if (s.ok()) {
      ++stats->inserted;
    } else if (s.code() == StatusCode::kAlreadyExists) {
      ++stats->duplicates;
    } else {
      ++stats->out_of_bounds;
    }
  }

  /// Sizes the arena from the sorted batch's run structure instead of a
  /// worst-case per-point bound: distinct code prefixes at the depth d*
  /// where mean block occupancy is ~capacity/2 (4^d* >= 2n/m) approximate
  /// the final leaf partition, and a quadtree with L leaves has (4L-1)/3
  /// nodes; 2x slack covers clusters that split past d*.
  void ReserveForBatch(const std::vector<BatchRec>& sorted) {
    const size_t n = sorted.size();
    const size_t m = std::max<size_t>(1, options_.capacity);
    size_t d_star = 0;
    while (d_star < MortonCode::kMaxDepth &&
           (size_t{1} << (2 * d_star)) < (2 * n + m - 1) / m) {
      ++d_star;
    }
    const int shift = 2 * (MortonCode::kMaxDepth - d_star);
    size_t runs = 1;
    for (size_t j = 1; j < n; ++j) {
      if ((sorted[j].code >> shift) != (sorted[j - 1].code >> shift)) {
        ++runs;
      }
    }
    arena_.ReserveAdditional(runs * 8 / 3 + kFanout + 8);
  }

  /// The D = 2 bulk path. Every structural decision is driven by the
  /// (parity-exact) batch codes and raw coordinate comparisons, so the
  /// built tree is bitwise identical under scalar and SIMD dispatch.
  void InsertBatchSorted(std::span<const PointT> batch,
                         BatchInsertStats* stats) {
    const uint8_t cd = static_cast<uint8_t>(
        std::min<size_t>(options_.max_depth, MortonCode::kMaxDepth));
    std::vector<PointT> pts;
    pts.reserve(batch.size());
    for (const PointT& p : batch) {
      if (bounds_.Contains(p)) {
        pts.push_back(p);
      } else {
        ++stats->out_of_bounds;
      }
    }
    if (pts.empty()) return;
    const size_t n = pts.size();
    std::vector<uint64_t> raw(n);
    CodeBitsBatch(bounds_, pts, cd, raw.data());
    // Sort records (code, point) by (code, x, y). Large batches go
    // through one MSD bucket pass on the top 16 code bits (uniform data
    // lands ~n/65536 records per bucket) followed by tiny per-bucket
    // comparison sorts — a single scatter instead of O(n log n) indirect
    // comparisons, which dominates the whole batch otherwise. Skewed
    // data degrades gracefully: an overfull bucket is just std::sort'ed.
    const auto rec_less = [](const BatchRec& a, const BatchRec& b) {
      if (a.code != b.code) return a.code < b.code;
      if (a.pt[0] != b.pt[0]) return a.pt[0] < b.pt[0];
      return a.pt[1] < b.pt[1];
    };
    std::vector<BatchRec> recs(n);
    for (size_t j = 0; j < n; ++j) recs[j] = BatchRec{raw[j], pts[j]};
    if (n >= 4096) {
      // Codes occupy bits [0, 62); the top 16 are bits [46, 62).
      constexpr int kBucketShift = 2 * MortonCode::kMaxDepth - 16;
      constexpr size_t kBuckets = size_t{1} << 16;
      std::vector<uint32_t> offsets(kBuckets + 1, 0);
      for (const BatchRec& r : recs) ++offsets[(r.code >> kBucketShift) + 1];
      for (size_t k = 1; k <= kBuckets; ++k) offsets[k] += offsets[k - 1];
      std::vector<BatchRec> tmp(n);
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (const BatchRec& r : recs) tmp[cursor[r.code >> kBucketShift]++] = r;
      recs.swap(tmp);
      for (size_t k = 0; k < kBuckets; ++k) {
        const size_t lo = offsets[k];
        const size_t hi = offsets[k + 1];
        if (hi - lo > 1) {
          std::sort(recs.begin() + static_cast<ptrdiff_t>(lo),
                    recs.begin() + static_cast<ptrdiff_t>(hi), rec_less);
        }
      }
    } else {
      std::sort(recs.begin(), recs.end(), rec_less);
    }
    // In-batch duplicates are adjacent now; drop them in place, up front,
    // so the per-run merge below only resolves batch-vs-stored ties.
    {
      size_t w = 0;
      for (size_t j = 0; j < n; ++j) {
        if (w != 0 && recs[w - 1].code == recs[j].code &&
            recs[w - 1].pt == recs[j].pt) {
          ++stats->duplicates;
          continue;
        }
        recs[w++] = recs[j];
      }
      recs.resize(w);
    }
    ReserveForBatch(recs);
    const size_t sn = recs.size();

    const size_t size_before = size_;
    std::vector<PointT> fallback;
    std::vector<PointT> ex_pts;
    std::vector<uint64_t> ex_codes;
    std::vector<uint32_t> ex_order;
    std::vector<BatchRec> merged;
    size_t i = 0;
    while (i < sn) {
      // Descend by code fields straight to the leaf owning recs[i].
      NodeIndex idx = root_;
      size_t depth = 0;
      for (;;) {
        const Node& node = arena_.Get(idx);
        if (node.is_leaf) break;
        if (depth >= cd) {
          idx = kNullNode;
          break;
        }
        const size_t q =
            (recs[i].code >> (2 * (MortonCode::kMaxDepth - 1 - depth))) & 3;
        idx = node.children[q];
        ++depth;
      }
      if (idx == kNullNode) {
        // Structure deeper than the code depth (an identical-code cluster
        // under max_depth > kMaxDepth): the scalar path, which splits on
        // real coordinates, handles these points.
        const uint64_t c = recs[i].code;
        while (i < sn && recs[i].code == c) fallback.push_back(recs[i++].pt);
        continue;
      }
      // The run: every batch point inside this leaf's code interval.
      size_t e = sn;
      if (depth > 0) {
        const uint64_t span = uint64_t{1}
                              << (2 * (MortonCode::kMaxDepth - depth));
        const uint64_t hi = (recs[i].code & ~(span - 1)) + span;
        e = i + 1;
        while (e < sn && recs[e].code < hi) ++e;
      }
      Node& leaf = arena_.Get(idx);
      const size_t old_occ = leaf.points.size();
      if (old_occ == 0) {
        // Empty leaf: the deduplicated run IS the merged span — fill or
        // finalise straight from the sorted records, no copies.
        const size_t total = e - i;
        if (total <= options_.capacity || depth >= options_.max_depth) {
          for (size_t j = i; j < e; ++j) leaf.points.push_back(recs[j].pt);
          HistRemove(depth, 0);
          HistAdd(depth, total);
          size_ += total;
        } else {
          HistRemove(depth, 0);
          const size_t placed =
              BuildSubtreeFromRun(idx, depth, cd, i, e, recs, &fallback);
          size_ += placed;
        }
        i = e;
        continue;
      }
      // Merge the leaf's existing points (encoded and sorted the same
      // way) with the run, dropping batch copies of stored points.
      ex_pts.clear();
      for (size_t j = 0; j < old_occ; ++j) ex_pts.push_back(leaf.points.Get(j));
      ex_codes.resize(old_occ);
      CodeBitsBatch(bounds_, ex_pts, cd, ex_codes.data());
      ex_order.resize(old_occ);
      std::iota(ex_order.begin(), ex_order.end(), 0u);
      std::sort(ex_order.begin(), ex_order.end(),
                [&](uint32_t a, uint32_t b) {
                  if (ex_codes[a] != ex_codes[b]) {
                    return ex_codes[a] < ex_codes[b];
                  }
                  if (ex_pts[a][0] != ex_pts[b][0]) {
                    return ex_pts[a][0] < ex_pts[b][0];
                  }
                  return ex_pts[a][1] < ex_pts[b][1];
                });
      merged.clear();
      size_t a = 0;
      size_t b = i;
      while (a < old_occ || b < e) {
        bool take_existing;
        if (a >= old_occ) {
          take_existing = false;
        } else if (b >= e) {
          take_existing = true;
        } else {
          const uint64_t ca = ex_codes[ex_order[a]];
          if (ca != recs[b].code) {
            take_existing = ca < recs[b].code;
          } else {
            const PointT& pa = ex_pts[ex_order[a]];
            if (pa[0] != recs[b].pt[0]) {
              take_existing = pa[0] < recs[b].pt[0];
            } else {
              // On full ties the stored point wins; the batch copy is
              // then dropped as a duplicate below.
              take_existing = pa[1] <= recs[b].pt[1];
            }
          }
        }
        if (take_existing) {
          merged.push_back(BatchRec{ex_codes[ex_order[a]], ex_pts[ex_order[a]]});
          ++a;
        } else {
          if (!merged.empty() && merged.back().pt == recs[b].pt) {
            ++stats->duplicates;
          } else {
            merged.push_back(recs[b]);
          }
          ++b;
        }
      }
      const size_t total = merged.size();
      if (total == old_occ) {
        i = e;
        continue;  // every batch point in the run was a duplicate
      }
      if (total <= options_.capacity || depth >= options_.max_depth) {
        leaf.points.clear();
        for (size_t j = 0; j < total; ++j) leaf.points.push_back(merged[j].pt);
        HistRemove(depth, old_occ);
        HistAdd(depth, total);
        size_ += total - old_occ;
      } else {
        // Finalise: rebuild this leaf's subtree from the merged span.
        HistRemove(depth, old_occ);
        leaf.points.clear();
        const size_t placed = BuildSubtreeFromRun(
            idx, depth, cd, 0, total, merged, &fallback);
        size_ -= old_occ;
        size_ += placed;
      }
      i = e;
    }
    // Deep identical-code clusters (a measure-zero event for real-valued
    // data) finish on the scalar path.
    for (const PointT& p : fallback) {
      const Status s = Insert(p);
      if (!s.ok()) ++stats->duplicates;
    }
    stats->inserted += size_ - size_before;
  }

  /// Builds the minimal subtree for merged[b, e) under `idx`, which must
  /// be an empty leaf whose census entry has been removed. Splits exactly
  /// when a block holds more than `capacity` points (the PR rule), using
  /// the sorted codes to partition spans without touching coordinates.
  /// Returns the number of points placed; points of an identical-code
  /// cluster that must split past the code depth join `fallback` instead.
  size_t BuildSubtreeFromRun(NodeIndex idx, size_t depth, uint8_t cd,
                             size_t b, size_t e,
                             const std::vector<BatchRec>& recs,
                             std::vector<PointT>* fallback) {
    const size_t count = e - b;
    if (count <= options_.capacity || depth >= options_.max_depth) {
      Node& node = arena_.Get(idx);
      for (size_t j = b; j < e; ++j) node.points.push_back(recs[j].pt);
      HistAdd(depth, count);
      return count;
    }
    if (depth >= cd) {
      HistAdd(depth, 0);
      for (size_t j = b; j < e; ++j) fallback->push_back(recs[j].pt);
      return 0;
    }
    std::array<NodeIndex, kFanout> ch;
    for (size_t q = 0; q < kFanout; ++q) ch[q] = arena_.Allocate();
    {
      // Re-fetch: the allocations above may have moved the slab.
      Node& node = arena_.Get(idx);
      node.is_leaf = false;
      node.points.clear();
      node.children = ch;
    }
    leaf_count_ += kFanout - 1;
    const int shift =
        2 * (static_cast<int>(MortonCode::kMaxDepth) - 1 -
             static_cast<int>(depth));
    size_t placed = 0;
    size_t s = b;
    for (size_t q = 0; q < kFanout; ++q) {
      size_t t = s;
      while (t < e &&
             ((recs[t].code >> shift) & 3) == static_cast<uint64_t>(q)) {
        ++t;
      }
      placed += BuildSubtreeFromRun(ch[q], depth + 1, cd, s, t, recs, fallback);
      s = t;
    }
    POPAN_DCHECK(s == e);
    return placed;
  }

  /// If all children of internal node `idx` (at `depth`) are leaves and
  /// their total occupancy fits in one leaf, merge them back into `idx`.
  /// Returns true iff the node collapsed.
  bool TryCollapse(NodeIndex idx, size_t depth) {
    Node& node = arena_.Get(idx);
    POPAN_DCHECK(!node.is_leaf);
    size_t total = 0;
    for (size_t q = 0; q < kFanout; ++q) {
      const Node& child = arena_.Get(node.children[q]);
      if (!child.is_leaf) return false;
      total += child.points.size();
    }
    if (total > options_.capacity) return false;
    std::array<NodeIndex, kFanout> ch = node.children;
    node.is_leaf = true;
    node.points.clear();
    for (size_t q = 0; q < kFanout; ++q) node.children[q] = kNullNode;
    for (size_t q = 0; q < kFanout; ++q) {
      // Freeing a slot never moves the slab, so `node` stays valid.
      Node& child = arena_.Get(ch[q]);
      HistRemove(depth + 1, child.points.size());
      for (size_t i = 0, n = child.points.size(); i < n; ++i) {
        node.points.push_back(child.points.Get(i));
      }
      arena_.Free(ch[q]);
    }
    HistAdd(depth, total);
    leaf_count_ -= kFanout - 1;
    return true;
  }

  [[nodiscard]] Status CheckRec(NodeIndex idx, const BoxT& box, size_t depth,
                  size_t* points_seen, size_t* leaves_seen) const {
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      ++*leaves_seen;
      *points_seen += node.points.size();
      if (node.points.size() > options_.capacity &&
          depth < options_.max_depth) {
        return Status::Internal("leaf over capacity below max depth");
      }
      for (size_t i = 0, n = node.points.size(); i < n; ++i) {
        PointT p = node.points.Get(i);
        if (!box.Contains(p)) {
          return Status::Internal("point " + p.ToString() +
                                  " outside its leaf block " +
                                  box.ToString());
        }
      }
      return Status::OK();
    }
    if (!node.points.empty()) {
      return Status::Internal("internal node holds points");
    }
    size_t subtree_points = 0;
    for (size_t q = 0; q < kFanout; ++q) {
      if (node.children[q] == kNullNode) {
        return Status::Internal("internal node with missing child");
      }
      size_t before = *points_seen;
      POPAN_RETURN_IF_ERROR(CheckRec(node.children[q], box.Quadrant(q),
                                     depth + 1, points_seen, leaves_seen));
      subtree_points += *points_seen - before;
    }
    // Minimality: an internal node whose whole subtree fits in a leaf
    // should have been collapsed (PR trees are canonical for a point set).
    if (subtree_points <= options_.capacity) {
      bool all_leaf_children = true;
      for (size_t q = 0; q < kFanout; ++q) {
        if (!arena_.Get(node.children[q]).is_leaf) {
          all_leaf_children = false;
          break;
        }
      }
      if (all_leaf_children) {
        return Status::Internal("non-minimal decomposition: " +
                                std::to_string(subtree_points) +
                                " points under an internal node");
      }
    }
    return Status::OK();
  }

  BoxT bounds_;
  PrTreeOptions options_;
  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
  size_t size_ = 0;
  size_t leaf_count_ = 1;
  std::vector<std::vector<uint64_t>> live_hist_;
  // Reusable scratch buffers so the insert/erase hot paths are
  // allocation-free after warm-up.
  std::vector<PointT> split_points_;
  std::vector<uint8_t> split_codes_;
  std::vector<NodeIndex> erase_path_;
};

/// Convenience aliases for the common dimensions.
using PrBintree = PrTree<1>;
using PrQuadtree = PrTree<2>;
using PrOctree = PrTree<3>;

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_PR_TREE_H_
