#ifndef POPAN_SPATIAL_PR_TREE_H_
#define POPAN_SPATIAL_PR_TREE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/census.h"
#include "spatial/inline_buffer.h"
#include "spatial/node_arena.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/status.h"
#include "util/statusor.h"

namespace popan::spatial {

/// Configuration of a generalized PR tree.
struct PrTreeOptions {
  /// Node capacity m: a leaf splits when it would hold more than this many
  /// points. m = 1 gives the simple PR quadtree of the paper's §III
  /// example; the paper's Tables 1–2 sweep m = 1…8.
  size_t capacity = 1;

  /// Depth at which splitting stops; a leaf at this depth absorbs points
  /// beyond `capacity`. The paper's implementation truncated at depth 9
  /// (the Table 3 anomaly at depth 9 is this artifact). Defaults high
  /// enough to be effectively unlimited for random real-valued data.
  size_t max_depth = 64;
};

/// The generalized PR (point-region) tree over D dimensions: a regular
/// recursive decomposition of a fixed root block into 2^D congruent
/// children ("quadrants"), splitting any block that holds more than
/// `capacity` points. D = 1 is a bintree, D = 2 the PR quadtree the paper
/// analyzes, D = 3 a PR octree.
///
/// Points are unique: inserting a duplicate returns AlreadyExists (with
/// real-valued random data duplicates are a measure-zero event; the PR
/// splitting rule counts distinct points).
///
/// Hot-path design (the simulation inner loop is insert/erase + census):
///  - Leaves store their points in a fixed inline buffer (InlineBuffer,
///    sized for the paper's m <= 8 regime), so inserts and splits do not
///    allocate; contents spill to the heap only above the inline
///    threshold (large capacities, or truncated leaves at max_depth).
///  - Insert/Erase/Contains are iterative (explicit descent loops, the
///    split cascade as a loop, collapse walking the recorded path), so
///    deep trees cannot overflow the call stack.
///  - The tree maintains a live occupancy-by-depth histogram, updated in
///    O(1) at every insert/erase/split/collapse; LiveCensus() snapshots
///    it without walking the tree. TakeCensus (a full walk) remains the
///    independent cross-check, and CheckInvariants verifies both agree.
template <size_t D>
class PrTree {
 public:
  using PointT = geo::Point<D>;
  using BoxT = geo::Box<D>;
  static constexpr size_t kFanout = size_t{1} << D;

  /// Points stored inline per leaf before spilling to the heap; matches
  /// the paper's largest studied capacity (m = 8).
  static constexpr size_t kInlineLeafCapacity = 8;

  /// Creates an empty tree over the root block `bounds`.
  PrTree(const BoxT& bounds, const PrTreeOptions& options = {})
      : bounds_(bounds), options_(options) {
    POPAN_CHECK(options_.capacity >= 1) << "capacity must be at least 1";
    root_ = arena_.Allocate();
    HistAdd(0, 0);
  }

  PrTree(const PrTree&) = default;
  PrTree& operator=(const PrTree&) = default;
  PrTree(PrTree&&) noexcept = default;
  PrTree& operator=(PrTree&&) noexcept = default;

  /// The root block.
  const BoxT& bounds() const { return bounds_; }

  /// The configured node capacity m.
  size_t capacity() const { return options_.capacity; }

  /// The configured truncation depth.
  size_t max_depth() const { return options_.max_depth; }

  /// Number of points stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of leaf nodes (the paper's "nodes": only leaves hold data and
  /// only leaves are counted in the population censuses).
  size_t LeafCount() const { return leaf_count_; }

  /// Total nodes including internal (gray) nodes.
  size_t NodeCount() const { return arena_.LiveCount(); }

  /// Pre-sizes the arena slab (and the per-tree scratch buffers) for a
  /// tree of roughly `expected_points` points, so bulk loads do not hit
  /// slab-growth reallocation storms mid-run. The node estimate is
  /// leaves ~ N / m scaled by 3x, which covers the steady-state occupancy
  /// (~0.3–0.55 m) plus internal nodes for every fanout; it is a hint
  /// only — the arena still grows on demand.
  void ReserveForPoints(size_t expected_points) {
    size_t nodes =
        expected_points / std::max<size_t>(1, options_.capacity) * 3 +
        kFanout + 1;
    arena_.Reserve(nodes);
    split_points_.reserve(options_.capacity + 1);
    split_codes_.reserve(options_.capacity + 1);
    erase_path_.reserve(std::min<size_t>(options_.max_depth + 1, 128));
  }

  /// Inserts `p`. Returns OutOfRange if p is outside the root block and
  /// AlreadyExists if an equal point is already stored.
  [[nodiscard]] Status Insert(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::OutOfRange("point outside the tree bounds");
    }
    // Iterative descent to the leaf that owns p.
    NodeIndex idx = root_;
    BoxT box = bounds_;
    size_t depth = 0;
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
      ++depth;
    }
    {
      Node& leaf = arena_.Get(idx);
      const size_t n = leaf.points.size();
      const PointT* pts = leaf.points.data();
      for (size_t i = 0; i < n; ++i) {
        if (pts[i] == p) return Status::AlreadyExists("duplicate point");
      }
      if (n < options_.capacity || depth >= options_.max_depth) {
        leaf.points.push_back(p);
        HistRemove(depth, n);
        HistAdd(depth, n + 1);
        ++size_;
        return Status::OK();
      }
      // The splitting rule fires: the block would exceed capacity. Stash
      // the m+1 points in the reusable scratch buffer; the leaf becomes an
      // internal node below.
      split_points_.clear();
      split_points_.insert(split_points_.end(), leaf.points.begin(),
                           leaf.points.end());
      split_points_.push_back(p);
      HistRemove(depth, n);
    }
    // Split cascade, iteratively: convert the current leaf into an
    // internal node with 2^D fresh empty leaves. A child can only exceed
    // capacity if it receives ALL m+1 points (capacity is m), so at most
    // one child cascades — when every point lands in the same quadrant
    // (the paper's "perhaps several times" case with probability 4^-m) —
    // and the cascade is a simple loop, not a recursion.
    for (;;) {
      std::array<NodeIndex, kFanout> ch;
      for (size_t q = 0; q < kFanout; ++q) ch[q] = arena_.Allocate();
      {
        // Re-fetch: the allocations above may have moved the slab.
        Node& node = arena_.Get(idx);
        node.is_leaf = false;
        node.points.clear();
        node.children = ch;
      }
      leaf_count_ += kFanout - 1;
      for (size_t q = 0; q < kFanout; ++q) HistAdd(depth + 1, 0);

      std::array<size_t, kFanout> counts{};
      split_codes_.clear();
      for (const PointT& pt : split_points_) {
        size_t q = box.QuadrantOf(pt);
        split_codes_.push_back(static_cast<uint8_t>(q));
        ++counts[q];
      }
      size_t sole = kFanout;  // the quadrant holding every point, if any
      for (size_t q = 0; q < kFanout; ++q) {
        if (counts[q] == split_points_.size()) sole = q;
      }
      if (sole != kFanout && depth + 1 < options_.max_depth) {
        idx = ch[sole];
        box = box.Quadrant(sole);
        ++depth;
        HistRemove(depth, 0);  // this fresh leaf becomes internal next turn
        continue;
      }
      // The points scatter (or the children sit at max_depth and absorb
      // everything): place them and settle the census.
      for (size_t i = 0; i < split_points_.size(); ++i) {
        arena_.Get(ch[split_codes_[i]]).points.push_back(split_points_[i]);
      }
      for (size_t q = 0; q < kFanout; ++q) {
        if (counts[q] != 0) {
          HistRemove(depth + 1, 0);
          HistAdd(depth + 1, counts[q]);
        }
      }
      break;
    }
    ++size_;
    return Status::OK();
  }

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const {
    if (!bounds_.Contains(p)) return false;
    NodeIndex idx = root_;
    BoxT box = bounds_;
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
    }
    const Node& leaf = arena_.Get(idx);
    const PointT* pts = leaf.points.data();
    for (size_t i = 0, n = leaf.points.size(); i < n; ++i) {
      if (pts[i] == p) return true;
    }
    return false;
  }

  /// Removes `p`. Returns NotFound if it is not stored. After a removal,
  /// any chain of internal nodes whose total occupancy fits in one leaf is
  /// collapsed, so the tree is always the minimal decomposition for its
  /// contents (insertion order independence — a defining PR property).
  [[nodiscard]] Status Erase(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::NotFound("point outside the tree bounds");
    }
    // Iterative descent recording the path for the collapse walk-back.
    erase_path_.clear();
    NodeIndex idx = root_;
    BoxT box = bounds_;
    erase_path_.push_back(idx);
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
      erase_path_.push_back(idx);
    }
    Node& leaf = arena_.Get(idx);
    const size_t n = leaf.points.size();
    size_t found = n;
    for (size_t i = 0; i < n; ++i) {
      if (leaf.points[i] == p) {
        found = i;
        break;
      }
    }
    if (found == n) return Status::NotFound("point not stored");
    leaf.points.SwapRemoveAt(found);
    const size_t depth = erase_path_.size() - 1;
    HistRemove(depth, n);
    HistAdd(depth, n - 1);
    --size_;
    // Collapse deepest-first along the recorded path. Once a level fails
    // to collapse it stays internal, so no shallower ancestor can have
    // all-leaf children either — stop there.
    for (size_t level = depth; level-- > 0;) {
      if (!TryCollapse(erase_path_[level], level)) break;
    }
    return Status::OK();
  }

  /// Returns all stored points inside `query` (half-open box semantics).
  std::vector<PointT> RangeQuery(const BoxT& query) const {
    std::vector<PointT> out;
    QueryCost cost;
    RangeQueryVisit(query, &cost, [&out](const PointT& p) {
      out.push_back(p);
    });
    return out;
  }

  /// Cost-counted orthogonal range search: calls fn(point) for every
  /// stored point inside `query` (half-open box semantics), in preorder
  /// quadrant order. Iterative (explicit stack, no recursion) and
  /// allocation-local: concurrent calls on a shared const tree are safe.
  /// A node is counted in nodes_visited iff its block intersects the
  /// query; rejected children count in pruned_subtrees.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    if (!bounds_.Intersects(query)) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        const PointT* pts = node.points.data();
        for (size_t i = 0, n = node.points.size(); i < n; ++i) {
          ++cost->points_scanned;
          if (query.Contains(pts[i])) fn(pts[i]);
        }
        continue;
      }
      // Push children in reverse so quadrant 0 pops first (preorder).
      for (size_t q = kFanout; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (child.Intersects(query)) {
          stack.push_back(WalkFrame{node.children[q], child, f.depth + 1});
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` to
  /// `value` and calls fn(point) for every stored point with
  /// point[axis] == value. Traverses exactly the blocks whose axis
  /// interval contains `value` under the half-open rule
  /// (lo[axis] <= value < hi[axis]); with random real-valued data the
  /// result set is almost surely empty and the traversal cost IS the
  /// measurement (the paper-adjacent N^((sqrt(17)-3)/2) law).
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < D);
    POPAN_DCHECK(cost != nullptr);
    if (value < bounds_.lo()[axis] || value >= bounds_.hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        const PointT* pts = node.points.data();
        for (size_t i = 0, n = node.points.size(); i < n; ++i) {
          ++cost->points_scanned;
          if (pts[i][axis] == value) fn(pts[i]);
        }
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (child.lo()[axis] <= value && value < child.hi()[axis]) {
          stack.push_back(WalkFrame{node.children[q], child, f.depth + 1});
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// Returns the stored point nearest to `target` (Euclidean metric), or
  /// NotFound on an empty tree. Ties broken arbitrarily.
  [[nodiscard]] StatusOr<PointT> Nearest(const PointT& target) const {
    if (size_ == 0) return Status::NotFound("tree is empty");
    QueryCost cost;
    std::vector<PointT> best = NearestK(target, 1, &cost);
    POPAN_CHECK(!best.empty());
    return best[0];
  }

  /// Returns the k stored points nearest to `target`, ascending by
  /// distance (fewer if the tree holds fewer than k). k must be >= 1.
  std::vector<PointT> NearestK(const PointT& target, size_t k) const {
    QueryCost cost;
    return NearestK(target, k, &cost);
  }

  /// Cost-counted k-nearest-neighbor search. Iterative depth-first
  /// descent with children pushed far-to-near, so the nearest subtree is
  /// explored first and the pruning radius (the current k-th best
  /// distance) tightens as early as possible. Subtrees cut off by the
  /// radius test — at push or at pop, as the radius shrinks between the
  /// two — count in pruned_subtrees.
  std::vector<PointT> NearestK(const PointT& target, size_t k,
                               QueryCost* cost) const {
    POPAN_CHECK(k >= 1);
    POPAN_DCHECK(cost != nullptr);
    // Max-heap of the k best (distance², point) candidates so far; the
    // heap top is the current k-th distance, the pruning radius.
    std::vector<std::pair<double, PointT>> heap;
    heap.reserve(k);
    auto heap_less = [](const std::pair<double, PointT>& a,
                        const std::pair<double, PointT>& b) {
      return a.first < b.first;
    };
    auto radius2 = [&heap, k]() {
      return heap.size() < k ? std::numeric_limits<double>::infinity()
                             : heap.front().first;
    };
    std::vector<DistFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(DistFrame{root_, bounds_,
                              bounds_.DistanceSquaredTo(target)});
    while (!stack.empty()) {
      DistFrame f = stack.back();
      stack.pop_back();
      if (f.d2 >= radius2()) {
        ++cost->pruned_subtrees;
        continue;
      }
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        const PointT* pts = node.points.data();
        for (size_t i = 0, n = node.points.size(); i < n; ++i) {
          ++cost->points_scanned;
          double d2 = pts[i].DistanceSquared(target);
          if (d2 < radius2()) {
            if (heap.size() == k) {
              std::pop_heap(heap.begin(), heap.end(), heap_less);
              heap.pop_back();
            }
            heap.emplace_back(d2, pts[i]);
            std::push_heap(heap.begin(), heap.end(), heap_less);
          }
        }
        continue;
      }
      std::array<std::pair<double, size_t>, kFanout> order;
      for (size_t q = 0; q < kFanout; ++q) {
        order[q] = {f.box.Quadrant(q).DistanceSquaredTo(target), q};
      }
      std::sort(order.begin(), order.end());
      // Far-to-near onto the LIFO stack; the nearest child pops first.
      for (size_t i = kFanout; i-- > 0;) {
        const auto& [d2, q] = order[i];
        if (d2 >= radius2()) {
          ++cost->pruned_subtrees;
          continue;
        }
        stack.push_back(DistFrame{node.children[q], f.box.Quadrant(q), d2});
      }
    }
    std::sort(heap.begin(), heap.end(), heap_less);
    std::vector<PointT> out;
    out.reserve(heap.size());
    for (const auto& [d2, p] : heap) out.push_back(p);
    return out;
  }

  /// Calls fn(box, depth, occupancy) for every leaf in preorder (children
  /// in quadrant order). Depth of the root is 0; a leaf's block area is
  /// bounds.Volume() / 2^(D*depth). Explicit-stack traversal: safe for
  /// trees of any depth.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        fn(f.box, static_cast<size_t>(f.depth), node.points.size());
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(WalkFrame{node.children[q], f.box.Quadrant(q),
                                  f.depth + 1});
      }
    }
  }

  /// Calls fn(box, depth, is_leaf, occupancy) for every node, preorder.
  template <typename Fn>
  void VisitAllNodes(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      fn(f.box, static_cast<size_t>(f.depth), node.is_leaf,
         node.points.size());
      if (node.is_leaf) continue;
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(WalkFrame{node.children[q], f.box.Quadrant(q),
                                  f.depth + 1});
      }
    }
  }

  /// Returns every stored point (in no particular order).
  std::vector<PointT> AllPoints() const {
    std::vector<PointT> out;
    out.reserve(size_);
    VisitLeavesPoints(
        [&out](const BoxT&, size_t, std::span<const PointT> pts) {
          out.insert(out.end(), pts.begin(), pts.end());
        });
    return out;
  }

  /// Calls fn(box, depth, std::span<const PointT>) for every leaf in
  /// preorder (children in quadrant order — Z order), exposing the points.
  template <typename Fn>
  void VisitLeavesPoints(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        fn(f.box, static_cast<size_t>(f.depth),
           std::span<const PointT>(node.points.data(), node.points.size()));
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(WalkFrame{node.children[q], f.box.Quadrant(q),
                                  f.depth + 1});
      }
    }
  }

  /// Snapshot of the live occupancy-by-depth histogram — the same census
  /// TakeCensus(tree) walks the tree for, but assembled in O(depths x
  /// occupancies) independent of the number of points. The histogram is
  /// maintained incrementally at every insert/erase/split/collapse, so
  /// per-step censuses cost O(1) bookkeeping per operation instead of an
  /// O(N) walk per snapshot.
  Census LiveCensus() const {
    Census census;
    for (size_t d = 0; d < live_hist_.size(); ++d) {
      const std::vector<uint64_t>& row = live_hist_[d];
      for (size_t occ = 0; occ < row.size(); ++occ) {
        if (row[occ] != 0) census.AddLeaves(occ, d, row[occ]);
      }
    }
    return census;
  }

  /// Removes all points, leaving one empty root leaf.
  void Clear() {
    arena_.Clear();
    root_ = arena_.Allocate();
    size_ = 0;
    leaf_count_ = 1;
    live_hist_.clear();
    HistAdd(0, 0);
  }

  /// Verifies structural invariants; returns Internal on violation. Used by
  /// tests and available to callers as a consistency check:
  ///  - every leaf holds at most `capacity` points unless at max_depth;
  ///  - every internal node has 2^D children and holds no points;
  ///  - every point lies inside its leaf's block;
  ///  - no internal node's subtree fits within `capacity` (minimality);
  ///  - cached size / leaf counts match reality;
  ///  - the live census histogram matches a fresh walk of the tree.
  [[nodiscard]] Status CheckInvariants() const {
    size_t points_seen = 0;
    size_t leaves_seen = 0;
    Status s = CheckRec(root_, bounds_, 0, &points_seen, &leaves_seen);
    if (!s.ok()) return s;
    if (points_seen != size_) {
      return Status::Internal("size mismatch: counted " +
                              std::to_string(points_seen) + " cached " +
                              std::to_string(size_));
    }
    if (leaves_seen != leaf_count_) {
      return Status::Internal("leaf count mismatch");
    }
    return CheckLiveHistogram();
  }

 private:
  struct Node {
    // A node is a leaf iff is_leaf; then `points` holds its contents.
    // Otherwise `children` holds 2^D arena indices.
    bool is_leaf = true;
    std::array<NodeIndex, kFanout> children = InitChildren();
    InlineBuffer<PointT, kInlineLeafCapacity> points;

    static constexpr std::array<NodeIndex, kFanout> InitChildren() {
      std::array<NodeIndex, kFanout> c{};
      for (size_t i = 0; i < kFanout; ++i) c[i] = kNullNode;
      return c;
    }
  };

  /// Explicit-stack frame for the traversal methods.
  struct WalkFrame {
    NodeIndex idx;
    BoxT box;
    uint32_t depth;
  };
  /// Frame for the best-first k-NN descent: the block's distance² to the
  /// target is computed at push time and re-checked at pop time, because
  /// the pruning radius may have shrunk in between.
  struct DistFrame {
    NodeIndex idx;
    BoxT box;
    double d2;
  };
  static constexpr size_t kWalkStackHint = 64;

  // ---- Live census bookkeeping -------------------------------------
  // live_hist_[depth][occ] = number of leaves at `depth` holding exactly
  // `occ` points, kept exact through every mutation. Rows/columns are
  // grown on demand and may retain trailing zeros after collapses;
  // LiveCensus() skips the zeros, so the snapshot matches TakeCensus.

  void HistAdd(size_t depth, size_t occ) {
    if (depth >= live_hist_.size()) live_hist_.resize(depth + 1);
    std::vector<uint64_t>& row = live_hist_[depth];
    if (occ >= row.size()) row.resize(occ + 1, 0);
    ++row[occ];
  }

  void HistRemove(size_t depth, size_t occ) {
    POPAN_DCHECK(depth < live_hist_.size() &&
                 occ < live_hist_[depth].size() &&
                 live_hist_[depth][occ] > 0)
        << "live census underflow at depth" << depth;
    --live_hist_[depth][occ];
  }

  [[nodiscard]] Status CheckLiveHistogram() const {
    std::vector<std::vector<uint64_t>> walked;
    VisitLeaves([&walked](const BoxT&, size_t depth, size_t occ) {
      if (depth >= walked.size()) walked.resize(depth + 1);
      if (occ >= walked[depth].size()) walked[depth].resize(occ + 1, 0);
      ++walked[depth][occ];
    });
    size_t depths = std::max(walked.size(), live_hist_.size());
    for (size_t d = 0; d < depths; ++d) {
      size_t occs = std::max(d < walked.size() ? walked[d].size() : 0,
                             d < live_hist_.size() ? live_hist_[d].size()
                                                   : 0);
      for (size_t occ = 0; occ < occs; ++occ) {
        uint64_t want = d < walked.size() && occ < walked[d].size()
                            ? walked[d][occ]
                            : 0;
        uint64_t have = d < live_hist_.size() && occ < live_hist_[d].size()
                            ? live_hist_[d][occ]
                            : 0;
        if (want != have) {
          return Status::Internal(
              "live census drift at depth " + std::to_string(d) +
              " occupancy " + std::to_string(occ) + ": walked " +
              std::to_string(want) + " live " + std::to_string(have));
        }
      }
    }
    return Status::OK();
  }

  /// If all children of internal node `idx` (at `depth`) are leaves and
  /// their total occupancy fits in one leaf, merge them back into `idx`.
  /// Returns true iff the node collapsed.
  bool TryCollapse(NodeIndex idx, size_t depth) {
    Node& node = arena_.Get(idx);
    POPAN_DCHECK(!node.is_leaf);
    size_t total = 0;
    for (size_t q = 0; q < kFanout; ++q) {
      const Node& child = arena_.Get(node.children[q]);
      if (!child.is_leaf) return false;
      total += child.points.size();
    }
    if (total > options_.capacity) return false;
    std::array<NodeIndex, kFanout> ch = node.children;
    node.is_leaf = true;
    node.points.clear();
    for (size_t q = 0; q < kFanout; ++q) node.children[q] = kNullNode;
    for (size_t q = 0; q < kFanout; ++q) {
      // Freeing a slot never moves the slab, so `node` stays valid.
      Node& child = arena_.Get(ch[q]);
      HistRemove(depth + 1, child.points.size());
      for (const PointT& pt : child.points) node.points.push_back(pt);
      arena_.Free(ch[q]);
    }
    HistAdd(depth, total);
    leaf_count_ -= kFanout - 1;
    return true;
  }

  [[nodiscard]] Status CheckRec(NodeIndex idx, const BoxT& box, size_t depth,
                  size_t* points_seen, size_t* leaves_seen) const {
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      ++*leaves_seen;
      *points_seen += node.points.size();
      if (node.points.size() > options_.capacity &&
          depth < options_.max_depth) {
        return Status::Internal("leaf over capacity below max depth");
      }
      for (const PointT& p : node.points) {
        if (!box.Contains(p)) {
          return Status::Internal("point " + p.ToString() +
                                  " outside its leaf block " +
                                  box.ToString());
        }
      }
      return Status::OK();
    }
    if (!node.points.empty()) {
      return Status::Internal("internal node holds points");
    }
    size_t subtree_points = 0;
    for (size_t q = 0; q < kFanout; ++q) {
      if (node.children[q] == kNullNode) {
        return Status::Internal("internal node with missing child");
      }
      size_t before = *points_seen;
      POPAN_RETURN_IF_ERROR(CheckRec(node.children[q], box.Quadrant(q),
                                     depth + 1, points_seen, leaves_seen));
      subtree_points += *points_seen - before;
    }
    // Minimality: an internal node whose whole subtree fits in a leaf
    // should have been collapsed (PR trees are canonical for a point set).
    if (subtree_points <= options_.capacity) {
      bool all_leaf_children = true;
      for (size_t q = 0; q < kFanout; ++q) {
        if (!arena_.Get(node.children[q]).is_leaf) {
          all_leaf_children = false;
          break;
        }
      }
      if (all_leaf_children) {
        return Status::Internal("non-minimal decomposition: " +
                                std::to_string(subtree_points) +
                                " points under an internal node");
      }
    }
    return Status::OK();
  }

  BoxT bounds_;
  PrTreeOptions options_;
  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
  size_t size_ = 0;
  size_t leaf_count_ = 1;
  std::vector<std::vector<uint64_t>> live_hist_;
  // Reusable scratch buffers so the insert/erase hot paths are
  // allocation-free after warm-up.
  std::vector<PointT> split_points_;
  std::vector<uint8_t> split_codes_;
  std::vector<NodeIndex> erase_path_;
};

/// Convenience aliases for the common dimensions.
using PrBintree = PrTree<1>;
using PrQuadtree = PrTree<2>;
using PrOctree = PrTree<3>;

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_PR_TREE_H_
