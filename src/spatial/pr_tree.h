#ifndef POPAN_SPATIAL_PR_TREE_H_
#define POPAN_SPATIAL_PR_TREE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/node_arena.h"
#include "util/check.h"
#include "util/status.h"
#include "util/statusor.h"

namespace popan::spatial {

/// Configuration of a generalized PR tree.
struct PrTreeOptions {
  /// Node capacity m: a leaf splits when it would hold more than this many
  /// points. m = 1 gives the simple PR quadtree of the paper's §III
  /// example; the paper's Tables 1–2 sweep m = 1…8.
  size_t capacity = 1;

  /// Depth at which splitting stops; a leaf at this depth absorbs points
  /// beyond `capacity`. The paper's implementation truncated at depth 9
  /// (the Table 3 anomaly at depth 9 is this artifact). Defaults high
  /// enough to be effectively unlimited for random real-valued data.
  size_t max_depth = 64;
};

/// The generalized PR (point-region) tree over D dimensions: a regular
/// recursive decomposition of a fixed root block into 2^D congruent
/// children ("quadrants"), splitting any block that holds more than
/// `capacity` points. D = 1 is a bintree, D = 2 the PR quadtree the paper
/// analyzes, D = 3 a PR octree.
///
/// Points are unique: inserting a duplicate returns AlreadyExists (with
/// real-valued random data duplicates are a measure-zero event; the PR
/// splitting rule counts distinct points).
///
/// The tree exposes exactly what the paper's experiments need —
/// VisitLeaves for taking population censuses — plus the standard query
/// operations (point lookup, orthogonal range query, nearest neighbour) a
/// library user expects.
template <size_t D>
class PrTree {
 public:
  using PointT = geo::Point<D>;
  using BoxT = geo::Box<D>;
  static constexpr size_t kFanout = size_t{1} << D;

  /// Creates an empty tree over the root block `bounds`.
  PrTree(const BoxT& bounds, const PrTreeOptions& options = {})
      : bounds_(bounds), options_(options) {
    POPAN_CHECK(options_.capacity >= 1) << "capacity must be at least 1";
    root_ = arena_.Allocate();
  }

  PrTree(const PrTree&) = default;
  PrTree& operator=(const PrTree&) = default;
  PrTree(PrTree&&) noexcept = default;
  PrTree& operator=(PrTree&&) noexcept = default;

  /// The root block.
  const BoxT& bounds() const { return bounds_; }

  /// The configured node capacity m.
  size_t capacity() const { return options_.capacity; }

  /// The configured truncation depth.
  size_t max_depth() const { return options_.max_depth; }

  /// Number of points stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of leaf nodes (the paper's "nodes": only leaves hold data and
  /// only leaves are counted in the population censuses).
  size_t LeafCount() const { return leaf_count_; }

  /// Total nodes including internal (gray) nodes.
  size_t NodeCount() const { return arena_.LiveCount(); }

  /// Inserts `p`. Returns OutOfRange if p is outside the root block and
  /// AlreadyExists if an equal point is already stored.
  Status Insert(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::OutOfRange("point outside the tree bounds");
    }
    Status s = InsertRec(root_, bounds_, 0, p);
    if (s.ok()) ++size_;
    return s;
  }

  /// True iff an equal point is stored.
  bool Contains(const PointT& p) const {
    if (!bounds_.Contains(p)) return false;
    NodeIndex idx = root_;
    BoxT box = bounds_;
    while (!arena_.Get(idx).is_leaf) {
      size_t q = box.QuadrantOf(p);
      idx = arena_.Get(idx).children[q];
      box = box.Quadrant(q);
    }
    const auto& pts = arena_.Get(idx).points;
    return std::find(pts.begin(), pts.end(), p) != pts.end();
  }

  /// Removes `p`. Returns NotFound if it is not stored. After a removal,
  /// any chain of internal nodes whose total occupancy fits in one leaf is
  /// collapsed, so the tree is always the minimal decomposition for its
  /// contents (insertion order independence — a defining PR property).
  Status Erase(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::NotFound("point outside the tree bounds");
    }
    Status s = EraseRec(root_, bounds_, p);
    if (s.ok()) --size_;
    return s;
  }

  /// Returns all stored points inside `query` (half-open box semantics).
  std::vector<PointT> RangeQuery(const BoxT& query) const {
    std::vector<PointT> out;
    RangeRec(root_, bounds_, query, &out);
    return out;
  }

  /// Returns the stored point nearest to `target` (Euclidean metric), or
  /// NotFound on an empty tree. Ties broken arbitrarily.
  StatusOr<PointT> Nearest(const PointT& target) const {
    if (size_ == 0) return Status::NotFound("tree is empty");
    PointT best;
    double best_d2 = std::numeric_limits<double>::infinity();
    NearestRec(root_, bounds_, target, &best, &best_d2);
    return best;
  }

  /// Returns the k stored points nearest to `target`, ascending by
  /// distance (fewer if the tree holds fewer than k). k must be >= 1.
  std::vector<PointT> NearestK(const PointT& target, size_t k) const {
    POPAN_CHECK(k >= 1);
    // Max-heap of the k best (distance², point) candidates so far; the
    // heap top is the current k-th distance, the pruning radius.
    std::vector<std::pair<double, PointT>> heap;
    NearestKRec(root_, bounds_, target, k, &heap);
    std::sort(heap.begin(), heap.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<PointT> out;
    out.reserve(heap.size());
    for (const auto& [d2, p] : heap) out.push_back(p);
    return out;
  }

  /// Calls fn(box, depth, occupancy) for every leaf. Depth of the root
  /// is 0; a leaf's block area is bounds.Volume() / 2^(D*depth).
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    VisitLeavesRec(root_, bounds_, 0, fn);
  }

  /// Calls fn(box, depth, is_leaf, occupancy) for every node, preorder.
  template <typename Fn>
  void VisitAllNodes(Fn fn) const {
    VisitAllRec(root_, bounds_, 0, fn);
  }

  /// Returns every stored point (in no particular order).
  std::vector<PointT> AllPoints() const {
    std::vector<PointT> out;
    out.reserve(size_);
    VisitLeavesPoints(
        [&out](const BoxT&, size_t, const std::vector<PointT>& pts) {
          out.insert(out.end(), pts.begin(), pts.end());
        });
    return out;
  }

  /// Calls fn(box, depth, points) for every leaf, exposing the points.
  template <typename Fn>
  void VisitLeavesPoints(Fn fn) const {
    VisitLeavesPointsRec(root_, bounds_, 0, fn);
  }

  /// Removes all points, leaving one empty root leaf.
  void Clear() {
    arena_.Clear();
    root_ = arena_.Allocate();
    size_ = 0;
    leaf_count_ = 1;
  }

  /// Verifies structural invariants; returns Internal on violation. Used by
  /// tests and available to callers as a consistency check:
  ///  - every leaf holds at most `capacity` points unless at max_depth;
  ///  - every internal node has 2^D children and holds no points;
  ///  - every point lies inside its leaf's block;
  ///  - no internal node's subtree fits within `capacity` (minimality);
  ///  - cached size / leaf counts match reality.
  Status CheckInvariants() const {
    size_t points_seen = 0;
    size_t leaves_seen = 0;
    Status s = CheckRec(root_, bounds_, 0, &points_seen, &leaves_seen);
    if (!s.ok()) return s;
    if (points_seen != size_) {
      return Status::Internal("size mismatch: counted " +
                              std::to_string(points_seen) + " cached " +
                              std::to_string(size_));
    }
    if (leaves_seen != leaf_count_) {
      return Status::Internal("leaf count mismatch");
    }
    return Status::OK();
  }

 private:
  struct Node {
    // A node is a leaf iff is_leaf; then `points` holds its contents.
    // Otherwise `children` holds 2^D arena indices.
    bool is_leaf = true;
    std::array<NodeIndex, kFanout> children = InitChildren();
    std::vector<PointT> points;

    static constexpr std::array<NodeIndex, kFanout> InitChildren() {
      std::array<NodeIndex, kFanout> c{};
      for (size_t i = 0; i < kFanout; ++i) c[i] = kNullNode;
      return c;
    }
  };

  Status InsertRec(NodeIndex idx, const BoxT& box, size_t depth,
                   const PointT& p) {
    Node& node = arena_.Get(idx);
    if (!node.is_leaf) {
      size_t q = box.QuadrantOf(p);
      return InsertRec(node.children[q], box.Quadrant(q), depth + 1, p);
    }
    if (std::find(node.points.begin(), node.points.end(), p) !=
        node.points.end()) {
      return Status::AlreadyExists("duplicate point");
    }
    if (node.points.size() < options_.capacity ||
        depth >= options_.max_depth) {
      node.points.push_back(p);
      return Status::OK();
    }
    // The splitting rule fires: the block would exceed capacity. Convert
    // the leaf into an internal node with 2^D fresh empty leaves and
    // reinsert its m points plus the new one; if they all land in one
    // quadrant, that child splits again through the same recursion (the
    // paper's "perhaps several times" case with probability 4^-m).
    std::vector<PointT> to_place = std::move(node.points);
    to_place.push_back(p);
    // `node` is invalidated by the allocations below; go through the arena.
    {
      std::array<NodeIndex, kFanout> children;
      for (size_t q = 0; q < kFanout; ++q) children[q] = arena_.Allocate();
      Node& n = arena_.Get(idx);
      n.is_leaf = false;
      n.points.clear();
      n.children = children;
      leaf_count_ += kFanout - 1;
    }
    for (const PointT& pt : to_place) {
      size_t q = box.QuadrantOf(pt);
      Status s = InsertRec(arena_.Get(idx).children[q], box.Quadrant(q),
                           depth + 1, pt);
      POPAN_CHECK(s.ok()) << "redistribution failed:" << s.ToString();
    }
    return Status::OK();
  }

  Status EraseRec(NodeIndex idx, const BoxT& box, const PointT& p) {
    Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      auto it = std::find(node.points.begin(), node.points.end(), p);
      if (it == node.points.end()) {
        return Status::NotFound("point not stored");
      }
      // Order within a leaf is immaterial: swap-and-pop.
      *it = node.points.back();
      node.points.pop_back();
      return Status::OK();
    }
    size_t q = box.QuadrantOf(p);
    POPAN_RETURN_IF_ERROR(
        EraseRec(node.children[q], box.Quadrant(q), p));
    TryCollapse(idx);
    return Status::OK();
  }

  /// If all children of internal node `idx` are leaves and their total
  /// occupancy fits in one leaf, merge them back into `idx`.
  void TryCollapse(NodeIndex idx) {
    Node& node = arena_.Get(idx);
    if (node.is_leaf) return;
    size_t total = 0;
    for (size_t q = 0; q < kFanout; ++q) {
      const Node& child = arena_.Get(node.children[q]);
      if (!child.is_leaf) return;
      total += child.points.size();
    }
    if (total > options_.capacity) return;
    std::vector<PointT> merged;
    merged.reserve(total);
    for (size_t q = 0; q < kFanout; ++q) {
      NodeIndex child_idx = node.children[q];
      auto& child_points = arena_.Get(child_idx).points;
      merged.insert(merged.end(), child_points.begin(), child_points.end());
      arena_.Free(child_idx);
    }
    Node& parent = arena_.Get(idx);
    parent.is_leaf = true;
    parent.points = std::move(merged);
    for (size_t q = 0; q < kFanout; ++q) parent.children[q] = kNullNode;
    leaf_count_ -= kFanout - 1;
  }

  void RangeRec(NodeIndex idx, const BoxT& box, const BoxT& query,
                std::vector<PointT>* out) const {
    if (!box.Intersects(query)) return;
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      for (const PointT& p : node.points) {
        if (query.Contains(p)) out->push_back(p);
      }
      return;
    }
    for (size_t q = 0; q < kFanout; ++q) {
      RangeRec(node.children[q], box.Quadrant(q), query, out);
    }
  }

  void NearestRec(NodeIndex idx, const BoxT& box, const PointT& target,
                  PointT* best, double* best_d2) const {
    if (box.DistanceSquaredTo(target) >= *best_d2) return;
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      for (const PointT& p : node.points) {
        double d2 = p.DistanceSquared(target);
        if (d2 < *best_d2) {
          *best_d2 = d2;
          *best = p;
        }
      }
      return;
    }
    // Visit children nearest-first so pruning kicks in early.
    std::array<std::pair<double, size_t>, kFanout> order;
    for (size_t q = 0; q < kFanout; ++q) {
      order[q] = {box.Quadrant(q).DistanceSquaredTo(target), q};
    }
    std::sort(order.begin(), order.end());
    for (const auto& [d2, q] : order) {
      if (d2 >= *best_d2) break;
      NearestRec(node.children[q], box.Quadrant(q), target, best, best_d2);
    }
  }

  void NearestKRec(NodeIndex idx, const BoxT& box, const PointT& target,
                   size_t k,
                   std::vector<std::pair<double, PointT>>* heap) const {
    auto radius2 = [&]() {
      return heap->size() < k ? std::numeric_limits<double>::infinity()
                              : heap->front().first;
    };
    auto heap_less = [](const std::pair<double, PointT>& a,
                        const std::pair<double, PointT>& b) {
      return a.first < b.first;
    };
    if (box.DistanceSquaredTo(target) >= radius2()) return;
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      for (const PointT& p : node.points) {
        double d2 = p.DistanceSquared(target);
        if (d2 < radius2()) {
          if (heap->size() == k) {
            std::pop_heap(heap->begin(), heap->end(), heap_less);
            heap->pop_back();
          }
          heap->emplace_back(d2, p);
          std::push_heap(heap->begin(), heap->end(), heap_less);
        }
      }
      return;
    }
    std::array<std::pair<double, size_t>, kFanout> order;
    for (size_t q = 0; q < kFanout; ++q) {
      order[q] = {box.Quadrant(q).DistanceSquaredTo(target), q};
    }
    std::sort(order.begin(), order.end());
    for (const auto& [d2, q] : order) {
      if (d2 >= radius2()) break;
      NearestKRec(node.children[q], box.Quadrant(q), target, k, heap);
    }
  }

  template <typename Fn>
  void VisitLeavesRec(NodeIndex idx, const BoxT& box, size_t depth,
                      Fn& fn) const {
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      fn(box, depth, node.points.size());
      return;
    }
    for (size_t q = 0; q < kFanout; ++q) {
      VisitLeavesRec(node.children[q], box.Quadrant(q), depth + 1, fn);
    }
  }

  template <typename Fn>
  void VisitLeavesPointsRec(NodeIndex idx, const BoxT& box, size_t depth,
                            Fn& fn) const {
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      fn(box, depth, node.points);
      return;
    }
    for (size_t q = 0; q < kFanout; ++q) {
      VisitLeavesPointsRec(node.children[q], box.Quadrant(q), depth + 1, fn);
    }
  }

  template <typename Fn>
  void VisitAllRec(NodeIndex idx, const BoxT& box, size_t depth,
                   Fn& fn) const {
    const Node& node = arena_.Get(idx);
    fn(box, depth, node.is_leaf, node.points.size());
    if (node.is_leaf) return;
    for (size_t q = 0; q < kFanout; ++q) {
      VisitAllRec(node.children[q], box.Quadrant(q), depth + 1, fn);
    }
  }

  Status CheckRec(NodeIndex idx, const BoxT& box, size_t depth,
                  size_t* points_seen, size_t* leaves_seen) const {
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      ++*leaves_seen;
      *points_seen += node.points.size();
      if (node.points.size() > options_.capacity &&
          depth < options_.max_depth) {
        return Status::Internal("leaf over capacity below max depth");
      }
      for (const PointT& p : node.points) {
        if (!box.Contains(p)) {
          return Status::Internal("point " + p.ToString() +
                                  " outside its leaf block " +
                                  box.ToString());
        }
      }
      return Status::OK();
    }
    if (!node.points.empty()) {
      return Status::Internal("internal node holds points");
    }
    size_t subtree_points = 0;
    for (size_t q = 0; q < kFanout; ++q) {
      if (node.children[q] == kNullNode) {
        return Status::Internal("internal node with missing child");
      }
      size_t before = *points_seen;
      POPAN_RETURN_IF_ERROR(CheckRec(node.children[q], box.Quadrant(q),
                                     depth + 1, points_seen, leaves_seen));
      subtree_points += *points_seen - before;
    }
    // Minimality: an internal node whose whole subtree fits in a leaf
    // should have been collapsed (PR trees are canonical for a point set).
    if (subtree_points <= options_.capacity) {
      bool all_leaf_children = true;
      for (size_t q = 0; q < kFanout; ++q) {
        if (!arena_.Get(node.children[q]).is_leaf) {
          all_leaf_children = false;
          break;
        }
      }
      if (all_leaf_children) {
        return Status::Internal("non-minimal decomposition: " +
                                std::to_string(subtree_points) +
                                " points under an internal node");
      }
    }
    return Status::OK();
  }

  BoxT bounds_;
  PrTreeOptions options_;
  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
  size_t size_ = 0;
  size_t leaf_count_ = 1;
};

/// Convenience aliases for the common dimensions.
using PrBintree = PrTree<1>;
using PrQuadtree = PrTree<2>;
using PrOctree = PrTree<3>;

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_PR_TREE_H_
