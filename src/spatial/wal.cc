#include "spatial/wal.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>
#include <vector>

#include "util/check.h"
#include "util/text_io.h"

namespace popan::spatial {

namespace {

constexpr char kMagic[] = "popan-wal";
constexpr char kVersion[] = "v1";

/// Everything ReplayWal learns from a header line.
struct WalHeader {
  PrTreeOptions options;
  geo::Box2 bounds{geo::Point2(0, 0), geo::Point2(1, 1)};
  uint64_t anchor = 0;
  size_t bytes = 0;  ///< raw bytes the header line occupied
};

[[nodiscard]] StatusOr<WalHeader> ParseHeader(std::istream* in) {
  std::vector<std::string> tokens;
  size_t consumed = 0;
  if (!ReadTokens(in, &tokens, &consumed) || in->eof() ||
      (tokens.size() != 8 && tokens.size() != 9) || tokens[0] != kMagic ||
      tokens[1] != kVersion) {
    return Status::InvalidArgument("missing or malformed WAL header");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t capacity, ParseU64(tokens[2]));
  POPAN_ASSIGN_OR_RETURN(uint64_t max_depth, ParseU64(tokens[3]));
  POPAN_ASSIGN_OR_RETURN(double lox, ParseDouble(tokens[4]));
  POPAN_ASSIGN_OR_RETURN(double loy, ParseDouble(tokens[5]));
  POPAN_ASSIGN_OR_RETURN(double hix, ParseDouble(tokens[6]));
  POPAN_ASSIGN_OR_RETURN(double hiy, ParseDouble(tokens[7]));
  if (capacity == 0 || !(lox < hix) || !(loy < hiy)) {
    return Status::InvalidArgument("degenerate WAL header");
  }
  WalHeader header;
  // Headers written before anchoring existed have 8 tokens; they are
  // anchored at 0 by construction.
  if (tokens.size() == 9) {
    POPAN_ASSIGN_OR_RETURN(header.anchor, ParseU64(tokens[8]));
  }
  header.options.capacity = static_cast<size_t>(capacity);
  header.options.max_depth = static_cast<size_t>(max_depth);
  header.bounds =
      geo::Box2(geo::Point2(lox, loy), geo::Point2(hix, hiy));
  header.bytes = consumed;
  return header;
}

/// The shared replay core: applies intact records on top of `recovery`'s
/// tree, which the caller has seeded with the log's base state.
void ReplayRecords(std::istream* in, WalRecovery* recovery) {
  std::vector<std::string> tokens;
  uint64_t expected_seq = recovery->anchor + 1;
  size_t pending = 0;  // blank-line bytes awaiting the next intact record
  for (;;) {
    size_t consumed = 0;
    if (!ReadTokens(in, &tokens, &consumed)) break;
    auto truncate = [recovery](std::string reason) {
      recovery->truncated_tail = true;
      recovery->truncation_reason = std::move(reason);
    };
    if (tokens.empty()) {  // blank line: harmless
      pending += consumed;
      continue;
    }
    if (in->eof()) {
      // The line was not newline-terminated: a record is only durable
      // once its terminator hit the stream, however plausible the bytes
      // look — the classic torn final write.
      truncate("torn record (no terminator)");
      break;
    }
    if (tokens.size() != 5) {
      truncate("short record (torn write)");
      break;
    }
    StatusOr<uint64_t> seq = ParseU64(tokens[0]);
    StatusOr<double> x = ParseDouble(tokens[2]);
    StatusOr<double> y = ParseDouble(tokens[3]);
    StatusOr<uint64_t> checksum = ParseU64(tokens[4]);
    if (!seq.ok() || !x.ok() || !y.ok() || !checksum.ok() ||
        tokens[1].size() != 1) {
      truncate("unparsable record");
      break;
    }
    char op = tokens[1][0];
    if (op != 'I' && op != 'E') {
      truncate("unknown operation");
      break;
    }
    if (seq.value() != expected_seq) {
      truncate("sequence gap");
      break;
    }
    if (WalChecksum(seq.value(), op, x.value(), y.value()) !=
        checksum.value()) {
      truncate("checksum mismatch");
      break;
    }
    geo::Point2 p(x.value(), y.value());
    Status applied = op == 'I' ? recovery->tree.Insert(p)
                               : recovery->tree.Erase(p);
    if (!applied.ok()) {
      truncate("record does not apply: " + applied.ToString());
      break;
    }
    recovery->last_sequence = seq.value();
    ++recovery->records_applied;
    ++expected_seq;
    recovery->valid_bytes += pending + consumed;
    pending = 0;
  }
  recovery->next_sequence = recovery->last_sequence + 1;
}

}  // namespace

uint64_t WalChecksum(uint64_t sequence, char op, double x, double y) {
  // Hash the exact binary content, not the decimal rendering, so the
  // checksum is immune to formatting differences.
  unsigned char buffer[8 + 1 + 8 + 8];
  std::memcpy(buffer, &sequence, 8);
  buffer[8] = static_cast<unsigned char>(op);
  std::memcpy(buffer + 9, &x, 8);
  std::memcpy(buffer + 17, &y, 8);
  return Fnv1a(buffer, sizeof(buffer));
}

WalWriter::WalWriter(std::ostream* out, const geo::Box2& bounds,
                     const PrTreeOptions& options, uint64_t anchor)
    : out_(out), bounds_(bounds), next_sequence_(anchor + 1) {
  POPAN_CHECK(out_ != nullptr);
  StreamFormatGuard guard(out_);
  *out_ << kMagic << " " << kVersion << " " << options.capacity << " "
        << options.max_depth << " " << std::setprecision(17)
        << bounds.lo().x() << " " << bounds.lo().y() << " "
        << bounds.hi().x() << " " << bounds.hi().y() << " " << anchor
        << "\n";
}

WalWriter::WalWriter(std::ostream* out, const geo::Box2& bounds,
                     ResumeAt resume)
    : out_(out), bounds_(bounds), next_sequence_(resume.next_sequence) {
  POPAN_CHECK(out_ != nullptr);
  POPAN_CHECK(resume.next_sequence >= 1);
}

StatusOr<uint64_t> WalWriter::Append(char op, const geo::Point2& p) {
  // Validate at append time: a record the reader would reject must never
  // reach the log, where it would silently truncate everything after it.
  if (!std::isfinite(p.x()) || !std::isfinite(p.y())) {
    return Status::InvalidArgument("non-finite coordinate in WAL record");
  }
  if (!bounds_.Contains(p)) {
    return Status::OutOfRange("point " + p.ToString() +
                              " outside the logged bounds");
  }
  uint64_t seq = next_sequence_++;
  StreamFormatGuard guard(out_);
  *out_ << seq << " " << op << " " << std::setprecision(17) << p.x() << " "
        << p.y() << " " << WalChecksum(seq, op, p.x(), p.y()) << "\n";
  out_->flush();
  return seq;
}

StatusOr<uint64_t> WalWriter::LogInsert(const geo::Point2& p) {
  return Append('I', p);
}

StatusOr<uint64_t> WalWriter::LogErase(const geo::Point2& p) {
  return Append('E', p);
}

[[nodiscard]] StatusOr<WalRecovery> ReplayWal(std::istream* in) {
  POPAN_ASSIGN_OR_RETURN(WalHeader header, ParseHeader(in));
  if (header.anchor != 0) {
    return Status::InvalidArgument(
        "log anchored at sequence " + std::to_string(header.anchor) +
        " requires its snapshot; use the base-tree overload");
  }
  WalRecovery recovery{PrTree<2>(header.bounds, header.options),
                       0, 0, 0, 1, header.bytes, false, ""};
  ReplayRecords(in, &recovery);
  return recovery;
}

[[nodiscard]] StatusOr<WalRecovery> ReplayWal(const std::string& text) {
  std::istringstream in(text);
  return ReplayWal(&in);
}

[[nodiscard]]
StatusOr<WalRecovery> ReplayWal(std::istream* in, const PrTree<2>& base,
                                uint64_t base_sequence) {
  POPAN_ASSIGN_OR_RETURN(WalHeader header, ParseHeader(in));
  if (header.anchor != base_sequence) {
    return Status::FailedPrecondition(
        "log anchored at sequence " + std::to_string(header.anchor) +
        " does not continue base state at sequence " +
        std::to_string(base_sequence));
  }
  if (header.options.capacity != base.capacity() ||
      header.options.max_depth != base.max_depth() ||
      header.bounds != base.bounds()) {
    return Status::FailedPrecondition(
        "log geometry/options do not match the base tree");
  }
  WalRecovery recovery{base, header.anchor, 0, header.anchor,
                       header.anchor + 1, header.bytes, false, ""};
  ReplayRecords(in, &recovery);
  return recovery;
}

[[nodiscard]] StatusOr<WalRecovery> ReplayWal(const std::string& text,
                                const PrTree<2>& base,
                                uint64_t base_sequence) {
  std::istringstream in(text);
  return ReplayWal(&in, base, base_sequence);
}

[[nodiscard]] StatusOr<std::ofstream> ResumeWalFile(const std::string& path,
                                                    size_t valid_bytes) {
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("WAL file not readable: " + path + ": " +
                            ec.message());
  }
  if (valid_bytes > size) {
    return Status::InvalidArgument(
        "valid_bytes " + std::to_string(valid_bytes) +
        " exceeds WAL file size " + std::to_string(size) +
        " — recovery result from a different file?");
  }
  // Cut the torn tail off BEFORE the first append: a torn record has no
  // trailing newline, so appending into the untruncated file would glue
  // the first resumed record onto the partial line.
  if (valid_bytes < size) {
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) {
      return Status::Internal("cannot truncate WAL file to its intact " +
                              std::string("prefix: ") + ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out.is_open()) {
    return Status::Internal("cannot reopen WAL file for append: " + path);
  }
  return out;
}

}  // namespace popan::spatial
