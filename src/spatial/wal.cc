#include "spatial/wal.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace popan::spatial {

namespace {

constexpr char kMagic[] = "popan-wal";
constexpr char kVersion[] = "v1";

/// FNV-1a over a byte buffer.
uint64_t Fnv1a(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

StatusOr<double> ParseDouble(const std::string& s) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("bad real number: " + s);
  }
  return value;
}

StatusOr<uint64_t> ParseU64(const std::string& s) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: " + s);
  }
  return value;
}

bool ReadTokens(std::istream* in, std::vector<std::string>* tokens) {
  std::string line;
  if (!std::getline(*in, line)) return false;
  tokens->clear();
  std::istringstream ls(line);
  std::string token;
  while (ls >> token) tokens->push_back(token);
  return true;
}

}  // namespace

uint64_t WalChecksum(uint64_t sequence, char op, double x, double y) {
  // Hash the exact binary content, not the decimal rendering, so the
  // checksum is immune to formatting differences.
  unsigned char buffer[8 + 1 + 8 + 8];
  std::memcpy(buffer, &sequence, 8);
  buffer[8] = static_cast<unsigned char>(op);
  std::memcpy(buffer + 9, &x, 8);
  std::memcpy(buffer + 17, &y, 8);
  return Fnv1a(buffer, sizeof(buffer));
}

WalWriter::WalWriter(std::ostream* out, const geo::Box2& bounds,
                     const PrTreeOptions& options)
    : out_(out) {
  POPAN_CHECK(out_ != nullptr);
  *out_ << kMagic << " " << kVersion << " " << options.capacity << " "
        << options.max_depth << " " << std::setprecision(17)
        << bounds.lo().x() << " " << bounds.lo().y() << " "
        << bounds.hi().x() << " " << bounds.hi().y() << "\n";
}

void WalWriter::Append(char op, const geo::Point2& p) {
  uint64_t seq = next_sequence_++;
  *out_ << seq << " " << op << " " << std::setprecision(17) << p.x() << " "
        << p.y() << " " << WalChecksum(seq, op, p.x(), p.y()) << "\n";
  out_->flush();
}

uint64_t WalWriter::LogInsert(const geo::Point2& p) {
  uint64_t seq = next_sequence_;
  Append('I', p);
  return seq;
}

uint64_t WalWriter::LogErase(const geo::Point2& p) {
  uint64_t seq = next_sequence_;
  Append('E', p);
  return seq;
}

StatusOr<WalRecovery> ReplayWal(std::istream* in) {
  std::vector<std::string> tokens;
  if (!ReadTokens(in, &tokens) || tokens.size() != 8 ||
      tokens[0] != kMagic || tokens[1] != kVersion) {
    return Status::InvalidArgument("missing or malformed WAL header");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t capacity, ParseU64(tokens[2]));
  POPAN_ASSIGN_OR_RETURN(uint64_t max_depth, ParseU64(tokens[3]));
  POPAN_ASSIGN_OR_RETURN(double lox, ParseDouble(tokens[4]));
  POPAN_ASSIGN_OR_RETURN(double loy, ParseDouble(tokens[5]));
  POPAN_ASSIGN_OR_RETURN(double hix, ParseDouble(tokens[6]));
  POPAN_ASSIGN_OR_RETURN(double hiy, ParseDouble(tokens[7]));
  if (capacity == 0 || !(lox < hix) || !(loy < hiy)) {
    return Status::InvalidArgument("degenerate WAL header");
  }
  PrTreeOptions options;
  options.capacity = static_cast<size_t>(capacity);
  options.max_depth = static_cast<size_t>(max_depth);
  geo::Box2 bounds(geo::Point2(lox, loy), geo::Point2(hix, hiy));

  WalRecovery recovery{PrTree<2>(bounds, options), 0, 0, false, ""};
  uint64_t expected_seq = 1;
  while (ReadTokens(in, &tokens)) {
    auto truncate = [&recovery](std::string reason) {
      recovery.truncated_tail = true;
      recovery.truncation_reason = std::move(reason);
    };
    if (tokens.empty()) continue;  // blank line: harmless
    if (tokens.size() != 5) {
      truncate("short record (torn write)");
      break;
    }
    StatusOr<uint64_t> seq = ParseU64(tokens[0]);
    StatusOr<double> x = ParseDouble(tokens[2]);
    StatusOr<double> y = ParseDouble(tokens[3]);
    StatusOr<uint64_t> checksum = ParseU64(tokens[4]);
    if (!seq.ok() || !x.ok() || !y.ok() || !checksum.ok() ||
        tokens[1].size() != 1) {
      truncate("unparsable record");
      break;
    }
    char op = tokens[1][0];
    if (op != 'I' && op != 'E') {
      truncate("unknown operation");
      break;
    }
    if (seq.value() != expected_seq) {
      truncate("sequence gap");
      break;
    }
    if (WalChecksum(seq.value(), op, x.value(), y.value()) !=
        checksum.value()) {
      truncate("checksum mismatch");
      break;
    }
    geo::Point2 p(x.value(), y.value());
    Status applied = op == 'I' ? recovery.tree.Insert(p)
                               : recovery.tree.Erase(p);
    if (!applied.ok()) {
      truncate("record does not apply: " + applied.ToString());
      break;
    }
    recovery.last_sequence = seq.value();
    ++recovery.records_applied;
    ++expected_seq;
  }
  return recovery;
}

StatusOr<WalRecovery> ReplayWal(const std::string& text) {
  std::istringstream in(text);
  return ReplayWal(&in);
}

}  // namespace popan::spatial
