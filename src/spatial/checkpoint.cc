#include "spatial/checkpoint.h"

#include <sstream>
#include <utility>

namespace popan::spatial {

[[nodiscard]]
StatusOr<WalWriter> Checkpoint(const PrTree<2>& tree, uint64_t last_sequence,
                               std::ostream* snapshot_out,
                               std::ostream* wal_out) {
  POPAN_RETURN_IF_ERROR(WriteSnapshot(tree, last_sequence, snapshot_out));
  PrTreeOptions options;
  options.capacity = tree.capacity();
  options.max_depth = tree.max_depth();
  return WalWriter(wal_out, tree.bounds(), options, last_sequence);
}

[[nodiscard]]
StatusOr<WalWriter> Checkpoint(const SnapshotView<2>& snapshot,
                               std::ostream* snapshot_out,
                               std::ostream* wal_out) {
  PrTreeOptions options;
  options.capacity = snapshot.capacity();
  options.max_depth = snapshot.max_depth();
  // Materialize the frozen version as a plain PrTree: the PR splitting
  // rule makes the decomposition a function of the point set alone, so
  // re-inserting the snapshot's points reproduces the exact structure.
  PrTree<2> tree(snapshot.bounds(), options);
  for (const geo::Point2& p : snapshot.AllPoints()) {
    POPAN_RETURN_IF_ERROR(tree.Insert(p));
  }
  if (!(tree.LiveCensus() == snapshot.LiveCensus())) {
    return Status::Internal(
        "materialized checkpoint census diverges from the pinned snapshot");
  }
  return Checkpoint(tree, snapshot.sequence(), snapshot_out, wal_out);
}

[[nodiscard]] StatusOr<RecoverResult> Recover(std::istream* snapshot_in,
                                std::istream* wal_in) {
  POPAN_ASSIGN_OR_RETURN(PrTreeSnapshot snapshot,
                         ReadPrTreeSnapshot(snapshot_in));
  RecoverResult result{std::move(snapshot.tree), snapshot.sequence,
                       snapshot.sequence, snapshot.sequence + 1,
                       0, 0, false, ""};
  StatusOr<WalRecovery> replay =
      ReplayWal(wal_in, result.tree, snapshot.sequence);
  if (replay.ok()) {
    result.tree = std::move(replay.value().tree);
    result.last_sequence = replay->last_sequence;
    result.next_sequence = replay->next_sequence;
    result.records_applied = replay->records_applied;
    result.wal_valid_bytes = replay->valid_bytes;
    result.truncated_tail = replay->truncated_tail;
    result.truncation_reason = replay->truncation_reason;
  } else if (replay.status().code() == StatusCode::kInvalidArgument) {
    // The crash tore the log's header write: the snapshot alone is the
    // recovered state, and the log must be rewritten from scratch.
    result.truncated_tail = true;
    result.truncation_reason =
        "unusable WAL header: " + replay.status().ToString();
  } else {
    return replay.status();  // wrong snapshot/log pairing
  }
  // Cross-check before handing the tree back: CheckInvariants verifies
  // the structure, the cached counters, and that the O(1)-maintained
  // LiveCensus matches a fresh walk — a recovery must never return a
  // silently wrong tree.
  Status invariants = result.tree.CheckInvariants();
  if (!invariants.ok()) {
    return Status::Internal("recovered tree fails invariants: " +
                            invariants.ToString());
  }
  return result;
}

[[nodiscard]] StatusOr<RecoverResult> Recover(const std::string& snapshot,
                                const std::string& wal) {
  std::istringstream snapshot_in(snapshot);
  std::istringstream wal_in(wal);
  return Recover(&snapshot_in, &wal_in);
}

}  // namespace popan::spatial
