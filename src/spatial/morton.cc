#include "spatial/morton.h"

#include "util/check.h"

namespace popan::spatial {

namespace {

/// Bit position (from 0 = least significant) of the 2-bit field holding
/// the quadrant choice at path position `level` (0-based from the root).
int FieldShift(int level) { return 2 * (MortonCode::kMaxDepth - 1 - level); }

}  // namespace

MortonCode ChildCode(const MortonCode& parent, size_t quadrant) {
  POPAN_CHECK(parent.depth < MortonCode::kMaxDepth);
  POPAN_CHECK(quadrant < 4);
  MortonCode child;
  child.bits = parent.bits |
               (static_cast<uint64_t>(quadrant)
                << FieldShift(parent.depth));
  child.depth = parent.depth + 1;
  return child;
}

MortonCode ParentCode(const MortonCode& code) {
  POPAN_CHECK(code.depth > 0) << "root has no parent";
  MortonCode parent;
  parent.depth = code.depth - 1;
  parent.bits =
      code.bits & ~(uint64_t{3} << FieldShift(parent.depth));
  return parent;
}

MortonCode CodeOfPoint(const geo::Box2& root, const geo::Point2& p,
                       uint8_t depth) {
  POPAN_CHECK(root.Contains(p));
  POPAN_CHECK(depth <= MortonCode::kMaxDepth);
  MortonCode code;
  geo::Box2 box = root;
  for (uint8_t level = 0; level < depth; ++level) {
    size_t q = box.QuadrantOf(p);
    code = ChildCode(code, q);
    box = box.Quadrant(q);
  }
  return code;
}

geo::Box2 BlockOfCode(const geo::Box2& root, const MortonCode& code) {
  geo::Box2 box = root;
  for (int level = 0; level < code.depth; ++level) {
    size_t q = (code.bits >> FieldShift(level)) & 3;
    box = box.Quadrant(q);
  }
  return box;
}

bool IsAncestorOrSelf(const MortonCode& ancestor, const MortonCode& code) {
  if (ancestor.depth > code.depth) return false;
  if (ancestor.depth == 0) return true;
  // Compare the leading `ancestor.depth` quadrant fields.
  int keep_bits = 2 * ancestor.depth;
  uint64_t mask = ~uint64_t{0}
                  << (2 * MortonCode::kMaxDepth - keep_bits);
  return (ancestor.bits & mask) == (code.bits & mask);
}

void DescendantRange(const MortonCode& code, uint64_t* lo, uint64_t* hi) {
  POPAN_CHECK(lo != nullptr && hi != nullptr);
  *lo = code.bits;
  if (code.depth == 0) {
    *hi = uint64_t{1} << (2 * MortonCode::kMaxDepth);
    return;
  }
  uint64_t span = uint64_t{1}
                  << (2 * (MortonCode::kMaxDepth - code.depth));
  *hi = code.bits + span;
}

std::string MortonCodeToString(const MortonCode& code) {
  std::string out;
  for (int level = 0; level < code.depth; ++level) {
    if (level != 0) out += '.';
    out += static_cast<char>('0' + ((code.bits >> FieldShift(level)) & 3));
  }
  return out;
}

}  // namespace popan::spatial
