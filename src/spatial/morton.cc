#include "spatial/morton.h"

#include <cmath>
#include <cstddef>

#include "util/check.h"
#include "util/simd.h"

namespace popan::spatial {

namespace {

/// Bit position (from 0 = least significant) of the 2-bit field holding
/// the quadrant choice at path position `level` (0-based from the root).
int FieldShift(int level) { return 2 * (MortonCode::kMaxDepth - 1 - level); }

/// True iff the axis interval [lo, hi) is anchored at zero with an exact
/// power-of-two extent 2^k (k may be negative). On such an axis every
/// midpoint the descent visits is a dyadic rational that doubles
/// represent exactly, and scaling by 2^(depth-k) is an exact exponent
/// shift — the two facts that make floor-quantization bitwise equal to
/// the midpoint descent.
bool IsDyadicAxis(double lo, double hi, int* log2_extent) {
  if (lo != 0.0 || !(hi > 0.0)) return false;
  int e = 0;
  if (std::frexp(hi, &e) != 0.5) return false;
  *log2_extent = e - 1;
  return true;
}

}  // namespace

MortonCode ChildCode(const MortonCode& parent, size_t quadrant) {
  POPAN_CHECK(parent.depth < MortonCode::kMaxDepth);
  POPAN_CHECK(quadrant < 4);
  MortonCode child;
  child.bits = parent.bits |
               (static_cast<uint64_t>(quadrant)
                << FieldShift(parent.depth));
  child.depth = parent.depth + 1;
  return child;
}

MortonCode ParentCode(const MortonCode& code) {
  POPAN_CHECK(code.depth > 0) << "root has no parent";
  MortonCode parent;
  parent.depth = code.depth - 1;
  parent.bits =
      code.bits & ~(uint64_t{3} << FieldShift(parent.depth));
  return parent;
}

MortonCode CodeOfPoint(const geo::Box2& root, const geo::Point2& p,
                       uint8_t depth) {
  POPAN_CHECK(root.Contains(p));
  POPAN_CHECK(depth <= MortonCode::kMaxDepth);
  MortonCode code;
  geo::Box2 box = root;
  for (uint8_t level = 0; level < depth; ++level) {
    size_t q = box.QuadrantOf(p);
    code = ChildCode(code, q);
    box = box.Quadrant(q);
  }
  return code;
}

geo::Box2 BlockOfCode(const geo::Box2& root, const MortonCode& code) {
  geo::Box2 box = root;
  for (int level = 0; level < code.depth; ++level) {
    size_t q = (code.bits >> FieldShift(level)) & 3;
    box = box.Quadrant(q);
  }
  return box;
}

bool IsAncestorOrSelf(const MortonCode& ancestor, const MortonCode& code) {
  if (ancestor.depth > code.depth) return false;
  if (ancestor.depth == 0) return true;
  // Compare the leading `ancestor.depth` quadrant fields.
  int keep_bits = 2 * ancestor.depth;
  uint64_t mask = ~uint64_t{0}
                  << (2 * MortonCode::kMaxDepth - keep_bits);
  return (ancestor.bits & mask) == (code.bits & mask);
}

void DescendantRange(const MortonCode& code, uint64_t* lo, uint64_t* hi) {
  POPAN_CHECK(lo != nullptr && hi != nullptr);
  *lo = code.bits;
  if (code.depth == 0) {
    *hi = uint64_t{1} << (2 * MortonCode::kMaxDepth);
    return;
  }
  uint64_t span = uint64_t{1}
                  << (2 * (MortonCode::kMaxDepth - code.depth));
  *hi = code.bits + span;
}

void CodeBitsBatch(const geo::Box2& root, std::span<const geo::Point2> pts,
                   uint8_t depth, uint64_t* out) {
  POPAN_CHECK(depth <= MortonCode::kMaxDepth);
  const size_t n = pts.size();
  if (n == 0) return;
  POPAN_CHECK(out != nullptr);
  if (depth == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  int kx = 0;
  int ky = 0;
  const bool dyadic = IsDyadicAxis(root.lo()[0], root.hi()[0], &kx) &&
                      IsDyadicAxis(root.lo()[1], root.hi()[1], &ky);
  const int left_align = 2 * (MortonCode::kMaxDepth - depth);
  const double sx = dyadic ? std::ldexp(1.0, depth - kx) : 0.0;
  const double sy = dyadic ? std::ldexp(1.0, depth - ky) : 0.0;
  const uint32_t max_q = (uint32_t{1} << depth) - 1;
  for (size_t base = 0; base < n; base += 8) {
    const size_t c = n - base < 8 ? n - base : 8;
    double px[8];
    double py[8];
    for (size_t i = 0; i < c; ++i) {
      px[i] = pts[base + i][0];
      py[i] = pts[base + i][1];
    }
    // Same precondition CodeOfPoint CHECKs per point, tested lane-wide.
    const uint64_t full = c == 64 ? ~uint64_t{0}
                                  : ((uint64_t{1} << c) - 1);
    POPAN_CHECK(simd::MaskInHalfOpen(px, c, root.lo()[0], root.hi()[0]) ==
                    full &&
                simd::MaskInHalfOpen(py, c, root.lo()[1], root.hi()[1]) ==
                    full)
        << "point outside root";
    if (dyadic) {
      uint32_t xq[8];
      uint32_t yq[8];
      uint64_t codes[8];
      simd::QuantizeClamped(px, c, sx, max_q, xq);
      simd::QuantizeClamped(py, c, sy, max_q, yq);
      if (c == 8) {
        simd::InterleaveBits8(xq, yq, codes);
      } else {
        for (size_t i = 0; i < c; ++i) {
          codes[i] = simd::InterleaveBits(xq[i], yq[i]);
        }
      }
      for (size_t i = 0; i < c; ++i) {
        out[base + i] = codes[i] << left_align;
      }
    } else {
      double lx[8];
      double hx[8];
      double ly[8];
      double hy[8];
      uint64_t bits[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t i = 0; i < c; ++i) {
        lx[i] = root.lo()[0];
        hx[i] = root.hi()[0];
        ly[i] = root.lo()[1];
        hy[i] = root.hi()[1];
      }
      for (uint8_t level = 0; level < depth; ++level) {
        const uint32_t xm = simd::BisectStep(px, lx, hx, c);
        const uint32_t ym = simd::BisectStep(py, ly, hy, c);
        const int fs = FieldShift(level);
        for (size_t i = 0; i < c; ++i) {
          const uint64_t q =
              ((xm >> i) & 1u) | (((ym >> i) & 1u) << 1);
          bits[i] |= q << fs;
        }
      }
      for (size_t i = 0; i < c; ++i) out[base + i] = bits[i];
    }
  }
}

void CodeOfPointBatch(const geo::Box2& root, std::span<const geo::Point2> pts,
                      uint8_t depth, MortonCode* out) {
  const size_t n = pts.size();
  if (n == 0) return;
  POPAN_CHECK(out != nullptr);
  // Write bits into the MortonCode array in place via a small stripe
  // buffer, then stamp depths.
  uint64_t bits[64];
  for (size_t base = 0; base < n; base += 64) {
    const size_t c = n - base < 64 ? n - base : 64;
    CodeBitsBatch(root, pts.subspan(base, c), depth, bits);
    for (size_t i = 0; i < c; ++i) {
      out[base + i].bits = bits[i];
      out[base + i].depth = depth;
    }
  }
}

void InterleaveBatch8(const uint32_t* xs, const uint32_t* ys, uint64_t* out) {
  simd::InterleaveBits8(xs, ys, out);
}

void DeinterleaveBatch8(const uint64_t* codes, uint32_t* xs, uint32_t* ys) {
  simd::DeinterleaveBits8(codes, xs, ys);
}

std::string MortonCodeToString(const MortonCode& code) {
  std::string out;
  for (int level = 0; level < code.depth; ++level) {
    if (level != 0) out += '.';
    out += static_cast<char>('0' + ((code.bits >> FieldShift(level)) & 3));
  }
  return out;
}

}  // namespace popan::spatial
