#ifndef POPAN_SPATIAL_INLINE_BUFFER_H_
#define POPAN_SPATIAL_INLINE_BUFFER_H_

#include <array>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace popan::spatial {

/// Small-buffer storage for leaf contents: up to kInline elements live
/// directly inside the owning node (no heap allocation, no pointer chase);
/// larger contents spill to a heap vector. Sized for the paper's regime
/// (node capacity m <= 8), spilling only happens for capacities above the
/// threshold or for truncated leaves at max_depth that absorb overflow.
///
/// The storage mode is a function of size alone: elements are inline iff
/// size() <= kInline. Crossing the threshold copies the (small) contents;
/// the spill vector keeps its heap buffer across un-spills, so a leaf that
/// oscillates around the threshold allocates at most once.
///
/// T must be default-constructible and copyable (tree points are).
template <typename T, size_t kInline>
class InlineBuffer {
 public:
  InlineBuffer() = default;

  static constexpr size_t inline_capacity() { return kInline; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the contents currently live on the heap.
  bool spilled() const { return size_ > kInline; }

  const T* data() const { return spilled() ? spill_.data() : inline_.data(); }
  T* data() { return spilled() ? spill_.data() : inline_.data(); }

  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  const T& operator[](size_t i) const {
    POPAN_DCHECK(i < size_);
    return data()[i];
  }
  T& operator[](size_t i) {
    POPAN_DCHECK(i < size_);
    return data()[i];
  }

  void push_back(const T& v) {
    if (size_ < kInline) {
      inline_[size_] = v;
    } else if (size_ == kInline) {
      // Crossing the inline threshold: migrate to the heap.
      spill_.clear();
      spill_.reserve(kInline + 1);
      spill_.insert(spill_.end(), inline_.begin(), inline_.end());
      spill_.push_back(v);
    } else {
      spill_.push_back(v);
    }
    ++size_;
  }

  /// Removes element i by swapping the last element into its place (order
  /// within a leaf is immaterial).
  void SwapRemoveAt(size_t i) {
    POPAN_DCHECK(i < size_);
    if (spilled()) {
      spill_[i] = spill_.back();
      spill_.pop_back();
      --size_;
      if (size_ == kInline) {
        // Back under the threshold: return to inline storage; spill_
        // keeps its buffer for future crossings.
        for (size_t j = 0; j < kInline; ++j) inline_[j] = spill_[j];
        spill_.clear();
      }
    } else {
      inline_[i] = inline_[size_ - 1];
      --size_;
    }
  }

  void clear() {
    size_ = 0;
    spill_.clear();
  }

 private:
  size_t size_ = 0;
  std::array<T, kInline> inline_{};
  std::vector<T> spill_;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_INLINE_BUFFER_H_
