#include "spatial/mx_quadtree.h"

#include <utility>

#include "util/check.h"

namespace popan::spatial {

MxQuadtree::MxQuadtree(size_t resolution_bits) : bits_(resolution_bits) {
  POPAN_CHECK(bits_ >= 1 && bits_ <= 16)
      << "resolution_bits must be in [1, 16]";
}

Status MxQuadtree::Insert(uint32_t x, uint32_t y) {
  if (x >= side() || y >= side()) {
    return Status::OutOfRange("cell outside the grid");
  }
  if (root_ == kNullNode) root_ = arena_.Allocate();
  NodeIndex idx = root_;
  size_t block = side();
  while (block > 1) {
    size_t half = block / 2;
    size_t q = QuadrantOf(x, y, half);
    if (x >= half) x -= static_cast<uint32_t>(half);
    if (y >= half) y -= static_cast<uint32_t>(half);
    NodeIndex child = arena_.Get(idx).children[q];
    if (child == kNullNode) {
      if (half == 1) {
        // Creating the cell: this is the successful insert.
        NodeIndex cell = arena_.Allocate();
        arena_.Get(idx).children[q] = cell;
        ++size_;
        return Status::OK();
      }
      child = arena_.Allocate();
      arena_.Get(idx).children[q] = child;
    } else if (half == 1) {
      return Status::AlreadyExists("cell already occupied");
    }
    idx = arena_.Get(idx).children[q];
    block = half;
  }
  // side() == 1 is excluded by the constructor.
  return Status::Internal("unreachable");
}

bool MxQuadtree::Contains(uint32_t x, uint32_t y) const {
  if (x >= side() || y >= side() || root_ == kNullNode) return false;
  NodeIndex idx = root_;
  size_t block = side();
  while (block > 1) {
    size_t half = block / 2;
    size_t q = QuadrantOf(x, y, half);
    if (x >= half) x -= static_cast<uint32_t>(half);
    if (y >= half) y -= static_cast<uint32_t>(half);
    idx = arena_.Get(idx).children[q];
    if (idx == kNullNode) return false;
    block = half;
  }
  return true;
}

Status MxQuadtree::Erase(uint32_t x, uint32_t y) {
  if (x >= side() || y >= side() || root_ == kNullNode) {
    return Status::NotFound("cell not occupied");
  }
  // Record the path so emptied ancestors can be pruned on the way back.
  std::vector<std::pair<NodeIndex, size_t>> path;  // (node, child slot)
  NodeIndex idx = root_;
  size_t block = side();
  while (block > 1) {
    size_t half = block / 2;
    size_t q = QuadrantOf(x, y, half);
    if (x >= half) x -= static_cast<uint32_t>(half);
    if (y >= half) y -= static_cast<uint32_t>(half);
    NodeIndex child = arena_.Get(idx).children[q];
    if (child == kNullNode) return Status::NotFound("cell not occupied");
    path.emplace_back(idx, q);
    idx = child;
    block = half;
  }
  // idx is the cell node; free it and prune upward.
  arena_.Free(idx);
  --size_;
  for (size_t level = path.size(); level-- > 0;) {
    auto [parent, slot] = path[level];
    arena_.Get(parent).children[slot] = kNullNode;
    bool any_child = false;
    for (NodeIndex c : arena_.Get(parent).children) {
      if (c != kNullNode) {
        any_child = true;
        break;
      }
    }
    if (any_child) return Status::OK();
    arena_.Free(parent);
    if (level == 0) root_ = kNullNode;
  }
  return Status::OK();
}

void MxQuadtree::RangeRec(
    NodeIndex idx, uint32_t bx, uint32_t by, size_t block, uint32_t x0,
    uint32_t y0, uint32_t x1, uint32_t y1,
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  if (bx >= x1 || by >= y1 || bx + block <= x0 || by + block <= y0) return;
  if (block == 1) {
    out->emplace_back(bx, by);
    return;
  }
  const Node& node = arena_.Get(idx);
  size_t half = block / 2;
  for (size_t q = 0; q < 4; ++q) {
    if (node.children[q] == kNullNode) continue;
    RangeRec(node.children[q],
             bx + static_cast<uint32_t>((q & 1) ? half : 0),
             by + static_cast<uint32_t>((q & 2) ? half : 0), half, x0, y0,
             x1, y1, out);
  }
}

std::vector<std::pair<uint32_t, uint32_t>> MxQuadtree::RangeQuery(
    uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1) const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (root_ != kNullNode) {
    RangeRec(root_, 0, 0, side(), x0, y0, x1, y1, &out);
  }
  return out;
}

Status MxQuadtree::CheckInvariants() const {
  size_t points_seen = 0;
  if (root_ != kNullNode) {
    POPAN_RETURN_IF_ERROR(CheckRec(root_, side(), &points_seen));
  }
  if (points_seen != size_) return Status::Internal("size mismatch");
  if (root_ == kNullNode && size_ != 0) {
    return Status::Internal("null root with nonzero size");
  }
  return Status::OK();
}

Status MxQuadtree::CheckRec(NodeIndex idx, size_t block,
                            size_t* points_seen) const {
  if (block == 1) {
    ++*points_seen;
    return Status::OK();
  }
  const Node& node = arena_.Get(idx);
  bool any_child = false;
  for (size_t q = 0; q < 4; ++q) {
    if (node.children[q] == kNullNode) continue;
    any_child = true;
    POPAN_RETURN_IF_ERROR(
        CheckRec(node.children[q], block / 2, points_seen));
  }
  if (!any_child) {
    return Status::Internal("childless internal node not pruned");
  }
  return Status::OK();
}

}  // namespace popan::spatial
