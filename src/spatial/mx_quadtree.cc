#include "spatial/mx_quadtree.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <utility>

#include "spatial/morton.h"
#include "spatial/knn_heap.h"
#include "util/check.h"
#include "util/simd.h"

namespace popan::spatial {

MxQuadtree::MxQuadtree(size_t resolution_bits) : bits_(resolution_bits) {
  POPAN_CHECK(bits_ >= 1 && bits_ <= 16)
      << "resolution_bits must be in [1, 16]";
}

Status MxQuadtree::Insert(uint32_t x, uint32_t y) {
  if (x >= side() || y >= side()) {
    return Status::OutOfRange("cell outside the grid");
  }
  if (root_ == kNullNode) root_ = arena_.Allocate();
  NodeIndex idx = root_;
  size_t block = side();
  while (block > 1) {
    size_t half = block / 2;
    size_t q = QuadrantOf(x, y, half);
    if (x >= half) x -= static_cast<uint32_t>(half);
    if (y >= half) y -= static_cast<uint32_t>(half);
    NodeIndex child = arena_.Get(idx).children[q];
    if (child == kNullNode) {
      if (half == 1) {
        // Creating the cell: this is the successful insert.
        NodeIndex cell = arena_.Allocate();
        arena_.Get(idx).children[q] = cell;
        ++size_;
        return Status::OK();
      }
      child = arena_.Allocate();
      arena_.Get(idx).children[q] = child;
    } else if (half == 1) {
      return Status::AlreadyExists("cell already occupied");
    }
    idx = arena_.Get(idx).children[q];
    block = half;
  }
  // side() == 1 is excluded by the constructor.
  return Status::Internal("unreachable");
}

BatchInsertStats MxQuadtree::InsertBatch(
    std::span<const std::pair<uint32_t, uint32_t>> cells) {
  BatchInsertStats stats;
  const uint32_t s = static_cast<uint32_t>(side());
  std::vector<uint32_t> xs;
  std::vector<uint32_t> ys;
  xs.reserve(cells.size());
  ys.reserve(cells.size());
  for (const auto& [x, y] : cells) {
    if (x >= s || y >= s) {
      ++stats.out_of_bounds;
    } else {
      xs.push_back(x);
      ys.push_back(y);
    }
  }
  const size_t n = xs.size();
  if (n == 0) return stats;
  // Batched bit-interleave; the tail under 8 keys goes through the scalar
  // SWAR form, which is integer-exact on every dispatch path anyway.
  std::vector<uint64_t> codes(n);
  size_t base = 0;
  for (; base + 8 <= n; base += 8) {
    InterleaveBatch8(&xs[base], &ys[base], &codes[base]);
  }
  for (; base < n; ++base) {
    codes[base] = simd::InterleaveBits(xs[base], ys[base]);
  }
  std::sort(codes.begin(), codes.end());
  // Shared leading quadrant fields between consecutive codes, within the
  // 2 * bits_ wide field the grid uses.
  const int field_bits = 2 * static_cast<int>(bits_);
  auto shared_levels = [field_bits](uint64_t a, uint64_t b) {
    const uint64_t diff = a ^ b;
    return static_cast<size_t>(
               std::countl_zero(diff) - (64 - field_bits)) /
           2;
  };
  // Pre-size the arena: an insert of a sorted code allocates one node per
  // level below its divergence from the previous code — exact on an empty
  // tree, an upper bound otherwise.
  size_t estimate = bits_ + 1;
  for (size_t j = 1; j < n; ++j) {
    if (codes[j] != codes[j - 1]) {
      estimate += bits_ - shared_levels(codes[j], codes[j - 1]);
    }
  }
  arena_.ReserveAdditional(estimate);
  if (root_ == kNullNode) root_ = arena_.Allocate();
  // Z-order walk reusing the path prefix shared with the previous code.
  std::vector<NodeIndex> path;  // path[l] = node at depth l
  path.reserve(bits_);
  path.push_back(root_);
  uint64_t prev = 0;
  bool have_prev = false;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t c = codes[j];
    size_t start = 0;
    if (have_prev) {
      if (c == prev) {
        ++stats.duplicates;  // same cell earlier in this batch
        continue;
      }
      start = shared_levels(c, prev);
      path.resize(start + 1);
    }
    NodeIndex idx = path[start];
    for (size_t l = start; l < bits_; ++l) {
      const size_t q = (c >> (2 * (bits_ - 1 - l))) & 3;
      NodeIndex child = arena_.Get(idx).children[q];
      if (l + 1 == bits_) {
        if (child != kNullNode) {
          ++stats.duplicates;  // cell already occupied
        } else {
          arena_.Get(idx).children[q] = arena_.Allocate();
          ++size_;
          ++stats.inserted;
        }
        break;
      }
      if (child == kNullNode) {
        child = arena_.Allocate();
        arena_.Get(idx).children[q] = child;
      }
      idx = child;
      path.push_back(idx);
    }
    prev = c;
    have_prev = true;
  }
  return stats;
}

bool MxQuadtree::Contains(uint32_t x, uint32_t y) const {
  if (x >= side() || y >= side() || root_ == kNullNode) return false;
  NodeIndex idx = root_;
  size_t block = side();
  while (block > 1) {
    size_t half = block / 2;
    size_t q = QuadrantOf(x, y, half);
    if (x >= half) x -= static_cast<uint32_t>(half);
    if (y >= half) y -= static_cast<uint32_t>(half);
    idx = arena_.Get(idx).children[q];
    if (idx == kNullNode) return false;
    block = half;
  }
  return true;
}

Status MxQuadtree::Erase(uint32_t x, uint32_t y) {
  if (x >= side() || y >= side() || root_ == kNullNode) {
    return Status::NotFound("cell not occupied");
  }
  // Record the path so emptied ancestors can be pruned on the way back.
  std::vector<std::pair<NodeIndex, size_t>> path;  // (node, child slot)
  NodeIndex idx = root_;
  size_t block = side();
  while (block > 1) {
    size_t half = block / 2;
    size_t q = QuadrantOf(x, y, half);
    if (x >= half) x -= static_cast<uint32_t>(half);
    if (y >= half) y -= static_cast<uint32_t>(half);
    NodeIndex child = arena_.Get(idx).children[q];
    if (child == kNullNode) return Status::NotFound("cell not occupied");
    path.emplace_back(idx, q);
    idx = child;
    block = half;
  }
  // idx is the cell node; free it and prune upward.
  arena_.Free(idx);
  --size_;
  for (size_t level = path.size(); level-- > 0;) {
    auto [parent, slot] = path[level];
    arena_.Get(parent).children[slot] = kNullNode;
    bool any_child = false;
    for (NodeIndex c : arena_.Get(parent).children) {
      if (c != kNullNode) {
        any_child = true;
        break;
      }
    }
    if (any_child) return Status::OK();
    arena_.Free(parent);
    if (level == 0) root_ = kNullNode;
  }
  return Status::OK();
}

std::vector<std::pair<uint32_t, uint32_t>> MxQuadtree::RangeQuery(
    uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1) const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  QueryCost cost;
  RangeQueryVisit(x0, y0, x1, y1, &cost, [&out](uint32_t x, uint32_t y) {
    out.emplace_back(x, y);
  });
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MxQuadtree::NearestK(
    double tx, double ty, size_t k, QueryCost* cost) const {
  POPAN_CHECK(k >= 1);
  POPAN_DCHECK(cost != nullptr);
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (root_ == kNullNode) return out;
  // Cells of block (bx, by, block), viewed as lattice points, fill the
  // closed box [bx, bx + block - 1] x [by, by + block - 1].
  auto block_d2 = [tx, ty](uint32_t bx, uint32_t by, uint32_t block) {
    double dx = 0.0;
    double dy = 0.0;
    const double x_hi = static_cast<double>(bx) + (block - 1);
    const double y_hi = static_cast<double>(by) + (block - 1);
    if (tx < bx) {
      dx = bx - tx;
    } else if (tx > x_hi) {
      dx = tx - x_hi;
    }
    if (ty < by) {
      dy = by - ty;
    } else if (ty > y_hi) {
      dy = ty - y_hi;
    }
    return dx * dx + dy * dy;
  };
  // Canonical (distance², (x, y)) accumulator (knn_heap.h); lattice
  // cells tie-break by their (x, y) pair.
  KnnHeap<std::pair<uint32_t, uint32_t>> heap(k);
  struct Frame {
    NodeIndex idx;
    uint32_t bx, by, block;
    double d2;
  };
  std::vector<Frame> stack;
  stack.reserve(kWalkStackHint);
  const uint32_t root_block = static_cast<uint32_t>(side());
  stack.push_back(Frame{root_, 0, 0, root_block, block_d2(0, 0, root_block)});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (heap.ShouldPrune(f.d2)) {
      ++cost->pruned_subtrees;
      continue;
    }
    ++cost->nodes_visited;
    if (f.block == 1) {
      ++cost->leaves_touched;
      ++cost->points_scanned;
      heap.Offer(f.d2, std::make_pair(f.bx, f.by));
      continue;
    }
    const Node& node = arena_.Get(f.idx);
    uint32_t half = f.block / 2;
    std::array<std::pair<double, size_t>, 4> order;
    for (size_t q = 0; q < 4; ++q) {
      uint32_t cx = f.bx + ((q & 1) ? half : 0);
      uint32_t cy = f.by + ((q & 2) ? half : 0);
      order[q] = {node.children[q] == kNullNode
                      ? std::numeric_limits<double>::infinity()
                      : block_d2(cx, cy, half),
                  q};
    }
    std::sort(order.begin(), order.end());
    // Far-to-near onto the LIFO stack; the nearest child pops first.
    for (size_t i = 4; i-- > 0;) {
      const auto& [d2, q] = order[i];
      if (node.children[q] == kNullNode) continue;
      if (heap.ShouldPrune(d2)) {
        ++cost->pruned_subtrees;
        continue;
      }
      uint32_t cx = f.bx + ((q & 1) ? half : 0);
      uint32_t cy = f.by + ((q & 2) ? half : 0);
      stack.push_back(Frame{node.children[q], cx, cy, half, d2});
    }
  }
  out = heap.TakeSorted();
  return out;
}

Status MxQuadtree::CheckInvariants() const {
  size_t points_seen = 0;
  if (root_ != kNullNode) {
    POPAN_RETURN_IF_ERROR(CheckRec(root_, side(), &points_seen));
  }
  if (points_seen != size_) return Status::Internal("size mismatch");
  if (root_ == kNullNode && size_ != 0) {
    return Status::Internal("null root with nonzero size");
  }
  return Status::OK();
}

Status MxQuadtree::CheckRec(NodeIndex idx, size_t block,
                            size_t* points_seen) const {
  if (block == 1) {
    ++*points_seen;
    return Status::OK();
  }
  const Node& node = arena_.Get(idx);
  bool any_child = false;
  for (size_t q = 0; q < 4; ++q) {
    if (node.children[q] == kNullNode) continue;
    any_child = true;
    POPAN_RETURN_IF_ERROR(
        CheckRec(node.children[q], block / 2, points_seen));
  }
  if (!any_child) {
    return Status::Internal("childless internal node not pruned");
  }
  return Status::OK();
}

}  // namespace popan::spatial
