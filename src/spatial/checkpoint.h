#ifndef POPAN_SPATIAL_CHECKPOINT_H_
#define POPAN_SPATIAL_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "spatial/pr_tree.h"
#include "spatial/serialization.h"
#include "spatial/snapshot_view.h"
#include "spatial/wal.h"
#include "util/statusor.h"

namespace popan::spatial {

/// Checkpointing and crash recovery for the PR quadtree: the glue that
/// turns the snapshot format (serialization.h) and the WAL (wal.h) into
/// the storage-engine durability loop —
///
///   log mutations -> Checkpoint() -> log to the fresh WAL -> crash
///   -> Recover() -> truncate the log to valid_bytes -> resume logging.
///
/// Checkpoint writes a checksummed snapshot of `tree` (anchored at
/// `last_sequence`, the sequence number of the last WAL record the tree
/// reflects) to `snapshot_out`, then starts a fresh log on `wal_out`
/// anchored at the same sequence and returns its writer. This is log
/// compaction: once both streams are durably persisted the previous
/// snapshot/log pair is dead and can be deleted. The snapshot is fully
/// written (checksum trailer last) before the new log's header, so a
/// crash between the two leaves a pair that recovery either accepts whole
/// or rejects cleanly — never half-applies.
[[nodiscard]]
StatusOr<WalWriter> Checkpoint(const PrTree<2>& tree, uint64_t last_sequence,
                               std::ostream* snapshot_out,
                               std::ostream* wal_out);

/// Checkpoints a pinned epoch snapshot (snapshot_view.h) without stopping
/// the writer: the snapshot's own sequence number is the WAL anchor, so
/// the epoch boundary a reader pinned IS the durability boundary the
/// fresh log resumes from. The PR decomposition is canonical (a function
/// of the point set, not of insertion order), so the materialized tree is
/// byte-identical to a stop-the-world checkpoint of the same prefix of
/// operations — verified against LiveCensus before anything is written.
[[nodiscard]]
StatusOr<WalWriter> Checkpoint(const SnapshotView<2>& snapshot,
                               std::ostream* snapshot_out,
                               std::ostream* wal_out);

/// The outcome of a crash recovery.
struct RecoverResult {
  PrTree<2> tree;                 ///< snapshot state + the intact log tail
  uint64_t snapshot_sequence = 0; ///< the snapshot's WAL anchor
  uint64_t last_sequence = 0;     ///< after replay (== anchor if no records)
  uint64_t next_sequence = 1;     ///< sequence a resumed writer must use
  uint64_t records_applied = 0;   ///< log records replayed over the snapshot
  /// Byte length of the log's intact prefix; truncate the log file here
  /// before resuming with WalWriter::ResumeAt{next_sequence}.
  size_t wal_valid_bytes = 0;
  /// True when the log tail (or its header) was torn/corrupt and
  /// discarded; `truncation_reason` says why.
  bool truncated_tail = false;
  std::string truncation_reason;
};

/// Recovers the tree a crashed process was maintaining: loads and
/// verifies the snapshot, then replays the log's intact records over it.
/// The recovered tree is cross-checked (LiveCensus against a fresh walk,
/// plus the full structural invariants) before it is returned.
///
/// Error contract:
///  - snapshot unusable (torn, checksum mismatch, inconsistent leaves):
///    InvalidArgument — nothing can be recovered from this pair;
///  - log header unusable (the crash tore the header write): NOT an error;
///    recovery returns the snapshot state with truncated_tail set;
///  - log anchored elsewhere / geometry mismatch: FailedPrecondition —
///    the caller paired the wrong snapshot and log;
///  - recovered tree fails its invariants: Internal (a bug, not bad data).
[[nodiscard]] StatusOr<RecoverResult> Recover(std::istream* snapshot_in,
                                std::istream* wal_in);
[[nodiscard]] StatusOr<RecoverResult> Recover(const std::string& snapshot,
                                const std::string& wal);

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_CHECKPOINT_H_
