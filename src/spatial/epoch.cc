#include "spatial/epoch.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace popan::spatial {

EpochManager::EpochManager(size_t max_readers) : slots_(max_readers) {
  POPAN_CHECK(max_readers >= 1)
      << "an epoch manager needs at least one reader slot";
}

EpochManager::~EpochManager() { ReclaimAll(); }

void EpochManager::Pin::Release() {
  if (manager_ == nullptr) return;
  manager_->ReleaseSlot(slot_);
  manager_ = nullptr;
}

StatusOr<EpochManager::Pin> EpochManager::TryPinReader() {
  // Claim a free slot. Readers race on `claimed` only; a claimed slot is
  // touched by exactly one reader until it is released.
  size_t slot = slots_.size();
  for (size_t i = 0; i < slots_.size(); ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slot = i;
      break;
    }
  }
  if (slot >= slots_.size()) {
    return Status::ResourceExhausted(
        "all " + std::to_string(slots_.size()) +
        " epoch reader slots are pinned");
  }
  // Publish the pin, then confirm the global epoch did not move past it;
  // on a move, republish the newer value. After this loop the pinned
  // value equals the global epoch as observed after the pin became
  // visible, which is what the reclamation bound relies on.
  uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slots_[slot].epoch.store(epoch, std::memory_order_seq_cst);
    uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == epoch) break;
    epoch = now;
  }
  return Pin(this, slot, epoch);
}

EpochManager::Pin EpochManager::PinReader() {
  StatusOr<Pin> pin = TryPinReader();
  POPAN_CHECK(pin.ok()) << pin.status().ToString();
  return std::move(pin).value();
}

void EpochManager::ReleaseSlot(size_t slot) {
  slots_[slot].epoch.store(kIdle, std::memory_order_seq_cst);
  slots_[slot].claimed.store(false, std::memory_order_release);
}

void EpochManager::Retire(void* ptr, void (*deleter)(void*)) {
  popan::AssumeRole writer(writer_role_);
  limbo_.push_back(LimboEntry{current_epoch(), ptr, deleter});
  objects_retired_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t EpochManager::AdvanceEpoch() {
  uint64_t next = global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  epochs_advanced_.fetch_add(1, std::memory_order_relaxed);
  return next;
}

uint64_t EpochManager::MinPinnedEpoch(uint64_t fallback) const {
  uint64_t min = fallback;
  for (const ReaderSlot& slot : slots_) {
    uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min) min = e;
  }
  return min;
}

size_t EpochManager::Reclaim() {
  popan::AssumeRole writer(writer_role_);
  uint64_t bound = MinPinnedEpoch(current_epoch());
  size_t freed = 0;
  while (!limbo_.empty() && limbo_.front().epoch < bound) {
    LimboEntry entry = limbo_.front();
    limbo_.pop_front();
    entry.deleter(entry.ptr);
    ++freed;
  }
  if (freed != 0) {
    objects_reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

size_t EpochManager::ReclaimAll() {
  popan::AssumeRole writer(writer_role_);
  size_t freed = 0;
  while (!limbo_.empty()) {
    LimboEntry entry = limbo_.front();
    limbo_.pop_front();
    entry.deleter(entry.ptr);
    ++freed;
  }
  if (freed != 0) {
    objects_reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

}  // namespace popan::spatial
