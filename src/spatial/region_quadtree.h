#ifndef POPAN_SPATIAL_REGION_QUADTREE_H_
#define POPAN_SPATIAL_REGION_QUADTREE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "spatial/node_arena.h"
#include "util/statusor.h"

namespace popan::spatial {

/// The classical region quadtree (Klinger 1971; Samet's survey [Same84a])
/// over a 2^k x 2^k binary image — the representation the paper's §II
/// opens with before moving to point data. A block is a leaf when all its
/// pixels share one color; otherwise it splits into quadrants. The
/// structure is kept *normalized*: no internal node has four leaf
/// children of equal color, so a given image has exactly one quadtree.
///
/// Quadrant indexing matches Box2/Morton: bit 0 = right half (x), bit 1 =
/// top half (y), with pixel (0, 0) at the bottom-left.
class RegionQuadtree {
 public:
  /// An all-white (false) image of the given side, which must be a power
  /// of two between 1 and 2^15.
  [[nodiscard]] static StatusOr<RegionQuadtree> Empty(size_t side);

  /// An all-black (true) image.
  [[nodiscard]] static StatusOr<RegionQuadtree> Full(size_t side);

  /// Builds from a row-major raster (pixels[y * side + x] != 0 = black).
  /// `pixels.size()` must equal side * side.
  [[nodiscard]] static StatusOr<RegionQuadtree> FromRaster(
      const std::vector<uint8_t>& pixels, size_t side);

  /// Image side length in pixels.
  size_t side() const { return side_; }

  /// Color of pixel (x, y); both must be < side().
  bool At(size_t x, size_t y) const;

  /// Sets one pixel, re-normalizing on the path.
  void Set(size_t x, size_t y, bool black);

  /// Sets every pixel of the axis-aligned rectangle [x0, x1) x [y0, y1).
  void SetRect(size_t x0, size_t y0, size_t x1, size_t y1, bool black);

  /// Number of black pixels.
  uint64_t Area() const;

  /// Leaves (blocks) in the decomposition.
  size_t LeafCount() const;

  /// All nodes, internal included.
  size_t NodeCount() const { return arena_.LiveCount(); }

  /// Pixelwise boolean combinations; operands must have equal sides.
  /// Results are normalized. These run on the tree structure directly —
  /// O(min of the two trees' sizes), never touching rasters.
  static RegionQuadtree Union(const RegionQuadtree& a,
                              const RegionQuadtree& b);
  static RegionQuadtree Intersect(const RegionQuadtree& a,
                                  const RegionQuadtree& b);
  RegionQuadtree Complement() const;

  /// Renders back to a row-major raster.
  std::vector<uint8_t> ToRaster() const;

  /// Calls fn(x, y, block_side, black) for every leaf, where (x, y) is
  /// the block's bottom-left pixel.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    VisitRec(root_, 0, 0, side_, fn);
  }

  /// True iff the two trees represent the same image (structural equality
  /// suffices thanks to normalization).
  friend bool operator==(const RegionQuadtree& a, const RegionQuadtree& b) {
    return a.side_ == b.side_ && Equal(a, a.root_, b, b.root_);
  }
  friend bool operator!=(const RegionQuadtree& a, const RegionQuadtree& b) {
    return !(a == b);
  }

  /// Verifies normalization (no four same-color leaf siblings), shape and
  /// the cached census counters.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    bool black = false;
    std::array<NodeIndex, 4> children = {kNullNode, kNullNode, kNullNode,
                                         kNullNode};
  };

  RegionQuadtree(size_t side, bool black);

  NodeIndex BuildRec(const std::vector<uint8_t>& pixels, size_t x0,
                     size_t y0, size_t block);
  bool AtRec(NodeIndex idx, size_t x, size_t y, size_t block) const;
  void SetRectRec(NodeIndex idx, size_t bx, size_t by, size_t block,
                  size_t x0, size_t y0, size_t x1, size_t y1, bool black);
  /// Collapses `idx` to a leaf if its children are same-color leaves.
  void Normalize(NodeIndex idx);
  /// Recursively returns a subtree's nodes to the arena.
  void FreeSubtree(NodeIndex idx);
  uint64_t AreaRec(NodeIndex idx, size_t block) const;
  size_t LeafCountRec(NodeIndex idx) const;
  static NodeIndex CombineRec(const RegionQuadtree& a, NodeIndex ai,
                              const RegionQuadtree& b, NodeIndex bi,
                              bool is_union, RegionQuadtree* out);
  NodeIndex ComplementRec(NodeIndex idx, RegionQuadtree* out) const;
  NodeIndex CopyRec(const RegionQuadtree& from, NodeIndex idx);
  static bool Equal(const RegionQuadtree& a, NodeIndex ai,
                    const RegionQuadtree& b, NodeIndex bi);
  [[nodiscard]] Status CheckRec(NodeIndex idx, size_t block) const;

  template <typename Fn>
  void VisitRec(NodeIndex idx, size_t x0, size_t y0, size_t block,
                Fn& fn) const {
    const Node& node = arena_.Get(idx);
    if (node.is_leaf) {
      fn(x0, y0, block, node.black);
      return;
    }
    size_t half = block / 2;
    for (size_t q = 0; q < 4; ++q) {
      size_t cx = x0 + ((q & 1) ? half : 0);
      size_t cy = y0 + ((q & 2) ? half : 0);
      VisitRec(node.children[q], cx, cy, half, fn);
    }
  }

  size_t side_ = 0;
  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_REGION_QUADTREE_H_
