#ifndef POPAN_SPATIAL_SNAPSHOT_VIEW_H_
#define POPAN_SPATIAL_SNAPSHOT_VIEW_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/census.h"
#include "spatial/epoch.h"
#include "spatial/inline_buffer.h"
#include "spatial/knn_heap.h"
#include "spatial/pr_tree.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/status.h"

namespace popan::spatial {

template <size_t D>
class SnapshotView;

/// A copy-on-write PR tree for single-writer / multi-reader workloads:
/// the concurrent sibling of PrTree<D>, with the same splitting rule,
/// collapse rule, census bookkeeping, and boundary semantics — verified
/// bitwise against it by the snapshot-consistency tests.
///
/// Where PrTree mutates nodes in place (safe only with writers stopped),
/// CowPrTree never modifies a published node: every Insert/Erase builds
/// fresh copies of the root-to-leaf path (plus the split or collapse
/// subtree), then publishes the new root inside a new immutable Version
/// with one atomic store. Readers pin an epoch and load the version head
/// (SnapshotView); from then on they traverse a frozen tree that no
/// writer will ever touch, so queries never block and never see a torn
/// state. Replaced nodes and versions retire into the epoch limbo list
/// and are freed only once no pinned reader can reach them (epoch.h has
/// the full memory-ordering argument).
///
/// Each Version carries the occupancy-by-depth histogram at its sequence
/// number, so SnapshotView::LiveCensus() is O(depths x occupancies) and
/// bitwise identical to a stop-the-world census of the same prefix of
/// operations — the storm tests' core assertion.
///
/// Threading contract: Insert/Erase/CheckInvariants/destructor on the
/// single writer thread; Snapshot() and everything on SnapshotView from
/// any thread. The tree must outlive every SnapshotView taken from it.
template <size_t D>
class CowPrTree {
 public:
  using PointT = geo::Point<D>;
  using BoxT = geo::Box<D>;
  static constexpr size_t kFanout = size_t{1} << D;
  static constexpr size_t kInlineLeafCapacity = PrTree<D>::kInlineLeafCapacity;

  /// Creates an empty tree over `bounds`. `initial_sequence` anchors the
  /// version counter — pass the WAL/checkpoint sequence the starting
  /// state reflects (0 for an empty tree) so snapshot sequence numbers
  /// line up with log sequence numbers. `epoch_readers` sizes the
  /// epoch manager's reader-slot table (concurrent pinned snapshots);
  /// the shard router sizes per-shard trees to its client budget.
  explicit CowPrTree(const BoxT& bounds, const PrTreeOptions& options = {},
                     uint64_t initial_sequence = 0,
                     size_t epoch_readers = EpochManager::kMaxReaders)
      : bounds_(bounds), options_(options), epochs_(epoch_readers) {
    POPAN_CHECK(options_.capacity >= 1) << "capacity must be at least 1";
    HistAdd(0, 0);
    Version* v = new Version;
    v->root = new Node;
    v->sequence = initial_sequence;
    v->size = 0;
    v->leaf_count = 1;
    v->hist = hist_;
    head_.store(v, std::memory_order_seq_cst);
  }

  ~CowPrTree() {
    const Version* v = head_.load(std::memory_order_relaxed);
    DeleteSubtree(v->root);
    delete v;
    // epochs_'s destructor drains the limbo list.
  }

  CowPrTree(const CowPrTree&) = delete;
  CowPrTree& operator=(const CowPrTree&) = delete;

  const BoxT& bounds() const { return bounds_; }
  size_t capacity() const { return options_.capacity; }
  size_t max_depth() const { return options_.max_depth; }

  /// Writer-side view of the newest version.
  uint64_t sequence() const {
    return head_.load(std::memory_order_relaxed)->sequence;
  }
  size_t size() const { return head_.load(std::memory_order_relaxed)->size; }
  bool empty() const { return size() == 0; }
  size_t LeafCount() const {
    return head_.load(std::memory_order_relaxed)->leaf_count;
  }

  /// Writer-side census of the newest version — the same histogram fold
  /// SnapshotView::LiveCensus performs, without pinning a reader slot.
  /// O(depths x occupancies); this is what lets the shard balancer poll
  /// every shard's census per rebalance check without touching points.
  Census LiveCensus() const {
    Census census;
    for (size_t d = 0; d < hist_.size(); ++d) {
      const std::vector<uint64_t>& row = hist_[d];
      for (size_t occ = 0; occ < row.size(); ++occ) {
        if (row[occ] != 0) census.AddLeaves(occ, d, row[occ]);
      }
    }
    return census;
  }

  /// The reclamation machinery, exposed for storm harnesses and benches
  /// (counters from any thread; Retire/Advance/Reclaim writer-only).
  EpochManager& epochs() const { return epochs_; }

  /// Pins the current epoch and returns a frozen view of the newest
  /// published version. Any thread; the view holds its pin until
  /// destroyed, which is what keeps its nodes out of reclamation.
  /// Aborts when all reader slots are taken — use TrySnapshot where slot
  /// exhaustion is load, not a bug.
  [[nodiscard]] SnapshotView<D> Snapshot() const;

  /// Like Snapshot, but returns ResourceExhausted instead of aborting
  /// when every EpochManager reader slot is pinned — the form server
  /// connection handlers must use, shedding the request on error.
  [[nodiscard]] StatusOr<SnapshotView<D>> TrySnapshot() const;

  /// Inserts `p`, publishing a new version (sequence + 1) on success.
  /// OutOfRange outside the root block, AlreadyExists for a duplicate;
  /// failed inserts publish nothing.
  [[nodiscard]] Status Insert(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::OutOfRange("point outside the tree bounds");
    }
    const Version* cur = head_.load(std::memory_order_relaxed);
    path_.clear();
    const Node* leaf = cur->root;
    BoxT box = bounds_;
    size_t depth = 0;
    while (!leaf->is_leaf) {
      size_t q = box.QuadrantOf(p);
      path_.push_back(PathEntry{leaf, q});
      leaf = leaf->children[q];
      box = box.Quadrant(q);
      ++depth;
    }
    const size_t n = leaf->points.size();
    {
      const PointT* pts = leaf->points.data();
      for (size_t i = 0; i < n; ++i) {
        if (pts[i] == p) return Status::AlreadyExists("duplicate point");
      }
    }
    to_retire_.clear();
    to_retire_.push_back(leaf);
    Node* replacement;
    if (n < options_.capacity || depth >= options_.max_depth) {
      replacement = new Node(*leaf);
      replacement->points.push_back(p);
      HistRemove(depth, n);
      HistAdd(depth, n + 1);
    } else {
      // The splitting rule fires: stash the m+1 points and grow a fresh
      // subtree in their place (same cascade arithmetic as PrTree).
      split_points_.clear();
      split_points_.insert(split_points_.end(), leaf->points.begin(),
                           leaf->points.end());
      split_points_.push_back(p);
      HistRemove(depth, n);
      replacement = BuildSplitSubtree(box, depth);
    }
    ++size_;
    Publish(RebuildPath(replacement));
    return Status::OK();
  }

  /// Removes `p`, publishing a new version (sequence + 1) on success.
  /// NotFound when it is not stored; failed erases publish nothing.
  /// Collapses merged leaves exactly like PrTree::Erase, so the published
  /// tree is always the canonical minimal decomposition.
  [[nodiscard]] Status Erase(const PointT& p) {
    if (!bounds_.Contains(p)) {
      return Status::NotFound("point outside the tree bounds");
    }
    const Version* cur = head_.load(std::memory_order_relaxed);
    path_.clear();
    const Node* leaf = cur->root;
    BoxT box = bounds_;
    while (!leaf->is_leaf) {
      size_t q = box.QuadrantOf(p);
      path_.push_back(PathEntry{leaf, q});
      leaf = leaf->children[q];
      box = box.Quadrant(q);
    }
    const size_t n = leaf->points.size();
    size_t found = n;
    {
      const PointT* pts = leaf->points.data();
      for (size_t i = 0; i < n; ++i) {
        if (pts[i] == p) {
          found = i;
          break;
        }
      }
    }
    if (found == n) return Status::NotFound("point not stored");
    const size_t depth = path_.size();
    to_retire_.clear();
    to_retire_.push_back(leaf);
    Node* child = new Node(*leaf);
    child->points.SwapRemoveAt(found);
    HistRemove(depth, n);
    HistAdd(depth, n - 1);
    --size_;
    // Walk back up, merging any chain of all-leaf siblings that fits in
    // one leaf (deepest first; once a level fails, no shallower level can
    // collapse either), then path-copying the rest.
    Node* root = child;
    bool collapsing = true;
    for (size_t level = path_.size(); level-- > 0;) {
      const Node* parent = path_[level].node;
      const size_t q = path_[level].quadrant;
      if (collapsing && root->is_leaf) {
        size_t total = root->points.size();
        bool all_leaves = true;
        for (size_t qq = 0; qq < kFanout && all_leaves; ++qq) {
          if (qq == q) continue;
          const Node* sibling = parent->children[qq];
          if (!sibling->is_leaf) {
            all_leaves = false;
          } else {
            total += sibling->points.size();
          }
        }
        if (all_leaves && total <= options_.capacity) {
          Node* merged = new Node;
          for (size_t qq = 0; qq < kFanout; ++qq) {
            const Node* source = qq == q ? root : parent->children[qq];
            for (const PointT& pt : source->points) {
              merged->points.push_back(pt);
            }
            HistRemove(level + 1, source->points.size());
            if (qq != q) to_retire_.push_back(parent->children[qq]);
          }
          HistAdd(level, total);
          leaf_count_ -= kFanout - 1;
          to_retire_.push_back(parent);
          delete root;  // fresh this operation, never published
          root = merged;
          continue;
        }
        collapsing = false;
      }
      Node* copy = new Node(*parent);
      copy->children[q] = root;
      to_retire_.push_back(parent);
      root = copy;
    }
    Publish(root);
    return Status::OK();
  }

  /// Verifies the newest version against a fresh walk: structural PR
  /// invariants, cached size/leaf counts, and the per-version census
  /// histogram. Writer thread only.
  [[nodiscard]] Status CheckInvariants() const {
    const Version* v = head_.load(std::memory_order_relaxed);
    size_t points_seen = 0;
    size_t leaves_seen = 0;
    std::vector<std::vector<uint64_t>> walked;
    Status s = CheckNode(v->root, bounds_, 0, &points_seen, &leaves_seen,
                         &walked);
    if (!s.ok()) return s;
    if (points_seen != v->size) {
      return Status::Internal("size mismatch: counted " +
                              std::to_string(points_seen) + " cached " +
                              std::to_string(v->size));
    }
    if (leaves_seen != v->leaf_count) {
      return Status::Internal("leaf count mismatch");
    }
    size_t depths = std::max(walked.size(), v->hist.size());
    for (size_t d = 0; d < depths; ++d) {
      size_t occs = std::max(d < walked.size() ? walked[d].size() : 0,
                             d < v->hist.size() ? v->hist[d].size() : 0);
      for (size_t occ = 0; occ < occs; ++occ) {
        uint64_t want =
            d < walked.size() && occ < walked[d].size() ? walked[d][occ] : 0;
        uint64_t have =
            d < v->hist.size() && occ < v->hist[d].size() ? v->hist[d][occ]
                                                          : 0;
        if (want != have) {
          return Status::Internal(
              "version census drift at depth " + std::to_string(d) +
              " occupancy " + std::to_string(occ));
        }
      }
    }
    return Status::OK();
  }

 private:
  friend class SnapshotView<D>;

  /// An immutable tree node. Never modified after the version holding it
  /// is published; freed through the epoch limbo list when replaced.
  struct Node {
    bool is_leaf = true;
    std::array<const Node*, kFanout> children = InitChildren();
    InlineBuffer<PointT, kInlineLeafCapacity> points;

    static constexpr std::array<const Node*, kFanout> InitChildren() {
      return std::array<const Node*, kFanout>{};
    }
  };

  /// One published state of the tree: the version header readers pin.
  /// Immutable after the head store that publishes it.
  struct Version {
    const Node* root = nullptr;
    uint64_t sequence = 0;
    size_t size = 0;
    size_t leaf_count = 1;
    /// hist[depth][occ] = leaves at `depth` holding `occ` points — the
    /// same live census PrTree maintains, frozen per version.
    std::vector<std::vector<uint64_t>> hist;
  };

  struct PathEntry {
    const Node* node;
    size_t quadrant;
  };

  void HistAdd(size_t depth, size_t occ) {
    if (depth >= hist_.size()) hist_.resize(depth + 1);
    std::vector<uint64_t>& row = hist_[depth];
    if (occ >= row.size()) row.resize(occ + 1, 0);
    ++row[occ];
  }

  void HistRemove(size_t depth, size_t occ) {
    POPAN_DCHECK(depth < hist_.size() && occ < hist_[depth].size() &&
                 hist_[depth][occ] > 0)
        << "version census underflow at depth" << depth;
    --hist_[depth][occ];
  }

  /// Grows the replacement subtree for a split at (`box`, `depth`) from
  /// the m+1 points in split_points_. Same cascade loop and histogram
  /// arithmetic as PrTree::Insert; all nodes are fresh.
  Node* BuildSplitSubtree(BoxT box, size_t depth) {
    Node* top = nullptr;
    Node* pending_parent = nullptr;
    size_t pending_quadrant = 0;
    for (;;) {
      split_codes_.clear();
      std::array<size_t, kFanout> counts{};
      for (const PointT& pt : split_points_) {
        size_t q = box.QuadrantOf(pt);
        split_codes_.push_back(static_cast<uint8_t>(q));
        ++counts[q];
      }
      size_t sole = kFanout;
      for (size_t q = 0; q < kFanout; ++q) {
        if (counts[q] == split_points_.size()) sole = q;
      }
      Node* internal = new Node;
      internal->is_leaf = false;
      if (pending_parent == nullptr) {
        top = internal;
      } else {
        pending_parent->children[pending_quadrant] = internal;
      }
      leaf_count_ += kFanout - 1;
      for (size_t q = 0; q < kFanout; ++q) HistAdd(depth + 1, 0);
      if (sole != kFanout && depth + 1 < options_.max_depth) {
        for (size_t q = 0; q < kFanout; ++q) {
          if (q != sole) internal->children[q] = new Node;
        }
        HistRemove(depth + 1, 0);  // the sole child becomes internal
        pending_parent = internal;
        pending_quadrant = sole;
        box = box.Quadrant(sole);
        ++depth;
        continue;
      }
      std::array<Node*, kFanout> ch;
      for (size_t q = 0; q < kFanout; ++q) {
        ch[q] = new Node;
        internal->children[q] = ch[q];
      }
      for (size_t i = 0; i < split_points_.size(); ++i) {
        ch[split_codes_[i]]->points.push_back(split_points_[i]);
      }
      for (size_t q = 0; q < kFanout; ++q) {
        if (counts[q] != 0) {
          HistRemove(depth + 1, 0);
          HistAdd(depth + 1, counts[q]);
        }
      }
      return top;
    }
  }

  /// Path-copies the recorded ancestors around `replacement` (the new
  /// subtree at the descent leaf), retiring the replaced originals.
  Node* RebuildPath(Node* replacement) {
    Node* child = replacement;
    for (size_t level = path_.size(); level-- > 0;) {
      Node* copy = new Node(*path_[level].node);
      copy->children[path_[level].quadrant] = child;
      to_retire_.push_back(path_[level].node);
      child = copy;
    }
    return child;
  }

  /// Publishes `new_root` as the next version and retires everything the
  /// operation unlinked. One epoch advance + reclaim attempt per publish
  /// keeps the limbo list short and the reclamation counters a pure
  /// function of the operation trace when no readers are pinned.
  void Publish(Node* new_root) {
    const Version* old = head_.load(std::memory_order_relaxed);
    Version* v = new Version;
    v->root = new_root;
    v->sequence = old->sequence + 1;
    v->size = size_;
    v->leaf_count = leaf_count_;
    v->hist = hist_;
    head_.store(v, std::memory_order_seq_cst);
    epochs_.RetireObject(old);
    for (const Node* node : to_retire_) epochs_.RetireObject(node);
    to_retire_.clear();
    epochs_.AdvanceEpoch();
    epochs_.Reclaim();
  }

  static void DeleteSubtree(const Node* root) {
    std::vector<const Node*> stack;
    stack.push_back(root);
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      if (!node->is_leaf) {
        for (size_t q = 0; q < kFanout; ++q) {
          stack.push_back(node->children[q]);
        }
      }
      delete node;
    }
  }

  [[nodiscard]] Status CheckNode(
      const Node* node, const BoxT& box, size_t depth, size_t* points_seen,
      size_t* leaves_seen, std::vector<std::vector<uint64_t>>* walked) const {
    if (node->is_leaf) {
      ++*leaves_seen;
      *points_seen += node->points.size();
      if (depth >= walked->size()) walked->resize(depth + 1);
      std::vector<uint64_t>& row = (*walked)[depth];
      if (node->points.size() >= row.size()) {
        row.resize(node->points.size() + 1, 0);
      }
      ++row[node->points.size()];
      if (node->points.size() > options_.capacity &&
          depth < options_.max_depth) {
        return Status::Internal("leaf over capacity below max depth");
      }
      for (const PointT& p : node->points) {
        if (!box.Contains(p)) {
          return Status::Internal("point outside its leaf block");
        }
      }
      return Status::OK();
    }
    if (!node->points.empty()) {
      return Status::Internal("internal node holds points");
    }
    size_t before = *points_seen;
    bool all_leaf_children = true;
    for (size_t q = 0; q < kFanout; ++q) {
      if (node->children[q] == nullptr) {
        return Status::Internal("internal node with missing child");
      }
      if (!node->children[q]->is_leaf) all_leaf_children = false;
      POPAN_RETURN_IF_ERROR(CheckNode(node->children[q], box.Quadrant(q),
                                      depth + 1, points_seen, leaves_seen,
                                      walked));
    }
    if (*points_seen - before <= options_.capacity && all_leaf_children) {
      return Status::Internal("non-minimal decomposition under an internal "
                              "node");
    }
    return Status::OK();
  }

  BoxT bounds_;
  PrTreeOptions options_;
  mutable EpochManager epochs_;
  std::atomic<const Version*> head_{nullptr};
  // Writer-side working state, mirrored into each published Version.
  size_t size_ = 0;
  size_t leaf_count_ = 1;
  std::vector<std::vector<uint64_t>> hist_;
  // Reusable writer scratch.
  std::vector<PathEntry> path_;
  std::vector<const Node*> to_retire_;
  std::vector<PointT> split_points_;
  std::vector<uint8_t> split_codes_;
};

/// A pinned, frozen view of one CowPrTree version: the reader-side handle.
/// Construction pins an epoch; destruction releases it. Every traversal
/// here is a pure const walk over immutable nodes — identical algorithms
/// (and therefore identical QueryCost counters and visit orders) to
/// PrTree's, so results are bitwise comparable with a stop-the-world tree
/// holding the same points. Safe to share across threads by const
/// reference (the executor does exactly that); the view and its source
/// tree must outlive all such use.
template <size_t D>
class SnapshotView {
 public:
  using PointT = geo::Point<D>;
  using BoxT = geo::Box<D>;
  static constexpr size_t kFanout = CowPrTree<D>::kFanout;

  SnapshotView(SnapshotView&&) noexcept = default;
  SnapshotView& operator=(SnapshotView&&) noexcept = default;

  const BoxT& bounds() const { return tree_->bounds(); }
  size_t capacity() const { return tree_->capacity(); }
  size_t max_depth() const { return tree_->max_depth(); }

  /// The sequence number of the pinned version: the number of successful
  /// operations (WAL records) this snapshot reflects.
  uint64_t sequence() const { return version_->sequence; }

  size_t size() const { return version_->size; }
  bool empty() const { return version_->size == 0; }
  size_t LeafCount() const { return version_->leaf_count; }

  /// The pinned version's census — bitwise identical to TakeCensus of a
  /// stop-the-world tree built from the same operation prefix.
  Census LiveCensus() const {
    Census census;
    for (size_t d = 0; d < version_->hist.size(); ++d) {
      const std::vector<uint64_t>& row = version_->hist[d];
      for (size_t occ = 0; occ < row.size(); ++occ) {
        if (row[occ] != 0) census.AddLeaves(occ, d, row[occ]);
      }
    }
    return census;
  }

  /// True iff an equal point is stored in this version.
  bool Contains(const PointT& p) const {
    if (!bounds().Contains(p)) return false;
    const Node* node = version_->root;
    BoxT box = bounds();
    while (!node->is_leaf) {
      size_t q = box.QuadrantOf(p);
      node = node->children[q];
      box = box.Quadrant(q);
    }
    const PointT* pts = node->points.data();
    for (size_t i = 0, n = node->points.size(); i < n; ++i) {
      if (pts[i] == p) return true;
    }
    return false;
  }

  /// All stored points inside `query` (half-open), unordered.
  std::vector<PointT> RangeQuery(const BoxT& query) const {
    std::vector<PointT> out;
    QueryCost cost;
    RangeQueryVisit(query, &cost,
                    [&out](const PointT& p) { out.push_back(p); });
    return out;
  }

  /// Cost-counted range search; same traversal (and counters) as
  /// PrTree::RangeQueryVisit.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    if (!bounds().Intersects(query)) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{version_->root, bounds(), 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      if (f.node->is_leaf) {
        ++cost->leaves_touched;
        const PointT* pts = f.node->points.data();
        const size_t n = f.node->points.size();
        cost->points_scanned += n;
        if constexpr (D == 2) {
          // Snapshot leaves are AoS (immutable InlineBuffer), so the leaf
          // filter goes through the stride-2 SIMD in-box kernel; matches,
          // visit order, and counters are identical to the scalar
          // Contains loop on every dispatch path.
          static_assert(sizeof(PointT) == 2 * sizeof(double));
          const double* xy = n != 0 ? pts[0].coords().data() : nullptr;
          for (size_t base = 0; base < n; base += 64) {
            const size_t chunk = n - base < 64 ? n - base : 64;
            uint64_t mask = simd::MaskPointsInBoxAos(
                xy + 2 * base, chunk, query.lo()[0], query.lo()[1],
                query.hi()[0], query.hi()[1]);
            while (mask != 0) {
              const size_t i = static_cast<size_t>(std::countr_zero(mask));
              mask &= mask - 1;
              fn(pts[base + i]);
            }
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (query.Contains(pts[i])) fn(pts[i]);
          }
        }
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (child.Intersects(query)) {
          stack.push_back(WalkFrame{f.node->children[q], child, f.depth + 1});
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// Cost-counted partial-match search; mirrors PrTree::PartialMatchVisit.
  /// The leaf scan stays scalar: the AoS layout has no contiguous axis
  /// lane, and a degenerate-box reformulation of the equality test would
  /// diverge from `p[axis] == value` on NaN coordinates.
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < D);
    POPAN_DCHECK(cost != nullptr);
    if (value < bounds().lo()[axis] || value >= bounds().hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{version_->root, bounds(), 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      if (f.node->is_leaf) {
        ++cost->leaves_touched;
        const PointT* pts = f.node->points.data();
        for (size_t i = 0, n = f.node->points.size(); i < n; ++i) {
          ++cost->points_scanned;
          if (pts[i][axis] == value) fn(pts[i]);
        }
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (child.lo()[axis] <= value && value < child.hi()[axis]) {
          stack.push_back(WalkFrame{f.node->children[q], child, f.depth + 1});
        } else {
          ++cost->pruned_subtrees;
        }
      }
    }
  }

  /// k nearest neighbors, ascending by the canonical (distance, x, y)
  /// key; mirrors PrTree::NearestK (same KnnHeap, same counters).
  std::vector<PointT> NearestK(const PointT& target, size_t k,
                               QueryCost* cost) const {
    POPAN_CHECK(k >= 1);
    POPAN_DCHECK(cost != nullptr);
    KnnHeap<PointT, PointTieLess> heap(k);
    std::vector<DistFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(DistFrame{version_->root, bounds(),
                              bounds().DistanceSquaredTo(target)});
    while (!stack.empty()) {
      DistFrame f = stack.back();
      stack.pop_back();
      if (heap.ShouldPrune(f.d2)) {
        ++cost->pruned_subtrees;
        continue;
      }
      ++cost->nodes_visited;
      if (f.node->is_leaf) {
        ++cost->leaves_touched;
        const PointT* pts = f.node->points.data();
        for (size_t i = 0, n = f.node->points.size(); i < n; ++i) {
          ++cost->points_scanned;
          heap.Offer(pts[i].DistanceSquared(target), pts[i]);
        }
        continue;
      }
      std::array<std::pair<double, size_t>, kFanout> order;
      for (size_t q = 0; q < kFanout; ++q) {
        order[q] = {f.box.Quadrant(q).DistanceSquaredTo(target), q};
      }
      std::sort(order.begin(), order.end());
      for (size_t i = kFanout; i-- > 0;) {
        const auto& [d2, q] = order[i];
        if (heap.ShouldPrune(d2)) {
          ++cost->pruned_subtrees;
          continue;
        }
        stack.push_back(
            DistFrame{f.node->children[q], f.box.Quadrant(q), d2});
      }
    }
    return heap.TakeSorted();
  }

  std::vector<PointT> NearestK(const PointT& target, size_t k) const {
    QueryCost cost;
    return NearestK(target, k, &cost);
  }

  /// fn(box, depth, occupancy) per leaf, preorder in quadrant order.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{version_->root, bounds(), 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      if (f.node->is_leaf) {
        fn(f.box, static_cast<size_t>(f.depth), f.node->points.size());
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(
            WalkFrame{f.node->children[q], f.box.Quadrant(q), f.depth + 1});
      }
    }
  }

  /// fn(box, depth, span<const PointT>) per leaf, preorder (Z order).
  template <typename Fn>
  void VisitLeavesPoints(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{version_->root, bounds(), 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      if (f.node->is_leaf) {
        fn(f.box, static_cast<size_t>(f.depth),
           std::span<const PointT>(f.node->points.data(),
                                   f.node->points.size()));
        continue;
      }
      for (size_t q = kFanout; q-- > 0;) {
        stack.push_back(
            WalkFrame{f.node->children[q], f.box.Quadrant(q), f.depth + 1});
      }
    }
  }

  /// Every stored point, in Z order of leaves.
  std::vector<PointT> AllPoints() const {
    std::vector<PointT> out;
    out.reserve(version_->size);
    VisitLeavesPoints(
        [&out](const BoxT&, size_t, std::span<const PointT> pts) {
          out.insert(out.end(), pts.begin(), pts.end());
        });
    return out;
  }

 private:
  friend class CowPrTree<D>;
  using Node = typename CowPrTree<D>::Node;
  using Version = typename CowPrTree<D>::Version;

  struct WalkFrame {
    const Node* node;
    BoxT box;
    uint32_t depth;
  };
  struct DistFrame {
    const Node* node;
    BoxT box;
    double d2;
  };
  static constexpr size_t kWalkStackHint = 64;

  SnapshotView(const CowPrTree<D>* tree, const Version* version,
               EpochManager::Pin pin)
      : tree_(tree), version_(version), pin_(std::move(pin)) {}

  const CowPrTree<D>* tree_;
  const Version* version_;
  EpochManager::Pin pin_;
};

template <size_t D>
SnapshotView<D> CowPrTree<D>::Snapshot() const {
  // Pin first, then load the head: the pinned epoch then protects every
  // node reachable from the loaded version (see epoch.h).
  EpochManager::Pin pin = epochs_.PinReader();
  const Version* v = head_.load(std::memory_order_seq_cst);
  return SnapshotView<D>(this, v, std::move(pin));
}

template <size_t D>
StatusOr<SnapshotView<D>> CowPrTree<D>::TrySnapshot() const {
  StatusOr<EpochManager::Pin> pin = epochs_.TryPinReader();
  POPAN_RETURN_IF_ERROR(pin.status());
  const Version* v = head_.load(std::memory_order_seq_cst);
  return SnapshotView<D>(this, v, std::move(pin).value());
}

/// Convenience aliases matching PrTree's.
using CowPrQuadtree = CowPrTree<2>;
using SnapshotView2 = SnapshotView<2>;

/// Epoch-protected publication of whole immutable values — the snapshot
/// mechanism for structures that are rebuilt rather than edited in place
/// (LinearPrQuadtree: the writer bulk-rebuilds per batch and publishes;
/// readers pin a consistent revision and query it without blocking).
/// Same single-writer / multi-reader contract as CowPrTree.
template <typename T>
class VersionedObject {
 public:
  explicit VersionedObject(T initial, uint64_t sequence = 0) {
    head_.store(new Revision{std::move(initial), sequence},
                std::memory_order_seq_cst);
  }

  ~VersionedObject() {
    delete head_.load(std::memory_order_relaxed);
    // epochs_'s destructor drains retired revisions.
  }

  VersionedObject(const VersionedObject&) = delete;
  VersionedObject& operator=(const VersionedObject&) = delete;

  /// A pinned revision; dereferences to the immutable value. Shares the
  /// outlive rules of SnapshotView.
  class View {
   public:
    View(View&&) noexcept = default;
    View& operator=(View&&) noexcept = default;

    const T& operator*() const { return revision_->value; }
    const T* operator->() const { return &revision_->value; }
    const T& get() const { return revision_->value; }
    uint64_t sequence() const { return revision_->sequence; }

   private:
    friend class VersionedObject;
    View(const typename VersionedObject::Revision* revision,
         EpochManager::Pin pin)
        : revision_(revision), pin_(std::move(pin)) {}

    const typename VersionedObject::Revision* revision_;
    EpochManager::Pin pin_;
  };

  /// Writer: publishes `next` at `sequence`, retiring the previous
  /// revision into the epoch limbo list.
  void Publish(T next, uint64_t sequence) {
    Revision* r = new Revision{std::move(next), sequence};
    const Revision* old = head_.load(std::memory_order_relaxed);
    head_.store(r, std::memory_order_seq_cst);
    epochs_.RetireObject(old);
    epochs_.AdvanceEpoch();
    epochs_.Reclaim();
  }

  /// Pins the current revision. Any thread. Aborts on reader-slot
  /// exhaustion; TrySnapshot below returns it as a typed error instead.
  [[nodiscard]] View Snapshot() const {
    EpochManager::Pin pin = epochs_.PinReader();
    const Revision* r = head_.load(std::memory_order_seq_cst);
    return View(r, std::move(pin));
  }

  /// Like Snapshot, but sheds load with ResourceExhausted when all
  /// reader slots are pinned.
  [[nodiscard]] StatusOr<View> TrySnapshot() const {
    StatusOr<EpochManager::Pin> pin = epochs_.TryPinReader();
    POPAN_RETURN_IF_ERROR(pin.status());
    const Revision* r = head_.load(std::memory_order_seq_cst);
    return View(r, std::move(pin).value());
  }

  /// Writer-side sequence of the newest revision.
  uint64_t sequence() const {
    return head_.load(std::memory_order_relaxed)->sequence;
  }

  EpochManager& epochs() const { return epochs_; }

 private:
  struct Revision {
    T value;
    uint64_t sequence;
  };

  mutable EpochManager epochs_;
  std::atomic<const Revision*> head_{nullptr};
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_SNAPSHOT_VIEW_H_
