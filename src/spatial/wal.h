#ifndef POPAN_SPATIAL_WAL_H_
#define POPAN_SPATIAL_WAL_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/pr_tree.h"
#include "util/statusor.h"

namespace popan::spatial {

/// A write-ahead log for a dynamic PR quadtree — the storage-engine idiom
/// for durability: every mutation is appended (with a sequence number and
/// a checksum) before it is applied, and a crashed process recovers by
/// loading the last checksummed snapshot (serialization.h WriteSnapshot,
/// checkpoint.h Recover) and replaying the log tail over it. Records are
/// line-oriented:
///
///   popan-wal v1 <capacity> <max_depth> <lo.x> <lo.y> <hi.x> <hi.y> <anchor>
///   <seq> I <x> <y> <checksum>
///   <seq> E <x> <y> <checksum>
///
/// `anchor` is the sequence number of the last record already reflected in
/// the state the log starts from: 0 for a log over an empty tree, the
/// snapshot's sequence for a log started by Checkpoint(). The first record
/// carries sequence anchor + 1. (Headers without the anchor token are read
/// as anchor 0, so pre-anchor logs stay replayable.)
///
/// The checksum covers the record's logical content, so torn or corrupted
/// tail records are detected and recovery stops at the last intact one —
/// replay never applies garbage. The writer validates records at append
/// time (finite, in-bounds coordinates), so it never logs a record the
/// reader would reject.
class WalWriter {
 public:
  /// Tag for the resume constructor below.
  struct ResumeAt {
    uint64_t next_sequence = 1;
  };

  /// Starts a fresh log for a tree with the given geometry/options,
  /// writing the header immediately. `anchor` is the sequence the log is
  /// anchored at (see above); the default 0 starts a log over an empty
  /// tree. The stream must outlive the writer.
  WalWriter(std::ostream* out, const geo::Box2& bounds,
            const PrTreeOptions& options, uint64_t anchor = 0);

  /// Resumes an existing log in place: writes no header and assigns
  /// `resume.next_sequence` to the next record. Use after recovery, with
  /// WalRecovery::next_sequence, once the log file has been truncated to
  /// WalRecovery::valid_bytes (so the resumed records land right after the
  /// last intact one instead of colliding with a discarded tail).
  WalWriter(std::ostream* out, const geo::Box2& bounds, ResumeAt resume);

  /// Appends an insert record; returns the sequence number assigned.
  /// Fails (InvalidArgument / OutOfRange) without writing anything when
  /// the point is non-finite or outside the logged bounds — such a record
  /// would truncate replay at recovery time.
  [[nodiscard]] StatusOr<uint64_t> LogInsert(const geo::Point2& p);

  /// Appends an erase record, with the same append-time validation.
  [[nodiscard]] StatusOr<uint64_t> LogErase(const geo::Point2& p);

  /// Sequence number of the next record.
  uint64_t next_sequence() const { return next_sequence_; }

 private:
  [[nodiscard]] StatusOr<uint64_t> Append(char op, const geo::Point2& p);

  std::ostream* out_;
  geo::Box2 bounds_;
  uint64_t next_sequence_ = 1;
};

/// The result of a recovery.
struct WalRecovery {
  PrTree<2> tree;               ///< state after replaying intact records
  uint64_t anchor = 0;          ///< sequence the log was anchored at
  uint64_t records_applied = 0;
  uint64_t last_sequence = 0;   ///< == anchor when no records applied
  /// The sequence a resumed writer must use (last_sequence + 1) — the fix
  /// for the resume/collision bug: appending with a fresh sequence-1
  /// writer would collide with the existing records and replay would
  /// discard everything after the old tail as a sequence gap.
  uint64_t next_sequence = 1;
  /// Byte length of the intact prefix of the log (header plus every
  /// applied record). Truncate the file here before resuming with
  /// WalWriter::ResumeAt so new records follow the last intact one.
  size_t valid_bytes = 0;
  /// True when replay stopped early at a corrupt/torn record (everything
  /// before it was applied; the tail was discarded).
  bool truncated_tail = false;
  std::string truncation_reason;
};

/// Replays a log from the beginning onto an empty tree. Fails
/// (InvalidArgument) only for an unusable header — including a log
/// anchored at a nonzero sequence, which needs its snapshot (use the
/// base-tree overload or checkpoint.h Recover). Data-record corruption is
/// not an error — it marks the end of the usable log, exactly like a torn
/// write after a crash. Records that no longer apply cleanly (duplicate
/// insert, erase of a missing point) also stop replay: they indicate a
/// log/state mismatch.
[[nodiscard]] StatusOr<WalRecovery> ReplayWal(std::istream* in);
[[nodiscard]] StatusOr<WalRecovery> ReplayWal(const std::string& text);

/// Replays a log anchored at `base_sequence` onto a copy of `base` (the
/// state a snapshot restored). Fails with InvalidArgument for an unusable
/// header and FailedPrecondition when the header's anchor or geometry do
/// not match `base` — that pairing mismatch means the caller handed the
/// wrong snapshot/log pair, not a torn tail.
[[nodiscard]]
StatusOr<WalRecovery> ReplayWal(std::istream* in, const PrTree<2>& base,
                                uint64_t base_sequence);
[[nodiscard]] StatusOr<WalRecovery> ReplayWal(const std::string& text,
                                const PrTree<2>& base,
                                uint64_t base_sequence);

/// Prepares a crashed log file for resumed appends: truncates it to
/// `valid_bytes` (the intact prefix recovery measured) and opens it for
/// appending, ready to hand to WalWriter::ResumeAt.
///
/// The truncation is NOT optional. A torn tail record has no trailing
/// newline, so a writer that simply opens the file in append mode glues
/// its first record onto the partial line — producing a hybrid line whose
/// checksum cannot match, which silently discards that record (and
/// everything after it) at the next recovery. Cutting the file back to
/// the intact prefix first is what makes the resumed records land on a
/// record boundary.
///
/// Errors: NotFound when the file does not exist, InvalidArgument when
/// `valid_bytes` exceeds the file size (the recovery result belongs to a
/// different file), Internal when the filesystem refuses the truncation
/// or the append-mode open fails.
[[nodiscard]] StatusOr<std::ofstream> ResumeWalFile(const std::string& path,
                                                    size_t valid_bytes);

/// The checksum used for log records (FNV-1a over the formatted content);
/// exposed so tests can craft valid and corrupt records.
uint64_t WalChecksum(uint64_t sequence, char op, double x, double y);

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_WAL_H_
