#ifndef POPAN_SPATIAL_WAL_H_
#define POPAN_SPATIAL_WAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "geometry/point.h"
#include "spatial/pr_tree.h"
#include "util/statusor.h"

namespace popan::spatial {

/// A write-ahead log for a dynamic PR quadtree — the storage-engine idiom
/// for durability: every mutation is appended (with a sequence number and
/// a checksum) before it is applied, and a crashed process recovers by
/// replaying the log over the last snapshot. Records are line-oriented:
///
///   popan-wal v1 <capacity> <max_depth> <lo.x> <lo.y> <hi.x> <hi.y>
///   <seq> I <x> <y> <checksum>
///   <seq> E <x> <y> <checksum>
///
/// The checksum covers the record's logical content, so torn or corrupted
/// tail records are detected and recovery stops at the last intact one —
/// replay never applies garbage.
class WalWriter {
 public:
  /// Starts a log for a tree with the given geometry/options, writing the
  /// header immediately. The stream must outlive the writer.
  WalWriter(std::ostream* out, const geo::Box2& bounds,
            const PrTreeOptions& options);

  /// Appends an insert record; returns the sequence number assigned.
  uint64_t LogInsert(const geo::Point2& p);

  /// Appends an erase record.
  uint64_t LogErase(const geo::Point2& p);

  /// Sequence number of the next record.
  uint64_t next_sequence() const { return next_sequence_; }

 private:
  void Append(char op, const geo::Point2& p);

  std::ostream* out_;
  uint64_t next_sequence_ = 1;
};

/// The result of a recovery.
struct WalRecovery {
  PrTree<2> tree;               ///< state after replaying intact records
  uint64_t records_applied = 0;
  uint64_t last_sequence = 0;
  /// True when replay stopped early at a corrupt/torn record (everything
  /// before it was applied; the tail was discarded).
  bool truncated_tail = false;
  std::string truncation_reason;
};

/// Replays a log from the beginning. Fails (InvalidArgument) only for an
/// unusable header; data-record corruption is not an error — it marks the
/// end of the usable log, exactly like a torn write after a crash.
/// Records that no longer apply cleanly (duplicate insert, erase of a
/// missing point) also stop replay: they indicate a log/state mismatch.
StatusOr<WalRecovery> ReplayWal(std::istream* in);
StatusOr<WalRecovery> ReplayWal(const std::string& text);

/// The checksum used for log records (FNV-1a over the formatted content);
/// exposed so tests can craft valid and corrupt records.
uint64_t WalChecksum(uint64_t sequence, char op, double x, double y);

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_WAL_H_
