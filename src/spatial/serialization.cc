#include "spatial/serialization.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "spatial/morton.h"
#include "util/text_io.h"

namespace popan::spatial {

namespace {

constexpr char kLinearMagic[] = "popan-linear-quadtree v1";
constexpr char kRegionMagic[] = "popan-region-quadtree v1";
constexpr char kSnapshotMagic[] = "popan-prtree-snapshot v1";

}  // namespace

void Serialize(const LinearPrQuadtree& tree, std::ostream* out) {
  StreamFormatGuard guard(out);
  *out << kLinearMagic << "\n";
  *out << std::setprecision(17);
  *out << "bounds " << tree.bounds().lo().x() << " "
       << tree.bounds().lo().y() << " " << tree.bounds().hi().x() << " "
       << tree.bounds().hi().y() << "\n";
  // Recover max_depth via the deepest leaf bound stored in options; the
  // canonical decomposition only needs capacity, but truncated trees need
  // the exact depth cap, so persist the deepest leaf depth as the cap
  // when leaves are over capacity.
  size_t max_depth = MortonCode::kMaxDepth;
  bool truncated = false;
  for (const LinearPrQuadtree::Leaf& leaf : tree.leaves()) {
    if (leaf.points.size() > tree.capacity()) truncated = true;
  }
  if (truncated) {
    size_t deepest = 0;
    for (const LinearPrQuadtree::Leaf& leaf : tree.leaves()) {
      deepest = std::max<size_t>(deepest, leaf.code.depth);
    }
    max_depth = deepest;
  }
  *out << "options " << tree.capacity() << " " << max_depth << "\n";
  *out << "leaves " << tree.LeafCount() << "\n";
  for (const LinearPrQuadtree::Leaf& leaf : tree.leaves()) {
    *out << "leaf " << leaf.code.bits << " "
         << static_cast<unsigned>(leaf.code.depth) << " "
         << leaf.points.size();
    for (const geo::Point2& p : leaf.points) {
      *out << " " << p.x() << " " << p.y();
    }
    *out << "\n";
  }
}

std::string SerializeToString(const LinearPrQuadtree& tree) {
  std::ostringstream os;
  Serialize(tree, &os);
  return os.str();
}

[[nodiscard]]
StatusOr<LinearPrQuadtree> DeserializeLinearPrQuadtree(std::istream* in) {
  std::vector<std::string> tokens;
  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] + " " + tokens[1] != kLinearMagic) {
    return Status::InvalidArgument("missing linear-quadtree magic line");
  }
  if (!ReadTokens(in, &tokens) || tokens.size() != 5 ||
      tokens[0] != "bounds") {
    return Status::InvalidArgument("missing bounds line");
  }
  POPAN_ASSIGN_OR_RETURN(double lox, ParseDouble(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(double loy, ParseDouble(tokens[2]));
  POPAN_ASSIGN_OR_RETURN(double hix, ParseDouble(tokens[3]));
  POPAN_ASSIGN_OR_RETURN(double hiy, ParseDouble(tokens[4]));
  if (!(lox < hix) || !(loy < hiy)) {
    return Status::InvalidArgument("degenerate bounds");
  }
  geo::Box2 bounds(geo::Point2(lox, loy), geo::Point2(hix, hiy));

  if (!ReadTokens(in, &tokens) || tokens.size() != 3 ||
      tokens[0] != "options") {
    return Status::InvalidArgument("missing options line");
  }
  PrTreeOptions options;
  POPAN_ASSIGN_OR_RETURN(uint64_t capacity, ParseU64(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(uint64_t max_depth, ParseU64(tokens[2]));
  if (capacity == 0) return Status::InvalidArgument("capacity 0");
  options.capacity = static_cast<size_t>(capacity);
  options.max_depth = static_cast<size_t>(max_depth);

  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] != "leaves") {
    return Status::InvalidArgument("missing leaves line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t leaf_count, ParseU64(tokens[1]));

  std::vector<MortonCode> file_codes;
  std::vector<geo::Point2> points;
  for (uint64_t l = 0; l < leaf_count; ++l) {
    if (!ReadTokens(in, &tokens) || tokens.size() < 4 ||
        tokens[0] != "leaf") {
      return Status::InvalidArgument("bad leaf line " + std::to_string(l));
    }
    POPAN_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(tokens[1]));
    POPAN_ASSIGN_OR_RETURN(uint64_t depth, ParseU64(tokens[2]));
    POPAN_ASSIGN_OR_RETURN(uint64_t npoints, ParseU64(tokens[3]));
    if (depth > MortonCode::kMaxDepth) {
      return Status::InvalidArgument("leaf depth out of range");
    }
    if (tokens.size() != 4 + 2 * npoints) {
      return Status::InvalidArgument("leaf point count mismatch");
    }
    MortonCode code;
    code.bits = bits;
    code.depth = static_cast<uint8_t>(depth);
    file_codes.push_back(code);
    for (uint64_t i = 0; i < npoints; ++i) {
      POPAN_ASSIGN_OR_RETURN(double x, ParseDouble(tokens[4 + 2 * i]));
      POPAN_ASSIGN_OR_RETURN(double y, ParseDouble(tokens[5 + 2 * i]));
      points.emplace_back(x, y);
    }
  }

  // Rebuild canonically from the points (the PR decomposition is unique),
  // then verify the file's leaf codes match — any corruption of codes,
  // duplication or loss shows up as a mismatch.
  POPAN_ASSIGN_OR_RETURN(
      LinearPrQuadtree tree,
      LinearPrQuadtree::BulkLoad(bounds, std::move(points), options));
  if (tree.LeafCount() != file_codes.size()) {
    return Status::InvalidArgument(
        "leaf codes inconsistent with point data (count)");
  }
  for (size_t i = 0; i < file_codes.size(); ++i) {
    if (tree.leaves()[i].code != file_codes[i]) {
      return Status::InvalidArgument(
          "leaf codes inconsistent with point data at index " +
          std::to_string(i));
    }
  }
  return tree;
}

[[nodiscard]] StatusOr<LinearPrQuadtree> DeserializeLinearPrQuadtree(
    const std::string& text) {
  std::istringstream in(text);
  return DeserializeLinearPrQuadtree(&in);
}

void Serialize(const RegionQuadtree& tree, std::ostream* out) {
  *out << kRegionMagic << "\n";
  *out << "side " << tree.side() << "\n";
  // Leaves in Morton order with their codes.
  struct Entry {
    uint64_t bits;
    unsigned depth;
    bool black;
  };
  std::vector<Entry> entries;
  size_t side = tree.side();
  tree.VisitLeaves([&entries, side](size_t x0, size_t y0, size_t block,
                                    bool black) {
    // Reconstruct the Morton code from pixel coordinates.
    MortonCode code;
    size_t half = side;
    size_t x = x0, y = y0;
    while (half > block) {
      half /= 2;
      size_t q = (x >= half ? 1 : 0) | (y >= half ? 2 : 0);
      if (x >= half) x -= half;
      if (y >= half) y -= half;
      code = ChildCode(code, q);
    }
    entries.push_back(
        {code.bits, static_cast<unsigned>(code.depth), black});
  });
  *out << "leaves " << entries.size() << "\n";
  for (const Entry& e : entries) {
    *out << "leaf " << e.bits << " " << e.depth << " " << (e.black ? 1 : 0)
         << "\n";
  }
}

std::string SerializeToString(const RegionQuadtree& tree) {
  std::ostringstream os;
  Serialize(tree, &os);
  return os.str();
}

[[nodiscard]]
StatusOr<RegionQuadtree> DeserializeRegionQuadtree(std::istream* in) {
  std::vector<std::string> tokens;
  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] + " " + tokens[1] != kRegionMagic) {
    return Status::InvalidArgument("missing region-quadtree magic line");
  }
  if (!ReadTokens(in, &tokens) || tokens.size() != 2 || tokens[0] != "side") {
    return Status::InvalidArgument("missing side line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t side64, ParseU64(tokens[1]));
  size_t side = static_cast<size_t>(side64);
  POPAN_ASSIGN_OR_RETURN(RegionQuadtree tree, RegionQuadtree::Empty(side));
  size_t depth_limit = 0;
  while ((size_t{1} << depth_limit) < side) ++depth_limit;

  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] != "leaves") {
    return Status::InvalidArgument("missing leaves line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t leaf_count, ParseU64(tokens[1]));

  uint64_t expected_lo = 0;
  for (uint64_t l = 0; l < leaf_count; ++l) {
    if (!ReadTokens(in, &tokens) || tokens.size() != 4 ||
        tokens[0] != "leaf") {
      return Status::InvalidArgument("bad leaf line " + std::to_string(l));
    }
    POPAN_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(tokens[1]));
    POPAN_ASSIGN_OR_RETURN(uint64_t depth, ParseU64(tokens[2]));
    POPAN_ASSIGN_OR_RETURN(uint64_t black, ParseU64(tokens[3]));
    if (depth > depth_limit) {
      return Status::InvalidArgument("leaf deeper than the image allows");
    }
    if (black > 1) return Status::InvalidArgument("bad color");
    MortonCode code;
    code.bits = bits;
    code.depth = static_cast<uint8_t>(depth);
    uint64_t lo, hi;
    DescendantRange(code, &lo, &hi);
    if (lo != expected_lo) {
      return Status::InvalidArgument("leaves do not tile the image");
    }
    expected_lo = hi;
    if (black == 1) {
      // Decode pixel rectangle from the code path.
      size_t block = side >> depth;
      size_t x = 0, y = 0;
      for (uint64_t level = 0; level < depth; ++level) {
        uint64_t q =
            (bits >> (2 * (MortonCode::kMaxDepth - 1 - level))) & 3;
        size_t half = side >> (level + 1);
        if (q & 1) x += half;
        if (q & 2) y += half;
      }
      tree.SetRect(x, y, x + block, y + block, true);
    }
  }
  if (expected_lo != (uint64_t{1} << (2 * MortonCode::kMaxDepth))) {
    return Status::InvalidArgument("leaves do not cover the image");
  }
  return tree;
}

[[nodiscard]]
StatusOr<RegionQuadtree> DeserializeRegionQuadtree(const std::string& text) {
  std::istringstream in(text);
  return DeserializeRegionQuadtree(&in);
}

[[nodiscard]] Status WriteSnapshot(const PrTree<2>& tree, uint64_t sequence,
                     std::ostream* out) {
  size_t deepest = 0;
  tree.VisitLeaves([&deepest](const geo::Box2&, size_t depth, size_t) {
    deepest = std::max(deepest, depth);
  });
  if (deepest > MortonCode::kMaxDepth) {
    return Status::InvalidArgument(
        "tree too deep for snapshot locational codes (leaf at depth " +
        std::to_string(deepest) + ")");
  }
  // Linearize into Morton order; the leaf array then doubles as the
  // canonical form the reader re-derives and verifies.
  LinearPrQuadtree linear = LinearPrQuadtree::FromTree(tree);
  std::ostringstream body;
  StreamFormatGuard body_guard(&body);
  body << kSnapshotMagic << "\n";
  body << "sequence " << sequence << "\n";
  body << std::setprecision(17);
  body << "bounds " << tree.bounds().lo().x() << " "
       << tree.bounds().lo().y() << " " << tree.bounds().hi().x() << " "
       << tree.bounds().hi().y() << "\n";
  body << "options " << tree.capacity() << " " << tree.max_depth() << "\n";
  body << "leaves " << linear.LeafCount() << " " << tree.size() << "\n";
  for (const LinearPrQuadtree::Leaf& leaf : linear.leaves()) {
    body << "leaf " << leaf.code.bits << " "
         << static_cast<unsigned>(leaf.code.depth) << " "
         << leaf.points.size();
    for (const geo::Point2& p : leaf.points) {
      body << " " << p.x() << " " << p.y();
    }
    body << "\n";
  }
  std::string bytes = body.str();
  StreamFormatGuard guard(out);
  *out << bytes << "checksum " << Fnv1a(bytes) << "\n";
  out->flush();
  return Status::OK();
}

[[nodiscard]] StatusOr<std::string> SnapshotToString(const PrTree<2>& tree,
                                       uint64_t sequence) {
  std::ostringstream os;
  POPAN_RETURN_IF_ERROR(WriteSnapshot(tree, sequence, &os));
  return os.str();
}

[[nodiscard]] StatusOr<PrTreeSnapshot> ReadPrTreeSnapshot(std::istream* in) {
  // Phase 1: accumulate the body up to the checksum trailer and verify it
  // before interpreting anything. Lines are normalized to LF so a CRLF
  // round trip through another tool does not break the checksum.
  std::string body;
  std::string line;
  bool saw_checksum = false;
  uint64_t declared = 0;
  while (std::getline(*in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("checksum ", 0) == 0) {
      POPAN_ASSIGN_OR_RETURN(declared, ParseU64(line.substr(9)));
      saw_checksum = true;
      break;
    }
    body += line;
    body += '\n';
  }
  if (!saw_checksum) {
    return Status::InvalidArgument(
        "snapshot missing its checksum trailer (truncated?)");
  }
  if (Fnv1a(body) != declared) {
    return Status::InvalidArgument("snapshot checksum mismatch");
  }

  // Phase 2: parse the verified body.
  std::istringstream bs(body);
  std::vector<std::string> tokens;
  if (!ReadTokens(&bs, &tokens) || tokens.size() != 2 ||
      tokens[0] + " " + tokens[1] != kSnapshotMagic) {
    return Status::InvalidArgument("missing snapshot magic line");
  }
  if (!ReadTokens(&bs, &tokens) || tokens.size() != 2 ||
      tokens[0] != "sequence") {
    return Status::InvalidArgument("missing sequence line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t sequence, ParseU64(tokens[1]));
  if (!ReadTokens(&bs, &tokens) || tokens.size() != 5 ||
      tokens[0] != "bounds") {
    return Status::InvalidArgument("missing bounds line");
  }
  POPAN_ASSIGN_OR_RETURN(double lox, ParseDouble(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(double loy, ParseDouble(tokens[2]));
  POPAN_ASSIGN_OR_RETURN(double hix, ParseDouble(tokens[3]));
  POPAN_ASSIGN_OR_RETURN(double hiy, ParseDouble(tokens[4]));
  if (!(lox < hix) || !(loy < hiy)) {
    return Status::InvalidArgument("degenerate bounds");
  }
  geo::Box2 bounds(geo::Point2(lox, loy), geo::Point2(hix, hiy));
  if (!ReadTokens(&bs, &tokens) || tokens.size() != 3 ||
      tokens[0] != "options") {
    return Status::InvalidArgument("missing options line");
  }
  PrTreeOptions options;
  POPAN_ASSIGN_OR_RETURN(uint64_t capacity, ParseU64(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(uint64_t max_depth, ParseU64(tokens[2]));
  if (capacity == 0) return Status::InvalidArgument("capacity 0");
  options.capacity = static_cast<size_t>(capacity);
  options.max_depth = static_cast<size_t>(max_depth);
  if (!ReadTokens(&bs, &tokens) || tokens.size() != 3 ||
      tokens[0] != "leaves") {
    return Status::InvalidArgument("missing leaves line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t leaf_count, ParseU64(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(uint64_t point_count, ParseU64(tokens[2]));

  struct FileLeaf {
    MortonCode code;
    uint64_t npoints;
  };
  std::vector<FileLeaf> file_leaves;
  file_leaves.reserve(static_cast<size_t>(leaf_count));
  std::vector<geo::Point2> points;
  points.reserve(static_cast<size_t>(point_count));
  for (uint64_t l = 0; l < leaf_count; ++l) {
    if (!ReadTokens(&bs, &tokens) || tokens.size() < 4 ||
        tokens[0] != "leaf") {
      return Status::InvalidArgument("bad leaf line " + std::to_string(l));
    }
    POPAN_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(tokens[1]));
    POPAN_ASSIGN_OR_RETURN(uint64_t depth, ParseU64(tokens[2]));
    POPAN_ASSIGN_OR_RETURN(uint64_t npoints, ParseU64(tokens[3]));
    if (depth > MortonCode::kMaxDepth) {
      return Status::InvalidArgument("leaf depth out of range");
    }
    if (tokens.size() != 4 + 2 * npoints) {
      return Status::InvalidArgument("leaf point count mismatch");
    }
    MortonCode code;
    code.bits = bits;
    code.depth = static_cast<uint8_t>(depth);
    geo::Box2 block = BlockOfCode(bounds, code);
    for (uint64_t i = 0; i < npoints; ++i) {
      POPAN_ASSIGN_OR_RETURN(double x, ParseDouble(tokens[4 + 2 * i]));
      POPAN_ASSIGN_OR_RETURN(double y, ParseDouble(tokens[5 + 2 * i]));
      geo::Point2 p(x, y);
      if (!block.Contains(p)) {
        return Status::InvalidArgument(
            "point attributed to the wrong leaf block");
      }
      points.push_back(p);
    }
    file_leaves.push_back(FileLeaf{code, npoints});
  }
  if (points.size() != point_count) {
    return Status::InvalidArgument("snapshot point count mismatch");
  }

  // Phase 3: rebuild canonically from the points (the PR decomposition is
  // unique) and verify the file's leaves are exactly the decomposition's.
  POPAN_ASSIGN_OR_RETURN(
      LinearPrQuadtree linear,
      LinearPrQuadtree::BulkLoad(bounds, points, options));
  if (linear.LeafCount() != file_leaves.size()) {
    return Status::InvalidArgument(
        "leaf codes inconsistent with point data (count)");
  }
  for (size_t i = 0; i < file_leaves.size(); ++i) {
    if (linear.leaves()[i].code != file_leaves[i].code ||
        linear.leaves()[i].points.size() != file_leaves[i].npoints) {
      return Status::InvalidArgument(
          "leaf codes inconsistent with point data at index " +
          std::to_string(i));
    }
  }

  PrTree<2> tree(bounds, options);
  tree.ReserveForPoints(points.size());
  for (const geo::Point2& p : points) {
    Status inserted = tree.Insert(p);
    if (!inserted.ok()) {
      return Status::InvalidArgument("snapshot point rejected: " +
                                     inserted.ToString());
    }
  }
  // The dynamic rebuild must agree with the linear one leaf-for-leaf; a
  // divergence means the declared options cannot reproduce these leaves
  // (e.g. a forged max_depth beyond what codes express).
  if (tree.LeafCount() != linear.LeafCount() || tree.size() != linear.size()) {
    return Status::InvalidArgument(
        "snapshot inconsistent with its canonical decomposition");
  }
  POPAN_RETURN_IF_ERROR(tree.CheckInvariants());
  return PrTreeSnapshot{std::move(tree), sequence};
}

[[nodiscard]]
StatusOr<PrTreeSnapshot> ReadPrTreeSnapshot(const std::string& text) {
  std::istringstream in(text);
  return ReadPrTreeSnapshot(&in);
}

}  // namespace popan::spatial
