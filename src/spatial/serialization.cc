#include "spatial/serialization.h"

#include <charconv>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "spatial/morton.h"

namespace popan::spatial {

namespace {

constexpr char kLinearMagic[] = "popan-linear-quadtree v1";
constexpr char kRegionMagic[] = "popan-region-quadtree v1";

/// Reads one line and splits it on spaces.
bool ReadTokens(std::istream* in, std::vector<std::string>* tokens) {
  std::string line;
  if (!std::getline(*in, line)) return false;
  tokens->clear();
  std::istringstream ls(line);
  std::string token;
  while (ls >> token) tokens->push_back(token);
  return true;
}

StatusOr<uint64_t> ParseU64(const std::string& s) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: " + s);
  }
  return value;
}

StatusOr<double> ParseDouble(const std::string& s) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("bad real number: " + s);
  }
  return value;
}

}  // namespace

void Serialize(const LinearPrQuadtree& tree, std::ostream* out) {
  *out << kLinearMagic << "\n";
  *out << std::setprecision(17);
  *out << "bounds " << tree.bounds().lo().x() << " "
       << tree.bounds().lo().y() << " " << tree.bounds().hi().x() << " "
       << tree.bounds().hi().y() << "\n";
  // Recover max_depth via the deepest leaf bound stored in options; the
  // canonical decomposition only needs capacity, but truncated trees need
  // the exact depth cap, so persist the deepest leaf depth as the cap
  // when leaves are over capacity.
  size_t max_depth = MortonCode::kMaxDepth;
  bool truncated = false;
  for (const LinearPrQuadtree::Leaf& leaf : tree.leaves()) {
    if (leaf.points.size() > tree.capacity()) truncated = true;
  }
  if (truncated) {
    size_t deepest = 0;
    for (const LinearPrQuadtree::Leaf& leaf : tree.leaves()) {
      deepest = std::max<size_t>(deepest, leaf.code.depth);
    }
    max_depth = deepest;
  }
  *out << "options " << tree.capacity() << " " << max_depth << "\n";
  *out << "leaves " << tree.LeafCount() << "\n";
  for (const LinearPrQuadtree::Leaf& leaf : tree.leaves()) {
    *out << "leaf " << leaf.code.bits << " "
         << static_cast<unsigned>(leaf.code.depth) << " "
         << leaf.points.size();
    for (const geo::Point2& p : leaf.points) {
      *out << " " << p.x() << " " << p.y();
    }
    *out << "\n";
  }
}

std::string SerializeToString(const LinearPrQuadtree& tree) {
  std::ostringstream os;
  Serialize(tree, &os);
  return os.str();
}

StatusOr<LinearPrQuadtree> DeserializeLinearPrQuadtree(std::istream* in) {
  std::vector<std::string> tokens;
  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] + " " + tokens[1] != kLinearMagic) {
    return Status::InvalidArgument("missing linear-quadtree magic line");
  }
  if (!ReadTokens(in, &tokens) || tokens.size() != 5 ||
      tokens[0] != "bounds") {
    return Status::InvalidArgument("missing bounds line");
  }
  POPAN_ASSIGN_OR_RETURN(double lox, ParseDouble(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(double loy, ParseDouble(tokens[2]));
  POPAN_ASSIGN_OR_RETURN(double hix, ParseDouble(tokens[3]));
  POPAN_ASSIGN_OR_RETURN(double hiy, ParseDouble(tokens[4]));
  if (!(lox < hix) || !(loy < hiy)) {
    return Status::InvalidArgument("degenerate bounds");
  }
  geo::Box2 bounds(geo::Point2(lox, loy), geo::Point2(hix, hiy));

  if (!ReadTokens(in, &tokens) || tokens.size() != 3 ||
      tokens[0] != "options") {
    return Status::InvalidArgument("missing options line");
  }
  PrTreeOptions options;
  POPAN_ASSIGN_OR_RETURN(uint64_t capacity, ParseU64(tokens[1]));
  POPAN_ASSIGN_OR_RETURN(uint64_t max_depth, ParseU64(tokens[2]));
  if (capacity == 0) return Status::InvalidArgument("capacity 0");
  options.capacity = static_cast<size_t>(capacity);
  options.max_depth = static_cast<size_t>(max_depth);

  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] != "leaves") {
    return Status::InvalidArgument("missing leaves line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t leaf_count, ParseU64(tokens[1]));

  std::vector<MortonCode> file_codes;
  std::vector<geo::Point2> points;
  for (uint64_t l = 0; l < leaf_count; ++l) {
    if (!ReadTokens(in, &tokens) || tokens.size() < 4 ||
        tokens[0] != "leaf") {
      return Status::InvalidArgument("bad leaf line " + std::to_string(l));
    }
    POPAN_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(tokens[1]));
    POPAN_ASSIGN_OR_RETURN(uint64_t depth, ParseU64(tokens[2]));
    POPAN_ASSIGN_OR_RETURN(uint64_t npoints, ParseU64(tokens[3]));
    if (depth > MortonCode::kMaxDepth) {
      return Status::InvalidArgument("leaf depth out of range");
    }
    if (tokens.size() != 4 + 2 * npoints) {
      return Status::InvalidArgument("leaf point count mismatch");
    }
    MortonCode code;
    code.bits = bits;
    code.depth = static_cast<uint8_t>(depth);
    file_codes.push_back(code);
    for (uint64_t i = 0; i < npoints; ++i) {
      POPAN_ASSIGN_OR_RETURN(double x, ParseDouble(tokens[4 + 2 * i]));
      POPAN_ASSIGN_OR_RETURN(double y, ParseDouble(tokens[5 + 2 * i]));
      points.emplace_back(x, y);
    }
  }

  // Rebuild canonically from the points (the PR decomposition is unique),
  // then verify the file's leaf codes match — any corruption of codes,
  // duplication or loss shows up as a mismatch.
  POPAN_ASSIGN_OR_RETURN(
      LinearPrQuadtree tree,
      LinearPrQuadtree::BulkLoad(bounds, std::move(points), options));
  if (tree.LeafCount() != file_codes.size()) {
    return Status::InvalidArgument(
        "leaf codes inconsistent with point data (count)");
  }
  for (size_t i = 0; i < file_codes.size(); ++i) {
    if (tree.leaves()[i].code != file_codes[i]) {
      return Status::InvalidArgument(
          "leaf codes inconsistent with point data at index " +
          std::to_string(i));
    }
  }
  return tree;
}

StatusOr<LinearPrQuadtree> DeserializeLinearPrQuadtree(
    const std::string& text) {
  std::istringstream in(text);
  return DeserializeLinearPrQuadtree(&in);
}

void Serialize(const RegionQuadtree& tree, std::ostream* out) {
  *out << kRegionMagic << "\n";
  *out << "side " << tree.side() << "\n";
  // Leaves in Morton order with their codes.
  struct Entry {
    uint64_t bits;
    unsigned depth;
    bool black;
  };
  std::vector<Entry> entries;
  size_t side = tree.side();
  tree.VisitLeaves([&entries, side](size_t x0, size_t y0, size_t block,
                                    bool black) {
    // Reconstruct the Morton code from pixel coordinates.
    MortonCode code;
    size_t half = side;
    size_t x = x0, y = y0;
    while (half > block) {
      half /= 2;
      size_t q = (x >= half ? 1 : 0) | (y >= half ? 2 : 0);
      if (x >= half) x -= half;
      if (y >= half) y -= half;
      code = ChildCode(code, q);
    }
    entries.push_back(
        {code.bits, static_cast<unsigned>(code.depth), black});
  });
  *out << "leaves " << entries.size() << "\n";
  for (const Entry& e : entries) {
    *out << "leaf " << e.bits << " " << e.depth << " " << (e.black ? 1 : 0)
         << "\n";
  }
}

std::string SerializeToString(const RegionQuadtree& tree) {
  std::ostringstream os;
  Serialize(tree, &os);
  return os.str();
}

StatusOr<RegionQuadtree> DeserializeRegionQuadtree(std::istream* in) {
  std::vector<std::string> tokens;
  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] + " " + tokens[1] != kRegionMagic) {
    return Status::InvalidArgument("missing region-quadtree magic line");
  }
  if (!ReadTokens(in, &tokens) || tokens.size() != 2 || tokens[0] != "side") {
    return Status::InvalidArgument("missing side line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t side64, ParseU64(tokens[1]));
  size_t side = static_cast<size_t>(side64);
  POPAN_ASSIGN_OR_RETURN(RegionQuadtree tree, RegionQuadtree::Empty(side));
  size_t depth_limit = 0;
  while ((size_t{1} << depth_limit) < side) ++depth_limit;

  if (!ReadTokens(in, &tokens) || tokens.size() != 2 ||
      tokens[0] != "leaves") {
    return Status::InvalidArgument("missing leaves line");
  }
  POPAN_ASSIGN_OR_RETURN(uint64_t leaf_count, ParseU64(tokens[1]));

  uint64_t expected_lo = 0;
  for (uint64_t l = 0; l < leaf_count; ++l) {
    if (!ReadTokens(in, &tokens) || tokens.size() != 4 ||
        tokens[0] != "leaf") {
      return Status::InvalidArgument("bad leaf line " + std::to_string(l));
    }
    POPAN_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(tokens[1]));
    POPAN_ASSIGN_OR_RETURN(uint64_t depth, ParseU64(tokens[2]));
    POPAN_ASSIGN_OR_RETURN(uint64_t black, ParseU64(tokens[3]));
    if (depth > depth_limit) {
      return Status::InvalidArgument("leaf deeper than the image allows");
    }
    if (black > 1) return Status::InvalidArgument("bad color");
    MortonCode code;
    code.bits = bits;
    code.depth = static_cast<uint8_t>(depth);
    uint64_t lo, hi;
    DescendantRange(code, &lo, &hi);
    if (lo != expected_lo) {
      return Status::InvalidArgument("leaves do not tile the image");
    }
    expected_lo = hi;
    if (black == 1) {
      // Decode pixel rectangle from the code path.
      size_t block = side >> depth;
      size_t x = 0, y = 0;
      for (uint64_t level = 0; level < depth; ++level) {
        uint64_t q =
            (bits >> (2 * (MortonCode::kMaxDepth - 1 - level))) & 3;
        size_t half = side >> (level + 1);
        if (q & 1) x += half;
        if (q & 2) y += half;
      }
      tree.SetRect(x, y, x + block, y + block, true);
    }
  }
  if (expected_lo != (uint64_t{1} << (2 * MortonCode::kMaxDepth))) {
    return Status::InvalidArgument("leaves do not cover the image");
  }
  return tree;
}

StatusOr<RegionQuadtree> DeserializeRegionQuadtree(const std::string& text) {
  std::istringstream in(text);
  return DeserializeRegionQuadtree(&in);
}

}  // namespace popan::spatial
