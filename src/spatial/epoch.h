#ifndef POPAN_SPATIAL_EPOCH_H_
#define POPAN_SPATIAL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace popan::spatial {

/// Epoch-based memory reclamation for single-writer / multi-reader
/// structures (the concurrency substrate under snapshot_view.h).
///
/// The protocol, and why it is safe:
///
///  - A global epoch counter only ever increases, and only the writer
///    advances it (AdvanceEpoch).
///  - A reader entering a read-side critical section *pins* the current
///    epoch into a per-reader slot (Pin): it stores the epoch it read,
///    then re-reads the global counter and retries until the two agree,
///    so a published pin is never older than the global epoch was at any
///    point during the pinning loop.
///  - The writer retires an object (Retire) the moment it unlinks it from
///    the newest published version, tagging it with the current epoch.
///    Retired objects wait in a limbo list ordered by tag.
///  - Reclaim frees exactly the limbo prefix whose tags are strictly
///    below the minimum pinned epoch (or below the current epoch when no
///    reader is pinned).
///
/// All epoch/slot/publication accesses use sequentially consistent
/// atomics, which gives the invariant the proof rests on: a reader whose
/// pin settled at epoch e observes, on its subsequent (seq_cst) load of
/// the structure's head pointer, a version at least as new as the one
/// current when the pin settled. Every object reachable from that version
/// is either still live or was retired *after* the pin settled — and any
/// retire after the pin carries a tag >= e (the counter is monotone), so
/// the free condition `tag < min(pinned)` can never free it. Release
/// semantics on the head-pointer publication (included in seq_cst) make
/// the contents of new nodes visible before the pointer to them.
///
/// Threading contract:
///  - Retire / AdvanceEpoch / Reclaim / ReclaimAll: the single writer
///    thread only (the limbo list is deliberately unsynchronized). The
///    limbo list is GUARDED_BY(writer_role_), a ThreadRole capability:
///    under clang -Wthread-safety any method that touches it without
///    opening an AssumeRole scope fails the build.
///  - Pin / unpin (Pin destructor): any thread, any number up to
///    kMaxReaders concurrent pins.
///  - Counters (current_epoch, epochs_advanced, ...): any thread.
class EpochManager {
 public:
  /// Default concurrent pinned readers supported. Slots are cache-line
  /// padded and allocated once at construction, so pinning never
  /// allocates or locks; 64 comfortably covers the bench's 16-reader
  /// scaling ceiling. Callers with a known client budget (the shard
  /// router's per-shard managers) size the manager explicitly instead.
  static constexpr size_t kMaxReaders = 64;

  /// Slot value meaning "not pinned".
  static constexpr uint64_t kIdle = ~uint64_t{0};

  /// `max_readers` is the number of reader slots (must be >= 1); the
  /// exhaustion contract (ResourceExhausted once every slot is pinned)
  /// is the same at any size.
  explicit EpochManager(size_t max_readers = kMaxReaders);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII read-side critical section: pins the current epoch on
  /// construction (via EpochManager::Pin()) and releases the slot on
  /// destruction. Movable so views can carry it; an empty (moved-from or
  /// default-constructed) guard releases nothing.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept
        : manager_(other.manager_), slot_(other.slot_), epoch_(other.epoch_) {
      other.manager_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        epoch_ = other.epoch_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    ~Pin() { Release(); }

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    bool active() const { return manager_ != nullptr; }

    /// The epoch this pin protects (everything retired at or after it).
    uint64_t epoch() const { return epoch_; }

    void Release();

   private:
    friend class EpochManager;
    Pin(EpochManager* manager, size_t slot, uint64_t epoch)
        : manager_(manager), slot_(slot), epoch_(epoch) {}

    EpochManager* manager_ = nullptr;
    size_t slot_ = 0;
    uint64_t epoch_ = 0;
  };

  /// Enters a read-side critical section: claims a free reader slot and
  /// pins the current epoch into it. Returns ResourceExhausted when all
  /// max_readers() slots are simultaneously live — a runtime condition a
  /// server with many connections must handle by shedding the request,
  /// not by crashing.
  [[nodiscard]] StatusOr<Pin> TryPinReader();

  /// CHECK-ing form of TryPinReader for callers with a bounded reader
  /// count (benches, storm harnesses): aborts on slot exhaustion, which
  /// for them is a structural bug, not load.
  [[nodiscard]] Pin PinReader();

  /// Writer: places `ptr` in limbo, tagged with the current epoch, to be
  /// deleted by a later Reclaim once no pinned reader can reach it.
  void Retire(void* ptr, void (*deleter)(void*));

  /// Typed convenience form of Retire.
  template <typename T>
  void RetireObject(const T* ptr) {
    Retire(const_cast<T*>(ptr),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Writer: advances the global epoch; returns the new value.
  uint64_t AdvanceEpoch();

  /// Writer: frees every limbo entry whose tag is strictly below the
  /// minimum pinned epoch (the current epoch when nothing is pinned).
  /// Returns the number of objects freed.
  size_t Reclaim();

  /// Writer: frees the entire limbo list unconditionally. Only legal when
  /// no reader can still be inside a read-side critical section (shutdown
  /// / destructor path).
  size_t ReclaimAll();

  /// The number of reader slots this manager was constructed with.
  size_t max_readers() const { return slots_.size(); }

  /// The current global epoch (starts at 1).
  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Total AdvanceEpoch calls — the "epochs retired" figure the
  /// concurrency bench gates on.
  uint64_t epochs_advanced() const {
    return epochs_advanced_.load(std::memory_order_relaxed);
  }

  /// Objects handed to Retire so far.
  uint64_t objects_retired() const {
    return objects_retired_.load(std::memory_order_relaxed);
  }

  /// Objects actually freed by Reclaim/ReclaimAll so far.
  uint64_t objects_reclaimed() const {
    return objects_reclaimed_.load(std::memory_order_relaxed);
  }

  /// Retired-but-not-yet-freed objects. Writer thread only (reads the
  /// unsynchronized limbo list).
  size_t limbo_size() const {
    popan::AssumeRole writer(writer_role_);
    return limbo_.size();
  }

  /// The smallest epoch any active reader has pinned, or `fallback` when
  /// no reader is pinned. Any-thread safe; the writer's reclamation bound.
  uint64_t MinPinnedEpoch(uint64_t fallback) const;

 private:
  friend class Pin;

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> claimed{false};
  };

  struct LimboEntry {
    uint64_t epoch;  // tag: global epoch at retire time
    void* ptr;
    void (*deleter)(void*);
  };

  void ReleaseSlot(size_t slot);

  std::atomic<uint64_t> global_epoch_{1};
  // Sized once at construction and never resized: slot addresses must be
  // stable while pins are outstanding.
  std::vector<ReaderSlot> slots_;
  /// The single-writer affinity contract, as a checkable capability: every
  /// access to limbo_ must sit inside a popan::AssumeRole scope naming
  /// this role. See the threading contract above.
  popan::ThreadRole writer_role_;
  // Tags are nondecreasing (the epoch is monotone), so the reclaimable
  // entries are always a prefix.
  std::deque<LimboEntry> limbo_ GUARDED_BY(writer_role_);
  std::atomic<uint64_t> epochs_advanced_{0};
  std::atomic<uint64_t> objects_retired_{0};
  std::atomic<uint64_t> objects_reclaimed_{0};
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_EPOCH_H_
