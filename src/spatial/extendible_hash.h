#ifndef POPAN_SPATIAL_EXTENDIBLE_HASH_H_
#define POPAN_SPATIAL_EXTENDIBLE_HASH_H_

#include <cstdint>
#include <vector>

#include "spatial/census.h"
#include "util/status.h"

namespace popan::spatial {

/// Options for the extendible hash table.
struct ExtendibleHashOptions {
  /// Bucket capacity: a bucket splits when an insertion would exceed it.
  size_t bucket_capacity = 4;

  /// Upper bound on the global depth (directory size 2^depth). 28 bounds
  /// the directory at 256M entries; experiments stay far below.
  size_t max_global_depth = 28;

  /// When true, the raw key is used as the pseudokey directly (no mixing).
  /// Tests use this to place keys deterministically; real workloads keep
  /// the default mixing so that structured keys spread uniformly.
  bool identity_hash = false;
};

/// Extendible hashing after Fagin, Nievergelt, Pippenger & Strong (TODS
/// 1979) — the structure whose occupancy analysis the paper identifies as
/// applying, "with slight modifications", to PR quadtrees. A directory of
/// 2^global_depth pointers indexes buckets by the top global_depth bits of
/// the pseudokey; a full bucket of local depth d splits into two of depth
/// d+1, doubling the directory when d equals the global depth.
///
/// In the population view, buckets are the analogue of quadtree leaves and
/// a bucket split is a fanout-2 transform — so the same steady-state
/// machinery (core/PopulationModel with fanout 2) predicts its occupancy
/// distribution, and this class supplies the experimental census.
class ExtendibleHash {
 public:
  explicit ExtendibleHash(const ExtendibleHashOptions& options = {});

  /// Number of keys stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of buckets (the population size).
  size_t BucketCount() const { return buckets_.size(); }

  /// Current global depth; the directory holds 2^GlobalDepth() entries.
  size_t GlobalDepth() const { return global_depth_; }

  /// Directory entries (2^GlobalDepth()).
  size_t DirectorySize() const { return directory_.size(); }

  /// Inserts a key. Returns AlreadyExists for duplicates and
  /// ResourceExhausted if splitting would exceed max_global_depth (only
  /// possible with pathological key sets, e.g. many identical pseudokeys).
  [[nodiscard]] Status Insert(uint64_t key);

  /// True iff the key is stored.
  bool Contains(uint64_t key) const;

  /// Removes a key; NotFound if absent. After removal, buddy buckets whose
  /// combined contents fit one bucket are merged, and the directory halves
  /// when every bucket's local depth allows it.
  [[nodiscard]] Status Erase(uint64_t key);

  /// Calls fn(local_depth, occupancy) for every bucket — the census hook.
  template <typename Fn>
  void VisitBuckets(Fn fn) const {
    for (const Bucket& b : buckets_) {
      fn(b.local_depth, b.keys.size());
    }
  }

  /// Calls fn(bucket_index, prefix_bits, local_depth, keys) for every
  /// bucket in bucket-index order, where prefix_bits is the local_depth-bit
  /// pseudokey prefix all of the bucket's keys share. One directory pass
  /// recovers all prefixes — O(directory + buckets). With identity_hash,
  /// the prefix locates the bucket's block of key space directly, which is
  /// how the query layer runs spatial scans over interleaved-coordinate
  /// keys.
  template <typename Fn>
  void VisitBucketsWithPrefix(Fn fn) const {
    // Walk the directory backwards so each bucket ends up with its FIRST
    // (lowest) slot; that index right-shifted by the unused depth bits is
    // the bucket's prefix.
    std::vector<size_t> first(buckets_.size(), 0);
    for (size_t j = directory_.size(); j-- > 0;) first[directory_[j]] = j;
    for (size_t bi = 0; bi < buckets_.size(); ++bi) {
      const Bucket& b = buckets_[bi];
      const uint64_t prefix =
          static_cast<uint64_t>(first[bi]) >> (global_depth_ - b.local_depth);
      fn(bi, prefix, b.local_depth, b.keys);
    }
  }

  /// Snapshot of the live occupancy-by-local-depth histogram — the same
  /// census TakeBucketCensus(table) walks the buckets for, but assembled
  /// in O(depths x occupancies) independent of the number of buckets. The
  /// histogram is maintained incrementally at every insert, erase, bucket
  /// split, and buddy merge, so per-step censuses are O(1) bookkeeping.
  Census LiveCensus() const;

  /// Average keys per bucket.
  double AverageOccupancy() const {
    if (buckets_.empty()) return 0.0;
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  /// Verifies directory/bucket invariants (prefix consistency, pointer
  /// multiplicity 2^(global-local), key placement).
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Bucket {
    size_t local_depth = 0;
    std::vector<uint64_t> keys;
  };

  /// The pseudokey whose top bits address the directory.
  uint64_t PseudoKey(uint64_t key) const;

  /// Directory slot for a pseudokey at the current global depth.
  size_t DirIndex(uint64_t pseudo) const;

  /// Splits the bucket at directory slot `dir_idx`; may double the
  /// directory. Returns false if max_global_depth blocks the split.
  bool SplitBucket(size_t dir_idx);

  void DoubleDirectory();
  void TryMerge(uint64_t pseudo);
  void TryShrinkDirectory();

  // Live census bookkeeping: live_hist_[d][i] = number of buckets of local
  // depth d holding exactly i keys, kept exact through every mutation.
  void HistAdd(size_t local_depth, size_t occupancy);
  void HistRemove(size_t local_depth, size_t occupancy);
  [[nodiscard]] Status CheckLiveHistogram() const;

  ExtendibleHashOptions options_;
  size_t global_depth_ = 0;
  std::vector<uint32_t> directory_;  // bucket index per slot
  std::vector<Bucket> buckets_;
  size_t size_ = 0;
  std::vector<std::vector<uint64_t>> live_hist_;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_EXTENDIBLE_HASH_H_
