#ifndef POPAN_SPATIAL_LINEAR_QUADTREE_H_
#define POPAN_SPATIAL_LINEAR_QUADTREE_H_

#include <cstddef>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/morton.h"
#include "spatial/pr_tree.h"
#include "util/status.h"

namespace popan::spatial {

/// A pointerless ("linear") PR quadtree: the leaves of the regular
/// decomposition stored as a Morton-code-sorted array — the disk-friendly
/// representation used by the Samet group's geographic systems that
/// motivated the paper. Immutable once built; the use case is bulk
/// loading a static point set and serving queries, with the pointer-based
/// PrTree handling dynamic workloads.
///
/// Because the PR decomposition is canonical for a point set, BulkLoad
/// and FromTree produce identical leaf arrays for identical inputs — a
/// property the tests exploit.
class LinearPrQuadtree {
 public:
  /// One leaf block: its locational code and its points (sorted arrays of
  /// these, by code, form the whole structure).
  struct Leaf {
    MortonCode code;
    std::vector<geo::Point2> points;
  };

  /// Builds the canonical PR decomposition of `points` by sorting on
  /// Morton code and splitting spans top-down; O(n log n + L). Duplicate
  /// points are rejected (AlreadyExists), out-of-bounds points are
  /// rejected (OutOfRange). options.max_depth is clamped to
  /// MortonCode::kMaxDepth.
  [[nodiscard]] static StatusOr<LinearPrQuadtree> BulkLoad(
      const geo::Box2& bounds, std::vector<geo::Point2> points,
      const PrTreeOptions& options = {});

  /// Linearizes an existing pointer-based tree (its depth limit must not
  /// exceed MortonCode::kMaxDepth).
  static LinearPrQuadtree FromTree(const PrTree<2>& tree);

  const geo::Box2& bounds() const { return bounds_; }
  size_t capacity() const { return options_.capacity; }

  /// Number of stored points.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of leaves (blocks), including empty ones.
  size_t LeafCount() const { return leaves_.size(); }

  /// The sorted leaf array.
  const std::vector<Leaf>& leaves() const { return leaves_; }

  /// True iff an equal point is stored; one binary search.
  bool Contains(const geo::Point2& p) const;

  /// All stored points inside `query` (half-open), via code-interval
  /// descent over the sorted array.
  std::vector<geo::Point2> RangeQuery(const geo::Box2& query) const;

  /// Census hook: fn(box, depth, occupancy) per leaf, in Z order.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    for (const Leaf& leaf : leaves_) {
      fn(BlockOfCode(bounds_, leaf.code), static_cast<size_t>(leaf.code.depth),
         leaf.points.size());
    }
  }

  /// Verifies the linear-quadtree invariants: codes strictly ascending,
  /// descendant intervals exactly tiling the root interval, every point
  /// inside its leaf's block, occupancy <= capacity away from max_depth.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  LinearPrQuadtree(const geo::Box2& bounds, const PrTreeOptions& options)
      : bounds_(bounds), options_(options) {}

  /// Recursive span splitter for BulkLoad. `codes` parallels `points`.
  void BuildSpan(const std::vector<uint64_t>& codes,
                 const std::vector<geo::Point2>& points, size_t begin,
                 size_t end, const MortonCode& block);

  /// Index of the leaf whose code interval contains `point_bits`.
  size_t LeafIndexFor(uint64_t point_bits) const;

  void RangeRec(const MortonCode& block, size_t begin, size_t end,
                const geo::Box2& query,
                std::vector<geo::Point2>* out) const;

  geo::Box2 bounds_;
  PrTreeOptions options_;
  std::vector<Leaf> leaves_;
  size_t size_ = 0;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_LINEAR_QUADTREE_H_
