#ifndef POPAN_SPATIAL_LINEAR_QUADTREE_H_
#define POPAN_SPATIAL_LINEAR_QUADTREE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "spatial/morton.h"
#include "spatial/pr_tree.h"
#include "spatial/query_cost.h"
#include "spatial/soa_buffer.h"
#include "util/check.h"
#include "util/status.h"

namespace popan::spatial {

/// A pointerless ("linear") PR quadtree: the leaves of the regular
/// decomposition stored as a Morton-code-sorted array — the disk-friendly
/// representation used by the Samet group's geographic systems that
/// motivated the paper. Immutable once built; the use case is bulk
/// loading a static point set and serving queries, with the pointer-based
/// PrTree handling dynamic workloads.
///
/// Because the PR decomposition is canonical for a point set, BulkLoad
/// and FromTree produce identical leaf arrays for identical inputs — a
/// property the tests exploit.
class LinearPrQuadtree {
 public:
  /// One leaf block: its locational code and its points (sorted arrays of
  /// these, by code, form the whole structure).
  struct Leaf {
    MortonCode code;
    std::vector<geo::Point2> points;
  };

  /// Builds the canonical PR decomposition of `points` by sorting on
  /// Morton code and splitting spans top-down; O(n log n + L). Duplicate
  /// points are rejected (AlreadyExists), out-of-bounds points are
  /// rejected (OutOfRange). options.max_depth is clamped to
  /// MortonCode::kMaxDepth.
  [[nodiscard]] static StatusOr<LinearPrQuadtree> BulkLoad(
      const geo::Box2& bounds, std::vector<geo::Point2> points,
      const PrTreeOptions& options = {});

  /// Linearizes an existing pointer-based tree (its depth limit must not
  /// exceed MortonCode::kMaxDepth).
  static LinearPrQuadtree FromTree(const PrTree<2>& tree);

  const geo::Box2& bounds() const { return bounds_; }
  size_t capacity() const { return options_.capacity; }

  /// Number of stored points.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of leaves (blocks), including empty ones.
  size_t LeafCount() const { return leaves_.size(); }

  /// The sorted leaf array.
  const std::vector<Leaf>& leaves() const { return leaves_; }

  /// True iff an equal point is stored; one binary search.
  bool Contains(const geo::Point2& p) const;

  /// All stored points inside `query` (half-open), via code-interval
  /// descent over the sorted array.
  std::vector<geo::Point2> RangeQuery(const geo::Box2& query) const;

  /// Cost-counted orthogonal range search: fn(point) for every stored
  /// point inside `query` (half-open), in Z order. The traversal walks
  /// the virtual pointer tree as (block, span) frames over the sorted
  /// leaf array — iterative, explicit stack, no recursion — so
  /// nodes_visited is directly comparable with the pointer-based
  /// PrTree's. Safe to call concurrently on a shared const structure.
  template <typename Fn>
  void RangeQueryVisit(const geo::Box2& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    if (leaves_.empty()) return;
    if (!bounds_.Intersects(query)) {
      ++cost->pruned_subtrees;
      return;
    }
    SpanWalk(
        cost,
        [&query](const geo::Box2& block) { return block.Intersects(query); },
        [this, &query, cost, &fn](size_t li) {
          // SIMD leaf filter over the flat coordinate lanes; visit order
          // and QueryCost increments match the scalar per-point loop.
          const size_t b = lane_offsets_[li];
          const size_t n = lane_offsets_[li + 1] - b;
          cost->points_scanned += n;
          const std::array<const double*, 2> lanes = {lanes_[0].data() + b,
                                                      lanes_[1].data() + b};
          ForEachInBoxLanes<2>(lanes, n, query, [&](size_t i) {
            fn(geo::Point2{lanes[0][i], lanes[1][i]});
          });
        });
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` (0 = x,
  /// 1 = y) to `value` and calls fn(point) for every stored point with
  /// point[axis] == value, descending only into blocks whose half-open
  /// axis interval contains the value.
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < 2);
    POPAN_DCHECK(cost != nullptr);
    if (leaves_.empty()) return;
    if (value < bounds_.lo()[axis] || value >= bounds_.hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    SpanWalk(
        cost,
        [axis, value](const geo::Box2& block) {
          return block.lo()[axis] <= value && value < block.hi()[axis];
        },
        [this, axis, value, cost, &fn](size_t li) {
          const size_t b = lane_offsets_[li];
          const size_t n = lane_offsets_[li + 1] - b;
          cost->points_scanned += n;
          const std::array<const double*, 2> lanes = {lanes_[0].data() + b,
                                                      lanes_[1].data() + b};
          ForEachEqualLane(lanes[axis], n, value, [&](size_t i) {
            fn(geo::Point2{lanes[0][i], lanes[1][i]});
          });
        });
  }

  /// Cost-counted k-nearest-neighbor search: up to k stored points
  /// ascending by distance to `target`. k >= 1.
  std::vector<geo::Point2> NearestK(const geo::Point2& target, size_t k,
                                    QueryCost* cost) const;

  /// Census hook: fn(box, depth, occupancy) per leaf, in Z order.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    for (const Leaf& leaf : leaves_) {
      fn(BlockOfCode(bounds_, leaf.code), static_cast<size_t>(leaf.code.depth),
         leaf.points.size());
    }
  }

  /// Verifies the linear-quadtree invariants: codes strictly ascending,
  /// descendant intervals exactly tiling the root interval, every point
  /// inside its leaf's block, occupancy <= capacity away from max_depth.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  LinearPrQuadtree(const geo::Box2& bounds, const PrTreeOptions& options)
      : bounds_(bounds), options_(options) {}

  /// Recursive span splitter for BulkLoad. `codes` parallels `points`.
  void BuildSpan(const std::vector<uint64_t>& codes,
                 const std::vector<geo::Point2>& points, size_t begin,
                 size_t end, const MortonCode& block);

  /// Fills the flat coordinate lanes and per-leaf offsets from the leaf
  /// array; called by both factories once the leaves exist.
  void BuildLanes();

  /// Index of the leaf whose code interval contains `point_bits`.
  size_t LeafIndexFor(uint64_t point_bits) const;

  static constexpr size_t kWalkStackHint = 64;

  /// Shared iterative walk over (block, span) frames of the virtual
  /// pointer tree: descends into children whose block passes `block_ok`
  /// and hands each reached leaf's index to `scan_leaf`, which filters
  /// its lane contents (and accounts points_scanned). The caller has
  /// already accepted the root block.
  template <typename BlockPred, typename LeafScan>
  void SpanWalk(QueryCost* cost, BlockPred block_ok,
                LeafScan scan_leaf) const {
    struct Frame {
      MortonCode block;
      size_t begin, end;
    };
    std::vector<Frame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(Frame{RootCode(), 0, leaves_.size()});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      if (f.end - f.begin == 1 && leaves_[f.begin].code == f.block) {
        ++cost->leaves_touched;
        scan_leaf(f.begin);
        continue;
      }
      // Split the sorted span into the four child code intervals, then
      // push surviving children in reverse so quadrant 0 pops first
      // (Z order, matching the pointer tree's preorder).
      std::array<MortonCode, 4> children;
      std::array<std::pair<size_t, size_t>, 4> spans;
      size_t cursor = f.begin;
      for (size_t q = 0; q < 4; ++q) {
        children[q] = ChildCode(f.block, q);
        uint64_t lo, hi;
        DescendantRange(children[q], &lo, &hi);
        size_t child_end = cursor;
        while (child_end < f.end && leaves_[child_end].code.bits < hi) {
          ++child_end;
        }
        spans[q] = {cursor, child_end};
        cursor = child_end;
      }
      for (size_t q = 4; q-- > 0;) {
        if (spans[q].first >= spans[q].second) continue;
        if (!block_ok(BlockOfCode(bounds_, children[q]))) {
          ++cost->pruned_subtrees;
          continue;
        }
        stack.push_back(Frame{children[q], spans[q].first, spans[q].second});
      }
    }
  }

  geo::Box2 bounds_;
  PrTreeOptions options_;
  std::vector<Leaf> leaves_;
  /// Flat SoA mirror of every leaf's points, concatenated in leaf order:
  /// leaf i's coordinates live at [lane_offsets_[i], lane_offsets_[i+1])
  /// of each lane. The query hot loops filter these lanes with the SIMD
  /// kernels; Leaf::points stays the structure of record for
  /// serialization and the leaf-level API.
  std::array<std::vector<double>, 2> lanes_;
  std::vector<size_t> lane_offsets_;
  size_t size_ = 0;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_LINEAR_QUADTREE_H_
