#include "spatial/linear_quadtree.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>
#include <utility>

#include "spatial/knn_heap.h"
#include "util/check.h"

namespace popan::spatial {

StatusOr<LinearPrQuadtree> LinearPrQuadtree::BulkLoad(
    const geo::Box2& bounds, std::vector<geo::Point2> points,
    const PrTreeOptions& options) {
  PrTreeOptions clamped = options;
  if (clamped.max_depth > MortonCode::kMaxDepth) {
    clamped.max_depth = MortonCode::kMaxDepth;
  }
  if (clamped.capacity < 1) {
    return Status::InvalidArgument("capacity must be >= 1");
  }
  for (const geo::Point2& p : points) {
    if (!bounds.Contains(p)) {
      return Status::OutOfRange("point " + p.ToString() +
                                " outside the bounds");
    }
  }
  // Sort by full-resolution Morton code; children of any block are then
  // contiguous sub-spans, so the decomposition falls out of a top-down
  // span walk. The batched codec is bitwise-identical to per-point
  // CodeOfPoint, so the decomposition is unchanged.
  std::vector<uint64_t> codes(points.size());
  CodeBitsBatch(bounds, points, MortonCode::kMaxDepth, codes.data());
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (codes[a] != codes[b]) return codes[a] < codes[b];
    // Equal codes at full resolution: tie-break by coordinates so
    // duplicate detection below is reliable.
    return std::make_pair(points[a].x(), points[a].y()) <
           std::make_pair(points[b].x(), points[b].y());
  });
  std::vector<uint64_t> sorted_codes(points.size());
  std::vector<geo::Point2> sorted_points(points.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_codes[i] = codes[order[i]];
    sorted_points[i] = points[order[i]];
  }
  for (size_t i = 1; i < sorted_points.size(); ++i) {
    if (sorted_points[i] == sorted_points[i - 1]) {
      return Status::AlreadyExists("duplicate point " +
                                   sorted_points[i].ToString());
    }
  }

  LinearPrQuadtree tree(bounds, clamped);
  tree.size_ = sorted_points.size();
  tree.BuildSpan(sorted_codes, sorted_points, 0, sorted_points.size(),
                 RootCode());
  tree.BuildLanes();
  return tree;
}

void LinearPrQuadtree::BuildLanes() {
  lane_offsets_.clear();
  lane_offsets_.reserve(leaves_.size() + 1);
  lane_offsets_.push_back(0);
  size_t total = 0;
  for (const Leaf& leaf : leaves_) {
    total += leaf.points.size();
    lane_offsets_.push_back(total);
  }
  for (auto& lane : lanes_) {
    lane.clear();
    lane.reserve(total);
  }
  for (const Leaf& leaf : leaves_) {
    for (const geo::Point2& p : leaf.points) {
      lanes_[0].push_back(p.x());
      lanes_[1].push_back(p.y());
    }
  }
}

void LinearPrQuadtree::BuildSpan(const std::vector<uint64_t>& codes,
                                 const std::vector<geo::Point2>& points,
                                 size_t begin, size_t end,
                                 const MortonCode& block) {
  size_t count = end - begin;
  if (count <= options_.capacity ||
      block.depth >= static_cast<uint8_t>(options_.max_depth)) {
    Leaf leaf;
    leaf.code = block;
    leaf.points.assign(points.begin() + static_cast<ptrdiff_t>(begin),
                       points.begin() + static_cast<ptrdiff_t>(end));
    leaves_.push_back(std::move(leaf));
    return;
  }
  // Partition the sorted span into the four child code intervals.
  size_t cursor = begin;
  for (size_t q = 0; q < 4; ++q) {
    MortonCode child = ChildCode(block, q);
    uint64_t lo, hi;
    DescendantRange(child, &lo, &hi);
    size_t child_end = static_cast<size_t>(
        std::upper_bound(codes.begin() + static_cast<ptrdiff_t>(cursor),
                         codes.begin() + static_cast<ptrdiff_t>(end),
                         hi - 1) -
        codes.begin());
    BuildSpan(codes, points, cursor, child_end, child);
    cursor = child_end;
  }
  POPAN_DCHECK(cursor == end);
}

LinearPrQuadtree LinearPrQuadtree::FromTree(const PrTree<2>& tree) {
  PrTreeOptions options;
  options.capacity = tree.capacity();
  options.max_depth = std::min<size_t>(tree.max_depth(),
                                       MortonCode::kMaxDepth);
  // The configured limit may exceed what codes can express; only actual
  // leaf depths matter.
  size_t deepest = 0;
  tree.VisitLeaves([&deepest](const geo::Box2&, size_t depth, size_t) {
    deepest = std::max(deepest, depth);
  });
  POPAN_CHECK(deepest <= MortonCode::kMaxDepth)
      << "tree too deep for locational codes";
  LinearPrQuadtree out(tree.bounds(), options);
  out.size_ = tree.size();
  // VisitLeavesPoints walks children in quadrant order, which is exactly
  // Z (code) order, so the array comes out sorted.
  tree.VisitLeavesPoints([&out, &tree](const geo::Box2& box, size_t depth,
                                       std::span<const geo::Point2> points) {
    Leaf leaf;
    leaf.code = CodeOfPoint(tree.bounds(), box.Center(),
                            static_cast<uint8_t>(depth));
    leaf.points.assign(points.begin(), points.end());
    out.leaves_.push_back(std::move(leaf));
  });
  out.BuildLanes();
  return out;
}

size_t LinearPrQuadtree::LeafIndexFor(uint64_t point_bits) const {
  POPAN_DCHECK(!leaves_.empty());
  // The containing leaf is the last one whose code interval starts at or
  // before the point's full-resolution code.
  size_t lo = 0, hi = leaves_.size();
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (leaves_[mid].code.bits <= point_bits) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool LinearPrQuadtree::Contains(const geo::Point2& p) const {
  if (!bounds_.Contains(p) || leaves_.empty()) return false;
  uint64_t bits = CodeOfPoint(bounds_, p, MortonCode::kMaxDepth).bits;
  const Leaf& leaf = leaves_[LeafIndexFor(bits)];
  return std::find(leaf.points.begin(), leaf.points.end(), p) !=
         leaf.points.end();
}

std::vector<geo::Point2> LinearPrQuadtree::RangeQuery(
    const geo::Box2& query) const {
  std::vector<geo::Point2> out;
  QueryCost cost;
  RangeQueryVisit(query, &cost, [&out](const geo::Point2& p) {
    out.push_back(p);
  });
  return out;
}

std::vector<geo::Point2> LinearPrQuadtree::NearestK(const geo::Point2& target,
                                                    size_t k,
                                                    QueryCost* cost) const {
  POPAN_CHECK(k >= 1);
  POPAN_DCHECK(cost != nullptr);
  std::vector<geo::Point2> out;
  if (leaves_.empty() || size_ == 0) return out;
  // Canonical (distance², x, y) accumulator (knn_heap.h); best-first
  // descent over (block, span) frames, nearest child popped first.
  KnnHeap<geo::Point2, PointTieLess> heap(k);
  struct Frame {
    MortonCode block;
    size_t begin, end;
    double d2;
  };
  std::vector<Frame> stack;
  stack.reserve(64);
  stack.push_back(Frame{RootCode(), 0, leaves_.size(),
                        bounds_.DistanceSquaredTo(target)});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (heap.ShouldPrune(f.d2)) {
      ++cost->pruned_subtrees;
      continue;
    }
    ++cost->nodes_visited;
    if (f.end - f.begin == 1 && leaves_[f.begin].code == f.block) {
      ++cost->leaves_touched;
      for (const geo::Point2& p : leaves_[f.begin].points) {
        ++cost->points_scanned;
        heap.Offer(p.DistanceSquared(target), p);
      }
      continue;
    }
    // Split the span into child code intervals and order near-to-far.
    std::array<MortonCode, 4> children;
    std::array<std::pair<size_t, size_t>, 4> spans;
    std::array<std::pair<double, size_t>, 4> order;
    size_t cursor = f.begin;
    for (size_t q = 0; q < 4; ++q) {
      children[q] = ChildCode(f.block, q);
      uint64_t lo, hi;
      DescendantRange(children[q], &lo, &hi);
      size_t child_end = cursor;
      while (child_end < f.end && leaves_[child_end].code.bits < hi) {
        ++child_end;
      }
      spans[q] = {cursor, child_end};
      cursor = child_end;
      order[q] = {cursor > spans[q].first
                      ? BlockOfCode(bounds_, children[q])
                            .DistanceSquaredTo(target)
                      : std::numeric_limits<double>::infinity(),
                  q};
    }
    std::sort(order.begin(), order.end());
    // Far-to-near onto the LIFO stack; the nearest child pops first.
    for (size_t i = 4; i-- > 0;) {
      const auto& [d2, q] = order[i];
      if (spans[q].first >= spans[q].second) continue;
      if (heap.ShouldPrune(d2)) {
        ++cost->pruned_subtrees;
        continue;
      }
      stack.push_back(Frame{children[q], spans[q].first, spans[q].second,
                            d2});
    }
  }
  out = heap.TakeSorted();
  return out;
}

Status LinearPrQuadtree::CheckInvariants() const {
  if (leaves_.empty()) {
    return Status::Internal("a linear quadtree always has >= 1 leaf");
  }
  uint64_t expected_lo = 0;
  size_t points_seen = 0;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    const Leaf& leaf = leaves_[i];
    uint64_t lo, hi;
    DescendantRange(leaf.code, &lo, &hi);
    if (lo != expected_lo) {
      return Status::Internal("leaf intervals do not tile: gap before " +
                              MortonCodeToString(leaf.code));
    }
    expected_lo = hi;
    geo::Box2 box = BlockOfCode(bounds_, leaf.code);
    for (const geo::Point2& p : leaf.points) {
      if (!box.Contains(p)) {
        return Status::Internal("point outside its leaf block");
      }
    }
    if (leaf.points.size() > options_.capacity &&
        leaf.code.depth < options_.max_depth) {
      return Status::Internal("leaf over capacity below max depth");
    }
    points_seen += leaf.points.size();
  }
  if (expected_lo != (uint64_t{1} << (2 * MortonCode::kMaxDepth))) {
    return Status::Internal("leaf intervals do not cover the root");
  }
  if (points_seen != size_) {
    return Status::Internal("size mismatch");
  }
  return Status::OK();
}

}  // namespace popan::spatial
