#ifndef POPAN_SPATIAL_PMR_QUADTREE_H_
#define POPAN_SPATIAL_PMR_QUADTREE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/segment.h"
#include "spatial/node_arena.h"
#include "spatial/query_cost.h"
#include "util/check.h"
#include "util/status.h"

namespace popan::spatial {

/// Options for the PMR quadtree.
struct PmrQuadtreeOptions {
  /// The splitting threshold: when an insertion leaves a block holding more
  /// than this many (fragments of) segments, the block is split — but only
  /// once per insertion, which is the PMR rule that bounds the
  /// decomposition for data (line segments) that can intersect arbitrarily
  /// many blocks.
  size_t splitting_threshold = 4;

  /// Blocks at this depth never split.
  size_t max_depth = 16;
};

/// The PMR quadtree of Nelson & Samet [Nels86a]: a regular quadtree over
/// line segments where a segment is stored in every leaf block it
/// intersects, and a block that exceeds the splitting threshold after an
/// insertion splits exactly once. The paper's §V notes that the population
/// analysis adapts to this structure "relatively simply" and agrees with
/// experiment even better than for the PR quadtree; src/core/pmr_model
/// carries out that adaptation and this class provides the experimental
/// side.
class PmrQuadtree {
 public:
  using BoxT = geo::Box<2>;
  using SegmentId = uint32_t;

  explicit PmrQuadtree(const BoxT& bounds,
                       const PmrQuadtreeOptions& options = {});

  /// The root block.
  const BoxT& bounds() const { return bounds_; }

  /// The configured splitting threshold.
  size_t splitting_threshold() const { return options_.splitting_threshold; }

  /// Number of segments inserted.
  size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  /// Number of leaf blocks.
  size_t LeafCount() const { return leaf_count_; }

  /// Inserts a segment; returns its id. The segment must intersect the
  /// root block (OutOfRange otherwise).
  [[nodiscard]] Status Insert(const geo::Segment& segment);

  /// The segment with the given id. Ids are dense, assigned in insertion
  /// order starting at 0.
  const geo::Segment& GetSegment(SegmentId id) const;

  /// All distinct segments intersecting `query`.
  std::vector<SegmentId> RangeQuery(const BoxT& query) const;

  /// Cost-counted orthogonal range search: fn(id) once per distinct
  /// segment intersecting `query` (closed segment–box semantics, matching
  /// Segment::IntersectsBox), in first-encounter order of the Z-order
  /// walk. points_scanned counts fragment encounters, so the PMR
  /// duplication factor is visible in the cost. Iterative with a local
  /// stack; safe to call concurrently on a shared const tree.
  template <typename Fn>
  void RangeQueryVisit(const BoxT& query, QueryCost* cost, Fn fn) const {
    POPAN_DCHECK(cost != nullptr);
    GeomWalk(
        cost,
        [&query](const BoxT& block) { return block.Intersects(query); },
        [this, &query](SegmentId id) {
          return segments_[id].IntersectsBox(query);
        },
        fn);
  }

  /// Cost-counted partial-match search: fixes coordinate `axis` (0 = x,
  /// 1 = y) to `value` and calls fn(id) once per distinct segment
  /// crossing the line axis == value (closed: touching the line counts,
  /// consistent with the closed segment–box convention). Only blocks
  /// whose half-open axis interval contains the value are entered.
  template <typename Fn>
  void PartialMatchVisit(size_t axis, double value, QueryCost* cost,
                         Fn fn) const {
    POPAN_CHECK(axis < 2);
    POPAN_DCHECK(cost != nullptr);
    if (value < bounds_.lo()[axis] || value >= bounds_.hi()[axis]) {
      ++cost->pruned_subtrees;
      return;
    }
    GeomWalk(
        cost,
        [axis, value](const BoxT& block) {
          return block.lo()[axis] <= value && value < block.hi()[axis];
        },
        [this, axis, value](SegmentId id) {
          const geo::Segment& s = segments_[id];
          const double c0 = axis == 0 ? s.a().x() : s.a().y();
          const double c1 = axis == 0 ? s.b().x() : s.b().y();
          return std::min(c0, c1) <= value && value <= std::max(c0, c1);
        },
        fn);
  }

  /// Cost-counted k-nearest-neighbor search: up to k distinct segment ids
  /// ascending by point-to-segment distance to `target` (ties by id).
  /// k >= 1.
  std::vector<SegmentId> NearestK(const geo::Point2& target, size_t k,
                                  QueryCost* cost) const;

  /// Calls fn(box, depth, occupancy) for every leaf in preorder (children
  /// in quadrant order), where occupancy is the number of segment fragments
  /// stored in the leaf — the quantity the PMR population census counts.
  /// Explicit-stack traversal: safe for trees of any depth.
  template <typename Fn>
  void VisitLeaves(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        fn(f.box, static_cast<size_t>(f.depth), node.segment_ids.size());
        continue;
      }
      for (size_t q = 4; q-- > 0;) {
        stack.push_back(
            WalkFrame{node.children[q], f.box.Quadrant(q), f.depth + 1});
      }
    }
  }

  /// Verifies structural invariants: every leaf's stored segments actually
  /// intersect its block; every segment appears in every leaf it
  /// intersects; occupancy exceeds the threshold only for leaves created at
  /// max depth or leaves whose split is pending by the once-per-insert
  /// rule... (the PMR invariant allows transient over-threshold leaves, so
  /// only containment/coverage are checked).
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::array<NodeIndex, 4> children = {kNullNode, kNullNode, kNullNode,
                                         kNullNode};
    std::vector<SegmentId> segment_ids;
  };

  /// Explicit-stack frame for the traversal and insertion loops.
  struct WalkFrame {
    NodeIndex idx;
    BoxT box;
    uint32_t depth;
  };

  void InsertSegment(SegmentId id);
  void SplitOnce(NodeIndex idx, const BoxT& box);

  static constexpr size_t kWalkStackHint = 64;

  /// Shared iterative geometric walk for the range / partial-match
  /// visitors: descends into children whose block passes `block_ok`,
  /// deduplicates fragments (a segment is stored once per intersected
  /// leaf), confirms first encounters with `segment_ok`, and calls
  /// fn(id) for matches.
  template <typename BlockPred, typename SegPred, typename Fn>
  void GeomWalk(QueryCost* cost, BlockPred block_ok, SegPred segment_ok,
                Fn fn) const {
    if (!block_ok(bounds_)) {
      ++cost->pruned_subtrees;
      return;
    }
    std::vector<uint8_t> seen(segments_.size(), 0);
    std::vector<WalkFrame> stack;
    stack.reserve(kWalkStackHint);
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      ++cost->nodes_visited;
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        ++cost->leaves_touched;
        for (SegmentId id : node.segment_ids) {
          ++cost->points_scanned;
          if (seen[id]) continue;
          seen[id] = 1;
          if (segment_ok(id)) fn(id);
        }
        continue;
      }
      for (size_t q = 4; q-- > 0;) {
        BoxT child = f.box.Quadrant(q);
        if (!block_ok(child)) {
          ++cost->pruned_subtrees;
          continue;
        }
        stack.push_back(WalkFrame{node.children[q], child, f.depth + 1});
      }
    }
  }

  [[nodiscard]] Status CheckRec(NodeIndex idx, const BoxT& box) const;

  /// Calls fn(box, segment_ids) for every leaf (internal helper for the
  /// coverage invariant check).
  template <typename Fn>
  void VisitLeavesWithIds(Fn fn) const {
    std::vector<WalkFrame> stack;
    stack.push_back(WalkFrame{root_, bounds_, 0});
    while (!stack.empty()) {
      WalkFrame f = stack.back();
      stack.pop_back();
      const Node& node = arena_.Get(f.idx);
      if (node.is_leaf) {
        fn(f.box, node.segment_ids);
        continue;
      }
      for (size_t q = 4; q-- > 0;) {
        stack.push_back(
            WalkFrame{node.children[q], f.box.Quadrant(q), f.depth + 1});
      }
    }
  }

  BoxT bounds_;
  PmrQuadtreeOptions options_;
  NodeArena<Node> arena_;
  NodeIndex root_ = kNullNode;
  std::vector<geo::Segment> segments_;
  size_t leaf_count_ = 1;
  // Reusable scratch for the iterative insertion walk.
  std::vector<WalkFrame> insert_stack_;
};

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_PMR_QUADTREE_H_
