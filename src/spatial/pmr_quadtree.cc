#include "spatial/pmr_quadtree.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "spatial/knn_heap.h"
#include "util/check.h"

namespace popan::spatial {

PmrQuadtree::PmrQuadtree(const BoxT& bounds, const PmrQuadtreeOptions& options)
    : bounds_(bounds), options_(options) {
  POPAN_CHECK(options_.splitting_threshold >= 1);
  root_ = arena_.Allocate();
}

Status PmrQuadtree::Insert(const geo::Segment& segment) {
  if (!segment.IntersectsBox(bounds_)) {
    return Status::OutOfRange("segment does not intersect the tree bounds");
  }
  SegmentId id = static_cast<SegmentId>(segments_.size());
  segments_.push_back(segment);
  InsertSegment(id);
  return Status::OK();
}

const geo::Segment& PmrQuadtree::GetSegment(SegmentId id) const {
  POPAN_CHECK(id < segments_.size());
  return segments_[id];
}

void PmrQuadtree::InsertSegment(SegmentId id) {
  // Iterative walk over the blocks the segment intersects (a segment can
  // cross arbitrarily many), preorder via an explicit stack — deep trees
  // cannot overflow the call stack, and the scratch stack is reused across
  // insertions so the hot path does not allocate after warm-up. Children
  // are pushed in reverse so the visit order matches quadrant order.
  const geo::Segment& segment = segments_[id];
  insert_stack_.clear();
  insert_stack_.push_back(WalkFrame{root_, bounds_, 0});
  while (!insert_stack_.empty()) {
    WalkFrame f = insert_stack_.back();
    insert_stack_.pop_back();
    if (!segment.IntersectsBox(f.box)) continue;
    if (!arena_.Get(f.idx).is_leaf) {
      // Copy the child indices: a split further along the walk grows the
      // arena and would invalidate a reference into it.
      std::array<NodeIndex, 4> children = arena_.Get(f.idx).children;
      for (size_t q = 4; q-- > 0;) {
        insert_stack_.push_back(
            WalkFrame{children[q], f.box.Quadrant(q), f.depth + 1});
      }
      continue;
    }
    Node& node = arena_.Get(f.idx);
    node.segment_ids.push_back(id);
    // The PMR rule: split at most once per insertion, and only the leaf
    // the insertion pushed over the threshold.
    if (node.segment_ids.size() > options_.splitting_threshold &&
        f.depth < options_.max_depth) {
      SplitOnce(f.idx, f.box);
    }
  }
}

void PmrQuadtree::SplitOnce(NodeIndex idx, const BoxT& box) {
  std::vector<SegmentId> ids = std::move(arena_.Get(idx).segment_ids);
  std::array<NodeIndex, 4> children;
  for (size_t q = 0; q < 4; ++q) children[q] = arena_.Allocate();
  Node& node = arena_.Get(idx);
  node.is_leaf = false;
  node.segment_ids.clear();
  node.children = children;
  leaf_count_ += 3;
  // Redistribute fragments to the children they intersect. No recursive
  // splitting: children may end up over threshold; they will split when a
  // future insertion lands in them (the once-only rule).
  for (SegmentId id : ids) {
    const geo::Segment& segment = segments_[id];
    for (size_t q = 0; q < 4; ++q) {
      BoxT child_box = box.Quadrant(q);
      if (segment.IntersectsBox(child_box)) {
        arena_.Get(children[q]).segment_ids.push_back(id);
      }
    }
  }
}

std::vector<PmrQuadtree::SegmentId> PmrQuadtree::RangeQuery(
    const BoxT& query) const {
  std::vector<SegmentId> out;
  QueryCost cost;
  RangeQueryVisit(query, &cost, [&out](SegmentId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PmrQuadtree::SegmentId> PmrQuadtree::NearestK(
    const geo::Point2& target, size_t k, QueryCost* cost) const {
  POPAN_CHECK(k >= 1);
  POPAN_DCHECK(cost != nullptr);
  std::vector<SegmentId> out;
  if (segments_.empty()) return out;
  // Canonical (distance², id) accumulator (knn_heap.h): distance ties
  // resolve to the smaller id for any traversal order, and pruning is
  // strict so a subtree at exactly the k-th distance is still descended.
  KnnHeap<SegmentId> heap(k);
  // A segment is stored once per intersected leaf: evaluate its exact
  // distance only at the first encounter.
  std::vector<uint8_t> seen(segments_.size(), 0);
  struct Frame {
    NodeIndex idx;
    BoxT box;
    double d2;
  };
  std::vector<Frame> stack;
  stack.reserve(64);
  stack.push_back(Frame{root_, bounds_, bounds_.DistanceSquaredTo(target)});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (heap.ShouldPrune(f.d2)) {
      ++cost->pruned_subtrees;
      continue;
    }
    ++cost->nodes_visited;
    const Node& node = arena_.Get(f.idx);
    if (node.is_leaf) {
      ++cost->leaves_touched;
      for (SegmentId id : node.segment_ids) {
        ++cost->points_scanned;
        if (seen[id]) continue;
        seen[id] = 1;
        heap.Offer(segments_[id].DistanceSquaredToPoint(target), id);
      }
      continue;
    }
    std::array<std::pair<double, size_t>, 4> order;
    for (size_t q = 0; q < 4; ++q) {
      order[q] = {f.box.Quadrant(q).DistanceSquaredTo(target), q};
    }
    std::sort(order.begin(), order.end());
    // Far-to-near onto the LIFO stack; the nearest child pops first.
    for (size_t i = 4; i-- > 0;) {
      const auto& [d2, q] = order[i];
      if (heap.ShouldPrune(d2)) {
        ++cost->pruned_subtrees;
        continue;
      }
      stack.push_back(Frame{node.children[q], f.box.Quadrant(q), d2});
    }
  }
  out = heap.TakeSorted();
  return out;
}

Status PmrQuadtree::CheckInvariants() const {
  POPAN_RETURN_IF_ERROR(CheckRec(root_, bounds_));
  // Coverage: every segment must be present in every leaf whose block it
  // intersects. O(segments x leaves); used by tests on small trees.
  Status coverage = Status::OK();
  VisitLeavesWithIds([this, &coverage](const BoxT& box,
                                       const std::vector<SegmentId>& ids) {
    if (!coverage.ok()) return;
    for (SegmentId id = 0; id < segments_.size(); ++id) {
      if (!segments_[id].IntersectsBox(box)) continue;
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        coverage = Status::Internal("segment " + std::to_string(id) +
                                    " missing from a leaf it intersects");
      }
    }
  });
  return coverage;
}

Status PmrQuadtree::CheckRec(NodeIndex idx, const BoxT& box) const {
  const Node& node = arena_.Get(idx);
  if (node.is_leaf) {
    for (SegmentId id : node.segment_ids) {
      if (!segments_[id].IntersectsBox(box)) {
        return Status::Internal("leaf stores a segment missing its block");
      }
    }
    return Status::OK();
  }
  if (!node.segment_ids.empty()) {
    return Status::Internal("internal PMR node holds segments");
  }
  for (size_t q = 0; q < 4; ++q) {
    if (node.children[q] == kNullNode) {
      return Status::Internal("internal PMR node with missing child");
    }
    POPAN_RETURN_IF_ERROR(CheckRec(node.children[q], box.Quadrant(q)));
  }
  return Status::OK();
}

}  // namespace popan::spatial
