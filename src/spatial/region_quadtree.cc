#include "spatial/region_quadtree.h"

#include <algorithm>

#include "util/check.h"

namespace popan::spatial {

namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

RegionQuadtree::RegionQuadtree(size_t side, bool black) : side_(side) {
  root_ = arena_.Allocate();
  arena_.Get(root_).black = black;
}

StatusOr<RegionQuadtree> RegionQuadtree::Empty(size_t side) {
  if (!IsPowerOfTwo(side) || side > (size_t{1} << 15)) {
    return Status::InvalidArgument("side must be a power of two <= 32768");
  }
  return RegionQuadtree(side, false);
}

StatusOr<RegionQuadtree> RegionQuadtree::Full(size_t side) {
  POPAN_ASSIGN_OR_RETURN(RegionQuadtree tree, Empty(side));
  tree.arena_.Get(tree.root_).black = true;
  return tree;
}

StatusOr<RegionQuadtree> RegionQuadtree::FromRaster(
    const std::vector<uint8_t>& pixels, size_t side) {
  POPAN_ASSIGN_OR_RETURN(RegionQuadtree tree, Empty(side));
  if (pixels.size() != side * side) {
    return Status::InvalidArgument("raster size mismatch");
  }
  tree.arena_.Clear();
  tree.root_ = tree.BuildRec(pixels, 0, 0, side);
  return tree;
}

NodeIndex RegionQuadtree::BuildRec(const std::vector<uint8_t>& pixels,
                                   size_t x0, size_t y0, size_t block) {
  if (block == 1) {
    NodeIndex idx = arena_.Allocate();
    arena_.Get(idx).black = pixels[y0 * side_ + x0] != 0;
    return idx;
  }
  size_t half = block / 2;
  std::array<NodeIndex, 4> children;
  for (size_t q = 0; q < 4; ++q) {
    size_t cx = x0 + ((q & 1) ? half : 0);
    size_t cy = y0 + ((q & 2) ? half : 0);
    children[q] = BuildRec(pixels, cx, cy, half);
  }
  // Merge four same-color leaves (normalization during construction).
  bool all_leaves_same = true;
  bool color = arena_.Get(children[0]).black;
  for (size_t q = 0; q < 4; ++q) {
    const Node& child = arena_.Get(children[q]);
    if (!child.is_leaf || child.black != color) {
      all_leaves_same = false;
      break;
    }
  }
  if (all_leaves_same) {
    for (NodeIndex child : children) arena_.Free(child);
    NodeIndex idx = arena_.Allocate();
    arena_.Get(idx).black = color;
    return idx;
  }
  NodeIndex idx = arena_.Allocate();
  Node& node = arena_.Get(idx);
  node.is_leaf = false;
  node.children = children;
  return idx;
}

bool RegionQuadtree::At(size_t x, size_t y) const {
  POPAN_CHECK(x < side_ && y < side_);
  return AtRec(root_, x, y, side_);
}

bool RegionQuadtree::AtRec(NodeIndex idx, size_t x, size_t y,
                           size_t block) const {
  const Node& node = arena_.Get(idx);
  if (node.is_leaf) return node.black;
  size_t half = block / 2;
  size_t q = (x >= half ? 1 : 0) | (y >= half ? 2 : 0);
  return AtRec(node.children[q], x - (x >= half ? half : 0),
               y - (y >= half ? half : 0), half);
}

void RegionQuadtree::Set(size_t x, size_t y, bool black) {
  SetRect(x, y, x + 1, y + 1, black);
}

void RegionQuadtree::SetRect(size_t x0, size_t y0, size_t x1, size_t y1,
                             bool black) {
  POPAN_CHECK(x0 <= x1 && x1 <= side_);
  POPAN_CHECK(y0 <= y1 && y1 <= side_);
  if (x0 == x1 || y0 == y1) return;
  SetRectRec(root_, 0, 0, side_, x0, y0, x1, y1, black);
}

void RegionQuadtree::SetRectRec(NodeIndex idx, size_t bx, size_t by,
                                size_t block, size_t x0, size_t y0,
                                size_t x1, size_t y1, bool black) {
  // Intersection of the rectangle with this block.
  size_t ix0 = std::max(x0, bx), ix1 = std::min(x1, bx + block);
  size_t iy0 = std::max(y0, by), iy1 = std::min(y1, by + block);
  if (ix0 >= ix1 || iy0 >= iy1) return;
  Node& node = arena_.Get(idx);
  if (ix0 == bx && ix1 == bx + block && iy0 == by && iy1 == by + block) {
    // Fully covered: paint the whole block.
    if (!node.is_leaf) {
      for (NodeIndex child : node.children) FreeSubtree(child);
      Node& repaint = arena_.Get(idx);
      repaint.is_leaf = true;
      repaint.children = {kNullNode, kNullNode, kNullNode, kNullNode};
      repaint.black = black;
    } else {
      node.black = black;
    }
    return;
  }
  if (node.is_leaf) {
    if (node.black == black) return;  // already that color
    // Split the leaf to paint a sub-rectangle.
    bool old = node.black;
    std::array<NodeIndex, 4> children;
    for (size_t q = 0; q < 4; ++q) {
      children[q] = arena_.Allocate();
      arena_.Get(children[q]).black = old;
    }
    Node& parent = arena_.Get(idx);
    parent.is_leaf = false;
    parent.children = children;
  }
  size_t half = block / 2;
  for (size_t q = 0; q < 4; ++q) {
    size_t cx = bx + ((q & 1) ? half : 0);
    size_t cy = by + ((q & 2) ? half : 0);
    SetRectRec(arena_.Get(idx).children[q], cx, cy, half, x0, y0, x1, y1,
               black);
  }
  Normalize(idx);
}

void RegionQuadtree::FreeSubtree(NodeIndex idx) {
  Node& node = arena_.Get(idx);
  if (!node.is_leaf) {
    for (NodeIndex child : node.children) FreeSubtree(child);
  }
  arena_.Free(idx);
}

void RegionQuadtree::Normalize(NodeIndex idx) {
  Node& node = arena_.Get(idx);
  if (node.is_leaf) return;
  bool color = false;
  for (size_t q = 0; q < 4; ++q) {
    const Node& child = arena_.Get(node.children[q]);
    if (!child.is_leaf) return;
    if (q == 0) {
      color = child.black;
    } else if (child.black != color) {
      return;
    }
  }
  for (NodeIndex child : node.children) arena_.Free(child);
  Node& collapsed = arena_.Get(idx);
  collapsed.is_leaf = true;
  collapsed.black = color;
  collapsed.children = {kNullNode, kNullNode, kNullNode, kNullNode};
}

uint64_t RegionQuadtree::Area() const { return AreaRec(root_, side_); }

uint64_t RegionQuadtree::AreaRec(NodeIndex idx, size_t block) const {
  const Node& node = arena_.Get(idx);
  if (node.is_leaf) {
    return node.black ? static_cast<uint64_t>(block) * block : 0;
  }
  uint64_t total = 0;
  for (NodeIndex child : node.children) {
    total += AreaRec(child, block / 2);
  }
  return total;
}

size_t RegionQuadtree::LeafCount() const { return LeafCountRec(root_); }

size_t RegionQuadtree::LeafCountRec(NodeIndex idx) const {
  const Node& node = arena_.Get(idx);
  if (node.is_leaf) return 1;
  size_t total = 0;
  for (NodeIndex child : node.children) total += LeafCountRec(child);
  return total;
}

RegionQuadtree RegionQuadtree::Union(const RegionQuadtree& a,
                                     const RegionQuadtree& b) {
  POPAN_CHECK(a.side_ == b.side_) << "side mismatch";
  RegionQuadtree out(a.side_, false);
  out.arena_.Clear();
  out.root_ = CombineRec(a, a.root_, b, b.root_, /*is_union=*/true, &out);
  return out;
}

RegionQuadtree RegionQuadtree::Intersect(const RegionQuadtree& a,
                                         const RegionQuadtree& b) {
  POPAN_CHECK(a.side_ == b.side_) << "side mismatch";
  RegionQuadtree out(a.side_, false);
  out.arena_.Clear();
  out.root_ = CombineRec(a, a.root_, b, b.root_, /*is_union=*/false, &out);
  return out;
}

NodeIndex RegionQuadtree::CombineRec(const RegionQuadtree& a, NodeIndex ai,
                                     const RegionQuadtree& b, NodeIndex bi,
                                     bool is_union, RegionQuadtree* out) {
  const Node& na = a.arena_.Get(ai);
  const Node& nb = b.arena_.Get(bi);
  // Short circuits: a black leaf dominates a union, a white leaf an
  // intersection; the neutral element defers to the other operand.
  if (na.is_leaf) {
    if (na.black == is_union) {
      NodeIndex idx = out->arena_.Allocate();
      out->arena_.Get(idx).black = is_union;
      return idx;
    }
    return out->CopyRec(b, bi);
  }
  if (nb.is_leaf) {
    if (nb.black == is_union) {
      NodeIndex idx = out->arena_.Allocate();
      out->arena_.Get(idx).black = is_union;
      return idx;
    }
    return out->CopyRec(a, ai);
  }
  std::array<NodeIndex, 4> children;
  for (size_t q = 0; q < 4; ++q) {
    children[q] =
        CombineRec(a, na.children[q], b, nb.children[q], is_union, out);
  }
  NodeIndex idx = out->arena_.Allocate();
  Node& node = out->arena_.Get(idx);
  node.is_leaf = false;
  node.children = children;
  out->Normalize(idx);
  return idx;
}

RegionQuadtree RegionQuadtree::Complement() const {
  RegionQuadtree out(side_, false);
  out.arena_.Clear();
  out.root_ = ComplementRec(root_, &out);
  return out;
}

NodeIndex RegionQuadtree::ComplementRec(NodeIndex idx,
                                        RegionQuadtree* out) const {
  const Node& node = arena_.Get(idx);
  NodeIndex copy = out->arena_.Allocate();
  if (node.is_leaf) {
    out->arena_.Get(copy).black = !node.black;
    return copy;
  }
  std::array<NodeIndex, 4> children;
  for (size_t q = 0; q < 4; ++q) {
    children[q] = ComplementRec(node.children[q], out);
  }
  Node& copied = out->arena_.Get(copy);
  copied.is_leaf = false;
  copied.children = children;
  return copy;
}

NodeIndex RegionQuadtree::CopyRec(const RegionQuadtree& from,
                                  NodeIndex idx) {
  const Node& node = from.arena_.Get(idx);
  NodeIndex copy = arena_.Allocate();
  if (node.is_leaf) {
    arena_.Get(copy).black = node.black;
    return copy;
  }
  std::array<NodeIndex, 4> children;
  for (size_t q = 0; q < 4; ++q) {
    children[q] = CopyRec(from, node.children[q]);
  }
  Node& copied = arena_.Get(copy);
  copied.is_leaf = false;
  copied.children = children;
  return copy;
}

std::vector<uint8_t> RegionQuadtree::ToRaster() const {
  std::vector<uint8_t> pixels(side_ * side_, 0);
  VisitLeaves([this, &pixels](size_t x0, size_t y0, size_t block,
                              bool black) {
    if (!black) return;
    for (size_t y = y0; y < y0 + block; ++y) {
      for (size_t x = x0; x < x0 + block; ++x) {
        pixels[y * side_ + x] = 1;
      }
    }
  });
  return pixels;
}

bool RegionQuadtree::Equal(const RegionQuadtree& a, NodeIndex ai,
                           const RegionQuadtree& b, NodeIndex bi) {
  const Node& na = a.arena_.Get(ai);
  const Node& nb = b.arena_.Get(bi);
  if (na.is_leaf != nb.is_leaf) return false;
  if (na.is_leaf) return na.black == nb.black;
  for (size_t q = 0; q < 4; ++q) {
    if (!Equal(a, na.children[q], b, nb.children[q])) return false;
  }
  return true;
}

Status RegionQuadtree::CheckInvariants() const {
  return CheckRec(root_, side_);
}

Status RegionQuadtree::CheckRec(NodeIndex idx, size_t block) const {
  const Node& node = arena_.Get(idx);
  if (node.is_leaf) return Status::OK();
  if (block == 1) {
    return Status::Internal("single pixel cannot be subdivided");
  }
  bool all_leaves = true;
  for (size_t q = 0; q < 4; ++q) {
    if (node.children[q] == kNullNode) {
      return Status::Internal("internal node missing a child");
    }
    if (!arena_.Get(node.children[q]).is_leaf) all_leaves = false;
  }
  if (all_leaves) {
    bool first = arena_.Get(node.children[0]).black;
    bool same = true;
    for (size_t q = 1; q < 4; ++q) {
      if (arena_.Get(node.children[q]).black != first) {
        same = false;
        break;
      }
    }
    if (same) {
      return Status::Internal("unnormalized: four same-color leaf siblings");
    }
  }
  for (size_t q = 0; q < 4; ++q) {
    POPAN_RETURN_IF_ERROR(CheckRec(node.children[q], block / 2));
  }
  return Status::OK();
}

}  // namespace popan::spatial
