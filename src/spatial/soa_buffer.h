#ifndef POPAN_SPATIAL_SOA_BUFFER_H_
#define POPAN_SPATIAL_SOA_BUFFER_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "util/check.h"
#include "util/simd.h"

namespace popan::spatial {

/// Structure-of-arrays sibling of InlineBuffer for leaf contents: each
/// coordinate axis lives in its own contiguous lane (x[], y[], ...), so
/// the range/partial-match hot loops can test a whole leaf against a box
/// with the SIMD kernels in util/simd.h instead of point-at-a-time
/// Box::Contains calls. Everything else mirrors InlineBuffer exactly:
///
///   * up to kInline elements per lane live inside the owning node, larger
///     contents spill to per-lane heap vectors;
///   * the storage mode is a function of size alone (inline iff
///     size() <= kInline), and the spill vectors keep their heap buffers
///     across un-spills;
///   * SwapRemoveAt swaps the last element into the hole (leaf order is
///     immaterial to the tree invariants).
template <size_t D, size_t kInline>
class SoaBuffer {
 public:
  using PointT = geo::Point<D>;

  SoaBuffer() = default;

  static constexpr size_t inline_capacity() { return kInline; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the lanes currently live on the heap.
  bool spilled() const { return size_ > kInline; }

  /// The contiguous lane for `axis` (size() readable elements).
  const double* lane(size_t axis) const {
    POPAN_DCHECK(axis < D);
    return spilled() ? spill_[axis].data() : inline_[axis].data();
  }

  double At(size_t axis, size_t i) const {
    POPAN_DCHECK(i < size_);
    return lane(axis)[i];
  }

  /// Reassembles element i as a point (the lanes are the storage of
  /// record; this is the AoS view for callers that need whole points).
  PointT Get(size_t i) const {
    POPAN_DCHECK(i < size_);
    PointT p;
    for (size_t a = 0; a < D; ++a) p[a] = lane(a)[i];
    return p;
  }

  /// True iff element i equals `p` on every axis (IEEE ==, the same test
  /// Point::operator== performs).
  bool Matches(size_t i, const PointT& p) const {
    POPAN_DCHECK(i < size_);
    for (size_t a = 0; a < D; ++a) {
      if (lane(a)[i] != p[a]) return false;
    }
    return true;
  }

  void push_back(const PointT& p) {
    if (size_ < kInline) {
      for (size_t a = 0; a < D; ++a) inline_[a][size_] = p[a];
    } else if (size_ == kInline) {
      // Crossing the inline threshold: migrate every lane to the heap.
      for (size_t a = 0; a < D; ++a) {
        spill_[a].clear();
        spill_[a].reserve(kInline + 1);
        spill_[a].insert(spill_[a].end(), inline_[a].begin(),
                         inline_[a].end());
        spill_[a].push_back(p[a]);
      }
    } else {
      for (size_t a = 0; a < D; ++a) spill_[a].push_back(p[a]);
    }
    ++size_;
  }

  /// Removes element i by swapping the last element into its place.
  void SwapRemoveAt(size_t i) {
    POPAN_DCHECK(i < size_);
    if (spilled()) {
      for (size_t a = 0; a < D; ++a) {
        spill_[a][i] = spill_[a].back();
        spill_[a].pop_back();
      }
      --size_;
      if (size_ == kInline) {
        // Back under the threshold: return to inline storage; the spill
        // vectors keep their buffers for future crossings.
        for (size_t a = 0; a < D; ++a) {
          for (size_t j = 0; j < kInline; ++j) inline_[a][j] = spill_[a][j];
          spill_[a].clear();
        }
      }
    } else {
      for (size_t a = 0; a < D; ++a) inline_[a][i] = inline_[a][size_ - 1];
      --size_;
    }
  }

  void clear() {
    size_ = 0;
    for (size_t a = 0; a < D; ++a) spill_[a].clear();
  }

 private:
  size_t size_ = 0;
  std::array<std::array<double, kInline>, D> inline_{};
  std::array<std::vector<double>, D> spill_;
};

/// Raw-lane workhorse behind ForEachInBox, shared with flat SoA storage
/// (the linear quadtree's leaf lanes): lanes[a] points at `n` elements of
/// axis a. Calls fn(i) for every element inside the half-open `box`, in
/// ascending index order — the same visit order as the scalar loop
/// `for i: if (box.Contains(p_i)) fn(i)`, bit for bit, on every dispatch
/// path (the kernels' scalar bodies share Box::Contains' comparison
/// semantics).
template <size_t D, typename Fn>
void ForEachInBoxLanes(const std::array<const double*, D>& lanes, size_t n,
                       const geo::Box<D>& box, Fn&& fn) {
  for (size_t base = 0; base < n; base += 64) {
    const size_t chunk = n - base < 64 ? n - base : 64;
    uint64_t mask = simd::MaskInHalfOpen(lanes[0] + base, chunk, box.lo()[0],
                                         box.hi()[0]);
    for (size_t a = 1; a < D && mask != 0; ++a) {
      mask &= simd::MaskInHalfOpen(lanes[a] + base, chunk, box.lo()[a],
                                   box.hi()[a]);
    }
    while (mask != 0) {
      const size_t i = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      fn(base + i);
    }
  }
}

/// Raw-lane form of ForEachEqualOnAxis: fn(i) for every element of the
/// lane equal to `value`, ascending.
template <typename Fn>
void ForEachEqualLane(const double* lane, size_t n, double value, Fn&& fn) {
  for (size_t base = 0; base < n; base += 64) {
    const size_t chunk = n - base < 64 ? n - base : 64;
    uint64_t mask = simd::MaskEqual(lane + base, chunk, value);
    while (mask != 0) {
      const size_t i = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      fn(base + i);
    }
  }
}

/// Calls fn(i) for every element of `b` inside the half-open `box`, in
/// ascending index order (see ForEachInBoxLanes for the order/parity
/// contract).
template <size_t D, size_t kInline, typename Fn>
void ForEachInBox(const SoaBuffer<D, kInline>& b, const geo::Box<D>& box,
                  Fn&& fn) {
  std::array<const double*, D> lanes;
  for (size_t a = 0; a < D; ++a) lanes[a] = b.lane(a);
  ForEachInBoxLanes<D>(lanes, b.size(), box, static_cast<Fn&&>(fn));
}

/// Calls fn(i) for every element whose `axis` coordinate equals `value`,
/// in ascending index order (the partial-match leaf filter).
template <size_t D, size_t kInline, typename Fn>
void ForEachEqualOnAxis(const SoaBuffer<D, kInline>& b, size_t axis,
                        double value, Fn&& fn) {
  ForEachEqualLane(b.lane(axis), b.size(), value, static_cast<Fn&&>(fn));
}

}  // namespace popan::spatial

#endif  // POPAN_SPATIAL_SOA_BUFFER_H_
